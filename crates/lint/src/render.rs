//! Report renderers, re-exported from the shared [`hlsb_findings`]
//! crate. [`render_sarif`] accepts reports from any tool and groups them
//! into one SARIF run per driver, so a merged lint + verify log is a
//! single valid document.

pub use hlsb_findings::{json_escape, render_jsonl, render_sarif, render_table};
