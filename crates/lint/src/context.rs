//! Shared analysis context: the design under lint, the target device, the
//! calibrated delay tables every rule consults, and the unrolled +
//! scheduled front-end snapshot the structural rules analyze.

use hlsb_delay::{CalibratedModel, HlsPredictedModel, OpClass};
use hlsb_fabric::{Device, WireModel};
use hlsb_ir::unroll::unroll_loop;
use hlsb_ir::{Design, Loop};
use hlsb_sched::{schedule_loop, Schedule};
use std::borrow::Cow;

/// Tunables for one lint run. `Default` matches the paper's AWS F1 setup
/// (300 MHz target) with device-calibrated thresholds.
#[derive(Debug, Clone, PartialEq)]
pub struct LintConfig {
    /// Clock target, MHz. Broadcast penalties are judged against this.
    pub clock_mhz: f64,
    /// Seed for the analytic delay characterization (the measurement
    /// noise model); findings are deterministic for a fixed seed.
    pub seed: u64,
    /// Override for the BA01 broadcast-factor flag line. `None` derives
    /// it from the device's calibrated delay tables.
    pub data_threshold: Option<usize>,
    /// Override for the PC01 stall-fanout flag line. `None` derives it
    /// from the device wire model.
    pub stall_fanout_threshold: Option<usize>,
}

impl Default for LintConfig {
    fn default() -> Self {
        LintConfig {
            clock_mhz: 300.0,
            seed: 1,
            data_threshold: None,
            stall_fanout_threshold: None,
        }
    }
}

/// The unrolled and baseline-scheduled form of one loop — what the
/// structural rules (BA01, PC01) analyze. `Cow` so an optimizing flow can
/// lend its own front-end artifacts instead of the lint re-deriving them.
#[derive(Debug, Clone, PartialEq)]
pub struct SnapshotLoop<'a> {
    /// The loop body after applying the unroll pragma.
    pub unrolled: Cow<'a, Loop>,
    /// Its baseline (broadcast-blind, predicted-delay) schedule.
    pub schedule: Cow<'a, Schedule>,
}

/// Unroll + baseline-schedule results for every loop of the design, in
/// `loops[kernel][loop]` order mirroring [`Design::kernels`].
///
/// Standalone lint runs compute this once per context (so BA01 and PC01
/// no longer each re-run the unroll/schedule pipeline); flows that already
/// executed their front-end pass hand the artifacts in via
/// [`crate::lint_with_front_end`] and pay nothing.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct FrontEndSnapshot<'a> {
    /// Per-kernel, per-loop snapshots.
    pub loops: Vec<Vec<SnapshotLoop<'a>>>,
}

impl FrontEndSnapshot<'_> {
    /// Runs the unroll + DCE + baseline-schedule front-end on every loop
    /// — the same transformations an optimizing flow's front-end pass
    /// applies, so borrowed and self-computed snapshots are identical.
    pub fn compute(design: &Design, clock_ns: f64) -> FrontEndSnapshot<'static> {
        let predicted = HlsPredictedModel::new();
        let loops = design
            .kernels
            .iter()
            .map(|k| {
                k.loops
                    .iter()
                    .map(|lp| {
                        let mut unrolled = unroll_loop(lp).looop;
                        let (body, _) = unrolled.body.eliminate_dead();
                        unrolled.body = body;
                        let schedule = schedule_loop(&unrolled, design, &predicted, clock_ns);
                        SnapshotLoop {
                            unrolled: Cow::Owned(unrolled),
                            schedule: Cow::Owned(schedule),
                        }
                    })
                    .collect()
            })
            .collect();
        FrontEndSnapshot { loops }
    }

    /// Whether the snapshot shape matches `design` (one entry per loop).
    pub fn matches(&self, design: &Design) -> bool {
        self.loops.len() == design.kernels.len()
            && design
                .kernels
                .iter()
                .zip(&self.loops)
                .all(|(k, sl)| k.loops.len() == sl.len())
    }
}

/// Everything a [`Rule`](crate::Rule) needs, built once per run.
pub struct LintContext<'a> {
    /// The design under analysis.
    pub design: &'a Design,
    /// The target device.
    pub device: &'a Device,
    /// Clock period, ns.
    pub clock_ns: f64,
    /// The broadcast-blind model a stock HLS scheduler would use.
    pub predicted: HlsPredictedModel,
    /// The broadcast-calibrated model (paper §4.1's delay tables).
    pub calibrated: CalibratedModel,
    /// Wire model of the target fabric, for control-net estimates.
    pub wire: WireModel,
    /// Run configuration.
    pub config: LintConfig,
    /// Unrolled + scheduled loops, `front_end.loops[kernel][loop]`.
    pub front_end: FrontEndSnapshot<'a>,
}

impl<'a> LintContext<'a> {
    /// Builds the context, running the analytic characterization for the
    /// target device and the unroll + baseline-schedule front-end once for
    /// all rules.
    pub fn new(design: &'a Design, device: &'a Device, config: LintConfig) -> Self {
        let front_end = FrontEndSnapshot::compute(design, 1000.0 / config.clock_mhz);
        Self::with_front_end(design, device, config, front_end)
    }

    /// Builds the context around a prebuilt front-end snapshot (e.g. the
    /// artifacts of a flow that already unrolled and scheduled the design).
    ///
    /// # Panics
    ///
    /// Panics if the snapshot shape does not match the design.
    pub fn with_front_end(
        design: &'a Design,
        device: &'a Device,
        config: LintConfig,
        front_end: FrontEndSnapshot<'a>,
    ) -> Self {
        assert!(
            front_end.matches(design),
            "front-end snapshot shape does not match design '{}'",
            design.name
        );
        let calibrated = CalibratedModel::characterize_analytic(device, config.seed);
        let wire = WireModel::for_device(device);
        LintContext {
            design,
            device,
            clock_ns: 1000.0 / config.clock_mhz,
            predicted: HlsPredictedModel::new(),
            calibrated,
            wire,
            config,
            front_end,
        }
    }

    /// The unrolled + scheduled snapshot of loop `li` of kernel `ki`.
    pub fn snapshot(&self, ki: usize, li: usize) -> &SnapshotLoop<'a> {
        &self.front_end.loops[ki][li]
    }

    /// Interconnect-delay budget for one data broadcast: past 15 % of the
    /// period, the unbudgeted wire excess starts displacing real logic.
    pub fn data_budget_ns(&self) -> f64 {
        0.15 * self.clock_ns
    }

    /// Indicative broadcast-factor flag line for this device at this
    /// clock: the first power of two whose calibrated wire excess on the
    /// int-ALU curve exceeds [`data_budget_ns`](Self::data_budget_ns).
    /// Slower fabrics and faster clocks both lower the line. BA01 judges
    /// each finding at its exact fanout; this quantized figure is for
    /// reports and what-if summaries.
    pub fn data_broadcast_threshold(&self) -> usize {
        if let Some(t) = self.config.data_threshold {
            return t.max(2);
        }
        let budget = self.data_budget_ns();
        let mut bf = 2usize;
        while bf < 4096 && self.calibrated.wire_excess_ns(OpClass::IntAlu, bf) < budget {
            bf *= 2;
        }
        bf
    }

    /// Extra interconnect delay a `fanout`-sink single-cycle control
    /// broadcast adds over an ordinary net: the capacitive per-sink term
    /// of the wire model, which dominates the thousand-sink stall nets
    /// of §3.3 (the base/log terms are paid by any net and are already
    /// in the cell delay budget).
    pub fn control_broadcast_excess_ns(&self, fanout: usize) -> f64 {
        self.wire.speed * self.wire.c_sink_ns * fanout as f64
    }

    /// The stall/enable fanout above which the control broadcast excess
    /// eats more than 25 % of the period on this fabric.
    pub fn stall_fanout_threshold(&self) -> usize {
        if let Some(t) = self.config.stall_fanout_threshold {
            return t.max(1);
        }
        let budget = 0.25 * self.clock_ns;
        let per_sink = self.wire.speed * self.wire.c_sink_ns;
        ((budget / per_sink).ceil() as usize).max(16)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn thresholds_are_device_calibrated() {
        let d = Design::new("t");
        let fast = Device::ultrascale_plus_vu9p();
        let slow = Device::zynq_zc706();
        let cfg = LintConfig::default();
        let ctx_fast = LintContext::new(&d, &fast, cfg.clone());
        let ctx_slow = LintContext::new(&d, &slow, cfg);
        let t_fast = ctx_fast.data_broadcast_threshold();
        let t_slow = ctx_slow.data_broadcast_threshold();
        assert!((2..=4096).contains(&t_fast));
        // A slower family reaches the same wire excess at a smaller
        // fanout, so its flag line cannot sit above the fast device's.
        assert!(t_slow <= t_fast, "slow {t_slow} vs fast {t_fast}");
        assert!(ctx_fast.stall_fanout_threshold() >= 8);
    }

    #[test]
    fn explicit_overrides_win() {
        let d = Design::new("t");
        let dev = Device::ultrascale_plus_vu9p();
        let cfg = LintConfig {
            data_threshold: Some(7),
            stall_fanout_threshold: Some(123),
            ..LintConfig::default()
        };
        let ctx = LintContext::new(&d, &dev, cfg);
        assert_eq!(ctx.data_broadcast_threshold(), 7);
        assert_eq!(ctx.stall_fanout_threshold(), 123);
    }

    #[test]
    fn faster_clock_lowers_the_data_flag_line() {
        let d = Design::new("t");
        let dev = Device::ultrascale_plus_vu9p();
        let at = |mhz| {
            LintContext::new(
                &d,
                &dev,
                LintConfig {
                    clock_mhz: mhz,
                    ..LintConfig::default()
                },
            )
            .data_broadcast_threshold()
        };
        assert!(at(500.0) <= at(150.0));
    }
}
