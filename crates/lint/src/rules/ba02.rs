//! BA02 — memory scatter from large or heavily partitioned buffers
//! (paper §3.1 #2, Figure 3/4).
//!
//! A logical array that needs many 36 Kb BRAM units cannot sit in one
//! clock region: the placer scatters its banks across the die and the
//! address/data nets become die-crossing broadcasts. This rule compares
//! each accessed array's BRAM footprint against the capacity of one clock
//! region of the target device.

use crate::context::LintContext;
use crate::diag::{Diagnostic, Location, Severity};
use crate::rules::Rule;
use hlsb_delay::OpClass;
use hlsb_ir::{ArrayId, OpKind};

/// Detects array accesses whose BRAM footprint exceeds one clock region.
pub struct MemoryScatter;

/// Placement-grid units per clock-region edge. One grid unit is roughly a
/// CLB-column pitch; UltraScale clock regions are on the order of 30
/// columns across, and the same tile size is a fair proxy for the older
/// families' clock domains.
const REGION_EDGE_UNITS: u32 = 30;

/// BRAM units available in one clock region of `device` — total BRAMs
/// spread uniformly over the region grid.
pub fn brams_per_region(device: &hlsb_fabric::Device) -> usize {
    let rx = device.grid_w.div_ceil(REGION_EDGE_UNITS).max(1) as u64;
    let ry = device.grid_h.div_ceil(REGION_EDGE_UNITS).max(1) as u64;
    (device.resources.brams / (rx * ry)).max(1) as usize
}

/// Kernels/loops containing an access to `array`, for the location field.
fn access_sites(design: &hlsb_ir::Design, array: ArrayId) -> Vec<(String, String)> {
    let mut sites = Vec::new();
    for k in &design.kernels {
        for lp in &k.loops {
            let touches = lp.body.iter().any(
                |(_, inst)| matches!(inst.kind, OpKind::Load(a) | OpKind::Store(a) if a == array),
            );
            if touches {
                sites.push((k.name.clone(), lp.name.clone()));
            }
        }
    }
    sites
}

impl Rule for MemoryScatter {
    fn id(&self) -> &'static str {
        "BA02"
    }
    fn name(&self) -> &'static str {
        "memory-scatter"
    }
    fn section(&self) -> &'static str {
        "§3.1/§4.1"
    }
    fn summary(&self) -> &'static str {
        "array's BRAM footprint exceeds one clock region, scattering its access nets"
    }
    fn remedy(&self) -> &'static str {
        "pipeline the memory access path (OptimizationOptions::broadcast_aware inserts \
         address/data registers) or restructure the buffer into per-region tiles"
    }

    fn check(&self, ctx: &LintContext<'_>, out: &mut Vec<Diagnostic>) {
        let region_cap = brams_per_region(ctx.device);
        for (i, array) in ctx.design.arrays.iter().enumerate() {
            let units = array.bram_units();
            if units <= region_cap {
                continue;
            }
            let sites = access_sites(ctx.design, ArrayId(i as u32));
            if sites.is_empty() {
                continue; // never accessed: nothing fans out
            }
            let banks = array.partition.banks(array.len);
            let penalty = ctx.calibrated.wire_excess_ns(OpClass::Mem, units);
            let severity = if units > 2 * region_cap {
                Severity::Error
            } else {
                Severity::Warning
            };
            let (kernel, looop) = sites[0].clone();
            out.push(Diagnostic {
                rule: self.id(),
                rule_name: self.name(),
                severity,
                section: self.section(),
                subject: array.name.clone(),
                message: format!(
                    "array `{}` ({} x {}) spans {units} BRAM units in {banks} bank(s) \
                     but one clock region of {} holds only {region_cap}; its \
                     address/data nets become die-crossing broadcasts{}",
                    array.name,
                    array.len,
                    array.elem,
                    ctx.device.name,
                    if sites.len() > 1 {
                        format!(" (accessed from {} loops)", sites.len())
                    } else {
                        String::new()
                    }
                ),
                location: Location {
                    kernel: Some(kernel),
                    looop: Some(looop),
                    pragma: Some(format!("array_partition {}", array.partition)),
                },
                broadcast_factor: units,
                est_penalty_ns: penalty,
                remedy: self.remedy(),
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::{LintConfig, LintContext};
    use hlsb_fabric::Device;
    use hlsb_ir::builder::DesignBuilder;
    use hlsb_ir::pragma::Partition;
    use hlsb_ir::types::DataType;
    use hlsb_ir::Design;

    fn buffer_design(len: usize, accessed: bool) -> Design {
        let mut b = DesignBuilder::new("ba02");
        let arr = b.array("buf", DataType::Int(32), len, Partition::None);
        let fout = b.fifo("out", DataType::Int(32), 2);
        let mut k = b.kernel("top");
        let mut l = k.pipelined_loop("main", 1024, 1);
        let i = l.indvar("i");
        let v = if accessed {
            l.load(arr, i, DataType::Int(32))
        } else {
            l.add(i, i)
        };
        l.fifo_write(fout, v);
        l.finish();
        k.finish();
        b.finish().unwrap()
    }

    fn run(design: &Design, device: &Device) -> Vec<Diagnostic> {
        let ctx = LintContext::new(design, device, LintConfig::default());
        let mut out = Vec::new();
        MemoryScatter.check(&ctx, &mut out);
        out
    }

    #[test]
    fn region_capacity_is_positive_everywhere() {
        for d in [
            Device::ultrascale_plus_vu9p(),
            Device::zynq_zc706(),
            Device::alveo_u50(),
            Device::virtex7(),
        ] {
            assert!(brams_per_region(&d) > 0, "{}", d.name);
        }
    }

    #[test]
    fn flags_the_papers_figure3_buffer() {
        // 737 280 x i32 is the paper's Figure 3 example: 640 BRAM units,
        // far beyond any single clock region.
        let design = buffer_design(737_280, true);
        let device = Device::ultrascale_plus_vu9p();
        let diags = run(&design, &device);
        assert_eq!(diags.len(), 1);
        let d = &diags[0];
        assert_eq!(d.rule, "BA02");
        assert_eq!(d.severity, Severity::Error);
        assert_eq!(d.broadcast_factor, 640);
        assert!(d.est_penalty_ns > 0.0);
    }

    #[test]
    fn small_buffers_pass() {
        let design = buffer_design(1024, true);
        let device = Device::ultrascale_plus_vu9p();
        assert!(run(&design, &device).is_empty());
    }

    #[test]
    fn unaccessed_buffers_pass() {
        let design = buffer_design(737_280, false);
        let device = Device::ultrascale_plus_vu9p();
        assert!(run(&design, &device).is_empty());
    }
}
