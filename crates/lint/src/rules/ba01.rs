//! BA01 — data broadcast created by loop unrolling (paper §3.1 #1, §4.1).
//!
//! Unrolling shares loop-invariant values between body copies, so a value
//! read once per iteration becomes an N-way same-cycle fanout in hardware.
//! The HLS scheduler's predicted delay tables ignore that fanout, so the
//! broadcast wire shows up only after place-and-route. This rule analyzes
//! the context's unroll + schedule snapshot (computed once per lint run,
//! or lent by an optimizing flow's front-end pass) and flags every
//! instruction whose same-cycle reader count exceeds the
//! device-calibrated threshold.

use crate::context::{LintContext, SnapshotLoop};
use crate::diag::{Diagnostic, Location, Severity};
use crate::rules::Rule;
use hlsb_delay::{classify, OpClass};
use hlsb_ir::{Dfg, InstId, Loop};
use hlsb_sched::ScheduleReport;

/// Detects RAW-dependency-derived broadcasts after unrolling.
pub struct DataBroadcast;

/// Worst calibrated wire excess any same-cycle reader of `def` pays at
/// broadcast factor `bf`. Free-class readers (outputs, regs) carry no
/// operator curve; if only those read the value, fall back to the int-ALU
/// curve — the wire still has to reach their input registers.
fn reader_penalty_ns(ctx: &LintContext<'_>, dfg: &Dfg, def: InstId, bf: usize) -> f64 {
    let mut worst = 0.0f64;
    for &uid in dfg.users(def) {
        let u = dfg.inst(uid);
        let class = classify(u.kind, u.ty);
        if class != OpClass::Free {
            worst = worst.max(ctx.calibrated.wire_excess_ns(class, bf));
        }
    }
    if worst == 0.0 {
        worst = ctx.calibrated.wire_excess_ns(OpClass::IntAlu, bf);
    }
    worst
}

fn check_loop(
    ctx: &LintContext<'_>,
    kernel: &str,
    lp: &Loop,
    snapshot: &SnapshotLoop<'_>,
    out: &mut Vec<Diagnostic>,
) {
    let body = &snapshot.unrolled.body;
    let report = ScheduleReport::from_schedule(&lp.name, body, &snapshot.schedule);

    // Enumerate broadcasts from a low floor and judge each at its *exact*
    // fanout against the delay budget: a power-of-two threshold would skip
    // e.g. a 12-way window-pixel broadcast that is already over budget on
    // a slow family (face detection on the ZC706). An explicit
    // `data_threshold` override switches back to plain fanout gating.
    let override_t = ctx.config.data_threshold;
    let floor = override_t.unwrap_or(2).max(2);
    let budget = ctx.data_budget_ns();
    for entry in report.broadcasts(floor) {
        let bf = entry.broadcast_factor;
        let penalty = reader_penalty_ns(ctx, body, entry.inst, bf);
        if override_t.is_none() && penalty < budget {
            continue;
        }
        // The scheduler believed this cycle fit; the calibrated excess is
        // pure unbudgeted slack loss. Past 30 % of the period it is very
        // unlikely to survive routing.
        let severity = if penalty > 0.30 * ctx.clock_ns {
            Severity::Error
        } else {
            Severity::Warning
        };
        let subject = if entry.name.is_empty() {
            format!("%{}", entry.inst.0)
        } else {
            entry.name.clone()
        };
        let mut pragma = format!("unroll={}", lp.unroll);
        if let Some(p) = lp.pipeline {
            pragma.push_str(&format!(", {p}"));
        }
        out.push(Diagnostic {
            rule: DataBroadcast.id(),
            rule_name: DataBroadcast.name(),
            severity,
            section: DataBroadcast.section(),
            subject: subject.clone(),
            message: format!(
                "`{subject}` ({}) feeds {bf} same-cycle readers in cycle {} after \
                 unrolling; calibrated wire excess ≈ {penalty:.2} ns on a {:.2} ns \
                 clock, invisible to the scheduler's predicted tables",
                entry.op, entry.cycle, ctx.clock_ns
            ),
            location: Location {
                kernel: Some(kernel.to_string()),
                looop: Some(lp.name.clone()),
                pragma: Some(pragma),
            },
            broadcast_factor: bf,
            est_penalty_ns: penalty,
            remedy: DataBroadcast.remedy(),
        });
    }
}

impl Rule for DataBroadcast {
    fn id(&self) -> &'static str {
        "BA01"
    }
    fn name(&self) -> &'static str {
        "data-broadcast"
    }
    fn section(&self) -> &'static str {
        "§3.1/§4.1"
    }
    fn summary(&self) -> &'static str {
        "loop-invariant value fans out to many same-cycle readers after unrolling"
    }
    fn remedy(&self) -> &'static str {
        "insert an explicit register stage after the source (OpKind::Reg) or enable \
         broadcast-aware scheduling (OptimizationOptions::broadcast_aware)"
    }

    fn check(&self, ctx: &LintContext<'_>, out: &mut Vec<Diagnostic>) {
        for (ki, kernel) in ctx.design.kernels.iter().enumerate() {
            for (li, lp) in kernel.loops.iter().enumerate() {
                check_loop(ctx, &kernel.name, lp, ctx.snapshot(ki, li), out);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::LintConfig;
    use hlsb_fabric::Device;
    use hlsb_ir::builder::DesignBuilder;
    use hlsb_ir::types::DataType;
    use hlsb_ir::Design;

    /// One invariant coefficient multiplied into every unrolled lane.
    fn broadcast_design(unroll: u32) -> Design {
        let mut b = DesignBuilder::new("ba01");
        let fin = b.fifo("in", DataType::Int(32), 2);
        let fout = b.fifo("out", DataType::Int(32), 2);
        let mut k = b.kernel("top");
        let mut l = k.pipelined_loop("main", 4096, 1);
        l.set_unroll(unroll);
        let coef = l.invariant_input("coef", DataType::Int(32));
        let x = l.fifo_read(fin, DataType::Int(32));
        let y = l.mul(coef, x);
        l.fifo_write(fout, y);
        l.finish();
        k.finish();
        b.finish().unwrap()
    }

    fn run(design: &Design) -> Vec<Diagnostic> {
        let device = Device::ultrascale_plus_vu9p();
        let ctx = LintContext::new(design, &device, LintConfig::default());
        let mut out = Vec::new();
        DataBroadcast.check(&ctx, &mut out);
        out
    }

    #[test]
    fn flags_wide_unroll() {
        let design = broadcast_design(256);
        let diags = run(&design);
        assert!(!diags.is_empty(), "256-way broadcast must be flagged");
        let d = diags
            .iter()
            .find(|d| d.subject == "coef")
            .expect("coef flagged");
        assert!(d.broadcast_factor >= 256);
        assert!(d.est_penalty_ns > 0.0);
        assert_eq!(d.rule, "BA01");
        assert_eq!(d.location.kernel.as_deref(), Some("top"));
        assert_eq!(d.location.looop.as_deref(), Some("main"));
        assert!(d.location.pragma.as_deref().unwrap().contains("unroll=256"));
    }

    #[test]
    fn silent_without_unrolling() {
        let design = broadcast_design(1);
        assert!(run(&design).is_empty(), "no unroll, no broadcast");
    }

    #[test]
    fn severity_grows_with_factor() {
        let wide = run(&broadcast_design(1024));
        let worst = wide.iter().map(|d| d.severity).max().unwrap();
        assert_eq!(worst, Severity::Error, "1024-way fanout should be an error");
    }
}
