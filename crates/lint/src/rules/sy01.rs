//! SY01 — synchronization fan-in/fan-out of dataflow regions (paper
//! §3.2, §4.2, Figure 5).
//!
//! HLS glues concurrent modules together with a start broadcast and a
//! done-AND-reduce. Two statically detectable pathologies:
//!
//! * a **wide done-reduce** over many parallel modules — most of which
//!   have statically known latency and need not be waited on at all
//!   (§4.2's pruning);
//! * a **fused loop** containing several independent streaming flows that
//!   share one iteration barrier — §4.2's splitting would give each flow
//!   its own control (detected via [`hlsb_sync::split_loop_flows`]).
//!
//! This rule reports both instead of transforming.

use crate::context::LintContext;
use crate::diag::{Diagnostic, Location, Severity};
use crate::rules::Rule;
use hlsb_ir::Concurrency;
use hlsb_sync::{prune_sync, split_loop_flows, ModuleSync};

/// Detects done-reduce trees and fused dataflow loops §4.2 would prune.
pub struct SyncFanin;

/// Fan-in of the AND-reduce primitives the control generator emits; a
/// reduce wider than this becomes a multi-level tree (mirrors the
/// `REDUCE_FANIN` arity in `hlsb-rtlgen`'s control lowering).
pub const SYNC_REDUCE_FANIN: usize = 6;

fn check_design_sync(ctx: &LintContext<'_>, out: &mut Vec<Diagnostic>) {
    let design = ctx.design;
    if design.concurrency != Concurrency::Dataflow || design.kernels.len() < 2 {
        return;
    }
    let modules: Vec<ModuleSync> = design
        .kernels
        .iter()
        .map(|k| match k.static_latency {
            Some(l) => ModuleSync::fixed(&k.name, l),
            None => ModuleSync::dynamic(&k.name),
        })
        .collect();
    let plan = prune_sync(&modules);
    let n = modules.len();
    let waited = plan.reduce_width();
    // Start broadcast + done reduce both scale with the module count.
    let penalty = ctx.wire.skeleton_net_delay_ns(n);
    if plan.pruned.is_empty() && n <= SYNC_REDUCE_FANIN {
        return;
    }
    let severity = if n > 4 * SYNC_REDUCE_FANIN {
        Severity::Error
    } else if n > SYNC_REDUCE_FANIN || waited < n {
        Severity::Warning
    } else {
        Severity::Info
    };
    let levels = if n <= 1 {
        0
    } else {
        (n as f64).log(SYNC_REDUCE_FANIN as f64).ceil() as usize
    };
    out.push(Diagnostic {
        rule: SyncFanin.id(),
        rule_name: SyncFanin.name(),
        severity,
        section: SyncFanin.section(),
        subject: format!("{}.done", design.name),
        message: format!(
            "dataflow region synchronizes {n} kernels through a {levels}-level \
             done-AND-reduce; {} have static latency, so pruning would wait on \
             only {waited} (start/done nets fan to all {n} modules)",
            plan.pruned.len()
        ),
        location: Location {
            kernel: None,
            looop: None,
            pragma: Some("dataflow".into()),
        },
        broadcast_factor: n,
        est_penalty_ns: penalty,
        remedy: SyncFanin.remedy(),
    });
}

/// Parallel-PE call sites (Fig. 6b): a loop invoking ≥ 2 kernels gets a
/// start broadcast to every PE and a done-AND-reduce back — exactly the
/// sync the design-level dataflow check covers, but anchored at the call
/// site. The control generator emits this sync regardless of any
/// `dataflow` pragma (`rtlgen::control::attach_call_sync`).
fn check_call_sync(ctx: &LintContext<'_>, out: &mut Vec<Diagnostic>) {
    for kernel in &ctx.design.kernels {
        for lp in &kernel.loops {
            let modules: Vec<ModuleSync> = lp
                .body
                .iter()
                .filter_map(|(_, inst)| match inst.kind {
                    hlsb_ir::OpKind::Call(k) => {
                        let callee = ctx.design.kernel(k);
                        Some(match callee.static_latency {
                            Some(l) => ModuleSync::fixed(&callee.name, l),
                            None => ModuleSync::dynamic(&callee.name),
                        })
                    }
                    _ => None,
                })
                .collect();
            let n = modules.len();
            if n < 2 {
                continue;
            }
            let plan = prune_sync(&modules);
            let waited = plan.reduce_width();
            if plan.pruned.is_empty() && n <= SYNC_REDUCE_FANIN {
                continue;
            }
            let severity = if n > 4 * SYNC_REDUCE_FANIN {
                Severity::Error
            } else {
                Severity::Warning
            };
            out.push(Diagnostic {
                rule: SyncFanin.id(),
                rule_name: SyncFanin.name(),
                severity,
                section: SyncFanin.section(),
                subject: format!("{}.{}.done", kernel.name, lp.name),
                message: format!(
                    "loop `{}` synchronizes {n} parallel PE calls with a start \
                     broadcast and done-AND-reduce; {} have static latency, so \
                     pruning would wait on only {waited}",
                    lp.name,
                    plan.pruned.len()
                ),
                location: Location {
                    kernel: Some(kernel.name.clone()),
                    looop: Some(lp.name.clone()),
                    pragma: lp.pipeline.map(|p| p.to_string()),
                },
                broadcast_factor: n,
                est_penalty_ns: ctx.wire.skeleton_net_delay_ns(n),
                remedy: SyncFanin.remedy(),
            });
        }
    }
}

fn check_fused_loops(ctx: &LintContext<'_>, out: &mut Vec<Diagnostic>) {
    for kernel in &ctx.design.kernels {
        for lp in &kernel.loops {
            let flows = split_loop_flows(lp);
            if flows.len() <= 1 {
                continue;
            }
            let n = flows.len();
            let penalty = ctx.wire.skeleton_net_delay_ns(n);
            out.push(Diagnostic {
                rule: SyncFanin.id(),
                rule_name: SyncFanin.name(),
                severity: if n > SYNC_REDUCE_FANIN {
                    Severity::Warning
                } else {
                    Severity::Info
                },
                section: SyncFanin.section(),
                subject: format!("{}.{}", kernel.name, lp.name),
                message: format!(
                    "loop `{}` fuses {n} independent streaming flows under one \
                     iteration barrier; splitting (§4.2) would give each flow \
                     its own flow control",
                    lp.name
                ),
                location: Location {
                    kernel: Some(kernel.name.clone()),
                    looop: Some(lp.name.clone()),
                    pragma: lp.pipeline.map(|p| p.to_string()),
                },
                broadcast_factor: n,
                est_penalty_ns: penalty,
                remedy: SyncFanin.remedy(),
            });
        }
    }
}

impl Rule for SyncFanin {
    fn id(&self) -> &'static str {
        "SY01"
    }
    fn name(&self) -> &'static str {
        "sync-fanin"
    }
    fn section(&self) -> &'static str {
        "§3.2/§4.2"
    }
    fn summary(&self) -> &'static str {
        "wide done-AND-reduce or fused dataflow loop that synchronization pruning would shrink"
    }
    fn remedy(&self) -> &'static str {
        "enable synchronization pruning (OptimizationOptions::sync_pruning): split fused \
         flows and wait only on dynamic-latency / longest-latency modules"
    }

    fn check(&self, ctx: &LintContext<'_>, out: &mut Vec<Diagnostic>) {
        check_design_sync(ctx, out);
        check_call_sync(ctx, out);
        check_fused_loops(ctx, out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::{LintConfig, LintContext};
    use hlsb_fabric::Device;
    use hlsb_ir::builder::DesignBuilder;
    use hlsb_ir::types::DataType;
    use hlsb_ir::Design;

    /// `n` fixed-latency PE kernels in one dataflow region.
    fn dataflow_design(n: usize) -> Design {
        let mut b = DesignBuilder::new("sy01");
        b.dataflow();
        for i in 0..n {
            let fin = b.fifo(format!("in{i}"), DataType::Int(32), 2);
            let fout = b.fifo(format!("out{i}"), DataType::Int(32), 2);
            let mut k = b.kernel(format!("pe{i}"));
            k.set_static_latency(10 + i as u64);
            let mut l = k.pipelined_loop(format!("l{i}"), 256, 1);
            let x = l.fifo_read(fin, DataType::Int(32));
            let y = l.add(x, x);
            l.fifo_write(fout, y);
            l.finish();
            k.finish();
        }
        b.finish().unwrap()
    }

    /// One loop carrying `n` independent FIFO-to-FIFO flows.
    fn fused_design(n: usize) -> Design {
        let mut b = DesignBuilder::new("fused");
        let fifos: Vec<_> = (0..n)
            .map(|i| {
                (
                    b.fifo(format!("in{i}"), DataType::Int(32), 2),
                    b.fifo(format!("out{i}"), DataType::Int(32), 2),
                )
            })
            .collect();
        let mut k = b.kernel("top");
        let mut l = k.pipelined_loop("fused", 256, 1);
        for &(fin, fout) in &fifos {
            let x = l.fifo_read(fin, DataType::Int(32));
            let y = l.add(x, x);
            l.fifo_write(fout, y);
        }
        l.finish();
        k.finish();
        b.finish().unwrap()
    }

    fn run(design: &Design) -> Vec<Diagnostic> {
        let device = Device::ultrascale_plus_vu9p();
        let ctx = LintContext::new(design, &device, LintConfig::default());
        let mut out = Vec::new();
        SyncFanin.check(&ctx, &mut out);
        out
    }

    #[test]
    fn flags_wide_dataflow_sync() {
        let diags = run(&dataflow_design(28));
        let d = diags
            .iter()
            .find(|d| d.subject == "sy01.done")
            .expect("done reduce");
        assert_eq!(d.broadcast_factor, 28);
        assert!(d.severity >= Severity::Warning);
        // 27 of the 28 static-latency PEs are prunable.
        assert!(d.message.contains("wait on only 1"), "{}", d.message);
    }

    #[test]
    fn flags_fused_flows() {
        let diags = run(&fused_design(4));
        let d = diags
            .iter()
            .find(|d| d.subject == "top.fused")
            .expect("fused loop");
        assert_eq!(d.broadcast_factor, 4);
    }

    #[test]
    fn single_flow_sequential_design_passes() {
        let diags = run(&fused_design(1));
        assert!(diags.is_empty(), "{diags:?}");
    }

    /// A top loop calling `n` fixed-latency PE kernels (Fig. 6b style —
    /// no dataflow pragma; the sync comes from the call sites).
    fn call_design(n: usize) -> Design {
        let mut b = DesignBuilder::new("calls");
        let fin = b.fifo("in", DataType::Int(32), 2);
        let fout = b.fifo("out", DataType::Int(32), 2);
        let mut pes = Vec::new();
        for i in 0..n {
            let mut pe = b.kernel(format!("pe{i}"));
            pe.set_static_latency(5 + i as u64);
            let mut l = pe.pipelined_loop("body", 256, 1);
            let x = l.invariant_input("x", DataType::Int(32));
            let y = l.add(x, x);
            l.output("y", y);
            l.finish();
            pes.push(pe.finish());
        }
        let mut top = b.kernel("top");
        let mut l = top.pipelined_loop("main", 256, 1);
        let x = l.fifo_read(fin, DataType::Int(32));
        let mut acc = None;
        for &pe in &pes {
            let r = l.call(pe, vec![x], DataType::Int(32));
            acc = Some(match acc {
                Some(a) => l.add(a, r),
                None => r,
            });
        }
        l.fifo_write(fout, acc.unwrap());
        l.finish();
        top.finish();
        b.finish().unwrap()
    }

    #[test]
    fn flags_prunable_call_site_sync() {
        let diags = run(&call_design(4));
        let d = diags
            .iter()
            .find(|d| d.subject == "top.main.done")
            .expect("call-site sync flagged");
        assert_eq!(d.broadcast_factor, 4);
        // All 4 PEs have static latency: only the slowest needs waiting.
        assert!(d.message.contains("wait on only 1"), "{}", d.message);
    }
}
