//! The rule registry. One module per rule; each rule is a stateless
//! [`Rule`] implementation over the shared [`LintContext`].

use crate::context::LintContext;
use crate::diag::Diagnostic;
use hlsb_findings::RuleMeta;

pub mod ba01;
pub mod ba02;
pub mod pc01;
pub mod sy01;

pub use ba01::DataBroadcast;
pub use ba02::MemoryScatter;
pub use pc01::StallBroadcast;
pub use sy01::SyncFanin;

/// One static-analysis rule.
///
/// Rules are pure: they read the [`LintContext`] and append
/// [`Diagnostic`]s; they never mutate the design. Each rule cites the
/// paper section whose broadcast pattern it detects and carries a fixed
/// remedy phrased in terms of this workspace's flow options.
pub trait Rule {
    /// Stable rule id (`BA01`, ...), used in reports and SARIF.
    fn id(&self) -> &'static str;
    /// Short kebab-case name (`data-broadcast`, ...).
    fn name(&self) -> &'static str;
    /// Paper section(s) the rule reproduces.
    fn section(&self) -> &'static str;
    /// One-line description for rule metadata (SARIF `shortDescription`).
    fn summary(&self) -> &'static str;
    /// Suggested fix attached to every finding of this rule.
    fn remedy(&self) -> &'static str;
    /// Runs the rule, appending findings to `out`.
    fn check(&self, ctx: &LintContext<'_>, out: &mut Vec<Diagnostic>);

    /// Static metadata record for SARIF rule declarations.
    fn meta(&self) -> RuleMeta {
        RuleMeta {
            id: self.id(),
            name: self.name(),
            section: self.section(),
            summary: self.summary(),
            remedy: self.remedy(),
        }
    }
}

/// All rules, in id order.
pub fn all_rules() -> Vec<Box<dyn Rule>> {
    vec![
        Box::new(DataBroadcast),
        Box::new(MemoryScatter),
        Box::new(StallBroadcast),
        Box::new(SyncFanin),
    ]
}

/// Metadata of all rules, in id order — the registry a
/// [`LintReport`](crate::diag::LintReport) carries for SARIF rendering.
pub fn rule_metas() -> Vec<RuleMeta> {
    all_rules().iter().map(|r| r.meta()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_is_complete_and_unique() {
        let rules = all_rules();
        assert_eq!(rules.len(), 4);
        let ids: Vec<_> = rules.iter().map(|r| r.id()).collect();
        assert_eq!(ids, ["BA01", "BA02", "PC01", "SY01"]);
        for r in &rules {
            assert!(!r.name().is_empty());
            assert!(r.section().contains('§'), "{} cites no section", r.id());
            assert!(!r.summary().is_empty());
            assert!(!r.remedy().is_empty());
        }
    }
}
