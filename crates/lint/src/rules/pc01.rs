//! PC01 — pipeline flow-control (stall/enable) broadcast (paper §3.3,
//! §4.3, Figure 7).
//!
//! Stall-based pipeline control wires one `stall` net to the clock-enable
//! of every stage register. The net's fanout is the total register count
//! of the pipeline — invisible in the HLS report, ruinous after routing.
//! This rule schedules each pipelined loop, reconstructs the per-stage
//! register widths the control logic would gate, and estimates the stall
//! net's skeleton broadcast delay on the target fabric.

use crate::context::{LintContext, SnapshotLoop};
use crate::diag::{Diagnostic, Location, Severity};
use crate::rules::Rule;
use hlsb_ir::{ArrayId, Design, Loop, OpKind};
use hlsb_rtlgen::stage_widths;

/// Detects global stall/enable nets with region-scale fanout.
pub struct StallBroadcast;

/// Estimated stall-net fanout of a scheduled pipeline: every data bit of
/// every stage register carries a clock-enable load, plus one valid flag
/// per stage.
pub fn stall_fanout(widths: &[u64]) -> usize {
    widths.iter().sum::<u64>() as usize + widths.len()
}

/// BRAM-unit clock-enables the loop's stall net must also gate: when the
/// pipeline stalls, every 36 Kb unit of every array it reads or writes
/// holds its port (the stream-buffer pattern of §5.5 — the back-pressure
/// enable fans out to the whole buffer, not just the stage registers).
pub fn gated_bram_units(design: &Design, lp: &Loop) -> usize {
    design
        .arrays
        .iter()
        .enumerate()
        .filter(|(i, _)| {
            let a = ArrayId(*i as u32);
            lp.body
                .iter()
                .any(|(_, inst)| matches!(inst.kind, OpKind::Load(x) | OpKind::Store(x) if x == a))
        })
        .map(|(_, arr)| arr.bram_units())
        .sum()
}

fn check_loop(
    ctx: &LintContext<'_>,
    kernel: &str,
    lp: &Loop,
    snapshot: &SnapshotLoop<'_>,
    out: &mut Vec<Diagnostic>,
) {
    if lp.pipeline.is_none() {
        return;
    }
    let widths = stage_widths(&snapshot.unrolled, &snapshot.schedule);
    let brams = gated_bram_units(ctx.design, lp);
    let fanout = stall_fanout(&widths) + brams;
    let threshold = ctx.stall_fanout_threshold();
    if fanout < threshold {
        return;
    }
    let penalty = ctx.control_broadcast_excess_ns(fanout);
    let severity = if penalty > 0.75 * ctx.clock_ns {
        Severity::Error
    } else {
        Severity::Warning
    };
    let mut pragma = String::new();
    if let Some(p) = lp.pipeline {
        pragma.push_str(&p.to_string());
    }
    if lp.unroll > 1 {
        pragma.push_str(&format!(", unroll={}", lp.unroll));
    }
    out.push(Diagnostic {
        rule: StallBroadcast.id(),
        rule_name: StallBroadcast.name(),
        severity,
        section: StallBroadcast.section(),
        subject: format!("{}.stall", lp.name),
        message: format!(
            "stall-based control of this {}-stage pipeline gates ~{fanout} \
             enables from one net (stage widths sum to {} bits{}); estimated \
             enable-net broadcast excess ≈ {penalty:.2} ns on a {:.2} ns clock",
            widths.len(),
            widths.iter().sum::<u64>(),
            if brams > 0 {
                format!(", plus {brams} BRAM-unit port enables")
            } else {
                String::new()
            },
            ctx.clock_ns
        ),
        location: Location {
            kernel: Some(kernel.to_string()),
            looop: Some(lp.name.clone()),
            pragma: (!pragma.is_empty()).then_some(pragma),
        },
        broadcast_factor: fanout,
        est_penalty_ns: penalty,
        remedy: StallBroadcast.remedy(),
    });
}

impl Rule for StallBroadcast {
    fn id(&self) -> &'static str {
        "PC01"
    }
    fn name(&self) -> &'static str {
        "stall-broadcast"
    }
    fn section(&self) -> &'static str {
        "§3.3/§4.3"
    }
    fn summary(&self) -> &'static str {
        "global stall/enable net gates every pipeline stage register"
    }
    fn remedy(&self) -> &'static str {
        "switch to skid-buffer flow control (OptimizationOptions::skid_buffer, plus \
         min_area_skid for the DP-placed multi-level split)"
    }

    fn check(&self, ctx: &LintContext<'_>, out: &mut Vec<Diagnostic>) {
        for (ki, kernel) in ctx.design.kernels.iter().enumerate() {
            for (li, lp) in kernel.loops.iter().enumerate() {
                check_loop(ctx, &kernel.name, lp, ctx.snapshot(ki, li), out);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::{LintConfig, LintContext};
    use hlsb_fabric::Device;
    use hlsb_ir::builder::DesignBuilder;
    use hlsb_ir::types::DataType;
    use hlsb_ir::Design;

    /// A deep wide pipeline: `stages` chained 512-bit multiplies.
    fn pipeline_design(stages: usize, bits: u16) -> Design {
        let mut b = DesignBuilder::new("pc01");
        let fin = b.fifo("in", DataType::Bits(64), 2);
        let fout = b.fifo("out", DataType::Bits(64), 2);
        let mut k = b.kernel("top");
        let mut l = k.pipelined_loop("pipe", 65_536, 1);
        let x = l.fifo_read(fin, DataType::Bits(64));
        let mut v = l.repack(x, DataType::Int(bits));
        for _ in 0..stages {
            let r = l.reg(v);
            v = l.add(r, r);
        }
        let folded = l.repack(v, DataType::Bits(64));
        l.fifo_write(fout, folded);
        l.finish();
        k.finish();
        b.finish().unwrap()
    }

    fn run(design: &Design) -> Vec<Diagnostic> {
        let device = Device::ultrascale_plus_vu9p();
        let ctx = LintContext::new(design, &device, LintConfig::default());
        let mut out = Vec::new();
        StallBroadcast.check(&ctx, &mut out);
        out
    }

    #[test]
    fn flags_deep_wide_pipelines() {
        let diags = run(&pipeline_design(64, 512));
        assert_eq!(diags.len(), 1, "one stall net per pipelined loop");
        let d = &diags[0];
        assert_eq!(d.rule, "PC01");
        assert_eq!(d.subject, "pipe.stall");
        assert!(d.broadcast_factor > 10_000, "fanout {}", d.broadcast_factor);
        assert!(d.est_penalty_ns > 0.0);
    }

    #[test]
    fn shallow_narrow_pipelines_pass() {
        assert!(run(&pipeline_design(2, 8)).is_empty());
    }

    #[test]
    fn fanout_counts_bits_and_valids() {
        assert_eq!(stall_fanout(&[512, 512, 32]), 512 + 512 + 32 + 3);
        assert_eq!(stall_fanout(&[]), 0);
    }
}
