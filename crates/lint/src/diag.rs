//! Structured diagnostics, re-exported from the shared
//! [`hlsb_findings`] crate so lint and verify findings share one type
//! system and one renderer family.

pub use hlsb_findings::{Diagnostic, Location, Severity};

/// A lint report is the shared findings [`Report`](hlsb_findings::Report)
/// with `tool` set to `"hlsb-lint"`.
pub type LintReport = hlsb_findings::Report;
