//! # hlsb-lint — static implicit-broadcast analyzer
//!
//! Finds the paper's implicit broadcasts (DAC'20, §3) *before* placement
//! and STA, directly on the [`hlsb_ir::Design`]: the same unroll +
//! schedule + calibrated-delay machinery the optimizing flow uses, but
//! run in report-only mode. Four rules:
//!
//! | rule | name | paper | detects |
//! |---|---|---|---|
//! | `BA01` | data-broadcast | §3.1/§4.1 | unroll-created same-cycle fanout past a device-calibrated threshold |
//! | `BA02` | memory-scatter | §3.1/§4.1 | arrays whose BRAM footprint exceeds one clock region |
//! | `PC01` | stall-broadcast | §3.3/§4.3 | global stall/enable nets gating whole pipelines |
//! | `SY01` | sync-fanin | §3.2/§4.2 | done-AND-reduce trees and fused dataflow loops pruning would shrink |
//!
//! Each [`Diagnostic`] carries the IR location (kernel/loop/pragma), the
//! broadcast factor, a delay penalty estimated from the calibrated delay
//! tables, and a remedy phrased in terms of
//! `hlsb::OptimizationOptions`. Reports render as a human-readable
//! table, JSON Lines, or SARIF 2.1.0 (`to_table` / `to_jsonl` /
//! `to_sarif` on [`LintReport`]). The report types and renderers live in
//! the shared [`hlsb_findings`] crate, so lint and `hlsb-verify`
//! findings merge into one SARIF log with distinct rule IDs.
//!
//! # Example
//!
//! ```
//! use hlsb_fabric::Device;
//! use hlsb_ir::builder::DesignBuilder;
//! use hlsb_ir::types::DataType;
//!
//! # fn main() -> Result<(), hlsb_ir::IrError> {
//! let mut b = DesignBuilder::new("fir");
//! let fin = b.fifo("in", DataType::Int(32), 2);
//! let fout = b.fifo("out", DataType::Int(32), 2);
//! let mut k = b.kernel("top");
//! let mut l = k.pipelined_loop("mac", 4096, 1);
//! l.set_unroll(128);
//! let c = l.invariant_input("c", DataType::Int(32));
//! let x = l.fifo_read(fin, DataType::Int(32));
//! let y = l.mul(c, x);
//! l.fifo_write(fout, y);
//! l.finish();
//! k.finish();
//! let design = b.finish()?;
//!
//! let report = hlsb_lint::lint_design(&design, &Device::ultrascale_plus_vu9p(), 300.0);
//! assert!(report.has_rule("BA01")); // `c` fans out to 128 multipliers
//! # Ok(())
//! # }
//! ```

pub mod context;
pub mod diag;
pub mod render;
pub mod rules;

pub use context::{FrontEndSnapshot, LintConfig, LintContext, SnapshotLoop};
pub use diag::{Diagnostic, LintReport, Location, Severity};
pub use render::{render_jsonl, render_sarif, render_table};
pub use rules::{all_rules, rule_metas, Rule};

use hlsb_fabric::Device;
use hlsb_ir::Design;

/// Lints `design` for `device` at the given clock target with default
/// (device-calibrated) thresholds.
pub fn lint_design(design: &Design, device: &Device, clock_mhz: f64) -> LintReport {
    lint_with(
        design,
        device,
        LintConfig {
            clock_mhz,
            ..LintConfig::default()
        },
    )
}

/// Lints `design` with explicit configuration. Findings are sorted worst
/// first (severity, then estimated penalty), ties broken by rule id for
/// determinism.
pub fn lint_with(design: &Design, device: &Device, config: LintConfig) -> LintReport {
    let ctx = LintContext::new(design, device, config);
    run_rules(ctx)
}

/// Like [`lint_with`], but analyzes a prebuilt [`FrontEndSnapshot`]
/// instead of re-running the unroll/schedule front-end — the fast path for
/// flows that already executed their own front-end pass (e.g.
/// `hlsb::Flow::lint`).
///
/// # Panics
///
/// Panics if the snapshot shape does not match the design.
pub fn lint_with_front_end(
    design: &Design,
    device: &Device,
    config: LintConfig,
    front_end: FrontEndSnapshot<'_>,
) -> LintReport {
    let ctx = LintContext::with_front_end(design, device, config, front_end);
    run_rules(ctx)
}

fn run_rules(ctx: LintContext<'_>) -> LintReport {
    let clock_mhz = ctx.config.clock_mhz;
    let mut diagnostics = Vec::new();
    for rule in all_rules() {
        rule.check(&ctx, &mut diagnostics);
    }
    let mut report = LintReport {
        tool: "hlsb-lint",
        design: ctx.design.name.clone(),
        device: ctx.device.name.clone(),
        clock_mhz,
        rules: rule_metas(),
        diagnostics,
    };
    report.sort_worst_first();
    report
}

/// Broadcast class of one post-route critical cell, inferred from the
/// `kind:name` strings in
/// `ImplementationResult::critical_cells`. Returns the rule id the cell
/// corroborates, or `None` for ordinary datapath cells.
pub fn classify_critical_cell(cell: &str) -> Option<&'static str> {
    let name = cell.rsplit(':').next().unwrap_or(cell);
    if name.contains("stall") || name.contains("gate") || name.contains("skid") {
        Some("PC01")
    } else if name.contains("sync") || name.contains("done") || name.contains("start") {
        Some("SY01")
    } else if name.contains("bram") || name.contains("bank") || name.contains("mem") {
        Some("BA02")
    } else if name.contains("bcast") || name.contains("_fo") || name.contains("dup") {
        // `_fo` cells are fanout-split register duplicates — the physical
        // optimizer's footprint on a data broadcast net.
        Some("BA01")
    } else {
        None
    }
}

/// Precision/recall of a lint report against observed post-route
/// evidence, for the flow cross-check.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct CrossCheck {
    /// Rules that fired and are corroborated by a critical cell.
    pub true_pos: usize,
    /// Rules that fired without a corroborating critical cell.
    pub false_pos: usize,
    /// Broadcast classes on the critical path that no rule predicted.
    pub false_neg: usize,
}

impl CrossCheck {
    /// Fraction of fired rules corroborated by the critical path.
    pub fn precision(&self) -> f64 {
        if self.true_pos + self.false_pos == 0 {
            1.0
        } else {
            self.true_pos as f64 / (self.true_pos + self.false_pos) as f64
        }
    }

    /// Fraction of critical-path broadcast classes the lint predicted.
    pub fn recall(&self) -> f64 {
        if self.true_pos + self.false_neg == 0 {
            1.0
        } else {
            self.true_pos as f64 / (self.true_pos + self.false_neg) as f64
        }
    }

    /// Accumulates another observation (e.g. one more benchmark).
    pub fn merge(&mut self, other: CrossCheck) {
        self.true_pos += other.true_pos;
        self.false_pos += other.false_pos;
        self.false_neg += other.false_neg;
    }
}

/// Compares the rules that fired in `report` against the broadcast
/// classes observed on a post-route critical path, using the cell names
/// as evidence (see [`classify_critical_cell`]).
pub fn cross_check(report: &LintReport, critical_cells: &[String]) -> CrossCheck {
    let observed: Vec<&'static str> = critical_cells
        .iter()
        .filter_map(|c| classify_critical_cell(c))
        .collect();
    cross_check_classes(report, &observed)
}

/// Like [`cross_check`] with the observed broadcast classes supplied
/// directly — callers with netlist access can add stronger evidence than
/// cell names (e.g. "a critical cell drives a net with fanout ≥ N" is
/// data-broadcast evidence).
///
/// The data rules BA01/BA02 are treated as one class when matching:
/// both predict the same physical symptom (a scattered high-fanout data
/// net), and the post-route evidence does not distinguish the cause.
pub fn cross_check_classes(report: &LintReport, observed_classes: &[&str]) -> CrossCheck {
    let data = |r: &str| r == "BA01" || r == "BA02";
    let fired: Vec<&str> = ["BA01", "BA02", "PC01", "SY01"]
        .into_iter()
        .filter(|r| report.has_rule(r))
        .collect();
    let observed: Vec<&str> = {
        let mut v = observed_classes.to_vec();
        v.sort_unstable();
        v.dedup();
        v
    };

    let mut cc = CrossCheck::default();
    let observed_data = observed.iter().any(|r| data(r));
    let fired_data = fired.iter().any(|r| data(r));
    // Data class.
    match (fired_data, observed_data) {
        (true, true) => cc.true_pos += 1,
        (true, false) => cc.false_pos += 1,
        (false, true) => cc.false_neg += 1,
        (false, false) => {}
    }
    // Control classes, exact.
    for r in ["PC01", "SY01"] {
        match (fired.contains(&r), observed.contains(&r)) {
            (true, true) => cc.true_pos += 1,
            (true, false) => cc.false_pos += 1,
            (false, true) => cc.false_neg += 1,
            (false, false) => {}
        }
    }
    cc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn critical_cell_classes() {
        assert_eq!(classify_critical_cell("lut:stall_red1_0"), Some("PC01"));
        assert_eq!(classify_critical_cell("ff:gate3"), Some("PC01"));
        assert_eq!(classify_critical_cell("lut:sync_red0_2"), Some("SY01"));
        assert_eq!(classify_critical_cell("ff:pe4_done"), Some("SY01"));
        assert_eq!(classify_critical_cell("bram:membank7"), Some("BA02"));
        assert_eq!(
            classify_critical_cell("FF:chain_0_curr_y_fo1"),
            Some("BA01")
        );
        assert_eq!(classify_critical_cell("lut:adder12"), None);
    }

    #[test]
    fn cross_check_counts() {
        let report = LintReport {
            tool: "hlsb-lint",
            design: "d".into(),
            device: "v".into(),
            clock_mhz: 300.0,
            rules: rule_metas(),
            diagnostics: vec![Diagnostic {
                rule: "PC01",
                rule_name: "stall-broadcast",
                severity: Severity::Warning,
                section: "§4.3",
                subject: "s".into(),
                message: "m".into(),
                location: Location::default(),
                broadcast_factor: 100,
                est_penalty_ns: 1.0,
                remedy: "r",
            }],
        };
        let cc = cross_check(&report, &["ff:stall_status3".into()]);
        assert_eq!((cc.true_pos, cc.false_pos, cc.false_neg), (1, 0, 0));
        assert_eq!(cc.precision(), 1.0);
        assert_eq!(cc.recall(), 1.0);

        let miss = cross_check(&report, &["lut:sync_red0_0".into()]);
        assert_eq!((miss.true_pos, miss.false_pos, miss.false_neg), (0, 1, 1));
        let mut total = cc;
        total.merge(miss);
        assert_eq!(total.true_pos, 1);
        assert!((total.precision() - 0.5).abs() < 1e-12);
    }
}
