//! # hlsb-findings — shared diagnostics and report renderers
//!
//! The common finding machinery used by every static analyzer in the
//! workspace: `hlsb-lint` (broadcast cost analysis) and `hlsb-verify`
//! (dataflow-network and schedule-contract checking) both emit
//! [`Diagnostic`]s into a [`Report`] and render through the same table /
//! JSON Lines / SARIF 2.1.0 code paths, so their findings can land in
//! *one* SARIF log with distinct rule IDs — one SARIF run per tool, no
//! copy-pasted renderer.
//!
//! A [`Report`] is self-describing: it carries the producing tool's name
//! and its full rule registry ([`RuleMeta`]), so [`render_sarif`] can
//! declare every rule in the run metadata even when only some fired.

pub mod diag;
pub mod render;

pub use diag::{Diagnostic, Location, Report, RuleMeta, Severity};
pub use render::{json_escape, render_jsonl, render_sarif, render_table};
