//! Structured diagnostics: what a rule found, where, and how bad it is.

use std::fmt;

/// How severe a finding is.
///
/// Ordering is semantic: `Info < Warning < Error`, so `max()` over a
/// report yields the worst finding.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// An optimization opportunity; impact below the flag line.
    Info,
    /// A structure likely to cost frequency or throughput.
    Warning,
    /// A defect that threatens correctness or the clock target on its
    /// own.
    Error,
}

impl Severity {
    /// SARIF `level` string for this severity.
    pub fn sarif_level(self) -> &'static str {
        match self {
            Severity::Info => "note",
            Severity::Warning => "warning",
            Severity::Error => "error",
        }
    }

    /// Parses the display form (`info` / `warning` / `error`), as used by
    /// the CLIs' `--deny <severity>` flag.
    pub fn parse(s: &str) -> Option<Severity> {
        match s {
            "info" => Some(Severity::Info),
            "warning" => Some(Severity::Warning),
            "error" => Some(Severity::Error),
            _ => None,
        }
    }
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Severity::Info => "info",
            Severity::Warning => "warning",
            Severity::Error => "error",
        };
        f.write_str(s)
    }
}

/// Where in the IR a finding is anchored. HLS designs have no source
/// files, so the location is the kernel/loop hierarchy plus the pragma
/// that creates the broadcast (unroll, pipeline, array_partition).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Location {
    /// Kernel name, if the finding is inside a kernel.
    pub kernel: Option<String>,
    /// Loop name, if the finding is inside a loop.
    pub looop: Option<String>,
    /// The directive responsible (e.g. `unroll=64`, `pipeline II=1`,
    /// `array_partition cyclic factor=8`).
    pub pragma: Option<String>,
}

impl Location {
    /// `design/kernel/loop` path used in reports and SARIF logical
    /// locations.
    pub fn path(&self, design: &str) -> String {
        let mut p = design.to_string();
        if let Some(k) = &self.kernel {
            p.push('/');
            p.push_str(k);
        }
        if let Some(l) = &self.looop {
            p.push('/');
            p.push_str(l);
        }
        p
    }
}

impl fmt::Display for Location {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match (&self.kernel, &self.looop) {
            (Some(k), Some(l)) => write!(f, "{k}/{l}")?,
            (Some(k), None) => write!(f, "{k}")?,
            (None, Some(l)) => write!(f, "{l}")?,
            (None, None) => write!(f, "<design>")?,
        }
        if let Some(p) = &self.pragma {
            write!(f, " [{p}]")?;
        }
        Ok(())
    }
}

/// One finding from one rule.
#[derive(Debug, Clone, PartialEq)]
pub struct Diagnostic {
    /// Rule id (`BA01`, `VN01`, ...).
    pub rule: &'static str,
    /// Short rule name (`data-broadcast`, `fifo-multi-writer`, ...).
    pub rule_name: &'static str,
    /// Severity of this particular finding.
    pub severity: Severity,
    /// Paper section the rule reproduces (e.g. `§3.1/§4.1`).
    pub section: &'static str,
    /// The net / instruction / array / channel / module the finding is
    /// about.
    pub subject: String,
    /// Human-readable explanation.
    pub message: String,
    /// IR location.
    pub location: Location,
    /// Broadcast factor (fanout) — or, for network findings, the
    /// violating endpoint count — the finding is based on.
    pub broadcast_factor: usize,
    /// Estimated extra interconnect delay from the calibrated model, ns
    /// (0 for pure structural findings).
    pub est_penalty_ns: f64,
    /// Suggested fix, phrased in terms of this workspace's options.
    pub remedy: &'static str,
}

/// Static metadata of one rule, declared in the SARIF run even when the
/// rule did not fire.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RuleMeta {
    /// Stable rule id (`BA01`, `VN01`, ...).
    pub id: &'static str,
    /// Short kebab-case name.
    pub name: &'static str,
    /// Paper section(s) the rule reproduces.
    pub section: &'static str,
    /// One-line description (SARIF `shortDescription`).
    pub summary: &'static str,
    /// Suggested fix attached to every finding of this rule.
    pub remedy: &'static str,
}

/// The result of analyzing one design against one device with one tool.
#[derive(Debug, Clone, PartialEq)]
pub struct Report {
    /// The producing tool (`hlsb-lint`, `hlsb-verify`) — the SARIF driver
    /// name and the table header prefix.
    pub tool: &'static str,
    /// Design name.
    pub design: String,
    /// Device name.
    pub device: String,
    /// Clock target the analysis assumed, MHz.
    pub clock_mhz: f64,
    /// The tool's full rule registry (declared in SARIF metadata even for
    /// rules that did not fire).
    pub rules: Vec<RuleMeta>,
    /// Findings, worst first (severity, then estimated penalty).
    pub diagnostics: Vec<Diagnostic>,
}

impl Report {
    /// Whether any finding came from the given rule id.
    pub fn has_rule(&self, id: &str) -> bool {
        self.diagnostics.iter().any(|d| d.rule == id)
    }

    /// Number of findings at exactly this severity.
    pub fn count(&self, sev: Severity) -> usize {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == sev)
            .count()
    }

    /// Number of findings at or above this severity — what the CLIs'
    /// `--deny <severity>` gates on.
    pub fn count_at_least(&self, sev: Severity) -> usize {
        self.diagnostics
            .iter()
            .filter(|d| d.severity >= sev)
            .count()
    }

    /// Worst severity in the report, if any finding exists.
    pub fn max_severity(&self) -> Option<Severity> {
        self.diagnostics.iter().map(|d| d.severity).max()
    }

    /// No findings at all.
    pub fn is_clean(&self) -> bool {
        self.diagnostics.is_empty()
    }

    /// Total estimated broadcast penalty across all findings, ns — the
    /// report's scalar "broadcast score". Design-space exploration uses
    /// it as a cheap fitness proxy: a configuration whose remaining
    /// broadcasts carry less penalty is likelier to close timing.
    pub fn total_penalty_ns(&self) -> f64 {
        self.penalty_where(|_| true)
    }

    /// Total estimated penalty of findings from one rule id, ns.
    pub fn penalty_for_rule(&self, id: &str) -> f64 {
        self.penalty_where(|r| r == id)
    }

    /// Total estimated penalty of the findings whose rule id the
    /// predicate selects, ns. The DSE proxy passes the rules a candidate
    /// configuration does *not* remedy (BA01/BA02 ↔ broadcast-aware
    /// scheduling, PC01 ↔ skid buffers, SY01 ↔ sync pruning), yielding
    /// the residual penalty that configuration would still pay.
    pub fn penalty_where(&self, select: impl Fn(&str) -> bool) -> f64 {
        self.diagnostics
            .iter()
            .filter(|d| select(d.rule))
            .map(|d| d.est_penalty_ns)
            .sum()
    }

    /// Sorts findings worst first (severity, then estimated penalty),
    /// ties broken by rule id then subject for determinism.
    pub fn sort_worst_first(&mut self) {
        self.diagnostics.sort_by(|a, b| {
            b.severity
                .cmp(&a.severity)
                .then(b.est_penalty_ns.total_cmp(&a.est_penalty_ns))
                .then(a.rule.cmp(b.rule))
                .then(a.subject.cmp(&b.subject))
        });
    }

    /// Renders the human-readable table.
    pub fn to_table(&self) -> String {
        crate::render::render_table(self)
    }

    /// Renders one JSON object per finding (JSON Lines).
    pub fn to_jsonl(&self) -> String {
        crate::render::render_jsonl(self)
    }

    /// Renders a single-run SARIF 2.1.0 document.
    pub fn to_sarif(&self) -> String {
        crate::render::render_sarif(std::slice::from_ref(self))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diag(rule: &'static str, sev: Severity) -> Diagnostic {
        Diagnostic {
            rule,
            rule_name: "test",
            severity: sev,
            section: "§0",
            subject: "x".into(),
            message: "m".into(),
            location: Location::default(),
            broadcast_factor: 2,
            est_penalty_ns: 0.1,
            remedy: "r",
        }
    }

    fn report(diags: Vec<Diagnostic>) -> Report {
        Report {
            tool: "hlsb-test",
            design: "d".into(),
            device: "dev".into(),
            clock_mhz: 300.0,
            rules: vec![],
            diagnostics: diags,
        }
    }

    #[test]
    fn severity_orders_and_maps_to_sarif() {
        assert!(Severity::Info < Severity::Warning);
        assert!(Severity::Warning < Severity::Error);
        assert_eq!(Severity::Error.sarif_level(), "error");
        assert_eq!(Severity::Info.sarif_level(), "note");
        assert_eq!(Severity::Warning.to_string(), "warning");
    }

    #[test]
    fn severity_parses_its_display_form() {
        for sev in [Severity::Info, Severity::Warning, Severity::Error] {
            assert_eq!(Severity::parse(&sev.to_string()), Some(sev));
        }
        assert_eq!(Severity::parse("fatal"), None);
    }

    #[test]
    fn location_paths() {
        let loc = Location {
            kernel: Some("top".into()),
            looop: Some("main".into()),
            pragma: Some("unroll=8".into()),
        };
        assert_eq!(loc.path("d"), "d/top/main");
        assert_eq!(loc.to_string(), "top/main [unroll=8]");
        assert_eq!(Location::default().path("d"), "d");
    }

    #[test]
    fn report_queries() {
        let r = report(vec![
            diag("BA01", Severity::Warning),
            diag("PC01", Severity::Error),
        ]);
        assert!(r.has_rule("BA01"));
        assert!(!r.has_rule("SY01"));
        assert_eq!(r.count(Severity::Error), 1);
        assert_eq!(r.count_at_least(Severity::Warning), 2);
        assert_eq!(r.count_at_least(Severity::Error), 1);
        assert_eq!(r.max_severity(), Some(Severity::Error));
        assert!(!r.is_clean());
    }

    #[test]
    fn penalty_scores_aggregate_per_rule() {
        let r = report(vec![
            diag("BA01", Severity::Warning),
            diag("BA01", Severity::Warning),
            diag("PC01", Severity::Error),
        ]);
        assert!((r.total_penalty_ns() - 0.3).abs() < 1e-12);
        assert!((r.penalty_for_rule("BA01") - 0.2).abs() < 1e-12);
        assert!((r.penalty_for_rule("SY01")).abs() < 1e-12);
        // Residual after remedying the data rules: only PC01 remains.
        let residual = r.penalty_where(|rule| rule != "BA01" && rule != "BA02");
        assert!((residual - 0.1).abs() < 1e-12);
    }

    #[test]
    fn sort_puts_worst_first() {
        let mut r = report(vec![
            diag("ZZ99", Severity::Info),
            diag("BA01", Severity::Error),
            diag("AA01", Severity::Warning),
        ]);
        r.sort_worst_first();
        let order: Vec<_> = r.diagnostics.iter().map(|d| d.rule).collect();
        assert_eq!(order, ["BA01", "AA01", "ZZ99"]);
    }
}
