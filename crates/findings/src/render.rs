//! Report renderers: human-readable table, JSON Lines and SARIF 2.1.0.
//!
//! JSON is emitted by hand — the workspace builds offline with no
//! external dependencies, so there is no serde here. Escaping follows
//! RFC 8259 (quote, backslash and control characters).

use crate::diag::{Diagnostic, Report};
use std::fmt::Write as _;

/// Escapes `s` for inclusion inside a JSON string literal.
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Formats a float for JSON: finite, plain decimal notation.
fn json_num(x: f64) -> String {
    if x.is_finite() {
        format!("{x:.4}")
    } else {
        "null".into()
    }
}

/// Renders the human-readable findings table.
pub fn render_table(report: &Report) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{}: {} on {} @ {:.0} MHz — {} finding(s)",
        report.tool,
        report.design,
        report.device,
        report.clock_mhz,
        report.diagnostics.len()
    );
    if report.diagnostics.is_empty() {
        let _ = writeln!(out, "  clean: no findings above the flag lines");
        return out;
    }
    let _ = writeln!(
        out,
        "{:<7} {:<5} {:<9} {:<28} {:>6} {:>9}  SUBJECT",
        "SEV", "RULE", "SECTION", "LOCATION", "BF", "EST(ns)"
    );
    for d in &report.diagnostics {
        let _ = writeln!(
            out,
            "{:<7} {:<5} {:<9} {:<28} {:>6} {:>9.2}  {}",
            d.severity.to_string(),
            d.rule,
            d.section,
            d.location.to_string(),
            d.broadcast_factor,
            d.est_penalty_ns,
            d.subject
        );
        let _ = writeln!(out, "        {}", d.message);
        let _ = writeln!(out, "        fix: {}", d.remedy);
    }
    let _ = writeln!(
        out,
        "summary: {} error(s), {} warning(s), {} info",
        report.count(crate::Severity::Error),
        report.count(crate::Severity::Warning),
        report.count(crate::Severity::Info),
    );
    out
}

fn diagnostic_json(report: &Report, d: &Diagnostic) -> String {
    let mut o = String::from("{");
    let _ = write!(
        o,
        "\"tool\":\"{}\",\"design\":\"{}\",\"device\":\"{}\",\"rule\":\"{}\",\"name\":\"{}\",\
         \"severity\":\"{}\",\"section\":\"{}\",\"subject\":\"{}\",",
        json_escape(report.tool),
        json_escape(&report.design),
        json_escape(&report.device),
        d.rule,
        d.rule_name,
        d.severity,
        json_escape(d.section),
        json_escape(&d.subject),
    );
    let _ = write!(
        o,
        "\"kernel\":{},\"loop\":{},\"pragma\":{},",
        d.location
            .kernel
            .as_ref()
            .map_or("null".into(), |k| format!("\"{}\"", json_escape(k))),
        d.location
            .looop
            .as_ref()
            .map_or("null".into(), |l| format!("\"{}\"", json_escape(l))),
        d.location
            .pragma
            .as_ref()
            .map_or("null".into(), |p| format!("\"{}\"", json_escape(p))),
    );
    let _ = write!(
        o,
        "\"broadcast_factor\":{},\"est_penalty_ns\":{},\"message\":\"{}\",\"remedy\":\"{}\"}}",
        d.broadcast_factor,
        json_num(d.est_penalty_ns),
        json_escape(&d.message),
        json_escape(d.remedy),
    );
    o
}

/// Renders one JSON object per finding, newline-separated (JSON Lines).
pub fn render_jsonl(report: &Report) -> String {
    let mut out = String::new();
    for d in &report.diagnostics {
        out.push_str(&diagnostic_json(report, d));
        out.push('\n');
    }
    out
}

/// Emits one SARIF run: driver metadata (tool name + rule registry) and
/// the results of every report in `group` (all from the same tool).
fn sarif_run(tool: &str, group: &[&Report]) -> String {
    // The rule registry comes from the first report of the group — every
    // report produced by one tool carries the same registry.
    let mut rules_json = String::new();
    let rules = group.first().map(|r| r.rules.as_slice()).unwrap_or(&[]);
    for (i, r) in rules.iter().enumerate() {
        if i > 0 {
            rules_json.push(',');
        }
        let _ = write!(
            rules_json,
            "{{\"id\":\"{}\",\"name\":\"{}\",\
             \"shortDescription\":{{\"text\":\"{}\"}},\
             \"help\":{{\"text\":\"{}\"}},\
             \"properties\":{{\"paperSection\":\"{}\"}}}}",
            r.id,
            r.name,
            json_escape(r.summary),
            json_escape(r.remedy),
            json_escape(r.section),
        );
    }

    let mut results_json = String::new();
    let mut first = true;
    for report in group {
        for d in &report.diagnostics {
            if !first {
                results_json.push(',');
            }
            first = false;
            let _ = write!(
                results_json,
                "{{\"ruleId\":\"{}\",\"level\":\"{}\",\
                 \"message\":{{\"text\":\"{}\"}},\
                 \"locations\":[{{\"logicalLocations\":[{{\
                 \"fullyQualifiedName\":\"{}\",\"kind\":\"function\"}}]}}],\
                 \"properties\":{{\"subject\":\"{}\",\"broadcastFactor\":{},\
                 \"estPenaltyNs\":{},\"paperSection\":\"{}\",\
                 \"device\":\"{}\",\"remedy\":\"{}\"}}}}",
                d.rule,
                d.severity.sarif_level(),
                json_escape(&d.message),
                json_escape(&d.location.path(&report.design)),
                json_escape(&d.subject),
                d.broadcast_factor,
                json_num(d.est_penalty_ns),
                json_escape(d.section),
                json_escape(&report.device),
                json_escape(d.remedy),
            );
        }
    }

    format!(
        "{{\"tool\":{{\"driver\":{{\"name\":\"{}\",\
         \"version\":\"{}\",\"informationUri\":\
         \"https://example.com/hlsb\",\"rules\":[{rules_json}]}}}},\
         \"results\":[{results_json}]}}",
        json_escape(tool),
        env!("CARGO_PKG_VERSION"),
    )
}

/// Renders one SARIF 2.1.0 document covering all `reports`, grouped into
/// one run per producing tool — so lint and verify findings land in a
/// single log with distinct rule IDs and per-driver rule metadata.
/// Findings reference logical locations (`design/kernel/loop`) since HLS
/// IR has no source files.
pub fn render_sarif(reports: &[Report]) -> String {
    // Group by tool, preserving first-seen order.
    let mut tools: Vec<&'static str> = Vec::new();
    for r in reports {
        if !tools.contains(&r.tool) {
            tools.push(r.tool);
        }
    }

    let mut runs_json = String::new();
    for (i, tool) in tools.iter().enumerate() {
        if i > 0 {
            runs_json.push(',');
        }
        let group: Vec<&Report> = reports.iter().filter(|r| r.tool == *tool).collect();
        runs_json.push_str(&sarif_run(tool, &group));
    }

    format!(
        "{{\"$schema\":\"https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/\
         Schemata/sarif-schema-2.1.0.json\",\"version\":\"2.1.0\",\"runs\":[{runs_json}]}}",
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::diag::{Location, RuleMeta, Severity};

    fn sample() -> Report {
        Report {
            tool: "hlsb-lint",
            design: "demo".into(),
            device: "VU9P".into(),
            clock_mhz: 300.0,
            rules: vec![
                RuleMeta {
                    id: "BA01",
                    name: "data-broadcast",
                    section: "§3.1/§4.1",
                    summary: "wide data broadcast",
                    remedy: "use broadcast_aware",
                },
                RuleMeta {
                    id: "BA02",
                    name: "control-broadcast",
                    section: "§3.2",
                    summary: "wide control broadcast",
                    remedy: "use skid buffers",
                },
            ],
            diagnostics: vec![Diagnostic {
                rule: "BA01",
                rule_name: "data-broadcast",
                severity: Severity::Error,
                section: "§3.1/§4.1",
                subject: "coef \"q\"".into(),
                message: "64-way\nbroadcast".into(),
                location: Location {
                    kernel: Some("top".into()),
                    looop: Some("main".into()),
                    pragma: Some("unroll=64".into()),
                },
                broadcast_factor: 64,
                est_penalty_ns: 1.3,
                remedy: "use \\ broadcast_aware",
            }],
        }
    }

    #[test]
    fn escaping_covers_specials() {
        assert_eq!(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(json_escape("\u{1}"), "\\u0001");
        assert_eq!(json_escape("plain"), "plain");
    }

    #[test]
    fn table_lists_finding_and_summary() {
        let t = render_table(&sample());
        assert!(t.contains("hlsb-lint: demo on VU9P"));
        assert!(t.contains("BA01"));
        assert!(t.contains("top/main [unroll=64]"));
        assert!(t.contains("1 error(s)"));
        let clean = Report {
            diagnostics: vec![],
            ..sample()
        };
        assert!(render_table(&clean).contains("clean"));
    }

    #[test]
    fn jsonl_is_one_escaped_object_per_line() {
        let j = render_jsonl(&sample());
        assert_eq!(j.lines().count(), 1);
        let line = j.lines().next().unwrap();
        assert!(line.starts_with('{') && line.ends_with('}'));
        assert!(line.contains("\"tool\":\"hlsb-lint\""));
        assert!(line.contains("\"rule\":\"BA01\""));
        assert!(line.contains("64-way\\nbroadcast"));
        assert!(line.contains("\"est_penalty_ns\":1.3000"));
        assert!(line.contains("coef \\\"q\\\""));
    }

    #[test]
    fn sarif_has_schema_rules_and_results() {
        let s = render_sarif(&[sample()]);
        assert!(s.contains("\"version\":\"2.1.0\""));
        assert!(s.contains("\"name\":\"hlsb-lint\""));
        // Every registered rule is declared in metadata even if only one
        // fired.
        for id in ["BA01", "BA02"] {
            assert!(s.contains(&format!("\"id\":\"{id}\"")), "{id} missing");
        }
        assert!(s.contains("\"ruleId\":\"BA01\""));
        assert!(s.contains("\"level\":\"error\""));
        assert!(s.contains("\"fullyQualifiedName\":\"demo/top/main\""));
        // Balanced braces — a cheap structural sanity check on the
        // hand-rolled JSON.
        let open = s.matches('{').count();
        let close = s.matches('}').count();
        assert_eq!(open, close);
    }

    #[test]
    fn sarif_merges_multiple_reports_into_one_run() {
        let a = sample();
        let mut b = sample();
        b.design = "other".into();
        let s = render_sarif(&[a, b]);
        assert_eq!(s.matches("\"ruleId\":\"BA01\"").count(), 2);
        assert_eq!(s.matches("\"runs\":[").count(), 1);
        assert_eq!(s.matches("\"driver\"").count(), 1);
    }

    #[test]
    fn sarif_groups_distinct_tools_into_separate_runs() {
        let lint = sample();
        let mut verify = sample();
        verify.tool = "hlsb-verify";
        verify.rules = vec![RuleMeta {
            id: "VN01",
            name: "fifo-multi-writer",
            section: "§2",
            summary: "two loops write one FIFO",
            remedy: "dedicate the channel",
        }];
        verify.diagnostics[0].rule = "VN01";
        let s = render_sarif(&[lint, verify]);
        assert_eq!(s.matches("\"runs\":[").count(), 1);
        assert_eq!(s.matches("\"driver\"").count(), 2);
        assert!(s.contains("\"name\":\"hlsb-lint\""));
        assert!(s.contains("\"name\":\"hlsb-verify\""));
        assert!(s.contains("\"ruleId\":\"VN01\""));
        // Each run declares only its own tool's rules.
        assert_eq!(s.matches("\"id\":\"VN01\"").count(), 1);
        let open = s.matches('{').count();
        let close = s.matches('}').count();
        assert_eq!(open, close);
    }

    #[test]
    fn empty_report_list_is_still_valid_sarif() {
        let s = render_sarif(&[]);
        assert!(s.contains("\"runs\":[]"));
        let open = s.matches('{').count();
        let close = s.matches('}').count();
        assert_eq!(open, close);
    }
}
