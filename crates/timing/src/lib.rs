//! # hlsb-timing — static timing analysis and physical optimizations
//!
//! The downstream half of the "Vivado implementation" substitute:
//!
//! * [`sta()`] — static timing analysis over a placed netlist using the
//!   fabric's distance + fanout wire model, producing the achieved clock
//!   period / Fmax and the critical path;
//! * [`fanout_opt`] — register duplication for high-fanout register-driven
//!   nets (the paper's experiments run Vivado with "retiming and fan-out
//!   optimization enabled"; this is the fan-out half). Combinationally
//!   driven broadcast nets **cannot** be fixed this way — which is exactly
//!   why the paper's behaviour-level optimizations matter;
//! * [`retime()`] — a backward-retiming pass that moves registers across
//!   combinational cells to balance stage delays (the retiming half).
//!
//! # Example
//!
//! ```
//! use hlsb_fabric::{Device, WireModel};
//! use hlsb_netlist::{Cell, Netlist};
//! use hlsb_place::place;
//! use hlsb_timing::sta;
//!
//! let mut nl = Netlist::new("demo");
//! let a = nl.add_cell(Cell::ff("a", 8));
//! let x = nl.add_cell(Cell::comb("x", 8, 0.7, 8));
//! let b = nl.add_cell(Cell::ff("b", 8));
//! nl.connect(a, &[x]);
//! nl.connect(x, &[b]);
//! let dev = Device::ultrascale_plus_vu9p();
//! let p = place(&nl, &dev, 1);
//! let report = sta(&nl, &p, &WireModel::for_device(&dev));
//! assert!(report.fmax_mhz > 100.0);
//! ```

pub mod fanout_opt;
pub mod refine;
pub mod retime;
pub mod sta;

pub use fanout_opt::{optimize_fanout, FanoutOptions};
pub use refine::{refine_critical, RefineOptions};
pub use retime::{retime, RetimeOptions};
pub use sta::{sta, TimingReport, SETUP_NS};
