//! Backward retiming.
//!
//! Moves a register from the output of a combinational cell to its inputs
//! when that shortens the critical path. This is the "retiming enabled"
//! half of the paper's Vivado configuration (§5). Retiming can only
//! balance delay *between existing registers* — it cannot create cycles
//! out of thin air, which is why the paper's broadcast-aware scheduling
//! (which inserts registers at the behaviour level) unlocks gains that
//! retiming alone cannot reach (§6, "retiming will not work without
//! enough registers on the path").

use crate::sta::{sta, TimingReport};
use hlsb_fabric::WireModel;
use hlsb_netlist::{Cell, CellId, CellKind, Netlist};
use hlsb_place::Placement;

/// Options for [`retime`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetimeOptions {
    /// Maximum number of accepted register moves.
    pub max_moves: usize,
}

impl Default for RetimeOptions {
    fn default() -> Self {
        RetimeOptions { max_moves: 32 }
    }
}

/// Report of a retiming run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RetimeReport {
    /// Accepted backward moves.
    pub moves: usize,
}

/// Greedy critical-path retiming: while the capture register of the
/// critical path can legally be pushed backward across its driving
/// combinational cell and doing so reduces the period, apply the move.
///
/// Legality of a backward move across cell `c` with output register `f`:
///
/// * `c` is combinational and drives only `f`;
/// * `f` is a plain [`CellKind::Ff`] with exactly one input (no enable).
///
/// The move re-uses `f` as the register on `c`'s first non-constant input
/// and creates fresh registers on the remaining non-constant inputs, so
/// cycle-accurate behaviour is preserved.
pub fn retime(
    netlist: &mut Netlist,
    placement: &mut Placement,
    wire: &WireModel,
    options: RetimeOptions,
) -> (RetimeReport, TimingReport) {
    let mut report = RetimeReport::default();
    let mut timing = sta(netlist, placement, wire);

    for _ in 0..options.max_moves {
        let Some(candidate) = backward_candidate(netlist, &timing) else {
            break;
        };
        let snapshot = (netlist.clone(), placement.clone());
        apply_backward_move(netlist, placement, candidate);
        let new_timing = sta(netlist, placement, wire);
        if new_timing.period_ns + 1e-9 < timing.period_ns {
            timing = new_timing;
            report.moves += 1;
        } else {
            *netlist = snapshot.0;
            *placement = snapshot.1;
            break;
        }
    }
    (report, timing)
}

/// A legal backward move: (comb cell, its output register).
#[derive(Debug, Clone, Copy)]
struct BackwardMove {
    comb: CellId,
    reg: CellId,
}

fn backward_candidate(netlist: &Netlist, timing: &TimingReport) -> Option<BackwardMove> {
    // The critical path ends [.., comb, reg]; check that exact pattern.
    let path = &timing.critical_path;
    if path.len() < 2 {
        return None;
    }
    let reg = *path.last().unwrap();
    let comb = path[path.len() - 2];
    let reg_cell = netlist.cell(reg);
    let comb_cell = netlist.cell(comb);
    if reg_cell.kind != CellKind::Ff || !comb_cell.kind.is_combinational() {
        return None;
    }
    if netlist.input_nets(reg).len() != 1 {
        return None; // enable/reset present: not a plain pipeline register
    }
    let comb_out = netlist.output_net(comb)?;
    if netlist.net(comb_out).fanout() != 1 || netlist.net(comb_out).sinks[0] != reg {
        return None; // comb drives more than the register
    }
    if netlist.input_nets(comb).is_empty() {
        return None;
    }
    // All of comb's inputs must not already come from `reg` (self loop).
    for &ni in netlist.input_nets(comb) {
        if netlist.net(ni).driver == reg {
            return None;
        }
    }
    Some(BackwardMove { comb, reg })
}

fn apply_backward_move(netlist: &mut Netlist, placement: &mut Placement, mv: BackwardMove) {
    let BackwardMove { comb, reg } = mv;
    let comb_out = netlist.output_net(comb).expect("comb drives reg");
    let reg_out = netlist.output_net(reg);
    let comb_loc = placement.loc(comb);

    let input_nets: Vec<_> = netlist.input_nets(comb).to_vec();
    // Non-constant inputs get registers; constant inputs stay direct.
    let mut reg_reused = false;
    for &ni in &input_nets {
        let driver = netlist.net(ni).driver;
        if netlist.cell(driver).kind == CellKind::Const {
            continue;
        }
        let driver_width = netlist.cell(driver).width;
        if !reg_reused {
            // Re-use `reg`: its input becomes `ni`, its output feeds `comb`.
            netlist.detach_sink(ni, comb);
            // reg's old input was comb_out; detach it.
            netlist.detach_sink(comb_out, reg);
            netlist.attach_sink(ni, reg);
            netlist.cell_mut(reg).width = driver_width;
            netlist.cell_mut(reg).ffs = driver_width;
            if let Some(ro) = reg_out {
                // reg used to drive reg_out; those sinks must now be fed by
                // comb's output. Move them onto comb_out.
                let sinks = netlist.net(ro).sinks.clone();
                for &s in &sinks {
                    netlist.detach_sink(ro, s);
                    netlist.attach_sink(comb_out, s);
                }
            }
            // reg now (or still) drives some net feeding comb.
            netlist.connect(reg, &[comb]);
            placement.set_loc(reg, comb_loc);
            reg_reused = true;
        } else {
            let w = driver_width;
            let r = netlist.add_cell(Cell::ff(format!("rt_{}", netlist.cell(comb).name), w));
            placement.push_loc(comb_loc);
            netlist.detach_sink(ni, comb);
            netlist.attach_sink(ni, r);
            netlist.connect(r, &[comb]);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sta::SETUP_NS;
    use hlsb_netlist::Netlist;
    use hlsb_place::Placement;

    /// in(FF) -> heavy(1.8ns) -> light(0.2ns) -> f(FF) -> out(FF)
    ///
    /// Period is dominated by heavy+light in one stage. Backward-retiming
    /// `f` across `light` splits the chain: heavy | light.
    fn unbalanced_chain() -> (Netlist, Placement) {
        let mut nl = Netlist::new("rt");
        let a = nl.add_cell(Cell::ff("a", 8));
        let heavy = nl.add_cell(Cell::comb("heavy", 8, 1.8, 8));
        let light = nl.add_cell(Cell::comb("light", 8, 0.2, 8));
        let f = nl.add_cell(Cell::ff("f", 8));
        let out = nl.add_cell(Cell::ff("out", 8));
        nl.connect(a, &[heavy]);
        nl.connect(heavy, &[light]);
        nl.connect(light, &[f]);
        nl.connect(f, &[out]);
        let p = Placement::from_locs(vec![(0, 0), (1, 0), (2, 0), (3, 0), (5, 0)], 140, 120);
        (nl, p)
    }

    #[test]
    fn backward_move_reduces_period() {
        let (mut nl, mut p) = unbalanced_chain();
        let w = WireModel::ultrascale_plus();
        let before = sta(&nl, &p, &w);
        let (rep, after) = retime(&mut nl, &mut p, &w, RetimeOptions::default());
        assert!(rep.moves >= 1, "expected at least one move");
        assert!(
            after.period_ns < before.period_ns - 0.1,
            "retiming should shave the light stage: {} -> {}",
            before.period_ns,
            after.period_ns
        );
        nl.validate().expect("netlist still valid after retime");
    }

    #[test]
    fn no_move_on_balanced_chain() {
        // Both stages equal: moving the register can only hurt; the pass
        // must revert and report zero moves.
        let mut nl = Netlist::new("bal");
        let a = nl.add_cell(Cell::ff("a", 8));
        let s1 = nl.add_cell(Cell::comb("s1", 8, 1.0, 8));
        let f = nl.add_cell(Cell::ff("f", 8));
        let s2 = nl.add_cell(Cell::comb("s2", 8, 1.0, 8));
        let out = nl.add_cell(Cell::ff("out", 8));
        nl.connect(a, &[s1]);
        nl.connect(s1, &[f]);
        nl.connect(f, &[s2]);
        nl.connect(s2, &[out]);
        let mut p = Placement::from_locs(vec![(0, 0), (1, 0), (2, 0), (3, 0), (4, 0)], 140, 120);
        let w = WireModel::ultrascale_plus();
        let before = sta(&nl, &p, &w);
        let (rep, after) = retime(&mut nl, &mut p, &w, RetimeOptions::default());
        assert!(after.period_ns <= before.period_ns + 1e-9);
        // Either no move found or reverted.
        assert_eq!(rep.moves, 0);
    }

    #[test]
    fn multi_input_cell_gets_registers_on_all_inputs() {
        // a,b -> add(1.5) -> f -> out ; retiming must register both inputs.
        let mut nl = Netlist::new("multi");
        let a = nl.add_cell(Cell::ff("a", 8));
        let b = nl.add_cell(Cell::ff("b", 8));
        let pre = nl.add_cell(Cell::comb("pre", 8, 1.4, 8));
        let add = nl.add_cell(Cell::comb("add", 8, 0.3, 8));
        let f = nl.add_cell(Cell::ff("f", 8));
        let out = nl.add_cell(Cell::ff("out", 8));
        nl.connect(a, &[pre]);
        nl.connect(pre, &[add]);
        nl.connect(b, &[add]);
        nl.connect(add, &[f]);
        nl.connect(f, &[out]);
        let mut p = Placement::from_locs(
            vec![(0, 0), (0, 1), (1, 0), (2, 0), (3, 0), (4, 0)],
            140,
            120,
        );
        let w = WireModel::ultrascale_plus();
        let ffs_before = nl.stats().ffs;
        let (rep, timing) = retime(&mut nl, &mut p, &w, RetimeOptions::default());
        if rep.moves > 0 {
            assert!(nl.stats().ffs > ffs_before, "new registers created");
            nl.validate().expect("valid");
            assert!(timing.period_ns < 1.4 + 0.3 + 0.5, "split happened");
        }
    }

    #[test]
    fn retime_never_worsens_timing() {
        let (mut nl, mut p) = unbalanced_chain();
        let w = WireModel::ultrascale_plus();
        let before = sta(&nl, &p, &w);
        let (_, after) = retime(&mut nl, &mut p, &w, RetimeOptions { max_moves: 100 });
        assert!(after.period_ns <= before.period_ns + 1e-9);
        // Sanity: the result is in a sane absolute range.
        assert!(after.period_ns > SETUP_NS);
    }
}
