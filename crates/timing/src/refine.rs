//! Timing-driven placement refinement.
//!
//! Simulated-annealing placement minimizes *total* wirelength; the clock
//! period is set by the *worst* path. This pass closes the gap the way
//! physical-synthesis tools do: repeatedly re-run STA, take the cells on
//! the critical path, and move each toward the median position of its
//! connected neighbours (the star-wirelength optimum), keeping the move
//! only if the period improves.
//!
//! Site exclusivity is relaxed for the handful of refined cells (real
//! tools displace neighbours during legalization); the broadcast-spread
//! physics is preserved because a net's many *sinks* stay where global
//! placement put them.

use crate::sta::{sta, TimingReport};
use hlsb_fabric::WireModel;
use hlsb_netlist::{CellId, CellKind, Netlist};
use hlsb_place::sites::snap_column;
use hlsb_place::Placement;

/// Options for [`refine_critical`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RefineOptions {
    /// Maximum refinement rounds (one critical path per round).
    pub max_rounds: usize,
}

impl Default for RefineOptions {
    fn default() -> Self {
        RefineOptions { max_rounds: 200 }
    }
}

/// Report of a refinement run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RefineReport {
    /// Accepted cell moves.
    pub moves: usize,
    /// Rounds executed.
    pub rounds: usize,
}

/// Median location of the cells connected to `cell` (drivers and sinks).
fn neighbor_median(netlist: &Netlist, placement: &Placement, cell: CellId) -> Option<(u16, u16)> {
    let mut xs = Vec::new();
    let mut ys = Vec::new();
    for &net in netlist.input_nets(cell) {
        let d = netlist.net(net).driver;
        if d != cell {
            let (x, y) = placement.loc(d);
            xs.push(x);
            ys.push(y);
        }
    }
    if let Some(net) = netlist.output_net(cell) {
        for &s in &netlist.net(net).sinks {
            if s != cell {
                let (x, y) = placement.loc(s);
                xs.push(x);
                ys.push(y);
            }
        }
    }
    if xs.is_empty() {
        return None;
    }
    xs.sort_unstable();
    ys.sort_unstable();
    Some((xs[xs.len() / 2], ys[ys.len() / 2]))
}

/// Pulls critical-path cells toward their neighbourhood medians while the
/// clock period improves. Returns the report and the final timing.
pub fn refine_critical(
    netlist: &Netlist,
    placement: &mut Placement,
    wire: &WireModel,
    options: RefineOptions,
) -> (RefineReport, TimingReport) {
    let mut report = RefineReport::default();
    let mut timing = sta(netlist, placement, wire);
    let grid_w = placement.grid_w as u16;

    // Phase 1: flatten the global tail of worst arcs. Critical-path
    // refinement alone plays whack-a-mole when many arcs are nearly
    // critical; here every offending arc's endpoints are offered the arc
    // midpoint, accepted when the arc shrinks without hurting the period.
    for _sweep in 0..3 {
        let mut arcs: Vec<(f64, CellId, CellId)> = Vec::new();
        for (_, net) in netlist.nets() {
            let fo = net.fanout();
            for &s in &net.sinks {
                let d = wire.net_delay_ns(placement.dist(net.driver, s), fo);
                arcs.push((d, net.driver, s));
            }
        }
        arcs.sort_by(|a, b| b.0.partial_cmp(&a.0).unwrap());
        let mut any = false;
        for &(old_delay, a, b) in arcs.iter().take(64) {
            let (ax, ay) = placement.loc(a);
            let (bx, by) = placement.loc(b);
            let mid = ((ax + bx) / 2, (ay + by) / 2);
            for (cell, fo_net) in [(a, netlist.output_net(a)), (b, netlist.output_net(a))] {
                let kind = netlist.cell(cell).kind;
                if matches!(kind, CellKind::Input | CellKind::Output) {
                    continue;
                }
                let target = (snap_column(kind, mid.0, grid_w), mid.1);
                let old_loc = placement.loc(cell);
                if target == old_loc {
                    continue;
                }
                placement.set_loc(cell, target);
                let fo = fo_net.map(|n| netlist.net(n).fanout()).unwrap_or(1);
                let new_delay = wire.net_delay_ns(placement.dist(a, b), fo);
                let new_timing = sta(netlist, placement, wire);
                if new_delay + 1e-9 < old_delay && new_timing.period_ns <= timing.period_ns + 1e-9 {
                    timing = new_timing;
                    report.moves += 1;
                    any = true;
                    break; // next arc
                }
                placement.set_loc(cell, old_loc);
            }
        }
        if !any {
            break;
        }
    }

    // Phase 2: critical-path-directed moves.
    for _ in 0..options.max_rounds {
        report.rounds += 1;
        let path = timing.critical_path.clone();
        if path.is_empty() {
            break;
        }
        let mut improved = false;

        // Candidate relocations: each path cell to its neighbourhood
        // median, and each adjacent path pair's endpoints to their arc
        // midpoint (halving the worst arc even when the median is pinned
        // by other neighbours).
        let mut candidates: Vec<(CellId, (u16, u16))> = Vec::new();
        for &cell in &path {
            if let Some(m) = neighbor_median(netlist, placement, cell) {
                candidates.push((cell, m));
            }
        }
        for pair in path.windows(2) {
            let (a, b) = (pair[0], pair[1]);
            let (ax, ay) = placement.loc(a);
            let (bx, by) = placement.loc(b);
            let mid = ((ax + bx) / 2, (ay + by) / 2);
            candidates.push((a, mid));
            candidates.push((b, mid));
        }

        for (cell, (tx, ty)) in candidates {
            let kind = netlist.cell(cell).kind;
            // Ports stay put; everything else may be pulled.
            if matches!(kind, CellKind::Input | CellKind::Output) {
                continue;
            }
            let target = (snap_column(kind, tx, grid_w), ty);
            let old = placement.loc(cell);
            if target == old {
                continue;
            }
            placement.set_loc(cell, target);
            let new_timing = sta(netlist, placement, wire);
            if new_timing.period_ns + 1e-9 < timing.period_ns {
                timing = new_timing;
                report.moves += 1;
                improved = true;
            } else {
                placement.set_loc(cell, old);
            }
        }
        if !improved {
            break;
        }
    }
    (report, timing)
}

#[cfg(test)]
mod tests {
    use super::*;
    use hlsb_netlist::Cell;

    #[test]
    fn pulls_outlier_onto_path() {
        // a(0,0) -> x(far corner!) -> b(2,0): refinement must pull x back.
        let mut nl = Netlist::new("r");
        let a = nl.add_cell(Cell::ff("a", 8));
        let x = nl.add_cell(Cell::comb("x", 8, 0.5, 8));
        let b = nl.add_cell(Cell::ff("b", 8));
        nl.connect(a, &[x]);
        nl.connect(x, &[b]);
        let mut p = Placement::from_locs(vec![(0, 0), (120, 100), (2, 0)], 140, 120);
        let w = WireModel::ultrascale_plus();
        let before = sta(&nl, &p, &w);
        let (rep, after) = refine_critical(&nl, &mut p, &w, RefineOptions::default());
        assert!(rep.moves >= 1);
        assert!(
            after.period_ns < before.period_ns / 2.0,
            "{} -> {}",
            before.period_ns,
            after.period_ns
        );
        // The three cells end up clustered (wherever the cluster forms).
        let spread = p.dist(a, x).max(p.dist(x, b)).max(p.dist(a, b));
        assert!(spread <= 8.0, "cells still spread by {spread}");
    }

    #[test]
    fn respects_column_legality() {
        let mut nl = Netlist::new("r");
        let a = nl.add_cell(Cell::ff("a", 8));
        let m = nl.add_cell(Cell::bram("m", 8, 1));
        let b = nl.add_cell(Cell::ff("b", 8));
        nl.connect(a, &[m]);
        nl.connect(m, &[b]);
        let mut p = Placement::from_locs(vec![(0, 0), (94, 80), (2, 0)], 140, 120);
        let w = WireModel::ultrascale_plus();
        refine_critical(&nl, &mut p, &w, RefineOptions::default());
        assert!(hlsb_place::site_legal(CellKind::Bram, p.loc(m).0));
    }

    #[test]
    fn never_worsens() {
        let mut nl = Netlist::new("r");
        let a = nl.add_cell(Cell::ff("a", 8));
        let x = nl.add_cell(Cell::comb("x", 8, 0.5, 8));
        let b = nl.add_cell(Cell::ff("b", 8));
        nl.connect(a, &[x]);
        nl.connect(x, &[b]);
        let mut p = Placement::from_locs(vec![(0, 0), (1, 0), (2, 0)], 140, 120);
        let w = WireModel::ultrascale_plus();
        let before = sta(&nl, &p, &w);
        let (_, after) = refine_critical(&nl, &mut p, &w, RefineOptions::default());
        assert!(after.period_ns <= before.period_ns + 1e-9);
    }
}
