//! Fan-out optimization by register duplication.
//!
//! For a net driven by a register with fanout above the limit, the driver
//! register is duplicated and the sinks are partitioned among the copies by
//! location. Each copy is fed from the same data net as the original, so
//! the circuit behaviour (and latency) is unchanged while both the fanout
//! term and the driver-to-sink distances shrink.
//!
//! This mirrors what Vivado's `phys_opt_design` fanout optimization does —
//! and shares its fundamental limitation: **a combinationally driven net
//! cannot be split this way** without replicating its whole logic cone, so
//! control broadcasts that originate in comparator/FSM logic (the paper's
//! §3.2–3.3) survive physical optimization. That asymmetry is why the
//! paper's behaviour-level fixes are needed.

use hlsb_netlist::{Cell, CellId, CellKind, Netlist};
use hlsb_place::Placement;

/// Options for [`optimize_fanout`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FanoutOptions {
    /// Maximum fanout allowed on a register-driven net before duplication.
    pub max_fanout: usize,
    /// Upper bound on duplication rounds (a duplicated register's input net
    /// gains fanout and may itself need splitting).
    pub max_rounds: usize,
}

impl Default for FanoutOptions {
    fn default() -> Self {
        FanoutOptions {
            max_fanout: 16,
            max_rounds: 6,
        }
    }
}

/// Statistics returned by [`optimize_fanout`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FanoutOptReport {
    /// Registers created.
    pub duplicated_registers: usize,
    /// Nets that exceeded the limit but could not be optimized because the
    /// driver is combinational (control broadcasts, reduce trees, ...).
    pub unsplittable_nets: usize,
}

/// Splits high-fanout register-driven nets by duplicating their driver.
///
/// New registers are placed at the centroid of the sink cluster they serve
/// (placement exclusivity is relaxed for these few cells, as real tools
/// do by displacing neighbours).
pub fn optimize_fanout(
    netlist: &mut Netlist,
    placement: &mut Placement,
    options: FanoutOptions,
) -> FanoutOptReport {
    let mut report = FanoutOptReport::default();
    let limit = options.max_fanout.max(2);

    for _round in 0..options.max_rounds {
        // Collect offending nets up front; the netlist mutates below.
        let offenders: Vec<CellId> = netlist
            .nets()
            .filter(|(_, net)| net.fanout() > limit)
            .map(|(_, net)| net.driver)
            .collect();
        if offenders.is_empty() {
            break;
        }
        let mut progressed = false;

        for driver in offenders {
            let Some(net_id) = netlist.output_net(driver) else {
                continue;
            };
            if netlist.net(net_id).fanout() <= limit {
                continue; // already handled this round
            }
            if netlist.cell(driver).kind != CellKind::Ff {
                // Combinational / BRAM / port driver: cannot duplicate.
                report.unsplittable_nets += 1;
                continue;
            }
            // A register with no data input (shouldn't happen from rtlgen)
            // cannot be duplicated meaningfully.
            if netlist.input_nets(driver).is_empty() {
                report.unsplittable_nets += 1;
                continue;
            }

            // Partition sinks by location: sort by (x, y) and chunk.
            let mut sinks = netlist.net(net_id).sinks.clone();
            sinks.sort_by_key(|&s| placement.loc(s));
            let groups: Vec<Vec<CellId>> = sinks.chunks(limit).map(<[CellId]>::to_vec).collect();

            // The first group stays on the original register; move the
            // original near its group's centroid.
            placement.set_loc(driver, centroid(placement, &groups[0]));

            let input_nets: Vec<_> = netlist.input_nets(driver).to_vec();
            let width = netlist.cell(driver).width;
            let base_name = netlist.cell(driver).name.clone();
            for (gi, group) in groups.iter().enumerate().skip(1) {
                let dup = netlist.add_cell(Cell::ff(format!("{base_name}_fo{gi}"), width));
                placement.push_loc(centroid(placement, group));
                for &ni in &input_nets {
                    netlist.attach_sink(ni, dup);
                }
                netlist.move_sinks(driver, dup, group);
                report.duplicated_registers += 1;
                progressed = true;
            }
        }
        if !progressed {
            break;
        }
    }
    report
}

fn centroid(placement: &Placement, cells: &[CellId]) -> (u16, u16) {
    if cells.is_empty() {
        return (0, 0);
    }
    let (mut sx, mut sy) = (0u64, 0u64);
    for &c in cells {
        let (x, y) = placement.loc(c);
        sx += u64::from(x);
        sy += u64::from(y);
    }
    (
        (sx / cells.len() as u64) as u16,
        (sy / cells.len() as u64) as u16,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sta::sta;
    use hlsb_fabric::WireModel;

    /// 1 source FF -> `n` sink FFs in a column far from the source.
    fn broadcast_netlist(n: usize) -> (Netlist, Placement, CellId) {
        let mut nl = Netlist::new("b");
        let data = nl.add_cell(Cell::comb("gen", 8, 0.2, 8));
        let src = nl.add_cell(Cell::ff("src", 8));
        nl.connect(data, &[src]);
        let sinks: Vec<_> = (0..n)
            .map(|i| nl.add_cell(Cell::ff(format!("s{i}"), 8)))
            .collect();
        nl.connect(src, &sinks);
        let mut locs = vec![(0u16, 10u16), (1u16, 10u16)];
        locs.extend((0..n).map(|i| (20u16, i as u16)));
        let p = Placement::from_locs(locs, 140, 120);
        (nl, p, src)
    }

    #[test]
    fn splits_register_driven_broadcast() {
        let (mut nl, mut p, src) = broadcast_netlist(64);
        let before = sta(&nl, &p, &WireModel::ultrascale_plus());
        let rep = optimize_fanout(&mut nl, &mut p, FanoutOptions::default());
        assert!(rep.duplicated_registers >= 3);
        let net = nl.net(nl.output_net(src).unwrap());
        assert!(net.fanout() <= 16);
        let after = sta(&nl, &p, &WireModel::ultrascale_plus());
        assert!(
            after.period_ns < before.period_ns,
            "duplication should help: {} -> {}",
            before.period_ns,
            after.period_ns
        );
        nl.validate().expect("still valid");
    }

    #[test]
    fn duplicates_share_the_original_data_input() {
        let (mut nl, mut p, src) = broadcast_netlist(40);
        let data_net = nl.input_nets(src)[0];
        optimize_fanout(&mut nl, &mut p, FanoutOptions::default());
        // Data net fans out to the original + duplicates.
        assert!(nl.net(data_net).fanout() >= 3);
    }

    #[test]
    fn comb_driver_is_not_split() {
        let mut nl = Netlist::new("comb");
        let stall = nl.add_cell(Cell::comb("stall", 1, 0.3, 1));
        let sinks: Vec<_> = (0..64)
            .map(|i| nl.add_cell(Cell::ff(format!("s{i}"), 8)))
            .collect();
        nl.connect(stall, &sinks);
        let mut locs = vec![(0u16, 0u16)];
        locs.extend((0..64).map(|i| (10u16, i as u16)));
        let mut p = Placement::from_locs(locs, 140, 120);
        let rep = optimize_fanout(&mut nl, &mut p, FanoutOptions::default());
        assert_eq!(rep.duplicated_registers, 0);
        assert!(rep.unsplittable_nets >= 1);
        assert_eq!(nl.net(nl.output_net(stall).unwrap()).fanout(), 64);
    }

    #[test]
    fn small_fanout_untouched() {
        let (mut nl, mut p, src) = broadcast_netlist(8);
        let rep = optimize_fanout(&mut nl, &mut p, FanoutOptions::default());
        assert_eq!(rep.duplicated_registers, 0);
        assert_eq!(nl.net(nl.output_net(src).unwrap()).fanout(), 8);
    }

    #[test]
    fn cascaded_rounds_respect_limit_on_input_net() {
        // 600 sinks with limit 16 -> 38 duplicates; the shared data input
        // net then has fanout 38 and needs a second round.
        let (mut nl, mut p, _src) = broadcast_netlist(600);
        // Make the data generator a register so round 2 can split it too.
        optimize_fanout(&mut nl, &mut p, FanoutOptions::default());
        let worst = nl.nets().map(|(_, n)| n.fanout()).max().unwrap();
        // The only net allowed to stay large would be comb-driven; here the
        // data net is driven by a comb cell, so it may stay; register nets
        // must all be within limit.
        for (_, net) in nl.nets() {
            if nl.cell(net.driver).kind == CellKind::Ff {
                assert!(net.fanout() <= 16, "register net fanout {}", net.fanout());
            }
        }
        assert!(worst <= 64, "comb data net should not explode: {worst}");
    }
}
