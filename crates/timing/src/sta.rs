//! Static timing analysis.

use hlsb_fabric::WireModel;
use hlsb_netlist::{CellId, CellKind, Netlist};
use hlsb_place::Placement;

/// Register setup time in nanoseconds.
pub const SETUP_NS: f64 = 0.04;

/// Result of a timing analysis.
#[derive(Debug, Clone, PartialEq)]
pub struct TimingReport {
    /// Achieved minimum clock period, ns.
    pub period_ns: f64,
    /// Achieved maximum frequency, MHz.
    pub fmax_mhz: f64,
    /// Cells on the critical path, launch point first, capture point last.
    pub critical_path: Vec<CellId>,
    /// Worst per-capture-point slack would need a target period; instead we
    /// expose the arrival time at every cell output for diagnostics.
    pub arrival_ns: Vec<f64>,
}

impl TimingReport {
    /// Length of the critical path in cells.
    pub fn depth(&self) -> usize {
        self.critical_path.len()
    }

    /// Renders the critical path as a per-arc breakdown, in the style of a
    /// `report_timing` text report: one line per hop with the cell, its
    /// placed location, the net's fanout, and the incremental delay.
    pub fn path_text(&self, netlist: &Netlist, placement: &Placement, wire: &WireModel) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "critical path: {:.3} ns ({:.0} MHz), {} cells",
            self.period_ns,
            self.fmax_mhz,
            self.critical_path.len()
        );
        let mut total = 0.0f64;
        for (i, &c) in self.critical_path.iter().enumerate() {
            let cell = netlist.cell(c);
            let (x, y) = placement.loc(c);
            let logic =
                if i == 0 || cell.kind.is_combinational() || i + 1 == self.critical_path.len() {
                    cell.delay_ns
                } else {
                    0.0
                };
            let net = if i > 0 {
                let prev = self.critical_path[i - 1];
                let fo = netlist
                    .output_net(prev)
                    .map(|n| netlist.net(n).fanout())
                    .unwrap_or(1);
                wire.net_delay_ns(placement.dist(prev, c), fo)
            } else {
                0.0
            };
            let fo_here = netlist
                .output_net(c)
                .map(|n| netlist.net(n).fanout())
                .unwrap_or(0);
            total += logic + net;
            let _ = writeln!(
                out,
                "  {:>2}. {:<10} {:<32} @({x:>3},{y:>3})  net {net:>6.3}  logic {logic:>6.3}  \
                 total {total:>7.3}  fanout {fo_here}",
                i,
                cell.kind.to_string(),
                cell.name,
            );
        }
        let _ = writeln!(out, "  (+ setup {SETUP_NS:.3} ns)");
        out
    }
}

/// Whether the timing graph treats the cell's output as launched at a clock
/// edge (fixed arrival) rather than combinationally propagated.
fn is_launch(kind: CellKind) -> bool {
    matches!(
        kind,
        CellKind::Ff | CellKind::Bram | CellKind::Input | CellKind::Const
    )
}

/// Runs STA over a placed netlist.
///
/// Path delay from a driver output to a sink input is
/// `arrival(driver) + wire(dist(driver, sink), fanout(net))`; sequential and
/// output cells capture with [`SETUP_NS`] of setup. Constants contribute no
/// delay.
///
/// # Panics
///
/// Panics if the netlist contains a combinational cycle (validate first).
pub fn sta(netlist: &Netlist, placement: &Placement, wire: &WireModel) -> TimingReport {
    let n = netlist.cell_count();
    let order = netlist
        .comb_topo_order()
        .expect("netlist must be free of combinational cycles");

    // Arrival time at each cell's *output*.
    let mut arrival = vec![0.0f64; n];
    // For path reconstruction: the input driver that determined the arrival.
    let mut best_pred: Vec<Option<CellId>> = vec![None; n];

    // Contribution of `driver` to a sink's input arrival.
    let contribution = |arrival: &[f64], driver: CellId, sink: CellId, fanout: usize| -> f64 {
        if netlist.cell(driver).kind == CellKind::Const {
            return 0.0;
        }
        arrival[driver.index()] + wire.net_delay_ns(placement.dist(driver, sink), fanout)
    };

    // Launch arrivals are fixed and must be set before any combinational
    // cell is evaluated (the topo order only constrains comb-to-comb arcs).
    for (c, cell) in netlist.cells() {
        if is_launch(cell.kind) {
            arrival[c.index()] = cell.delay_ns;
        }
    }

    for &c in &order {
        let cell = netlist.cell(c);
        if is_launch(cell.kind) {
            continue;
        }
        // Combinational (Comb/Dsp) or Output. Output cells have no output
        // arrival of interest but we compute it anyway (0-delay pass).
        let mut worst = 0.0f64;
        let mut pred = None;
        for &net_id in netlist.input_nets(c) {
            let net = netlist.net(net_id);
            let a = contribution(&arrival, net.driver, c, net.fanout());
            if a > worst {
                worst = a;
                pred = Some(net.driver);
            }
        }
        arrival[c.index()] = worst + cell.delay_ns;
        best_pred[c.index()] = pred;
    }

    // Capture points: sequential or output sinks.
    let mut period = 0.0f64;
    let mut crit_sink = None;
    let mut crit_driver = None;
    for (_, net) in netlist.nets() {
        let fo = net.fanout();
        for &s in &net.sinks {
            let k = netlist.cell(s).kind;
            if k.is_sequential() || k == CellKind::Output {
                let total = contribution(&arrival, net.driver, s, fo) + SETUP_NS;
                if total > period {
                    period = total;
                    crit_sink = Some(s);
                    crit_driver = Some(net.driver);
                }
            }
        }
    }

    // A design with no capture points (e.g. a lone register) still needs a
    // positive period.
    if period <= 0.0 {
        period = SETUP_NS + 0.1;
    }

    // Reconstruct the critical path.
    let mut path = Vec::new();
    if let (Some(sink), Some(mut cur)) = (crit_sink, crit_driver) {
        path.push(sink);
        loop {
            path.push(cur);
            match best_pred[cur.index()] {
                Some(p) => cur = p,
                None => break,
            }
        }
        path.reverse();
    }

    TimingReport {
        period_ns: period,
        fmax_mhz: 1000.0 / period,
        critical_path: path,
        arrival_ns: arrival,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hlsb_fabric::Device;
    use hlsb_netlist::Cell;
    use hlsb_place::Placement;

    /// Places cells at explicit coordinates for hand-computable delays.
    fn fixed_placement(locs: Vec<(u16, u16)>) -> Placement {
        Placement::from_locs(locs, 140, 120)
    }

    fn wire() -> WireModel {
        WireModel::ultrascale_plus()
    }

    #[test]
    fn single_stage_path_delay_is_exact() {
        // a(FF) --net--> x(comb 0.7) --net--> b(FF)
        let mut nl = Netlist::new("t");
        let a = nl.add_cell(Cell::ff("a", 8));
        let x = nl.add_cell(Cell::comb("x", 8, 0.7, 8));
        let b = nl.add_cell(Cell::ff("b", 8));
        nl.connect(a, &[x]);
        nl.connect(x, &[b]);
        let p = fixed_placement(vec![(0, 0), (1, 0), (2, 0)]);
        let w = wire();
        let r = sta(&nl, &p, &w);
        let expected = 0.10 // clk-to-q
            + w.net_delay_ns(1.0, 1)
            + 0.7
            + w.net_delay_ns(1.0, 1)
            + SETUP_NS;
        assert!(
            (r.period_ns - expected).abs() < 1e-9,
            "{} vs {expected}",
            r.period_ns
        );
        assert_eq!(r.critical_path, vec![a, x, b]);
    }

    #[test]
    fn fanout_increases_delay() {
        let dev = Device::ultrascale_plus_vu9p();
        let w = WireModel::for_device(&dev);
        // Driver with 1 sink vs driver with 32 sinks at same max distance.
        let mut nl1 = Netlist::new("fo1");
        let a1 = nl1.add_cell(Cell::ff("a", 8));
        let b1 = nl1.add_cell(Cell::ff("b", 8));
        nl1.connect(a1, &[b1]);
        let p1 = fixed_placement(vec![(0, 0), (5, 0)]);
        let r1 = sta(&nl1, &p1, &w);

        let mut nl2 = Netlist::new("fo32");
        let a2 = nl2.add_cell(Cell::ff("a", 8));
        let sinks: Vec<_> = (0..32)
            .map(|i| nl2.add_cell(Cell::ff(format!("s{i}"), 8)))
            .collect();
        nl2.connect(a2, &sinks);
        let mut locs = vec![(0u16, 0u16)];
        locs.extend((0..32).map(|i| (5u16, i as u16)));
        let p2 = fixed_placement(locs);
        let r2 = sta(&nl2, &p2, &w);

        assert!(r2.period_ns > r1.period_ns);
    }

    #[test]
    fn constants_are_free() {
        let mut nl = Netlist::new("c");
        let k = nl.add_cell(Cell::constant("k", 8));
        let x = nl.add_cell(Cell::comb("x", 8, 0.5, 8));
        let b = nl.add_cell(Cell::ff("b", 8));
        nl.connect(k, &[x]);
        nl.connect(x, &[b]);
        let p = fixed_placement(vec![(0, 0), (50, 50), (51, 50)]);
        let w = wire();
        let r = sta(&nl, &p, &w);
        // Path is only x -> b; the 100-unit const net contributes nothing.
        let expected = 0.5 + w.net_delay_ns(1.0, 1) + SETUP_NS;
        assert!((r.period_ns - expected).abs() < 1e-9);
    }

    #[test]
    fn longest_of_parallel_paths_wins() {
        let mut nl = Netlist::new("par");
        let a = nl.add_cell(Cell::ff("a", 8));
        let fast = nl.add_cell(Cell::comb("fast", 8, 0.2, 8));
        let slow = nl.add_cell(Cell::comb("slow", 8, 1.5, 8));
        let b = nl.add_cell(Cell::ff("b", 8));
        let c = nl.add_cell(Cell::ff("c", 8));
        nl.connect(a, &[fast, slow]);
        nl.connect(fast, &[b]);
        nl.connect(slow, &[c]);
        let p = fixed_placement(vec![(0, 0), (1, 0), (1, 1), (2, 0), (2, 1)]);
        let r = sta(&nl, &p, &wire());
        assert!(r.critical_path.contains(&slow));
        assert!(!r.critical_path.contains(&fast));
    }

    #[test]
    fn bram_clock_to_out_counts() {
        let mut nl = Netlist::new("mem");
        let m = nl.add_cell(Cell::bram("m", 32, 4));
        let x = nl.add_cell(Cell::comb("x", 32, 0.3, 32));
        let b = nl.add_cell(Cell::ff("b", 32));
        nl.connect(m, &[x]);
        nl.connect(x, &[b]);
        let p = fixed_placement(vec![(4, 0), (5, 0), (6, 0)]);
        let w = wire();
        let r = sta(&nl, &p, &w);
        let expected = 0.90 + w.net_delay_ns(1.0, 1) + 0.3 + w.net_delay_ns(1.0, 1) + SETUP_NS;
        assert!((r.period_ns - expected).abs() < 1e-9);
    }

    #[test]
    fn path_text_breaks_down_arcs() {
        let mut nl = Netlist::new("t");
        let a = nl.add_cell(Cell::ff("a", 8));
        let x = nl.add_cell(Cell::comb("x", 8, 0.7, 8));
        let b = nl.add_cell(Cell::ff("b", 8));
        nl.connect(a, &[x]);
        nl.connect(x, &[b]);
        let p = fixed_placement(vec![(0, 0), (1, 0), (2, 0)]);
        let w = wire();
        let r = sta(&nl, &p, &w);
        let text = r.path_text(&nl, &p, &w);
        assert!(text.contains("critical path"), "{text}");
        assert!(text.contains("x"), "{text}");
        assert!(text.lines().count() >= 5, "{text}");
        // The per-arc totals accumulate to about the period (minus setup).
        assert!(text.contains("setup"), "{text}");
    }

    #[test]
    fn empty_netlist_has_finite_fmax() {
        let nl = Netlist::new("empty");
        let p = fixed_placement(vec![]);
        let r = sta(&nl, &p, &wire());
        assert!(r.fmax_mhz.is_finite());
        assert!(r.period_ns > 0.0);
    }
}
