//! The compile-farm record types: persisted flow results and stage
//! fingerprints.
//!
//! What the store persists (and what it deliberately does not):
//!
//! * [`ResultRecord`] — the scalar digest of one full-flow evaluation,
//!   keyed by [`Flow::config_key`](../hlsb/struct.Flow.html#method.config_key).
//!   This is the record that lets a warm store answer a repeated job with
//!   **zero** place-and-route work.
//! * [`StageRecord`] — the content fingerprint of one cached stage
//!   artifact (front-end or schedule), keyed by the session cache's stage
//!   key. Artifact *bodies* are full IR (unrolled loops, schedules) and
//!   are rebuilt on demand — stage work is milliseconds against the
//!   implement stage's seconds, so persisting the fingerprint buys
//!   cross-process hit accounting and a determinism audit (a fingerprint
//!   mismatch means two processes disagreed on a supposedly pure build)
//!   at none of the serialization cost.

use crate::json::{json_escape, raw_field, string_field};
use crate::table::JsonlRecord;

/// The pipeline stage a [`StageRecord`] fingerprints.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum StageKind {
    /// Verify/split/unroll/DCE — keyed by `(design, split?)`.
    FrontEnd,
    /// Loop scheduling — keyed by the front-end key plus clock/options.
    Schedule,
}

impl StageKind {
    /// Stable wire name.
    pub fn name(self) -> &'static str {
        match self {
            StageKind::FrontEnd => "front_end",
            StageKind::Schedule => "schedule",
        }
    }

    fn from_name(name: &str) -> Option<StageKind> {
        match name {
            "front_end" => Some(StageKind::FrontEnd),
            "schedule" => Some(StageKind::Schedule),
            _ => None,
        }
    }

    fn discriminant(self) -> u64 {
        match self {
            StageKind::FrontEnd => 1,
            StageKind::Schedule => 2,
        }
    }
}

/// Table key of a stage fingerprint: the stage's own key salted with the
/// stage kind, so a front-end key and a schedule key that happen to share
/// a `u64` value never collide in one table.
pub fn stage_table_key(stage: StageKind, key: u64) -> u64 {
    crate::combine(&[stage.discriminant(), key])
}

/// One persisted full-flow evaluation: everything a warm serve needs to
/// answer the job without touching the pipeline. Scalar-only by design —
/// [`raw_field`](crate::json::raw_field) parsing keeps records flat.
#[derive(Debug, Clone, PartialEq)]
pub struct ResultRecord {
    /// `Flow::config_key` of the evaluated flow (covers design, device
    /// and every knob).
    pub key: u64,
    /// Design name (informational; the key is authoritative).
    pub design: String,
    /// Human-readable configuration label.
    pub label: String,
    /// Achieved maximum frequency, MHz.
    pub fmax_mhz: f64,
    /// Achieved minimum clock period, ns.
    pub period_ns: f64,
    /// Static latency, cycles.
    pub latency_cycles: u64,
    /// Absolute LUT count.
    pub luts: u64,
    /// Absolute flip-flop count.
    pub ffs: u64,
    /// Absolute BRAM count.
    pub brams: u64,
    /// Absolute DSP count.
    pub dsps: u64,
    /// Registers inserted by broadcast-aware scheduling.
    pub inserted_regs: u64,
    /// Registers duplicated by physical fanout optimization.
    pub duplicated_regs: u64,
    /// Backward retiming moves applied.
    pub retime_moves: u64,
    /// Wall-clock cost of the original evaluation, milliseconds. Varies
    /// run to run; everything else round-trips bit-exactly.
    pub wall_ms: f64,
}

impl JsonlRecord for ResultRecord {
    fn key(&self) -> u64 {
        self.key
    }

    fn to_json(&self) -> String {
        format!(
            "{{\"key\":{},\"design\":\"{}\",\"label\":\"{}\",\
             \"fmax_mhz\":{:?},\"period_ns\":{:?},\"latency_cycles\":{},\
             \"luts\":{},\"ffs\":{},\"brams\":{},\"dsps\":{},\
             \"inserted_regs\":{},\"duplicated_regs\":{},\"retime_moves\":{},\
             \"wall_ms\":{:?}}}",
            self.key,
            json_escape(&self.design),
            json_escape(&self.label),
            self.fmax_mhz,
            self.period_ns,
            self.latency_cycles,
            self.luts,
            self.ffs,
            self.brams,
            self.dsps,
            self.inserted_regs,
            self.duplicated_regs,
            self.retime_moves,
            self.wall_ms,
        )
    }

    fn from_json(line: &str) -> Option<ResultRecord> {
        let line = line.trim();
        if !(line.starts_with('{') && line.ends_with('}')) {
            return None;
        }
        Some(ResultRecord {
            key: raw_field(line, "key")?.parse().ok()?,
            design: string_field(line, "design")?,
            label: string_field(line, "label")?,
            fmax_mhz: raw_field(line, "fmax_mhz")?.parse().ok()?,
            period_ns: raw_field(line, "period_ns")?.parse().ok()?,
            latency_cycles: raw_field(line, "latency_cycles")?.parse().ok()?,
            luts: raw_field(line, "luts")?.parse().ok()?,
            ffs: raw_field(line, "ffs")?.parse().ok()?,
            brams: raw_field(line, "brams")?.parse().ok()?,
            dsps: raw_field(line, "dsps")?.parse().ok()?,
            inserted_regs: raw_field(line, "inserted_regs")?.parse().ok()?,
            duplicated_regs: raw_field(line, "duplicated_regs")?.parse().ok()?,
            retime_moves: raw_field(line, "retime_moves")?.parse().ok()?,
            wall_ms: raw_field(line, "wall_ms")?.parse().ok()?,
        })
    }
}

/// One persisted stage-artifact fingerprint (see the module docs for why
/// bodies are not persisted).
#[derive(Debug, Clone, PartialEq)]
pub struct StageRecord {
    /// Which stage built the artifact.
    pub stage: StageKind,
    /// The session cache's stage key (content hash of the stage inputs).
    pub key: u64,
    /// Content hash of the built artifact.
    pub fingerprint: u64,
    /// Wall-clock cost of the original build, milliseconds.
    pub wall_ms: f64,
}

impl JsonlRecord for StageRecord {
    fn key(&self) -> u64 {
        stage_table_key(self.stage, self.key)
    }

    fn to_json(&self) -> String {
        format!(
            "{{\"stage\":\"{}\",\"key\":{},\"fingerprint\":{},\"wall_ms\":{:?}}}",
            self.stage.name(),
            self.key,
            self.fingerprint,
            self.wall_ms,
        )
    }

    fn from_json(line: &str) -> Option<StageRecord> {
        let line = line.trim();
        if !(line.starts_with('{') && line.ends_with('}')) {
            return None;
        }
        let stage = StageKind::from_name(&string_field(line, "stage")?)?;
        Some(StageRecord {
            stage,
            key: raw_field(line, "key")?.parse().ok()?,
            fingerprint: raw_field(line, "fingerprint")?.parse().ok()?,
            wall_ms: raw_field(line, "wall_ms")?.parse().ok()?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    pub(crate) fn result_record(key: u64, fmax: f64) -> ResultRecord {
        ResultRecord {
            key,
            design: "bench \"x\"".into(),
            label: "BSKM ×2 fast".into(),
            fmax_mhz: fmax,
            period_ns: 1000.0 / fmax,
            latency_cycles: 1047,
            luts: 2310,
            ffs: 4120,
            brams: 12,
            dsps: 3,
            inserted_regs: 17,
            duplicated_regs: 4,
            retime_moves: 2,
            wall_ms: 1433.7,
        }
    }

    #[test]
    fn result_round_trip_is_exact() {
        let rec = result_record(0xDEAD_BEEF_0BAD_F00D, 341.229_999_999_7);
        let line = rec.to_json();
        let back = ResultRecord::from_json(&line).expect("parses");
        assert_eq!(back, rec, "round trip must be bit-exact:\n{line}");
        assert!(ResultRecord::from_json("{\"key\":1").is_none());
        assert!(ResultRecord::from_json("").is_none());
    }

    #[test]
    fn result_truncation_never_panics_and_never_half_parses() {
        let line = result_record(42, 300.5).to_json();
        for cut in (0..line.len()).filter(|&c| line.is_char_boundary(c)) {
            assert!(
                ResultRecord::from_json(&line[..cut]).is_none(),
                "truncated at {cut} must not parse"
            );
        }
        assert!(ResultRecord::from_json(&line).is_some());
    }

    #[test]
    fn stage_round_trip_and_table_key_salting() {
        for stage in [StageKind::FrontEnd, StageKind::Schedule] {
            let rec = StageRecord {
                stage,
                key: 0x1234_5678_9ABC_DEF0,
                fingerprint: 0x0FED_CBA9_8765_4321,
                wall_ms: 3.25,
            };
            let back = StageRecord::from_json(&rec.to_json()).expect("parses");
            assert_eq!(back, rec);
        }
        assert_ne!(
            stage_table_key(StageKind::FrontEnd, 7),
            stage_table_key(StageKind::Schedule, 7),
            "stage kinds must never collide in one table"
        );
        assert!(StageRecord::from_json(
            "{\"stage\":\"lower\",\"key\":1,\"fingerprint\":2,\"wall_ms\":0.1}"
        )
        .is_none());
    }
}
