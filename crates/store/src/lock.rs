//! Advisory cross-process locking for a shared store directory.
//!
//! The lock is a plain OS file lock (`std::fs::File::lock`) on a
//! dedicated `LOCK` file inside the store directory — never on a data
//! segment, so readers can scan segments while a writer appends. Within
//! one process the [`ArtifactStore`](crate::ArtifactStore) additionally
//! serializes writers with a mutex; the file lock exists for the
//! multi-process case (several `hlsb-serve` or DSE invocations sharing
//! one store).
//!
//! Advisory means cooperative: every writer in this workspace takes the
//! lock around its read-tail/heal/append critical section, and crashed
//! holders are harmless — the OS releases the lock when the process
//! dies, and the append discipline (one `write` per full line, heal
//! before append) keeps the segment parseable regardless.

use std::fs::{File, OpenOptions};
use std::io;
use std::path::Path;

/// Name of the lock file inside a store directory.
pub const LOCK_FILE: &str = "LOCK";

/// An exclusive advisory lock, held until dropped.
#[derive(Debug)]
pub struct StoreLock {
    file: File,
}

impl StoreLock {
    /// Blocks until the exclusive lock on `path` is acquired. The file
    /// is created if missing; its contents are never read or written.
    ///
    /// # Errors
    ///
    /// I/O errors creating or locking the file.
    pub fn acquire(path: impl AsRef<Path>) -> io::Result<StoreLock> {
        let file = OpenOptions::new()
            .create(true)
            .write(true)
            .truncate(false)
            .open(path)?;
        file.lock()?;
        Ok(StoreLock { file })
    }
}

impl Drop for StoreLock {
    fn drop(&mut self) {
        // Best effort: the OS also releases the lock when the
        // descriptor closes.
        let _ = self.file.unlock();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lock_is_reacquirable_after_drop() {
        let dir = std::env::temp_dir().join("hlsb_store_lock_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(format!("LOCK_{}", std::process::id()));
        let a = StoreLock::acquire(&path).expect("first acquire");
        drop(a);
        let b = StoreLock::acquire(&path).expect("reacquire after drop");
        drop(b);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn lock_excludes_across_handles() {
        // Hold the lock, have a thread try to take it, and observe that
        // the thread only succeeds after the holder drops. The release
        // happens-before the acquire, so the counter order is exact.
        use std::sync::atomic::{AtomicU32, Ordering};
        use std::sync::Arc;

        let dir = std::env::temp_dir().join("hlsb_store_lock_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(format!("LOCK_excl_{}", std::process::id()));
        let holder = StoreLock::acquire(&path).expect("holder acquires");

        let step = Arc::new(AtomicU32::new(0));
        let (step2, path2) = (Arc::clone(&step), path.clone());
        let waiter = std::thread::spawn(move || {
            let _lock = StoreLock::acquire(&path2).expect("waiter acquires");
            step2.store(2, Ordering::SeqCst);
        });

        std::thread::sleep(std::time::Duration::from_millis(50));
        // The waiter must still be blocked while we hold the lock.
        assert_eq!(step.load(Ordering::SeqCst), 0, "lock did not exclude");
        step.store(1, Ordering::SeqCst);
        drop(holder);
        waiter.join().unwrap();
        assert_eq!(step.load(Ordering::SeqCst), 2);
        std::fs::remove_file(&path).unwrap();
    }
}
