//! Hand-rolled JSON field helpers shared by every JSONL record codec in
//! the workspace (the container that builds this workspace has no network
//! access, so no serde). The conventions are those the `hlsb-dse` result
//! store established: flat one-line objects, floats in Rust's shortest
//! round-trip notation (`{:?}`), strings escaped with
//! [`json_escape`].

pub use hlsb_findings::json_escape;

/// The raw token of `"name":<token>` up to the next `,` or the closing
/// `}` — sufficient for flat records whose string values contain no
/// commas (true by construction of every label this workspace writes).
pub fn raw_field<'a>(line: &'a str, name: &str) -> Option<&'a str> {
    let tag = format!("\"{name}\":");
    let start = line.find(&tag)? + tag.len();
    let rest = &line[start..];
    let end = rest.find([',', '}'])?;
    Some(&rest[..end])
}

/// The string value of `"name":"..."`, unescaped (quote and backslash).
pub fn string_field(line: &str, name: &str) -> Option<String> {
    let raw = raw_field(line, name)?;
    let inner = raw.strip_prefix('"')?.strip_suffix('"')?;
    Some(inner.replace("\\\"", "\"").replace("\\\\", "\\"))
}

/// The boolean value of `"name":true|false`.
pub fn bool_field(line: &str, name: &str) -> Option<bool> {
    match raw_field(line, name)? {
        "true" => Some(true),
        "false" => Some(false),
        _ => None,
    }
}

/// The bracketed token of `"name":[...]` including the brackets —
/// [`raw_field`] stops at the first comma, so arrays need their own
/// scanner. Only flat arrays of unquoted scalars are supported (no
/// nesting, no strings), which is all the store formats use.
pub fn array_field<'a>(line: &'a str, name: &str) -> Option<&'a str> {
    let tag = format!("\"{name}\":[");
    let start = line.find(&tag)? + tag.len() - 1;
    let rest = &line[start..];
    let end = rest.find(']')?;
    Some(&rest[..=end])
}

/// Parses the output of [`array_field`] into numbers.
pub fn parse_u32_array(raw: &str) -> Option<Vec<u32>> {
    let inner = raw.strip_prefix('[')?.strip_suffix(']')?.trim();
    if inner.is_empty() {
        return Some(Vec::new());
    }
    inner
        .split(',')
        .map(|tok| tok.trim().parse().ok())
        .collect()
}

/// Renders a `u32` slice as a flat JSON array.
pub fn render_u32_array(values: &[u32]) -> String {
    let parts: Vec<String> = values.iter().map(u32::to_string).collect();
    format!("[{}]", parts.join(","))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn field_extraction() {
        let line = "{\"key\":7,\"name\":\"a \\\"b\\\"\",\"ok\":true,\"v\":[1,2,3],\"f\":1.25}";
        assert_eq!(raw_field(line, "key"), Some("7"));
        assert_eq!(string_field(line, "name").as_deref(), Some("a \"b\""));
        assert_eq!(bool_field(line, "ok"), Some(true));
        assert_eq!(array_field(line, "v"), Some("[1,2,3]"));
        assert_eq!(parse_u32_array("[1,2,3]"), Some(vec![1, 2, 3]));
        assert_eq!(parse_u32_array("[]"), Some(vec![]));
        assert_eq!(raw_field(line, "f"), Some("1.25"));
        assert_eq!(raw_field(line, "missing"), None);
        assert_eq!(render_u32_array(&[1, 2, 3]), "[1,2,3]");
        assert_eq!(render_u32_array(&[]), "[]");
    }
}
