//! `hlsb-store` — the persistent content-addressed store behind the
//! compile-farm subsystem.
//!
//! Three layers, each usable on its own:
//!
//! * [`json`] — the hand-rolled flat-JSON field helpers every JSONL
//!   codec in the workspace shares (the build is offline; there is no
//!   serde).
//! * [`JsonlTable`] — a generic keyed table over an append-only JSONL
//!   file with the workspace's durability rules: append+flush per
//!   record, partial-trailing-line tolerance, later-duplicate-wins, and
//!   heal-before-append so a writer killed mid-line never corrupts its
//!   successors. The DSE `ResultStore` and the explorer `FreqLog` are
//!   thin wrappers over this type.
//! * [`ArtifactStore`] — the on-disk store proper: [`ResultRecord`] and
//!   [`StageRecord`] segments sharded by key across
//!   [`SHARD_COUNT`] append-only files, guarded by an advisory
//!   [`StoreLock`] so concurrent processes share one directory safely.
//!   It implements [`ArtifactBackend`], the interface `hlsb-core`'s
//!   session cache uses to consult and feed a store without knowing
//!   anything about files.
//!
//! Design rationale, layout and locking rules: `DESIGN.md` §3g.

pub mod json;
pub mod table;

mod artifact;
mod lock;
mod record;

pub use artifact::{ArtifactBackend, ArtifactStore, SHARD_COUNT};
pub use lock::{StoreLock, LOCK_FILE};
pub use record::{stage_table_key, ResultRecord, StageKind, StageRecord};
pub use table::{JsonlRecord, JsonlTable};

/// 64-bit FNV-1a over an order-dependent sequence of parts — the same
/// combination function the session cache uses for its stage keys, so
/// keys derived here and there agree across processes and platforms.
pub fn combine(parts: &[u64]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &p in parts {
        for b in p.to_le_bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn combine_is_order_dependent_and_stable() {
        assert_eq!(combine(&[1, 2]), combine(&[1, 2]));
        assert_ne!(combine(&[1, 2]), combine(&[2, 1]));
        assert_ne!(combine(&[]), combine(&[0]));
    }
}
