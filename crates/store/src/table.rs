//! The generic keyed JSONL table — the durability core shared by every
//! persistent store in the workspace (the DSE `ResultStore`, the explorer
//! `FreqLog`, and the compile-farm `ArtifactStore` shards).
//!
//! Durability rules (established by the DSE store, now centralized here):
//!
//! * **append + flush per record** — a kill loses at most the line being
//!   written, never a previously inserted record;
//! * **partial-trailing-line tolerance** — any line that does not parse
//!   (half-written after a kill, or from a future format) is skipped on
//!   load;
//! * **later-duplicate-wins** — the file is a log; a re-inserted key is
//!   appended again and loads keep the latest record;
//! * **heal-before-append** — if the file's last byte is not a newline
//!   (another writer was killed mid-append), a newline is written first so
//!   the new record never glues onto the partial line and both stay
//!   individually parseable-or-skippable.
//!
//! Each record is one flat JSON line written by the record type itself
//! ([`JsonlRecord::to_json`]); the table never interprets the line beyond
//! handing it back to [`JsonlRecord::from_json`].

use std::collections::HashMap;
use std::fs::{File, OpenOptions};
use std::io::{BufRead, BufReader, Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

/// A record that can live in a [`JsonlTable`]: keyed, and codable as one
/// flat JSON line.
pub trait JsonlRecord: Clone {
    /// The dedup key. Two records with equal keys describe the same
    /// entity; the later one wins.
    fn key(&self) -> u64;

    /// Renders the record as one JSON line (no trailing newline). Must
    /// not contain `\n`.
    fn to_json(&self) -> String;

    /// Parses one line written by [`to_json`](JsonlRecord::to_json).
    /// Returns `None` for malformed input (e.g. a half-written trailing
    /// line after a kill) — the table skips such lines on load.
    fn from_json(line: &str) -> Option<Self>
    where
        Self: Sized;
}

/// Keyed table of records, optionally backed by an append-only JSONL
/// file.
#[derive(Debug)]
pub struct JsonlTable<R> {
    path: Option<PathBuf>,
    file: Option<File>,
    records: HashMap<u64, R>,
    /// Insertion order of keys (load order, then append order).
    order: Vec<u64>,
}

impl<R> Default for JsonlTable<R> {
    fn default() -> Self {
        JsonlTable {
            path: None,
            file: None,
            records: HashMap::new(),
            order: Vec::new(),
        }
    }
}

impl<R: JsonlRecord> JsonlTable<R> {
    /// An unbacked table: dedup within one process, nothing persisted.
    pub fn in_memory() -> Self {
        JsonlTable::default()
    }

    /// Opens (or creates) a file-backed table and loads every parseable
    /// record. Later duplicates of a key win, matching append semantics.
    ///
    /// # Errors
    ///
    /// I/O errors opening or reading the file.
    pub fn open(path: impl AsRef<Path>) -> std::io::Result<Self> {
        let path = path.as_ref().to_path_buf();
        let mut table = JsonlTable {
            path: Some(path.clone()),
            ..JsonlTable::default()
        };
        if path.exists() {
            for line in BufReader::new(File::open(&path)?).lines() {
                if let Some(rec) = R::from_json(&line?) {
                    table.remember(rec);
                }
            }
        }
        table.file = Some(
            OpenOptions::new()
                .create(true)
                .read(true)
                .append(true)
                .open(&path)?,
        );
        Ok(table)
    }

    /// The backing path, when file-backed.
    pub fn path(&self) -> Option<&Path> {
        self.path.as_deref()
    }

    /// Number of distinct keys stored.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Whether the table holds no records.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// The record for a key, if present.
    pub fn get(&self, key: u64) -> Option<&R> {
        self.records.get(&key)
    }

    /// All records in insertion order.
    pub fn records(&self) -> impl Iterator<Item = &R> {
        self.order.iter().filter_map(|k| self.records.get(k))
    }

    /// Inserts a record, appending it to the backing file (one `write`
    /// of the full line, flushed per record, so a kill loses at most the
    /// line being written). A record whose key is already present
    /// replaces the in-memory entry but is still appended — the file is
    /// a log; loads keep the latest.
    ///
    /// Before writing, the file's tail is healed: if another writer died
    /// mid-append and left an unterminated partial line, a newline is
    /// written first so this record starts on its own line.
    ///
    /// # Errors
    ///
    /// I/O errors appending to the backing file.
    pub fn insert(&mut self, rec: R) -> std::io::Result<()> {
        if let Some(file) = &mut self.file {
            heal_tail(file)?;
            let mut line = rec.to_json();
            line.push('\n');
            file.write_all(line.as_bytes())?;
            file.flush()?;
        }
        self.remember(rec);
        Ok(())
    }

    /// Re-reads the backing file, merging records other writers appended
    /// since the last load (later duplicates still win). Returns the
    /// number of keys that are new or changed. No-op for in-memory
    /// tables.
    ///
    /// # Errors
    ///
    /// I/O errors reading the file.
    pub fn reload(&mut self) -> std::io::Result<usize> {
        let Some(path) = self.path.clone() else {
            return Ok(0);
        };
        let mut changed = 0;
        if path.exists() {
            for line in BufReader::new(File::open(&path)?).lines() {
                if let Some(rec) = R::from_json(&line?) {
                    let key = rec.key();
                    let fresh = match self.records.get(&key) {
                        None => true,
                        Some(old) => old.to_json() != rec.to_json(),
                    };
                    if fresh {
                        changed += 1;
                    }
                    self.remember(rec);
                }
            }
        }
        Ok(changed)
    }

    fn remember(&mut self, rec: R) {
        if self.records.insert(rec.key(), rec.clone()).is_none() {
            self.order.push(rec.key());
        }
    }
}

/// Writes a terminating newline if the file's last byte is not one —
/// the other half of partial-line tolerance: the reader skips the
/// malformed line, and the next writer must not glue onto it. The file
/// is open in append mode, so the repositioned cursor only affects the
/// read; the write still lands at the end.
fn heal_tail(file: &mut File) -> std::io::Result<()> {
    let len = file.metadata()?.len();
    if len == 0 {
        return Ok(());
    }
    file.seek(SeekFrom::Start(len - 1))?;
    let mut last = [0u8; 1];
    file.read_exact(&mut last)?;
    if last[0] != b'\n' {
        file.write_all(b"\n")?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Minimal record for exercising the table machinery.
    #[derive(Debug, Clone, PartialEq)]
    struct Pair {
        key: u64,
        value: u64,
    }

    impl JsonlRecord for Pair {
        fn key(&self) -> u64 {
            self.key
        }

        fn to_json(&self) -> String {
            format!("{{\"key\":{},\"value\":{}}}", self.key, self.value)
        }

        fn from_json(line: &str) -> Option<Pair> {
            let line = line.trim();
            if !(line.starts_with('{') && line.ends_with('}')) {
                return None;
            }
            Some(Pair {
                key: crate::json::raw_field(line, "key")?.parse().ok()?,
                value: crate::json::raw_field(line, "value")?.parse().ok()?,
            })
        }
    }

    fn scratch(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join("hlsb_store_table_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(format!("{name}_{}.jsonl", std::process::id()));
        let _ = std::fs::remove_file(&path);
        path
    }

    #[test]
    fn file_table_resumes_dedups_and_skips_partial_lines() {
        let path = scratch("resume");
        let mut table: JsonlTable<Pair> = JsonlTable::open(&path).unwrap();
        assert!(table.is_empty());
        table.insert(Pair { key: 1, value: 10 }).unwrap();
        table.insert(Pair { key: 2, value: 20 }).unwrap();
        table.insert(Pair { key: 1, value: 11 }).unwrap(); // latest wins
        assert_eq!(table.len(), 2);
        drop(table);

        // Simulate a kill mid-append: a trailing half-written line.
        {
            let mut f = OpenOptions::new().append(true).open(&path).unwrap();
            write!(f, "{{\"key\":3,\"val").unwrap();
        }

        let resumed: JsonlTable<Pair> = JsonlTable::open(&path).unwrap();
        assert_eq!(resumed.len(), 2, "partial line skipped");
        assert_eq!(resumed.get(1).unwrap().value, 11);
        let keys: Vec<u64> = resumed.records().map(|r| r.key).collect();
        assert_eq!(keys, vec![1, 2]);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn append_heals_anothers_partial_line() {
        let path = scratch("heal");
        let mut table: JsonlTable<Pair> = JsonlTable::open(&path).unwrap();
        table.insert(Pair { key: 1, value: 10 }).unwrap();

        // Another writer dies mid-append while our handle stays open.
        {
            let mut f = OpenOptions::new().append(true).open(&path).unwrap();
            write!(f, "{{\"key\":2,\"val").unwrap();
        }

        // Our next insert must not glue onto the partial line.
        table.insert(Pair { key: 3, value: 30 }).unwrap();
        drop(table);

        let text = std::fs::read_to_string(&path).unwrap();
        assert!(
            text.contains("{\"key\":2,\"val\n"),
            "partial line newline-terminated:\n{text}"
        );
        let reloaded: JsonlTable<Pair> = JsonlTable::open(&path).unwrap();
        assert_eq!(reloaded.len(), 2, "keys 1 and 3 survive, 2 is skipped");
        assert_eq!(reloaded.get(3).unwrap().value, 30);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn reload_merges_other_writers_appends() {
        let path = scratch("reload");
        let mut a: JsonlTable<Pair> = JsonlTable::open(&path).unwrap();
        let mut b: JsonlTable<Pair> = JsonlTable::open(&path).unwrap();
        a.insert(Pair { key: 1, value: 10 }).unwrap();
        b.insert(Pair { key: 2, value: 20 }).unwrap();
        assert_eq!(a.len(), 1);
        assert_eq!(a.reload().unwrap(), 1, "b's record is new to a");
        assert_eq!(a.len(), 2);
        assert_eq!(a.get(2).unwrap().value, 20);
        assert_eq!(a.reload().unwrap(), 0, "idempotent");

        // A later duplicate from b overrides a's in-memory entry.
        b.insert(Pair { key: 1, value: 99 }).unwrap();
        assert_eq!(a.reload().unwrap(), 1);
        assert_eq!(a.get(1).unwrap().value, 99);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn in_memory_table_never_touches_disk() {
        let mut table: JsonlTable<Pair> = JsonlTable::in_memory();
        table.insert(Pair { key: 9, value: 90 }).unwrap();
        assert_eq!(table.len(), 1);
        assert!(table.path().is_none());
        assert_eq!(table.reload().unwrap(), 0);
    }
}
