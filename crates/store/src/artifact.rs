//! The persistent on-disk artifact store: sharded append-only JSONL
//! segments shared safely by concurrent processes.
//!
//! Layout of a store directory:
//!
//! ```text
//! store/
//!   LOCK              advisory write lock (contents unused)
//!   results-0.jsonl   ResultRecord segment, shard = config_key % 8
//!   ...
//!   results-7.jsonl
//!   stages-0.jsonl    StageRecord segment, shard = stage table key % 8
//!   ...
//!   stages-7.jsonl
//! ```
//!
//! Each segment is a [`JsonlTable`] and inherits its durability rules
//! (append+flush per record, partial-line tolerance, later-duplicate
//! wins, heal-before-append). Sharding by key keeps segments small enough
//! to rescan cheaply and spreads writer contention; the shard function is
//! a pure function of the key, so every process agrees on placement.
//!
//! Writers serialize through one process-wide mutex per shard *and* the
//! directory's [`StoreLock`] — the former for threads sharing this
//! handle, the latter for independent processes. Readers never take the
//! file lock: lookups are answered from the in-memory tables loaded at
//! open (call [`ArtifactStore::reload`] to merge other processes'
//! appends).

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use crate::lock::{StoreLock, LOCK_FILE};
use crate::record::{stage_table_key, ResultRecord, StageKind, StageRecord};
use crate::table::{JsonlRecord, JsonlTable};

/// Number of segments per record family. Part of the on-disk format:
/// changing it orphans records in their old shards.
pub const SHARD_COUNT: usize = 8;

/// The interface a [`FlowSession`](../hlsb/struct.FlowSession.html)
/// cache uses to consult and feed a persistent store, without `hlsb-core`
/// knowing anything about files. `lookup` must be cheap (no I/O) —
/// it sits on the stage-cache miss path; `publish` swallows I/O errors
/// (a broken store degrades to a cold one, never fails a flow).
pub trait ArtifactBackend: Send + Sync {
    /// The stored artifact fingerprint for a stage key, if any.
    fn lookup(&self, stage: StageKind, key: u64) -> Option<u64>;

    /// Records the fingerprint of a freshly built artifact.
    fn publish(&self, stage: StageKind, key: u64, fingerprint: u64, wall_ms: f64);
}

/// The sharded persistent store. Cheap to share: all methods take
/// `&self` (shards are internally locked), so one handle wrapped in an
/// `Arc` serves a whole worker pool.
pub struct ArtifactStore {
    dir: Option<PathBuf>,
    results: Vec<Mutex<JsonlTable<ResultRecord>>>,
    stages: Vec<Mutex<JsonlTable<StageRecord>>>,
    /// Append failures swallowed by [`ArtifactBackend::publish`] and
    /// [`ArtifactStore::put_result`]'s best-effort callers.
    io_errors: AtomicU64,
}

impl std::fmt::Debug for ArtifactStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ArtifactStore")
            .field("dir", &self.dir)
            .field("results", &self.result_count())
            .field("stages", &self.stage_count())
            .finish()
    }
}

impl ArtifactStore {
    /// An unbacked store: dedup within one process, nothing persisted.
    pub fn in_memory() -> Self {
        ArtifactStore {
            dir: None,
            results: (0..SHARD_COUNT)
                .map(|_| Mutex::new(JsonlTable::in_memory()))
                .collect(),
            stages: (0..SHARD_COUNT)
                .map(|_| Mutex::new(JsonlTable::in_memory()))
                .collect(),
            io_errors: AtomicU64::new(0),
        }
    }

    /// Opens (or creates) a store directory and loads every parseable
    /// record from all segments.
    ///
    /// # Errors
    ///
    /// I/O errors creating the directory or reading a segment.
    pub fn open(dir: impl AsRef<Path>) -> std::io::Result<Self> {
        let dir = dir.as_ref().to_path_buf();
        std::fs::create_dir_all(&dir)?;
        let mut results = Vec::with_capacity(SHARD_COUNT);
        let mut stages = Vec::with_capacity(SHARD_COUNT);
        for shard in 0..SHARD_COUNT {
            results.push(Mutex::new(JsonlTable::open(
                dir.join(format!("results-{shard}.jsonl")),
            )?));
            stages.push(Mutex::new(JsonlTable::open(
                dir.join(format!("stages-{shard}.jsonl")),
            )?));
        }
        Ok(ArtifactStore {
            dir: Some(dir),
            results,
            stages,
            io_errors: AtomicU64::new(0),
        })
    }

    /// The backing directory, when disk-backed.
    pub fn dir(&self) -> Option<&Path> {
        self.dir.as_deref()
    }

    /// The shard a key lands in — a pure function of the key, identical
    /// in every process.
    pub fn shard_of(key: u64) -> usize {
        (key % SHARD_COUNT as u64) as usize
    }

    /// The stored result for a flow configuration key, if present.
    pub fn get_result(&self, key: u64) -> Option<ResultRecord> {
        self.results[Self::shard_of(key)]
            .lock()
            .unwrap()
            .get(key)
            .cloned()
    }

    /// Persists a full-flow evaluation (see [`JsonlTable::insert`] for
    /// the append semantics). Takes the directory lock for the append so
    /// concurrent processes interleave whole lines.
    ///
    /// # Errors
    ///
    /// I/O errors appending to the segment or taking the lock.
    pub fn put_result(&self, rec: ResultRecord) -> std::io::Result<()> {
        let shard = &self.results[Self::shard_of(rec.key())];
        let _lock = self.file_lock()?;
        shard.lock().unwrap().insert(rec)
    }

    /// All result records across shards, in shard-then-insertion order.
    pub fn results(&self) -> Vec<ResultRecord> {
        self.results
            .iter()
            .flat_map(|shard| shard.lock().unwrap().records().cloned().collect::<Vec<_>>())
            .collect()
    }

    /// Number of distinct result configurations stored.
    pub fn result_count(&self) -> usize {
        self.results.iter().map(|s| s.lock().unwrap().len()).sum()
    }

    /// Number of distinct stage fingerprints stored.
    pub fn stage_count(&self) -> usize {
        self.stages.iter().map(|s| s.lock().unwrap().len()).sum()
    }

    /// Append failures swallowed on the best-effort paths.
    pub fn io_errors(&self) -> u64 {
        self.io_errors.load(Ordering::Relaxed)
    }

    /// Re-reads every segment, merging records other processes appended
    /// since the last load. Returns the number of new-or-changed keys.
    ///
    /// # Errors
    ///
    /// I/O errors reading a segment.
    pub fn reload(&self) -> std::io::Result<usize> {
        let mut changed = 0;
        for shard in &self.results {
            changed += shard.lock().unwrap().reload()?;
        }
        for shard in &self.stages {
            changed += shard.lock().unwrap().reload()?;
        }
        Ok(changed)
    }

    /// The cross-process lock, when disk-backed.
    fn file_lock(&self) -> std::io::Result<Option<StoreLock>> {
        match &self.dir {
            Some(dir) => Ok(Some(StoreLock::acquire(dir.join(LOCK_FILE))?)),
            None => Ok(None),
        }
    }
}

impl ArtifactBackend for ArtifactStore {
    fn lookup(&self, stage: StageKind, key: u64) -> Option<u64> {
        let table_key = stage_table_key(stage, key);
        self.stages[Self::shard_of(table_key)]
            .lock()
            .unwrap()
            .get(table_key)
            .map(|rec| rec.fingerprint)
    }

    fn publish(&self, stage: StageKind, key: u64, fingerprint: u64, wall_ms: f64) {
        let rec = StageRecord {
            stage,
            key,
            fingerprint,
            wall_ms,
        };
        let shard = &self.stages[Self::shard_of(rec.key())];
        let appended = self
            .file_lock()
            .and_then(|_lock| shard.lock().unwrap().insert(rec));
        if appended.is_err() {
            self.io_errors.fetch_add(1, Ordering::Relaxed);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn result_record(key: u64, fmax: f64) -> ResultRecord {
        ResultRecord {
            key,
            design: "d".into(),
            label: "all".into(),
            fmax_mhz: fmax,
            period_ns: 1000.0 / fmax,
            latency_cycles: 10,
            luts: 100,
            ffs: 200,
            brams: 1,
            dsps: 0,
            inserted_regs: 3,
            duplicated_regs: 1,
            retime_moves: 0,
            wall_ms: 5.5,
        }
    }

    fn scratch(name: &str) -> PathBuf {
        let dir = std::env::temp_dir()
            .join("hlsb_artifact_store_test")
            .join(format!("{name}_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn results_shard_persist_and_reload_across_handles() {
        let dir = scratch("persist");
        let store = ArtifactStore::open(&dir).unwrap();
        // Keys chosen to land in distinct shards.
        for key in 0..(2 * SHARD_COUNT as u64) {
            store
                .put_result(result_record(key, 300.0 + key as f64))
                .unwrap();
        }
        assert_eq!(store.result_count(), 2 * SHARD_COUNT);
        // Every shard file got its share.
        for shard in 0..SHARD_COUNT {
            let seg = dir.join(format!("results-{shard}.jsonl"));
            let lines = std::fs::read_to_string(&seg).unwrap().lines().count();
            assert_eq!(lines, 2, "shard {shard} holds its two keys");
        }

        // A second handle sees everything; appends through it reach the
        // first after a reload.
        let other = ArtifactStore::open(&dir).unwrap();
        assert_eq!(other.result_count(), 2 * SHARD_COUNT);
        other.put_result(result_record(99, 250.0)).unwrap();
        assert!(store.get_result(99).is_none(), "not yet reloaded");
        assert_eq!(store.reload().unwrap(), 1);
        assert_eq!(store.get_result(99).unwrap().fmax_mhz, 250.0);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn backend_publish_and_lookup_round_trip() {
        let store = ArtifactStore::in_memory();
        assert_eq!(store.lookup(StageKind::FrontEnd, 7), None);
        store.publish(StageKind::FrontEnd, 7, 0xF00D, 1.5);
        store.publish(StageKind::Schedule, 7, 0xBEEF, 2.5);
        assert_eq!(store.lookup(StageKind::FrontEnd, 7), Some(0xF00D));
        assert_eq!(store.lookup(StageKind::Schedule, 7), Some(0xBEEF));
        assert_eq!(store.stage_count(), 2);
        assert_eq!(store.io_errors(), 0);

        // Later publish for the same key wins (determinism audit relies
        // on the latest fingerprint).
        store.publish(StageKind::FrontEnd, 7, 0xCAFE, 1.0);
        assert_eq!(store.lookup(StageKind::FrontEnd, 7), Some(0xCAFE));
    }

    #[test]
    fn in_memory_store_has_no_dir_and_swallows_nothing() {
        let store = ArtifactStore::in_memory();
        assert!(store.dir().is_none());
        store.put_result(result_record(1, 300.0)).unwrap();
        assert_eq!(store.get_result(1).unwrap().fmax_mhz, 300.0);
        assert_eq!(store.reload().unwrap(), 0);
    }

    #[test]
    fn shard_function_is_stable() {
        assert_eq!(ArtifactStore::shard_of(0), 0);
        assert_eq!(ArtifactStore::shard_of(7), 7);
        assert_eq!(ArtifactStore::shard_of(8), 0);
        assert_eq!(ArtifactStore::shard_of(u64::MAX), (u64::MAX % 8) as usize);
    }
}
