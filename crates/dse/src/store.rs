//! Persistent JSONL result store with dedup-by-config-key.
//!
//! Every full-flow evaluation appends one self-contained JSON line:
//! the [`Flow::config_key`](hlsb::Flow::config_key) (which covers the
//! design, device and every knob), the human-readable configuration, and
//! the measured objectives. Reopening the store resumes an interrupted
//! search: configurations whose key is already present are served from
//! the store instead of re-running place-and-route, so a killed sweep
//! continues where it stopped and converges to the same frontier as an
//! uninterrupted run.
//!
//! The durability machinery (append+flush per record, partial-line
//! tolerance, later-duplicate-wins, heal-before-append) lives in
//! [`hlsb_store::JsonlTable`]; this module only owns the [`Record`]
//! format — hand-rolled JSON whose floats use Rust's shortest
//! round-trip notation, so a record read back is bit-identical to the
//! one written. Files written before the extraction parse unchanged.

use std::path::Path;

use hlsb::{OptimizationOptions, Partitioning, PlaceEffort};
use hlsb_store::json::{bool_field, json_escape, raw_field, string_field};
use hlsb_store::{JsonlRecord, JsonlTable};

use crate::objective::Metrics;
use crate::space::DseConfig;

/// One persisted evaluation.
#[derive(Debug, Clone, PartialEq)]
pub struct Record {
    /// [`Flow::config_key`](hlsb::Flow::config_key) of the evaluated
    /// flow.
    pub key: u64,
    /// Design name (informational; the key is authoritative).
    pub design: String,
    /// The configuration.
    pub config: DseConfig,
    /// The measured objectives.
    pub metrics: Metrics,
}

impl Record {
    /// Renders the record as one JSON line (no trailing newline).
    pub fn to_json(&self) -> String {
        JsonlRecord::to_json(self)
    }

    /// Parses one JSON line written by [`to_json`](Record::to_json).
    /// Returns `None` for malformed input (e.g. a half-written trailing
    /// line after a kill).
    pub fn from_json(line: &str) -> Option<Record> {
        <Record as JsonlRecord>::from_json(line)
    }
}

impl JsonlRecord for Record {
    fn key(&self) -> u64 {
        self.key
    }

    fn to_json(&self) -> String {
        let o = &self.config.options;
        format!(
            "{{\"key\":{},\"design\":\"{}\",\"label\":\"{}\",\
             \"broadcast_aware\":{},\"sync_pruning\":{},\"skid_buffer\":{},\"min_area_skid\":{},\
             \"clock_mhz\":{:?},\"place_seeds\":{},\"effort\":\"{}\",\"partitions\":\"{}\",\
             \"fmax_mhz\":{:?},\"latency_cycles\":{},\"area_cells\":{}}}",
            self.key,
            json_escape(&self.design),
            json_escape(&self.config.label()),
            o.broadcast_aware,
            o.sync_pruning,
            o.skid_buffer,
            o.min_area_skid,
            self.config.clock_mhz,
            self.config.place_seeds,
            match self.config.effort {
                PlaceEffort::Fast => "fast",
                PlaceEffort::Normal => "normal",
            },
            match self.config.partitions {
                Partitioning::Off => "off".to_string(),
                Partitioning::Auto => "auto".to_string(),
                Partitioning::Fixed(k) => k.to_string(),
            },
            self.metrics.fmax_mhz,
            self.metrics.latency_cycles,
            self.metrics.area_cells,
        )
    }

    fn from_json(line: &str) -> Option<Record> {
        let line = line.trim();
        if !(line.starts_with('{') && line.ends_with('}')) {
            return None;
        }
        let effort = match raw_field(line, "effort")? {
            "\"fast\"" => PlaceEffort::Fast,
            "\"normal\"" => PlaceEffort::Normal,
            _ => return None,
        };
        // Records written before island partitioning carry no
        // `partitions` field; they were all flat.
        let partitions = match raw_field(line, "partitions") {
            None => Partitioning::Off,
            Some("\"off\"") => Partitioning::Off,
            Some("\"auto\"") => Partitioning::Auto,
            Some(raw) => {
                Partitioning::Fixed(raw.strip_prefix('"')?.strip_suffix('"')?.parse().ok()?)
            }
        };
        Some(Record {
            key: raw_field(line, "key")?.parse().ok()?,
            design: string_field(line, "design")?,
            config: DseConfig {
                options: OptimizationOptions {
                    broadcast_aware: bool_field(line, "broadcast_aware")?,
                    sync_pruning: bool_field(line, "sync_pruning")?,
                    skid_buffer: bool_field(line, "skid_buffer")?,
                    min_area_skid: bool_field(line, "min_area_skid")?,
                },
                clock_mhz: raw_field(line, "clock_mhz")?.parse().ok()?,
                place_seeds: raw_field(line, "place_seeds")?.parse().ok()?,
                effort,
                partitions,
            },
            metrics: Metrics {
                fmax_mhz: raw_field(line, "fmax_mhz")?.parse().ok()?,
                latency_cycles: raw_field(line, "latency_cycles")?.parse().ok()?,
                area_cells: raw_field(line, "area_cells")?.parse().ok()?,
            },
        })
    }
}

/// Keyed store of evaluation records, optionally backed by a JSONL file
/// — a thin wrapper over [`hlsb_store::JsonlTable`].
#[derive(Debug, Default)]
pub struct ResultStore {
    table: JsonlTable<Record>,
}

impl ResultStore {
    /// An unbacked store: dedup within one process, nothing persisted.
    pub fn in_memory() -> Self {
        ResultStore::default()
    }

    /// Opens (or creates) a file-backed store and loads every parseable
    /// record. Later duplicates of a key win, matching append semantics.
    ///
    /// # Errors
    ///
    /// I/O errors opening or reading the file.
    pub fn open(path: impl AsRef<Path>) -> std::io::Result<Self> {
        Ok(ResultStore {
            table: JsonlTable::open(path)?,
        })
    }

    /// The backing path, when file-backed.
    pub fn path(&self) -> Option<&Path> {
        self.table.path()
    }

    /// Number of distinct configurations stored.
    pub fn len(&self) -> usize {
        self.table.len()
    }

    /// Whether the store holds no records.
    pub fn is_empty(&self) -> bool {
        self.table.is_empty()
    }

    /// The record for a configuration key, if present.
    pub fn get(&self, key: u64) -> Option<&Record> {
        self.table.get(key)
    }

    /// All records in insertion order.
    pub fn records(&self) -> impl Iterator<Item = &Record> {
        self.table.records()
    }

    /// Inserts a record, appending it to the backing file (see
    /// [`JsonlTable::insert`] for the append/flush/heal semantics). A
    /// record whose key is already present replaces the in-memory entry
    /// but is still appended — the file is a log; loads keep the latest.
    ///
    /// # Errors
    ///
    /// I/O errors appending to the backing file.
    pub fn insert(&mut self, rec: Record) -> std::io::Result<()> {
        self.table.insert(rec)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::fs::OpenOptions;

    fn record(key: u64, fmax: f64) -> Record {
        Record {
            key,
            design: "bench \"x\"".into(),
            config: DseConfig {
                options: OptimizationOptions::all(),
                clock_mhz: 333.25,
                place_seeds: 2,
                effort: PlaceEffort::Fast,
                partitions: Partitioning::Fixed(3),
            },
            metrics: Metrics {
                fmax_mhz: fmax,
                latency_cycles: 1047,
                area_cells: 23456,
            },
        }
    }

    #[test]
    fn json_round_trip_is_exact() {
        let rec = record(0xDEAD_BEEF_0BAD_F00D, 341.229_999_999_7);
        let line = rec.to_json();
        let back = Record::from_json(&line).expect("parses");
        assert_eq!(back, rec, "round trip must be bit-exact:\n{line}");
        assert!(Record::from_json("{\"key\":1").is_none(), "truncated line");
        assert!(Record::from_json("").is_none());
    }

    #[test]
    fn pre_partitioning_records_parse_as_flat() {
        // A line written before the `partitions` field existed.
        let line = "{\"key\":7,\"design\":\"d\",\"label\":\"l\",\
             \"broadcast_aware\":true,\"sync_pruning\":false,\"skid_buffer\":true,\
             \"min_area_skid\":false,\"clock_mhz\":300.0,\"place_seeds\":1,\
             \"effort\":\"fast\",\"fmax_mhz\":312.5,\"latency_cycles\":10,\"area_cells\":20}";
        let rec = Record::from_json(line).expect("old records still parse");
        assert_eq!(rec.config.partitions, Partitioning::Off);
    }

    #[test]
    fn file_store_resumes_and_dedups() {
        let dir = std::env::temp_dir().join("hlsb_dse_store_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(format!("store_{}.jsonl", std::process::id()));
        let _ = std::fs::remove_file(&path);

        let mut store = ResultStore::open(&path).unwrap();
        assert!(store.is_empty());
        store.insert(record(1, 300.0)).unwrap();
        store.insert(record(2, 250.0)).unwrap();
        // Later write for the same key wins.
        store.insert(record(1, 310.0)).unwrap();
        assert_eq!(store.len(), 2);
        drop(store);

        // Simulate a kill mid-append: a trailing half-written line.
        {
            use std::io::Write as _;
            let mut f = OpenOptions::new().append(true).open(&path).unwrap();
            write!(f, "{{\"key\":3,\"design\"").unwrap();
        }

        let resumed = ResultStore::open(&path).unwrap();
        assert_eq!(resumed.len(), 2, "partial line skipped");
        assert_eq!(resumed.get(1).unwrap().metrics.fmax_mhz, 310.0);
        assert_eq!(resumed.get(2).unwrap().metrics.fmax_mhz, 250.0);
        let keys: Vec<u64> = resumed.records().map(|r| r.key).collect();
        assert_eq!(keys, vec![1, 2]);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn in_memory_store_never_touches_disk() {
        let mut store = ResultStore::in_memory();
        store.insert(record(9, 200.0)).unwrap();
        assert_eq!(store.len(), 1);
        assert!(store.path().is_none());
    }
}
