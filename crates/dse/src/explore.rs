//! The exploration driver: candidate selection, batched evaluation,
//! persistence, frontier extraction and semantics verification.

use std::time::Instant;

use hlsb::{CacheStats, Flow, FlowSession, PassRecord, PassTrace, StageCacheStats, TraceTree};
use hlsb_fabric::Device;
use hlsb_ir::Design;
use hlsb_sim::Stimulus;

use crate::objective::{pareto_indices, pareto_ranks, Metrics};
use crate::space::{DseConfig, KnobSpace};
use crate::store::{Record, ResultStore};
use crate::strategy::{proxy_metrics, Strategy};

/// Default iteration cap for the differential-simulation check of
/// frontier configurations.
pub const DEFAULT_VERIFY_ITERS: u64 = 32;

/// One fully evaluated configuration in a [`DseReport`].
#[derive(Debug, Clone)]
pub struct EvaluatedPoint {
    /// The configuration.
    pub config: DseConfig,
    /// Its [`Flow::config_key`].
    pub key: u64,
    /// Measured objectives (from the store or a fresh run — identical
    /// either way, the pipeline is deterministic).
    pub metrics: Metrics,
    /// Whether the metrics were served from the persistent store.
    pub from_store: bool,
    /// Differential-simulation verdict, set for Pareto-optimal points
    /// when verification is enabled: `Ok(())` when the cycle-accurate
    /// trace matches the golden reference and the latency is consistent.
    pub sim_check: Option<Result<(), String>>,
}

/// The outcome of one exploration run.
#[derive(Debug, Clone)]
pub struct DseReport {
    /// Strategy name (`grid` / `random` / `halving`).
    pub strategy: &'static str,
    /// Every configuration with full metrics, in evaluation order.
    pub points: Vec<EvaluatedPoint>,
    /// Indices into [`points`](DseReport::points) of the Pareto-optimal
    /// configurations, fastest first.
    pub frontier: Vec<usize>,
    /// Cheap probe evaluations spent (successive halving only).
    pub probe_evals: usize,
    /// Full place-and-route evaluations spent.
    pub full_evals: usize,
    /// Configurations served from the persistent store.
    pub store_hits: usize,
    /// Candidates whose flow failed (e.g. the design does not fit the
    /// device at that configuration) — excluded from the frontier.
    pub infeasible: usize,
    /// Candidates dropped because the budget was smaller than the
    /// candidate set.
    pub budget_dropped: usize,
    /// The static network report that rejected the design, when the
    /// `hlsb-verify` pre-filter found `Error`-severity defects. The
    /// network rules are configuration-independent, so one dirty verdict
    /// rejects every candidate before any probe or full run is paid for
    /// — [`points`](DseReport::points) is empty then.
    pub network_report: Option<hlsb_findings::Report>,
    /// Per-pass wall times and counters accumulated over every probe and
    /// full run, plus a `dse` record with the evaluation counts and the
    /// session cache hit/miss deltas of this exploration.
    pub trace: PassTrace,
    /// Front-end/schedule cache activity caused by this run.
    pub cache_delta: StageCacheStats,
    /// Span trace of every fresh full evaluation, labelled by
    /// configuration ([`DseConfig::label`]), when the explorer ran with
    /// [`Explorer::trace`] enabled. Ready for
    /// [`hlsb::chrome_trace`] — one Chrome-trace process per
    /// configuration.
    pub span_trees: Vec<(String, TraceTree)>,
}

impl DseReport {
    /// The Pareto-optimal points, fastest first.
    pub fn frontier_points(&self) -> impl Iterator<Item = &EvaluatedPoint> {
        self.frontier.iter().map(|&i| &self.points[i])
    }

    /// Whether every verified frontier point passed its differential
    /// simulation (vacuously true when verification was disabled).
    pub fn frontier_semantics_ok(&self) -> bool {
        self.frontier_points()
            .all(|p| !matches!(p.sim_check, Some(Err(_))))
    }
}

/// Pareto design-space explorer over the broadcast-optimization knobs of
/// one design/device pair.
///
/// ```no_run
/// use hlsb::FlowSession;
/// use hlsb_dse::{Explorer, KnobSpace, Strategy};
/// # let bench = hlsb_benchmarks::all_benchmarks().remove(0);
/// let session = FlowSession::new();
/// let report = Explorer::new(&bench.design, &bench.device)
///     .space(KnobSpace::optimization_cube(vec![250.0, 300.0]))
///     .strategy(Strategy::SuccessiveHalving)
///     .budget(8)
///     .run(&session)
///     .expect("store I/O");
/// for p in report.frontier_points() {
///     println!("{} {:.0} MHz", p.config.label(), p.metrics.fmax_mhz);
/// }
/// ```
pub struct Explorer<'a> {
    design: &'a Design,
    device: &'a Device,
    space: KnobSpace,
    strategy: Strategy,
    budget: usize,
    seed: u64,
    store: ResultStore,
    verify_iters: u64,
    trace_spans: bool,
}

impl<'a> Explorer<'a> {
    /// An explorer over the default space (the optimization cube at
    /// 300 MHz), grid strategy, unbounded budget, in-memory store.
    pub fn new(design: &'a Design, device: &'a Device) -> Self {
        Explorer {
            design,
            device,
            space: KnobSpace::optimization_cube(vec![300.0]),
            strategy: Strategy::Grid,
            budget: usize::MAX,
            seed: 1,
            store: ResultStore::in_memory(),
            verify_iters: DEFAULT_VERIFY_ITERS,
            trace_spans: false,
        }
    }

    /// Sets the knob space to search.
    pub fn space(mut self, space: KnobSpace) -> Self {
        self.space = space;
        self
    }

    /// Sets the search strategy.
    pub fn strategy(mut self, strategy: Strategy) -> Self {
        self.strategy = strategy;
        self
    }

    /// Caps the number of *full-flow* evaluations (place-and-route runs).
    /// Cheap probes are not budgeted — they are the point of the proxy
    /// stage.
    pub fn budget(mut self, budget: usize) -> Self {
        self.budget = budget.max(1);
        self
    }

    /// Sets the base seed (sampling, placement noise streams).
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Attaches a result store (e.g. [`ResultStore::open`] on a JSONL
    /// path) for dedup and resume-after-interrupt.
    pub fn store(mut self, store: ResultStore) -> Self {
        self.store = store;
        self
    }

    /// Iteration cap for the differential-simulation check of frontier
    /// configurations; `0` disables verification.
    pub fn verify_iters(mut self, iters: u64) -> Self {
        self.verify_iters = iters;
        self
    }

    /// Enables span tracing ([`Flow::trace`]) on every evaluated flow.
    /// Fresh full evaluations land in [`DseReport::span_trees`]; probes
    /// and store hits carry no tree (probes for cost, store hits because
    /// nothing ran).
    pub fn trace(mut self, enabled: bool) -> Self {
        self.trace_spans = enabled;
        self
    }

    fn flow(&self, cfg: &DseConfig) -> Flow {
        cfg.flow(self.design, self.device, self.seed)
            .trace(self.trace_spans)
            .verify(true)
    }

    /// Runs the search: selects candidates per the strategy, evaluates
    /// them (store first, then batched [`FlowSession::run_many`]),
    /// extracts the Pareto frontier and differentially simulates every
    /// frontier configuration.
    ///
    /// # Errors
    ///
    /// I/O errors of the persistent store. Per-candidate flow failures
    /// are not errors — they are counted as
    /// [`infeasible`](DseReport::infeasible) and skipped.
    pub fn run(&mut self, session: &FlowSession) -> std::io::Result<DseReport> {
        let t0 = Instant::now();
        let stats0 = session.cache_stats_by_stage();
        let mut trace = PassTrace::default();
        let mut probe_evals = 0usize;
        let mut budget_dropped = 0usize;

        // Structural pre-filter: the verify network rules are
        // configuration-independent, so one dirty verdict on the design
        // rejects every candidate before any probe or full run is paid
        // for. (Every evaluated flow additionally runs with
        // [`Flow::verify`] on, so schedule/lowering contract breaches
        // surface per configuration as infeasible candidates.)
        let network = hlsb_verify::verify_network(
            self.design,
            &self.device.name,
            self.space.clocks_mhz.first().copied().unwrap_or(300.0),
        );
        let verify_rejected = network.count_at_least(hlsb_findings::Severity::Error) > 0;

        // Candidate selection.
        let candidates: Vec<DseConfig> = if verify_rejected {
            Vec::new()
        } else {
            match self.strategy {
                Strategy::Grid => {
                    let mut all = self.space.enumerate();
                    if all.len() > self.budget {
                        budget_dropped = all.len() - self.budget;
                        all.truncate(self.budget);
                    }
                    all
                }
                Strategy::Random => self.space.sample_distinct(self.budget, self.seed),
                Strategy::SuccessiveHalving => {
                    let all = self.space.enumerate();
                    let survivors = self.budget.min(all.len().div_ceil(2));
                    let mut ranked: Vec<(usize, Metrics)> = Vec::with_capacity(all.len());
                    for (i, cfg) in all.iter().enumerate() {
                        // The probe is the cheap stage: front-end + schedule
                        // + lint, no placement. Lint feeds the fmax proxy.
                        let flow = self.flow(cfg).lint(true);
                        match session.probe(&flow) {
                            Ok(probe) => {
                                probe_evals += 1;
                                trace.merge(&probe.trace);
                                ranked.push((i, proxy_metrics(cfg, &probe)));
                            }
                            Err(_) => {
                                // Leave it to the full stage to classify; an
                                // unprobeable candidate is simply not ranked.
                            }
                        }
                    }
                    let metrics: Vec<Metrics> = ranked.iter().map(|(_, m)| *m).collect();
                    let ranks = pareto_ranks(&metrics);
                    let mut order: Vec<usize> = (0..ranked.len()).collect();
                    order.sort_by(|&a, &b| {
                        ranks[a]
                            .cmp(&ranks[b])
                            .then(metrics[a].report_order(&metrics[b]))
                            .then(ranked[a].0.cmp(&ranked[b].0))
                    });
                    budget_dropped = ranked.len() - survivors.min(ranked.len());
                    order
                        .into_iter()
                        .take(survivors)
                        .map(|i| all[ranked[i].0])
                        .collect()
                }
            }
        };

        // Evaluation: the store answers first, the session runs the rest
        // in one parallel batch.
        let mut points: Vec<EvaluatedPoint> = Vec::with_capacity(candidates.len());
        let mut fresh: Vec<(DseConfig, u64, Flow)> = Vec::new();
        let mut store_hits = 0usize;
        for cfg in &candidates {
            let flow = self.flow(cfg);
            let key = flow.config_key();
            if let Some(rec) = self.store.get(key) {
                store_hits += 1;
                points.push(EvaluatedPoint {
                    config: *cfg,
                    key,
                    metrics: rec.metrics,
                    from_store: true,
                    sim_check: None,
                });
            } else {
                fresh.push((*cfg, key, flow));
            }
        }
        let flows: Vec<Flow> = fresh.iter().map(|(_, _, f)| f.clone()).collect();
        let results = session.run_many(&flows);
        let mut full_evals = 0usize;
        let mut infeasible = 0usize;
        let mut span_trees: Vec<(String, TraceTree)> = Vec::new();
        for ((cfg, key, _), result) in fresh.into_iter().zip(results) {
            match result {
                Ok(mut r) => {
                    full_evals += 1;
                    trace.merge(&r.trace);
                    if let Some(tree) = r.span_tree.take() {
                        span_trees.push((cfg.label(), tree));
                    }
                    let metrics = Metrics::from_result(&r);
                    self.store.insert(Record {
                        key,
                        design: self.design.name.clone(),
                        config: cfg,
                        metrics,
                    })?;
                    points.push(EvaluatedPoint {
                        config: cfg,
                        key,
                        metrics,
                        from_store: false,
                        sim_check: None,
                    });
                }
                Err(_) => infeasible += 1,
            }
        }

        // Frontier extraction + differential simulation of every winner.
        let metrics: Vec<Metrics> = points.iter().map(|p| p.metrics).collect();
        let frontier = pareto_indices(&metrics);
        let mut sim_checked = 0u64;
        let mut sim_failed = 0u64;
        if self.verify_iters > 0 {
            let stim = Stimulus::seeded(self.design, 1, self.verify_iters as usize);
            for &i in &frontier {
                let flow = self.flow(&points[i].config);
                let verdict = match session.simulate(&flow, &stim, self.verify_iters) {
                    Ok(sim) => {
                        trace.merge(&sim.trace);
                        sim.check()
                    }
                    Err(e) => Err(e.to_string()),
                };
                sim_checked += 1;
                if verdict.is_err() {
                    sim_failed += 1;
                }
                points[i].sim_check = Some(verdict);
            }
        }

        let stats1 = session.cache_stats_by_stage();
        let cache_delta = StageCacheStats {
            front_end: CacheStats {
                hits: stats1.front_end.hits - stats0.front_end.hits,
                disk_hits: stats1.front_end.disk_hits - stats0.front_end.disk_hits,
                misses: stats1.front_end.misses - stats0.front_end.misses,
            },
            schedule: CacheStats {
                hits: stats1.schedule.hits - stats0.schedule.hits,
                disk_hits: stats1.schedule.disk_hits - stats0.schedule.disk_hits,
                misses: stats1.schedule.misses - stats0.schedule.misses,
            },
        };
        trace.records.push(PassRecord {
            pass: "dse".to_string(),
            wall_ms: t0.elapsed().as_secs_f64() * 1e3,
            counters: [
                ("probe-evals", probe_evals as u64),
                ("full-evals", full_evals as u64),
                ("store-hits", store_hits as u64),
                ("infeasible", infeasible as u64),
                ("verify-rejected", u64::from(verify_rejected)),
                ("budget-dropped", budget_dropped as u64),
                ("frontier", frontier.len() as u64),
                ("sim-checked", sim_checked),
                ("sim-failed", sim_failed),
                ("fe-cache-hits", cache_delta.front_end.hits),
                ("fe-store-hits", cache_delta.front_end.disk_hits),
                ("fe-cache-misses", cache_delta.front_end.misses),
                ("sched-cache-hits", cache_delta.schedule.hits),
                ("sched-store-hits", cache_delta.schedule.disk_hits),
                ("sched-cache-misses", cache_delta.schedule.misses),
            ]
            .into_iter()
            .map(|(n, v)| (n.to_string(), v))
            .collect(),
        });

        Ok(DseReport {
            strategy: self.strategy.name(),
            points,
            frontier,
            probe_evals,
            full_evals,
            store_hits,
            infeasible,
            budget_dropped,
            network_report: verify_rejected.then_some(network),
            trace,
            cache_delta,
            span_trees,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dirty_design_is_rejected_before_any_evaluation() {
        let (design, rule) = hlsb_sim::random_dirty_design(0);
        let device = Device::ultrascale_plus_vu9p();
        let session = FlowSession::new();
        let report = Explorer::new(&design, &device)
            .budget(4)
            .run(&session)
            .expect("in-memory store");
        assert!(report.points.is_empty());
        assert_eq!(report.probe_evals + report.full_evals, 0);
        assert_eq!(report.trace.counter("dse", "verify-rejected"), Some(1));
        let network = report.network_report.expect("rejection carries evidence");
        assert!(network.has_rule(rule), "{}", network.to_table());
    }
}
