//! The typed knob space the explorer searches.
//!
//! A [`KnobSpace`] is a cartesian product over the flow's configuration
//! knobs: the paper's 4-bit optimization cube
//! ([`OptimizationOptions`]), the HLS clock target, the number of
//! placement seeds and the placement effort. One point of the space is a
//! [`DseConfig`], which maps onto a [`Flow`] for a concrete design and
//! device.
//!
//! Points are *canonical*: `min_area_skid` without `skid_buffer` is a
//! no-op in the flow, so enumeration and sampling collapse such
//! configurations onto their `min_area_skid = false` twin instead of
//! evaluating the same implementation twice.

use hlsb::{Flow, OptimizationOptions, Partitioning, PlaceEffort};
use hlsb_fabric::Device;
use hlsb_ir::Design;
use hlsb_rng::Rng;

/// One point of the knob space: everything that distinguishes two flow
/// variants of the same design and device.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DseConfig {
    /// The paper's optimization toggles (§4.1–§4.3).
    pub options: OptimizationOptions,
    /// HLS clock target, MHz.
    pub clock_mhz: f64,
    /// Placement seeds tried per implementation (best timing wins).
    pub place_seeds: u32,
    /// Placement effort.
    pub effort: PlaceEffort,
    /// Island partitioning of the implement stage.
    pub partitions: Partitioning,
}

impl DseConfig {
    /// Collapses no-op knob combinations: `min_area_skid` is only
    /// meaningful under `skid_buffer`.
    pub fn canonical(mut self) -> Self {
        if !self.options.skid_buffer {
            self.options.min_area_skid = false;
        }
        self
    }

    /// The flow this configuration denotes for a concrete design/device.
    /// `seed` is the shared base seed of the exploration (placement
    /// trials derive their own streams from it).
    pub fn flow(&self, design: &Design, device: &Device, seed: u64) -> Flow {
        Flow::new(design.clone())
            .device(device.clone())
            .clock_mhz(self.clock_mhz)
            .options(self.options)
            .seed(seed)
            .place_effort(self.effort)
            .place_seeds(self.place_seeds)
            .partitions(self.partitions)
    }

    /// Compact human-readable label, e.g. `BS-- @300 ×1 fast` (with a
    /// `pN`/`pauto` suffix when island partitioning is on): one letter
    /// per enabled optimization (Broadcast-aware, Sync-pruning, sKid,
    /// Min-area skid), clock target, placement-seed count, effort,
    /// partitioning.
    pub fn label(&self) -> String {
        format!(
            "{}{}{}{} @{:.0} ×{} {}{}",
            if self.options.broadcast_aware {
                'B'
            } else {
                '-'
            },
            if self.options.sync_pruning { 'S' } else { '-' },
            if self.options.skid_buffer { 'K' } else { '-' },
            if self.options.min_area_skid { 'M' } else { '-' },
            self.clock_mhz,
            self.place_seeds,
            match self.effort {
                PlaceEffort::Fast => "fast",
                PlaceEffort::Normal => "normal",
            },
            match self.partitions {
                Partitioning::Off => String::new(),
                Partitioning::Auto => " pauto".to_string(),
                Partitioning::Fixed(k) => format!(" p{k}"),
            }
        )
    }

    /// Identity tuple for dedup inside a space (design-independent; use
    /// [`Flow::config_key`] for the persistent store key).
    fn ident(&self) -> (bool, bool, bool, bool, u64, u32, bool, Partitioning) {
        (
            self.options.broadcast_aware,
            self.options.sync_pruning,
            self.options.skid_buffer,
            self.options.min_area_skid,
            self.clock_mhz.to_bits(),
            self.place_seeds,
            self.effort == PlaceEffort::Fast,
            self.partitions,
        )
    }
}

/// The cartesian knob space. Each field lists the values that dimension
/// may take; enumeration walks them in the written order, so results are
/// deterministic.
#[derive(Debug, Clone, PartialEq)]
pub struct KnobSpace {
    /// Clock targets, MHz.
    pub clocks_mhz: Vec<f64>,
    /// Broadcast-aware scheduling on/off (§4.1).
    pub broadcast_aware: Vec<bool>,
    /// Synchronization pruning on/off (§4.2).
    pub sync_pruning: Vec<bool>,
    /// Skid-buffer control on/off (§4.3).
    pub skid_buffer: Vec<bool>,
    /// Min-area multi-level skid on/off.
    pub min_area_skid: Vec<bool>,
    /// Placement-seed counts.
    pub place_seeds: Vec<u32>,
    /// Placement efforts.
    pub efforts: Vec<PlaceEffort>,
    /// Island partitioning modes of the implement stage.
    pub partitions: Vec<Partitioning>,
}

impl KnobSpace {
    /// The full 4-bit optimization cube at the given clock targets, one
    /// placement seed, fast effort — the space of the paper's Table 2/3
    /// ablations, and the default for `hlsb-bench dse`.
    pub fn optimization_cube(clocks_mhz: Vec<f64>) -> Self {
        KnobSpace {
            clocks_mhz,
            broadcast_aware: vec![false, true],
            sync_pruning: vec![false, true],
            skid_buffer: vec![false, true],
            min_area_skid: vec![false, true],
            place_seeds: vec![1],
            efforts: vec![PlaceEffort::Fast],
            partitions: vec![Partitioning::Off],
        }
    }

    /// Every canonical configuration of the space, deduplicated, in
    /// deterministic order.
    pub fn enumerate(&self) -> Vec<DseConfig> {
        let mut seen = std::collections::HashSet::new();
        let mut out = Vec::new();
        for &clock_mhz in &self.clocks_mhz {
            for &partitions in &self.partitions {
                for &effort in &self.efforts {
                    for &place_seeds in &self.place_seeds {
                        for &broadcast_aware in &self.broadcast_aware {
                            for &sync_pruning in &self.sync_pruning {
                                for &skid_buffer in &self.skid_buffer {
                                    for &min_area_skid in &self.min_area_skid {
                                        let cfg = DseConfig {
                                            options: OptimizationOptions {
                                                broadcast_aware,
                                                sync_pruning,
                                                skid_buffer,
                                                min_area_skid,
                                            },
                                            clock_mhz,
                                            place_seeds,
                                            effort,
                                            partitions,
                                        }
                                        .canonical();
                                        if seen.insert(cfg.ident()) {
                                            out.push(cfg);
                                        }
                                    }
                                }
                            }
                        }
                    }
                }
            }
        }
        out
    }

    /// Number of canonical configurations.
    pub fn size(&self) -> usize {
        self.enumerate().len()
    }

    /// One uniformly sampled canonical configuration.
    ///
    /// # Panics
    ///
    /// Panics if any dimension is empty.
    pub fn sample(&self, rng: &mut Rng) -> DseConfig {
        let pick = |rng: &mut Rng, v: &[bool]| v[rng.gen_index(v.len())];
        DseConfig {
            options: OptimizationOptions {
                broadcast_aware: pick(rng, &self.broadcast_aware),
                sync_pruning: pick(rng, &self.sync_pruning),
                skid_buffer: pick(rng, &self.skid_buffer),
                min_area_skid: pick(rng, &self.min_area_skid),
            },
            clock_mhz: self.clocks_mhz[rng.gen_index(self.clocks_mhz.len())],
            place_seeds: self.place_seeds[rng.gen_index(self.place_seeds.len())],
            effort: self.efforts[rng.gen_index(self.efforts.len())],
            partitions: self.partitions[rng.gen_index(self.partitions.len())],
        }
        .canonical()
    }

    /// Samples up to `n` *distinct* canonical configurations. Returns
    /// fewer when the space is smaller than `n`. Deterministic for a
    /// fixed seed.
    pub fn sample_distinct(&self, n: usize, seed: u64) -> Vec<DseConfig> {
        let total = self.size();
        let mut rng = Rng::seed_from_u64(seed);
        let mut seen = std::collections::HashSet::new();
        let mut out = Vec::new();
        // The rejection loop terminates: once every point was seen the
        // bound below stops it.
        let mut attempts = 0usize;
        while out.len() < n.min(total) && attempts < 64 * total.max(1) {
            attempts += 1;
            let cfg = self.sample(&mut rng);
            if seen.insert(cfg.ident()) {
                out.push(cfg);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cube_enumerates_twelve_canonical_points_per_clock() {
        // 8 combos without skid collapse M; with skid M is free: 4 + 8.
        let space = KnobSpace::optimization_cube(vec![300.0]);
        let cfgs = space.enumerate();
        assert_eq!(cfgs.len(), 12);
        assert_eq!(space.size(), 12);
        assert!(cfgs
            .iter()
            .all(|c| c.options.skid_buffer || !c.options.min_area_skid));
        // Two clocks double the space.
        assert_eq!(KnobSpace::optimization_cube(vec![250.0, 300.0]).size(), 24);
    }

    #[test]
    fn enumeration_is_deterministic_and_labels_are_unique() {
        let space = KnobSpace::optimization_cube(vec![250.0, 300.0]);
        assert_eq!(space.enumerate(), space.enumerate());
        let labels: std::collections::HashSet<String> =
            space.enumerate().iter().map(DseConfig::label).collect();
        assert_eq!(labels.len(), space.size(), "labels must be unique");
    }

    #[test]
    fn sampling_is_seeded_and_distinct() {
        let space = KnobSpace::optimization_cube(vec![250.0, 300.0, 350.0]);
        let a = space.sample_distinct(10, 7);
        let b = space.sample_distinct(10, 7);
        assert_eq!(a, b, "same seed, same samples");
        assert_eq!(a.len(), 10);
        let c = space.sample_distinct(10, 8);
        assert_ne!(a, c, "different seed, different samples");
        // Requesting more than the space yields the whole space.
        let all = space.sample_distinct(10_000, 1);
        assert_eq!(all.len(), space.size());
        assert!(all.iter().all(|cfg| *cfg == cfg.canonical()));
    }

    #[test]
    fn flows_carry_the_config() {
        let design = hlsb_ir::Design::new("d");
        let device = Device::ultrascale_plus_vu9p();
        let cfg = DseConfig {
            options: OptimizationOptions::all(),
            clock_mhz: 333.0,
            place_seeds: 2,
            effort: PlaceEffort::Fast,
            partitions: Partitioning::Off,
        };
        let flow = cfg.flow(&design, &device, 5);
        let other = cfg.flow(&design, &device, 5);
        assert_eq!(flow.config_key(), other.config_key());
        let different = DseConfig {
            clock_mhz: 300.0,
            ..cfg
        }
        .flow(&design, &device, 5);
        assert_ne!(flow.config_key(), different.config_key());
        assert_eq!(cfg.label(), "BSKM @333 ×2 fast");
    }
}
