//! Objectives and Pareto dominance.
//!
//! The explorer optimizes three objectives at once: maximize achieved
//! frequency, minimize static latency, minimize register/LUT area. No
//! scalarization — the result of a search is the set of non-dominated
//! points (the Pareto frontier), as production DSE tools report it.

use hlsb::ImplementationResult;

/// The objective vector of one evaluated configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Metrics {
    /// Achieved maximum frequency, MHz (maximize).
    pub fmax_mhz: f64,
    /// Static design latency, cycles (minimize) — the schedule's promised
    /// minimum for the full trip counts.
    pub latency_cycles: u64,
    /// Register + LUT cells of the final netlist (minimize).
    pub area_cells: u64,
}

impl Metrics {
    /// Extracts the objectives from a full implementation run.
    pub fn from_result(r: &ImplementationResult) -> Self {
        Metrics {
            fmax_mhz: r.fmax_mhz,
            latency_cycles: r.latency_cycles,
            area_cells: r.stats.ffs + r.stats.luts,
        }
    }

    /// Pareto dominance: at least as good in every objective and strictly
    /// better in one. Equal vectors do not dominate each other.
    pub fn dominates(&self, other: &Metrics) -> bool {
        let geq = self.fmax_mhz >= other.fmax_mhz
            && self.latency_cycles <= other.latency_cycles
            && self.area_cells <= other.area_cells;
        let strictly = self.fmax_mhz > other.fmax_mhz
            || self.latency_cycles < other.latency_cycles
            || self.area_cells < other.area_cells;
        geq && strictly
    }

    /// Canonical ordering for reports: fastest first, then lowest
    /// latency, then smallest area.
    pub fn report_order(&self, other: &Metrics) -> std::cmp::Ordering {
        other
            .fmax_mhz
            .total_cmp(&self.fmax_mhz)
            .then(self.latency_cycles.cmp(&other.latency_cycles))
            .then(self.area_cells.cmp(&other.area_cells))
    }
}

/// Indices of the non-dominated points, in [`Metrics::report_order`]
/// (ties broken by index, so the frontier is deterministic).
pub fn pareto_indices(points: &[Metrics]) -> Vec<usize> {
    let mut out: Vec<usize> = (0..points.len())
        .filter(|&i| !points.iter().any(|p| p.dominates(&points[i])))
        .collect();
    out.sort_by(|&a, &b| points[a].report_order(&points[b]).then(a.cmp(&b)));
    out
}

/// Non-dominated sorting rank of every point: 0 for the frontier, 1 for
/// the frontier once rank-0 points are removed, and so on (NSGA-style).
/// Successive halving promotes candidates in rank order.
pub fn pareto_ranks(points: &[Metrics]) -> Vec<usize> {
    let mut rank = vec![usize::MAX; points.len()];
    let mut current = 0usize;
    let mut remaining: Vec<usize> = (0..points.len()).collect();
    while !remaining.is_empty() {
        let front: Vec<usize> = remaining
            .iter()
            .copied()
            .filter(|&i| {
                !remaining
                    .iter()
                    .any(|&j| j != i && points[j].dominates(&points[i]))
            })
            .collect();
        for &i in &front {
            rank[i] = current;
        }
        remaining.retain(|i| !front.contains(i));
        current += 1;
    }
    rank
}

#[cfg(test)]
mod tests {
    use super::*;

    fn m(fmax: f64, lat: u64, area: u64) -> Metrics {
        Metrics {
            fmax_mhz: fmax,
            latency_cycles: lat,
            area_cells: area,
        }
    }

    #[test]
    fn dominance_is_strict_and_partial() {
        assert!(m(300.0, 10, 100).dominates(&m(250.0, 10, 100)));
        assert!(m(300.0, 9, 100).dominates(&m(300.0, 10, 100)));
        assert!(!m(300.0, 10, 100).dominates(&m(300.0, 10, 100)), "equal");
        // Trade-off: neither dominates.
        assert!(!m(300.0, 20, 100).dominates(&m(250.0, 10, 100)));
        assert!(!m(250.0, 10, 100).dominates(&m(300.0, 20, 100)));
    }

    #[test]
    fn frontier_keeps_trade_offs_and_drops_dominated() {
        let pts = [
            m(300.0, 20, 200), // fastest
            m(250.0, 10, 150), // lowest latency
            m(200.0, 30, 100), // smallest area
            m(240.0, 25, 250), // dominated by the first
            m(300.0, 20, 200), // duplicate of the fastest — kept (no strict win)
        ];
        let f = pareto_indices(&pts);
        assert_eq!(f, vec![0, 4, 1, 2]);
        let ranks = pareto_ranks(&pts);
        assert_eq!(ranks[0], 0);
        assert_eq!(ranks[4], 0);
        assert_eq!(ranks[3], 1, "dominated point lands in the next front");
    }

    #[test]
    fn report_order_sorts_fast_then_short_then_small() {
        let mut pts = [m(200.0, 5, 5), m(300.0, 9, 2), m(300.0, 5, 9)];
        pts.sort_by(|a, b| a.report_order(b));
        assert_eq!(pts[0], m(300.0, 5, 9));
        assert_eq!(pts[1], m(300.0, 9, 2));
        assert_eq!(pts[2], m(200.0, 5, 5));
    }
}
