//! `hlsb-dse` — Pareto design-space exploration over the
//! broadcast-optimization knobs of the flow.
//!
//! The paper's optimizations (broadcast-aware scheduling, synchronization
//! pruning, skid-buffer control with the min-area variant) plus the flow's
//! implementation knobs (clock target, placement seeds, placement effort)
//! form a small but non-trivial configuration space, and the objectives —
//! achieved fmax, static latency, register/LUT area — genuinely trade off
//! against each other (skid buffers buy fmax with registers; a lower clock
//! target buys feasibility with speed). This crate searches that space and
//! reports the **Pareto frontier** instead of a single winner.
//!
//! # Pieces
//!
//! * [`KnobSpace`] / [`DseConfig`] — the typed space and its points
//!   ([`KnobSpace::optimization_cube`] is the paper's 4-bit cube).
//! * [`Metrics`], [`pareto_indices`], [`pareto_ranks`] — objectives and
//!   non-dominated sorting.
//! * [`Strategy`] — exhaustive grid, seeded random, or successive halving
//!   (cheap front-end/schedule/lint probes rank candidates, only the
//!   survivors pay for place-and-route).
//! * [`ResultStore`] — persistent JSONL store, dedup by
//!   [`Flow::config_key`](hlsb::Flow::config_key), resume after interrupt.
//! * [`Explorer`] / [`DseReport`] — the driver: batches candidates through
//!   [`FlowSession::run_many`](hlsb::FlowSession::run_many), extracts the
//!   frontier and differentially simulates every frontier configuration.
//! * [`report`] — table / JSONL renderers used by `hlsb-bench dse`.
//!
//! # Example
//!
//! ```
//! use hlsb::FlowSession;
//! use hlsb_dse::{Explorer, KnobSpace, Strategy};
//!
//! let bench = &hlsb_benchmarks::all_benchmarks()[0];
//! let session = FlowSession::new();
//! let report = Explorer::new(&bench.design, &bench.device)
//!     .space(KnobSpace::optimization_cube(vec![300.0]))
//!     .strategy(Strategy::Grid)
//!     .verify_iters(4)
//!     .run(&session)
//!     .expect("in-memory store cannot fail");
//! assert!(!report.frontier.is_empty());
//! assert!(report.frontier_semantics_ok());
//! ```

pub mod explore;
pub mod objective;
pub mod report;
pub mod space;
pub mod store;
pub mod strategy;

pub use explore::{DseReport, EvaluatedPoint, Explorer, DEFAULT_VERIFY_ITERS};
pub use objective::{pareto_indices, pareto_ranks, Metrics};
pub use space::{DseConfig, KnobSpace};
pub use store::{Record, ResultStore};
pub use strategy::{proxy_metrics, Strategy};
