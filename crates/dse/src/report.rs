//! Renderers for [`DseReport`]: a human-readable frontier table and a
//! machine-readable JSONL stream.

use crate::explore::{DseReport, EvaluatedPoint};
use crate::store::Record;

fn sim_tag(p: &EvaluatedPoint) -> &'static str {
    match &p.sim_check {
        None => "-",
        Some(Ok(())) => "ok",
        Some(Err(_)) => "FAIL",
    }
}

/// The Pareto frontier as a fixed-width table, one row per non-dominated
/// configuration, fastest first:
///
/// ```text
/// config               fmax MHz   latency   area  src    sim
/// BSKM @300 ×1 fast      312.5       1047  23456  run    ok
/// ```
pub fn frontier_table(report: &DseReport) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{:<20} {:>9} {:>9} {:>7}  {:<5}  {}\n",
        "config", "fmax MHz", "latency", "area", "src", "sim"
    ));
    for p in report.frontier_points() {
        out.push_str(&format!(
            "{:<20} {:>9.1} {:>9} {:>7}  {:<5}  {}\n",
            p.config.label(),
            p.metrics.fmax_mhz,
            p.metrics.latency_cycles,
            p.metrics.area_cells,
            if p.from_store { "store" } else { "run" },
            sim_tag(p),
        ));
    }
    out
}

/// The frontier as JSON lines — the same flat schema as the persistent
/// store, extended with `"pareto":true` and the simulation verdict.
pub fn frontier_jsonl(report: &DseReport, design: &str) -> String {
    let mut out = String::new();
    for p in report.frontier_points() {
        let rec = Record {
            key: p.key,
            design: design.to_string(),
            config: p.config,
            metrics: p.metrics,
        };
        let line = rec.to_json();
        // Splice the extra fields before the closing brace.
        let body = line.strip_suffix('}').unwrap_or(&line);
        out.push_str(&format!(
            "{body},\"pareto\":true,\"from_store\":{},\"sim\":\"{}\"}}\n",
            p.from_store,
            sim_tag(p),
        ));
    }
    out
}

/// One-paragraph summary of the search effort: strategy, evaluation
/// counts, store/cache reuse, frontier size and semantics verdict.
pub fn summary_line(report: &DseReport) -> String {
    format!(
        "strategy={} points={} frontier={} probe-evals={} full-evals={} \
         store-hits={} infeasible={} budget-dropped={} \
         fe-cache={}+{}d/{} ({:.0}% hit) sched-cache={}+{}d/{} ({:.0}% hit) sim={}",
        report.strategy,
        report.points.len(),
        report.frontier.len(),
        report.probe_evals,
        report.full_evals,
        report.store_hits,
        report.infeasible,
        report.budget_dropped,
        report.cache_delta.front_end.hits,
        report.cache_delta.front_end.disk_hits,
        report.cache_delta.front_end.requests(),
        report.cache_delta.front_end.hit_rate() * 100.0,
        report.cache_delta.schedule.hits,
        report.cache_delta.schedule.disk_hits,
        report.cache_delta.schedule.requests(),
        report.cache_delta.schedule.hit_rate() * 100.0,
        if report.frontier_semantics_ok() {
            "ok"
        } else {
            "FAIL"
        },
    )
}
