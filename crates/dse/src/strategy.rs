//! Search strategies and the cheap-stage fitness proxy.
//!
//! Three strategies cover the practical space sizes:
//!
//! * [`Strategy::Grid`] — exhaustive, for small spaces (the 4-bit
//!   optimization cube at a handful of clocks).
//! * [`Strategy::Random`] — seeded uniform sampling without replacement,
//!   for spaces too large to enumerate.
//! * [`Strategy::SuccessiveHalving`] — probe *every* candidate with the
//!   cheap front half of the pipeline (front-end + schedule + lint, no
//!   placement), rank by non-dominated sorting on the proxy objectives,
//!   and spend the full place-and-route budget only on the top-ranked
//!   survivors.
//!
//! The proxy estimates the three true objectives from probe data alone:
//! the latency estimate is *exactly* the full run's latency (both come
//! from the schedule), area is approximated by instruction and register
//! counts, and fmax by the clock target stretched by the lint-estimated
//! broadcast penalty of every finding the candidate's options do **not**
//! remedy (BA01/BA02 ↔ broadcast-aware scheduling, PC01 ↔ skid buffers,
//! SY01 ↔ sync pruning) plus the schedule's own violations.

use hlsb::ProbeOutcome;

use crate::objective::Metrics;
use crate::space::DseConfig;

/// How the explorer picks which configurations get a full evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Strategy {
    /// Evaluate every configuration of the space (up to the budget).
    Grid,
    /// Seeded random sampling without replacement, `budget` evaluations.
    Random,
    /// Probe everything cheaply, full-evaluate only the `budget`
    /// best-ranked survivors.
    SuccessiveHalving,
}

impl Strategy {
    /// Stable name for reports and counters.
    pub fn name(self) -> &'static str {
        match self {
            Strategy::Grid => "grid",
            Strategy::Random => "random",
            Strategy::SuccessiveHalving => "halving",
        }
    }

    /// Parses a CLI name.
    pub fn from_name(s: &str) -> Option<Strategy> {
        match s {
            "grid" => Some(Strategy::Grid),
            "random" => Some(Strategy::Random),
            "halving" => Some(Strategy::SuccessiveHalving),
            _ => None,
        }
    }
}

/// Estimated objectives of a candidate from its cheap probe (see the
/// module docs for the model). Deterministic, and monotone in the right
/// direction for each knob, which is all a rank-based survivor selection
/// needs.
pub fn proxy_metrics(cfg: &DseConfig, probe: &ProbeOutcome) -> Metrics {
    // Residual broadcast penalty: findings whose remedy this candidate
    // does not apply keep their full estimated delay cost.
    let residual_ns = probe
        .lint
        .as_ref()
        .map(|report| {
            report.penalty_where(|rule| match rule {
                "BA01" | "BA02" => !cfg.options.broadcast_aware,
                "PC01" => !cfg.options.skid_buffer,
                "SY01" => !cfg.options.sync_pruning,
                _ => true,
            })
        })
        .unwrap_or(0.0);
    let clock_ns = 1000.0 / cfg.clock_mhz;
    // Unfixable schedule violations each cost roughly a clock period.
    let violation_ns = probe.schedule_violations as f64 * clock_ns;
    let est_period_ns = clock_ns + residual_ns + violation_ns;

    // Area model: datapath cells scale with the (unrolled) instruction
    // count plus broadcast registers; skid buffers duplicate pipeline
    // stage registers (min-area splitting roughly halves that).
    let depth_sum: u64 = probe.schedule_depths.iter().map(|&d| u64::from(d)).sum();
    let skid_cells = if cfg.options.skid_buffer {
        let per_stage = if cfg.options.min_area_skid { 1 } else { 2 };
        depth_sum * per_stage
    } else {
        0
    };
    Metrics {
        fmax_mhz: 1000.0 / est_period_ns,
        latency_cycles: probe.latency_cycles,
        area_cells: probe.instructions as u64 + probe.inserted_regs as u64 + skid_cells,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_round_trip() {
        for s in [
            Strategy::Grid,
            Strategy::Random,
            Strategy::SuccessiveHalving,
        ] {
            assert_eq!(Strategy::from_name(s.name()), Some(s));
        }
        assert_eq!(Strategy::from_name("annealing"), None);
    }
}
