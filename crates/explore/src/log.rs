//! The persistent frequency log: one JSONL line per decided trial.
//!
//! The durability machinery (append+flush per record, partial-line
//! tolerance, later-duplicate-wins, heal-before-append) lives in
//! [`hlsb_store::JsonlTable`]; this module only owns the
//! [`TrialRecord`] format — hand-rolled JSON (the workspace builds
//! offline, no serde) with floats in Rust's shortest round-trip
//! notation, so files written before the extraction parse unchanged.
//! The key is [`Flow::config_key`](hlsb::Flow::config_key) of the
//! trial's flow — the clock target is part of the key, so one search
//! produces one record per trial and a resumed search answers every
//! repeated trial from the log instead of re-running it.

use std::path::Path;

use hlsb_store::json::{json_escape, raw_field, string_field};
use hlsb_store::{JsonlRecord, JsonlTable};

/// How a trial's verdict was decided.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TrialKind {
    /// Full place-and-route evaluation; `fmax_mhz` is sign-off timing.
    Full,
    /// Probe-only rejection: the schedule already carries violations at
    /// this target, so the target is unmet without paying for placement.
    /// `fmax_mhz` is 0 (nothing was implemented).
    Probe,
}

impl TrialKind {
    fn name(self) -> &'static str {
        match self {
            TrialKind::Full => "full",
            TrialKind::Probe => "probe",
        }
    }
}

/// One persisted trial: a configuration evaluated at one clock target.
#[derive(Debug, Clone, PartialEq)]
pub struct TrialRecord {
    /// [`Flow::config_key`](hlsb::Flow::config_key) of the trial's flow
    /// (covers design, device, every knob *and* the clock target).
    pub key: u64,
    /// Design name (informational; the key is authoritative).
    pub design: String,
    /// Clock-free configuration label ([`crate::ExploreConfig::label`]).
    pub label: String,
    /// The trial's clock target, MHz.
    pub clock_mhz: f64,
    /// How the verdict was decided.
    pub kind: TrialKind,
    /// Whether the target was met (`fmax >= target` at sign-off).
    pub met: bool,
    /// Achieved Fmax, MHz (0 for probe rejections).
    pub fmax_mhz: f64,
    /// Static latency, cycles (0 for probe rejections).
    pub latency_cycles: u64,
    /// Wall-clock cost of deciding this trial, milliseconds. Varies run
    /// to run; everything else round-trips bit-exactly.
    pub wall_ms: f64,
}

impl TrialRecord {
    /// Renders the record as one JSON line (no trailing newline).
    pub fn to_json(&self) -> String {
        JsonlRecord::to_json(self)
    }

    /// Parses one JSON line written by [`to_json`](TrialRecord::to_json).
    /// Returns `None` for malformed input (e.g. a half-written trailing
    /// line after a kill).
    pub fn from_json(line: &str) -> Option<TrialRecord> {
        <TrialRecord as JsonlRecord>::from_json(line)
    }
}

impl JsonlRecord for TrialRecord {
    fn key(&self) -> u64 {
        self.key
    }

    fn to_json(&self) -> String {
        format!(
            "{{\"key\":{},\"design\":\"{}\",\"label\":\"{}\",\"clock_mhz\":{:?},\
             \"kind\":\"{}\",\"met\":{},\"fmax_mhz\":{:?},\"latency_cycles\":{},\
             \"wall_ms\":{:?}}}",
            self.key,
            json_escape(&self.design),
            json_escape(&self.label),
            self.clock_mhz,
            self.kind.name(),
            self.met,
            self.fmax_mhz,
            self.latency_cycles,
            self.wall_ms,
        )
    }

    fn from_json(line: &str) -> Option<TrialRecord> {
        let line = line.trim();
        if !(line.starts_with('{') && line.ends_with('}')) {
            return None;
        }
        let kind = match raw_field(line, "kind")? {
            "\"full\"" => TrialKind::Full,
            "\"probe\"" => TrialKind::Probe,
            _ => return None,
        };
        Some(TrialRecord {
            key: raw_field(line, "key")?.parse().ok()?,
            design: string_field(line, "design")?,
            label: string_field(line, "label")?,
            clock_mhz: raw_field(line, "clock_mhz")?.parse().ok()?,
            kind,
            met: match raw_field(line, "met")? {
                "true" => true,
                "false" => false,
                _ => return None,
            },
            fmax_mhz: raw_field(line, "fmax_mhz")?.parse().ok()?,
            latency_cycles: raw_field(line, "latency_cycles")?.parse().ok()?,
            wall_ms: raw_field(line, "wall_ms")?.parse().ok()?,
        })
    }
}

/// Keyed log of trial records, optionally backed by a JSONL file — a
/// thin wrapper over [`hlsb_store::JsonlTable`].
#[derive(Debug, Default)]
pub struct FreqLog {
    table: JsonlTable<TrialRecord>,
}

impl FreqLog {
    /// An unbacked log: dedup within one process, nothing persisted.
    pub fn in_memory() -> Self {
        FreqLog::default()
    }

    /// Opens (or creates) a file-backed log and loads every parseable
    /// record. Later duplicates of a key win, matching append semantics.
    ///
    /// # Errors
    ///
    /// I/O errors opening or reading the file.
    pub fn open(path: impl AsRef<Path>) -> std::io::Result<Self> {
        Ok(FreqLog {
            table: JsonlTable::open(path)?,
        })
    }

    /// The backing path, when file-backed.
    pub fn path(&self) -> Option<&Path> {
        self.table.path()
    }

    /// Number of distinct trials logged.
    pub fn len(&self) -> usize {
        self.table.len()
    }

    /// Whether the log holds no records.
    pub fn is_empty(&self) -> bool {
        self.table.is_empty()
    }

    /// The record for a trial key, if present.
    pub fn get(&self, key: u64) -> Option<&TrialRecord> {
        self.table.get(key)
    }

    /// All records in insertion order.
    pub fn records(&self) -> impl Iterator<Item = &TrialRecord> {
        self.table.records()
    }

    /// Inserts a record, appending it to the backing file (see
    /// [`JsonlTable::insert`] for the append/flush/heal semantics). A
    /// record whose key is already present replaces the in-memory entry
    /// but is still appended — the file is a log; loads keep the latest.
    ///
    /// # Errors
    ///
    /// I/O errors appending to the backing file.
    pub fn insert(&mut self, rec: TrialRecord) -> std::io::Result<()> {
        self.table.insert(rec)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::fs::OpenOptions;

    fn record(key: u64, clock: f64, met: bool) -> TrialRecord {
        TrialRecord {
            key,
            design: "bench \"x\"".into(),
            label: "BSKM+r1 ×1 fast".into(),
            clock_mhz: clock,
            kind: if met {
                TrialKind::Full
            } else {
                TrialKind::Probe
            },
            met,
            fmax_mhz: if met { clock + 11.25 } else { 0.0 },
            latency_cycles: 1047,
            wall_ms: 3.5,
        }
    }

    #[test]
    fn json_round_trip_is_exact() {
        let rec = record(0xDEAD_BEEF_0BAD_F00D, 341.229_999_999_7, true);
        let line = rec.to_json();
        let back = TrialRecord::from_json(&line).expect("parses");
        assert_eq!(back, rec, "round trip must be bit-exact:\n{line}");
        assert!(TrialRecord::from_json("{\"key\":1").is_none());
        assert!(TrialRecord::from_json("").is_none());
    }

    #[test]
    fn file_log_resumes_and_skips_partial_lines() {
        let dir = std::env::temp_dir().join("hlsb_freq_log_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(format!("log_{}.jsonl", std::process::id()));
        let _ = std::fs::remove_file(&path);

        let mut log = FreqLog::open(&path).unwrap();
        assert!(log.is_empty());
        log.insert(record(1, 300.0, true)).unwrap();
        log.insert(record(2, 375.0, false)).unwrap();
        log.insert(record(1, 300.0, false)).unwrap(); // same key: latest wins
        assert_eq!(log.len(), 2);
        drop(log);

        {
            use std::io::Write as _;
            let mut f = OpenOptions::new().append(true).open(&path).unwrap();
            write!(f, "{{\"key\":3,\"design\"").unwrap();
        }

        let resumed = FreqLog::open(&path).unwrap();
        assert_eq!(resumed.len(), 2, "partial line skipped");
        assert!(!resumed.get(1).unwrap().met);
        assert_eq!(resumed.get(2).unwrap().kind, TrialKind::Probe);
        let keys: Vec<u64> = resumed.records().map(|r| r.key).collect();
        assert_eq!(keys, vec![1, 2]);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn in_memory_log_never_touches_disk() {
        let mut log = FreqLog::in_memory();
        log.insert(record(9, 200.0, true)).unwrap();
        assert_eq!(log.len(), 1);
        assert!(log.path().is_none());
    }
}
