//! The persistent frequency log: one JSONL line per decided trial.
//!
//! Follows the `hlsb-dse` result-store idiom: hand-rolled JSON (the
//! workspace builds offline, no serde), floats in Rust's shortest
//! round-trip notation, append + flush per record so a kill loses at
//! most the line being written, and a half-written trailing line is
//! skipped on load. The key is [`Flow::config_key`](hlsb::Flow::config_key)
//! of the trial's flow — the clock target is part of the key, so one
//! search produces one record per trial and a resumed search answers
//! every repeated trial from the log instead of re-running it.

use std::collections::HashMap;
use std::fs::{File, OpenOptions};
use std::io::{BufRead, BufReader, Write};
use std::path::{Path, PathBuf};

use hlsb_findings::json_escape;

/// How a trial's verdict was decided.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TrialKind {
    /// Full place-and-route evaluation; `fmax_mhz` is sign-off timing.
    Full,
    /// Probe-only rejection: the schedule already carries violations at
    /// this target, so the target is unmet without paying for placement.
    /// `fmax_mhz` is 0 (nothing was implemented).
    Probe,
}

impl TrialKind {
    fn name(self) -> &'static str {
        match self {
            TrialKind::Full => "full",
            TrialKind::Probe => "probe",
        }
    }
}

/// One persisted trial: a configuration evaluated at one clock target.
#[derive(Debug, Clone, PartialEq)]
pub struct TrialRecord {
    /// [`Flow::config_key`](hlsb::Flow::config_key) of the trial's flow
    /// (covers design, device, every knob *and* the clock target).
    pub key: u64,
    /// Design name (informational; the key is authoritative).
    pub design: String,
    /// Clock-free configuration label ([`crate::ExploreConfig::label`]).
    pub label: String,
    /// The trial's clock target, MHz.
    pub clock_mhz: f64,
    /// How the verdict was decided.
    pub kind: TrialKind,
    /// Whether the target was met (`fmax >= target` at sign-off).
    pub met: bool,
    /// Achieved Fmax, MHz (0 for probe rejections).
    pub fmax_mhz: f64,
    /// Static latency, cycles (0 for probe rejections).
    pub latency_cycles: u64,
    /// Wall-clock cost of deciding this trial, milliseconds. Varies run
    /// to run; everything else round-trips bit-exactly.
    pub wall_ms: f64,
}

impl TrialRecord {
    /// Renders the record as one JSON line (no trailing newline).
    pub fn to_json(&self) -> String {
        format!(
            "{{\"key\":{},\"design\":\"{}\",\"label\":\"{}\",\"clock_mhz\":{:?},\
             \"kind\":\"{}\",\"met\":{},\"fmax_mhz\":{:?},\"latency_cycles\":{},\
             \"wall_ms\":{:?}}}",
            self.key,
            json_escape(&self.design),
            json_escape(&self.label),
            self.clock_mhz,
            self.kind.name(),
            self.met,
            self.fmax_mhz,
            self.latency_cycles,
            self.wall_ms,
        )
    }

    /// Parses one JSON line written by [`to_json`](TrialRecord::to_json).
    /// Returns `None` for malformed input (e.g. a half-written trailing
    /// line after a kill).
    pub fn from_json(line: &str) -> Option<TrialRecord> {
        let line = line.trim();
        if !(line.starts_with('{') && line.ends_with('}')) {
            return None;
        }
        let kind = match raw_field(line, "kind")? {
            "\"full\"" => TrialKind::Full,
            "\"probe\"" => TrialKind::Probe,
            _ => return None,
        };
        Some(TrialRecord {
            key: raw_field(line, "key")?.parse().ok()?,
            design: string_field(line, "design")?,
            label: string_field(line, "label")?,
            clock_mhz: raw_field(line, "clock_mhz")?.parse().ok()?,
            kind,
            met: match raw_field(line, "met")? {
                "true" => true,
                "false" => false,
                _ => return None,
            },
            fmax_mhz: raw_field(line, "fmax_mhz")?.parse().ok()?,
            latency_cycles: raw_field(line, "latency_cycles")?.parse().ok()?,
            wall_ms: raw_field(line, "wall_ms")?.parse().ok()?,
        })
    }
}

/// The raw token of `"name":<token>` up to the next `,` or the closing
/// `}` — sufficient for the flat records this log writes (string values
/// contain no commas by construction of the labels).
fn raw_field<'a>(line: &'a str, name: &str) -> Option<&'a str> {
    let tag = format!("\"{name}\":");
    let start = line.find(&tag)? + tag.len();
    let rest = &line[start..];
    let end = rest.find([',', '}'])?;
    Some(&rest[..end])
}

fn string_field(line: &str, name: &str) -> Option<String> {
    let raw = raw_field(line, name)?;
    let inner = raw.strip_prefix('"')?.strip_suffix('"')?;
    Some(inner.replace("\\\"", "\"").replace("\\\\", "\\"))
}

/// Keyed log of trial records, optionally backed by a JSONL file.
#[derive(Debug, Default)]
pub struct FreqLog {
    path: Option<PathBuf>,
    file: Option<File>,
    records: HashMap<u64, TrialRecord>,
    /// Insertion order of keys (load order, then append order).
    order: Vec<u64>,
}

impl FreqLog {
    /// An unbacked log: dedup within one process, nothing persisted.
    pub fn in_memory() -> Self {
        FreqLog::default()
    }

    /// Opens (or creates) a file-backed log and loads every parseable
    /// record. Later duplicates of a key win, matching append semantics.
    ///
    /// # Errors
    ///
    /// I/O errors opening or reading the file.
    pub fn open(path: impl AsRef<Path>) -> std::io::Result<Self> {
        let path = path.as_ref().to_path_buf();
        let mut log = FreqLog {
            file: None,
            records: HashMap::new(),
            order: Vec::new(),
            path: Some(path.clone()),
        };
        if path.exists() {
            for line in BufReader::new(File::open(&path)?).lines() {
                if let Some(rec) = TrialRecord::from_json(&line?) {
                    log.remember(rec);
                }
            }
        }
        log.file = Some(OpenOptions::new().create(true).append(true).open(&path)?);
        Ok(log)
    }

    /// The backing path, when file-backed.
    pub fn path(&self) -> Option<&Path> {
        self.path.as_deref()
    }

    /// Number of distinct trials logged.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Whether the log holds no records.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// The record for a trial key, if present.
    pub fn get(&self, key: u64) -> Option<&TrialRecord> {
        self.records.get(&key)
    }

    /// All records in insertion order.
    pub fn records(&self) -> impl Iterator<Item = &TrialRecord> {
        self.order.iter().filter_map(|k| self.records.get(k))
    }

    /// Inserts a record, appending it to the backing file (flushed per
    /// record, so a kill loses at most the line being written). A record
    /// whose key is already present replaces the in-memory entry but is
    /// still appended — the file is a log; loads keep the latest.
    ///
    /// # Errors
    ///
    /// I/O errors appending to the backing file.
    pub fn insert(&mut self, rec: TrialRecord) -> std::io::Result<()> {
        if let Some(file) = &mut self.file {
            writeln!(file, "{}", rec.to_json())?;
            file.flush()?;
        }
        self.remember(rec);
        Ok(())
    }

    fn remember(&mut self, rec: TrialRecord) {
        if self.records.insert(rec.key, rec.clone()).is_none() {
            self.order.push(rec.key);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(key: u64, clock: f64, met: bool) -> TrialRecord {
        TrialRecord {
            key,
            design: "bench \"x\"".into(),
            label: "BSKM+r1 ×1 fast".into(),
            clock_mhz: clock,
            kind: if met {
                TrialKind::Full
            } else {
                TrialKind::Probe
            },
            met,
            fmax_mhz: if met { clock + 11.25 } else { 0.0 },
            latency_cycles: 1047,
            wall_ms: 3.5,
        }
    }

    #[test]
    fn json_round_trip_is_exact() {
        let rec = record(0xDEAD_BEEF_0BAD_F00D, 341.229_999_999_7, true);
        let line = rec.to_json();
        let back = TrialRecord::from_json(&line).expect("parses");
        assert_eq!(back, rec, "round trip must be bit-exact:\n{line}");
        assert!(TrialRecord::from_json("{\"key\":1").is_none());
        assert!(TrialRecord::from_json("").is_none());
    }

    #[test]
    fn file_log_resumes_and_skips_partial_lines() {
        let dir = std::env::temp_dir().join("hlsb_freq_log_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(format!("log_{}.jsonl", std::process::id()));
        let _ = std::fs::remove_file(&path);

        let mut log = FreqLog::open(&path).unwrap();
        assert!(log.is_empty());
        log.insert(record(1, 300.0, true)).unwrap();
        log.insert(record(2, 375.0, false)).unwrap();
        log.insert(record(1, 300.0, false)).unwrap(); // same key: latest wins
        assert_eq!(log.len(), 2);
        drop(log);

        {
            use std::io::Write as _;
            let mut f = OpenOptions::new().append(true).open(&path).unwrap();
            write!(f, "{{\"key\":3,\"design\"").unwrap();
        }

        let resumed = FreqLog::open(&path).unwrap();
        assert_eq!(resumed.len(), 2, "partial line skipped");
        assert!(!resumed.get(1).unwrap().met);
        assert_eq!(resumed.get(2).unwrap().kind, TrialKind::Probe);
        let keys: Vec<u64> = resumed.records().map(|r| r.key).collect();
        assert_eq!(keys, vec![1, 2]);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn in_memory_log_never_touches_disk() {
        let mut log = FreqLog::in_memory();
        log.insert(record(9, 200.0, true)).unwrap();
        assert_eq!(log.len(), 1);
        assert!(log.path().is_none());
    }
}
