//! The closed-loop driver: per-configuration clock search with
//! probe-first evaluation, frequency-log resume, injection-twin pruning,
//! post-convergence semantics checks and `explore.*` span provenance.

use std::time::Instant;

use hlsb::{FlowSession, PassRecord, PassTrace, TraceTree, Tracer};
use hlsb_fabric::Device;
use hlsb_ir::Design;
use hlsb_sim::Stimulus;

use crate::config::ExploreConfig;
use crate::log::{FreqLog, TrialKind, TrialRecord};
use crate::search::{search_max_clock, SearchParams, Trial};
use crate::{DEFAULT_BUDGET, DEFAULT_TOLERANCE_MHZ};

/// Slack for the met-target comparison, MHz — well below the search
/// tolerance, well above f64 noise in the period/frequency conversion.
const EPS_MHZ: f64 = 1e-6;

/// Default iteration cap for the differential-simulation check of
/// converged configurations.
pub const DEFAULT_VERIFY_ITERS: u64 = 32;

/// The outcome of one configuration's search.
#[derive(Debug, Clone)]
pub struct ConfigOutcome {
    /// The configuration.
    pub config: ExploreConfig,
    /// Its clock-free label ([`ExploreConfig::label`]).
    pub label: String,
    /// Converged maximum clock target, MHz — `None` when no target was
    /// met, the configuration was pruned, or it is infeasible.
    pub converged_mhz: Option<f64>,
    /// Best achieved Fmax over all met trials, MHz (0 when none met).
    pub best_fmax_mhz: f64,
    /// Every decided trial of this search, in evaluation order.
    pub trials: Vec<Trial>,
    /// Fresh full (place-and-route) evaluations spent.
    pub full_evals: usize,
    /// Probe evaluations spent (search rejections + prune probes).
    pub probe_evals: usize,
    /// Trials answered from the frequency log without running anything.
    pub log_hits: usize,
    /// The search stopped on budget exhaustion, not tolerance.
    pub exhausted: bool,
    /// Dropped before searching: the probe at the start clock was
    /// indistinguishable from the no-injection twin (injection cut
    /// nothing; the hardware is identical).
    pub pruned: bool,
    /// The flow rejected the configuration outright (e.g. an injection
    /// boundary that names a stage of no loop).
    pub infeasible: Option<String>,
    /// Differential-simulation verdict at the converged clock, when the
    /// search converged and verification is enabled.
    pub sim_check: Option<Result<(), String>>,
    /// Whether the static contract checks (`hlsb-verify`) pass at the
    /// converged clock, when the search converged.
    pub verify_ok: Option<bool>,
    /// Wall-clock cost of this configuration's search, milliseconds.
    pub wall_ms: f64,
}

/// The outcome of one design's exploration.
#[derive(Debug, Clone)]
pub struct ExploreReport {
    /// Design name.
    pub design: String,
    /// First trial target, MHz.
    pub start_mhz: f64,
    /// Convergence tolerance, MHz.
    pub tolerance_mhz: f64,
    /// The full-evaluation budget the run started with (shared across
    /// configurations).
    pub budget: usize,
    /// One outcome per requested configuration, in request order.
    pub outcomes: Vec<ConfigOutcome>,
    /// Fresh full evaluations spent across all configurations.
    pub full_evals: usize,
    /// Probe evaluations spent across all configurations.
    pub probe_evals: usize,
    /// Trials answered from the frequency log across all configurations.
    pub log_hits: usize,
    /// Per-pass wall times and counters accumulated over every probe and
    /// full run, plus an `explore` record with the evaluation counts.
    pub trace: PassTrace,
    /// The explorer's own span tree (`explore` root, one `explore.config`
    /// span per configuration, one `explore.trial` span per decided
    /// trial), when the explorer ran with [`FmaxExplorer::trace`]
    /// enabled.
    pub span_tree: Option<TraceTree>,
}

impl ExploreReport {
    /// The converged configuration with the highest achieved Fmax.
    pub fn best(&self) -> Option<&ConfigOutcome> {
        self.outcomes
            .iter()
            .filter(|o| o.converged_mhz.is_some())
            .max_by(|a, b| a.best_fmax_mhz.total_cmp(&b.best_fmax_mhz))
    }

    /// Whether every converged configuration passed its differential
    /// simulation and its contract checks (vacuously true when nothing
    /// converged or verification was disabled).
    pub fn semantics_ok(&self) -> bool {
        self.outcomes
            .iter()
            .all(|o| !matches!(o.sim_check, Some(Err(_))) && o.verify_ok != Some(false))
    }
}

/// Closed-loop Fmax explorer for one design/device pair.
///
/// ```no_run
/// use hlsb::FlowSession;
/// use hlsb_explore::FmaxExplorer;
/// # let bench = hlsb_benchmarks::all_benchmarks().remove(0);
/// let session = FlowSession::new();
/// let report = FmaxExplorer::new(&bench.design, &bench.device)
///     .start_mhz(bench.clock_mhz)
///     .tolerance_mhz(10.0)
///     .run(&session)
///     .expect("log I/O");
/// for o in &report.outcomes {
///     println!("{}: {:?} MHz", o.label, o.converged_mhz);
/// }
/// ```
pub struct FmaxExplorer<'a> {
    design: &'a Design,
    device: &'a Device,
    configs: Vec<ExploreConfig>,
    start_mhz: f64,
    tolerance_mhz: f64,
    budget: usize,
    seed: u64,
    log: FreqLog,
    verify_iters: u64,
    trace_spans: bool,
}

impl<'a> FmaxExplorer<'a> {
    /// An explorer over [`ExploreConfig::default_set`], starting at
    /// 300 MHz, default tolerance and budget, in-memory log.
    pub fn new(design: &'a Design, device: &'a Device) -> Self {
        FmaxExplorer {
            design,
            device,
            configs: ExploreConfig::default_set(),
            start_mhz: 300.0,
            tolerance_mhz: DEFAULT_TOLERANCE_MHZ,
            budget: DEFAULT_BUDGET,
            seed: 1,
            log: FreqLog::in_memory(),
            verify_iters: DEFAULT_VERIFY_ITERS,
            trace_spans: false,
        }
    }

    /// Sets the configurations to search.
    pub fn configs(mut self, configs: Vec<ExploreConfig>) -> Self {
        self.configs = configs;
        self
    }

    /// Sets the first trial target (typically the benchmark's Table 1
    /// clock).
    pub fn start_mhz(mut self, mhz: f64) -> Self {
        self.start_mhz = mhz;
        self
    }

    /// Sets the convergence tolerance.
    pub fn tolerance_mhz(mut self, mhz: f64) -> Self {
        self.tolerance_mhz = mhz;
        self
    }

    /// Caps *fresh full* (place-and-route) evaluations across all
    /// configurations of this run. Probes and log hits are free.
    pub fn budget(mut self, budget: usize) -> Self {
        self.budget = budget.max(1);
        self
    }

    /// Sets the base seed (placement noise streams).
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Attaches a frequency log (e.g. [`FreqLog::open`] on a JSONL path)
    /// for resume-after-interrupt.
    pub fn log(mut self, log: FreqLog) -> Self {
        self.log = log;
        self
    }

    /// Iteration cap for the differential-simulation check of converged
    /// configurations; `0` disables both it and the contract re-check.
    pub fn verify_iters(mut self, iters: u64) -> Self {
        self.verify_iters = iters;
        self
    }

    /// Enables the explorer's own `explore.*` span tree
    /// ([`ExploreReport::span_tree`]).
    pub fn trace(mut self, enabled: bool) -> Self {
        self.trace_spans = enabled;
        self
    }

    /// Runs the search for every configuration and checks the semantics
    /// of every converged one.
    ///
    /// # Errors
    ///
    /// I/O errors of the frequency log. Per-configuration flow failures
    /// are not errors — they are recorded as
    /// [`infeasible`](ConfigOutcome::infeasible).
    pub fn run(&mut self, session: &FlowSession) -> std::io::Result<ExploreReport> {
        let t0 = Instant::now();
        let tracer = if self.trace_spans {
            Tracer::enabled()
        } else {
            Tracer::disabled()
        };
        let root = tracer.root("explore");
        root.attr("design", self.design.name.as_str());
        root.attr("start-mhz", self.start_mhz);
        root.attr("tolerance-mhz", self.tolerance_mhz);
        root.attr("budget", self.budget as u64);

        let params = SearchParams::new(self.start_mhz, self.tolerance_mhz);
        let mut budget_left = self.budget;
        let mut trace = PassTrace::default();
        let mut outcomes: Vec<ConfigOutcome> = Vec::with_capacity(self.configs.len());
        let mut io_error: Option<std::io::Error> = None;

        for cfg in self.configs.clone() {
            let cfg_t0 = Instant::now();
            let label = cfg.label();
            let cfg_span = root.child("explore.config");
            cfg_span.attr("config", label.as_str());
            let mut outcome = ConfigOutcome {
                config: cfg.clone(),
                label: label.clone(),
                converged_mhz: None,
                best_fmax_mhz: 0.0,
                trials: Vec::new(),
                full_evals: 0,
                probe_evals: 0,
                log_hits: 0,
                exhausted: false,
                pruned: false,
                infeasible: None,
                sim_check: None,
                verify_ok: None,
                wall_ms: 0.0,
            };

            // Injection-twin pruning: when the probe at the start clock
            // schedules to the same depths as the no-injection twin, the
            // injection cut nothing — the hardware is identical and the
            // twin's search already covers it.
            if cfg.inject.is_enabled() {
                let probe =
                    session.probe(&cfg.flow(self.design, self.device, self.seed, self.start_mhz));
                match probe {
                    Err(e) => {
                        outcome.infeasible = Some(e.to_string());
                        cfg_span.attr("infeasible", e.to_string());
                        cfg_span.count("explore.infeasible", 1);
                        outcome.wall_ms = cfg_t0.elapsed().as_secs_f64() * 1e3;
                        outcomes.push(outcome);
                        continue;
                    }
                    Ok(p) => {
                        outcome.probe_evals += 2;
                        trace.merge(&p.trace);
                        let twin = session.probe(&cfg.twin().flow(
                            self.design,
                            self.device,
                            self.seed,
                            self.start_mhz,
                        ));
                        if let Ok(t) = twin {
                            trace.merge(&t.trace);
                            if t.schedule_depths == p.schedule_depths {
                                outcome.pruned = true;
                                cfg_span.event(
                                    "explore.prune",
                                    vec![
                                        ("config", label.as_str().into()),
                                        ("reason", "identical-to-twin".into()),
                                    ],
                                );
                                cfg_span.count("explore.pruned", 1);
                                outcome.wall_ms = cfg_t0.elapsed().as_secs_f64() * 1e3;
                                outcomes.push(outcome);
                                continue;
                            }
                        }
                    }
                }
            }

            // The search: log first, then probe, then a full run.
            let search = {
                let log = &mut self.log;
                let (design, device, seed) = (self.design, self.device, self.seed);
                let (full_evals, probe_evals, log_hits) = (
                    &mut outcome.full_evals,
                    &mut outcome.probe_evals,
                    &mut outcome.log_hits,
                );
                let (infeasible, trace, io_error) =
                    (&mut outcome.infeasible, &mut trace, &mut io_error);
                search_max_clock(params, |clock_mhz| {
                    let trial_t0 = Instant::now();
                    let flow = cfg.flow(design, device, seed, clock_mhz);
                    let key = flow.config_key();
                    let span = cfg_span.child("explore.trial");
                    span.attr("clock-mhz", clock_mhz);

                    if let Some(rec) = log.get(key) {
                        *log_hits += 1;
                        span.attr("kind", "log");
                        span.attr("met", rec.met);
                        span.attr("fmax-mhz", rec.fmax_mhz);
                        span.count("explore.log-hits", 1);
                        return Some(Trial {
                            clock_mhz,
                            met: rec.met,
                            fmax_mhz: rec.fmax_mhz,
                        });
                    }

                    let probe = match session.probe(&flow) {
                        Ok(p) => p,
                        Err(e) => {
                            *infeasible = Some(e.to_string());
                            span.attr("kind", "error");
                            return None;
                        }
                    };
                    trace.merge(&probe.trace);
                    let (kind, met, fmax_mhz, latency_cycles) = if probe.schedule_violations > 0 {
                        // A single-op delay already exceeds this
                        // target's budget: no placement can sign off.
                        *probe_evals += 1;
                        span.count("explore.probe-evals", 1);
                        (TrialKind::Probe, false, 0.0, 0)
                    } else {
                        if *full_evals + 1 > budget_left {
                            span.attr("kind", "budget");
                            return None;
                        }
                        match session.run(&flow) {
                            Ok(r) => {
                                *full_evals += 1;
                                span.count("explore.full-evals", 1);
                                trace.merge(&r.trace);
                                let met = r.fmax_mhz >= clock_mhz - EPS_MHZ;
                                (TrialKind::Full, met, r.fmax_mhz, r.latency_cycles)
                            }
                            Err(e) => {
                                // A rejected implementation (fit,
                                // contract breach) cannot meet the
                                // target; the search routes around it.
                                *full_evals += 1;
                                span.count("explore.full-evals", 1);
                                span.attr("error", e.to_string());
                                (TrialKind::Full, false, 0.0, 0)
                            }
                        }
                    };
                    span.attr("kind", kind_name(kind));
                    span.attr("met", met);
                    span.attr("fmax-mhz", fmax_mhz);
                    if let Err(e) = log.insert(TrialRecord {
                        key,
                        design: design.name.clone(),
                        label: label.clone(),
                        clock_mhz,
                        kind,
                        met,
                        fmax_mhz,
                        latency_cycles,
                        wall_ms: trial_t0.elapsed().as_secs_f64() * 1e3,
                    }) {
                        *io_error = Some(e);
                        return None;
                    }
                    Some(Trial {
                        clock_mhz,
                        met,
                        fmax_mhz,
                    })
                })
            };
            if let Some(e) = io_error.take() {
                return Err(e);
            }
            budget_left -= outcome.full_evals.min(budget_left);
            outcome.converged_mhz = search.converged_mhz;
            outcome.best_fmax_mhz = search.best_fmax_mhz;
            outcome.trials = search.trials;
            outcome.exhausted = search.exhausted && outcome.infeasible.is_none();

            // Semantics of the converged point: differential simulation
            // against the untimed golden evaluator, and the static
            // contract checks (probes re-run the schedule contracts —
            // including the injected-register latency rule — on the
            // cached artifact).
            if let Some(converged) = outcome.converged_mhz {
                cfg_span.attr("converged-mhz", converged);
                cfg_span.attr("best-fmax-mhz", outcome.best_fmax_mhz);
                if self.verify_iters > 0 {
                    let flow = cfg.flow(self.design, self.device, self.seed, converged);
                    let stim = Stimulus::seeded(self.design, 1, self.verify_iters as usize);
                    let verdict = match session.simulate(&flow, &stim, self.verify_iters) {
                        Ok(sim) => {
                            trace.merge(&sim.trace);
                            sim.check()
                        }
                        Err(e) => Err(e.to_string()),
                    };
                    if verdict.is_err() {
                        cfg_span.count("explore.sim-failed", 1);
                    }
                    cfg_span.count("explore.sim-checked", 1);
                    outcome.sim_check = Some(verdict);
                    outcome.verify_ok = Some(session.probe(&flow.verify(true)).is_ok());
                }
            }
            outcome.wall_ms = cfg_t0.elapsed().as_secs_f64() * 1e3;
            if outcome.exhausted {
                cfg_span.count("explore.exhausted", 1);
            }
            outcomes.push(outcome);
        }

        let full_evals: usize = outcomes.iter().map(|o| o.full_evals).sum();
        let probe_evals: usize = outcomes.iter().map(|o| o.probe_evals).sum();
        let log_hits: usize = outcomes.iter().map(|o| o.log_hits).sum();
        trace.records.push(PassRecord {
            pass: "explore".to_string(),
            wall_ms: t0.elapsed().as_secs_f64() * 1e3,
            counters: [
                ("configs", outcomes.len() as u64),
                ("full-evals", full_evals as u64),
                ("probe-evals", probe_evals as u64),
                ("log-hits", log_hits as u64),
                (
                    "pruned",
                    outcomes.iter().filter(|o| o.pruned).count() as u64,
                ),
                (
                    "infeasible",
                    outcomes.iter().filter(|o| o.infeasible.is_some()).count() as u64,
                ),
                (
                    "converged",
                    outcomes
                        .iter()
                        .filter(|o| o.converged_mhz.is_some())
                        .count() as u64,
                ),
                (
                    "exhausted",
                    outcomes.iter().filter(|o| o.exhausted).count() as u64,
                ),
            ]
            .into_iter()
            .map(|(n, v)| (n.to_string(), v))
            .collect(),
        });

        root.finish();
        let span_tree = self.trace_spans.then(|| tracer.take_tree());
        Ok(ExploreReport {
            design: self.design.name.clone(),
            start_mhz: self.start_mhz,
            tolerance_mhz: self.tolerance_mhz,
            budget: self.budget,
            outcomes,
            full_evals,
            probe_evals,
            log_hits,
            trace,
            span_tree,
        })
    }

    /// Moves the frequency log out of the explorer (e.g. to inspect the
    /// trial records after a run).
    pub fn take_log(&mut self) -> FreqLog {
        std::mem::take(&mut self.log)
    }
}

fn kind_name(kind: TrialKind) -> &'static str {
    match kind {
        TrialKind::Full => "full",
        TrialKind::Probe => "probe",
    }
}
