//! The clock-target search: expansion to bracket the feasibility edge,
//! then bisection to the requested tolerance.
//!
//! The search is decoupled from the flow: it drives a caller-supplied
//! evaluation closure, so the unit tests exercise the convergence logic
//! against synthetic feasibility curves and the explorer plugs in the
//! probe-first flow evaluation (with log lookups and budget accounting)
//! without the algorithm knowing.

/// Search bounds and stopping tolerance.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SearchParams {
    /// First trial target, MHz (typically the benchmark's Table 1
    /// clock).
    pub start_mhz: f64,
    /// Stop once the met/unmet bracket is at most this wide, MHz.
    pub tolerance_mhz: f64,
    /// Never search below this target, MHz.
    pub floor_mhz: f64,
    /// Never search above this target, MHz.
    pub cap_mhz: f64,
}

impl SearchParams {
    /// Bounds for a search starting at `start_mhz` with the given
    /// tolerance: floor 50 MHz (below the slowest fast-effort design in
    /// the benchmark set), cap 800 MHz (past any achievable Fmax of the
    /// simulated fabric).
    pub fn new(start_mhz: f64, tolerance_mhz: f64) -> Self {
        SearchParams {
            start_mhz,
            tolerance_mhz: tolerance_mhz.max(0.5),
            floor_mhz: 50.0,
            cap_mhz: 800.0,
        }
    }
}

/// One decided trial, as the search sees it.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Trial {
    /// The clock target that was evaluated, MHz.
    pub clock_mhz: f64,
    /// Whether the implementation met the target (`fmax >= target`).
    pub met: bool,
    /// Achieved Fmax, MHz (0 when the trial was decided by a probe).
    pub fmax_mhz: f64,
}

/// Where the search stopped.
#[derive(Debug, Clone, PartialEq)]
pub struct SearchOutcome {
    /// Highest clock target that was met — the converged maximum clock.
    /// `None` when no trial met its target (including an exhausted or
    /// empty search).
    pub converged_mhz: Option<f64>,
    /// Best achieved Fmax over all met trials, MHz (0 when none met).
    pub best_fmax_mhz: f64,
    /// Every decided trial, in evaluation order.
    pub trials: Vec<Trial>,
    /// The evaluation closure gave up (budget exhausted) before the
    /// bracket reached the tolerance.
    pub exhausted: bool,
}

/// Round a trial target to 0.01 MHz so resumed searches regenerate
/// bit-identical targets (and therefore identical trial keys) regardless
/// of how the midpoints were accumulated.
fn quantize(mhz: f64) -> f64 {
    (mhz * 100.0).round() / 100.0
}

/// Finds the highest clock target the evaluation still meets.
///
/// Starting from `params.start_mhz`, the search expands upward while
/// targets are met (jumping to just past the achieved Fmax when that is
/// further — the achieved curve is the best available guide) and
/// contracts geometrically while they are unmet; once one met and one
/// unmet target bracket the edge it bisects until the bracket is within
/// `params.tolerance_mhz`. `eval` decides one target and returns `None`
/// when its budget is exhausted, which stops the search with
/// [`SearchOutcome::exhausted`] set.
///
/// The search is deterministic: targets depend only on `params` and the
/// verdicts, never on wall-clock or randomness.
pub fn search_max_clock(
    params: SearchParams,
    mut eval: impl FnMut(f64) -> Option<Trial>,
) -> SearchOutcome {
    let tol = params.tolerance_mhz;
    let mut trials = Vec::new();
    let mut lo: Option<Trial> = None; // highest met
    let mut hi: Option<f64> = None; // lowest unmet
    let mut exhausted = false;
    let mut next = quantize(params.start_mhz.clamp(params.floor_mhz, params.cap_mhz));

    loop {
        let trial = match eval(next) {
            Some(t) => t,
            None => {
                exhausted = true;
                break;
            }
        };
        trials.push(trial);
        if trial.met {
            if lo.is_none_or(|l| trial.clock_mhz > l.clock_mhz) {
                lo = Some(trial);
            }
        } else if hi.is_none_or(|h| trial.clock_mhz < h) {
            hi = Some(trial.clock_mhz);
        }

        next = match (lo, hi) {
            // Bracketed: bisect until the bracket is tight.
            (Some(l), Some(h)) => {
                if h - l.clock_mhz <= tol {
                    break;
                }
                quantize((l.clock_mhz + h) / 2.0)
            }
            // Only met so far: expand upward, guided by the achieved
            // Fmax when it outruns the geometric step.
            (Some(l), None) => {
                if l.clock_mhz >= params.cap_mhz {
                    break;
                }
                let geometric = l.clock_mhz * 1.15;
                let guided = if l.fmax_mhz > l.clock_mhz {
                    l.fmax_mhz + tol
                } else {
                    0.0
                };
                quantize(geometric.max(guided).min(params.cap_mhz))
            }
            // Only unmet so far: contract downward.
            (None, Some(h)) => {
                if h <= params.floor_mhz {
                    break;
                }
                quantize((h * 0.8).max(params.floor_mhz))
            }
            (None, None) => unreachable!("a decided trial is met or unmet"),
        };
        // A repeated target can only repeat its verdict — the bracket
        // cannot shrink further at this tolerance.
        if trials.iter().any(|t| t.clock_mhz == next) {
            break;
        }
    }

    let best_fmax_mhz = trials
        .iter()
        .filter(|t| t.met)
        .map(|t| t.fmax_mhz)
        .fold(0.0, f64::max);
    SearchOutcome {
        converged_mhz: lo.map(|l| l.clock_mhz),
        best_fmax_mhz,
        trials,
        exhausted,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Synthetic fabric: a target is met iff it is at most `edge`; the
    /// achieved Fmax rises with the target until the edge.
    fn step_eval(edge: f64) -> impl FnMut(f64) -> Option<Trial> {
        move |clock| {
            let met = clock <= edge;
            Some(Trial {
                clock_mhz: clock,
                met,
                fmax_mhz: if met { clock + 4.0 } else { 0.0 },
            })
        }
    }

    #[test]
    fn converges_to_the_edge_within_tolerance() {
        for edge in [137.0, 320.0, 451.5, 640.0] {
            let params = SearchParams::new(300.0, 5.0);
            let out = search_max_clock(params, step_eval(edge));
            let converged = out.converged_mhz.expect("edge is above the floor");
            assert!(
                converged <= edge && edge - converged <= 2.0 * params.tolerance_mhz,
                "edge {edge}: converged {converged} (trials {:?})",
                out.trials
            );
            assert!(!out.exhausted);
            assert!(out.best_fmax_mhz >= converged);
            assert!(
                out.trials.len() <= 16,
                "edge {edge}: {} trials",
                out.trials.len()
            );
        }
    }

    #[test]
    fn infeasible_everywhere_converges_to_none() {
        let out = search_max_clock(SearchParams::new(300.0, 5.0), step_eval(25.0));
        assert_eq!(out.converged_mhz, None);
        assert_eq!(out.best_fmax_mhz, 0.0);
        assert!(out
            .trials
            .iter()
            .all(|t| !t.met && t.clock_mhz >= 50.0 - 1e-9));
    }

    #[test]
    fn met_at_the_cap_stops_expanding() {
        let out = search_max_clock(SearchParams::new(300.0, 5.0), step_eval(10_000.0));
        assert_eq!(out.converged_mhz, Some(800.0));
        assert!(!out.exhausted);
    }

    #[test]
    fn budget_exhaustion_is_reported_and_keeps_the_best_so_far() {
        let mut budget = 3usize;
        let mut inner = step_eval(451.5);
        let out = search_max_clock(SearchParams::new(300.0, 1.0), |clock| {
            budget = budget.checked_sub(1)?;
            inner(clock)
        });
        assert!(out.exhausted);
        assert_eq!(out.trials.len(), 3);
        assert!(out.converged_mhz.is_some());
    }

    #[test]
    fn search_is_deterministic() {
        let a = search_max_clock(SearchParams::new(300.0, 5.0), step_eval(333.0));
        let b = search_max_clock(SearchParams::new(300.0, 5.0), step_eval(333.0));
        assert_eq!(a, b);
    }
}
