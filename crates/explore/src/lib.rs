//! # hlsb-explore — closed-loop maximum-frequency search
//!
//! The rest of the workspace evaluates the flow at *fixed* clock targets
//! (the paper's Table 1–3 experiments). This crate closes the loop: for
//! one design and one knob configuration it searches over the HLS clock
//! target itself, re-running the flow until it converges — within a
//! caller-chosen tolerance — to the highest target the implementation
//! still signs off at (`fmax >= target`). Because scheduling is
//! clock-driven, a higher target packs chains into more cycles and the
//! *achieved* Fmax moves with the target; the fixed-clock numbers are a
//! single sample of that curve, the explorer finds its knee.
//!
//! Three pieces:
//!
//! * [`ExploreConfig`] — one point of the searched knob set: the paper's
//!   optimization cube plus forced register injection
//!   ([`hlsb::RegisterInjection`]) at named stage boundaries.
//! * [`FreqLog`] — an append-only JSONL trial log keyed by
//!   [`Flow::config_key`](hlsb::Flow::config_key) (the clock target is
//!   part of the key, so every trial is one record). A killed search
//!   resumes from the log without re-running completed trials and
//!   converges to the same table.
//! * [`FmaxExplorer`] — the driver: probe-first evaluation (a schedule
//!   violation proves a target unmet without paying for placement),
//!   expansion + bisection search ([`search_max_clock`]), early pruning
//!   of injection configurations whose probe is indistinguishable from
//!   their no-injection twin, differential simulation and contract
//!   verification of every converged configuration, and `explore.*`
//!   spans/counters for the whole run.

pub mod config;
pub mod explorer;
pub mod log;
pub mod report;
pub mod search;

pub use config::ExploreConfig;
pub use explorer::{ConfigOutcome, ExploreReport, FmaxExplorer, DEFAULT_VERIFY_ITERS};
pub use log::{FreqLog, TrialKind, TrialRecord};
pub use search::{search_max_clock, SearchOutcome, SearchParams, Trial};

/// Default convergence tolerance, MHz.
pub const DEFAULT_TOLERANCE_MHZ: f64 = 10.0;

/// Default cap on full (place-and-route) evaluations per design, shared
/// across that design's configurations.
pub const DEFAULT_BUDGET: usize = 25;
