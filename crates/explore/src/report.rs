//! Renderers for [`ExploreReport`]: a human-readable best-frequencies
//! table and a machine-readable JSONL stream.

use hlsb_findings::json_escape;

use crate::explorer::{ConfigOutcome, ExploreReport};

fn converged_cell(o: &ConfigOutcome) -> String {
    if o.pruned {
        "pruned".to_string()
    } else if o.infeasible.is_some() {
        "infeasible".to_string()
    } else {
        match o.converged_mhz {
            Some(mhz) => format!("{mhz:.1}"),
            None => "-".to_string(),
        }
    }
}

fn sim_tag(o: &ConfigOutcome) -> &'static str {
    match (&o.sim_check, o.verify_ok) {
        (Some(Err(_)), _) | (_, Some(false)) => "FAIL",
        (Some(Ok(())), _) => "ok",
        (None, _) => "-",
    }
}

/// The best-frequencies table, one row per configuration:
///
/// ```text
/// config               converged  best MHz  full  probe  log   sim  wall s
/// BSKM ×1 fast             390.6     402.1     7      2    0    ok     1.3
/// ```
pub fn best_frequencies_table(report: &ExploreReport) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{:<22} {:>9} {:>9} {:>5} {:>6} {:>4}  {:>4} {:>7}\n",
        "config", "converged", "best MHz", "full", "probe", "log", "sim", "wall s"
    ));
    for o in &report.outcomes {
        out.push_str(&format!(
            "{:<22} {:>9} {:>9.1} {:>5} {:>6} {:>4}  {:>4} {:>7.1}\n",
            o.label,
            converged_cell(o),
            o.best_fmax_mhz,
            o.full_evals,
            o.probe_evals,
            o.log_hits,
            sim_tag(o),
            o.wall_ms / 1e3,
        ));
    }
    out
}

/// The outcomes as JSON lines — one self-contained object per
/// configuration (wall-clock included; strip it before comparing runs).
pub fn report_jsonl(report: &ExploreReport) -> String {
    let mut out = String::new();
    for o in &report.outcomes {
        out.push_str(&format!(
            "{{\"design\":\"{}\",\"config\":\"{}\",\"converged_mhz\":{},\
             \"best_fmax_mhz\":{:?},\"full_evals\":{},\"probe_evals\":{},\
             \"log_hits\":{},\"pruned\":{},\"infeasible\":{},\"exhausted\":{},\
             \"sim\":\"{}\",\"wall_ms\":{:?}}}\n",
            json_escape(&report.design),
            json_escape(&o.label),
            match o.converged_mhz {
                Some(mhz) => format!("{mhz:?}"),
                None => "null".to_string(),
            },
            o.best_fmax_mhz,
            o.full_evals,
            o.probe_evals,
            o.log_hits,
            o.pruned,
            match &o.infeasible {
                Some(e) => format!("\"{}\"", json_escape(e)),
                None => "null".to_string(),
            },
            o.exhausted,
            sim_tag(o),
            o.wall_ms,
        ));
    }
    out
}

/// One-paragraph summary of the search effort.
pub fn summary_line(report: &ExploreReport) -> String {
    format!(
        "start={:.0} tol={:.1} budget={} configs={} converged={} \
         full-evals={} probe-evals={} log-hits={} pruned={} sim={}",
        report.start_mhz,
        report.tolerance_mhz,
        report.budget,
        report.outcomes.len(),
        report
            .outcomes
            .iter()
            .filter(|o| o.converged_mhz.is_some())
            .count(),
        report.full_evals,
        report.probe_evals,
        report.log_hits,
        report.outcomes.iter().filter(|o| o.pruned).count(),
        if report.semantics_ok() { "ok" } else { "FAIL" },
    )
}

/// The structured rows a comparison between two runs should quantify
/// over: `(label, converged, best, full-evals-or-log-hits verdict data)`
/// without wall-clock columns. Two searches of the same design with the
/// same parameters — e.g. a fresh run and a resume from its log — must
/// produce equal tables.
pub fn comparable_rows(report: &ExploreReport) -> Vec<(String, Option<u64>, u64, bool)> {
    report
        .outcomes
        .iter()
        .map(|o| {
            (
                o.label.clone(),
                o.converged_mhz.map(f64::to_bits),
                o.best_fmax_mhz.to_bits(),
                o.pruned,
            )
        })
        .collect()
}
