//! The knob configurations the Fmax explorer sweeps.
//!
//! Unlike [`hlsb_dse`](https://docs.rs)'s `DseConfig`, the clock target
//! is *not* part of an [`ExploreConfig`] — the clock is the search
//! variable. A configuration is the paper's optimization toggles plus
//! forced register injection and the placement knobs; the explorer maps
//! it to a [`Flow`] per trial clock.

use hlsb::{Flow, OptimizationOptions, Partitioning, PlaceEffort, RegisterInjection};
use hlsb_fabric::Device;
use hlsb_ir::Design;

/// One searched configuration: everything that distinguishes two flow
/// variants of the same design and device *except* the clock target.
#[derive(Debug, Clone, PartialEq)]
pub struct ExploreConfig {
    /// The paper's optimization toggles (§4.1–§4.3).
    pub options: OptimizationOptions,
    /// Forced pipeline registers at named stage boundaries.
    pub inject: RegisterInjection,
    /// Placement seeds tried per implementation (best timing wins).
    pub place_seeds: u32,
    /// Placement effort.
    pub effort: PlaceEffort,
    /// Island partitioning of the implement stage.
    pub partitions: Partitioning,
}

impl ExploreConfig {
    /// A configuration with the given toggles, no injection, one
    /// placement seed, fast effort, no partitioning.
    pub fn new(options: OptimizationOptions) -> Self {
        ExploreConfig {
            options,
            inject: RegisterInjection::Off,
            place_seeds: 1,
            effort: PlaceEffort::Fast,
            partitions: Partitioning::Off,
        }
    }

    /// Everything off — the unoptimized reference.
    pub fn baseline() -> Self {
        ExploreConfig::new(OptimizationOptions::default())
    }

    /// All paper optimizations on, no injection.
    pub fn optimized() -> Self {
        ExploreConfig::new(OptimizationOptions::all())
    }

    /// All paper optimizations plus forced registers at `boundaries`.
    pub fn injected(boundaries: Vec<u32>) -> Self {
        ExploreConfig {
            inject: RegisterInjection::at(boundaries),
            ..ExploreConfig::optimized()
        }
    }

    /// The default sweep: baseline, fully optimized, and fully optimized
    /// with a forced register after stage 1 — the smallest set that
    /// separates the paper's optimizations from the extra-latency trade.
    pub fn default_set() -> Vec<ExploreConfig> {
        vec![
            ExploreConfig::baseline(),
            ExploreConfig::optimized(),
            ExploreConfig::injected(vec![1]),
        ]
    }

    /// This configuration with injection forced off — the twin the
    /// explorer compares probes against when deciding whether injection
    /// changed the hardware at all.
    pub fn twin(&self) -> ExploreConfig {
        ExploreConfig {
            inject: RegisterInjection::Off,
            ..self.clone()
        }
    }

    /// The flow this configuration denotes at one trial clock. `seed` is
    /// the shared base seed of the exploration.
    pub fn flow(&self, design: &Design, device: &Device, seed: u64, clock_mhz: f64) -> Flow {
        Flow::new(design.clone())
            .device(device.clone())
            .clock_mhz(clock_mhz)
            .options(self.options)
            .inject(self.inject.clone())
            .seed(seed)
            .place_effort(self.effort)
            .place_seeds(self.place_seeds)
            .partitions(self.partitions)
    }

    /// Compact clock-free label, e.g. `BSKM+r1 ×1 fast`: one letter per
    /// enabled optimization (Broadcast-aware, Sync-pruning, sKid,
    /// Min-area skid), a `+rB.B` injection suffix when enabled, then
    /// placement-seed count, effort and partitioning.
    pub fn label(&self) -> String {
        format!(
            "{}{}{}{}{} ×{} {}{}",
            if self.options.broadcast_aware {
                'B'
            } else {
                '-'
            },
            if self.options.sync_pruning { 'S' } else { '-' },
            if self.options.skid_buffer { 'K' } else { '-' },
            if self.options.min_area_skid { 'M' } else { '-' },
            if self.inject.is_enabled() {
                format!("+{}", self.inject.label())
            } else {
                String::new()
            },
            self.place_seeds,
            match self.effort {
                PlaceEffort::Fast => "fast",
                PlaceEffort::Normal => "normal",
            },
            match self.partitions {
                Partitioning::Off => String::new(),
                Partitioning::Auto => " pauto".to_string(),
                Partitioning::Fixed(k) => format!(" p{k}"),
            }
        )
    }

    /// Parses a configuration spec as accepted by the `explore` CLI:
    /// a preset (`none`/`base`, `all`/`opt`) or a 4-character toggle mask
    /// (`BSKM` with `-` for an off toggle, e.g. `B--M`), optionally
    /// followed by `+rB.B` naming injection boundaries (`all+r1.2`).
    /// Returns `None` for anything else.
    pub fn parse(spec: &str) -> Option<ExploreConfig> {
        let (mask, inject) = match spec.split_once("+r") {
            Some((mask, b)) => {
                let boundaries: Vec<u32> = b
                    .split('.')
                    .map(|tok| tok.parse().ok())
                    .collect::<Option<_>>()?;
                if boundaries.is_empty() {
                    return None;
                }
                (mask, RegisterInjection::at(boundaries))
            }
            None => (spec, RegisterInjection::Off),
        };
        let options = match mask {
            "none" | "base" => OptimizationOptions::default(),
            "all" | "opt" => OptimizationOptions::all(),
            m if m.len() == 4 => {
                let toggle = |ch: char, on: char| match ch {
                    c if c == on => Some(true),
                    '-' => Some(false),
                    _ => None,
                };
                let mut it = m.chars();
                OptimizationOptions {
                    broadcast_aware: toggle(it.next()?, 'B')?,
                    sync_pruning: toggle(it.next()?, 'S')?,
                    skid_buffer: toggle(it.next()?, 'K')?,
                    min_area_skid: toggle(it.next()?, 'M')?,
                }
            }
            _ => return None,
        };
        Some(ExploreConfig {
            inject,
            ..ExploreConfig::new(options)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_are_compact_and_unique() {
        let set = ExploreConfig::default_set();
        assert_eq!(set[0].label(), "---- ×1 fast");
        assert_eq!(set[1].label(), "BSKM ×1 fast");
        assert_eq!(set[2].label(), "BSKM+r1 ×1 fast");
        let labels: std::collections::HashSet<String> =
            set.iter().map(ExploreConfig::label).collect();
        assert_eq!(labels.len(), set.len());
    }

    #[test]
    fn parse_accepts_presets_masks_and_injection() {
        assert_eq!(
            ExploreConfig::parse("none"),
            Some(ExploreConfig::baseline())
        );
        assert_eq!(
            ExploreConfig::parse("all"),
            Some(ExploreConfig::optimized())
        );
        assert_eq!(
            ExploreConfig::parse("all+r1.2"),
            Some(ExploreConfig::injected(vec![1, 2]))
        );
        let mixed = ExploreConfig::parse("B--M").expect("mask parses");
        assert!(mixed.options.broadcast_aware && mixed.options.min_area_skid);
        assert!(!mixed.options.sync_pruning && !mixed.options.skid_buffer);
        assert_eq!(ExploreConfig::parse("B-"), None);
        assert_eq!(ExploreConfig::parse("XSKM"), None);
        assert_eq!(ExploreConfig::parse("all+r"), None);
        assert_eq!(ExploreConfig::parse("all+rx"), None);
    }

    #[test]
    fn twin_drops_injection_and_keys_differ_per_clock() {
        let cfg = ExploreConfig::injected(vec![1]);
        assert_eq!(cfg.twin(), ExploreConfig::optimized());
        let design = Design::new("d");
        let device = Device::ultrascale_plus_vu9p();
        let a = cfg.flow(&design, &device, 7, 300.0).config_key();
        let b = cfg.flow(&design, &device, 7, 310.0).config_key();
        let c = cfg.twin().flow(&design, &device, 7, 300.0).config_key();
        assert_ne!(a, b, "the clock is part of the trial key");
        assert_ne!(a, c, "injection is part of the trial key");
    }
}
