//! HLS directives (pragmas) attached to loops and arrays.

use std::fmt;

/// `#pragma HLS pipeline II=<ii>` — the loop is fully pipelined with the
/// given initiation-interval target.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PipelinePragma {
    /// Target initiation interval in cycles (usually 1).
    pub ii: u32,
}

impl PipelinePragma {
    /// A pipeline pragma with II = 1 (the common fully-pipelined case).
    pub fn ii1() -> Self {
        PipelinePragma { ii: 1 }
    }
}

impl Default for PipelinePragma {
    fn default() -> Self {
        PipelinePragma::ii1()
    }
}

impl fmt::Display for PipelinePragma {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "pipeline II={}", self.ii)
    }
}

/// `#pragma HLS array_partition` — how an on-chip array is split into banks.
///
/// Partitioning multiplies the number of physical memories the data source
/// fans out to (the paper's Figure 3/4 data broadcast).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Partition {
    /// Single logical memory (still possibly many BRAM units if large).
    #[default]
    None,
    /// Cyclic partitioning into `factor` banks.
    Cyclic {
        /// Number of banks.
        factor: u32,
    },
    /// Block partitioning into `factor` banks.
    Block {
        /// Number of banks.
        factor: u32,
    },
    /// Complete partitioning into registers (one per element).
    Complete,
}

impl Partition {
    /// Number of independently addressed banks for an array of `len`
    /// elements.
    pub fn banks(self, len: usize) -> usize {
        match self {
            Partition::None => 1,
            Partition::Cyclic { factor } | Partition::Block { factor } => {
                (factor as usize).max(1).min(len.max(1))
            }
            Partition::Complete => len.max(1),
        }
    }
}

impl fmt::Display for Partition {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Partition::None => write!(f, "none"),
            Partition::Cyclic { factor } => write!(f, "cyclic factor={factor}"),
            Partition::Block { factor } => write!(f, "block factor={factor}"),
            Partition::Complete => write!(f, "complete"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bank_counts() {
        assert_eq!(Partition::None.banks(1024), 1);
        assert_eq!(Partition::Cyclic { factor: 8 }.banks(1024), 8);
        assert_eq!(Partition::Block { factor: 16 }.banks(4), 4); // clamped
        assert_eq!(Partition::Complete.banks(64), 64);
    }

    #[test]
    fn pipeline_default_ii_is_one() {
        assert_eq!(PipelinePragma::default().ii, 1);
        assert_eq!(PipelinePragma::ii1().to_string(), "pipeline II=1");
    }
}
