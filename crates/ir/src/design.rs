//! Top-level design structure: kernels, loops, arrays and FIFO channels.

use crate::dfg::Dfg;
use crate::pragma::{Partition, PipelinePragma};
use crate::types::DataType;
use std::fmt;

macro_rules! id_type {
    ($(#[$doc:meta])* $name:ident) => {
        $(#[$doc])*
        #[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
        pub struct $name(pub u32);

        impl $name {
            /// The raw index.
            pub fn index(self) -> usize {
                self.0 as usize
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!(stringify!($name), "({})"), self.0)
            }
        }
    };
}

id_type!(
    /// Identifier of an [`Array`] within a [`Design`].
    ArrayId
);
id_type!(
    /// Identifier of a [`Fifo`] within a [`Design`].
    FifoId
);
id_type!(
    /// Identifier of a [`Kernel`] within a [`Design`].
    KernelId
);
id_type!(
    /// Identifier of a [`Loop`] within a [`Kernel`].
    LoopId
);

/// An on-chip buffer, mapped to one or more BRAM units.
#[derive(Debug, Clone, PartialEq)]
pub struct Array {
    /// Name for reports.
    pub name: String,
    /// Element type.
    pub elem: DataType,
    /// Number of elements.
    pub len: usize,
    /// Partitioning directive.
    pub partition: Partition,
}

impl Array {
    /// Total capacity in bits.
    pub fn total_bits(&self) -> u64 {
        self.len as u64 * u64::from(self.elem.bits())
    }

    /// Number of 36 Kb BRAM units required (UltraScale-style block RAM).
    ///
    /// A wide array spreads over many physically scattered units — the root
    /// cause of the paper's large-buffer data broadcast (§3.1, example #2).
    pub fn bram_units(&self) -> usize {
        const BRAM_BITS: u64 = 36 * 1024;
        if matches!(self.partition, Partition::Complete) {
            return 0; // complete partitioning uses registers, not BRAM
        }
        let banks = self.partition.banks(self.len) as u64;
        let bits_per_bank = self.total_bits().div_ceil(banks);
        // Each bank rounds up to whole BRAM units; a bank narrower than one
        // unit still consumes one.
        (banks * bits_per_bank.div_ceil(BRAM_BITS).max(1)) as usize
    }
}

/// A streaming FIFO channel connecting kernels (or loops).
#[derive(Debug, Clone, PartialEq)]
pub struct Fifo {
    /// Name for reports.
    pub name: String,
    /// Element type.
    pub elem: DataType,
    /// Depth in elements.
    pub depth: usize,
}

/// One loop nest level with its pragmas and body.
#[derive(Debug, Clone, PartialEq)]
pub struct Loop {
    /// Name for reports.
    pub name: String,
    /// Trip count (static; the paper's pruning handles static latencies).
    pub trip_count: u64,
    /// Unroll factor (1 = no unrolling). Applied by [`crate::unroll`].
    pub unroll: u32,
    /// Pipeline directive, if the loop is pipelined.
    pub pipeline: Option<PipelinePragma>,
    /// The loop body.
    pub body: Dfg,
}

impl Loop {
    /// Whether the loop is pipelined.
    pub fn is_pipelined(&self) -> bool {
        self.pipeline.is_some()
    }
}

/// A kernel: a function containing a sequence of loops executed in order.
///
/// Loops in one kernel run sequentially under an FSM; kernels inside a
/// dataflow region run concurrently, synchronized by the HLS-generated
/// done/start logic the paper analyses in §3.2.
#[derive(Debug, Clone, PartialEq)]
pub struct Kernel {
    /// Name for reports.
    pub name: String,
    /// Loops executed in order.
    pub loops: Vec<Loop>,
    /// Statically known latency in cycles, if the kernel is a leaf PE with
    /// fixed latency (used by synchronization pruning, §4.2). `None` means
    /// dynamic latency.
    pub static_latency: Option<u64>,
}

impl Kernel {
    /// Total number of instructions across all loop bodies.
    pub fn inst_count(&self) -> usize {
        self.loops.iter().map(|l| l.body.len()).sum()
    }
}

/// How the kernels of a design execute relative to each other.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Concurrency {
    /// Kernels run one after another under a single FSM.
    #[default]
    Sequential,
    /// `#pragma HLS dataflow`: kernels run concurrently, connected by FIFOs,
    /// with HLS-inferred synchronization (the paper's Figure 5a pattern).
    Dataflow,
}

/// A complete HLS design: kernels plus shared arrays and FIFO channels.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Design {
    /// Name for reports.
    pub name: String,
    /// On-chip arrays.
    pub arrays: Vec<Array>,
    /// FIFO channels.
    pub fifos: Vec<Fifo>,
    /// Kernels.
    pub kernels: Vec<Kernel>,
    /// Execution model of the top level.
    pub concurrency: Concurrency,
}

impl Design {
    /// Creates an empty design with the given name.
    pub fn new(name: impl Into<String>) -> Self {
        Design {
            name: name.into(),
            ..Design::default()
        }
    }

    /// Access an array by id.
    ///
    /// # Panics
    ///
    /// Panics if the id is out of bounds.
    pub fn array(&self, id: ArrayId) -> &Array {
        &self.arrays[id.index()]
    }

    /// Access a FIFO by id.
    ///
    /// # Panics
    ///
    /// Panics if the id is out of bounds.
    pub fn fifo(&self, id: FifoId) -> &Fifo {
        &self.fifos[id.index()]
    }

    /// Access a kernel by id.
    ///
    /// # Panics
    ///
    /// Panics if the id is out of bounds.
    pub fn kernel(&self, id: KernelId) -> &Kernel {
        &self.kernels[id.index()]
    }

    /// Total instruction count across all kernels.
    pub fn inst_count(&self) -> usize {
        self.kernels.iter().map(Kernel::inst_count).sum()
    }
}

impl fmt::Display for Loop {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "loop {} (trip {}", self.name, self.trip_count)?;
        if self.unroll > 1 {
            write!(f, ", unroll {}", self.unroll)?;
        }
        if let Some(p) = self.pipeline {
            write!(f, ", {p}")?;
        }
        writeln!(f, "):")?;
        write!(f, "{}", self.body)
    }
}

impl fmt::Display for Kernel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "kernel {}", self.name)?;
        if let Some(l) = self.static_latency {
            write!(f, " (latency {l})")?;
        }
        writeln!(f)?;
        for lp in &self.loops {
            write!(f, "{lp}")?;
        }
        Ok(())
    }
}

impl fmt::Display for Design {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "design {} ({:?})", self.name, self.concurrency)?;
        for (i, a) in self.arrays.iter().enumerate() {
            writeln!(
                f,
                "  array[{i}] {}: {} x {} ({} BRAM units, {})",
                a.name,
                a.len,
                a.elem,
                a.bram_units(),
                a.partition
            )?;
        }
        for (i, fi) in self.fifos.iter().enumerate() {
            writeln!(f, "  fifo[{i}] {}: {} depth {}", fi.name, fi.elem, fi.depth)?;
        }
        for k in &self.kernels {
            write!(f, "{k}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn array_bram_units_scale_with_size() {
        let small = Array {
            name: "s".into(),
            elem: DataType::Int(32),
            len: 1024,
            partition: Partition::None,
        };
        // 32 Kbit fits in one 36 Kb unit.
        assert_eq!(small.bram_units(), 1);

        let big = Array {
            name: "b".into(),
            elem: DataType::Int(32),
            len: 737_280, // the paper's Figure 3 example
            partition: Partition::None,
        };
        // 23.6 Mbit / 36 Kb = 640 units.
        assert_eq!(big.bram_units(), 640);
    }

    #[test]
    fn partitioned_array_rounds_per_bank() {
        let a = Array {
            name: "p".into(),
            elem: DataType::Int(64),
            len: 64,
            partition: Partition::Cyclic { factor: 8 },
        };
        // Tiny banks still cost one unit each.
        assert_eq!(a.bram_units(), 8);
    }

    #[test]
    fn complete_partition_uses_no_bram() {
        let a = Array {
            name: "c".into(),
            elem: DataType::Int(32),
            len: 64,
            partition: Partition::Complete,
        };
        assert_eq!(a.bram_units(), 0);
    }

    #[test]
    fn display_renders_hierarchy() {
        let mut d = Design::new("demo");
        d.arrays.push(Array {
            name: "buf".into(),
            elem: DataType::Int(32),
            len: 2048,
            partition: Partition::Cyclic { factor: 4 },
        });
        d.fifos.push(Fifo {
            name: "s".into(),
            elem: DataType::Bits(64),
            depth: 8,
        });
        let mut body = crate::dfg::Dfg::new();
        let a = body.push(crate::op::OpKind::IndVar, DataType::Int(32), vec![]);
        body.push(crate::op::OpKind::Output, DataType::Int(32), vec![a]);
        d.kernels.push(Kernel {
            name: "k".into(),
            loops: vec![Loop {
                name: "l".into(),
                trip_count: 16,
                unroll: 4,
                pipeline: Some(PipelinePragma::ii1()),
                body,
            }],
            static_latency: Some(3),
        });
        let text = d.to_string();
        assert!(text.contains("design demo"), "{text}");
        assert!(text.contains("array[0] buf: 2048 x i32"), "{text}");
        assert!(text.contains("cyclic factor=4"), "{text}");
        assert!(text.contains("kernel k (latency 3)"), "{text}");
        assert!(
            text.contains("loop l (trip 16, unroll 4, pipeline II=1)"),
            "{text}"
        );
        assert!(text.contains("%0 = indvar"), "{text}");
    }

    #[test]
    fn design_accessors() {
        let mut d = Design::new("t");
        d.arrays.push(Array {
            name: "a".into(),
            elem: DataType::Int(8),
            len: 4,
            partition: Partition::None,
        });
        d.fifos.push(Fifo {
            name: "f".into(),
            elem: DataType::Bits(64),
            depth: 2,
        });
        d.kernels.push(Kernel {
            name: "k".into(),
            loops: vec![],
            static_latency: Some(10),
        });
        assert_eq!(d.array(ArrayId(0)).name, "a");
        assert_eq!(d.fifo(FifoId(0)).depth, 2);
        assert_eq!(d.kernel(KernelId(0)).static_latency, Some(10));
        assert_eq!(d.inst_count(), 0);
    }
}
