//! IR validation.

use crate::design::Design;
use crate::dfg::{Dfg, InstId};
use crate::op::OpKind;
use std::error::Error;
use std::fmt;

/// An IR invariant violation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum IrError {
    /// An operand index points past the defining instruction (cycle or
    /// forward reference).
    ForwardReference {
        /// Offending instruction.
        inst: InstId,
        /// Operand that is not yet defined.
        operand: InstId,
    },
    /// An instruction has the wrong number of operands for its op kind.
    ArityMismatch {
        /// Offending instruction.
        inst: InstId,
        /// Expected operand count.
        expected: usize,
        /// Actual operand count.
        actual: usize,
    },
    /// Arithmetic on a non-arithmetic type.
    NonArithType {
        /// Offending instruction.
        inst: InstId,
    },
    /// An array, FIFO or kernel id referenced by an instruction does not
    /// exist in the design.
    DanglingReference {
        /// Offending instruction.
        inst: InstId,
        /// Description of the missing entity.
        what: &'static str,
    },
    /// A loop declares an unroll factor of zero.
    ZeroUnroll {
        /// Kernel name.
        kernel: String,
        /// Loop name.
        looop: String,
    },
}

impl fmt::Display for IrError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IrError::ForwardReference { inst, operand } => {
                write!(f, "instruction {inst} uses undefined operand {operand}")
            }
            IrError::ArityMismatch {
                inst,
                expected,
                actual,
            } => write!(
                f,
                "instruction {inst} expects {expected} operands but has {actual}"
            ),
            IrError::NonArithType { inst } => {
                write!(
                    f,
                    "instruction {inst} performs arithmetic on a non-arithmetic type"
                )
            }
            IrError::DanglingReference { inst, what } => {
                write!(f, "instruction {inst} references a non-existent {what}")
            }
            IrError::ZeroUnroll { kernel, looop } => {
                write!(f, "loop {kernel}::{looop} has unroll factor 0")
            }
        }
    }
}

impl Error for IrError {}

/// Checks one dataflow graph against the design's declarations.
///
/// # Errors
///
/// Returns the first violated invariant found, in instruction order.
pub fn verify_dfg(dfg: &Dfg, design: &Design) -> Result<(), IrError> {
    for (id, inst) in dfg.iter() {
        for &op in &inst.operands {
            if op.index() >= id.index() {
                return Err(IrError::ForwardReference {
                    inst: id,
                    operand: op,
                });
            }
        }
        if let Some(expected) = inst.kind.arity() {
            if inst.operands.len() != expected {
                return Err(IrError::ArityMismatch {
                    inst: id,
                    expected,
                    actual: inst.operands.len(),
                });
            }
        }
        let arith = matches!(
            inst.kind,
            OpKind::Add
                | OpKind::Sub
                | OpKind::Mul
                | OpKind::Div
                | OpKind::Min
                | OpKind::Max
                | OpKind::Abs
                | OpKind::Log2
        );
        if arith && !inst.ty.is_arith() {
            return Err(IrError::NonArithType { inst: id });
        }
        match inst.kind {
            OpKind::Load(a) | OpKind::Store(a) if a.index() >= design.arrays.len() => {
                return Err(IrError::DanglingReference {
                    inst: id,
                    what: "array",
                });
            }
            OpKind::FifoRead(fid) | OpKind::FifoWrite(fid) if fid.index() >= design.fifos.len() => {
                return Err(IrError::DanglingReference {
                    inst: id,
                    what: "fifo",
                });
            }
            OpKind::Call(k) if k.index() >= design.kernels.len() => {
                return Err(IrError::DanglingReference {
                    inst: id,
                    what: "kernel",
                });
            }
            _ => {}
        }
    }
    Ok(())
}

/// Checks a whole design.
///
/// # Errors
///
/// Returns the first violated invariant across all kernels and loops.
pub fn verify_design(design: &Design) -> Result<(), IrError> {
    for kernel in &design.kernels {
        for lp in &kernel.loops {
            if lp.unroll == 0 {
                return Err(IrError::ZeroUnroll {
                    kernel: kernel.name.clone(),
                    looop: lp.name.clone(),
                });
            }
            verify_dfg(&lp.body, design)?;
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::design::{ArrayId, FifoId, KernelId};
    use crate::dfg::Instruction;
    use crate::types::DataType;

    fn empty_design() -> Design {
        Design::new("t")
    }

    #[test]
    fn detects_arity_mismatch() {
        let mut dfg = Dfg::new();
        let a = dfg.push(
            OpKind::Input { invariant: false },
            DataType::Int(32),
            vec![],
        );
        // Add with one operand: bypass builder helpers.
        let mut bad = Instruction::new(OpKind::Add, DataType::Int(32), vec![a]);
        bad.name = "bad".into();
        dfg.push_inst(bad);
        let err = verify_dfg(&dfg, &empty_design()).unwrap_err();
        assert!(matches!(
            err,
            IrError::ArityMismatch {
                expected: 2,
                actual: 1,
                ..
            }
        ));
    }

    #[test]
    fn detects_non_arith_type() {
        let mut dfg = Dfg::new();
        let a = dfg.push(
            OpKind::Input { invariant: false },
            DataType::Bits(64),
            vec![],
        );
        dfg.push(OpKind::Add, DataType::Bits(64), vec![a, a]);
        let err = verify_dfg(&dfg, &empty_design()).unwrap_err();
        assert!(matches!(err, IrError::NonArithType { .. }));
    }

    #[test]
    fn detects_dangling_array() {
        let mut dfg = Dfg::new();
        let i = dfg.push(OpKind::IndVar, DataType::Int(32), vec![]);
        dfg.push(OpKind::Load(ArrayId(7)), DataType::Int(32), vec![i]);
        let err = verify_dfg(&dfg, &empty_design()).unwrap_err();
        assert!(matches!(
            err,
            IrError::DanglingReference { what: "array", .. }
        ));
    }

    #[test]
    fn detects_dangling_fifo_and_kernel() {
        let mut dfg = Dfg::new();
        dfg.push(OpKind::FifoRead(FifoId(0)), DataType::Int(8), vec![]);
        let err = verify_dfg(&dfg, &empty_design()).unwrap_err();
        assert!(matches!(
            err,
            IrError::DanglingReference { what: "fifo", .. }
        ));

        let mut dfg2 = Dfg::new();
        dfg2.push(OpKind::Call(KernelId(3)), DataType::Int(8), vec![]);
        let err2 = verify_dfg(&dfg2, &empty_design()).unwrap_err();
        assert!(matches!(
            err2,
            IrError::DanglingReference { what: "kernel", .. }
        ));
    }

    #[test]
    fn valid_graph_passes() {
        let mut dfg = Dfg::new();
        let a = dfg.push(OpKind::Input { invariant: true }, DataType::Int(32), vec![]);
        let b = dfg.push(
            OpKind::Input { invariant: false },
            DataType::Int(32),
            vec![],
        );
        let s = dfg.push(OpKind::Add, DataType::Int(32), vec![a, b]);
        dfg.push(OpKind::Output, DataType::Int(32), vec![s]);
        assert!(verify_dfg(&dfg, &empty_design()).is_ok());
    }

    #[test]
    fn error_display_is_informative() {
        let e = IrError::ArityMismatch {
            inst: InstId(3),
            expected: 2,
            actual: 5,
        };
        let s = e.to_string();
        assert!(
            s.contains("%3") && s.contains('2') && s.contains('5'),
            "{s}"
        );
    }
}
