//! Scalar data types carried by IR values.

use std::fmt;

/// A scalar HLS data type.
///
/// Widths are in bits. `Bits` is an opaque bit-vector (e.g. a packed struct
/// travelling through a FIFO); arithmetic on it is not allowed by the
/// verifier, but moves, selects and memory/FIFO transfers are.
///
/// # Example
///
/// ```
/// use hlsb_ir::types::DataType;
/// assert_eq!(DataType::Int(32).bits(), 32);
/// assert_eq!(DataType::Float32.bits(), 32);
/// assert!(DataType::Float64.is_float());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum DataType {
    /// Single-bit boolean.
    Bool,
    /// Signed integer of the given bit width.
    Int(u16),
    /// Unsigned integer of the given bit width.
    UInt(u16),
    /// IEEE-754 single precision.
    Float32,
    /// IEEE-754 double precision.
    Float64,
    /// Opaque bit vector of the given width.
    Bits(u16),
}

impl DataType {
    /// Bit width of the type.
    pub fn bits(self) -> u32 {
        match self {
            DataType::Bool => 1,
            DataType::Int(w) | DataType::UInt(w) | DataType::Bits(w) => u32::from(w),
            DataType::Float32 => 32,
            DataType::Float64 => 64,
        }
    }

    /// Whether the type is a floating-point type.
    pub fn is_float(self) -> bool {
        matches!(self, DataType::Float32 | DataType::Float64)
    }

    /// Whether the type is an integer (signed or unsigned) or boolean.
    pub fn is_integral(self) -> bool {
        matches!(self, DataType::Bool | DataType::Int(_) | DataType::UInt(_))
    }

    /// Whether arithmetic is permitted on the type.
    pub fn is_arith(self) -> bool {
        self.is_integral() || self.is_float()
    }
}

impl Default for DataType {
    fn default() -> Self {
        DataType::Int(32)
    }
}

impl fmt::Display for DataType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DataType::Bool => write!(f, "i1"),
            DataType::Int(w) => write!(f, "i{w}"),
            DataType::UInt(w) => write!(f, "u{w}"),
            DataType::Float32 => write!(f, "f32"),
            DataType::Float64 => write!(f, "f64"),
            DataType::Bits(w) => write!(f, "b{w}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bit_widths() {
        assert_eq!(DataType::Bool.bits(), 1);
        assert_eq!(DataType::Int(17).bits(), 17);
        assert_eq!(DataType::UInt(512).bits(), 512);
        assert_eq!(DataType::Float32.bits(), 32);
        assert_eq!(DataType::Float64.bits(), 64);
        assert_eq!(DataType::Bits(128).bits(), 128);
    }

    #[test]
    fn classification() {
        assert!(DataType::Float32.is_float());
        assert!(!DataType::Int(8).is_float());
        assert!(DataType::Bool.is_integral());
        assert!(DataType::Int(32).is_arith());
        assert!(DataType::Float64.is_arith());
        assert!(!DataType::Bits(64).is_arith());
    }

    #[test]
    fn display_forms() {
        assert_eq!(DataType::Int(32).to_string(), "i32");
        assert_eq!(DataType::UInt(8).to_string(), "u8");
        assert_eq!(DataType::Float32.to_string(), "f32");
        assert_eq!(DataType::Bits(512).to_string(), "b512");
        assert_eq!(DataType::Bool.to_string(), "i1");
    }

    #[test]
    fn default_is_int32() {
        assert_eq!(DataType::default(), DataType::Int(32));
    }
}
