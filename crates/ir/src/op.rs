//! Word-level operations.

use crate::design::{ArrayId, FifoId, KernelId};
use std::fmt;

/// Comparison predicate for [`OpKind::Cmp`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CmpPred {
    /// Equal.
    Eq,
    /// Not equal.
    Ne,
    /// Less than.
    Lt,
    /// Less than or equal.
    Le,
    /// Greater than.
    Gt,
    /// Greater than or equal.
    Ge,
}

impl fmt::Display for CmpPred {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            CmpPred::Eq => "eq",
            CmpPred::Ne => "ne",
            CmpPred::Lt => "lt",
            CmpPred::Le => "le",
            CmpPred::Gt => "gt",
            CmpPred::Ge => "ge",
        };
        f.write_str(s)
    }
}

/// The operation performed by an [`Instruction`](crate::dfg::Instruction).
///
/// Operations are word-level: one `Add` adds two full words, regardless of
/// bit width. Float and integer arithmetic share the same variants; the
/// instruction's [`DataType`](crate::types::DataType) disambiguates (this
/// mirrors LLVM's `add` vs `fadd` being chosen by type in the HLS report the
/// paper parses).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OpKind {
    /// A compile-time constant (no operands).
    Const,
    /// A loop input. `invariant` marks values defined outside the loop body
    /// that are re-read every iteration — the data-broadcast sources of the
    /// paper's Figure 1.
    Input {
        /// Whether the value is loop-invariant (shared across unrolled
        /// copies and therefore a broadcast source after unrolling).
        invariant: bool,
    },
    /// The loop induction variable (distinct per unrolled copy).
    IndVar,
    /// A value leaving the loop (e.g. a live-out or a top-level port).
    Output,
    /// Integer or floating-point addition.
    Add,
    /// Integer or floating-point subtraction.
    Sub,
    /// Integer or floating-point multiplication.
    Mul,
    /// Integer or floating-point division.
    Div,
    /// Bitwise AND.
    And,
    /// Bitwise OR.
    Or,
    /// Bitwise XOR.
    Xor,
    /// Bitwise NOT (one operand).
    Not,
    /// Left shift.
    Shl,
    /// Right shift.
    Shr,
    /// Comparison producing a `Bool`.
    Cmp(CmpPred),
    /// 2-way multiplexer: `select(cond, a, b)`.
    Select,
    /// Integer log2 ("a series of if-else" in the paper's Fig. 13).
    Log2,
    /// Absolute value / difference helper.
    Abs,
    /// Minimum of two values.
    Min,
    /// Maximum of two values.
    Max,
    /// Read `array[idx]`; operand 0 is the index.
    Load(ArrayId),
    /// Write `array[idx] = v`; operand 0 is the index, operand 1 the value.
    Store(ArrayId),
    /// Blocking FIFO read (no operands; produces the element).
    FifoRead(FifoId),
    /// Blocking FIFO write (operand 0 is the element; produces nothing used).
    FifoWrite(FifoId),
    /// An explicit register module. Inserting one forces the scheduler to
    /// place its operand and its users in different cycles — the paper's
    /// mechanism for splitting over-long broadcast chains (§4.1).
    Reg,
    /// Invocation of another kernel (a parallel processing element, as in
    /// the paper's Figure 5b). Operand list is the PE inputs.
    Call(KernelId),
    /// Bit-level repack (split/concat); free in hardware, used for HBM
    /// 512-bit to 8x64-bit scatter in the paper's §5.3.
    Repack,
}

impl OpKind {
    /// Whether this operation is a datapath computation (consumes LUT/DSP
    /// resources and has a logic delay), as opposed to structural ops.
    pub fn is_compute(self) -> bool {
        !matches!(
            self,
            OpKind::Const
                | OpKind::Input { .. }
                | OpKind::IndVar
                | OpKind::Output
                | OpKind::Reg
                | OpKind::Repack
        )
    }

    /// Whether this operation accesses an on-chip array.
    pub fn is_memory(self) -> bool {
        matches!(self, OpKind::Load(_) | OpKind::Store(_))
    }

    /// Whether this operation accesses a FIFO channel.
    pub fn is_fifo(self) -> bool {
        matches!(self, OpKind::FifoRead(_) | OpKind::FifoWrite(_))
    }

    /// Whether this operation produces no SSA value used by others
    /// (side-effect only).
    pub fn is_sink(self) -> bool {
        matches!(
            self,
            OpKind::Store(_) | OpKind::FifoWrite(_) | OpKind::Output
        )
    }

    /// Whether this operation defines a value without consuming operands.
    pub fn is_source(self) -> bool {
        matches!(
            self,
            OpKind::Const | OpKind::Input { .. } | OpKind::IndVar | OpKind::FifoRead(_)
        )
    }

    /// Number of operands the operation requires, if fixed.
    pub fn arity(self) -> Option<usize> {
        match self {
            OpKind::Const | OpKind::Input { .. } | OpKind::IndVar | OpKind::FifoRead(_) => Some(0),
            OpKind::Not
            | OpKind::Log2
            | OpKind::Abs
            | OpKind::Reg
            | OpKind::Output
            | OpKind::FifoWrite(_)
            | OpKind::Load(_)
            | OpKind::Repack => Some(1),
            OpKind::Add
            | OpKind::Sub
            | OpKind::Mul
            | OpKind::Div
            | OpKind::And
            | OpKind::Or
            | OpKind::Xor
            | OpKind::Shl
            | OpKind::Shr
            | OpKind::Cmp(_)
            | OpKind::Min
            | OpKind::Max
            | OpKind::Store(_) => Some(2),
            OpKind::Select => Some(3),
            OpKind::Call(_) => None,
        }
    }

    /// A short mnemonic for reports.
    pub fn mnemonic(self) -> &'static str {
        match self {
            OpKind::Const => "const",
            OpKind::Input { invariant: true } => "input.inv",
            OpKind::Input { invariant: false } => "input",
            OpKind::IndVar => "indvar",
            OpKind::Output => "output",
            OpKind::Add => "add",
            OpKind::Sub => "sub",
            OpKind::Mul => "mul",
            OpKind::Div => "div",
            OpKind::And => "and",
            OpKind::Or => "or",
            OpKind::Xor => "xor",
            OpKind::Not => "not",
            OpKind::Shl => "shl",
            OpKind::Shr => "shr",
            OpKind::Cmp(_) => "cmp",
            OpKind::Select => "select",
            OpKind::Log2 => "log2",
            OpKind::Abs => "abs",
            OpKind::Min => "min",
            OpKind::Max => "max",
            OpKind::Load(_) => "load",
            OpKind::Store(_) => "store",
            OpKind::FifoRead(_) => "fifo.read",
            OpKind::FifoWrite(_) => "fifo.write",
            OpKind::Reg => "reg",
            OpKind::Call(_) => "call",
            OpKind::Repack => "repack",
        }
    }
}

impl fmt::Display for OpKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OpKind::Cmp(p) => write!(f, "cmp.{p}"),
            other => f.write_str(other.mnemonic()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::design::ArrayId;

    #[test]
    fn arity_of_common_ops() {
        assert_eq!(OpKind::Add.arity(), Some(2));
        assert_eq!(OpKind::Select.arity(), Some(3));
        assert_eq!(OpKind::Not.arity(), Some(1));
        assert_eq!(OpKind::Const.arity(), Some(0));
        assert_eq!(OpKind::Call(crate::design::KernelId(0)).arity(), None);
    }

    #[test]
    fn classification() {
        assert!(OpKind::Add.is_compute());
        assert!(!OpKind::Reg.is_compute());
        assert!(OpKind::Load(ArrayId(0)).is_memory());
        assert!(OpKind::Store(ArrayId(0)).is_sink());
        assert!(OpKind::Input { invariant: true }.is_source());
        assert!(!OpKind::Output.is_source());
        assert!(OpKind::FifoRead(crate::design::FifoId(3)).is_fifo());
    }

    #[test]
    fn display_includes_predicate() {
        assert_eq!(OpKind::Cmp(CmpPred::Le).to_string(), "cmp.le");
        assert_eq!(OpKind::Add.to_string(), "add");
        assert_eq!(OpKind::Input { invariant: true }.to_string(), "input.inv");
    }
}
