//! Fluent construction API — the stand-in for the C++/OpenCL front-end.
//!
//! The builder enforces the same structure as HLS source code: a design owns
//! kernels, arrays and FIFOs; kernels own loops; loops own instructions.
//!
//! # Example
//!
//! The paper's Figure 1 (loop-unrolling data broadcast):
//!
//! ```
//! use hlsb_ir::builder::DesignBuilder;
//! use hlsb_ir::types::DataType;
//!
//! # fn main() -> Result<(), hlsb_ir::IrError> {
//! let mut b = DesignBuilder::new("fig1");
//! let mut k = b.kernel("top");
//! let mut l = k.pipelined_loop("compute", 1024, 1);
//! l.set_unroll(1024);
//! let source = l.invariant_input("source", DataType::Int(32));
//! let foo = l.varying_input("foo", DataType::Int(32));
//! let bar = l.varying_input("bar", DataType::Int(32));
//! let t = l.add(source, foo);      // `source + foo`
//! let r = l.sub(t, bar);           // `... - bar`
//! l.output("result", r);
//! l.finish();
//! k.finish();
//! let design = b.finish()?;
//! assert_eq!(design.kernels[0].loops[0].unroll, 1024);
//! # Ok(())
//! # }
//! ```

use crate::design::{Array, ArrayId, Concurrency, Design, Fifo, FifoId, Kernel, KernelId, Loop};
use crate::dfg::{Dfg, InstId};
use crate::op::{CmpPred, OpKind};
use crate::pragma::{Partition, PipelinePragma};
use crate::types::DataType;
use crate::verify::{verify_design, IrError};

/// Builds a [`Design`]. Entry point of the front-end API.
#[derive(Debug)]
pub struct DesignBuilder {
    design: Design,
}

impl DesignBuilder {
    /// Starts a new design.
    pub fn new(name: impl Into<String>) -> Self {
        DesignBuilder {
            design: Design::new(name),
        }
    }

    /// Declares an on-chip array and returns its id.
    pub fn array(
        &mut self,
        name: impl Into<String>,
        elem: DataType,
        len: usize,
        partition: Partition,
    ) -> ArrayId {
        let id = ArrayId(self.design.arrays.len() as u32);
        self.design.arrays.push(Array {
            name: name.into(),
            elem,
            len,
            partition,
        });
        id
    }

    /// Declares a FIFO channel and returns its id.
    pub fn fifo(&mut self, name: impl Into<String>, elem: DataType, depth: usize) -> FifoId {
        let id = FifoId(self.design.fifos.len() as u32);
        self.design.fifos.push(Fifo {
            name: name.into(),
            elem,
            depth,
        });
        id
    }

    /// Opens a kernel builder. Call [`KernelBuilder::finish`] to commit it.
    pub fn kernel(&mut self, name: impl Into<String>) -> KernelBuilder<'_> {
        KernelBuilder {
            parent: self,
            kernel: Kernel {
                name: name.into(),
                loops: Vec::new(),
                static_latency: None,
            },
        }
    }

    /// Marks the design as a `#pragma HLS dataflow` region: kernels execute
    /// concurrently, connected by FIFOs.
    pub fn dataflow(&mut self) -> &mut Self {
        self.design.concurrency = Concurrency::Dataflow;
        self
    }

    /// Id the next call to [`DesignBuilder::kernel`]'s `finish` will receive.
    pub fn next_kernel_id(&self) -> KernelId {
        KernelId(self.design.kernels.len() as u32)
    }

    /// Verifies and returns the finished design.
    ///
    /// # Errors
    ///
    /// Returns an [`IrError`] if the design violates IR invariants (see
    /// [`crate::verify`]).
    pub fn finish(self) -> Result<Design, IrError> {
        verify_design(&self.design)?;
        Ok(self.design)
    }

    /// Returns the design without verification (for deliberately invalid
    /// test inputs).
    pub fn finish_unverified(self) -> Design {
        self.design
    }
}

/// Builds one [`Kernel`] inside a design.
#[derive(Debug)]
pub struct KernelBuilder<'a> {
    parent: &'a mut DesignBuilder,
    kernel: Kernel,
}

impl<'a> KernelBuilder<'a> {
    /// Declares the kernel's statically known latency (for leaf PEs used via
    /// [`LoopBuilder::call`]; enables the paper's §4.2 sync pruning).
    pub fn set_static_latency(&mut self, cycles: u64) -> &mut Self {
        self.kernel.static_latency = Some(cycles);
        self
    }

    /// Opens a pipelined loop with the given trip count and II target.
    pub fn pipelined_loop(
        &mut self,
        name: impl Into<String>,
        trip_count: u64,
        ii: u32,
    ) -> LoopBuilder<'_, 'a> {
        LoopBuilder {
            parent: self,
            lp: Loop {
                name: name.into(),
                trip_count,
                unroll: 1,
                pipeline: Some(PipelinePragma { ii }),
                body: Dfg::new(),
            },
        }
    }

    /// Opens an unpipelined loop.
    pub fn sequential_loop(
        &mut self,
        name: impl Into<String>,
        trip_count: u64,
    ) -> LoopBuilder<'_, 'a> {
        LoopBuilder {
            parent: self,
            lp: Loop {
                name: name.into(),
                trip_count,
                unroll: 1,
                pipeline: None,
                body: Dfg::new(),
            },
        }
    }

    /// Commits the kernel to the design and returns its id.
    pub fn finish(self) -> KernelId {
        let id = KernelId(self.parent.design.kernels.len() as u32);
        self.parent.design.kernels.push(self.kernel);
        id
    }
}

/// Builds one [`Loop`] body. All instruction-creation helpers return the
/// new value's [`InstId`].
#[derive(Debug)]
pub struct LoopBuilder<'k, 'a> {
    parent: &'k mut KernelBuilder<'a>,
    lp: Loop,
}

impl<'k, 'a> LoopBuilder<'k, 'a> {
    /// Sets the unroll factor (`#pragma HLS unroll factor=<n>`).
    pub fn set_unroll(&mut self, factor: u32) -> &mut Self {
        self.lp.unroll = factor.max(1);
        self
    }

    /// Direct access to the body under construction.
    pub fn body(&mut self) -> &mut Dfg {
        &mut self.lp.body
    }

    /// A loop-invariant input (broadcast source after unrolling).
    pub fn invariant_input(&mut self, name: &str, ty: DataType) -> InstId {
        self.lp
            .body
            .push_named(OpKind::Input { invariant: true }, ty, vec![], name)
    }

    /// A per-iteration (varying) input.
    pub fn varying_input(&mut self, name: &str, ty: DataType) -> InstId {
        self.lp
            .body
            .push_named(OpKind::Input { invariant: false }, ty, vec![], name)
    }

    /// The loop induction variable.
    pub fn indvar(&mut self, name: &str) -> InstId {
        self.lp
            .body
            .push_named(OpKind::IndVar, DataType::Int(32), vec![], name)
    }

    /// A constant.
    pub fn constant(&mut self, name: &str, ty: DataType) -> InstId {
        self.lp.body.push_named(OpKind::Const, ty, vec![], name)
    }

    /// Binary op helper: result type = type of `a`.
    fn bin(&mut self, kind: OpKind, a: InstId, b: InstId) -> InstId {
        let ty = self.lp.body.inst(a).ty;
        self.lp.body.push(kind, ty, vec![a, b])
    }

    /// `a + b`.
    pub fn add(&mut self, a: InstId, b: InstId) -> InstId {
        self.bin(OpKind::Add, a, b)
    }

    /// `a - b`.
    pub fn sub(&mut self, a: InstId, b: InstId) -> InstId {
        self.bin(OpKind::Sub, a, b)
    }

    /// `a * b`.
    pub fn mul(&mut self, a: InstId, b: InstId) -> InstId {
        self.bin(OpKind::Mul, a, b)
    }

    /// `a / b`.
    pub fn div(&mut self, a: InstId, b: InstId) -> InstId {
        self.bin(OpKind::Div, a, b)
    }

    /// Bitwise `a & b`.
    pub fn and(&mut self, a: InstId, b: InstId) -> InstId {
        self.bin(OpKind::And, a, b)
    }

    /// Bitwise `a | b`.
    pub fn or(&mut self, a: InstId, b: InstId) -> InstId {
        self.bin(OpKind::Or, a, b)
    }

    /// Bitwise `a ^ b`.
    pub fn xor(&mut self, a: InstId, b: InstId) -> InstId {
        self.bin(OpKind::Xor, a, b)
    }

    /// `a << b`.
    pub fn shl(&mut self, a: InstId, b: InstId) -> InstId {
        self.bin(OpKind::Shl, a, b)
    }

    /// `a >> b`.
    pub fn shr(&mut self, a: InstId, b: InstId) -> InstId {
        self.bin(OpKind::Shr, a, b)
    }

    /// `min(a, b)`.
    pub fn min(&mut self, a: InstId, b: InstId) -> InstId {
        self.bin(OpKind::Min, a, b)
    }

    /// `max(a, b)`.
    pub fn max(&mut self, a: InstId, b: InstId) -> InstId {
        self.bin(OpKind::Max, a, b)
    }

    /// Comparison `a <pred> b` producing a boolean.
    pub fn cmp(&mut self, pred: CmpPred, a: InstId, b: InstId) -> InstId {
        self.lp
            .body
            .push(OpKind::Cmp(pred), DataType::Bool, vec![a, b])
    }

    /// `cond ? a : b`.
    pub fn select(&mut self, cond: InstId, a: InstId, b: InstId) -> InstId {
        let ty = self.lp.body.inst(a).ty;
        self.lp.body.push(OpKind::Select, ty, vec![cond, a, b])
    }

    /// `log2(a)` (the "series of if-else" of the paper's Fig. 13).
    pub fn log2(&mut self, a: InstId) -> InstId {
        let ty = self.lp.body.inst(a).ty;
        self.lp.body.push(OpKind::Log2, ty, vec![a])
    }

    /// `|a|`.
    pub fn abs(&mut self, a: InstId) -> InstId {
        let ty = self.lp.body.inst(a).ty;
        self.lp.body.push(OpKind::Abs, ty, vec![a])
    }

    /// `array[idx]`.
    pub fn load(&mut self, array: ArrayId, idx: InstId, ty: DataType) -> InstId {
        self.lp.body.push(OpKind::Load(array), ty, vec![idx])
    }

    /// `array[idx] = value`.
    pub fn store(&mut self, array: ArrayId, idx: InstId, value: InstId) -> InstId {
        let ty = self.lp.body.inst(value).ty;
        self.lp
            .body
            .push(OpKind::Store(array), ty, vec![idx, value])
    }

    /// Blocking read from a FIFO.
    pub fn fifo_read(&mut self, fifo: FifoId, ty: DataType) -> InstId {
        self.lp.body.push(OpKind::FifoRead(fifo), ty, vec![])
    }

    /// Blocking write to a FIFO.
    pub fn fifo_write(&mut self, fifo: FifoId, value: InstId) -> InstId {
        let ty = self.lp.body.inst(value).ty;
        self.lp.body.push(OpKind::FifoWrite(fifo), ty, vec![value])
    }

    /// An explicit register module (forces a cycle boundary, §4.1).
    pub fn reg(&mut self, value: InstId) -> InstId {
        let ty = self.lp.body.inst(value).ty;
        self.lp.body.push(OpKind::Reg, ty, vec![value])
    }

    /// Bit repack (split/concat); type of the result is `ty`.
    pub fn repack(&mut self, value: InstId, ty: DataType) -> InstId {
        self.lp.body.push(OpKind::Repack, ty, vec![value])
    }

    /// Invokes another kernel as a parallel PE (Fig. 5b).
    pub fn call(&mut self, callee: KernelId, args: Vec<InstId>, ret: DataType) -> InstId {
        self.lp.body.push(OpKind::Call(callee), ret, args)
    }

    /// Marks a value as a loop output.
    pub fn output(&mut self, name: &str, value: InstId) -> InstId {
        let ty = self.lp.body.inst(value).ty;
        self.lp
            .body
            .push_named(OpKind::Output, ty, vec![value], name)
    }

    /// Commits the loop to the kernel.
    pub fn finish(self) {
        self.parent.kernel.loops.push(self.lp);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_multi_loop_kernel() {
        let mut b = DesignBuilder::new("two_loops");
        let arr = b.array("buf", DataType::Int(32), 4096, Partition::None);
        let inf = b.fifo("in", DataType::Int(32), 2);
        let mut k = b.kernel("top");
        {
            let mut l1 = k.pipelined_loop("fill", 4096, 1);
            let i = l1.indvar("i");
            let v = l1.fifo_read(inf, DataType::Int(32));
            l1.store(arr, i, v);
            l1.finish();
        }
        {
            let mut l2 = k.pipelined_loop("drain", 4096, 1);
            let i = l2.indvar("i");
            let v = l2.load(arr, i, DataType::Int(32));
            l2.output("out", v);
            l2.finish();
        }
        k.finish();
        let d = b.finish().expect("valid design");
        assert_eq!(d.kernels[0].loops.len(), 2);
        assert_eq!(d.kernels[0].loops[0].body.len(), 3);
        assert!(d.kernels[0].loops[0].is_pipelined());
    }

    #[test]
    fn dataflow_flag_sticks() {
        let mut b = DesignBuilder::new("df");
        b.dataflow();
        let d = b.finish().expect("valid");
        assert_eq!(d.concurrency, Concurrency::Dataflow);
    }

    #[test]
    fn call_records_kernel_id() {
        let mut b = DesignBuilder::new("pe");
        let mut pe = b.kernel("pe1");
        {
            let mut l = pe.pipelined_loop("body", 1, 1);
            let x = l.varying_input("x", DataType::Int(32));
            l.output("y", x);
            l.finish();
        }
        pe.set_static_latency(5);
        let pe_id = pe.finish();

        let mut top = b.kernel("top");
        {
            let mut l = top.sequential_loop("main", 1);
            let a = l.varying_input("a", DataType::Int(32));
            let r = l.call(pe_id, vec![a], DataType::Int(32));
            l.output("out", r);
            l.finish();
        }
        top.finish();
        let d = b.finish().expect("valid");
        assert_eq!(d.kernels[0].static_latency, Some(5));
        let body = &d.kernels[1].loops[0].body;
        let call = body
            .iter()
            .find(|(_, i)| matches!(i.kind, OpKind::Call(_)))
            .expect("call present");
        assert!(matches!(call.1.kind, OpKind::Call(k) if k == pe_id));
    }
}
