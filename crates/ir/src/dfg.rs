//! SSA dataflow graphs.

use crate::op::OpKind;
use crate::types::DataType;
use std::collections::HashMap;
use std::fmt;

/// Identifier of an instruction inside one [`Dfg`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct InstId(pub u32);

impl InstId {
    /// The raw index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for InstId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "%{}", self.0)
    }
}

/// One SSA instruction: an operation, its result type and its operands.
#[derive(Debug, Clone, PartialEq)]
pub struct Instruction {
    /// The operation performed.
    pub kind: OpKind,
    /// Result type (for sink ops, the type of the value consumed).
    pub ty: DataType,
    /// Operand values, in positional order.
    pub operands: Vec<InstId>,
    /// Human-readable name for reports (may be empty).
    pub name: String,
}

impl Instruction {
    /// Creates an unnamed instruction.
    pub fn new(kind: OpKind, ty: DataType, operands: Vec<InstId>) -> Self {
        Instruction {
            kind,
            ty,
            operands,
            name: String::new(),
        }
    }
}

/// An SSA dataflow graph: the body of one loop (or straight-line region).
///
/// Instructions are stored in definition order; operands must refer to
/// earlier instructions, so the storage order is always a valid topological
/// order (the [`verify`](crate::verify) module enforces this).
///
/// # Example
///
/// ```
/// use hlsb_ir::dfg::Dfg;
/// use hlsb_ir::op::OpKind;
/// use hlsb_ir::types::DataType;
///
/// let mut dfg = Dfg::new();
/// let a = dfg.push(OpKind::Input { invariant: true }, DataType::Int(32), vec![]);
/// let b = dfg.push(OpKind::Input { invariant: false }, DataType::Int(32), vec![]);
/// let s = dfg.push(OpKind::Add, DataType::Int(32), vec![a, b]);
/// assert_eq!(dfg.users(a), &[s]);
/// assert_eq!(dfg.len(), 3);
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Dfg {
    insts: Vec<Instruction>,
    users: Vec<Vec<InstId>>,
}

impl Dfg {
    /// Creates an empty graph.
    pub fn new() -> Self {
        Dfg::default()
    }

    /// Number of instructions.
    pub fn len(&self) -> usize {
        self.insts.len()
    }

    /// Whether the graph has no instructions.
    pub fn is_empty(&self) -> bool {
        self.insts.is_empty()
    }

    /// Appends an instruction and returns its id.
    ///
    /// # Panics
    ///
    /// Panics if an operand refers to an instruction that does not exist yet
    /// (SSA dominance within a straight-line region).
    pub fn push(&mut self, kind: OpKind, ty: DataType, operands: Vec<InstId>) -> InstId {
        self.push_inst(Instruction::new(kind, ty, operands))
    }

    /// Appends a full [`Instruction`] and returns its id.
    ///
    /// # Panics
    ///
    /// Panics if an operand refers to a not-yet-defined instruction.
    pub fn push_inst(&mut self, inst: Instruction) -> InstId {
        let id = InstId(self.insts.len() as u32);
        for &op in &inst.operands {
            assert!(
                op.index() < self.insts.len(),
                "operand {op} of new instruction is not yet defined"
            );
            self.users[op.index()].push(id);
        }
        self.insts.push(inst);
        self.users.push(Vec::new());
        id
    }

    /// Appends a named instruction and returns its id.
    pub fn push_named(
        &mut self,
        kind: OpKind,
        ty: DataType,
        operands: Vec<InstId>,
        name: impl Into<String>,
    ) -> InstId {
        let mut inst = Instruction::new(kind, ty, operands);
        inst.name = name.into();
        self.push_inst(inst)
    }

    /// The instruction with the given id.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of bounds.
    pub fn inst(&self, id: InstId) -> &Instruction {
        &self.insts[id.index()]
    }

    /// Mutable access to an instruction.
    ///
    /// Note: mutating operands through this does **not** update use lists;
    /// prefer [`Dfg::replace_operand`].
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of bounds.
    pub fn inst_mut(&mut self, id: InstId) -> &mut Instruction {
        &mut self.insts[id.index()]
    }

    /// Instructions that use the value defined by `id`, in insertion order.
    pub fn users(&self, id: InstId) -> &[InstId] {
        &self.users[id.index()]
    }

    /// Number of readers of the value defined by `id`.
    ///
    /// This is the *static* broadcast factor of the paper's §4.1 — the
    /// scheduler refines it to same-cycle readers.
    pub fn fanout(&self, id: InstId) -> usize {
        self.users[id.index()].len()
    }

    /// Iterates over `(id, instruction)` pairs in definition (= topological)
    /// order.
    pub fn iter(&self) -> impl Iterator<Item = (InstId, &Instruction)> {
        self.insts
            .iter()
            .enumerate()
            .map(|(i, inst)| (InstId(i as u32), inst))
    }

    /// All instruction ids in definition order.
    pub fn ids(&self) -> impl Iterator<Item = InstId> + '_ {
        (0..self.insts.len() as u32).map(InstId)
    }

    /// Rewrites every use of `from` as an operand into a use of `to`,
    /// keeping use lists consistent.
    ///
    /// # Panics
    ///
    /// Panics if `to` is defined after any user of `from` (would break
    /// topological storage order).
    pub fn replace_all_uses(&mut self, from: InstId, to: InstId) {
        let user_list = std::mem::take(&mut self.users[from.index()]);
        for &u in &user_list {
            assert!(
                to.index() < u.index(),
                "replacement {to} must dominate user {u}"
            );
            for op in &mut self.insts[u.index()].operands {
                if *op == from {
                    *op = to;
                }
            }
            self.users[to.index()].push(u);
        }
    }

    /// Replaces operand slot `slot` of `user` with `new_def`, updating use
    /// lists.
    ///
    /// # Panics
    ///
    /// Panics if the slot is out of range or `new_def` does not dominate
    /// `user`.
    pub fn replace_operand(&mut self, user: InstId, slot: usize, new_def: InstId) {
        assert!(new_def.index() < user.index(), "operand must dominate user");
        let old = self.insts[user.index()].operands[slot];
        self.insts[user.index()].operands[slot] = new_def;
        let list = &mut self.users[old.index()];
        if let Some(pos) = list.iter().position(|&u| u == user) {
            list.remove(pos);
        }
        self.users[new_def.index()].push(user);
    }

    /// RAW (read-after-write) dependencies of `id`: its operand list.
    pub fn raw_deps(&self, id: InstId) -> &[InstId] {
        &self.insts[id.index()].operands
    }

    /// Combinational depth of each instruction (longest path from a source,
    /// counting only compute ops as depth-1 hops). Useful for levelized
    /// placement seeds and sanity checks.
    pub fn depths(&self) -> Vec<u32> {
        let mut depth = vec![0u32; self.insts.len()];
        for (i, inst) in self.insts.iter().enumerate() {
            let base = inst
                .operands
                .iter()
                .map(|op| depth[op.index()])
                .max()
                .unwrap_or(0);
            depth[i] = base + u32::from(inst.kind.is_compute());
        }
        depth
    }

    /// Rebuilds the graph with a [`OpKind::Reg`] inserted immediately after
    /// `def`, redirecting **all** existing users of `def` to the register —
    /// the paper's "insert register modules to the source code" fix that
    /// forces the scheduler to split an over-long broadcast chain (§4.1).
    ///
    /// Returns the new graph, the id of the register, and the mapping from
    /// old instruction ids to new ones.
    ///
    /// # Panics
    ///
    /// Panics if `def` is out of bounds.
    pub fn insert_reg_after(&self, def: InstId) -> (Dfg, InstId, Vec<InstId>) {
        let (dfg, regs, map) = self.insert_regs_after(&[def]);
        (dfg, regs[0], map)
    }

    /// Batched form of [`Dfg::insert_reg_after`]: inserts one register
    /// after each listed def in a single rebuild. Returns the new graph,
    /// the register ids (parallel to `defs`, deduplicated by first
    /// occurrence), and the old-to-new id mapping.
    ///
    /// # Panics
    ///
    /// Panics if any def is out of bounds.
    pub fn insert_regs_after(&self, defs: &[InstId]) -> (Dfg, Vec<InstId>, Vec<InstId>) {
        let mut want = vec![false; self.insts.len()];
        for &d in defs {
            assert!(d.index() < self.insts.len(), "def out of bounds");
            want[d.index()] = true;
        }
        let mut out = Dfg::new();
        let mut map: Vec<InstId> = Vec::with_capacity(self.insts.len());
        let mut reg_of: Vec<Option<InstId>> = vec![None; self.insts.len()];
        for (id, inst) in self.iter() {
            let mut cl = inst.clone();
            cl.operands = inst
                .operands
                .iter()
                .map(|op| reg_of[op.index()].unwrap_or(map[op.index()]))
                .collect();
            let new_id = out.push_inst(cl);
            map.push(new_id);
            if want[id.index()] {
                let mut reg = Instruction::new(OpKind::Reg, inst.ty, vec![new_id]);
                reg.name = format!("{}_reg", inst.name);
                reg_of[id.index()] = Some(out.push_inst(reg));
            }
        }
        let regs = defs
            .iter()
            .map(|&d| reg_of[d.index()].expect("reg created"))
            .collect();
        (out, regs, map)
    }

    /// Removes instructions whose values are never used and that have no
    /// side effects (dead code elimination), iterating until stable.
    /// Side-effecting instructions (stores, FIFO accesses, outputs, calls)
    /// and loop interface instructions (inputs, induction variables) are
    /// always kept.
    ///
    /// Returns the new graph and the old-to-new id mapping (`None` for
    /// removed instructions).
    pub fn eliminate_dead(&self) -> (Dfg, Vec<Option<InstId>>) {
        let keep_always = |kind: OpKind| {
            matches!(
                kind,
                OpKind::Store(_)
                    | OpKind::FifoWrite(_)
                    | OpKind::FifoRead(_)
                    | OpKind::Output
                    | OpKind::Call(_)
                    | OpKind::Input { .. }
                    | OpKind::IndVar
            )
        };
        let mut live = vec![false; self.insts.len()];
        // Seed with side-effecting roots, then propagate to operands.
        for (i, inst) in self.insts.iter().enumerate().rev() {
            if keep_always(inst.kind) || live[i] {
                live[i] = true;
                for op in &inst.operands {
                    live[op.index()] = true;
                }
            }
        }
        let mut out = Dfg::new();
        let mut map: Vec<Option<InstId>> = Vec::with_capacity(self.insts.len());
        for (i, inst) in self.insts.iter().enumerate() {
            if !live[i] {
                map.push(None);
                continue;
            }
            let mut cl = inst.clone();
            cl.operands = inst
                .operands
                .iter()
                .map(|op| map[op.index()].expect("live operand"))
                .collect();
            map.push(Some(out.push_inst(cl)));
        }
        (out, map)
    }

    /// Instructions grouped by connected component of the undirected
    /// use-def graph. Loop-invariant inputs and constants do **not**
    /// connect components when `split_invariants` is true (a shared scalar
    /// configuration value can be duplicated per flow, per the paper §4.2).
    pub fn connected_components(&self, split_invariants: bool) -> Vec<Vec<InstId>> {
        let n = self.insts.len();
        let mut parent: Vec<u32> = (0..n as u32).collect();
        fn find(parent: &mut [u32], mut x: u32) -> u32 {
            while parent[x as usize] != x {
                parent[x as usize] = parent[parent[x as usize] as usize];
                x = parent[x as usize];
            }
            x
        }
        let duplicable = |inst: &Instruction| {
            split_invariants
                && matches!(inst.kind, OpKind::Const | OpKind::Input { invariant: true })
        };
        for (i, inst) in self.insts.iter().enumerate() {
            if duplicable(inst) {
                continue;
            }
            for op in &inst.operands {
                if duplicable(&self.insts[op.index()]) {
                    continue;
                }
                let (a, b) = (find(&mut parent, i as u32), find(&mut parent, op.0));
                parent[a as usize] = b;
            }
        }
        let mut groups: HashMap<u32, Vec<InstId>> = HashMap::new();
        for i in 0..n as u32 {
            // Duplicable sources attach to each user's component at split
            // time; standalone they form their own (dropped) singleton.
            if duplicable(&self.insts[i as usize]) {
                continue;
            }
            let root = find(&mut parent, i);
            groups.entry(root).or_default().push(InstId(i));
        }
        let mut out: Vec<Vec<InstId>> = groups.into_values().collect();
        for g in &mut out {
            g.sort();
        }
        out.sort_by_key(|g| g[0]);
        out
    }
}

impl fmt::Display for Dfg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (id, inst) in self.iter() {
            write!(f, "{id} = {} {}", inst.kind, inst.ty)?;
            for (i, op) in inst.operands.iter().enumerate() {
                if i == 0 {
                    write!(f, " ")?;
                } else {
                    write!(f, ", ")?;
                }
                write!(f, "{op}")?;
            }
            if !inst.name.is_empty() {
                write!(f, "  ; {}", inst.name)?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::op::CmpPred;

    fn i32t() -> DataType {
        DataType::Int(32)
    }

    #[test]
    fn push_tracks_users() {
        let mut d = Dfg::new();
        let a = d.push(OpKind::Input { invariant: true }, i32t(), vec![]);
        let b = d.push(OpKind::Input { invariant: false }, i32t(), vec![]);
        let s1 = d.push(OpKind::Add, i32t(), vec![a, b]);
        let s2 = d.push(OpKind::Sub, i32t(), vec![a, s1]);
        assert_eq!(d.users(a), &[s1, s2]);
        assert_eq!(d.fanout(a), 2);
        assert_eq!(d.fanout(s2), 0);
    }

    #[test]
    #[should_panic(expected = "not yet defined")]
    fn forward_reference_panics() {
        let mut d = Dfg::new();
        d.push(OpKind::Not, i32t(), vec![InstId(5)]);
    }

    #[test]
    fn replace_all_uses_rewires() {
        let mut d = Dfg::new();
        let a = d.push(OpKind::Input { invariant: false }, i32t(), vec![]);
        let b = d.push(OpKind::Input { invariant: false }, i32t(), vec![]);
        let u = d.push(OpKind::Not, i32t(), vec![a]);
        d.replace_all_uses(a, b);
        assert_eq!(d.inst(u).operands, vec![b]);
        assert!(d.users(a).is_empty());
        assert_eq!(d.users(b), &[u]);
    }

    #[test]
    fn replace_operand_updates_single_slot() {
        let mut d = Dfg::new();
        let a = d.push(OpKind::Input { invariant: false }, i32t(), vec![]);
        let b = d.push(OpKind::Input { invariant: false }, i32t(), vec![]);
        let s = d.push(OpKind::Add, i32t(), vec![a, a]);
        d.replace_operand(s, 1, b);
        assert_eq!(d.inst(s).operands, vec![a, b]);
        assert_eq!(d.users(a), &[s]);
        assert_eq!(d.users(b), &[s]);
    }

    #[test]
    fn depths_count_compute_hops() {
        let mut d = Dfg::new();
        let a = d.push(OpKind::Input { invariant: false }, i32t(), vec![]);
        let x = d.push(OpKind::Add, i32t(), vec![a, a]);
        let y = d.push(OpKind::Mul, i32t(), vec![x, a]);
        let o = d.push(OpKind::Output, i32t(), vec![y]);
        let depth = d.depths();
        assert_eq!(depth[a.index()], 0);
        assert_eq!(depth[x.index()], 1);
        assert_eq!(depth[y.index()], 2);
        assert_eq!(depth[o.index()], 2); // Output is not a compute hop.
    }

    #[test]
    fn connected_components_split_independent_flows() {
        // Two independent flows sharing one invariant input.
        let mut d = Dfg::new();
        let inv = d.push(OpKind::Input { invariant: true }, i32t(), vec![]);
        let a = d.push(OpKind::Input { invariant: false }, i32t(), vec![]);
        let b = d.push(OpKind::Input { invariant: false }, i32t(), vec![]);
        let x = d.push(OpKind::Add, i32t(), vec![a, inv]);
        let y = d.push(OpKind::Add, i32t(), vec![b, inv]);
        let _ox = d.push(OpKind::Output, i32t(), vec![x]);
        let _oy = d.push(OpKind::Output, i32t(), vec![y]);

        let split = d.connected_components(true);
        assert_eq!(split.len(), 2, "invariant must not glue flows");
        let merged = d.connected_components(false);
        assert_eq!(merged.len(), 1, "without duplication the flows connect");
    }

    #[test]
    fn eliminate_dead_removes_unused_chains() {
        let mut d = Dfg::new();
        let a = d.push(OpKind::Input { invariant: false }, i32t(), vec![]);
        let live = d.push(OpKind::Not, i32t(), vec![a]);
        let _o = d.push(OpKind::Output, i32t(), vec![live]);
        // Dead tail: not -> not -> reg, never consumed.
        let d1 = d.push(OpKind::Not, i32t(), vec![a]);
        let d2 = d.push(OpKind::Not, i32t(), vec![d1]);
        let _d3 = d.push(OpKind::Reg, i32t(), vec![d2]);
        let (out, map) = d.eliminate_dead();
        assert_eq!(out.len(), 3);
        assert!(map[d1.index()].is_none());
        assert!(map[live.index()].is_some());
    }

    #[test]
    fn eliminate_dead_keeps_side_effects_and_interfaces() {
        let mut d = Dfg::new();
        let unused_input = d.push(OpKind::Input { invariant: true }, i32t(), vec![]);
        let v = d.push(OpKind::FifoRead(crate::design::FifoId(0)), i32t(), vec![]);
        let i = d.push(OpKind::IndVar, i32t(), vec![]);
        let _st = d.push(OpKind::Store(crate::design::ArrayId(0)), i32t(), vec![i, v]);
        let (out, map) = d.eliminate_dead();
        assert_eq!(out.len(), 4);
        assert!(map[unused_input.index()].is_some());
    }

    #[test]
    fn insert_reg_after_redirects_all_users() {
        let mut d = Dfg::new();
        let src = d.push_named(OpKind::Input { invariant: true }, i32t(), vec![], "src");
        let x = d.push(OpKind::Input { invariant: false }, i32t(), vec![]);
        let a = d.push(OpKind::Add, i32t(), vec![src, x]);
        let b = d.push(OpKind::Sub, i32t(), vec![src, a]);
        let (nd, reg, map) = d.insert_reg_after(src);
        assert_eq!(nd.len(), 5);
        assert_eq!(nd.inst(reg).kind, OpKind::Reg);
        assert_eq!(nd.inst(reg).name, "src_reg");
        // All former users of src now read the register.
        assert_eq!(nd.inst(map[a.index()]).operands[0], reg);
        assert_eq!(nd.inst(map[b.index()]).operands[0], reg);
        // Unrelated operands survive the remap.
        assert_eq!(nd.inst(map[b.index()]).operands[1], map[a.index()]);
        assert_eq!(nd.fanout(map[src.index()]), 1);
        assert_eq!(nd.fanout(reg), 2);
    }

    #[test]
    fn insert_reg_after_last_instruction() {
        let mut d = Dfg::new();
        let a = d.push(OpKind::Input { invariant: false }, i32t(), vec![]);
        let (nd, reg, map) = d.insert_reg_after(a);
        assert_eq!(nd.len(), 2);
        assert_eq!(nd.inst(reg).operands, vec![map[a.index()]]);
    }

    #[test]
    fn display_is_readable() {
        let mut d = Dfg::new();
        let a = d.push_named(OpKind::Input { invariant: true }, i32t(), vec![], "curr_x");
        let b = d.push(OpKind::Input { invariant: false }, i32t(), vec![]);
        let c = d.push(OpKind::Cmp(CmpPred::Lt), DataType::Bool, vec![a, b]);
        let text = d.to_string();
        assert!(text.contains("%0 = input.inv i32"), "{text}");
        assert!(text.contains("; curr_x"), "{text}");
        assert!(text.contains(&format!("{c} = cmp.lt i1 %0, %1")), "{text}");
    }
}
