//! # hlsb-ir — HLS intermediate representation
//!
//! This crate models the untimed intermediate representation an HLS compiler
//! works on, at the level of detail needed to study *implicit broadcasts*
//! (DAC'20, "Analysis and Optimization of the Implicit Broadcasts in FPGA HLS
//! to Improve Maximum Frequency"):
//!
//! * scalar [`DataType`]s and word-level operations ([`OpKind`]),
//! * SSA dataflow graphs ([`Dfg`]) with use-def chains and RAW dependencies,
//! * loops with pragmas (`unroll`, `pipeline II`, `dataflow`),
//! * on-chip arrays (mapped to BRAM banks) and FIFO channels,
//! * a [`builder`] API replacing the C++ front-end, and
//! * the [`unroll`] transform that *creates* the data broadcasts studied by
//!   the paper (loop-invariant values fan out to every unrolled body copy).
//!
//! # Example
//!
//! ```
//! use hlsb_ir::builder::DesignBuilder;
//! use hlsb_ir::types::DataType;
//!
//! # fn main() -> Result<(), hlsb_ir::IrError> {
//! let mut b = DesignBuilder::new("axpy");
//! let mut k = b.kernel("axpy_kernel");
//! let mut l = k.pipelined_loop("main", 1024, 1);
//! let a = l.invariant_input("alpha", DataType::Int(32));
//! let x = l.varying_input("x", DataType::Int(32));
//! let m = l.mul(a, x);
//! l.output("y", m);
//! l.finish();
//! k.finish();
//! let design = b.finish()?;
//! assert_eq!(design.kernels.len(), 1);
//! # Ok(())
//! # }
//! ```

pub mod builder;
pub mod design;
pub mod dfg;
pub mod interp;
pub mod op;
pub mod pragma;
pub mod tree;
pub mod types;
pub mod unroll;
pub mod verify;

pub use builder::DesignBuilder;
pub use design::{
    Array, ArrayId, Concurrency, Design, Fifo, FifoId, Kernel, KernelId, Loop, LoopId,
};
pub use dfg::{Dfg, InstId, Instruction};
pub use op::{CmpPred, OpKind};
pub use pragma::{Partition, PipelinePragma};
pub use types::DataType;
pub use verify::IrError;
