//! A reference interpreter for loop bodies.
//!
//! Executes a [`Loop`] iteration by iteration over 64-bit integer values
//! (floating-point types are interpreted with the same integer semantics —
//! the interpreter exists to check that *transformations preserve
//! behaviour*, not to model IEEE arithmetic). Used by the test suites to
//! prove that unrolling, register insertion, dead-code elimination and
//! dataflow splitting never change a design's observable outputs.
//!
//! # Example
//!
//! ```
//! use hlsb_ir::builder::DesignBuilder;
//! use hlsb_ir::interp::{Interpreter, LoopIo};
//! use hlsb_ir::types::DataType;
//!
//! # fn main() -> Result<(), hlsb_ir::IrError> {
//! let mut b = DesignBuilder::new("double");
//! let fin = b.fifo("in", DataType::Int(32), 2);
//! let fout = b.fifo("out", DataType::Int(32), 2);
//! let mut k = b.kernel("top");
//! let mut l = k.pipelined_loop("main", 4, 1);
//! let x = l.fifo_read(fin, DataType::Int(32));
//! let y = l.add(x, x);
//! l.fifo_write(fout, y);
//! l.finish();
//! k.finish();
//! let d = b.finish()?;
//!
//! let mut io = LoopIo::default();
//! io.fifo_inputs.insert(fin, vec![1, 2, 3, 4]);
//! let interp = Interpreter::new(&d);
//! interp.run_loop(&d.kernels[0].loops[0], 4, &mut io);
//! assert_eq!(io.fifo_outputs[&fout], vec![2, 4, 6, 8]);
//! # Ok(())
//! # }
//! ```

use crate::design::{ArrayId, Design, FifoId, Loop};
use crate::op::{CmpPred, OpKind};
use std::collections::HashMap;

/// Input/output state threaded through an interpretation run.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct LoopIo {
    /// Values popped by `fifo.read`, per FIFO, in order. Exhausted streams
    /// yield 0.
    pub fifo_inputs: HashMap<FifoId, Vec<i64>>,
    /// Read cursors into `fifo_inputs`.
    pub fifo_cursors: HashMap<FifoId, usize>,
    /// Values pushed by `fifo.write`, per FIFO, in order.
    pub fifo_outputs: HashMap<FifoId, Vec<i64>>,
    /// Loop-invariant input values by instruction name (default 0).
    pub invariants: HashMap<String, i64>,
    /// Varying input values by instruction name, per iteration (cycled;
    /// default: the iteration index).
    pub varying: HashMap<String, Vec<i64>>,
    /// Constant values by instruction name (default 1).
    pub constants: HashMap<String, i64>,
    /// `output` values recorded per iteration, by instruction name.
    pub outputs: HashMap<String, Vec<i64>>,
    /// Array contents (created on first access, zero-initialized).
    pub arrays: HashMap<ArrayId, Vec<i64>>,
}

/// The reference interpreter for a design's loops.
#[derive(Debug, Clone)]
pub struct Interpreter<'a> {
    design: &'a Design,
}

impl<'a> Interpreter<'a> {
    /// Creates an interpreter over a design.
    pub fn new(design: &'a Design) -> Self {
        Interpreter { design }
    }

    /// Runs `iters` iterations of a loop, reading and writing `io`.
    ///
    /// # Panics
    ///
    /// Panics if the loop references entities missing from the design
    /// (verify the design first).
    pub fn run_loop(&self, lp: &Loop, iters: u64, io: &mut LoopIo) {
        for it in 0..iters {
            self.run_iteration(lp, it, io);
        }
    }

    /// Runs every loop of a kernel in sequence, `iters` iterations each.
    pub fn run_kernel(&self, kernel_idx: usize, iters: u64, io: &mut LoopIo) {
        for lp in &self.design.kernels[kernel_idx].loops {
            self.run_loop(lp, iters, io);
        }
    }

    /// Runs a single iteration of a loop at the given iteration index.
    ///
    /// [`run_loop`](Interpreter::run_loop) is `run_iteration` over
    /// `0..iters`; cycle-accurate simulators call this directly so the
    /// *timing* of an iteration (issue cycle, stalls) can be modelled
    /// separately from its *values*, while both backends share one
    /// evaluation code path.
    ///
    /// # Panics
    ///
    /// Panics if the loop references entities missing from the design.
    pub fn run_iteration(&self, lp: &Loop, iteration: u64, io: &mut LoopIo) {
        let dfg = &lp.body;
        let mut values: Vec<i64> = Vec::with_capacity(dfg.len());
        for (id, inst) in dfg.iter() {
            let arg = |slot: usize, values: &[i64]| values[inst.operands[slot].index()];
            let v: i64 = match inst.kind {
                OpKind::Const => io.constants.get(&inst.name).copied().unwrap_or(1),
                OpKind::Input { invariant: true } => {
                    io.invariants.get(&inst.name).copied().unwrap_or(0)
                }
                OpKind::Input { invariant: false } => match io.varying.get(&inst.name) {
                    Some(stream) if !stream.is_empty() => {
                        stream[(iteration as usize) % stream.len()]
                    }
                    _ => iteration as i64,
                },
                OpKind::IndVar => iteration as i64,
                OpKind::Add => arg(0, &values).wrapping_add(arg(1, &values)),
                OpKind::Sub => arg(0, &values).wrapping_sub(arg(1, &values)),
                OpKind::Mul => arg(0, &values).wrapping_mul(arg(1, &values)),
                OpKind::Div => {
                    let d = arg(1, &values);
                    if d == 0 {
                        0
                    } else {
                        arg(0, &values).wrapping_div(d)
                    }
                }
                OpKind::And => arg(0, &values) & arg(1, &values),
                OpKind::Or => arg(0, &values) | arg(1, &values),
                OpKind::Xor => arg(0, &values) ^ arg(1, &values),
                OpKind::Not => !arg(0, &values),
                OpKind::Shl => arg(0, &values).wrapping_shl(arg(1, &values) as u32 & 63),
                OpKind::Shr => arg(0, &values).wrapping_shr(arg(1, &values) as u32 & 63),
                OpKind::Cmp(pred) => {
                    let (a, b) = (arg(0, &values), arg(1, &values));
                    i64::from(match pred {
                        CmpPred::Eq => a == b,
                        CmpPred::Ne => a != b,
                        CmpPred::Lt => a < b,
                        CmpPred::Le => a <= b,
                        CmpPred::Gt => a > b,
                        CmpPred::Ge => a >= b,
                    })
                }
                OpKind::Select => {
                    if arg(0, &values) != 0 {
                        arg(1, &values)
                    } else {
                        arg(2, &values)
                    }
                }
                OpKind::Log2 => {
                    let x = arg(0, &values).unsigned_abs().max(1);
                    i64::from(63 - x.leading_zeros() as i64 as i32)
                }
                OpKind::Abs => arg(0, &values).wrapping_abs(),
                OpKind::Min => arg(0, &values).min(arg(1, &values)),
                OpKind::Max => arg(0, &values).max(arg(1, &values)),
                OpKind::Load(aid) => {
                    let len = self.design.array(aid).len.max(1);
                    let arr = io.arrays.entry(aid).or_insert_with(|| vec![0; len]);
                    let idx = arg(0, &values).rem_euclid(len as i64) as usize;
                    arr[idx]
                }
                OpKind::Store(aid) => {
                    let len = self.design.array(aid).len.max(1);
                    let idx = arg(0, &values).rem_euclid(len as i64) as usize;
                    let val = arg(1, &values);
                    let arr = io.arrays.entry(aid).or_insert_with(|| vec![0; len]);
                    arr[idx] = val;
                    val
                }
                OpKind::FifoRead(fid) => {
                    let cursor = io.fifo_cursors.entry(fid).or_insert(0);
                    let v = io
                        .fifo_inputs
                        .get(&fid)
                        .and_then(|s| s.get(*cursor))
                        .copied()
                        .unwrap_or(0);
                    *cursor += 1;
                    v
                }
                OpKind::FifoWrite(fid) => {
                    let v = arg(0, &values);
                    io.fifo_outputs.entry(fid).or_default().push(v);
                    v
                }
                OpKind::Reg | OpKind::Repack => arg(0, &values),
                OpKind::Output => {
                    let v = arg(0, &values);
                    io.outputs.entry(inst.name.clone()).or_default().push(v);
                    v
                }
                OpKind::Call(callee) => {
                    // One activation of the PE: bind operand values to its
                    // varying inputs positionally, run its loops for one
                    // iteration, return the last output.
                    let kernel = self.design.kernel(callee);
                    let mut sub_io = LoopIo {
                        invariants: io.invariants.clone(),
                        constants: io.constants.clone(),
                        ..LoopIo::default()
                    };
                    let mut result = 0i64;
                    for sub in &kernel.loops {
                        // Positional binding of call args to varying inputs.
                        let mut arg_idx = 0usize;
                        for (_, si) in sub.body.iter() {
                            if matches!(si.kind, OpKind::Input { .. } | OpKind::IndVar) {
                                if let Some(&op) = inst.operands.get(arg_idx) {
                                    sub_io
                                        .varying
                                        .insert(si.name.clone(), vec![values[op.index()]]);
                                    if !si.name.is_empty() {
                                        sub_io
                                            .invariants
                                            .insert(si.name.clone(), values[op.index()]);
                                    }
                                }
                                arg_idx += 1;
                            }
                        }
                        self.run_loop(sub, 1, &mut sub_io);
                        if let Some(last) = sub_io.outputs.values().filter_map(|v| v.last()).last()
                        {
                            result = *last;
                        }
                    }
                    result
                }
            };
            values.push(v);
            let _ = id;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::DesignBuilder;
    use crate::types::DataType;
    use crate::unroll::unroll_loop;

    fn io_with(fin: FifoId, data: Vec<i64>) -> LoopIo {
        let mut io = LoopIo::default();
        io.fifo_inputs.insert(fin, data);
        io
    }

    #[test]
    fn arithmetic_and_select() {
        let mut b = DesignBuilder::new("t");
        let fin = b.fifo("in", DataType::Int(32), 2);
        let fout = b.fifo("out", DataType::Int(32), 2);
        let mut k = b.kernel("top");
        let mut l = k.pipelined_loop("main", 4, 1);
        let x = l.fifo_read(fin, DataType::Int(32));
        let thr = l.constant("thr", DataType::Int(32));
        let c = l.cmp(crate::CmpPred::Gt, x, thr);
        let neg = l.sub(thr, x);
        let sel = l.select(c, x, neg);
        l.fifo_write(fout, sel);
        l.finish();
        k.finish();
        let d = b.finish().unwrap();

        let mut io = io_with(fin, vec![5, 0, 2, -3]);
        io.constants.insert("thr".into(), 1);
        Interpreter::new(&d).run_loop(&d.kernels[0].loops[0], 4, &mut io);
        // x > 1 ? x : (1 - x)
        assert_eq!(io.fifo_outputs[&fout], vec![5, 1, 2, 4]);
    }

    #[test]
    fn stores_then_loads_round_trip() {
        let mut b = DesignBuilder::new("mem");
        let arr = b.array("buf", DataType::Int(32), 8, crate::Partition::None);
        let fin = b.fifo("in", DataType::Int(32), 2);
        let fout = b.fifo("out", DataType::Int(32), 2);
        let mut k = b.kernel("top");
        {
            let mut l = k.pipelined_loop("fill", 8, 1);
            let i = l.indvar("i");
            let v = l.fifo_read(fin, DataType::Int(32));
            l.store(arr, i, v);
            l.finish();
        }
        {
            let mut l = k.pipelined_loop("drain", 8, 1);
            let i = l.indvar("i");
            let v = l.load(arr, i, DataType::Int(32));
            l.fifo_write(fout, v);
            l.finish();
        }
        k.finish();
        let d = b.finish().unwrap();

        let data: Vec<i64> = (10..18).collect();
        let mut io = io_with(fin, data.clone());
        Interpreter::new(&d).run_kernel(0, 8, &mut io);
        assert_eq!(io.fifo_outputs[&fout], data);
    }

    #[test]
    fn reg_insertion_preserves_behaviour() {
        let mut b = DesignBuilder::new("t");
        let fin = b.fifo("in", DataType::Int(32), 2);
        let fout = b.fifo("out", DataType::Int(32), 2);
        let mut k = b.kernel("top");
        let mut l = k.pipelined_loop("main", 16, 1);
        let src = l.invariant_input("src", DataType::Int(32));
        let x = l.fifo_read(fin, DataType::Int(32));
        let dsub = l.sub(x, src);
        let m = l.abs(dsub);
        let r = l.min(m, x);
        l.fifo_write(fout, r);
        l.finish();
        k.finish();
        let d = b.finish().unwrap();
        let lp = &d.kernels[0].loops[0];

        let run = |lp: &Loop| {
            let mut io = io_with(fin, (0..16).map(|i| i * 3 - 7).collect());
            io.invariants.insert("src".into(), 11);
            Interpreter::new(&d).run_loop(lp, 16, &mut io);
            io.fifo_outputs[&fout].clone()
        };
        let base = run(lp);
        // Insert a register after the broadcast source, as §4.1 does.
        let (body, _, _) = lp.body.insert_reg_after(crate::InstId(0));
        let fixed = Loop { body, ..lp.clone() };
        assert_eq!(run(&fixed), base);
    }

    #[test]
    fn unrolling_preserves_stream_semantics() {
        // u iterations of the rolled loop == 1 iteration of the u-unrolled
        // loop over the same stream.
        let build = |unroll: u32| {
            let mut b = DesignBuilder::new("t");
            let fin = b.fifo("in", DataType::Int(32), 2);
            let fout = b.fifo("out", DataType::Int(32), 2);
            let mut k = b.kernel("top");
            let mut l = k.pipelined_loop("main", 8, 1);
            l.set_unroll(unroll);
            let c = l.constant("c", DataType::Int(32));
            let x = l.fifo_read(fin, DataType::Int(32));
            let y = l.mul(x, c);
            let z = l.add(y, c);
            l.fifo_write(fout, z);
            l.finish();
            k.finish();
            (b.finish().unwrap(), fin, fout)
        };

        let (rolled, fin_r, fout_r) = build(1);
        let mut io_r = io_with(fin_r, (1..=8).collect());
        io_r.constants.insert("c".into(), 5);
        Interpreter::new(&rolled).run_loop(&rolled.kernels[0].loops[0], 8, &mut io_r);

        let (with_pragma, fin_u, fout_u) = build(8);
        let unrolled = unroll_loop(&with_pragma.kernels[0].loops[0]).looop;
        let mut io_u = io_with(fin_u, (1..=8).collect());
        io_u.constants.insert("c".into(), 5);
        Interpreter::new(&with_pragma).run_loop(&unrolled, 1, &mut io_u);

        assert_eq!(io_r.fifo_outputs[&fout_r], io_u.fifo_outputs[&fout_u]);
    }

    #[test]
    fn dce_preserves_behaviour() {
        let mut b = DesignBuilder::new("t");
        let fin = b.fifo("in", DataType::Int(32), 2);
        let fout = b.fifo("out", DataType::Int(32), 2);
        let mut k = b.kernel("top");
        let mut l = k.pipelined_loop("main", 8, 1);
        let x = l.fifo_read(fin, DataType::Int(32));
        let live = l.add(x, x);
        let dead = l.mul(x, x);
        let _dead2 = l.shl(dead, x);
        l.fifo_write(fout, live);
        l.finish();
        k.finish();
        let d = b.finish().unwrap();
        let lp = &d.kernels[0].loops[0];

        let run = |lp: &Loop| {
            let mut io = io_with(fin, (0..8).collect());
            Interpreter::new(&d).run_loop(lp, 8, &mut io);
            io.fifo_outputs[&fout].clone()
        };
        let base = run(lp);
        let (body, _) = lp.body.eliminate_dead();
        assert!(body.len() < lp.body.len());
        let cleaned = Loop { body, ..lp.clone() };
        assert_eq!(run(&cleaned), base);
    }
}
