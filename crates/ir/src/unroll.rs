//! Loop unrolling — the transform that *creates* data broadcasts.
//!
//! Unrolling by `u` replicates the loop body `u` times. Loop-invariant
//! inputs and constants are **shared** between the copies, so a value read
//! once per iteration in the source becomes a `u`-way fanout in hardware —
//! the paper's Figure 1/2 data broadcast. Everything else (induction
//! variable, varying inputs, computation) is replicated per copy.

use crate::design::Loop;
use crate::dfg::{Dfg, InstId};
use crate::op::OpKind;

/// Result of unrolling: the rewritten loop plus bookkeeping for analyses.
#[derive(Debug, Clone)]
pub struct UnrolledLoop {
    /// The rewritten loop (`unroll == 1`, trip count divided).
    pub looop: Loop,
    /// For every original instruction, its clone in each body copy.
    /// `copies[k][orig.index()]` is the id in copy `k`. Shared instructions
    /// map to the same id in every copy.
    pub copies: Vec<Vec<InstId>>,
}

/// Whether an instruction is shared (not replicated) across unrolled copies.
fn is_shared(kind: OpKind) -> bool {
    matches!(kind, OpKind::Const | OpKind::Input { invariant: true })
}

/// Applies the loop's unroll pragma, returning the unrolled loop.
///
/// If the unroll factor is 1 the loop is returned unchanged (with a trivial
/// one-copy map). The trip count is divided by the factor, rounding up, so
/// partial final iterations are conservatively counted as full.
///
/// # Example
///
/// ```
/// use hlsb_ir::builder::DesignBuilder;
/// use hlsb_ir::types::DataType;
/// use hlsb_ir::unroll::unroll_loop;
///
/// # fn main() -> Result<(), hlsb_ir::IrError> {
/// let mut b = DesignBuilder::new("u");
/// let mut k = b.kernel("top");
/// let mut l = k.pipelined_loop("body", 64, 1);
/// l.set_unroll(64);
/// let src = l.invariant_input("source", DataType::Int(32));
/// let x = l.varying_input("x", DataType::Int(32));
/// let s = l.add(src, x);
/// l.output("o", s);
/// l.finish();
/// k.finish();
/// let d = b.finish()?;
///
/// let u = unroll_loop(&d.kernels[0].loops[0]);
/// // The invariant source is now read by 64 adders.
/// let src_unrolled = u.copies[0][src.index()];
/// assert_eq!(u.looop.body.fanout(src_unrolled), 64);
/// assert_eq!(u.looop.trip_count, 1);
/// # Ok(())
/// # }
/// ```
pub fn unroll_loop(lp: &Loop) -> UnrolledLoop {
    let u = lp.unroll.max(1) as usize;
    if u == 1 {
        return UnrolledLoop {
            looop: Loop {
                unroll: 1,
                ..lp.clone()
            },
            copies: vec![lp.body.ids().collect()],
        };
    }

    let mut body = Dfg::new();
    let mut shared: Vec<Option<InstId>> = vec![None; lp.body.len()];
    let mut copies: Vec<Vec<InstId>> = Vec::with_capacity(u);

    for k in 0..u {
        let mut map: Vec<InstId> = Vec::with_capacity(lp.body.len());
        for (id, inst) in lp.body.iter() {
            if is_shared(inst.kind) {
                let new_id = *shared[id.index()].get_or_insert_with(|| {
                    let mut cl = inst.clone();
                    cl.operands = Vec::new();
                    body.push_inst(cl)
                });
                map.push(new_id);
                continue;
            }
            let mut cl = inst.clone();
            cl.operands = inst.operands.iter().map(|op| map[op.index()]).collect();
            if !cl.name.is_empty() {
                cl.name = format!("{}#{k}", cl.name);
            }
            map.push(body.push_inst(cl));
        }
        copies.push(map);
    }

    UnrolledLoop {
        looop: Loop {
            name: lp.name.clone(),
            trip_count: lp.trip_count.div_ceil(u as u64).max(1),
            unroll: 1,
            pipeline: lp.pipeline,
            body,
        },
        copies,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::DesignBuilder;
    use crate::types::DataType;
    use crate::verify::verify_dfg;

    fn fig1_loop(unroll: u32) -> crate::design::Design {
        let mut b = DesignBuilder::new("fig1");
        let mut k = b.kernel("top");
        let mut l = k.pipelined_loop("compute", 1024, 1);
        l.set_unroll(unroll);
        let source = l.invariant_input("source", DataType::Int(32));
        let foo = l.varying_input("foo", DataType::Int(32));
        let bar = l.varying_input("bar", DataType::Int(32));
        let t = l.add(source, foo);
        let r = l.sub(t, bar);
        l.output("result", r);
        l.finish();
        k.finish();
        b.finish().expect("valid")
    }

    #[test]
    fn unroll_replicates_body_and_shares_invariants() {
        let d = fig1_loop(16);
        let u = unroll_loop(&d.kernels[0].loops[0]);
        // 1 shared invariant + 16 * 5 replicated instructions.
        assert_eq!(u.looop.body.len(), 1 + 16 * 5);
        assert_eq!(u.looop.trip_count, 64);
        assert_eq!(u.looop.unroll, 1);
        // Invariant source has fanout 16.
        let src = u.copies[0][0];
        assert_eq!(u.looop.body.fanout(src), 16);
        // Varying inputs are per-copy, fanout 1 each.
        let foo0 = u.copies[0][1];
        let foo1 = u.copies[1][1];
        assert_ne!(foo0, foo1);
        assert_eq!(u.looop.body.fanout(foo0), 1);
    }

    #[test]
    fn unrolled_body_is_valid_ir() {
        let d = fig1_loop(64);
        let u = unroll_loop(&d.kernels[0].loops[0]);
        verify_dfg(&u.looop.body, &d).expect("unrolled body verifies");
    }

    #[test]
    fn unroll_factor_one_is_identity() {
        let d = fig1_loop(1);
        let orig = &d.kernels[0].loops[0];
        let u = unroll_loop(orig);
        assert_eq!(u.looop.body, orig.body);
        assert_eq!(u.looop.trip_count, orig.trip_count);
        assert_eq!(u.copies.len(), 1);
    }

    #[test]
    fn partial_trip_count_rounds_up() {
        let mut b = DesignBuilder::new("p");
        let mut k = b.kernel("top");
        let mut l = k.pipelined_loop("body", 100, 1);
        l.set_unroll(64);
        let x = l.varying_input("x", DataType::Int(32));
        l.output("o", x);
        l.finish();
        k.finish();
        let d = b.finish().expect("valid");
        let u = unroll_loop(&d.kernels[0].loops[0]);
        assert_eq!(u.looop.trip_count, 2);
    }

    #[test]
    fn copy_names_are_suffixed() {
        let d = fig1_loop(2);
        let u = unroll_loop(&d.kernels[0].loops[0]);
        let foo1 = u.copies[1][1];
        assert_eq!(u.looop.body.inst(foo1).name, "foo#1");
    }
}
