//! Explicit broadcast trees — the paper's *rejected* alternative (§4.1).
//!
//! "Another potential option is to explicitly construct a broadcast tree
//! in the source code to deal with huge broadcasts. However, it is
//! difficult to model the influence of different tree topologies on the
//! black-box physical design process. Our extensive experimental
//! experiences also show that it is better to let the physical design
//! tools handle the register duplication during placement."
//!
//! This transform is implemented so the claim can be tested: the
//! `ablation_tree` bench compares broadcast-aware scheduling against
//! source-level register trees of several arities.

use crate::dfg::{Dfg, InstId, Instruction};
use crate::op::OpKind;

/// Rebuilds the graph with a balanced register tree between `def` and its
/// users: the root register reads `def`, each tree level fans out by at
/// most `arity`, and each leaf serves at most `arity` original users.
/// Every level adds one cycle of latency (the tree nodes are registers).
///
/// Returns the graph unchanged (trivially rebuilt) if `def` has at most
/// `arity` users.
///
/// # Panics
///
/// Panics if `def` is out of bounds or `arity < 2`.
pub fn insert_broadcast_tree(dfg: &Dfg, def: InstId, arity: usize) -> (Dfg, Vec<InstId>) {
    assert!(arity >= 2, "tree arity must be at least 2");
    assert!(def.index() < dfg.len(), "def out of bounds");
    let n_users = dfg.users(def).len();

    let mut out = Dfg::new();
    let mut map: Vec<InstId> = Vec::with_capacity(dfg.len());

    if n_users <= arity {
        // Nothing to do: rebuild unchanged.
        for (_, inst) in dfg.iter() {
            let mut cl = inst.clone();
            cl.operands = inst.operands.iter().map(|op| map[op.index()]).collect();
            map.push(out.push_inst(cl));
        }
        return (out, map);
    }

    // Level sizes from the leaves up: leaves serve `arity` users each.
    let mut level_sizes = vec![n_users.div_ceil(arity)];
    while *level_sizes.last().unwrap() > 1 {
        level_sizes.push(level_sizes.last().unwrap().div_ceil(arity));
    }
    level_sizes.reverse(); // root (size 1) first

    // For each original user (in user-list order), which leaf serves it.
    let leaf_of_user: Vec<usize> = (0..n_users).map(|u| u / arity).collect();

    let mut leaves: Vec<InstId> = Vec::new();
    for (id, inst) in dfg.iter() {
        let mut cl = inst.clone();
        cl.operands = inst
            .operands
            .iter()
            .map(|op| {
                if *op == def {
                    // Which occurrence of `def` in the users list is this?
                    // The use list is in insertion order, the same order we
                    // walk here; find this user's position(s).
                    let pos = dfg
                        .users(def)
                        .iter()
                        .position(|&u| u == id)
                        .expect("user recorded");
                    leaves[leaf_of_user[pos]]
                } else {
                    map[op.index()]
                }
            })
            .collect();
        let new_id = out.push_inst(cl);
        map.push(new_id);
        if id == def {
            // Emit the tree right after the definition, root first.
            let mut prev_level = vec![new_id];
            for (li, &size) in level_sizes.iter().enumerate() {
                let mut level = Vec::with_capacity(size);
                for i in 0..size {
                    let parent = prev_level[i * prev_level.len() / size];
                    let mut reg = Instruction::new(OpKind::Reg, inst.ty, vec![parent]);
                    reg.name = format!("{}_bt{li}_{i}", inst.name);
                    level.push(out.push_inst(reg));
                }
                prev_level = level;
            }
            leaves = prev_level;
        }
    }
    (out, map)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::DataType;

    fn broadcast(n: usize) -> (Dfg, InstId) {
        let mut d = Dfg::new();
        let src = d.push_named(
            OpKind::Input { invariant: true },
            DataType::Int(32),
            vec![],
            "src",
        );
        let x = d.push(
            OpKind::Input { invariant: false },
            DataType::Int(32),
            vec![],
        );
        for _ in 0..n {
            d.push(OpKind::Sub, DataType::Int(32), vec![x, src]);
        }
        (d, src)
    }

    #[test]
    fn tree_bounds_every_fanout() {
        let (d, src) = broadcast(64);
        let (out, map) = insert_broadcast_tree(&d, src, 4);
        // 64 users / arity 4 = 16 leaves, 4 mid, 1 root: 21 registers.
        let regs = out.iter().filter(|(_, i)| i.kind == OpKind::Reg).count();
        assert_eq!(regs, 21);
        // Every node of the treed cone (source + registers) fans out by at
        // most the arity. (The untreed varying input keeps its fanout.)
        for (id, inst) in out.iter() {
            if inst.kind == OpKind::Reg {
                assert!(out.fanout(id) <= 4, "fanout {} at {id}", out.fanout(id));
            }
        }
        // The source now feeds only the root.
        assert_eq!(out.fanout(map[src.index()]), 1);
    }

    #[test]
    fn small_fanout_is_untouched() {
        let (d, src) = broadcast(3);
        let (out, map) = insert_broadcast_tree(&d, src, 4);
        assert_eq!(out.len(), d.len());
        assert_eq!(out.fanout(map[src.index()]), 3);
    }

    #[test]
    fn tree_output_verifies_and_preserves_semantics() {
        use crate::builder::DesignBuilder;
        use crate::interp::{Interpreter, LoopIo};

        let mut b = DesignBuilder::new("t");
        let fin = b.fifo("in", DataType::Int(32), 2);
        let fout = b.fifo("out", DataType::Int(32), 2);
        let mut k = b.kernel("top");
        let mut l = k.pipelined_loop("main", 8, 1);
        let src = l.invariant_input("src", DataType::Int(32));
        let x = l.fifo_read(fin, DataType::Int(32));
        let mut acc = x;
        for _ in 0..9 {
            let s = l.sub(acc, src);
            acc = l.xor(s, x);
        }
        l.fifo_write(fout, acc);
        l.finish();
        k.finish();
        let d = b.finish().unwrap();
        let lp = &d.kernels[0].loops[0];

        let (body, _) = insert_broadcast_tree(&lp.body, crate::InstId(0), 3);
        crate::verify::verify_dfg(&body, &d).expect("tree output is valid IR");
        let treed = crate::Loop { body, ..lp.clone() };

        let run = |lp: &crate::Loop| {
            let mut io = LoopIo::default();
            io.fifo_inputs
                .insert(fin, (0..8).map(|i| i * 5 - 9).collect());
            io.invariants.insert("src".into(), 17);
            Interpreter::new(&d).run_loop(lp, 8, &mut io);
            io.fifo_outputs[&fout].clone()
        };
        assert_eq!(run(lp), run(&treed));
    }
}
