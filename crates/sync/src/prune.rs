//! Parallel-module synchronization pruning (paper §4.2, case 2).

/// One concurrently executing module as seen by the synchronizer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ModuleSync {
    /// Module name (for reports).
    pub name: String,
    /// Statically known latency in cycles, or `None` for dynamic latency.
    pub latency: Option<u64>,
}

impl ModuleSync {
    /// A module with fixed latency.
    pub fn fixed(name: impl Into<String>, latency: u64) -> Self {
        ModuleSync {
            name: name.into(),
            latency: Some(latency),
        }
    }

    /// A module with dynamic (data-dependent) latency.
    pub fn dynamic(name: impl Into<String>) -> Self {
        ModuleSync {
            name: name.into(),
            latency: None,
        }
    }
}

/// The pruned synchronization plan: which modules' `done` signals the FSM
/// still waits on, and which are provably redundant.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SyncPlan {
    /// Indices of modules that must be waited on.
    pub wait: Vec<usize>,
    /// Indices whose `done` is pruned.
    pub pruned: Vec<usize>,
}

impl SyncPlan {
    /// Fan-in of the done-reduce tree after pruning.
    pub fn reduce_width(&self) -> usize {
        self.wait.len()
    }
}

/// Prunes the synchronization of parallel modules with static latencies:
/// "the key idea is to only wait for the part with the longest latency".
///
/// A fixed-latency module is redundant iff some waited module's latency is
/// at least as large (it is guaranteed to have finished by then). Modules
/// with dynamic latency can never be pruned — the paper leaves those to
/// future work (see [`prune_sync_bounded`] for the interval extension).
pub fn prune_sync(modules: &[ModuleSync]) -> SyncPlan {
    let max_static = modules
        .iter()
        .enumerate()
        .filter_map(|(i, m)| m.latency.map(|l| (l, i)))
        .max();
    let mut wait = Vec::new();
    let mut pruned = Vec::new();
    for (i, m) in modules.iter().enumerate() {
        match (m.latency, max_static) {
            (None, _) => wait.push(i),
            (Some(_), Some((_, rep))) if i == rep => wait.push(i),
            (Some(_), Some(_)) => pruned.push(i),
            (Some(_), None) => unreachable!("a static module implies a max"),
        }
    }
    SyncPlan { wait, pruned }
}

/// Latency interval of a module whose exact cycle count is data-dependent
/// but boundable (e.g. a loop with variable bounds).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LatencyRange {
    /// Guaranteed minimum latency, cycles.
    pub min: u64,
    /// Guaranteed maximum latency, cycles.
    pub max: u64,
}

impl LatencyRange {
    /// An exact latency.
    pub fn exact(l: u64) -> Self {
        LatencyRange { min: l, max: l }
    }

    /// An interval.
    ///
    /// # Panics
    ///
    /// Panics if `min > max`.
    pub fn new(min: u64, max: u64) -> Self {
        assert!(min <= max, "invalid latency range");
        LatencyRange { min, max }
    }
}

/// Interval extension of [`prune_sync`] (beyond the paper, which lists
/// variable-bound loops as future work): module `i` may be pruned iff some
/// *waited* module `j` satisfies `min_j >= max_i` — then `j` finishing
/// implies `i` has finished, under every execution.
///
/// Greedy construction: modules are examined in decreasing `max`; each is
/// pruned if already covered by a waited module, otherwise waited on.
pub fn prune_sync_bounded(bounds: &[LatencyRange]) -> SyncPlan {
    let mut order: Vec<usize> = (0..bounds.len()).collect();
    order.sort_by_key(|&i| std::cmp::Reverse(bounds[i].max));
    let mut wait: Vec<usize> = Vec::new();
    let mut pruned: Vec<usize> = Vec::new();
    for &i in &order {
        if wait.iter().any(|&j| bounds[j].min >= bounds[i].max) {
            pruned.push(i);
        } else {
            wait.push(i);
        }
    }
    wait.sort_unstable();
    pruned.sort_unstable();
    SyncPlan { wait, pruned }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hlsb_rng::Rng;

    #[test]
    fn waits_only_on_longest_static() {
        let plan = prune_sync(&[
            ModuleSync::fixed("a", 5),
            ModuleSync::fixed("b", 20),
            ModuleSync::fixed("c", 20),
            ModuleSync::fixed("d", 3),
        ]);
        assert_eq!(plan.wait.len(), 1);
        assert!(plan.wait[0] == 1 || plan.wait[0] == 2);
        assert_eq!(plan.reduce_width(), 1);
        assert_eq!(plan.pruned.len(), 3);
    }

    #[test]
    fn dynamic_modules_are_never_pruned() {
        let plan = prune_sync(&[
            ModuleSync::fixed("a", 100),
            ModuleSync::dynamic("b"),
            ModuleSync::fixed("c", 2),
            ModuleSync::dynamic("d"),
        ]);
        assert!(plan.wait.contains(&1));
        assert!(plan.wait.contains(&3));
        assert!(plan.wait.contains(&0)); // longest static stays
        assert_eq!(plan.pruned, vec![2]);
    }

    #[test]
    fn all_dynamic_means_no_pruning() {
        let plan = prune_sync(&[ModuleSync::dynamic("a"), ModuleSync::dynamic("b")]);
        assert_eq!(plan.wait, vec![0, 1]);
        assert!(plan.pruned.is_empty());
    }

    #[test]
    fn empty_input() {
        let plan = prune_sync(&[]);
        assert!(plan.wait.is_empty() && plan.pruned.is_empty());
    }

    #[test]
    fn bounded_pruning_respects_overlap() {
        // [10, 30] cannot cover [5, 15] (min 10 < max 15), but [20, 30]
        // covers [5, 15].
        let plan = prune_sync_bounded(&[LatencyRange::new(10, 30), LatencyRange::new(5, 15)]);
        assert_eq!(plan.wait, vec![0, 1], "overlapping ranges both waited");

        let plan2 = prune_sync_bounded(&[LatencyRange::new(20, 30), LatencyRange::new(5, 15)]);
        assert_eq!(plan2.wait, vec![0]);
        assert_eq!(plan2.pruned, vec![1]);
    }

    #[test]
    fn bounded_reduces_to_exact_case() {
        let plan = prune_sync_bounded(&[
            LatencyRange::exact(5),
            LatencyRange::exact(20),
            LatencyRange::exact(3),
        ]);
        assert_eq!(plan.wait, vec![1]);
        assert_eq!(plan.pruned, vec![0, 2]);
    }

    #[test]
    fn plan_partitions_modules() {
        let mut rng = Rng::seed_from_u64(0x5CA1_0001);
        for _ in 0..256 {
            let len = rng.gen_index(20);
            let lats: Vec<Option<u64>> = (0..len)
                .map(|_| rng.gen_bool(0.5).then(|| rng.gen_u64(0, 999)))
                .collect();
            let modules: Vec<ModuleSync> = lats
                .iter()
                .enumerate()
                .map(|(i, l)| ModuleSync {
                    name: format!("m{i}"),
                    latency: *l,
                })
                .collect();
            let plan = prune_sync(&modules);
            let mut all: Vec<usize> = plan.wait.iter().chain(&plan.pruned).copied().collect();
            all.sort_unstable();
            assert_eq!(all, (0..modules.len()).collect::<Vec<_>>());
        }
    }

    #[test]
    fn pruning_is_sound() {
        // Soundness: when every waited module has finished, every pruned
        // module must have finished, for any concrete latency assignment
        // (here: the exact static latencies).
        let mut rng = Rng::seed_from_u64(0x5CA1_0002);
        for _ in 0..256 {
            let len = rng.gen_index(19) + 1;
            let lats: Vec<u64> = (0..len).map(|_| rng.gen_u64(0, 999)).collect();
            let modules: Vec<ModuleSync> = lats
                .iter()
                .enumerate()
                .map(|(i, l)| ModuleSync {
                    name: format!("m{i}"),
                    latency: Some(*l),
                })
                .collect();
            let plan = prune_sync(&modules);
            let wait_done = plan.wait.iter().map(|&i| lats[i]).max().unwrap_or(0);
            for &p in &plan.pruned {
                assert!(lats[p] <= wait_done, "lats {lats:?}");
            }
        }
    }

    #[test]
    fn bounded_pruning_is_sound() {
        let mut rng = Rng::seed_from_u64(0x5CA1_0003);
        for _ in 0..256 {
            let len = rng.gen_index(15) + 1;
            let bounds: Vec<LatencyRange> = (0..len)
                .map(|_| {
                    let a = rng.gen_u64(0, 499);
                    let b = rng.gen_u64(0, 499);
                    LatencyRange::new(a.min(b), a.max(b))
                })
                .collect();
            let plan = prune_sync_bounded(&bounds);
            // Any realizable latency assignment within bounds:
            let actual: Vec<u64> = bounds
                .iter()
                .map(|r| r.min + ((r.max - r.min) as f64 * rng.gen_f64()) as u64)
                .collect();
            let wait_done = plan.wait.iter().map(|&i| actual[i]).max().unwrap_or(0);
            for &p in &plan.pruned {
                assert!(
                    actual[p] <= wait_done,
                    "pruned module {} (lat {}) outlives waited set ({})",
                    p,
                    actual[p],
                    wait_done
                );
            }
        }
    }
}
