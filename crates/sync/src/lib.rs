//! # hlsb-sync — synchronization analysis and pruning
//!
//! HLS tools synchronize everything that is scheduled concurrently: all
//! dataflow kernels in a loop iterate in lock-step, and an FSM waits for
//! *every* parallel module's `done` before broadcasting the next `start`
//! (paper §3.2). Both patterns produce reduce-broadcast structures whose
//! routing complexity "soon explodes with increasing degrees of
//! parallelism". This crate implements the paper's §4.2 fixes:
//!
//! * [`flowgraph`] — reconstruct the dataflow graph "at the granularity of
//!   the elementary flow control units", identify isolated sub-graphs
//!   inside a user loop, and split them into separate loops/kernels so the
//!   HLS compiler never glues them together;
//! * [`prune`] — for parallel modules with statically known latency, wait
//!   only for the longest-latency module. A bounded-latency extension
//!   handles modules whose latency is only known as an interval (the
//!   paper lists symbolic latencies as future work).
//!
//! # Example
//!
//! ```
//! use hlsb_sync::prune::{prune_sync, ModuleSync};
//!
//! let plan = prune_sync(&[
//!     ModuleSync::fixed("pe_a", 12),
//!     ModuleSync::fixed("pe_b", 30),
//!     ModuleSync::fixed("pe_c", 7),
//! ]);
//! // Only the slowest module is waited on.
//! assert_eq!(plan.wait, vec![1]);
//! assert_eq!(plan.pruned, vec![0, 2]);
//! ```

pub mod flowgraph;
pub mod prune;

pub use flowgraph::{split_dataflow_design, split_loop_flows, SplitReport};
pub use prune::{prune_sync, prune_sync_bounded, LatencyRange, ModuleSync, SyncPlan};
