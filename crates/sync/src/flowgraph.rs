//! Dataflow-graph reconstruction and loop splitting (paper §4.2, case 1).
//!
//! When several independent streaming flows share one loop (the paper's
//! Fig. 5a; SODA's HBM kernel in §5.3), HLS "pedantically synchronizes
//! them at the granularity of one iteration", gluing the flows into one
//! reduce-broadcast. We rebuild the flow graph at the level of elementary
//! flow-control units (the FIFO accesses and the values connecting them),
//! find its connected components, and emit one loop — and at the design
//! level, one dataflow kernel — per component.

use hlsb_ir::{Concurrency, Design, Dfg, InstId, Kernel, Loop, OpKind};

/// Outcome of a design-level split.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SplitReport {
    /// Kernels examined.
    pub kernels_in: usize,
    /// Kernels after splitting.
    pub kernels_out: usize,
    /// Loops that were split into more than one flow.
    pub loops_split: usize,
}

/// Splits one loop into its independent flows.
///
/// Components are connected through SSA values and ordinary instructions;
/// loop-invariant inputs and constants are *duplicable* and do not glue
/// flows together (a scalar configuration value can be re-registered per
/// flow). Returns one loop per component, each with the duplicable sources
/// it needs cloned in.
pub fn split_loop_flows(lp: &Loop) -> Vec<Loop> {
    let comps = lp.body.connected_components(true);
    if comps.len() <= 1 {
        return vec![lp.clone()];
    }

    let duplicable =
        |kind: OpKind| matches!(kind, OpKind::Const | OpKind::Input { invariant: true });

    comps
        .iter()
        .enumerate()
        .map(|(ci, comp)| {
            let mut body = Dfg::new();
            // old id -> new id (only for insts present in this flow).
            let mut map: Vec<Option<InstId>> = vec![None; lp.body.len()];
            let in_comp: std::collections::HashSet<InstId> = comp.iter().copied().collect();
            for (id, inst) in lp.body.iter() {
                let needed = in_comp.contains(&id)
                    || (duplicable(inst.kind)
                        && lp.body.users(id).iter().any(|u| in_comp.contains(u)));
                if !needed {
                    continue;
                }
                let mut cl = inst.clone();
                cl.operands = inst
                    .operands
                    .iter()
                    .map(|op| map[op.index()].expect("operand present in flow"))
                    .collect();
                map[id.index()] = Some(body.push_inst(cl));
            }
            Loop {
                name: format!("{}_flow{ci}", lp.name),
                trip_count: lp.trip_count,
                unroll: lp.unroll,
                pipeline: lp.pipeline,
                body,
            }
        })
        .collect()
}

/// Splits every single-loop kernel of a dataflow design into one kernel
/// per independent flow, so each flow gets its own (trivial) sync domain.
///
/// Kernels with multiple loops or designs without `#pragma HLS dataflow`
/// are left untouched — splitting sequential loops would change execution
/// order, not synchronization.
pub fn split_dataflow_design(design: &Design) -> (Design, SplitReport) {
    let mut report = SplitReport {
        kernels_in: design.kernels.len(),
        kernels_out: 0,
        loops_split: 0,
    };
    if design.concurrency != Concurrency::Dataflow {
        report.kernels_out = design.kernels.len();
        return (design.clone(), report);
    }

    let mut out = Design {
        name: design.name.clone(),
        arrays: design.arrays.clone(),
        fifos: design.fifos.clone(),
        kernels: Vec::new(),
        concurrency: Concurrency::Dataflow,
    };
    for kernel in &design.kernels {
        if kernel.loops.len() != 1 {
            out.kernels.push(kernel.clone());
            continue;
        }
        let flows = split_loop_flows(&kernel.loops[0]);
        if flows.len() == 1 {
            out.kernels.push(kernel.clone());
            continue;
        }
        report.loops_split += 1;
        for (i, lp) in flows.into_iter().enumerate() {
            out.kernels.push(Kernel {
                name: format!("{}_flow{i}", kernel.name),
                loops: vec![lp],
                static_latency: kernel.static_latency,
            });
        }
    }
    report.kernels_out = out.kernels.len();
    (out, report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use hlsb_ir::builder::DesignBuilder;
    use hlsb_ir::verify::verify_design;
    use hlsb_ir::DataType;

    /// The paper's Fig. 5a: two independent scatter flows in one loop.
    fn fig5a() -> Design {
        let mut b = DesignBuilder::new("fig5a");
        b.dataflow();
        let in_a = b.fifo("inFifoA", DataType::Bits(64), 2);
        let out_a1 = b.fifo("outFifoA1", DataType::Bits(32), 2);
        let out_a2 = b.fifo("outFifoA2", DataType::Bits(32), 2);
        let in_b = b.fifo("inFifoB", DataType::Bits(64), 2);
        let out_b1 = b.fifo("outFifoB1", DataType::Bits(32), 2);
        let out_b2 = b.fifo("outFifoB2", DataType::Bits(32), 2);
        let mut k = b.kernel("scatter");
        let mut l = k.pipelined_loop("while1", 1 << 20, 1);
        let a = l.fifo_read(in_a, DataType::Bits(64));
        let a_foo = l.repack(a, DataType::Bits(32));
        let a_bar = l.repack(a, DataType::Bits(32));
        l.fifo_write(out_a1, a_foo);
        l.fifo_write(out_a2, a_bar);
        let bb = l.fifo_read(in_b, DataType::Bits(64));
        let b_foo = l.repack(bb, DataType::Bits(32));
        let b_bar = l.repack(bb, DataType::Bits(32));
        l.fifo_write(out_b1, b_foo);
        l.fifo_write(out_b2, b_bar);
        l.finish();
        k.finish();
        b.finish().expect("valid")
    }

    #[test]
    fn fig5a_splits_into_two_flows() {
        let d = fig5a();
        let flows = split_loop_flows(&d.kernels[0].loops[0]);
        assert_eq!(flows.len(), 2);
        // Each flow keeps its own reads/writes: 1 read + 2 repacks + 2 writes.
        for f in &flows {
            assert_eq!(f.body.len(), 5, "{}", f.body);
            assert!(f.is_pipelined());
        }
    }

    #[test]
    fn design_level_split_creates_kernels() {
        let d = fig5a();
        let (out, report) = split_dataflow_design(&d);
        assert_eq!(report.kernels_in, 1);
        assert_eq!(report.kernels_out, 2);
        assert_eq!(report.loops_split, 1);
        verify_design(&out).expect("split design is valid IR");
        assert_eq!(out.kernels[0].name, "scatter_flow0");
    }

    #[test]
    fn shared_invariant_is_duplicated_per_flow() {
        let mut b = DesignBuilder::new("shared");
        b.dataflow();
        let fa = b.fifo("a", DataType::Int(32), 2);
        let fb = b.fifo("b", DataType::Int(32), 2);
        let oa = b.fifo("oa", DataType::Int(32), 2);
        let ob = b.fifo("ob", DataType::Int(32), 2);
        let mut k = b.kernel("k");
        let mut l = k.pipelined_loop("l", 100, 1);
        let scale = l.invariant_input("scale", DataType::Int(32));
        let va = l.fifo_read(fa, DataType::Int(32));
        let vb = l.fifo_read(fb, DataType::Int(32));
        let ma = l.mul(va, scale);
        let mb = l.mul(vb, scale);
        l.fifo_write(oa, ma);
        l.fifo_write(ob, mb);
        l.finish();
        k.finish();
        let d = b.finish().expect("valid");

        let flows = split_loop_flows(&d.kernels[0].loops[0]);
        assert_eq!(flows.len(), 2);
        for f in &flows {
            // Each flow contains its own copy of the invariant.
            let invs = f
                .body
                .iter()
                .filter(|(_, i)| matches!(i.kind, OpKind::Input { invariant: true }))
                .count();
            assert_eq!(invs, 1, "{}", f.body);
        }
    }

    #[test]
    fn connected_flows_stay_together() {
        // A value crossing between the flows must prevent splitting.
        let mut b = DesignBuilder::new("coupled");
        b.dataflow();
        let fa = b.fifo("a", DataType::Int(32), 2);
        let fb = b.fifo("b", DataType::Int(32), 2);
        let oc = b.fifo("oc", DataType::Int(32), 2);
        let mut k = b.kernel("k");
        let mut l = k.pipelined_loop("l", 100, 1);
        let va = l.fifo_read(fa, DataType::Int(32));
        let vb = l.fifo_read(fb, DataType::Int(32));
        let s = l.add(va, vb); // couples the two reads
        l.fifo_write(oc, s);
        l.finish();
        k.finish();
        let d = b.finish().expect("valid");
        let flows = split_loop_flows(&d.kernels[0].loops[0]);
        assert_eq!(flows.len(), 1);
    }

    #[test]
    fn sequential_designs_are_untouched() {
        let mut b = DesignBuilder::new("seq");
        let fa = b.fifo("a", DataType::Int(32), 2);
        let oa = b.fifo("oa", DataType::Int(32), 2);
        let fb = b.fifo("b", DataType::Int(32), 2);
        let ob = b.fifo("ob", DataType::Int(32), 2);
        let mut k = b.kernel("k");
        let mut l = k.pipelined_loop("l", 10, 1);
        let va = l.fifo_read(fa, DataType::Int(32));
        l.fifo_write(oa, va);
        let vb = l.fifo_read(fb, DataType::Int(32));
        l.fifo_write(ob, vb);
        l.finish();
        k.finish();
        let d = b.finish().expect("valid");
        let (out, report) = split_dataflow_design(&d);
        assert_eq!(out, d);
        assert_eq!(report.loops_split, 0);
    }

    #[test]
    fn hbm_style_28_flows() {
        // §5.3: 28 independent HBM port flows, each scattering 512 bits
        // into 8 64-bit FIFOs, all expressed in one loop.
        let mut b = DesignBuilder::new("hbm");
        b.dataflow();
        let mut inputs = vec![];
        let mut outputs = vec![];
        for p in 0..28 {
            inputs.push(b.fifo(format!("hbm{p}"), DataType::Bits(512), 2));
            let outs: Vec<_> = (0..8)
                .map(|i| b.fifo(format!("out{p}_{i}"), DataType::Bits(64), 2))
                .collect();
            outputs.push(outs);
        }
        let mut k = b.kernel("scatter");
        let mut l = k.pipelined_loop("all_ports", 1 << 20, 1);
        for p in 0..28 {
            let word = l.fifo_read(inputs[p], DataType::Bits(512));
            for out in &outputs[p] {
                let part = l.repack(word, DataType::Bits(64));
                l.fifo_write(*out, part);
            }
        }
        l.finish();
        k.finish();
        let d = b.finish().expect("valid");

        let (out, report) = split_dataflow_design(&d);
        assert_eq!(report.kernels_out, 28);
        verify_design(&out).expect("valid");
        let _ = out;
    }
}
