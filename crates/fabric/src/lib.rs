//! # hlsb-fabric — simulated FPGA fabric
//!
//! Device models and the interconnect-delay model used in place of a real
//! FPGA + Vivado implementation flow. The paper's central physical fact is
//! that *net delay grows with fanout and with the placed spread of the
//! sinks*; [`wire::WireModel`] captures exactly that with a
//! `distance + fanout` model calibrated against the anchor points the paper
//! publishes (a 0.78 ns subtract rising to 2.08 ns under a 64-way broadcast,
//! and a ~1 ns penalty on a 1024-way add).
//!
//! Four device presets cover the paper's targets (Table 1): UltraScale+
//! VU9P (AWS F1), Zynq ZC706, Alveo U50 and Virtex-7 (Alpha-Data).
//!
//! # Example
//!
//! ```
//! use hlsb_fabric::{Device, WireModel};
//!
//! let dev = Device::ultrascale_plus_vu9p();
//! let wire = WireModel::for_device(&dev);
//! let near = wire.net_delay_ns(1.0, 1);
//! let far_broadcast = wire.net_delay_ns(8.0, 64);
//! assert!(far_broadcast > near);
//! ```

pub mod device;
pub mod noise;
pub mod wire;

pub use device::{Device, DeviceFamily, Resources};
pub use wire::WireModel;
