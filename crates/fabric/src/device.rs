//! FPGA device models.

use std::fmt;

/// Device family; scales the interconnect speed (older families are slower).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DeviceFamily {
    /// Xilinx UltraScale+ (16 nm).
    UltraScalePlus,
    /// Xilinx Zynq-7000 (28 nm).
    Zynq7000,
    /// Xilinx Virtex-7 (28 nm).
    Virtex7,
}

impl DeviceFamily {
    /// Multiplicative delay factor relative to UltraScale+.
    pub fn speed_factor(self) -> f64 {
        match self {
            DeviceFamily::UltraScalePlus => 1.0,
            DeviceFamily::Zynq7000 => 1.38,
            DeviceFamily::Virtex7 => 1.30,
        }
    }
}

impl fmt::Display for DeviceFamily {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            DeviceFamily::UltraScalePlus => "UltraScale+",
            DeviceFamily::Zynq7000 => "ZYNQ",
            DeviceFamily::Virtex7 => "Virtex-7",
        };
        f.write_str(s)
    }
}

/// Resource capacities of a device.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Resources {
    /// Number of 6-input LUTs.
    pub luts: u64,
    /// Number of flip-flops.
    pub ffs: u64,
    /// Number of 36 Kb block RAMs.
    pub brams: u64,
    /// Number of DSP slices.
    pub dsps: u64,
}

/// A target FPGA device: a rectangular grid of sites plus capacities.
///
/// The grid is an abstract floorplan used by the placer; one grid unit
/// corresponds to roughly one CLB-column pitch, so wire delay per unit is a
/// few tens of picoseconds on modern silicon.
#[derive(Debug, Clone, PartialEq)]
pub struct Device {
    /// Marketing name, used in reports.
    pub name: String,
    /// Family (sets the speed factor).
    pub family: DeviceFamily,
    /// Grid width in placement units.
    pub grid_w: u32,
    /// Grid height in placement units.
    pub grid_h: u32,
    /// Resource capacities.
    pub resources: Resources,
}

impl Device {
    /// UltraScale+ VU9P, the AWS F1 instance device (Table 1 rows 1-2, 4-7).
    pub fn ultrascale_plus_vu9p() -> Self {
        Device {
            name: "UltraScale+ VU9P (AWS F1)".into(),
            family: DeviceFamily::UltraScalePlus,
            grid_w: 140,
            grid_h: 120,
            resources: Resources {
                luts: 1_182_240,
                ffs: 2_364_480,
                brams: 2_160,
                dsps: 6_840,
            },
        }
    }

    /// Zynq ZC706 (XC7Z045), used by the face-detection benchmark.
    pub fn zynq_zc706() -> Self {
        Device {
            name: "ZYNQ ZC706".into(),
            family: DeviceFamily::Zynq7000,
            grid_w: 70,
            grid_h: 60,
            resources: Resources {
                luts: 218_600,
                ffs: 437_200,
                brams: 545,
                dsps: 900,
            },
        }
    }

    /// Alveo U50 (UltraScale+ with HBM), used by the HBM stencil benchmark.
    pub fn alveo_u50() -> Self {
        Device {
            name: "UltraScale+ Alveo U50".into(),
            family: DeviceFamily::UltraScalePlus,
            grid_w: 110,
            grid_h: 100,
            resources: Resources {
                luts: 872_000,
                ffs: 1_743_000,
                brams: 1_344,
                dsps: 5_952,
            },
        }
    }

    /// Virtex-7 (Alpha-Data board), used by the pattern-matching benchmark.
    pub fn virtex7() -> Self {
        Device {
            name: "Virtex-7 (Alpha-Data)".into(),
            family: DeviceFamily::Virtex7,
            grid_w: 100,
            grid_h: 90,
            resources: Resources {
                luts: 433_200,
                ffs: 866_400,
                brams: 1_470,
                dsps: 3_600,
            },
        }
    }

    /// Half-perimeter of the die in placement units (an upper bound on any
    /// point-to-point distance used for normalization).
    pub fn half_perimeter(&self) -> f64 {
        f64::from(self.grid_w + self.grid_h)
    }
}

impl fmt::Display for Device {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_have_sane_capacities() {
        for d in [
            Device::ultrascale_plus_vu9p(),
            Device::zynq_zc706(),
            Device::alveo_u50(),
            Device::virtex7(),
        ] {
            assert!(d.resources.luts > 100_000, "{}", d.name);
            assert!(d.resources.ffs >= d.resources.luts, "{}", d.name);
            assert!(d.resources.brams > 100, "{}", d.name);
            assert!(d.grid_w > 10 && d.grid_h > 10, "{}", d.name);
        }
    }

    #[test]
    fn older_families_are_slower() {
        assert!(
            DeviceFamily::Zynq7000.speed_factor() > DeviceFamily::UltraScalePlus.speed_factor()
        );
        assert!(DeviceFamily::Virtex7.speed_factor() > 1.0);
        assert_eq!(DeviceFamily::UltraScalePlus.speed_factor(), 1.0);
    }

    #[test]
    fn vu9p_is_biggest() {
        let vu9p = Device::ultrascale_plus_vu9p();
        let z = Device::zynq_zc706();
        assert!(vu9p.resources.luts > z.resources.luts);
        assert!(vu9p.half_perimeter() > z.half_perimeter());
    }

    #[test]
    fn display_uses_marketing_name() {
        assert!(Device::alveo_u50().to_string().contains("U50"));
        assert_eq!(DeviceFamily::Zynq7000.to_string(), "ZYNQ");
    }
}
