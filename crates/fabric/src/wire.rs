//! Interconnect delay model.

use crate::device::Device;

/// Parameters of the net-delay model:
///
/// ```text
/// net_delay(dist, fanout) =
///     speed * (base + r_dist * dist + k_fanout * ln(1 + fanout))
/// ```
///
/// * `dist` is the placed Manhattan distance (in grid units) from the
///   driver to the farthest sink of the net;
/// * the logarithmic fanout term models the extra routing/buffering levels
///   a high-fanout net needs even after physical-design fanout optimization
///   (register duplication reduces `dist` and `fanout` — see
///   `hlsb-timing::fanout_opt` — but cannot remove the term entirely for
///   combinationally driven nets, which is the paper's point in §6).
///
/// # Calibration
///
/// With the defaults and the skeleton placement used by
/// `hlsb-delay::characterize` (sinks of a `k`-fanout net spread over a
/// region of radius ≈ `0.8·sqrt(k)`):
///
/// * fanout 1, dist 1:   ≈ 0.10 ns   (ordinary local hop)
/// * fanout 64, dist 6.4:  ≈ 1.30 ns  → 0.78 ns sub becomes ≈ 2.08 ns (§5.2)
/// * fanout 1024, dist 25.6: ≈ 3.3 ns (beyond the paper's 2.5 ns anchor for
///   a 1024-add *after* Vivado's fanout optimization; raw pre-optimization
///   delay is higher, which is what characterization measures)
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WireModel {
    /// Fixed per-net delay (output buffer + first switch), ns.
    pub base_ns: f64,
    /// Delay per grid unit of Manhattan distance, ns.
    pub r_dist_ns: f64,
    /// Coefficient of the `ln(1 + fanout)` term, ns.
    pub k_fanout_ns: f64,
    /// Capacitive/congestion term per sink, ns (dominates for the
    /// thousand-sink single-cycle control broadcasts of §3.3).
    pub c_sink_ns: f64,
    /// Device speed factor (1.0 = UltraScale+).
    pub speed: f64,
}

impl WireModel {
    /// The calibrated UltraScale+-class model (see type-level docs).
    ///
    /// The distance coefficient accounts for word-level cells occupying
    /// one site each while a site physically holds ~70 LUTs: placed
    /// distances in this model over-count physical distance by roughly
    /// 2-2.5x, so the per-unit delay is scaled down correspondingly while
    /// the fanout coefficient carries the broadcast calibration anchors.
    pub fn ultrascale_plus() -> Self {
        WireModel {
            base_ns: 0.05,
            r_dist_ns: 0.050,
            k_fanout_ns: 0.230,
            c_sink_ns: 0.0018,
            speed: 1.0,
        }
    }

    /// The model for a specific device (applies the family speed factor).
    pub fn for_device(device: &Device) -> Self {
        WireModel {
            speed: device.family.speed_factor(),
            ..WireModel::ultrascale_plus()
        }
    }

    /// Delay of a net in nanoseconds given the driver-to-farthest-sink
    /// Manhattan distance (grid units) and the net's fanout.
    pub fn net_delay_ns(&self, dist_units: f64, fanout: usize) -> f64 {
        debug_assert!(dist_units >= 0.0);
        let fo = fanout.max(1) as f64;
        self.speed
            * (self.base_ns
                + self.r_dist_ns * dist_units
                + self.k_fanout_ns * (1.0 + fo).ln()
                + self.c_sink_ns * (fo - 1.0))
    }

    /// The sink-spread radius (grid units) the *characterization* skeleton
    /// assumes for a `fanout`-way net on an otherwise empty device: sinks
    /// occupy a square region around the driver whose radius grows with the
    /// square root of the sink count.
    pub fn skeleton_spread(fanout: usize) -> f64 {
        0.8 * (fanout.max(1) as f64).sqrt()
    }

    /// Convenience: the delay of a skeleton broadcast net of the given
    /// fanout (distance taken from [`WireModel::skeleton_spread`]).
    pub fn skeleton_net_delay_ns(&self, fanout: usize) -> f64 {
        self.net_delay_ns(Self::skeleton_spread(fanout), fanout)
    }
}

impl Default for WireModel {
    fn default() -> Self {
        WireModel::ultrascale_plus()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::Device;

    #[test]
    fn monotone_in_distance_and_fanout() {
        let w = WireModel::default();
        assert!(w.net_delay_ns(2.0, 1) > w.net_delay_ns(1.0, 1));
        assert!(w.net_delay_ns(1.0, 16) > w.net_delay_ns(1.0, 2));
        assert!(w.net_delay_ns(0.0, 1) > 0.0);
    }

    #[test]
    fn paper_anchor_64_fanout() {
        // §5.2: predicted 0.78 ns sub measured at ≈ 2.08 ns under a 64-way
        // broadcast, i.e. ≈ 1.30 ns of broadcast wire delay. We accept ±15%.
        let w = WireModel::ultrascale_plus();
        let extra = w.skeleton_net_delay_ns(64) - w.net_delay_ns(1.0, 1);
        assert!(
            (1.0..=1.6).contains(&extra),
            "64-fanout extra delay {extra:.3} ns out of calibration band"
        );
    }

    #[test]
    fn fanout_1024_is_multiple_ns() {
        let w = WireModel::ultrascale_plus();
        let d = w.skeleton_net_delay_ns(1024);
        assert!((2.5..=5.5).contains(&d), "1024-fanout delay {d:.3} ns");
    }

    #[test]
    fn zynq_is_slower_than_usplus() {
        let us = WireModel::for_device(&Device::ultrascale_plus_vu9p());
        let zq = WireModel::for_device(&Device::zynq_zc706());
        assert!(zq.net_delay_ns(4.0, 8) > us.net_delay_ns(4.0, 8));
    }

    #[test]
    fn zero_fanout_treated_as_one() {
        let w = WireModel::default();
        assert_eq!(w.net_delay_ns(1.0, 0), w.net_delay_ns(1.0, 1));
    }

    #[test]
    fn skeleton_spread_grows_sublinearly() {
        assert!(WireModel::skeleton_spread(64) < 64.0 * WireModel::skeleton_spread(1));
        assert!(WireModel::skeleton_spread(256) > WireModel::skeleton_spread(64));
    }
}
