//! Deterministic measurement noise.
//!
//! Physical implementation tools are heuristic; the paper smooths its
//! skeleton measurements by averaging neighbouring broadcast factors to
//! "suppress random noise caused by the heuristic optimization in
//! downstream processes" (§4.1). To exercise that machinery we perturb the
//! model's delays with *deterministic* pseudo-noise keyed on the
//! measurement identity, so results are reproducible across runs yet look
//! like real P&R jitter.

/// A deterministic noise source with a fixed relative amplitude.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NoiseModel {
    /// Peak relative amplitude (e.g. 0.05 = ±5%).
    pub amplitude: f64,
    /// Seed mixed into every sample.
    pub seed: u64,
}

impl NoiseModel {
    /// Noise with the given amplitude and seed.
    pub fn new(amplitude: f64, seed: u64) -> Self {
        NoiseModel { amplitude, seed }
    }

    /// A quiet source (no perturbation).
    pub fn silent() -> Self {
        NoiseModel {
            amplitude: 0.0,
            seed: 0,
        }
    }

    /// Returns `value` perturbed by a deterministic factor in
    /// `[1 - amplitude, 1 + amplitude]`, keyed on `(key_a, key_b)`.
    pub fn perturb(&self, value: f64, key_a: u64, key_b: u64) -> f64 {
        if self.amplitude == 0.0 {
            return value;
        }
        let h = splitmix64(
            self.seed ^ key_a.rotate_left(17) ^ key_b.wrapping_mul(0x9E37_79B9_7F4A_7C15),
        );
        // Map to [-1, 1).
        let unit = (h >> 11) as f64 / (1u64 << 53) as f64 * 2.0 - 1.0;
        value * (1.0 + self.amplitude * unit)
    }
}

/// SplitMix64 — small, high-quality 64-bit mixer.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic() {
        let n = NoiseModel::new(0.05, 42);
        assert_eq!(n.perturb(1.0, 3, 7), n.perturb(1.0, 3, 7));
        assert_ne!(n.perturb(1.0, 3, 7), n.perturb(1.0, 3, 8));
    }

    #[test]
    fn bounded_amplitude() {
        let n = NoiseModel::new(0.05, 1);
        for k in 0..1000u64 {
            let v = n.perturb(10.0, k, k * 31);
            assert!((9.5..=10.5).contains(&v), "sample {v} out of ±5%");
        }
    }

    #[test]
    fn silent_is_identity() {
        let n = NoiseModel::silent();
        assert_eq!(n.perturb(3.25, 9, 9), 3.25);
    }

    #[test]
    fn seeds_decorrelate() {
        let a = NoiseModel::new(0.05, 1);
        let b = NoiseModel::new(0.05, 2);
        let same = (0..100u64)
            .filter(|&k| a.perturb(1.0, k, 0) == b.perturb(1.0, k, 0))
            .count();
        assert!(same < 5, "{same} collisions between different seeds");
    }
}
