//! Broadcast-aware scheduling (paper §4.1).
//!
//! The flow mirrors the paper's tool exactly:
//!
//! 1. schedule with the stock (predicted) delay model;
//! 2. re-evaluate every in-cycle operation chain with the **calibrated**
//!    model, deriving each operand's broadcast factor from the RAW
//!    dependencies in the schedule report ("how many times a variable is
//!    read by later instructions in the same cycle");
//! 3. where a chain violates the clock target, insert a register module
//!    after the critical broadcast source — "equivalent to forcing the
//!    scheduler to split the operations into different cycles";
//! 4. reschedule and repeat to a fixed point.
//!
//! Memory accesses get special treatment: their calibrated delay grows
//! with the number of BRAM units of the buffer, and instead of registers
//! in the dataflow graph they receive *extra distribution/collection
//! pipeline stages* ("for memory access to large buffers within a
//! pipelined environment, we are safe to add additional latency as this
//! will not change the pipeline II").

use crate::list_sched::{chained_delay_ns, schedule_loop, CLOCK_MARGIN};
use crate::schedule::Schedule;
use hlsb_delay::DelayModel;
use hlsb_ir::{Design, InstId, Loop, OpKind};
use std::collections::HashMap;

/// Extra pipelining for memory accesses, keyed by instruction id in the
/// **final** loop body.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MemAccessPlan {
    /// Extra register stages to insert on the data-distribution (store) or
    /// collection (load) path of each memory instruction.
    pub extra_stages: HashMap<InstId, u32>,
}

impl MemAccessPlan {
    /// Extra stages for an instruction (0 if unplanned).
    pub fn stages(&self, inst: InstId) -> u32 {
        self.extra_stages.get(&inst).copied().unwrap_or(0)
    }
}

/// One chain-split decision: the evidence for a register module inserted
/// by the fix-point loop. Everything here is a pure function of the input
/// design and clock, so traces built from it are deterministic.
#[derive(Debug, Clone, PartialEq)]
pub struct SplitDecision {
    /// Fix-point round (1-based) that made the cut.
    pub round: usize,
    /// The violating instruction whose chain was cut (id in that round's
    /// loop body).
    pub violator: InstId,
    /// Kind of the violating instruction.
    pub op: OpKind,
    /// The operand after which the register module was inserted.
    pub cut: InstId,
    /// Broadcast factor observed at the cut point: the larger of the cut
    /// instruction's operand broadcast and its own same-cycle reader
    /// count (the violator is usually the chain *tail*; the broadcast
    /// lives at the source being registered).
    pub broadcast_factor: usize,
    /// How far the chain exceeded the clock budget, in ns.
    pub excess_ns: f64,
    /// Calibrated (broadcast-aware) chained delay of the cut instruction
    /// at that broadcast factor, ns.
    pub calibrated_ns: f64,
    /// What the stock HLS model predicted for the same op, ns.
    pub predicted_ns: f64,
}

/// Result of the broadcast-aware pass.
#[derive(Debug, Clone, PartialEq)]
pub struct BroadcastAwareOutcome {
    /// The rewritten loop (with inserted `Reg` instructions).
    pub looop: Loop,
    /// Its final schedule (under the predicted model, as in the paper —
    /// the registers do the splitting).
    pub schedule: Schedule,
    /// Number of register modules inserted.
    pub inserted_regs: usize,
    /// Fix-point rounds executed.
    pub rounds: usize,
    /// Instructions still violating the calibrated budget after all fixes
    /// (left to physical-design fanout optimization).
    pub residual_violations: Vec<InstId>,
    /// Extra memory pipelining decisions.
    pub mem_plan: MemAccessPlan,
    /// Per-cut provenance, in decision order.
    pub splits: Vec<SplitDecision>,
}

/// Per-instruction chain analysis under the calibrated model.
struct ChainAnalysis {
    /// Calibrated arrival offset of each instruction's result within its
    /// result cycle.
    arr: Vec<f64>,
    /// All violators: (inst, excess over budget, chained operand to cut).
    violations: Vec<(InstId, f64, Option<InstId>)>,
}

fn bram_units_of(design: &Design, op: OpKind) -> usize {
    match op {
        OpKind::Load(a) | OpKind::Store(a) => design.array(a).bram_units().max(1),
        _ => 1,
    }
}

fn analyze(
    lp: &Loop,
    design: &Design,
    schedule: &Schedule,
    calibrated: &impl DelayModel,
    budget: f64,
) -> ChainAnalysis {
    let dfg = &lp.body;
    let mut arr = vec![0.0f64; dfg.len()];
    let mut violations: Vec<(InstId, f64, Option<InstId>)> = Vec::new();

    for (id, inst) in dfg.iter() {
        let op = schedule.op(id);
        // In-cycle chain input: max over operands arriving in this cycle.
        let mut in_off = 0.0f64;
        let mut crit_operand: Option<InstId> = None;
        for &d in &inst.operands {
            if schedule.op(d).done_cycle() == op.cycle && arr[d.index()] > in_off {
                in_off = arr[d.index()];
                crit_operand = Some(d);
            }
        }

        let bf = if inst.kind.is_memory() {
            bram_units_of(design, inst.kind)
        } else {
            schedule.operand_broadcast_factor(dfg, id)
        };
        let d_cal = chained_delay_ns(calibrated.delay_ns(inst.kind, inst.ty, bf));

        let (out, total) = if op.latency == 0 {
            let total = in_off + d_cal;
            (total, total)
        } else if matches!(inst.kind, OpKind::Load(_)) {
            // The read data path (BRAM clock-to-out + collection network)
            // chains into the consumers.
            (d_cal, in_off.max(d_cal))
        } else if matches!(inst.kind, OpKind::Store(_)) {
            // The write distribution network must fit in one cycle on top
            // of whatever chain feeds the data.
            (0.0, in_off + d_cal)
        } else {
            // Generic sequential op: output comes from a register, but the
            // operand net — including its broadcast wire excess — must
            // still reach the operator's input register within the cycle
            // (e.g. an activation fanning out to 64 multipliers).
            let wire = calibrated.wire_excess_ns(inst.kind, inst.ty, bf);
            (op.offset_ns, in_off + wire)
        };
        arr[id.index()] = out;

        let excess = total - budget;
        if excess > 1e-9 {
            violations.push((id, excess, crit_operand));
        }
    }

    ChainAnalysis { arr, violations }
}

/// Runs the broadcast-aware scheduling pass on an (already unrolled) loop.
///
/// `predicted` is the broadcast-blind model the baseline scheduler uses;
/// `calibrated` is the broadcast-aware model from
/// [`hlsb_delay::CalibratedModel`].
pub fn broadcast_aware(
    lp: &Loop,
    design: &Design,
    predicted: &impl DelayModel,
    calibrated: &impl DelayModel,
    clock_ns: f64,
) -> BroadcastAwareOutcome {
    const MAX_ROUNDS: usize = 64;
    let budget = clock_ns * CLOCK_MARGIN;
    let mut cur = lp.clone();
    let mut inserted = 0usize;
    let mut rounds = 0usize;
    let mut splits: Vec<SplitDecision> = Vec::new();

    loop {
        rounds += 1;
        let schedule = schedule_loop(&cur, design, predicted, clock_ns);
        let analysis = analyze(&cur, design, &schedule, calibrated, budget);

        if analysis.violations.is_empty() || rounds >= MAX_ROUNDS {
            break;
        }

        // Choose a register insertion point per violator; batch the round.
        // Cuts through free aliases (repack) resolve to the underlying
        // definition, so a word scattered into many lanes gets ONE shared
        // register (whose output physical duplication can then split),
        // not one register per lane.
        let resolve_alias = |dfg: &hlsb_ir::Dfg, mut d: InstId| {
            while dfg.inst(d).kind == OpKind::Repack {
                d = dfg.inst(d).operands[0];
            }
            d
        };
        let mut cuts: Vec<InstId> = Vec::new();
        let mut seen = std::collections::HashSet::new();
        for &(inst, excess, crit_operand) in &analysis.violations {
            if cur.body.inst(inst).kind.is_memory() {
                continue; // handled by the memory plan below
            }
            let cut = match crit_operand {
                // There is an in-cycle chain feeding the violator: cut it
                // at the critical operand (the paper's Fig. 14 fix).
                Some(op) if cur.body.inst(op).kind != OpKind::Reg => Some(op),
                _ => {
                    // No chain to cut (the op alone violates). Register the
                    // most broadcast not-yet-registered operand so the full
                    // budget is available and the physical tools can
                    // duplicate the source.
                    let dfg = &cur.body;
                    let already_registered = |k: OpKind| {
                        matches!(
                            k,
                            OpKind::Reg | OpKind::Input { .. } | OpKind::IndVar | OpKind::Const
                        )
                    };
                    dfg.raw_deps(inst)
                        .iter()
                        .copied()
                        .filter(|&d| {
                            schedule.op(d).done_cycle() == schedule.op(inst).cycle
                                && !already_registered(dfg.inst(d).kind)
                        })
                        .max_by_key(|&d| schedule.same_cycle_readers(dfg, d))
                        .filter(|&d| schedule.same_cycle_readers(dfg, d) > 1)
                }
            };
            if let Some(c) = cut {
                let c = resolve_alias(&cur.body, c);
                if cur.body.inst(c).kind != OpKind::Reg && seen.insert(c) {
                    cuts.push(c);
                    let ck = cur.body.inst(c);
                    let bf = schedule
                        .operand_broadcast_factor(&cur.body, c)
                        .max(schedule.same_cycle_readers(&cur.body, c));
                    splits.push(SplitDecision {
                        round: rounds,
                        violator: inst,
                        op: cur.body.inst(inst).kind,
                        cut: c,
                        broadcast_factor: bf,
                        excess_ns: excess,
                        calibrated_ns: chained_delay_ns(calibrated.delay_ns(ck.kind, ck.ty, bf)),
                        predicted_ns: chained_delay_ns(predicted.delay_ns(ck.kind, ck.ty, bf)),
                    });
                }
            }
        }

        if cuts.is_empty() {
            break; // nothing more to register: residual violations
        }
        let (body, regs, _map) = cur.body.insert_regs_after(&cuts);
        cur = Loop { body, ..cur };
        inserted += regs.len();
    }

    // Final schedule + residual analysis + memory plan.
    let schedule = schedule_loop(&cur, design, predicted, clock_ns);
    let analysis = analyze(&cur, design, &schedule, calibrated, budget);
    let mut residual = Vec::new();
    let mut mem_plan = MemAccessPlan::default();
    for (id, inst) in cur.body.iter() {
        let op = schedule.op(id);
        let chain_in = cur
            .body
            .raw_deps(id)
            .iter()
            .filter(|&&d| schedule.op(d).done_cycle() == op.cycle)
            .map(|&d| analysis.arr[d.index()])
            .fold(0.0f64, f64::max);
        if inst.kind.is_memory() {
            let bf = bram_units_of(design, inst.kind);
            let d_cal = chained_delay_ns(calibrated.delay_ns(inst.kind, inst.ty, bf));
            let total = if matches!(inst.kind, OpKind::Store(_)) {
                chain_in + d_cal
            } else {
                d_cal
            };
            if total > budget {
                // Split the distribution/collection network over enough
                // stages that each fits in the budget.
                let stages = (total / budget).ceil() as u32 - 1;
                mem_plan.extra_stages.insert(id, stages.max(1));
            }
        } else {
            let total = analysis.arr[id.index()];
            if op.latency == 0 && total > budget + 1e-9 {
                residual.push(id);
            }
        }
    }

    BroadcastAwareOutcome {
        looop: cur,
        schedule,
        inserted_regs: inserted,
        rounds,
        residual_violations: residual,
        mem_plan,
        splits,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hlsb_delay::{CalibratedModel, HlsPredictedModel};
    use hlsb_fabric::Device;
    use hlsb_ir::builder::DesignBuilder;
    use hlsb_ir::unroll::unroll_loop;
    use hlsb_ir::{DataType, Partition};

    fn calibrated() -> CalibratedModel {
        CalibratedModel::characterize_analytic(&Device::ultrascale_plus_vu9p(), 3)
    }

    /// The paper's Fig. 13/14 pattern: an invariant value broadcast to 64
    /// unrolled subtract-chains.
    fn genome_like(unroll: u32) -> hlsb_ir::Design {
        let mut b = DesignBuilder::new("genome-like");
        let mut k = b.kernel("top");
        let mut l = k.pipelined_loop("body", 64, 1);
        l.set_unroll(unroll);
        let curr_x = l.invariant_input("curr_x", DataType::Int(32));
        let prev_x = l.varying_input("prev_x", DataType::Int(32));
        let dist = l.sub(prev_x, curr_x); // 64-way broadcast of curr_x
        let dd = l.abs(dist);
        let sel = l.min(dd, prev_x);
        l.output("score", sel);
        l.finish();
        k.finish();
        b.finish().expect("valid")
    }

    #[test]
    fn inserts_registers_for_large_broadcast() {
        let d = genome_like(64);
        let u = unroll_loop(&d.kernels[0].loops[0]);
        let out = broadcast_aware(&u.looop, &d, &HlsPredictedModel::new(), &calibrated(), 3.33);
        assert!(out.inserted_regs >= 1, "no registers inserted");
        // Every inserted register carries a decision record with the
        // calibrated-vs-predicted evidence that justified it.
        assert_eq!(out.splits.len(), out.inserted_regs);
        for s in &out.splits {
            assert!(s.excess_ns > 0.0);
            assert!(s.broadcast_factor >= 1);
        }
        // At least one cut was driven by a calibrated broadcast excess the
        // stock model missed.
        assert!(out
            .splits
            .iter()
            .any(|s| s.broadcast_factor > 1 && s.calibrated_ns > s.predicted_ns));
        // The fix deepens (or at worst re-balances) the pipeline without
        // changing the II (paper: depth 9 -> 10, II unchanged).
        let base = schedule_loop(&u.looop, &d, &HlsPredictedModel::new(), 3.33);
        assert!(out.schedule.depth >= base.depth);
        assert_eq!(out.schedule.ii, base.ii);
        // The broadcast subtract now starts its cycle fresh: no chained
        // operand feeds it.
        let dfg = &out.looop.body;
        for (id, inst) in dfg.iter() {
            if inst.kind == hlsb_ir::OpKind::Sub {
                let cyc = out.schedule.op(id).cycle;
                for &d in &inst.operands {
                    let dep = out.schedule.op(d);
                    if dep.done_cycle() == cyc {
                        assert!(
                            dep.offset_ns <= 0.95,
                            "sub {id} still chained behind {d} ({}ns)",
                            dep.offset_ns
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn small_broadcast_needs_no_fix() {
        let d = genome_like(2);
        let u = unroll_loop(&d.kernels[0].loops[0]);
        let out = broadcast_aware(&u.looop, &d, &HlsPredictedModel::new(), &calibrated(), 3.33);
        assert_eq!(out.inserted_regs, 0);
        assert!(out.residual_violations.is_empty());
    }

    #[test]
    fn fix_point_reached_without_violations() {
        let d = genome_like(64);
        let u = unroll_loop(&d.kernels[0].loops[0]);
        let out = broadcast_aware(&u.looop, &d, &HlsPredictedModel::new(), &calibrated(), 3.33);
        assert!(
            out.residual_violations.is_empty(),
            "residual: {:?}",
            out.residual_violations
        );
        assert!(out.rounds < 64);
    }

    #[test]
    fn large_buffer_store_gets_extra_stages() {
        // The paper's Fig. 3: a 737280-word buffer (640 BRAM units).
        let mut b = DesignBuilder::new("bigbuf");
        let arr = b.array("buffer", DataType::Int(32), 737_280, Partition::None);
        let inf = b.fifo("in", DataType::Int(32), 2);
        let mut k = b.kernel("top");
        let mut l = k.pipelined_loop("fill", 737_280, 1);
        let i = l.indvar("i");
        let v = l.fifo_read(inf, DataType::Int(32));
        l.store(arr, i, v);
        l.finish();
        k.finish();
        let d = b.finish().expect("valid");
        let out = broadcast_aware(
            &d.kernels[0].loops[0],
            &d,
            &HlsPredictedModel::new(),
            &calibrated(),
            3.33,
        );
        let store_id = out
            .looop
            .body
            .iter()
            .find(|(_, i)| matches!(i.kind, hlsb_ir::OpKind::Store(_)))
            .map(|(id, _)| id)
            .expect("store present");
        assert!(
            out.mem_plan.stages(store_id) >= 1,
            "large-buffer store should be pipelined: {:?}",
            out.mem_plan
        );
    }

    #[test]
    fn small_buffer_store_needs_no_stages() {
        let mut b = DesignBuilder::new("smallbuf");
        let arr = b.array("buffer", DataType::Int(32), 1024, Partition::None);
        let inf = b.fifo("in", DataType::Int(32), 2);
        let mut k = b.kernel("top");
        let mut l = k.pipelined_loop("fill", 1024, 1);
        let i = l.indvar("i");
        let v = l.fifo_read(inf, DataType::Int(32));
        l.store(arr, i, v);
        l.finish();
        k.finish();
        let d = b.finish().expect("valid");
        let out = broadcast_aware(
            &d.kernels[0].loops[0],
            &d,
            &HlsPredictedModel::new(),
            &calibrated(),
            3.33,
        );
        assert!(out.mem_plan.extra_stages.is_empty());
        assert_eq!(out.inserted_regs, 0);
    }

    #[test]
    fn terminates_on_pathological_clock() {
        // A clock so fast nothing fits: must terminate with residuals, not
        // loop forever.
        let d = genome_like(64);
        let u = unroll_loop(&d.kernels[0].loops[0]);
        let out = broadcast_aware(&u.looop, &d, &HlsPredictedModel::new(), &calibrated(), 0.6);
        assert!(out.rounds <= 64);
        assert!(!out.residual_violations.is_empty());
    }
}
