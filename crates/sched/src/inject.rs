//! Forced register injection at named stage boundaries.
//!
//! Broadcast-aware scheduling ([`crate::broadcast_aware()`]) inserts
//! register modules *reactively*, where the calibrated model proves a
//! chain violates the clock budget. This module is the *proactive*
//! variant — the `inject_registers`-style knob of frequency-optimization
//! harnesses: the caller names stage boundaries of the baseline schedule
//! and every value that crosses such a boundary through wires (i.e. is
//! produced in the boundary cycle and consumed combinationally in the
//! same cycle) is forced through an [`OpKind::Reg`] module instead.
//!
//! The cut points are exactly the split-chain cut points the
//! broadcast-aware pass would consider — chain sources with same-cycle
//! readers — so an injection at boundary `b` splits every in-cycle
//! operation chain alive at cycle `b` of the pre-injection schedule.
//! The rewritten loop is then rescheduled, which deepens the pipeline
//! (the extra latency is real and visible to the timed simulator) in
//! exchange for shorter combinational chains after lowering.

use crate::list_sched::schedule_loop;
use crate::schedule::Schedule;
use hlsb_delay::DelayModel;
use hlsb_ir::{Design, InstId, Loop, OpKind};

/// One forced-injection decision: the evidence for a register module
/// inserted at a requested stage boundary. Pure function of the loop,
/// clock and boundary list, so traces replayed from it are
/// deterministic.
#[derive(Debug, Clone, PartialEq)]
pub struct InjectDecision {
    /// The requested stage boundary (cycle index in the *pre-injection*
    /// schedule of this loop) that this cut realizes.
    pub boundary: u32,
    /// The instruction after which the register module was inserted (id
    /// in the pre-injection loop body).
    pub cut: InstId,
    /// Kind of the cut instruction.
    pub op: OpKind,
    /// Same-cycle readers whose combinational chain the register cuts.
    pub readers: usize,
}

/// Result of [`inject_registers`].
#[derive(Debug, Clone, PartialEq)]
pub struct InjectionOutcome {
    /// The rewritten loop (with the forced `Reg` instructions), or a
    /// clone of the input when nothing was cut.
    pub looop: Loop,
    /// Its schedule after rescheduling.
    pub schedule: Schedule,
    /// Number of register modules inserted.
    pub inserted_regs: usize,
    /// Per-cut provenance, in boundary-then-instruction order.
    pub decisions: Vec<InjectDecision>,
    /// Boundaries that name a real stage boundary of this loop
    /// (`b < pre-injection depth`), whether or not they cut anything.
    pub boundaries_in_range: Vec<u32>,
    /// Old-to-new instruction id mapping (identity-length; empty when no
    /// register was inserted). Callers carrying side tables keyed by
    /// [`InstId`] (e.g. memory pipelining plans) must remap through it.
    pub id_map: Vec<InstId>,
}

/// Kinds whose value already comes straight out of a register (or a
/// constant wire): registering them again cuts no combinational chain.
fn register_like(kind: OpKind) -> bool {
    matches!(
        kind,
        OpKind::Reg | OpKind::Input { .. } | OpKind::IndVar | OpKind::Const
    )
}

/// Forces a pipeline register after every chain source alive at each of
/// the requested stage `boundaries` of `lp`'s baseline schedule, then
/// reschedules. Boundaries are interpreted against the *pre-injection*
/// schedule: a cut at boundary `b` registers every instruction whose
/// result becomes available in cycle `b` and is read combinationally in
/// that same cycle. Out-of-range boundaries (`b >= depth`) are reported
/// via [`InjectionOutcome::boundaries_in_range`] — the caller decides
/// whether that is an error (it is, for a whole design, when a boundary
/// is out of range for *every* loop).
pub fn inject_registers(
    lp: &Loop,
    design: &Design,
    predicted: &impl DelayModel,
    clock_ns: f64,
    boundaries: &[u32],
) -> InjectionOutcome {
    let base = schedule_loop(lp, design, predicted, clock_ns);
    let mut sorted: Vec<u32> = boundaries.to_vec();
    sorted.sort_unstable();
    sorted.dedup();

    let dfg = &lp.body;
    let mut decisions: Vec<InjectDecision> = Vec::new();
    let mut cuts: Vec<InstId> = Vec::new();
    let mut seen = std::collections::HashSet::new();
    let mut in_range = Vec::new();
    for &b in &sorted {
        if b >= base.depth {
            continue;
        }
        in_range.push(b);
        for (id, inst) in dfg.iter() {
            if base.op(id).done_cycle() != b || register_like(inst.kind) {
                continue;
            }
            let readers = base.same_cycle_readers(dfg, id);
            if readers == 0 || !seen.insert(id) {
                continue;
            }
            cuts.push(id);
            decisions.push(InjectDecision {
                boundary: b,
                cut: id,
                op: inst.kind,
                readers,
            });
        }
    }

    if cuts.is_empty() {
        return InjectionOutcome {
            looop: lp.clone(),
            schedule: base,
            inserted_regs: 0,
            decisions,
            boundaries_in_range: in_range,
            id_map: Vec::new(),
        };
    }

    let (body, regs, id_map) = dfg.insert_regs_after(&cuts);
    let looop = Loop { body, ..lp.clone() };
    let schedule = schedule_loop(&looop, design, predicted, clock_ns);
    InjectionOutcome {
        looop,
        schedule,
        inserted_regs: regs.len(),
        decisions,
        boundaries_in_range: in_range,
        id_map,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hlsb_delay::HlsPredictedModel;
    use hlsb_ir::builder::DesignBuilder;
    use hlsb_ir::DataType;

    /// A three-op combinational chain in one cycle at a relaxed clock.
    fn chain_design() -> hlsb_ir::Design {
        let mut b = DesignBuilder::new("chain");
        let fin = b.fifo("in", DataType::Int(32), 2);
        let fout = b.fifo("out", DataType::Int(32), 2);
        let mut k = b.kernel("top");
        let mut l = k.pipelined_loop("body", 64, 1);
        let c = l.invariant_input("c", DataType::Int(32));
        let x = l.fifo_read(fin, DataType::Int(32));
        let s = l.sub(x, c);
        let a = l.abs(s);
        let m = l.min(a, x);
        l.fifo_write(fout, m);
        l.finish();
        k.finish();
        b.finish().expect("valid")
    }

    #[test]
    fn injection_cuts_chains_and_deepens_the_pipeline() {
        let d = chain_design();
        let lp = &d.kernels[0].loops[0];
        let model = HlsPredictedModel::new();
        let base = schedule_loop(lp, &d, &model, 5.0);
        let out = inject_registers(lp, &d, &model, 5.0, &[1]);
        assert!(out.inserted_regs >= 1, "boundary 1 must cut the chain");
        assert_eq!(out.decisions.len(), out.inserted_regs);
        assert!(out.schedule.depth > base.depth, "latency must be paid");
        assert_eq!(out.schedule.ii, base.ii, "II must not change");
        assert_eq!(out.boundaries_in_range, vec![1]);
        assert_eq!(out.id_map.len(), lp.body.len());
        for dec in &out.decisions {
            assert_eq!(dec.boundary, 1);
            assert!(dec.readers >= 1);
            assert_ne!(
                out.looop.body.inst(out.id_map[dec.cut.index()]).kind,
                OpKind::Reg
            );
        }
        // Every cut instruction's users now read through a register: the
        // only same-cycle reader left is the register's own D input.
        for dec in &out.decisions {
            let new_id = out.id_map[dec.cut.index()];
            let done = out.schedule.op(new_id).done_cycle();
            for &u in out.looop.body.users(new_id) {
                if out.schedule.op(u).cycle == done {
                    assert_eq!(
                        out.looop.body.inst(u).kind,
                        OpKind::Reg,
                        "cut {} still read combinationally by {u}",
                        dec.cut
                    );
                }
            }
        }
    }

    #[test]
    fn out_of_range_boundary_is_reported_not_applied() {
        let d = chain_design();
        let lp = &d.kernels[0].loops[0];
        let model = HlsPredictedModel::new();
        let base = schedule_loop(lp, &d, &model, 5.0);
        let out = inject_registers(lp, &d, &model, 5.0, &[base.depth + 7]);
        assert_eq!(out.inserted_regs, 0);
        assert!(out.boundaries_in_range.is_empty());
        assert_eq!(out.schedule, base, "no-op injection must not reschedule");
    }

    #[test]
    fn injection_is_deterministic_and_batched() {
        let d = chain_design();
        let lp = &d.kernels[0].loops[0];
        let model = HlsPredictedModel::new();
        let a = inject_registers(lp, &d, &model, 5.0, &[1, 2]);
        let b = inject_registers(lp, &d, &model, 5.0, &[2, 1, 1]);
        assert_eq!(a, b, "boundary order and duplicates must not matter");
    }
}
