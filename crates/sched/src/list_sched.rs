//! The ASAP list scheduler with operation chaining.

use crate::schedule::{Schedule, ScheduledOp};
use hlsb_delay::DelayModel;
use hlsb_ir::{Design, Loop, OpKind};

/// Fraction of the clock period available to logic (the rest is the HLS
/// "clock uncertainty" margin, as Vivado HLS reserves by default).
pub const CLOCK_MARGIN: f64 = 0.875;

/// Input setup budget a multi-cycle operator needs at its register
/// boundary, ns.
const INPUT_SETUP_NS: f64 = 0.15;

/// Output offset (clock-to-out) of a generic multi-cycle operator, ns.
const SEQ_OUT_NS: f64 = 0.12;

/// Output offset of a BRAM read (data appears after the clock edge), ns.
const BRAM_OUT_NS: f64 = 0.90;

/// Nominal latency assumed for a called kernel with dynamic latency.
const DYNAMIC_CALL_LATENCY: u32 = 8;

/// Per-operation interconnect allowance added when chaining (production
/// HLS delay tables include a local-net component per operator).
pub const CHAIN_NET_NS: f64 = 0.25;

/// The delay an operation contributes to an in-cycle chain: its logic
/// delay plus the local-net allowance (zero-delay structural ops stay
/// free).
pub fn chained_delay_ns(raw_delay: f64) -> f64 {
    if raw_delay > 0.0 {
        raw_delay + CHAIN_NET_NS
    } else {
        0.0
    }
}

/// Schedules one loop body with ASAP + chaining against `clock_ns`.
///
/// The scheduler behaves like a production HLS scheduler using the given
/// delay model at broadcast factor 1 — i.e. exactly the broadcast-blind
/// behaviour the paper criticizes when fed the predicted model. (The
/// broadcast-aware flow in [`crate::broadcast_aware()`] layers the calibrated
/// re-analysis on top.)
///
/// Chaining rule: an operation starts in the earliest cycle in which all
/// operands are available; if appending its delay to the in-cycle chain
/// would exceed `clock_ns * CLOCK_MARGIN`, it is pushed to the next cycle
/// (its operands are then read from registers).
pub fn schedule_loop(
    lp: &Loop,
    design: &Design,
    model: &impl DelayModel,
    clock_ns: f64,
) -> Schedule {
    let budget = clock_ns * CLOCK_MARGIN;
    let dfg = &lp.body;
    let mut ops: Vec<ScheduledOp> = Vec::with_capacity(dfg.len());
    let mut violations = Vec::new();

    for (id, inst) in dfg.iter() {
        let mut start = 0u32;
        let mut offset_in = 0.0f64;
        for &d in &inst.operands {
            let dep: &ScheduledOp = &ops[d.index()];
            let done = dep.done_cycle();
            match done.cmp(&start) {
                std::cmp::Ordering::Greater => {
                    start = done;
                    offset_in = dep.offset_ns;
                }
                std::cmp::Ordering::Equal => {
                    offset_in = offset_in.max(dep.offset_ns);
                }
                std::cmp::Ordering::Less => {}
            }
        }

        let delay = chained_delay_ns(model.delay_ns(inst.kind, inst.ty, 1));
        let latency = match inst.kind {
            OpKind::Call(callee) => design
                .kernel(callee)
                .static_latency
                .map_or(DYNAMIC_CALL_LATENCY, |l| l as u32)
                .max(1),
            _ => model.latency(inst.kind, inst.ty),
        };

        let (cycle, offset_out) = if latency == 0 {
            let mut cycle = start;
            let mut chain = offset_in;
            if chain > 0.0 && chain + delay > budget {
                cycle += 1;
                chain = 0.0;
            }
            if delay > budget {
                violations.push(id);
            }
            (cycle, chain + delay)
        } else {
            let mut cycle = start;
            if offset_in > 0.0 && offset_in + INPUT_SETUP_NS > budget {
                cycle += 1;
            }
            let out = if matches!(inst.kind, OpKind::Load(_)) {
                BRAM_OUT_NS
            } else {
                SEQ_OUT_NS
            };
            (cycle, out)
        };

        ops.push(ScheduledOp {
            cycle,
            latency,
            offset_ns: offset_out,
            est_delay_ns: delay,
        });
    }

    // ALAP sinking within the ASAP depth: every value-producing operation
    // is moved as close to its earliest consumer as register-transfer
    // semantics allow, exactly as production schedulers do to minimize
    // register pressure. A value that would otherwise be computed early
    // and carried through a long delay line (e.g. the per-lane products of
    // a MAC chain, or the late `c` vector of the paper's Fig. 17) is
    // instead produced one cycle before its first use. Operations whose
    // users chain off them in the same cycle are pinned. Processed in
    // reverse order — repeated to a fixpoint so whole dependence chains
    // (including side chains that re-join late consumers) sink together.
    for _pass in 0..6 {
        let mut changed = false;
        for idx in (0..dfg.len()).rev() {
            let id = hlsb_ir::InstId(idx as u32);
            let inst = dfg.inst(id);
            let users = dfg.users(id);
            if users.is_empty() || matches!(inst.kind, OpKind::Const) {
                continue;
            }
            let min_user = users.iter().map(|&u| ops[u.index()].cycle).min().unwrap();
            let op = ops[id.index()];
            // Free aliases and per-iteration port registers become
            // available in the cycle of first use; operations that end in
            // a register (latency >= 1) launch their value at the user's
            // cycle; combinational values conservatively land in a
            // transport register one cycle before use (so no new chains
            // appear behind the scheduler's back).
            let target_done = match inst.kind {
                OpKind::Repack | OpKind::Input { .. } | OpKind::IndVar => min_user,
                _ if op.latency >= 1 => min_user,
                _ => min_user.saturating_sub(1),
            };
            if target_done > op.done_cycle() {
                ops[id.index()].cycle += target_done - op.done_cycle();
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }

    let depth = ops.iter().map(|o| o.done_cycle()).max().unwrap_or(0) + 1;
    // Achieved II: the pragma target, raised if an array's port demand
    // cannot be met (true dual-port BRAM: two accesses per cycle per
    // array). FIFOs are single-port streams: one pop and one push each.
    let mut array_accesses: std::collections::HashMap<u32, u32> = Default::default();
    for (_, inst) in dfg.iter() {
        if let OpKind::Load(a) | OpKind::Store(a) = inst.kind {
            *array_accesses.entry(a.0).or_default() += 1;
        }
    }
    let mem_ii = array_accesses
        .values()
        .map(|&n| n.div_ceil(2))
        .max()
        .unwrap_or(1)
        .max(1);
    let ii = lp.pipeline.map_or(depth, |p| p.ii.max(mem_ii));
    Schedule {
        ops,
        depth,
        ii,
        clock_ns,
        violations,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hlsb_delay::HlsPredictedModel;
    use hlsb_ir::builder::DesignBuilder;
    use hlsb_ir::{DataType, InstId};

    /// Chain of n dependent int adds behind two inputs.
    fn add_chain(n: usize) -> (Design, Vec<InstId>) {
        let mut b = DesignBuilder::new("chain");
        let mut k = b.kernel("top");
        let mut l = k.pipelined_loop("body", 16, 1);
        let a = l.varying_input("a", DataType::Int(32));
        let c = l.varying_input("c", DataType::Int(32));
        let mut ids = vec![];
        let mut cur = a;
        for _ in 0..n {
            cur = l.add(cur, c);
            ids.push(cur);
        }
        l.output("o", cur);
        l.finish();
        k.finish();
        (b.finish().expect("valid"), ids)
    }

    #[test]
    fn chains_until_budget_then_splits() {
        // budget = 3.33 * 0.875 = 2.91; adds cost 0.78 + 0.25 net = 1.03
        // each → two chain per cycle, the third splits.
        let (d, ids) = add_chain(7);
        let s = schedule_loop(&d.kernels[0].loops[0], &d, &HlsPredictedModel::new(), 3.33);
        assert!(s.violations.is_empty());
        let cycles: Vec<u32> = ids.iter().map(|&i| s.op(i).cycle).collect();
        assert_eq!(cycles, vec![0, 0, 1, 1, 2, 2, 3]);
        // Chain offsets accumulate within a cycle.
        assert!(s.op(ids[1]).offset_ns > s.op(ids[0]).offset_ns);
    }

    #[test]
    fn raw_dependencies_are_respected() {
        let (d, ids) = add_chain(10);
        let s = schedule_loop(&d.kernels[0].loops[0], &d, &HlsPredictedModel::new(), 3.33);
        let dfg = &d.kernels[0].loops[0].body;
        for (id, inst) in dfg.iter() {
            for &dep in &inst.operands {
                assert!(
                    s.op(dep).done_cycle() <= s.op(id).cycle,
                    "{dep} not ready before {id}"
                );
            }
        }
        let _ = ids;
    }

    #[test]
    fn reg_op_forces_cycle_split() {
        let mut b = DesignBuilder::new("reg");
        let mut k = b.kernel("top");
        let mut l = k.pipelined_loop("body", 4, 1);
        let a = l.varying_input("a", DataType::Int(32));
        let c = l.varying_input("c", DataType::Int(32));
        let s1 = l.add(a, c);
        let r = l.reg(s1);
        let s2 = l.add(r, c);
        l.output("o", s2);
        l.finish();
        k.finish();
        let d = b.finish().expect("valid");
        let s = schedule_loop(&d.kernels[0].loops[0], &d, &HlsPredictedModel::new(), 10.0);
        // Even with a huge clock, the register forces s2 one cycle later.
        assert_eq!(s.op(s1).cycle, 0);
        assert_eq!(s.op(s2).cycle, s.op(s1).cycle + 1);
    }

    #[test]
    fn float_mul_is_multicycle() {
        let mut b = DesignBuilder::new("fm");
        let mut k = b.kernel("top");
        let mut l = k.pipelined_loop("body", 4, 1);
        let a = l.varying_input("a", DataType::Float32);
        let c = l.varying_input("c", DataType::Float32);
        let m = l.mul(a, c);
        let n = l.add(m, c);
        l.output("o", n);
        l.finish();
        k.finish();
        let d = b.finish().expect("valid");
        let s = schedule_loop(&d.kernels[0].loops[0], &d, &HlsPredictedModel::new(), 3.33);
        assert_eq!(s.op(m).latency, 3);
        // The dependent fadd starts when the mul completes.
        assert_eq!(s.op(n).cycle, s.op(m).done_cycle());
        assert!(s.depth >= 8);
    }

    #[test]
    fn call_uses_static_latency() {
        let mut b = DesignBuilder::new("call");
        let mut pe = b.kernel("pe");
        pe.set_static_latency(5);
        {
            let mut l = pe.pipelined_loop("b", 1, 1);
            let x = l.varying_input("x", DataType::Int(32));
            l.output("y", x);
            l.finish();
        }
        let pe_id = pe.finish();
        let mut top = b.kernel("top");
        {
            let mut l = top.sequential_loop("main", 1);
            let a = l.varying_input("a", DataType::Int(32));
            let r = l.call(pe_id, vec![a], DataType::Int(32));
            l.output("o", r);
            l.finish();
        }
        top.finish();
        let d = b.finish().expect("valid");
        let s = schedule_loop(&d.kernels[1].loops[0], &d, &HlsPredictedModel::new(), 3.33);
        let call_id = InstId(1);
        assert_eq!(s.op(call_id).latency, 5);
    }

    #[test]
    fn oversized_single_op_is_a_violation() {
        let mut b = DesignBuilder::new("big");
        let mut k = b.kernel("top");
        let mut l = k.pipelined_loop("body", 4, 1);
        let a = l.varying_input("a", DataType::Int(32));
        let c = l.varying_input("c", DataType::Int(32));
        let s1 = l.add(a, c);
        l.output("o", s1);
        l.finish();
        k.finish();
        let d = b.finish().expect("valid");
        // 0.5 ns clock: even one 0.78 ns add cannot fit.
        let s = schedule_loop(&d.kernels[0].loops[0], &d, &HlsPredictedModel::new(), 0.5);
        assert_eq!(s.violations, vec![s1]);
    }

    mod properties {
        use super::*;
        use hlsb_ir::Dfg;
        use hlsb_rng::Rng;

        /// Builds a random straight-line program; `ops[i]` selects both
        /// the operation and its operand indices.
        fn random_loop(ops: &[u16]) -> Design {
            let mut b = DesignBuilder::new("prop");
            let mut k = b.kernel("top");
            let mut l = k.pipelined_loop("body", 8, 1);
            let a = l.varying_input("a", DataType::Int(32));
            let c = l.invariant_input("c", DataType::Int(32));
            let mut vals = vec![a, c];
            for &op in ops {
                let x = vals[(op as usize / 11) % vals.len()];
                let y = vals[(op as usize / 5) % vals.len()];
                let v = match op % 6 {
                    0 => l.add(x, y),
                    1 => l.sub(x, y),
                    2 => l.mul(x, y),
                    3 => l.min(x, y),
                    4 => l.xor(x, y),
                    _ => l.reg(x),
                };
                vals.push(v);
            }
            let last = *vals.last().unwrap();
            l.output("o", last);
            l.finish();
            k.finish();
            b.finish().expect("valid")
        }

        fn check_schedule(dfg: &Dfg, s: &Schedule, budget: f64) {
            // RAW order.
            for (id, inst) in dfg.iter() {
                for &dep in &inst.operands {
                    assert!(
                        s.op(dep).done_cycle() <= s.op(id).cycle,
                        "{dep} not done before {id}"
                    );
                }
            }
            // Chain budget: recompute per-cycle arrival offsets.
            let mut arr = vec![0.0f64; dfg.len()];
            for (id, inst) in dfg.iter() {
                let op = s.op(id);
                if op.latency != 0 {
                    arr[id.index()] = op.offset_ns;
                    continue;
                }
                let in_off = inst
                    .operands
                    .iter()
                    .filter(|&&d| s.op(d).done_cycle() == op.cycle)
                    .map(|&d| arr[d.index()])
                    .fold(0.0f64, f64::max);
                arr[id.index()] = in_off + op.est_delay_ns;
                assert!(
                    arr[id.index()] <= budget + 1e-9,
                    "{id} chain {:.2} exceeds budget {budget:.2}",
                    arr[id.index()]
                );
            }
        }

        fn random_ops(rng: &mut Rng, min_len: usize, max_len: usize) -> Vec<u16> {
            let len = rng.gen_u64(min_len as u64, max_len as u64) as usize;
            (0..len).map(|_| rng.gen_u64(0, 3999) as u16).collect()
        }

        #[test]
        fn schedules_respect_deps_and_budget() {
            let mut rng = Rng::seed_from_u64(0x5CED_0001);
            for _ in 0..64 {
                let ops = random_ops(&mut rng, 0, 39);
                let clock = 2.0 + rng.gen_f64() * 6.0;
                let d = random_loop(&ops);
                let lp = &d.kernels[0].loops[0];
                let s = schedule_loop(lp, &d, &HlsPredictedModel::new(), clock);
                check_schedule(&lp.body, &s, clock * CLOCK_MARGIN);
                assert!(s.depth >= 1);
                assert_eq!(s.ii, 1);
            }
        }

        #[test]
        fn alap_sinking_never_extends_depth() {
            let mut rng = Rng::seed_from_u64(0x5CED_0002);
            for _ in 0..64 {
                let ops = random_ops(&mut rng, 1, 39);
                let d = random_loop(&ops);
                let lp = &d.kernels[0].loops[0];
                let s = schedule_loop(lp, &d, &HlsPredictedModel::new(), 3.33);
                // Every op still finishes within the reported depth.
                for id in lp.body.ids() {
                    assert!(s.op(id).done_cycle() < s.depth, "ops {ops:?}");
                }
            }
        }
    }

    #[test]
    fn memory_port_pressure_raises_ii() {
        let mut b = DesignBuilder::new("ports");
        let arr = b.array("buf", DataType::Int(32), 1024, hlsb_ir::Partition::None);
        let mut k = b.kernel("top");
        let mut l = k.pipelined_loop("body", 64, 1);
        let i = l.indvar("i");
        // Five accesses to one dual-port array: II must rise to 3.
        let v0 = l.load(arr, i, DataType::Int(32));
        let v1 = l.load(arr, i, DataType::Int(32));
        let v2 = l.load(arr, i, DataType::Int(32));
        let s1 = l.add(v0, v1);
        let s2 = l.add(s1, v2);
        l.store(arr, i, s2);
        let v3 = l.load(arr, i, DataType::Int(32));
        l.output("o", v3);
        l.finish();
        k.finish();
        let d = b.finish().expect("valid");
        let s = schedule_loop(&d.kernels[0].loops[0], &d, &HlsPredictedModel::new(), 3.33);
        assert_eq!(s.ii, 3, "5 accesses / 2 ports = II 3");
    }

    #[test]
    fn depth_counts_cycles() {
        let (d, _) = add_chain(1);
        let s = schedule_loop(&d.kernels[0].loops[0], &d, &HlsPredictedModel::new(), 3.33);
        assert_eq!(s.depth, 1);
        assert_eq!(s.ii, 1);
    }
}
