//! # hlsb-sched — the HLS scheduler and broadcast-aware rescheduling
//!
//! The scheduling phase "inserts clock boundaries into the original untimed
//! specification" (paper §2). This crate provides:
//!
//! * [`schedule_loop`] — an ASAP list scheduler with operation chaining
//!   under a clock budget and multi-cycle operator latencies, equivalent in
//!   role to the Vivado HLS scheduler;
//! * [`ScheduleReport`] — the per-instruction state/cycle/delay report the
//!   paper's tool parses ("we parse the HLS scheduling reports, which
//!   include the LLVM instructions annotated with scheduled state/cycle,
//!   estimated delay, etc", §4.1);
//! * [`broadcast_aware()`] — the paper's §4.1 optimization: re-evaluate every
//!   in-cycle operation chain under the *calibrated* delay model using
//!   RAW-dependency broadcast factors, and insert register modules to split
//!   chains that violate the clock target.
//!
//! # Example
//!
//! ```
//! use hlsb_delay::HlsPredictedModel;
//! use hlsb_ir::builder::DesignBuilder;
//! use hlsb_ir::types::DataType;
//! use hlsb_sched::schedule_loop;
//!
//! # fn main() -> Result<(), hlsb_ir::IrError> {
//! let mut b = DesignBuilder::new("d");
//! let mut k = b.kernel("top");
//! let mut l = k.pipelined_loop("body", 16, 1);
//! let a = l.varying_input("a", DataType::Int(32));
//! let b2 = l.varying_input("b", DataType::Int(32));
//! let s = l.add(a, b2);
//! l.output("o", s);
//! l.finish();
//! k.finish();
//! let design = b.finish()?;
//!
//! let sched = schedule_loop(&design.kernels[0].loops[0], &design,
//!                           &HlsPredictedModel::new(), 3.33);
//! assert_eq!(sched.ii, 1);
//! # Ok(())
//! # }
//! ```

pub mod broadcast_aware;
pub mod inject;
pub mod list_sched;
pub mod report;
pub mod schedule;

pub use broadcast_aware::{broadcast_aware, BroadcastAwareOutcome, MemAccessPlan, SplitDecision};
pub use inject::{inject_registers, InjectDecision, InjectionOutcome};
pub use list_sched::{schedule_loop, CHAIN_NET_NS, CLOCK_MARGIN};
pub use report::{ReportEntry, ScheduleReport};
pub use schedule::{Schedule, ScheduledOp};
