//! Schedule reports — the structure the paper's tool parses.
//!
//! The paper injects its calibration by parsing "the HLS scheduling
//! reports, which include the LLVM instructions annotated with scheduled
//! state/cycle, estimated delay, etc." (§4.1). [`ScheduleReport`] is the
//! equivalent artifact in this reproduction: a per-instruction table with
//! cycle, estimated delay, RAW dependencies and the same-cycle broadcast
//! factor derived from them.

use crate::schedule::Schedule;
use hlsb_ir::{Dfg, InstId};
use std::fmt;

/// One row of the schedule report.
#[derive(Debug, Clone, PartialEq)]
pub struct ReportEntry {
    /// Instruction id.
    pub inst: InstId,
    /// Operation mnemonic (e.g. `sub`, `fifo.read`).
    pub op: String,
    /// Variable name, if the source carried one.
    pub name: String,
    /// Scheduled start cycle ("state").
    pub cycle: u32,
    /// Latency in cycles.
    pub latency: u32,
    /// Estimated combinational delay used by the scheduler, ns.
    pub est_delay_ns: f64,
    /// RAW dependencies (operands).
    pub raw_deps: Vec<InstId>,
    /// Same-cycle readers of this instruction's result (the broadcast
    /// factor of §4.1).
    pub broadcast_factor: usize,
}

/// A complete schedule report for one loop.
#[derive(Debug, Clone, PartialEq)]
pub struct ScheduleReport {
    /// Loop name.
    pub loop_name: String,
    /// Rows in instruction order.
    pub entries: Vec<ReportEntry>,
    /// Pipeline depth in cycles.
    pub depth: u32,
    /// Initiation interval.
    pub ii: u32,
}

impl ScheduleReport {
    /// Builds the report from a schedule and its dataflow graph.
    pub fn from_schedule(loop_name: &str, dfg: &Dfg, schedule: &Schedule) -> Self {
        let entries = dfg
            .iter()
            .map(|(id, inst)| {
                let op = schedule.op(id);
                ReportEntry {
                    inst: id,
                    op: inst.kind.to_string(),
                    name: inst.name.clone(),
                    cycle: op.cycle,
                    latency: op.latency,
                    est_delay_ns: op.est_delay_ns,
                    raw_deps: inst.operands.clone(),
                    broadcast_factor: schedule.same_cycle_readers(dfg, id),
                }
            })
            .collect();
        ScheduleReport {
            loop_name: loop_name.to_string(),
            entries,
            depth: schedule.depth,
            ii: schedule.ii,
        }
    }

    /// Entries whose result is broadcast to at least `threshold` same-cycle
    /// readers — the candidates broadcast-aware scheduling inspects.
    pub fn broadcasts(&self, threshold: usize) -> impl Iterator<Item = &ReportEntry> {
        self.entries
            .iter()
            .filter(move |e| e.broadcast_factor >= threshold)
    }
}

impl fmt::Display for ScheduleReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "== schedule report: {} (depth {}, II {}) ==",
            self.loop_name, self.depth, self.ii
        )?;
        writeln!(
            f,
            "{:>5} {:<10} {:>5} {:>4} {:>9} {:>4}  deps",
            "inst", "op", "cycle", "lat", "delay(ns)", "bf"
        )?;
        for e in &self.entries {
            let deps: Vec<String> = e.raw_deps.iter().map(ToString::to_string).collect();
            writeln!(
                f,
                "{:>5} {:<10} {:>5} {:>4} {:>9.2} {:>4}  {}",
                e.inst.to_string(),
                e.op,
                e.cycle,
                e.latency,
                e.est_delay_ns,
                e.broadcast_factor,
                deps.join(",")
            )?;
        }
        Ok(())
    }
}

/// An error from [`ScheduleReport::parse`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseReportError {
    /// 1-based line the error occurred on.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for ParseReportError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseReportError {}

impl ScheduleReport {
    /// Parses the textual form produced by the `Display` implementation —
    /// the same workflow as the paper's tool, which consumes the HLS
    /// scheduling report as text (§4.1). Names are not recoverable from
    /// the text and parse as empty.
    ///
    /// # Errors
    ///
    /// Returns a [`ParseReportError`] with the offending line on malformed
    /// input.
    pub fn parse(text: &str) -> Result<ScheduleReport, ParseReportError> {
        let err = |line: usize, message: &str| ParseReportError {
            line,
            message: message.to_string(),
        };
        let mut lines = text.lines().enumerate();

        // Header: "== schedule report: <name> (depth D, II I) =="
        let (hline, header) = lines.next().ok_or_else(|| err(1, "empty report"))?;
        let header = header
            .strip_prefix("== schedule report: ")
            .and_then(|h| h.strip_suffix(" =="))
            .ok_or_else(|| err(hline + 1, "missing report header"))?;
        let open = header
            .rfind('(')
            .ok_or_else(|| err(hline + 1, "missing (depth, II)"))?;
        let loop_name = header[..open].trim().to_string();
        let meta = header[open + 1..].trim_end_matches(')');
        let mut depth = 0u32;
        let mut ii = 0u32;
        for part in meta.split(',') {
            let part = part.trim();
            if let Some(d) = part.strip_prefix("depth ") {
                depth = d.parse().map_err(|_| err(hline + 1, "bad depth"))?;
            } else if let Some(i) = part.strip_prefix("II ") {
                ii = i.parse().map_err(|_| err(hline + 1, "bad II"))?;
            }
        }

        // Column header line.
        lines.next();

        let mut entries = Vec::new();
        for (lno, line) in lines {
            if line.trim().is_empty() {
                continue;
            }
            let cols: Vec<&str> = line.split_whitespace().collect();
            if cols.len() < 6 {
                return Err(err(lno + 1, "too few columns"));
            }
            let inst_num: u32 = cols[0]
                .trim_start_matches('%')
                .parse()
                .map_err(|_| err(lno + 1, "bad instruction id"))?;
            let parse_u32 = |s: &str, what: &str| {
                s.parse::<u32>()
                    .map_err(|_| err(lno + 1, &format!("bad {what}")))
            };
            let raw_deps = if cols.len() > 6 {
                cols[6]
                    .split(',')
                    .filter(|s| !s.is_empty())
                    .map(|s| {
                        s.trim_start_matches('%')
                            .parse::<u32>()
                            .map(InstId)
                            .map_err(|_| err(lno + 1, "bad dependency"))
                    })
                    .collect::<Result<Vec<_>, _>>()?
            } else {
                Vec::new()
            };
            entries.push(ReportEntry {
                inst: InstId(inst_num),
                op: cols[1].to_string(),
                name: String::new(),
                cycle: parse_u32(cols[2], "cycle")?,
                latency: parse_u32(cols[3], "latency")?,
                est_delay_ns: cols[4].parse().map_err(|_| err(lno + 1, "bad delay"))?,
                raw_deps,
                broadcast_factor: parse_u32(cols[5], "broadcast factor")? as usize,
            });
        }
        Ok(ScheduleReport {
            loop_name,
            entries,
            depth,
            ii,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::list_sched::schedule_loop;
    use hlsb_delay::HlsPredictedModel;
    use hlsb_ir::builder::DesignBuilder;
    use hlsb_ir::unroll::unroll_loop;
    use hlsb_ir::DataType;

    fn broadcast_design(unroll: u32) -> hlsb_ir::Design {
        let mut b = DesignBuilder::new("bc");
        let mut k = b.kernel("top");
        let mut l = k.pipelined_loop("body", 64, 1);
        l.set_unroll(unroll);
        let src = l.invariant_input("source", DataType::Int(32));
        let x = l.varying_input("x", DataType::Int(32));
        let s = l.sub(src, x);
        l.output("o", s);
        l.finish();
        k.finish();
        b.finish().expect("valid")
    }

    #[test]
    fn report_carries_broadcast_factor() {
        let d = broadcast_design(16);
        let u = unroll_loop(&d.kernels[0].loops[0]);
        let s = schedule_loop(&u.looop, &d, &HlsPredictedModel::new(), 3.33);
        let r = ScheduleReport::from_schedule("body", &u.looop.body, &s);
        // The invariant source is read by 16 same-cycle subs.
        let src_entry = r
            .entries
            .iter()
            .find(|e| e.name == "source")
            .expect("source present");
        assert_eq!(src_entry.broadcast_factor, 16);
        assert_eq!(r.broadcasts(16).count(), 1);
        assert_eq!(r.broadcasts(17).count(), 0);
    }

    #[test]
    fn display_renders_rows() {
        let d = broadcast_design(2);
        let u = unroll_loop(&d.kernels[0].loops[0]);
        let s = schedule_loop(&u.looop, &d, &HlsPredictedModel::new(), 3.33);
        let r = ScheduleReport::from_schedule("body", &u.looop.body, &s);
        let text = r.to_string();
        assert!(text.contains("schedule report: body"), "{text}");
        assert!(text.contains("sub"), "{text}");
        assert!(text.lines().count() > 5);
    }

    #[test]
    fn report_round_trips_through_text() {
        let d = broadcast_design(8);
        let u = unroll_loop(&d.kernels[0].loops[0]);
        let s = schedule_loop(&u.looop, &d, &HlsPredictedModel::new(), 3.33);
        let original = ScheduleReport::from_schedule("body", &u.looop.body, &s);
        let parsed = ScheduleReport::parse(&original.to_string()).expect("parses");
        assert_eq!(parsed.loop_name, original.loop_name);
        assert_eq!(parsed.depth, original.depth);
        assert_eq!(parsed.ii, original.ii);
        assert_eq!(parsed.entries.len(), original.entries.len());
        for (p, o) in parsed.entries.iter().zip(&original.entries) {
            assert_eq!(p.inst, o.inst);
            assert_eq!(p.op, o.op);
            assert_eq!(p.cycle, o.cycle);
            assert_eq!(p.latency, o.latency);
            assert_eq!(p.raw_deps, o.raw_deps);
            assert_eq!(p.broadcast_factor, o.broadcast_factor);
            assert!((p.est_delay_ns - o.est_delay_ns).abs() < 0.01);
        }
    }

    #[test]
    fn parse_rejects_malformed_input() {
        assert!(ScheduleReport::parse("").is_err());
        assert!(ScheduleReport::parse("not a report\n").is_err());
        let bad_row = "== schedule report: x (depth 1, II 1) ==\nheader\n%0 add one 0 0.5 1\n";
        let e = ScheduleReport::parse(bad_row).unwrap_err();
        assert_eq!(e.line, 3);
        assert!(e.to_string().contains("line 3"));
    }

    #[test]
    fn entries_align_with_instructions() {
        let d = broadcast_design(4);
        let u = unroll_loop(&d.kernels[0].loops[0]);
        let s = schedule_loop(&u.looop, &d, &HlsPredictedModel::new(), 3.33);
        let r = ScheduleReport::from_schedule("body", &u.looop.body, &s);
        assert_eq!(r.entries.len(), u.looop.body.len());
        for (i, e) in r.entries.iter().enumerate() {
            assert_eq!(e.inst.index(), i);
        }
    }
}
