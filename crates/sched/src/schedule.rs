//! Schedule data structures.

use hlsb_ir::{Dfg, InstId};

/// Scheduling result for one instruction.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScheduledOp {
    /// Start cycle (0-based).
    pub cycle: u32,
    /// Latency in cycles (0 = chains combinationally within `cycle`).
    pub latency: u32,
    /// Offset within the result's cycle at which the value is available,
    /// ns from the clock edge.
    pub offset_ns: f64,
    /// Estimated combinational delay used during scheduling, ns.
    pub est_delay_ns: f64,
}

impl ScheduledOp {
    /// Cycle in which the result becomes available.
    pub fn done_cycle(self) -> u32 {
        self.cycle + self.latency
    }
}

/// A complete schedule of one loop body.
#[derive(Debug, Clone, PartialEq)]
pub struct Schedule {
    /// Per-instruction results, indexed by [`InstId`].
    pub ops: Vec<ScheduledOp>,
    /// Pipeline depth in cycles (number of stages).
    pub depth: u32,
    /// Initiation interval in cycles.
    pub ii: u32,
    /// Clock period target the schedule was built for, ns.
    pub clock_ns: f64,
    /// Instructions whose single-operation delay exceeded the clock budget
    /// even at a fresh cycle boundary (unfixable at this clock without
    /// physical-side optimization).
    pub violations: Vec<InstId>,
}

impl Schedule {
    /// Scheduling info of one instruction.
    ///
    /// # Panics
    ///
    /// Panics if `inst` is out of bounds.
    pub fn op(&self, inst: InstId) -> ScheduledOp {
        self.ops[inst.index()]
    }

    /// Number of same-cycle readers of `def`'s value — the dynamic
    /// broadcast factor of §4.1 ("how many times a variable is read by
    /// later instructions in the same cycle").
    ///
    /// A reader counts if it *starts* in the cycle in which `def`'s value
    /// becomes available (i.e. the value is consumed through wires, not
    /// through a register).
    pub fn same_cycle_readers(&self, dfg: &Dfg, def: InstId) -> usize {
        let done = self.op(def).done_cycle();
        dfg.users(def)
            .iter()
            .filter(|&&u| self.op(u).cycle == done)
            .count()
    }

    /// Number of users of `def` that start in `cycle` — the fanout of
    /// `def`'s net into that cycle's logic.
    pub fn readers_in_cycle(&self, dfg: &Dfg, def: InstId, cycle: u32) -> usize {
        dfg.users(def)
            .iter()
            .filter(|&&u| self.op(u).cycle == cycle)
            .count()
    }

    /// The broadcast factor the delay model should see for instruction
    /// `inst`: the largest same-cycle reader count over its operands. An
    /// operand held in a register from an earlier cycle still broadcasts —
    /// the paper's Fig. 14 `curr.x` register fans out to 64 subtractors
    /// executing in one cycle — so readers are counted in *`inst`'s* start
    /// cycle, not the operand's definition cycle.
    pub fn operand_broadcast_factor(&self, dfg: &Dfg, inst: InstId) -> usize {
        let start = self.op(inst).cycle;
        dfg.raw_deps(inst)
            .iter()
            .map(|&d| self.readers_in_cycle(dfg, d, start))
            .max()
            .unwrap_or(1)
            .max(1)
    }

    /// The minimum number of cycles a pipelined execution of `iters`
    /// iterations can take under this schedule: the pipeline must fill
    /// once (`depth`) and issue the remaining iterations `ii` apart. This
    /// is the latency the schedule *report* promises; a cycle-accurate
    /// simulation may only exceed it by externally caused stalls.
    pub fn min_pipeline_cycles(&self, iters: u64) -> u64 {
        if iters == 0 {
            return 0;
        }
        u64::from(self.depth.max(1)) + (iters - 1) * u64::from(self.ii.max(1))
    }

    /// Instructions starting in each cycle (for stage-oriented consumers
    /// like RTL generation). Index = cycle.
    pub fn by_cycle(&self, dfg: &Dfg) -> Vec<Vec<InstId>> {
        let mut out = vec![Vec::new(); self.depth as usize];
        for id in dfg.ids() {
            let c = self.op(id).cycle as usize;
            if c < out.len() {
                out[c].push(id);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hlsb_ir::{DataType, OpKind};

    #[test]
    fn done_cycle_adds_latency() {
        let op = ScheduledOp {
            cycle: 3,
            latency: 2,
            offset_ns: 0.1,
            est_delay_ns: 2.0,
        };
        assert_eq!(op.done_cycle(), 5);
    }

    #[test]
    fn same_cycle_readers_counts_chained_users_only() {
        let mut dfg = Dfg::new();
        let a = dfg.push(OpKind::Input { invariant: true }, DataType::Int(32), vec![]);
        let u1 = dfg.push(OpKind::Not, DataType::Int(32), vec![a]);
        let u2 = dfg.push(OpKind::Not, DataType::Int(32), vec![a]);
        let u3 = dfg.push(OpKind::Not, DataType::Int(32), vec![a]);
        let mk = |cycle| ScheduledOp {
            cycle,
            latency: 0,
            offset_ns: 0.0,
            est_delay_ns: 0.0,
        };
        let sched = Schedule {
            ops: vec![mk(0), mk(0), mk(0), mk(1)],
            depth: 2,
            ii: 1,
            clock_ns: 3.33,
            violations: vec![],
        };
        assert_eq!(sched.same_cycle_readers(&dfg, a), 2);
        assert_eq!(sched.operand_broadcast_factor(&dfg, u1), 2);
        assert_eq!(sched.operand_broadcast_factor(&dfg, u2), 2);
        // u3 reads a through a register (different cycle): factor 1.
        assert_eq!(sched.operand_broadcast_factor(&dfg, u3), 1);
    }

    #[test]
    fn by_cycle_groups() {
        let mut dfg = Dfg::new();
        let a = dfg.push(OpKind::Input { invariant: false }, DataType::Int(8), vec![]);
        let b = dfg.push(OpKind::Not, DataType::Int(8), vec![a]);
        let mk = |cycle| ScheduledOp {
            cycle,
            latency: 0,
            offset_ns: 0.0,
            est_delay_ns: 0.0,
        };
        let sched = Schedule {
            ops: vec![mk(0), mk(1)],
            depth: 2,
            ii: 1,
            clock_ns: 3.0,
            violations: vec![],
        };
        let groups = sched.by_cycle(&dfg);
        assert_eq!(groups.len(), 2);
        assert_eq!(groups[0], vec![a]);
        assert_eq!(groups[1], vec![b]);
    }
}
