//! Self-contained deterministic pseudo-randomness for the workspace.
//!
//! The repository must build and test with no network access, so nothing
//! here may come from crates.io. This crate provides the one thing the
//! external `rand` stack was used for: a small, seedable, reproducible
//! generator for the annealing placer and the randomized test harnesses.
//!
//! The generator is xoshiro256** (Blackman & Vigna), seeded through
//! SplitMix64 — the standard pairing: SplitMix64 decorrelates low-entropy
//! seeds (0, 1, 2, ...) before they reach the xoshiro state.

/// Derives the seed of an independent stream from a base seed.
///
/// Stream 0 is the base seed itself, so a single-stream consumer (e.g. a
/// one-trial placement run) behaves exactly like a direct use of `seed`.
/// Streams `1..` are decorrelated through SplitMix64: unlike an additive
/// `seed + k·c` ladder, adjacent base seeds can never produce overlapping
/// or correlated trial sequences.
pub fn derive_seed(seed: u64, stream: u64) -> u64 {
    if stream == 0 {
        return seed;
    }
    let mut x = seed;
    let mut out = 0;
    // Mix the stream index in twice: once additively (cheap position
    // separation) and once through the mixer chain (decorrelation).
    x = x.wrapping_add(stream.wrapping_mul(0xA076_1D64_78BD_642F));
    for _ in 0..2 {
        out = splitmix64(&mut x);
    }
    out
}

/// A seedable xoshiro256** generator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Rng {
    s: [u64; 4],
}

/// SplitMix64 — small, high-quality 64-bit mixer (also used by
/// `hlsb_fabric::NoiseModel`; duplicated here to keep this crate
/// dependency-free).
pub fn splitmix64(x: &mut u64) -> u64 {
    *x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl Rng {
    /// Creates a generator from a 64-bit seed. Distinct seeds — even
    /// adjacent integers — yield decorrelated streams.
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut x = seed;
        let s = [
            splitmix64(&mut x),
            splitmix64(&mut x),
            splitmix64(&mut x),
            splitmix64(&mut x),
        ];
        Rng { s }
    }

    /// The next 64 uniformly random bits.
    pub fn next_u64(&mut self) -> u64 {
        let r = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        r
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn gen_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Bernoulli sample with probability `p` (clamped to `[0, 1]`).
    pub fn gen_bool(&mut self, p: f64) -> bool {
        self.gen_f64() < p
    }

    /// Uniform integer in `[0, n)`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn gen_index(&mut self, n: usize) -> usize {
        assert!(n > 0, "empty range");
        // Multiply-shift bounded sampling (Lemire); the slight modulo bias
        // of a plain `%` would be fine for annealing, but this is exact in
        // distribution terms for every n that fits in u64.
        let n = n as u64;
        (((self.next_u64() as u128 * n as u128) >> 64) as u64) as usize
    }

    /// Uniform `u64` in `[lo, hi]` (inclusive).
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi`.
    pub fn gen_u64(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo <= hi, "invalid range");
        let span = hi - lo;
        if span == u64::MAX {
            return self.next_u64();
        }
        lo + (((self.next_u64() as u128 * (span as u128 + 1)) >> 64) as u64)
    }

    /// Uniform `i64` in `[lo, hi]` (inclusive).
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi`.
    pub fn gen_i64(&mut self, lo: i64, hi: i64) -> i64 {
        assert!(lo <= hi, "invalid range");
        let span = (hi as i128 - lo as i128) as u64;
        if span == u64::MAX {
            return self.next_u64() as i64;
        }
        let off = ((self.next_u64() as u128 * (span as u128 + 1)) >> 64) as i128;
        (lo as i128 + off) as i64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn derive_seed_stream_zero_is_identity() {
        for seed in [0u64, 1, 7, u64::MAX] {
            assert_eq!(derive_seed(seed, 0), seed);
        }
    }

    #[test]
    fn derived_streams_decorrelate_adjacent_seeds() {
        // The old `seed + trial * 0x9E37` ladder made trial t of seed s
        // collide with trial t-1 of seed s + 0x9E37. Derived streams must
        // not collide across any nearby (seed, trial) pairs.
        let mut seen = std::collections::HashSet::new();
        for seed in 0..64u64 {
            for trial in 0..8u64 {
                assert!(
                    seen.insert(derive_seed(seed, trial)),
                    "collision at seed {seed} trial {trial}"
                );
            }
        }
    }

    #[test]
    fn derived_streams_are_deterministic() {
        assert_eq!(derive_seed(42, 3), derive_seed(42, 3));
        assert_ne!(derive_seed(42, 1), derive_seed(42, 2));
    }

    #[test]
    fn derived_streams_show_no_cross_stream_prefix_correlation() {
        // Generators seeded from sibling streams of one base seed must
        // behave as independent sequences: over 10k draws, no positional
        // collisions between any stream pair (chance ≈ 10k · 2⁻⁶⁴), and
        // no stream's opening values reappear as a contiguous window of
        // another — i.e. streams are not lagged copies of each other.
        const DRAWS: usize = 10_000;
        let base = 0xD1F_F00Du64;
        let streams: Vec<Vec<u64>> = (0..4u64)
            .map(|s| {
                let mut rng = Rng::seed_from_u64(derive_seed(base, s));
                (0..DRAWS).map(|_| rng.next_u64()).collect()
            })
            .collect();
        for a in 0..streams.len() {
            for b in (a + 1)..streams.len() {
                let positional = streams[a]
                    .iter()
                    .zip(&streams[b])
                    .filter(|(x, y)| x == y)
                    .count();
                assert_eq!(positional, 0, "streams {a}/{b} agree positionally");
                let prefix: &[u64] = &streams[b][..8];
                assert!(
                    !streams[a].windows(prefix.len()).any(|w| w == prefix),
                    "stream {a} contains stream {b}'s opening draws: \
                     the streams are lagged copies"
                );
            }
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let mut a = Rng::seed_from_u64(7);
        let mut b = Rng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn adjacent_seeds_decorrelate() {
        let mut a = Rng::seed_from_u64(0);
        let mut b = Rng::seed_from_u64(1);
        let same = (0..1000).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = Rng::seed_from_u64(3);
        for _ in 0..10_000 {
            let x = r.gen_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn bool_frequency_tracks_p() {
        let mut r = Rng::seed_from_u64(11);
        let hits = (0..100_000).filter(|_| r.gen_bool(0.3)).count();
        assert!((28_000..32_000).contains(&hits), "{hits}");
    }

    #[test]
    fn index_covers_range() {
        let mut r = Rng::seed_from_u64(5);
        let mut seen = [false; 10];
        for _ in 0..1_000 {
            seen[r.gen_index(10)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn inclusive_ranges_hit_both_ends() {
        let mut r = Rng::seed_from_u64(9);
        let mut lo_hit = false;
        let mut hi_hit = false;
        for _ in 0..10_000 {
            match r.gen_i64(-3, 3) {
                -3 => lo_hit = true,
                3 => hi_hit = true,
                v => assert!((-3..=3).contains(&v)),
            }
        }
        assert!(lo_hit && hi_hit);
        for _ in 0..100 {
            let v = r.gen_u64(10, 10);
            assert_eq!(v, 10);
        }
    }
}
