//! The untimed golden evaluator.
//!
//! Runs the [`hlsb_ir::interp::Interpreter`] over the loop bodies a flow's
//! front-end produced (unrolled, dead-code-eliminated, possibly dataflow
//! split) and collects the observable trace. This is the functional
//! reference the timed simulator ([`crate::timed`]) is differenced
//! against: both call the *same* `run_iteration`, so any trace divergence
//! is a transformation bug, not an interpreter discrepancy.

use crate::stim::{IoTrace, Stimulus};
use hlsb_ir::interp::Interpreter;
use hlsb_ir::{Design, Loop, OpKind};
use std::collections::HashSet;

/// Kernel indices that are invoked via `call` from some loop body.
///
/// Called kernels (PEs) execute only inside the caller's `call`
/// evaluation; running them standalone would double-count their effects.
pub fn called_kernels(bodies: &[Vec<Loop>]) -> HashSet<usize> {
    let mut called = HashSet::new();
    for loops in bodies {
        for lp in loops {
            for (_, inst) in lp.body.iter() {
                if let OpKind::Call(kid) = inst.kind {
                    called.insert(kid.index());
                }
            }
        }
    }
    called
}

/// The number of iterations a simulation actually runs for a loop: the
/// trip count, capped so benchmarks with million-iteration loops stay
/// cheap. Golden and timed backends must use the same cap.
pub fn capped_iters(lp: &Loop, cap: u64) -> u64 {
    lp.trip_count.min(cap.max(1))
}

/// Evaluates a design functionally: every standalone (not `call`ed)
/// kernel in declaration order, every loop in sequence, `capped_iters`
/// iterations each, against one shared I/O state.
///
/// `bodies[kernel][loop]` must describe the same design `design` does —
/// normally the front-end's unrolled loop list (`FrontEndArtifact`
/// ordering), but any behaviour-preserving refinement (e.g. scheduled
/// bodies with inserted registers) is valid too.
///
/// # Panics
///
/// Panics if `bodies` references arrays/FIFOs/kernels missing from
/// `design` (verify the design first).
pub fn golden_trace(design: &Design, bodies: &[Vec<Loop>], stim: &Stimulus, cap: u64) -> IoTrace {
    let interp = Interpreter::new(design);
    let called = called_kernels(bodies);
    let mut io = stim.to_io();
    for (k, loops) in bodies.iter().enumerate() {
        if called.contains(&k) {
            continue;
        }
        for lp in loops {
            interp.run_loop(lp, capped_iters(lp, cap), &mut io);
        }
    }
    IoTrace::from_io(&io)
}

#[cfg(test)]
mod tests {
    use super::*;
    use hlsb_ir::builder::DesignBuilder;
    use hlsb_ir::DataType;

    /// A caller kernel plus a PE kernel invoked via `call`.
    fn design_with_pe() -> Design {
        let mut b = DesignBuilder::new("pe");
        let fin = b.fifo("in", DataType::Int(32), 2);
        let fout = b.fifo("out", DataType::Int(32), 2);
        let mut pe = b.kernel("pe");
        pe.set_static_latency(3);
        {
            let mut l = pe.pipelined_loop("body", 1, 1);
            let x = l.varying_input("x", DataType::Int(32));
            let y = l.mul(x, x);
            l.output("sq", y);
            l.finish();
        }
        let pe_id = pe.finish();
        let mut k = b.kernel("top");
        let mut l = k.pipelined_loop("main", 6, 1);
        let x = l.fifo_read(fin, DataType::Int(32));
        let r = l.call(pe_id, vec![x], DataType::Int(32));
        l.fifo_write(fout, r);
        l.finish();
        k.finish();
        b.finish().unwrap()
    }

    #[test]
    fn called_kernels_are_not_run_standalone() {
        let d = design_with_pe();
        let bodies: Vec<Vec<Loop>> = d.kernels.iter().map(|k| k.loops.clone()).collect();
        assert_eq!(called_kernels(&bodies), HashSet::from([0]));

        let mut stim = Stimulus::default();
        stim.fifo_inputs.insert(0, vec![2, -3, 4, 0, 5, 1]);
        let trace = golden_trace(&d, &bodies, &stim, 64);
        // Only the squared stream from the caller; the PE's own `sq`
        // output is internal to each call activation.
        assert_eq!(trace.fifo_outputs[&1], vec![4, 9, 16, 0, 25, 1]);
        assert!(!trace.outputs.contains_key("sq"));
    }

    #[test]
    fn iteration_cap_bounds_work() {
        let d = design_with_pe();
        let bodies: Vec<Vec<Loop>> = d.kernels.iter().map(|k| k.loops.clone()).collect();
        assert_eq!(capped_iters(&d.kernels[1].loops[0], 4), 4);
        assert_eq!(capped_iters(&d.kernels[1].loops[0], 100), 6);

        let stim = Stimulus::seeded(&d, 1, 8);
        let t4 = golden_trace(&d, &bodies, &stim, 4);
        assert_eq!(t4.fifo_outputs[&1].len(), 4);
    }
}
