//! The cycle-accurate timed simulator.
//!
//! Executes a scheduled design cycle by cycle under one of the paper's two
//! pipeline-control disciplines:
//!
//! * [`ControlModel::Stall`] — the conventional stall broadcast (Fig. 8):
//!   when a committed write would overflow a full output FIFO, the *whole
//!   loop* freezes for the cycle (every stage, every register — the very
//!   broadcast whose fanout the paper measures);
//! * [`ControlModel::Skid`] — skid-buffer control (Fig. 11): the pipeline
//!   never freezes; data exiting the pipe lands in a bounded per-FIFO skid
//!   buffer and the *front gate alone* decides whether a new iteration may
//!   issue, using one of the [`GatePolicy`] realizations from `hlsb-ctrl`.
//!
//! # Value/timing separation
//!
//! Functional values are computed **atomically at issue** by the shared
//! [`hlsb_ir::interp::Interpreter::run_iteration`] — the same code path
//! the golden evaluator uses — against one global I/O state. Timing
//! (issue gating, commit cycles, stalls, skid occupancy) is tracked with
//! value-less tokens that can never alter the data. Per-FIFO trace order
//! therefore equals the writer loop's iteration order, which is exactly
//! the golden order: any trace divergence indicates a broken
//! transformation, not a modelling artefact.
//!
//! # Synchronization (§4.2)
//!
//! Loops invoking two or more PEs record the done-wait fan-in with and
//! without pruning via [`hlsb_sync::prune::prune_sync`]; because pruning
//! only drops waits that are dominated by the longest static latency, the
//! pruned and full wait latencies must be equal —
//! [`check_latency`] enforces this.

use crate::golden::capped_iters;
use crate::stim::{IoTrace, Stimulus};
use hlsb_ctrl::sim::GatePolicy;
use hlsb_ir::interp::Interpreter;
use hlsb_ir::{Concurrency, Design, OpKind};
use hlsb_rtlgen::{ScheduledLoop, GATE_PIPELINE};
use hlsb_sync::prune::{prune_sync, ModuleSync};
use std::collections::{BTreeMap, HashSet, VecDeque};

/// Consecutive cycles without any global progress before the simulator
/// declares deadlock. Longer than one full period of the consumer-ready
/// mask (64 cycles), so intermittent consumers are never misdiagnosed.
const WATCHDOG_IDLE: u64 = 130;

/// Pipeline-control discipline to simulate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ControlModel {
    /// Global stall broadcast (paper Fig. 8).
    Stall,
    /// Skid-buffer control (paper Fig. 11) under the given front-gate
    /// policy. The min-area multi-level buffer split changes *where*
    /// buffers sit and how many bits they cost — not the cycle behaviour —
    /// so both skid variants of `OptimizationOptions` map here.
    Skid {
        /// How the front gate decides to accept a new iteration.
        gate: GatePolicy,
    },
}

impl ControlModel {
    /// The default skid model (credit-gated, as generated RTL uses).
    pub fn skid() -> Self {
        ControlModel::Skid {
            gate: GatePolicy::Credit,
        }
    }
}

/// Knobs of a timed simulation run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SimOptions {
    /// Pipeline-control discipline.
    pub control: ControlModel,
    /// Whether §4.2 synchronization pruning is enabled (affects the
    /// recorded done-wait fan-in, not the latency — that equality is the
    /// point).
    pub sync_pruning: bool,
    /// Per-loop iteration cap; benchmarks with 2^20-iteration loops
    /// simulate only this many iterations. Must match the golden run.
    pub iters_cap: u64,
    /// Hard cycle bound (safety net for broken designs).
    pub max_cycles: u64,
    /// Capacity of external output FIFOs; `None` uses each FIFO's
    /// declared depth.
    pub out_fifo_capacity: Option<u64>,
    /// 64-cycle consumer readiness pattern: the consumer of external
    /// output FIFO `f` pops in cycle `c` iff bit `(c + f) % 64` is set.
    /// `u64::MAX` = always ready; sparse masks create back-pressure.
    pub out_ready_mask: u64,
}

impl Default for SimOptions {
    fn default() -> Self {
        SimOptions {
            control: ControlModel::Stall,
            sync_pruning: false,
            iters_cap: 48,
            max_cycles: 100_000,
            out_fifo_capacity: None,
            out_ready_mask: u64::MAX,
        }
    }
}

/// Per-loop timing report of a finished run.
#[derive(Debug, Clone, PartialEq)]
pub struct LoopReport {
    /// Kernel index in the simulated design.
    pub kernel: usize,
    /// Loop index within the kernel.
    pub looop: usize,
    /// Loop name.
    pub name: String,
    /// Iterations executed (trip count after the cap).
    pub iterations: u64,
    /// Schedule-reported pipeline depth.
    pub depth: u32,
    /// Schedule-reported initiation interval.
    pub ii: u32,
    /// Whether the loop is pipelined.
    pub pipelined: bool,
    /// Modelled pipe length: `max(depth, last write cycle + 1)`. Equals
    /// `depth` for any self-consistent schedule; exceeding it means the
    /// schedule's depth field lies about its own write cycles.
    pub pipe_len: u64,
    /// Cycle of the first issued iteration.
    pub first_issue: Option<u64>,
    /// Cycle the loop finished (all tokens retired, skid drained).
    pub done_cycle: Option<u64>,
    /// Cycles the loop was frozen by the stall broadcast.
    pub stall_cycles: u64,
    /// Cycles an issue (or drain) was due but gated: closed front gate,
    /// missing upstream tokens, or end-of-run skid drain.
    pub gated_cycles: u64,
    /// Peak skid-buffer occupancy across the loop's written FIFOs, words.
    pub skid_peak: u64,
    /// Whether a skid buffer exceeded its capacity bound (control bug).
    pub skid_overflow: bool,
    /// PE `done` signals entering synchronization (0 for < 2 calls).
    pub sync_inputs: usize,
    /// PE `done` signals actually waited on after optional pruning.
    pub sync_waited: usize,
    /// Longest static PE latency over the full wait set.
    pub sync_latency_full: Option<u64>,
    /// Longest static PE latency over the pruned wait set. Must equal
    /// the full-set latency (§4.2's correctness argument).
    pub sync_latency_pruned: Option<u64>,
}

impl LoopReport {
    /// Busy cycles: first issue through completion, inclusive.
    pub fn busy_cycles(&self) -> u64 {
        match (self.first_issue, self.done_cycle) {
            (Some(a), Some(b)) => b - a + 1,
            _ => 0,
        }
    }

    /// The schedule's promised minimum latency for the executed
    /// iteration count.
    pub fn min_cycles(&self) -> u64 {
        if self.iterations == 0 {
            return 0;
        }
        u64::from(self.depth.max(1)) + (self.iterations - 1) * u64::from(self.ii.max(1))
    }
}

/// Result of a timed simulation.
#[derive(Debug, Clone, PartialEq)]
pub struct TimedOutcome {
    /// Observable outputs, in per-FIFO iteration order.
    pub trace: IoTrace,
    /// Cycle count at completion (or at abort).
    pub cycles: u64,
    /// Whether every loop ran to completion within `max_cycles`.
    pub finished: bool,
    /// Whether the watchdog detected a cycle without possible progress.
    pub deadlocked: bool,
    /// Per-loop reports, in (kernel, loop) order, standalone loops only.
    pub per_loop: Vec<LoopReport>,
}

/// A value-less in-flight iteration: `progress` cycles traversed,
/// `next_event` indexing into the loop's precomputed write events.
#[derive(Debug, Clone, Copy)]
struct Token {
    progress: u64,
    next_event: usize,
}

/// How the simulator treats a FIFO.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum FifoKind {
    /// Read but never written: stimulus, always ready.
    ExternalIn,
    /// Written but never read: bounded, drained by the consumer model.
    ExternalOut,
    /// Written and read by simulated loops: token-gated in dataflow
    /// designs, unbounded (rate mismatches surface as gating, not
    /// deadlock — matching the functional model, where reads never
    /// depend on writes).
    Internal,
}

#[derive(Debug)]
struct FifoRt {
    kind: FifoKind,
    /// Committed, not-yet-consumed words.
    occ: u64,
    /// Capacity (external outputs only).
    cap: u64,
    /// Standalone loops still to finish among this FIFO's writers.
    writers_remaining: usize,
}

struct LoopRt<'a> {
    kernel: usize,
    sl: &'a ScheduledLoop,
    iters: u64,
    pipelined: bool,
    ii: u64,
    pipe_len: u64,
    /// (relative commit cycle, fifo) per iteration, ascending.
    events: Vec<(u64, usize)>,
    /// Words written per iteration.
    words_per_iter: u64,
    /// (fifo, reads per iteration) for token-gated upstream FIFOs.
    gated_reads: Vec<(usize, u64)>,
    /// Credit capacity in outstanding iterations.
    capacity_iters: u64,
    tokens: VecDeque<Token>,
    /// Skid occupancy per written fifo, words.
    skid: BTreeMap<usize, u64>,
    skid_total: u64,
    /// Skid emptiness registered at the last cycle boundary (for
    /// [`GatePolicy::RegisteredEmpty`]).
    skid_empty_reg: bool,
    issued: u64,
    last_issue: Option<u64>,
    done: bool,
    report: LoopReport,
}

impl LoopRt<'_> {
    fn outstanding_iters(&self) -> u64 {
        self.tokens.len() as u64 + self.skid_total.div_ceil(self.words_per_iter.max(1))
    }
}

/// Simulates `design` cycle-accurately. `loops[kernel][loop]` are the
/// scheduled loops of the *same* design (the `ScheduleArtifact` /
/// `ScheduledDesign` layout); kernels only reachable via `call` are
/// modelled inside their caller's iterations, not as standalone loops.
///
/// # Panics
///
/// Panics if `loops` does not cover every kernel of `design` or
/// references entities missing from it (verify the design first).
pub fn simulate_design(
    design: &Design,
    loops: &[Vec<ScheduledLoop>],
    stim: &Stimulus,
    opts: &SimOptions,
) -> TimedOutcome {
    assert_eq!(
        loops.len(),
        design.kernels.len(),
        "schedule layout must cover every kernel"
    );
    let interp = Interpreter::new(design);
    let mut io = stim.to_io();

    // Which kernels run standalone (everything not a `call` target).
    let mut called: HashSet<usize> = HashSet::new();
    for kls in loops {
        for sl in kls {
            for (_, inst) in sl.looop.body.iter() {
                if let OpKind::Call(kid) = inst.kind {
                    called.insert(kid.index());
                }
            }
        }
    }

    // FIFO classification over standalone loops only.
    let nfifos = design.fifos.len();
    let mut written = vec![0usize; nfifos];
    let mut read = vec![false; nfifos];
    for (k, kls) in loops.iter().enumerate() {
        if called.contains(&k) {
            continue;
        }
        for sl in kls {
            let mut writes_here = vec![false; nfifos];
            for (_, inst) in sl.looop.body.iter() {
                match inst.kind {
                    OpKind::FifoWrite(f) => writes_here[f.index()] = true,
                    OpKind::FifoRead(f) => read[f.index()] = true,
                    _ => {}
                }
            }
            for (f, w) in writes_here.iter().enumerate() {
                written[f] += usize::from(*w);
            }
        }
    }
    let mut fifos: Vec<FifoRt> = (0..nfifos)
        .map(|f| {
            let kind = match (written[f] > 0, read[f]) {
                (true, true) => FifoKind::Internal,
                (true, false) => FifoKind::ExternalOut,
                _ => FifoKind::ExternalIn,
            };
            FifoRt {
                kind,
                occ: 0,
                cap: opts
                    .out_fifo_capacity
                    .unwrap_or(design.fifos[f].depth as u64)
                    .max(1),
                writers_remaining: written[f],
            }
        })
        .collect();

    // Build per-loop runtimes.
    let dataflow = design.concurrency == Concurrency::Dataflow;
    let mut rts: Vec<LoopRt<'_>> = Vec::new();
    for (k, kls) in loops.iter().enumerate() {
        if called.contains(&k) {
            continue;
        }
        for (li, sl) in kls.iter().enumerate() {
            rts.push(build_rt(design, k, li, sl, &fifos, dataflow, opts));
        }
    }

    // Bounded FIFOs must at least admit one cycle's worth of commits, or
    // the stall broadcast could freeze forever on a burst (e.g. an
    // unrolled loop committing `u` words to one FIFO in one cycle).
    for rt in &rts {
        let mut per_cycle: BTreeMap<(u64, usize), u64> = BTreeMap::new();
        for &(rel, f) in &rt.events {
            *per_cycle.entry((rel, f)).or_insert(0) += 1;
        }
        for (&(_, f), &n) in &per_cycle {
            fifos[f].cap = fifos[f].cap.max(n + 1);
        }
    }

    // Execution pointers: dataflow kernels run concurrently (one active
    // loop each, loops within a kernel still sequential); sequential
    // designs run one loop at a time across the whole design.
    let mut kernel_ptr: BTreeMap<usize, usize> = BTreeMap::new(); // kernel -> rt idx base
    for (i, rt) in rts.iter().enumerate() {
        kernel_ptr.entry(rt.kernel).or_insert(i);
    }
    let mut seq_ptr = 0usize;

    let ready = |cycle: u64, f: usize| (opts.out_ready_mask >> ((cycle + f as u64) % 64)) & 1 == 1;

    let mut cycles = opts.max_cycles;
    let mut finished = false;
    let mut deadlocked = false;
    let mut idle = 0u64;

    for cycle in 0..opts.max_cycles {
        if rts.iter().all(|rt| rt.done) {
            cycles = cycle;
            finished = true;
            break;
        }
        let mut progressed = false;

        // 1. Consumers pop external output FIFOs.
        for (f, fifo) in fifos.iter_mut().enumerate() {
            if fifo.kind == FifoKind::ExternalOut && fifo.occ > 0 && ready(cycle, f) {
                fifo.occ -= 1;
                progressed = true;
            }
        }

        // 2. Skid buffers drain one word per (loop, fifo) into their FIFO.
        for rt in rts.iter_mut() {
            if rt.skid_total == 0 {
                continue;
            }
            for (&f, occ) in rt.skid.iter_mut() {
                if *occ == 0 {
                    continue;
                }
                let fifo = &mut fifos[f];
                if fifo.kind != FifoKind::ExternalOut || fifo.occ < fifo.cap {
                    *occ -= 1;
                    rt.skid_total -= 1;
                    fifo.occ += 1;
                    progressed = true;
                }
            }
        }

        // 3. Active loops advance and issue.
        let active: Vec<usize> = if dataflow {
            kernel_ptr.values().copied().collect()
        } else {
            (seq_ptr < rts.len())
                .then_some(seq_ptr)
                .into_iter()
                .collect()
        };
        for ri in active {
            let rt = &mut rts[ri];
            if rt.done {
                continue;
            }

            // Stall broadcast: would any commit of this cycle overflow a
            // bounded FIFO? Then the whole loop freezes.
            let stall_mode = matches!(opts.control, ControlModel::Stall);
            let mut frozen = false;
            if stall_mode {
                let mut incoming: BTreeMap<usize, u64> = BTreeMap::new();
                for t in &rt.tokens {
                    let mut e = t.next_event;
                    while e < rt.events.len() && rt.events[e].0 == t.progress {
                        *incoming.entry(rt.events[e].1).or_insert(0) += 1;
                        e += 1;
                    }
                }
                frozen = incoming.iter().any(|(&f, &n)| {
                    fifos[f].kind == FifoKind::ExternalOut && fifos[f].occ + n > fifos[f].cap
                });
            }

            if frozen {
                rt.report.stall_cycles += 1;
            } else {
                // Advance every in-flight token, firing due commits.
                let mut advanced = false;
                for t in rt.tokens.iter_mut() {
                    while t.next_event < rt.events.len() && rt.events[t.next_event].0 == t.progress
                    {
                        let f = rt.events[t.next_event].1;
                        t.next_event += 1;
                        match opts.control {
                            ControlModel::Stall => fifos[f].occ += 1,
                            ControlModel::Skid { .. } => {
                                let cap =
                                    (rt.pipe_len + 1 + GATE_PIPELINE) * rt.words_per_iter.max(1);
                                let occ = rt.skid.entry(f).or_insert(0);
                                *occ += 1;
                                rt.skid_total += 1;
                                if *occ > cap {
                                    rt.report.skid_overflow = true;
                                }
                                rt.report.skid_peak = rt.report.skid_peak.max(rt.skid_total);
                            }
                        }
                    }
                    t.progress += 1;
                    advanced = true;
                }
                while rt.tokens.front().is_some_and(|t| t.progress >= rt.pipe_len) {
                    rt.tokens.pop_front();
                }
                progressed |= advanced;

                // Issue the next iteration?
                let due = rt.issued < rt.iters
                    && rt.last_issue.is_none_or(|li| cycle - li >= rt.ii)
                    && (rt.pipelined || rt.tokens.is_empty());
                if due {
                    let gate_open = match opts.control {
                        ControlModel::Stall => true,
                        ControlModel::Skid { gate } => match gate {
                            GatePolicy::Credit => rt.outstanding_iters() < rt.capacity_iters,
                            GatePolicy::RegisteredEmpty => rt.skid_empty_reg,
                        },
                    };
                    let inputs_ready = rt
                        .gated_reads
                        .iter()
                        .all(|&(f, need)| fifos[f].occ >= need || fifos[f].writers_remaining == 0);
                    if gate_open && inputs_ready {
                        for &(f, need) in &rt.gated_reads {
                            fifos[f].occ = fifos[f].occ.saturating_sub(need);
                        }
                        interp.run_iteration(&rt.sl.looop, rt.issued, &mut io);
                        rt.tokens.push_back(Token {
                            progress: 0,
                            next_event: 0,
                        });
                        rt.issued += 1;
                        rt.report.first_issue.get_or_insert(cycle);
                        rt.last_issue = Some(cycle);
                        progressed = true;
                    } else {
                        rt.report.gated_cycles += 1;
                    }
                } else if rt.issued == rt.iters && rt.tokens.is_empty() && rt.skid_total > 0 {
                    // End-of-run skid drain.
                    rt.report.gated_cycles += 1;
                }
            }
            rt.skid_empty_reg = rt.skid_total == 0;

            // Completion: everything issued, in flight, and drained.
            if rt.issued == rt.iters && rt.tokens.is_empty() && rt.skid_total == 0 {
                rt.done = true;
                rt.report.done_cycle = Some(cycle);
                if rt.report.first_issue.is_none() {
                    // Zero-iteration loop: never busy.
                    rt.report.done_cycle = None;
                }
                let written: HashSet<usize> = rt.events.iter().map(|&(_, f)| f).collect();
                for f in written {
                    fifos[f].writers_remaining = fifos[f].writers_remaining.saturating_sub(1);
                }
                let kernel = rt.kernel;
                progressed = true;
                // Advance the execution pointer.
                if dataflow {
                    let next = ri + 1;
                    if rts.get(next).is_some_and(|n| n.kernel == kernel) {
                        kernel_ptr.insert(kernel, next);
                    } else {
                        kernel_ptr.remove(&kernel);
                    }
                } else {
                    seq_ptr = ri + 1;
                }
            }
        }

        if progressed {
            idle = 0;
        } else {
            idle += 1;
            if idle > WATCHDOG_IDLE {
                cycles = cycle;
                deadlocked = true;
                break;
            }
        }
    }

    TimedOutcome {
        trace: IoTrace::from_io(&io),
        cycles,
        finished,
        deadlocked,
        per_loop: rts.into_iter().map(|rt| rt.report).collect(),
    }
}

/// Precomputes the static per-loop runtime (events, gating, sync).
fn build_rt<'a>(
    design: &Design,
    kernel: usize,
    index: usize,
    sl: &'a ScheduledLoop,
    fifos: &[FifoRt],
    dataflow: bool,
    opts: &SimOptions,
) -> LoopRt<'a> {
    let lp = &sl.looop;
    let schedule = &sl.schedule;
    let iters = capped_iters(lp, opts.iters_cap);

    // Commit events and upstream read counts.
    let mut events: Vec<(u64, usize)> = Vec::new();
    let mut reads: BTreeMap<usize, u64> = BTreeMap::new();
    let mut writes_here: HashSet<usize> = HashSet::new();
    let mut calls: Vec<Option<u64>> = Vec::new();
    for (id, inst) in lp.body.iter() {
        match inst.kind {
            OpKind::FifoWrite(f) => {
                events.push((u64::from(schedule.op(id).done_cycle()), f.index()));
                writes_here.insert(f.index());
            }
            OpKind::FifoRead(f) => *reads.entry(f.index()).or_insert(0) += 1,
            OpKind::Call(kid) => calls.push(design.kernel(kid).static_latency),
            _ => {}
        }
    }
    events.sort_unstable();
    let words_per_iter = events.len() as u64;
    let max_rel = events.last().map_or(0, |&(rel, _)| rel + 1);
    let pipe_len = u64::from(schedule.depth.max(1)).max(max_rel);

    // Token gating: only dataflow designs synchronize through FIFOs, and
    // a loop never waits on its own writes.
    let gated_reads: Vec<(usize, u64)> = if dataflow {
        reads
            .iter()
            .filter(|&(&f, _)| fifos[f].kind == FifoKind::Internal && !writes_here.contains(&f))
            .map(|(&f, &n)| (f, n))
            .collect()
    } else {
        Vec::new()
    };

    // Synchronization fan-in (≥ 2 parallel PE calls).
    let (sync_inputs, sync_waited, sync_full, sync_pruned) = if calls.len() >= 2 {
        let modules: Vec<ModuleSync> = calls
            .iter()
            .enumerate()
            .map(|(i, lat)| ModuleSync {
                name: format!("pe{i}"),
                latency: *lat,
            })
            .collect();
        let plan = prune_sync(&modules);
        let max_of = |idxs: &[usize]| idxs.iter().filter_map(|&i| calls[i]).max();
        let full: Vec<usize> = (0..calls.len()).collect();
        let waited = if opts.sync_pruning {
            plan.wait.len()
        } else {
            calls.len()
        };
        (calls.len(), waited, max_of(&full), max_of(&plan.wait))
    } else {
        (0, 0, None, None)
    };

    let ii = u64::from(schedule.ii.max(1));
    LoopRt {
        kernel,
        sl,
        iters,
        pipelined: lp.is_pipelined(),
        ii,
        pipe_len,
        events,
        words_per_iter,
        gated_reads,
        capacity_iters: pipe_len + 1 + GATE_PIPELINE,
        tokens: VecDeque::new(),
        skid: BTreeMap::new(),
        skid_total: 0,
        skid_empty_reg: true,
        issued: 0,
        last_issue: None,
        done: false,
        report: LoopReport {
            kernel,
            looop: index,
            name: lp.name.clone(),
            iterations: iters,
            depth: schedule.depth,
            ii: schedule.ii,
            pipelined: lp.is_pipelined(),
            pipe_len,
            first_issue: None,
            done_cycle: None,
            stall_cycles: 0,
            gated_cycles: 0,
            skid_peak: 0,
            skid_overflow: false,
            sync_inputs,
            sync_waited,
            sync_latency_full: sync_full,
            sync_latency_pruned: sync_pruned,
        },
    }
}

/// Checks a timed outcome against the schedule's latency promises:
///
/// * the run finished without deadlock;
/// * no skid buffer overflowed its §4.3 capacity bound;
/// * every loop's busy window is at least the schedule's minimum
///   (`depth + (iters-1)·II`) and at most that minimum plus every
///   *accounted* delay (stall cycles, gate cycles) and a small constant
///   slack — so a schedule whose `depth` under-reports its own commit
///   cycles is caught as an unexplained latency excess;
/// * pruned and full synchronization wait latencies agree (§4.2).
pub fn check_latency(outcome: &TimedOutcome) -> Result<(), String> {
    if outcome.deadlocked {
        return Err(format!("deadlock at cycle {}", outcome.cycles));
    }
    if !outcome.finished {
        return Err(format!("did not finish within {} cycles", outcome.cycles));
    }
    for r in &outcome.per_loop {
        if r.iterations == 0 {
            continue;
        }
        if r.skid_overflow {
            return Err(format!("loop {}: skid buffer overflow", r.name));
        }
        let busy = r.busy_cycles();
        let min = r.min_cycles();
        if busy < min {
            return Err(format!(
                "loop {}: busy {busy} cycles < schedule minimum {min}",
                r.name
            ));
        }
        let slack = GATE_PIPELINE + 6;
        let max = min + r.stall_cycles + r.gated_cycles + slack;
        if busy > max {
            return Err(format!(
                "loop {}: busy {busy} cycles > explained maximum {max} \
                 (min {min} + stalls {} + gated {} + slack {slack})",
                r.name, r.stall_cycles, r.gated_cycles
            ));
        }
        if let (Some(full), Some(pruned)) = (r.sync_latency_full, r.sync_latency_pruned) {
            if full != pruned {
                return Err(format!(
                    "loop {}: pruned sync latency {pruned} != full {full}",
                    r.name
                ));
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::golden::golden_trace;
    use hlsb_ir::builder::DesignBuilder;
    use hlsb_ir::{DataType, Loop};
    use hlsb_sched::{MemAccessPlan, Schedule, ScheduledOp};

    /// A trivially valid ASAP schedule: one instruction per cycle,
    /// latency 0 everywhere (depth = body length).
    fn naive_schedule(lp: &Loop) -> Schedule {
        let n = lp.body.len().max(1) as u32;
        Schedule {
            ops: (0..lp.body.len())
                .map(|i| ScheduledOp {
                    cycle: i as u32,
                    latency: 0,
                    offset_ns: 0.0,
                    est_delay_ns: 0.0,
                })
                .collect(),
            depth: n,
            ii: if lp.is_pipelined() { 1 } else { n },
            clock_ns: 3.0,
            violations: vec![],
        }
    }

    fn scheduled(design: &Design) -> Vec<Vec<ScheduledLoop>> {
        design
            .kernels
            .iter()
            .map(|k| {
                k.loops
                    .iter()
                    .map(|lp| ScheduledLoop {
                        schedule: naive_schedule(lp),
                        looop: lp.clone(),
                        mem_plan: MemAccessPlan::default(),
                    })
                    .collect()
            })
            .collect()
    }

    fn bodies(design: &Design) -> Vec<Vec<Loop>> {
        design.kernels.iter().map(|k| k.loops.clone()).collect()
    }

    /// in -> (x + x) -> out, 10 iterations.
    fn doubler() -> Design {
        let mut b = DesignBuilder::new("t");
        let fin = b.fifo("in", DataType::Int(32), 2);
        let fout = b.fifo("out", DataType::Int(32), 2);
        let mut k = b.kernel("top");
        let mut l = k.pipelined_loop("main", 10, 1);
        let x = l.fifo_read(fin, DataType::Int(32));
        let y = l.add(x, x);
        l.fifo_write(fout, y);
        l.finish();
        k.finish();
        b.finish().unwrap()
    }

    #[test]
    fn all_control_models_match_golden() {
        let d = doubler();
        let loops = scheduled(&d);
        let stim = Stimulus::seeded(&d, 3, 10);
        let golden = golden_trace(&d, &bodies(&d), &stim, 64);
        for (control, mask) in [
            (ControlModel::Stall, u64::MAX),
            (ControlModel::Stall, 0xAAAA_AAAA_AAAA_AAAA),
            (ControlModel::skid(), u64::MAX),
            (ControlModel::skid(), 0xAAAA_AAAA_AAAA_AAAA),
            (
                ControlModel::Skid {
                    gate: GatePolicy::RegisteredEmpty,
                },
                0x9249_2492_4924_9249,
            ),
        ] {
            let opts = SimOptions {
                control,
                out_ready_mask: mask,
                ..SimOptions::default()
            };
            let out = simulate_design(&d, &loops, &stim, &opts);
            assert!(out.finished, "{control:?} mask {mask:#x}");
            assert_eq!(out.trace.diff(&golden), None, "{control:?} mask {mask:#x}");
            check_latency(&out).unwrap_or_else(|e| panic!("{control:?} mask {mask:#x}: {e}"));
        }
    }

    #[test]
    fn back_pressure_is_accounted_not_hidden() {
        let d = doubler();
        let loops = scheduled(&d);
        let stim = Stimulus::seeded(&d, 5, 10);
        // Consumer ready 1 cycle in 4: the pipeline must throttle.
        let mask = 0x1111_1111_1111_1111u64;
        let stall = simulate_design(
            &d,
            &loops,
            &stim,
            &SimOptions {
                out_ready_mask: mask,
                ..SimOptions::default()
            },
        );
        assert!(stall.per_loop[0].stall_cycles > 0);
        check_latency(&stall).unwrap();

        let skid = simulate_design(
            &d,
            &loops,
            &stim,
            &SimOptions {
                control: ControlModel::skid(),
                out_ready_mask: mask,
                ..SimOptions::default()
            },
        );
        assert!(skid.per_loop[0].gated_cycles > 0);
        assert!(skid.per_loop[0].skid_peak > 0);
        assert!(!skid.per_loop[0].skid_overflow);
        check_latency(&skid).unwrap();
        assert_eq!(stall.trace, skid.trace);
        // §4.3: same long-run throughput, up to a drain constant.
        assert!(
            stall.cycles.abs_diff(skid.cycles) <= 2 * stall.per_loop[0].pipe_len + 16,
            "stall {} vs skid {}",
            stall.cycles,
            skid.cycles
        );
    }

    #[test]
    fn dataflow_chain_gates_the_consumer() {
        let mut b = DesignBuilder::new("chain");
        b.dataflow();
        let fin = b.fifo("in", DataType::Int(32), 2);
        let mid = b.fifo("mid", DataType::Int(32), 2);
        let fout = b.fifo("out", DataType::Int(32), 2);
        let mut p = b.kernel("producer");
        let mut l = p.pipelined_loop("prod", 8, 1);
        let x = l.fifo_read(fin, DataType::Int(32));
        let y = l.mul(x, x);
        l.fifo_write(mid, y);
        l.finish();
        p.finish();
        let mut c = b.kernel("consumer");
        let mut l = c.pipelined_loop("cons", 8, 1);
        let v = l.fifo_read(mid, DataType::Int(32));
        let w = l.add(v, v);
        l.fifo_write(fout, w);
        l.finish();
        c.finish();
        let d = b.finish().unwrap();

        let loops = scheduled(&d);
        let stim = Stimulus::seeded(&d, 9, 8);
        let golden = golden_trace(&d, &bodies(&d), &stim, 64);
        let out = simulate_design(&d, &loops, &stim, &SimOptions::default());
        assert!(out.finished);
        assert_eq!(out.trace.diff(&golden), None);
        // The consumer cannot start before the producer's first commit.
        let prod = &out.per_loop[0];
        let cons = &out.per_loop[1];
        assert!(cons.first_issue.unwrap() > prod.first_issue.unwrap());
        assert!(cons.gated_cycles > 0, "consumer should wait on tokens");
        check_latency(&out).unwrap();
    }

    #[test]
    fn sync_latencies_agree_and_pruning_reduces_fanin() {
        let mut b = DesignBuilder::new("sync");
        let fout = b.fifo("out", DataType::Int(32), 2);
        let mut pe = b.kernel("pe");
        pe.set_static_latency(4);
        let mut l = pe.pipelined_loop("body", 1, 1);
        let x = l.varying_input("x", DataType::Int(32));
        let y = l.add(x, x);
        l.output("r", y);
        l.finish();
        let pe_id = pe.finish();
        let mut k = b.kernel("top");
        let mut l = k.pipelined_loop("main", 5, 1);
        let i = l.indvar("i");
        let a = l.call(pe_id, vec![i], DataType::Int(32));
        let c = l.call(pe_id, vec![a], DataType::Int(32));
        let e = l.call(pe_id, vec![c], DataType::Int(32));
        l.fifo_write(fout, e);
        l.finish();
        k.finish();
        let d = b.finish().unwrap();

        let loops = scheduled(&d);
        let stim = Stimulus::seeded(&d, 2, 5);
        for pruning in [false, true] {
            let out = simulate_design(
                &d,
                &loops,
                &stim,
                &SimOptions {
                    sync_pruning: pruning,
                    ..SimOptions::default()
                },
            );
            let top = out.per_loop.iter().find(|r| r.name == "main").unwrap();
            assert_eq!(top.sync_inputs, 3);
            assert_eq!(top.sync_waited, if pruning { 1 } else { 3 });
            assert_eq!(top.sync_latency_full, Some(4));
            assert_eq!(top.sync_latency_pruned, Some(4));
            check_latency(&out).unwrap();
        }
    }

    #[test]
    fn under_reported_depth_is_caught() {
        let d = doubler();
        let mut loops = scheduled(&d);
        // The schedule claims a much shallower pipe than its own write
        // cycles imply: the latency consistency check must reject it.
        loops[0][0].schedule.depth = 1;
        loops[0][0].schedule.ops[2].cycle = 20;
        let stim = Stimulus::seeded(&d, 1, 10);
        let out = simulate_design(&d, &loops, &stim, &SimOptions::default());
        assert!(out.finished);
        let err = check_latency(&out).expect_err("depth lie must be detected");
        assert!(err.contains("explained maximum"), "{err}");
    }

    #[test]
    fn zero_iteration_loops_are_skipped() {
        let mut b = DesignBuilder::new("z");
        let fout = b.fifo("out", DataType::Int(32), 2);
        let mut k = b.kernel("top");
        let mut l = k.pipelined_loop("empty", 0, 1);
        let i = l.indvar("i");
        l.fifo_write(fout, i);
        l.finish();
        k.finish();
        let d = b.finish().unwrap();
        let loops = scheduled(&d);
        let stim = Stimulus::seeded(&d, 0, 4);
        let out = simulate_design(&d, &loops, &stim, &SimOptions::default());
        assert!(out.finished);
        assert!(out.trace.is_empty());
        check_latency(&out).unwrap();
    }
}
