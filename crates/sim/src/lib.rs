//! # hlsb-sim — cycle-accurate differential simulation
//!
//! The optimizations this workspace reproduces (broadcast-aware
//! scheduling §4.1, synchronization pruning §4.2, skid-buffer pipeline
//! control §4.3) all claim to be *semantics-preserving*: they change
//! where registers sit, which done signals are waited on and how
//! back-pressure propagates — never what the design computes. This crate
//! is the instrument that checks the claim end to end:
//!
//! * [`golden`] — an untimed reference evaluator: the `hlsb-ir`
//!   interpreter run over a flow's front-end output, producing the
//!   design's observable [`stim::IoTrace`];
//! * [`timed`] — a cycle-accurate simulator executing *scheduled* loops
//!   cycle by cycle, modelling start/done sequencing, stall/enable
//!   back-pressure (the paper's Fig. 8 broadcast) or skid-buffer
//!   occupancy and front-gating (Fig. 11), and reporting per-loop
//!   latency, stall and gate counters that [`timed::check_latency`]
//!   verifies against the schedule's own promises;
//! * [`fuzz`] — a seeded generator of small valid designs (plus a
//!   shrinker), so the differential harness explores shapes no
//!   hand-written benchmark covers;
//! * [`stim`] — shared stimulus/trace plumbing.
//!
//! Both backends evaluate values through the *same*
//! [`hlsb_ir::interp::Interpreter::run_iteration`], so a trace mismatch
//! between any two flow variants is a transformation bug by
//! construction, never an interpreter discrepancy.
//!
//! # Example
//!
//! ```
//! use hlsb_sim::fuzz::random_design;
//! use hlsb_sim::golden::golden_trace;
//! use hlsb_sim::stim::Stimulus;
//!
//! let design = random_design(7);
//! let stim = Stimulus::seeded(&design, 7, 32);
//! let bodies: Vec<Vec<hlsb_ir::Loop>> =
//!     design.kernels.iter().map(|k| k.loops.clone()).collect();
//! let trace = golden_trace(&design, &bodies, &stim, 16);
//! assert!(!trace.is_empty());
//! ```

pub mod fuzz;
pub mod golden;
pub mod stim;
pub mod timed;

pub use fuzz::{random_design, random_dirty_design, shrink_design};
pub use golden::golden_trace;
pub use stim::{IoTrace, Stimulus};
pub use timed::{
    check_latency, simulate_design, ControlModel, LoopReport, SimOptions, TimedOutcome,
};
