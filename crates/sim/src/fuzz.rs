//! Seeded random design generation (and shrinking) for differential
//! testing.
//!
//! [`random_design`] builds small, always-valid [`Design`]s spanning the
//! feature space the optimizations operate on: sequential and dataflow
//! concurrency, pipelined and sequential loops, unrolling, shared arrays,
//! internal FIFO chains, and parallel PE calls with static latencies.
//! Generation obeys the structural invariants the simulators assume,
//! and the stricter network rules `hlsb-verify` enforces — generated
//! designs are *verify-clean*:
//!
//! * every FIFO has at most one writer loop and at most one reader loop
//!   in **every** concurrency mode (a loop may still read one of its own
//!   input channels more than once — a wider stream, not a second
//!   endpoint); internal channels exist only between *distinct* dataflow
//!   kernels, writer kernel strictly before the reader, so the channel
//!   graph is acyclic and no sequenced channel can overflow its depth;
//! * every declared FIFO is referenced (no dead channels) and every
//!   kernel is observable (each loop keeps at least one sink);
//! * arrays are shared only within one kernel, or across kernels of a
//!   *sequential* design (concurrent array sharing is unsynchronized in
//!   real HLS too);
//! * `output` names are globally unique;
//! * PE kernels read only their formal inputs and carry a static latency.
//!
//! [`shrink_design`] produces strictly smaller variants by dropping one
//! sink (and the now-dead cone feeding it) at a time — enough to minimize
//! a failing differential case in a loop. Shrinks preserve
//! verify-cleanliness: each loop keeps a sink and orphaned channels are
//! compacted away.
//!
//! [`random_dirty_design`] is the deliberate exception: a seeded knob
//! that plants exactly one network defect and names the rule it expects,
//! for analyzer tests that need known-bad input.

use hlsb_ir::builder::{DesignBuilder, LoopBuilder};
use hlsb_ir::{CmpPred, DataType, Design, FifoId, InstId, Loop, OpKind};
use hlsb_rng::{derive_seed, Rng};

/// Generates a small random valid design from a seed.
///
/// The same seed always yields the same design; different seeds explore
/// different shapes (1–3 kernels, 1–2 loops each, 3–12 random body ops,
/// unroll factors {1, 2, 4}, trip counts 4–16, dataflow FIFO chains,
/// parallel PE calls).
///
/// # Panics
///
/// Never for any seed — generated designs pass `verify_design` by
/// construction.
pub fn random_design(seed: u64) -> Design {
    let mut rng = Rng::seed_from_u64(derive_seed(seed, 0xF022));
    let dataflow = rng.gen_bool(0.4);
    let mut b = DesignBuilder::new(format!("fuzz{seed}"));
    if dataflow {
        b.dataflow();
    }

    let n_kernels = 1 + rng.gen_index(3);
    let loops_per_kernel: Vec<usize> = (0..n_kernels)
        .map(|_| {
            if dataflow && n_kernels > 1 {
                1
            } else {
                1 + rng.gen_index(2)
            }
        })
        .collect();
    let total_loops: usize = loops_per_kernel.iter().sum();

    // A PE kernel (with static latency) for call-synchronization designs.
    let with_pe = rng.gen_bool(0.35);
    let pe_id = with_pe.then(|| {
        let mut pe = b.kernel("pe");
        pe.set_static_latency(2 + rng.gen_index(9) as u64);
        let mut l = pe.pipelined_loop("pe_body", 1, 1);
        let x = l.varying_input("pe_x", DataType::Int(32));
        let y = l.varying_input("pe_y", DataType::Int(32));
        let m = l.mul(x, y);
        let s = l.add(m, x);
        l.output("pe_out", s);
        l.finish();
        pe.finish()
    });

    // Arrays: shared freely in sequential designs, single-kernel only in
    // dataflow designs (loops of one kernel still run sequentially).
    let arrays: Vec<_> = (0..rng.gen_index(3))
        .map(|i| {
            b.array(
                format!("arr{i}"),
                DataType::Int(32),
                8 << rng.gen_index(3),
                hlsb_ir::Partition::None,
            )
        })
        .collect();
    let arrays_ok = !arrays.is_empty() && (!dataflow || n_kernels == 1);

    // FIFO wiring, decided up front: dedicated endpoints per loop in
    // every mode — one writer loop and one reader loop per FIFO — so the
    // generated network is clean under `hlsb-verify`. Sequential loops
    // may still *re-read* one of their own input channels inside the
    // loop body (below): repeated access within a single loop is a wider
    // stream, not a second endpoint.
    let mut ins_per_loop: Vec<Vec<FifoId>> = Vec::with_capacity(total_loops);
    let mut outs_per_loop: Vec<Vec<FifoId>> = Vec::with_capacity(total_loops);
    for fl in 0..total_loops {
        ins_per_loop.push(
            (0..1 + rng.gen_index(2))
                .map(|j| {
                    b.fifo(
                        format!("in{fl}_{j}"),
                        DataType::Int(32),
                        2 + rng.gen_index(3),
                    )
                })
                .collect(),
        );
        outs_per_loop.push(vec![b.fifo(
            format!("out{fl}"),
            DataType::Int(32),
            2 + rng.gen_index(3),
        )]);
    }

    // Internal edges: only between *distinct* dataflow kernels (each has
    // exactly one loop then, so flat loop order equals kernel order),
    // writer strictly before reader, one writer and one reader per
    // channel. Cross-kernel channels of a dataflow design carry no
    // sequenced-capacity bound, and the forward direction keeps the
    // channel graph acyclic; same-kernel internal edges would be
    // sequenced and could statically overflow their depth (a real
    // deadlock `hlsb-verify` flags as VN04).
    let n_internal = if dataflow && n_kernels > 1 {
        rng.gen_index(total_loops)
    } else {
        0
    };
    let internal: Vec<(FifoId, usize, usize)> = (0..n_internal)
        .map(|i| {
            let writer = rng.gen_index(total_loops - 1);
            let reader = writer + 1 + rng.gen_index(total_loops - writer - 1);
            let f = b.fifo(format!("ch{i}"), DataType::Int(32), 2 + rng.gen_index(3));
            (f, writer, reader)
        })
        .collect();

    let mut flat = 0usize;
    for (k, &n_loops) in loops_per_kernel.iter().enumerate() {
        let mut kb = b.kernel(format!("k{k}"));
        for li in 0..n_loops {
            let trip = 4 + rng.gen_index(13) as u64;
            let name = format!("k{k}l{li}");
            let mut lb = if rng.gen_bool(0.8) {
                kb.pipelined_loop(&name, trip, 1 + rng.gen_index(2) as u32)
            } else {
                kb.sequential_loop(&name, trip)
            };
            if rng.gen_bool(0.3) {
                lb.set_unroll([2u32, 4][rng.gen_index(2)]);
            }

            // Sources.
            let mut vals: Vec<InstId> = vec![lb.indvar(&format!("i_{name}"))];
            if rng.gen_bool(0.5) {
                vals.push(lb.constant(&format!("c_{name}"), DataType::Int(32)));
            }
            if rng.gen_bool(0.4) {
                vals.push(lb.invariant_input(&format!("inv_{name}"), DataType::Int(32)));
            }
            if rng.gen_bool(0.4) {
                vals.push(lb.varying_input(&format!("var_{name}"), DataType::Int(32)));
            }
            for &f in &ins_per_loop[flat] {
                vals.push(lb.fifo_read(f, DataType::Int(32)));
            }
            // Re-read one of this loop's own input channels: legal in
            // program order (sequential designs only — the loop simply
            // consumes two tokens per iteration), and deliberately NOT a
            // multi-reader violation for the verifier.
            if !dataflow && rng.gen_bool(0.3) {
                let f = ins_per_loop[flat][rng.gen_index(ins_per_loop[flat].len())];
                vals.push(lb.fifo_read(f, DataType::Int(32)));
            }
            for &(f, _, reader) in &internal {
                if reader == flat {
                    vals.push(lb.fifo_read(f, DataType::Int(32)));
                }
            }
            if arrays_ok && rng.gen_bool(0.5) {
                let a = arrays[rng.gen_index(arrays.len())];
                let idx = vals[rng.gen_index(vals.len())];
                vals.push(lb.load(a, idx, DataType::Int(32)));
            }

            // Random op soup.
            for _ in 0..3 + rng.gen_index(10) {
                let x = vals[rng.gen_index(vals.len())];
                let y = vals[rng.gen_index(vals.len())];
                let v = random_op(&mut lb, &mut rng, x, y);
                vals.push(v);
            }

            // Parallel PE calls (sync fan-in) — 2..=4 calls when enabled.
            if let Some(pe) = pe_id {
                if rng.gen_bool(0.5) {
                    let mut results = Vec::new();
                    for _ in 0..2 + rng.gen_index(3) {
                        let x = vals[rng.gen_index(vals.len())];
                        let y = vals[rng.gen_index(vals.len())];
                        results.push(lb.call(pe, vec![x, y], DataType::Int(32)));
                    }
                    let mut acc = results[0];
                    for &r in &results[1..] {
                        acc = lb.add(acc, r);
                    }
                    vals.push(acc);
                }
            }

            // Sinks.
            if arrays_ok && rng.gen_bool(0.4) {
                let a = arrays[rng.gen_index(arrays.len())];
                let idx = vals[rng.gen_index(vals.len())];
                let v = vals[rng.gen_index(vals.len())];
                lb.store(a, idx, v);
            }
            for &(f, writer, _) in &internal {
                if writer == flat {
                    let v = vals[rng.gen_index(vals.len())];
                    lb.fifo_write(f, v);
                }
            }
            for &f in &outs_per_loop[flat] {
                let v = vals[rng.gen_index(vals.len())];
                lb.fifo_write(f, v);
            }
            if rng.gen_bool(0.4) {
                let v = vals[rng.gen_index(vals.len())];
                lb.output(&format!("o_{name}"), v);
            }
            lb.finish();
            flat += 1;
        }
        kb.finish();
    }

    b.finish().expect("generated design must verify")
}

/// One random arithmetic/logic instruction over two existing values.
fn random_op(lb: &mut LoopBuilder<'_, '_>, rng: &mut Rng, x: InstId, y: InstId) -> InstId {
    match rng.gen_index(14) {
        0 => lb.add(x, y),
        1 => lb.sub(x, y),
        2 => lb.mul(x, y),
        3 => lb.div(x, y),
        4 => lb.and(x, y),
        5 => lb.or(x, y),
        6 => lb.xor(x, y),
        7 => lb.shl(x, y),
        8 => lb.shr(x, y),
        9 => lb.min(x, y),
        10 => lb.max(x, y),
        11 => lb.abs(x),
        12 => {
            let c = lb.cmp(CmpPred::Lt, x, y);
            lb.select(c, x, y)
        }
        _ => lb.reg(x),
    }
}

/// All one-step shrinks of a design: each drops one user-less sink
/// instruction (`output`, `fifo.write` or `store`) from one loop and
/// dead-code-eliminates the cone that fed only it. Every loop keeps at
/// least one sink (so each kernel stays observable and no loop empties),
/// and channels orphaned by a dropped `fifo.write` are compacted away —
/// shrunk designs stay valid *and* verify-clean, with the original
/// loop/kernel numbering (no `call` retargeting needed).
pub fn shrink_design(design: &Design) -> Vec<Design> {
    let mut shrinks = Vec::new();
    for (ki, kernel) in design.kernels.iter().enumerate() {
        for (li, lp) in kernel.loops.iter().enumerate() {
            let sinks: Vec<InstId> = lp
                .body
                .iter()
                .filter(|&(id, i)| {
                    matches!(
                        i.kind,
                        OpKind::Output | OpKind::FifoWrite(_) | OpKind::Store(_)
                    ) && lp.body.users(id).is_empty()
                })
                .map(|(id, _)| id)
                .collect();
            if sinks.len() <= 1 {
                continue;
            }
            for sink in sinks {
                let body = drop_inst(&lp.body, sink);
                if body.is_empty() {
                    continue;
                }
                let mut d = design.clone();
                d.kernels[ki].loops[li] = Loop { body, ..lp.clone() };
                compact_fifos(&mut d);
                shrinks.push(d);
            }
        }
    }
    shrinks
}

/// Removes FIFOs that no instruction references any more (a dropped
/// `fifo.write` sink can orphan its channel) and renumbers the remaining
/// `FifoId`s design-wide, so shrunk designs carry no dead channels.
fn compact_fifos(design: &mut Design) {
    let mut used = vec![false; design.fifos.len()];
    for k in &design.kernels {
        for lp in &k.loops {
            for (_, i) in lp.body.iter() {
                if let OpKind::FifoRead(f) | OpKind::FifoWrite(f) = i.kind {
                    used[f.index()] = true;
                }
            }
        }
    }
    if used.iter().all(|&u| u) {
        return;
    }
    let mut map: Vec<Option<FifoId>> = vec![None; design.fifos.len()];
    let mut next = 0u32;
    for (i, &u) in used.iter().enumerate() {
        if u {
            map[i] = Some(FifoId(next));
            next += 1;
        }
    }
    let mut keep = used.iter();
    design
        .fifos
        .retain(|_| *keep.next().expect("one flag per fifo"));
    for k in &mut design.kernels {
        for lp in &mut k.loops {
            let ids: Vec<InstId> = lp.body.ids().collect();
            for id in ids {
                let inst = lp.body.inst_mut(id);
                match &mut inst.kind {
                    OpKind::FifoRead(f) | OpKind::FifoWrite(f) => {
                        *f = map[f.index()].expect("referenced fifo survives compaction");
                    }
                    _ => {}
                }
            }
        }
    }
}

/// Generates a design with one *planted* network defect from a seed —
/// the deliberate counterpart of [`random_design`]: where that generator
/// promises verify-clean output, this one promises exactly one dirty
/// rule, returned alongside the design so analyzer tests can assert both
/// the hit and the absence of collateral findings. Seeds cycle through
/// the defect classes: a double-written channel (`VN01`), a double-read
/// channel (`VN02`), a concurrent array race (`VN03`), a channel cycle
/// (`VN04`) and a dead channel (`VN05`).
///
/// # Panics
///
/// Never for any seed — planted defects are *network* defects; the IR
/// itself stays structurally valid.
pub fn random_dirty_design(seed: u64) -> (Design, &'static str) {
    let mut rng = Rng::seed_from_u64(derive_seed(seed, 0xD127));
    let trip = 8 + rng.gen_index(9) as u64;
    let depth = 2 + rng.gen_index(3);
    let ty = DataType::Int(32);
    let mut b = DesignBuilder::new(format!("dirty{seed}"));
    let rule = match seed % 5 {
        0 => {
            // Two producers write one channel.
            b.dataflow();
            let ch = b.fifo("ch", ty, depth);
            let sink = b.fifo("sink", ty, depth);
            for name in ["wa", "wb"] {
                let mut k = b.kernel(name);
                let mut l = k.pipelined_loop("w", trip, 1);
                let v = l.indvar("i");
                l.fifo_write(ch, v);
                l.finish();
                k.finish();
            }
            let mut k = b.kernel("r");
            let mut l = k.pipelined_loop("r", 2 * trip, 1);
            let v = l.fifo_read(ch, ty);
            l.fifo_write(sink, v);
            l.finish();
            k.finish();
            "VN01"
        }
        1 => {
            // Two consumers read one channel.
            b.dataflow();
            let ch = b.fifo("ch", ty, depth);
            let sinks = [b.fifo("sink_a", ty, depth), b.fifo("sink_b", ty, depth)];
            let mut k = b.kernel("w");
            let mut l = k.pipelined_loop("w", 2 * trip, 1);
            let v = l.indvar("i");
            l.fifo_write(ch, v);
            l.finish();
            k.finish();
            for (name, sink) in ["ra", "rb"].into_iter().zip(sinks) {
                let mut k = b.kernel(name);
                let mut l = k.pipelined_loop("r", trip, 1);
                let v = l.fifo_read(ch, ty);
                l.fifo_write(sink, v);
                l.finish();
                k.finish();
            }
            "VN02"
        }
        2 => {
            // A store into an array two concurrent kernels share.
            b.dataflow();
            let arr = b.array("shared", ty, 16, hlsb_ir::Partition::None);
            let out_st = b.fifo("out_st", ty, depth);
            let out_ld = b.fifo("out_ld", ty, depth);
            let mut k = b.kernel("st");
            let mut l = k.pipelined_loop("fill", trip, 1);
            let i = l.indvar("i");
            l.store(arr, i, i);
            l.fifo_write(out_st, i);
            l.finish();
            k.finish();
            let mut k = b.kernel("ld");
            let mut l = k.pipelined_loop("drain", trip, 1);
            let i = l.indvar("i");
            let v = l.load(arr, i, ty);
            l.fifo_write(out_ld, v);
            l.finish();
            k.finish();
            "VN03"
        }
        3 => {
            // A two-kernel channel cycle: a → fwd → b → back → a.
            b.dataflow();
            let fwd = b.fifo("fwd", ty, depth);
            let back = b.fifo("back", ty, depth);
            let mut k = b.kernel("a");
            let mut l = k.pipelined_loop("fa", trip, 1);
            let x = l.fifo_read(back, ty);
            let i = l.indvar("i");
            let v = l.add(x, i);
            l.fifo_write(fwd, v);
            l.finish();
            k.finish();
            let mut k = b.kernel("bk");
            let mut l = k.pipelined_loop("fb", trip, 1);
            let x = l.fifo_read(fwd, ty);
            l.fifo_write(back, x);
            l.finish();
            k.finish();
            "VN04"
        }
        _ => {
            // A declared channel nothing touches.
            let fin = b.fifo("in", ty, depth);
            let fout = b.fifo("out", ty, depth);
            b.fifo("unused", ty, depth);
            let mut k = b.kernel("top");
            let mut l = k.pipelined_loop("body", trip, 1);
            let v = l.fifo_read(fin, ty);
            l.fifo_write(fout, v);
            l.finish();
            k.finish();
            "VN05"
        }
    };
    let d = b
        .finish()
        .expect("planted defects keep the IR structurally valid");
    (d, rule)
}

/// Rebuilds a body without `drop` and without the instructions that
/// became dead once it was gone.
fn drop_inst(body: &hlsb_ir::Dfg, drop: InstId) -> hlsb_ir::Dfg {
    let mut pruned = hlsb_ir::Dfg::new();
    let mut map: Vec<Option<InstId>> = vec![None; body.len()];
    for (id, inst) in body.iter() {
        if id == drop {
            continue;
        }
        let mut cl = inst.clone();
        cl.operands = inst
            .operands
            .iter()
            .map(|op| map[op.index()].expect("operands precede users"))
            .collect();
        map[id.index()] = Some(pruned.push_inst(cl));
    }
    let (clean, _) = pruned.eliminate_dead();
    clean
}

#[cfg(test)]
mod tests {
    use super::*;
    use hlsb_ir::verify::verify_design;

    #[test]
    fn generated_designs_always_verify() {
        for seed in 0..200 {
            let d = random_design(seed);
            verify_design(&d).unwrap_or_else(|e| panic!("seed {seed}: {e:?}\n{d}"));
            assert!(d.inst_count() > 0, "seed {seed} generated an empty design");
        }
    }

    #[test]
    fn generation_is_deterministic_and_seed_sensitive() {
        assert_eq!(random_design(11), random_design(11));
        let designs: Vec<_> = (0..32).map(random_design).collect();
        let distinct = designs.windows(2).filter(|w| w[0] != w[1]).count();
        assert!(distinct >= 24, "only {distinct}/31 adjacent pairs differ");
    }

    #[test]
    fn feature_space_is_covered() {
        let mut dataflow = 0;
        let mut calls = 0;
        let mut unrolled = 0;
        let mut multi_kernel = 0;
        for seed in 0..100 {
            let d = random_design(seed);
            dataflow += usize::from(d.concurrency == hlsb_ir::Concurrency::Dataflow);
            multi_kernel += usize::from(d.kernels.len() > 1);
            let has_call = d.kernels.iter().any(|k| {
                k.loops.iter().any(|l| {
                    l.body
                        .iter()
                        .any(|(_, i)| matches!(i.kind, OpKind::Call(_)))
                })
            });
            calls += usize::from(has_call);
            unrolled += usize::from(
                d.kernels
                    .iter()
                    .any(|k| k.loops.iter().any(|l| l.unroll > 1)),
            );
        }
        assert!(dataflow >= 15, "dataflow designs: {dataflow}/100");
        assert!(calls >= 10, "call designs: {calls}/100");
        assert!(unrolled >= 10, "unrolled designs: {unrolled}/100");
        assert!(
            multi_kernel >= 30,
            "multi-kernel designs: {multi_kernel}/100"
        );
    }

    #[test]
    fn fifos_have_single_reader_and_writer_loops_in_every_mode() {
        for seed in 0..100 {
            let d = random_design(seed);
            let mut readers = vec![0usize; d.fifos.len()];
            let mut writers = vec![0usize; d.fifos.len()];
            for k in &d.kernels {
                for lp in &k.loops {
                    let mut r = std::collections::HashSet::new();
                    let mut w = std::collections::HashSet::new();
                    for (_, i) in lp.body.iter() {
                        match i.kind {
                            OpKind::FifoRead(f) => {
                                r.insert(f.index());
                            }
                            OpKind::FifoWrite(f) => {
                                w.insert(f.index());
                            }
                            _ => {}
                        }
                    }
                    for f in r {
                        readers[f] += 1;
                    }
                    for f in w {
                        writers[f] += 1;
                    }
                }
            }
            for f in 0..d.fifos.len() {
                assert!(
                    readers[f] <= 1,
                    "seed {seed}: fifo {f} has {} readers",
                    readers[f]
                );
                assert!(
                    writers[f] <= 1,
                    "seed {seed}: fifo {f} has {} writers",
                    writers[f]
                );
            }
        }
    }

    #[test]
    fn shrinks_are_valid_and_smaller() {
        let mut checked = 0;
        for seed in 0..20 {
            let d = random_design(seed);
            for s in shrink_design(&d) {
                verify_design(&s).unwrap_or_else(|e| panic!("seed {seed}: {e:?}\n{s}"));
                assert!(s.inst_count() < d.inst_count(), "seed {seed}");
                checked += 1;
            }
        }
        assert!(checked > 20, "shrinking produced too few candidates");
    }

    #[test]
    fn generated_designs_and_their_shrinks_are_verify_clean() {
        for seed in 0..100 {
            let d = random_design(seed);
            let rep = hlsb_verify::verify_network(&d, "fuzz", 300.0);
            assert!(rep.is_clean(), "seed {seed}:\n{}", rep.to_table());
            if seed < 20 {
                for s in shrink_design(&d) {
                    let rep = hlsb_verify::verify_network(&s, "fuzz", 300.0);
                    assert!(
                        rep.is_clean(),
                        "seed {seed} shrink:\n{}\n{s}",
                        rep.to_table()
                    );
                }
            }
        }
    }

    #[test]
    fn dirty_designs_trip_exactly_their_planted_rule() {
        let mut by_rule = std::collections::HashMap::new();
        for seed in 0..25 {
            let (d, rule) = random_dirty_design(seed);
            verify_design(&d).unwrap_or_else(|e| panic!("seed {seed}: {e:?}\n{d}"));
            let rep = hlsb_verify::verify_network(&d, "fuzz", 300.0);
            assert!(
                rep.has_rule(rule),
                "seed {seed}: expected {rule}\n{}",
                rep.to_table()
            );
            for diag in &rep.diagnostics {
                assert_eq!(
                    diag.rule,
                    rule,
                    "seed {seed}: collateral finding\n{}",
                    rep.to_table()
                );
            }
            *by_rule.entry(rule).or_insert(0usize) += 1;
        }
        assert_eq!(by_rule.len(), 5, "all defect classes cycled: {by_rule:?}");
    }
}
