//! Seeded random design generation (and shrinking) for differential
//! testing.
//!
//! [`random_design`] builds small, always-valid [`Design`]s spanning the
//! feature space the optimizations operate on: sequential and dataflow
//! concurrency, pipelined and sequential loops, unrolling, shared arrays,
//! internal FIFO chains, and parallel PE calls with static latencies.
//! Generation obeys the structural invariants the simulators assume:
//!
//! * in dataflow designs every FIFO has at most one writer loop and at
//!   most one reader loop, the writer strictly preceding the reader in
//!   flat (kernel, loop) order — concurrent loops never interleave on one
//!   stream and FIFO dependencies are acyclic (sequential designs may
//!   share FIFOs freely: execution order equals program order there);
//! * arrays are shared only within one kernel, or across kernels of a
//!   *sequential* design (concurrent array sharing is unsynchronized in
//!   real HLS too);
//! * `output` names are globally unique;
//! * PE kernels read only their formal inputs and carry a static latency.
//!
//! [`shrink_design`] produces strictly smaller variants by dropping one
//! sink (and the now-dead cone feeding it) at a time — enough to minimize
//! a failing differential case in a loop.

use hlsb_ir::builder::{DesignBuilder, LoopBuilder};
use hlsb_ir::{CmpPred, DataType, Design, FifoId, InstId, Loop, OpKind};
use hlsb_rng::{derive_seed, Rng};

/// Generates a small random valid design from a seed.
///
/// The same seed always yields the same design; different seeds explore
/// different shapes (1–3 kernels, 1–2 loops each, 3–12 random body ops,
/// unroll factors {1, 2, 4}, trip counts 4–16, dataflow FIFO chains,
/// parallel PE calls).
///
/// # Panics
///
/// Never for any seed — generated designs pass `verify_design` by
/// construction.
pub fn random_design(seed: u64) -> Design {
    let mut rng = Rng::seed_from_u64(derive_seed(seed, 0xF022));
    let dataflow = rng.gen_bool(0.4);
    let mut b = DesignBuilder::new(format!("fuzz{seed}"));
    if dataflow {
        b.dataflow();
    }

    let n_kernels = 1 + rng.gen_index(3);
    let loops_per_kernel: Vec<usize> = (0..n_kernels)
        .map(|_| {
            if dataflow && n_kernels > 1 {
                1
            } else {
                1 + rng.gen_index(2)
            }
        })
        .collect();
    let total_loops: usize = loops_per_kernel.iter().sum();

    // A PE kernel (with static latency) for call-synchronization designs.
    let with_pe = rng.gen_bool(0.35);
    let pe_id = with_pe.then(|| {
        let mut pe = b.kernel("pe");
        pe.set_static_latency(2 + rng.gen_index(9) as u64);
        let mut l = pe.pipelined_loop("pe_body", 1, 1);
        let x = l.varying_input("pe_x", DataType::Int(32));
        let y = l.varying_input("pe_y", DataType::Int(32));
        let m = l.mul(x, y);
        let s = l.add(m, x);
        l.output("pe_out", s);
        l.finish();
        pe.finish()
    });

    // Arrays: shared freely in sequential designs, single-kernel only in
    // dataflow designs (loops of one kernel still run sequentially).
    let arrays: Vec<_> = (0..rng.gen_index(3))
        .map(|i| {
            b.array(
                format!("arr{i}"),
                DataType::Int(32),
                8 << rng.gen_index(3),
                hlsb_ir::Partition::None,
            )
        })
        .collect();
    let arrays_ok = !arrays.is_empty() && (!dataflow || n_kernels == 1);

    // FIFO wiring, decided up front. Sequential designs draw from shared
    // pools; dataflow loops get dedicated endpoints (single writer AND
    // single reader per FIFO — concurrent cursors must not interleave).
    let mut ins_per_loop: Vec<Vec<FifoId>> = Vec::with_capacity(total_loops);
    let mut outs_per_loop: Vec<Vec<FifoId>> = Vec::with_capacity(total_loops);
    if dataflow {
        for fl in 0..total_loops {
            ins_per_loop.push(
                (0..1 + rng.gen_index(2))
                    .map(|j| {
                        b.fifo(
                            format!("in{fl}_{j}"),
                            DataType::Int(32),
                            2 + rng.gen_index(3),
                        )
                    })
                    .collect(),
            );
            outs_per_loop.push(vec![b.fifo(
                format!("out{fl}"),
                DataType::Int(32),
                2 + rng.gen_index(3),
            )]);
        }
    } else {
        let pool_in: Vec<FifoId> = (0..1 + rng.gen_index(3))
            .map(|i| b.fifo(format!("in{i}"), DataType::Int(32), 2 + rng.gen_index(3)))
            .collect();
        let pool_out: Vec<FifoId> = (0..1 + rng.gen_index(3))
            .map(|i| b.fifo(format!("out{i}"), DataType::Int(32), 2 + rng.gen_index(3)))
            .collect();
        for _ in 0..total_loops {
            ins_per_loop.push(
                (0..1 + rng.gen_index(2))
                    .map(|_| pool_in[rng.gen_index(pool_in.len())])
                    .collect(),
            );
            outs_per_loop.push(vec![pool_out[rng.gen_index(pool_out.len())]]);
        }
    }

    // Internal edges (dataflow only): writer strictly before reader in
    // flat loop order, one writer and one reader per channel.
    let n_internal = if dataflow && total_loops > 1 {
        rng.gen_index(total_loops)
    } else {
        0
    };
    let internal: Vec<(FifoId, usize, usize)> = (0..n_internal)
        .map(|i| {
            let writer = rng.gen_index(total_loops - 1);
            let reader = writer + 1 + rng.gen_index(total_loops - writer - 1);
            let f = b.fifo(format!("ch{i}"), DataType::Int(32), 2 + rng.gen_index(3));
            (f, writer, reader)
        })
        .collect();

    let mut flat = 0usize;
    for (k, &n_loops) in loops_per_kernel.iter().enumerate() {
        let mut kb = b.kernel(format!("k{k}"));
        for li in 0..n_loops {
            let trip = 4 + rng.gen_index(13) as u64;
            let name = format!("k{k}l{li}");
            let mut lb = if rng.gen_bool(0.8) {
                kb.pipelined_loop(&name, trip, 1 + rng.gen_index(2) as u32)
            } else {
                kb.sequential_loop(&name, trip)
            };
            if rng.gen_bool(0.3) {
                lb.set_unroll([2u32, 4][rng.gen_index(2)]);
            }

            // Sources.
            let mut vals: Vec<InstId> = vec![lb.indvar(&format!("i_{name}"))];
            if rng.gen_bool(0.5) {
                vals.push(lb.constant(&format!("c_{name}"), DataType::Int(32)));
            }
            if rng.gen_bool(0.4) {
                vals.push(lb.invariant_input(&format!("inv_{name}"), DataType::Int(32)));
            }
            if rng.gen_bool(0.4) {
                vals.push(lb.varying_input(&format!("var_{name}"), DataType::Int(32)));
            }
            for &f in &ins_per_loop[flat] {
                vals.push(lb.fifo_read(f, DataType::Int(32)));
            }
            for &(f, _, reader) in &internal {
                if reader == flat {
                    vals.push(lb.fifo_read(f, DataType::Int(32)));
                }
            }
            if arrays_ok && rng.gen_bool(0.5) {
                let a = arrays[rng.gen_index(arrays.len())];
                let idx = vals[rng.gen_index(vals.len())];
                vals.push(lb.load(a, idx, DataType::Int(32)));
            }

            // Random op soup.
            for _ in 0..3 + rng.gen_index(10) {
                let x = vals[rng.gen_index(vals.len())];
                let y = vals[rng.gen_index(vals.len())];
                let v = random_op(&mut lb, &mut rng, x, y);
                vals.push(v);
            }

            // Parallel PE calls (sync fan-in) — 2..=4 calls when enabled.
            if let Some(pe) = pe_id {
                if rng.gen_bool(0.5) {
                    let mut results = Vec::new();
                    for _ in 0..2 + rng.gen_index(3) {
                        let x = vals[rng.gen_index(vals.len())];
                        let y = vals[rng.gen_index(vals.len())];
                        results.push(lb.call(pe, vec![x, y], DataType::Int(32)));
                    }
                    let mut acc = results[0];
                    for &r in &results[1..] {
                        acc = lb.add(acc, r);
                    }
                    vals.push(acc);
                }
            }

            // Sinks.
            if arrays_ok && rng.gen_bool(0.4) {
                let a = arrays[rng.gen_index(arrays.len())];
                let idx = vals[rng.gen_index(vals.len())];
                let v = vals[rng.gen_index(vals.len())];
                lb.store(a, idx, v);
            }
            for &(f, writer, _) in &internal {
                if writer == flat {
                    let v = vals[rng.gen_index(vals.len())];
                    lb.fifo_write(f, v);
                }
            }
            for &f in &outs_per_loop[flat] {
                let v = vals[rng.gen_index(vals.len())];
                lb.fifo_write(f, v);
            }
            if rng.gen_bool(0.4) {
                let v = vals[rng.gen_index(vals.len())];
                lb.output(&format!("o_{name}"), v);
            }
            lb.finish();
            flat += 1;
        }
        kb.finish();
    }

    b.finish().expect("generated design must verify")
}

/// One random arithmetic/logic instruction over two existing values.
fn random_op(lb: &mut LoopBuilder<'_, '_>, rng: &mut Rng, x: InstId, y: InstId) -> InstId {
    match rng.gen_index(14) {
        0 => lb.add(x, y),
        1 => lb.sub(x, y),
        2 => lb.mul(x, y),
        3 => lb.div(x, y),
        4 => lb.and(x, y),
        5 => lb.or(x, y),
        6 => lb.xor(x, y),
        7 => lb.shl(x, y),
        8 => lb.shr(x, y),
        9 => lb.min(x, y),
        10 => lb.max(x, y),
        11 => lb.abs(x),
        12 => {
            let c = lb.cmp(CmpPred::Lt, x, y);
            lb.select(c, x, y)
        }
        _ => lb.reg(x),
    }
}

/// All one-step shrinks of a design: each drops one user-less sink
/// instruction (`output`, `fifo.write` or `store`) from one loop and
/// dead-code-eliminates the cone that fed only it. Shrinks that would
/// empty a loop are skipped, so every result stays a valid design with
/// the original loop/kernel numbering (no `call` retargeting needed).
pub fn shrink_design(design: &Design) -> Vec<Design> {
    let mut shrinks = Vec::new();
    for (ki, kernel) in design.kernels.iter().enumerate() {
        for (li, lp) in kernel.loops.iter().enumerate() {
            let sinks: Vec<InstId> = lp
                .body
                .iter()
                .filter(|&(id, i)| {
                    matches!(
                        i.kind,
                        OpKind::Output | OpKind::FifoWrite(_) | OpKind::Store(_)
                    ) && lp.body.users(id).is_empty()
                })
                .map(|(id, _)| id)
                .collect();
            for sink in sinks {
                let body = drop_inst(&lp.body, sink);
                if body.is_empty() {
                    continue;
                }
                let mut d = design.clone();
                d.kernels[ki].loops[li] = Loop { body, ..lp.clone() };
                shrinks.push(d);
            }
        }
    }
    shrinks
}

/// Rebuilds a body without `drop` and without the instructions that
/// became dead once it was gone.
fn drop_inst(body: &hlsb_ir::Dfg, drop: InstId) -> hlsb_ir::Dfg {
    let mut pruned = hlsb_ir::Dfg::new();
    let mut map: Vec<Option<InstId>> = vec![None; body.len()];
    for (id, inst) in body.iter() {
        if id == drop {
            continue;
        }
        let mut cl = inst.clone();
        cl.operands = inst
            .operands
            .iter()
            .map(|op| map[op.index()].expect("operands precede users"))
            .collect();
        map[id.index()] = Some(pruned.push_inst(cl));
    }
    let (clean, _) = pruned.eliminate_dead();
    clean
}

#[cfg(test)]
mod tests {
    use super::*;
    use hlsb_ir::verify::verify_design;

    #[test]
    fn generated_designs_always_verify() {
        for seed in 0..200 {
            let d = random_design(seed);
            verify_design(&d).unwrap_or_else(|e| panic!("seed {seed}: {e:?}\n{d}"));
            assert!(d.inst_count() > 0, "seed {seed} generated an empty design");
        }
    }

    #[test]
    fn generation_is_deterministic_and_seed_sensitive() {
        assert_eq!(random_design(11), random_design(11));
        let designs: Vec<_> = (0..32).map(random_design).collect();
        let distinct = designs.windows(2).filter(|w| w[0] != w[1]).count();
        assert!(distinct >= 24, "only {distinct}/31 adjacent pairs differ");
    }

    #[test]
    fn feature_space_is_covered() {
        let mut dataflow = 0;
        let mut calls = 0;
        let mut unrolled = 0;
        let mut multi_kernel = 0;
        for seed in 0..100 {
            let d = random_design(seed);
            dataflow += usize::from(d.concurrency == hlsb_ir::Concurrency::Dataflow);
            multi_kernel += usize::from(d.kernels.len() > 1);
            let has_call = d.kernels.iter().any(|k| {
                k.loops.iter().any(|l| {
                    l.body
                        .iter()
                        .any(|(_, i)| matches!(i.kind, OpKind::Call(_)))
                })
            });
            calls += usize::from(has_call);
            unrolled += usize::from(
                d.kernels
                    .iter()
                    .any(|k| k.loops.iter().any(|l| l.unroll > 1)),
            );
        }
        assert!(dataflow >= 15, "dataflow designs: {dataflow}/100");
        assert!(calls >= 10, "call designs: {calls}/100");
        assert!(unrolled >= 10, "unrolled designs: {unrolled}/100");
        assert!(
            multi_kernel >= 30,
            "multi-kernel designs: {multi_kernel}/100"
        );
    }

    #[test]
    fn dataflow_fifos_have_single_reader_and_writer() {
        for seed in 0..100 {
            let d = random_design(seed);
            if d.concurrency != hlsb_ir::Concurrency::Dataflow {
                continue;
            }
            let mut readers = vec![0usize; d.fifos.len()];
            let mut writers = vec![0usize; d.fifos.len()];
            for k in &d.kernels {
                for lp in &k.loops {
                    let mut r = std::collections::HashSet::new();
                    let mut w = std::collections::HashSet::new();
                    for (_, i) in lp.body.iter() {
                        match i.kind {
                            OpKind::FifoRead(f) => {
                                r.insert(f.index());
                            }
                            OpKind::FifoWrite(f) => {
                                w.insert(f.index());
                            }
                            _ => {}
                        }
                    }
                    for f in r {
                        readers[f] += 1;
                    }
                    for f in w {
                        writers[f] += 1;
                    }
                }
            }
            for f in 0..d.fifos.len() {
                assert!(
                    readers[f] <= 1,
                    "seed {seed}: fifo {f} has {} readers",
                    readers[f]
                );
                assert!(
                    writers[f] <= 1,
                    "seed {seed}: fifo {f} has {} writers",
                    writers[f]
                );
            }
        }
    }

    #[test]
    fn shrinks_are_valid_and_smaller() {
        let mut checked = 0;
        for seed in 0..20 {
            let d = random_design(seed);
            for s in shrink_design(&d) {
                verify_design(&s).unwrap_or_else(|e| panic!("seed {seed}: {e:?}\n{s}"));
                assert!(s.inst_count() < d.inst_count(), "seed {seed}");
                checked += 1;
            }
        }
        assert!(checked > 20, "shrinking produced too few candidates");
    }
}
