//! Stimulus (external inputs) and I/O traces (observable outputs).
//!
//! Both simulator backends consume a [`Stimulus`] and produce an
//! [`IoTrace`]; the differential harness compares traces across
//! optimization variants. The stimulus follows the conventions of
//! [`hlsb_ir::interp::LoopIo`]: FIFO reads pop a per-FIFO input stream
//! (exhausted streams yield 0), invariants/constants are looked up by
//! instruction name, varying inputs cycle a named stream (defaulting to
//! the iteration index).

use hlsb_ir::interp::LoopIo;
use hlsb_ir::{Design, OpKind};
use hlsb_rng::Rng;
use std::collections::{BTreeMap, HashMap};

/// External input values for one simulation run of a design.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Stimulus {
    /// Input stream per FIFO, keyed by FIFO index.
    pub fifo_inputs: HashMap<usize, Vec<i64>>,
    /// Loop-invariant input values by instruction name.
    pub invariants: HashMap<String, i64>,
    /// Varying input streams by instruction name (cycled).
    pub varying: HashMap<String, Vec<i64>>,
    /// Constant values by instruction name.
    pub constants: HashMap<String, i64>,
}

impl Stimulus {
    /// A seeded stimulus covering every FIFO, invariant, varying input and
    /// constant the design's loops mention: `len` values per stream,
    /// drawn from small signed ranges so arithmetic stays interesting
    /// (sign changes, zeros for the div-by-zero path).
    pub fn seeded(design: &Design, seed: u64, len: usize) -> Stimulus {
        let mut rng = Rng::seed_from_u64(seed ^ 0x5717_0001);
        let mut stim = Stimulus::default();
        let draw = |rng: &mut Rng| rng.gen_i64(-100, 100);
        for fifo in 0..design.fifos.len() {
            let stream = (0..len).map(|_| draw(&mut rng)).collect();
            stim.fifo_inputs.insert(fifo, stream);
        }
        for kernel in &design.kernels {
            for lp in &kernel.loops {
                for (_, inst) in lp.body.iter() {
                    if inst.name.is_empty() {
                        continue;
                    }
                    match inst.kind {
                        OpKind::Const => {
                            let v = draw(&mut rng);
                            stim.constants.entry(inst.name.clone()).or_insert(v);
                        }
                        OpKind::Input { invariant: true } => {
                            let v = draw(&mut rng);
                            stim.invariants.entry(inst.name.clone()).or_insert(v);
                        }
                        OpKind::Input { invariant: false } => {
                            stim.varying
                                .entry(inst.name.clone())
                                .or_insert_with(|| (0..len).map(|_| draw(&mut rng)).collect());
                        }
                        _ => {}
                    }
                }
            }
        }
        stim
    }

    /// The interpreter state this stimulus seeds.
    pub fn to_io(&self) -> LoopIo {
        let mut io = LoopIo::default();
        for (&fifo, stream) in &self.fifo_inputs {
            io.fifo_inputs
                .insert(hlsb_ir::FifoId(fifo as u32), stream.clone());
        }
        io.invariants = self.invariants.clone();
        io.varying = self.varying.clone();
        io.constants = self.constants.clone();
        io
    }
}

/// The observable outputs of one simulation: every FIFO write stream and
/// every named `output`, in iteration order. Ordered maps so traces have
/// a deterministic `Debug` form.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct IoTrace {
    /// Values written per FIFO (keyed by FIFO index), in push order.
    pub fifo_outputs: BTreeMap<usize, Vec<i64>>,
    /// Values recorded per named output, in iteration order.
    pub outputs: BTreeMap<String, Vec<i64>>,
}

impl IoTrace {
    /// Extracts the trace from a finished interpreter state.
    pub fn from_io(io: &LoopIo) -> IoTrace {
        IoTrace {
            fifo_outputs: io
                .fifo_outputs
                .iter()
                .filter(|(_, v)| !v.is_empty())
                .map(|(fid, v)| (fid.index(), v.clone()))
                .collect(),
            outputs: io
                .outputs
                .iter()
                .filter(|(_, v)| !v.is_empty())
                .map(|(n, v)| (n.clone(), v.clone()))
                .collect(),
        }
    }

    /// Total number of observed values.
    pub fn len(&self) -> usize {
        self.fifo_outputs.values().map(Vec::len).sum::<usize>()
            + self.outputs.values().map(Vec::len).sum::<usize>()
    }

    /// Whether nothing was observed.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// First difference against another trace, described for a failure
    /// message; `None` when the traces are identical.
    pub fn diff(&self, other: &IoTrace) -> Option<String> {
        let keys: std::collections::BTreeSet<usize> = self
            .fifo_outputs
            .keys()
            .chain(other.fifo_outputs.keys())
            .copied()
            .collect();
        for k in keys {
            let a = self.fifo_outputs.get(&k);
            let b = other.fifo_outputs.get(&k);
            if a != b {
                return Some(format!(
                    "fifo {k}: {:?} vs {:?}",
                    truncated(a),
                    truncated(b)
                ));
            }
        }
        let names: std::collections::BTreeSet<&String> =
            self.outputs.keys().chain(other.outputs.keys()).collect();
        for n in names {
            let a = self.outputs.get(n);
            let b = other.outputs.get(n);
            if a != b {
                return Some(format!(
                    "output {n:?}: {:?} vs {:?}",
                    truncated(a),
                    truncated(b)
                ));
            }
        }
        None
    }
}

/// At most the first 8 values of a stream, for diff messages.
fn truncated(v: Option<&Vec<i64>>) -> Vec<i64> {
    v.map(|v| v.iter().copied().take(8).collect())
        .unwrap_or_default()
}

#[cfg(test)]
mod tests {
    use super::*;
    use hlsb_ir::builder::DesignBuilder;
    use hlsb_ir::DataType;

    fn two_input_design() -> Design {
        let mut b = DesignBuilder::new("s");
        let fin = b.fifo("in", DataType::Int(32), 2);
        let mut k = b.kernel("top");
        let mut l = k.pipelined_loop("main", 4, 1);
        let c = l.constant("c", DataType::Int(32));
        let inv = l.invariant_input("inv", DataType::Int(32));
        let var = l.varying_input("var", DataType::Int(32));
        let x = l.fifo_read(fin, DataType::Int(32));
        let s = l.add(c, inv);
        let t = l.add(s, var);
        let u = l.add(t, x);
        l.output("o", u);
        l.finish();
        k.finish();
        b.finish().unwrap()
    }

    #[test]
    fn seeded_stimulus_covers_every_input_kind() {
        let d = two_input_design();
        let s = Stimulus::seeded(&d, 7, 6);
        assert_eq!(s.fifo_inputs[&0].len(), 6);
        assert!(s.constants.contains_key("c"));
        assert!(s.invariants.contains_key("inv"));
        assert_eq!(s.varying["var"].len(), 6);
        // Deterministic per seed, different across seeds.
        assert_eq!(s, Stimulus::seeded(&d, 7, 6));
        assert_ne!(s, Stimulus::seeded(&d, 8, 6));
    }

    #[test]
    fn trace_diff_pinpoints_first_mismatch() {
        let mut a = IoTrace::default();
        a.fifo_outputs.insert(0, vec![1, 2, 3]);
        let mut b = a.clone();
        assert!(a.diff(&b).is_none());
        b.fifo_outputs.get_mut(&0).unwrap()[1] = 9;
        let msg = a.diff(&b).expect("must differ");
        assert!(msg.contains("fifo 0"), "{msg}");

        let mut c = a.clone();
        c.outputs.insert("o".into(), vec![4]);
        let msg = a.diff(&c).expect("must differ");
        assert!(msg.contains("output"), "{msg}");
        assert_eq!(c.len(), 4);
        assert!(!c.is_empty());
    }
}
