//! 512-wide vector product (paper Table 2 / Fig. 17): `(a · b) c`.
//!
//! The dot product of two 512-element float vectors feeds a reduction
//! tree whose scalar result is then multiplied into a third vector — the
//! "spindle" pipeline of Fig. 17: wide stages, a one-scalar waist, then
//! wide stages again. The design is organized as parallel PE chunks whose
//! completion the HLS controller synchronizes (the paper's "Pipe. Ctrl. &
//! Sync." classification in Table 1).

use crate::Benchmark;
use hlsb_fabric::Device;
use hlsb_ir::builder::DesignBuilder;
use hlsb_ir::{DataType, Design, InstId, KernelId};

/// Builds the vector product with `width` lanes split into `pes` parallel
/// dot-product PEs.
pub fn design(width: usize, pes: usize) -> Design {
    let f = DataType::Float32;
    assert!(
        pes >= 1 && width.is_multiple_of(pes),
        "width must divide into PEs"
    );
    let chunk = width / pes;

    let mut b = DesignBuilder::new("vector_product");

    // Dot-product PE: chunk-wide multiply + adder tree, static latency.
    let mut pe_ids: Vec<KernelId> = Vec::with_capacity(pes);
    for p in 0..pes {
        let mut pe = b.kernel(format!("dot_pe{p}"));
        // fmul (3) + ceil(log2(chunk)) fadds (4 each).
        let tree_levels = (chunk as f64).log2().ceil() as u64;
        pe.set_static_latency(3 + 4 * tree_levels);
        let mut l = pe.pipelined_loop("dot", 1 << 12, 1);
        let mut prods: Vec<InstId> = Vec::with_capacity(chunk);
        for lane in 0..chunk {
            let a = l.varying_input(&format!("a{lane}"), f);
            let bb = l.varying_input(&format!("b{lane}"), f);
            prods.push(l.mul(a, bb));
        }
        let mut level = prods;
        while level.len() > 1 {
            let mut next = Vec::with_capacity(level.len().div_ceil(2));
            for pair in level.chunks(2) {
                if pair.len() == 2 {
                    next.push(l.add(pair[0], pair[1]));
                } else {
                    next.push(pair[0]);
                }
            }
            level = next;
        }
        l.output("partial", level[0]);
        l.finish();
        pe_ids.push(pe.finish());
    }

    // Top: feed the PEs, combine partials, broadcast the scalar into c.
    let a_in = b.fifo("a_in", DataType::Bits(512), 4);
    let b_in = b.fifo("b_in", DataType::Bits(512), 4);
    let c_in = b.fifo("c_in", DataType::Bits(512), 4);
    let r_out = b.fifo("r_out", DataType::Bits(512), 4);

    let mut top = b.kernel("top");
    let mut l = top.pipelined_loop("main", 1 << 12, 1);
    let a_word = l.fifo_read(a_in, DataType::Bits(512));
    let b_word = l.fifo_read(b_in, DataType::Bits(512));
    let c_word = l.fifo_read(c_in, DataType::Bits(512));

    // Parallel PE calls — the HLS-inferred synchronization point.
    let mut partials = Vec::with_capacity(pes);
    for &pid in &pe_ids {
        let a_chunk = l.repack(a_word, f);
        let b_chunk = l.repack(b_word, f);
        partials.push(l.call(pid, vec![a_chunk, b_chunk], f));
    }
    let mut dot = partials[0];
    for &p in &partials[1..] {
        dot = l.add(dot, p);
    }
    let dot_reg = l.reg(dot); // the 32-bit waist of Fig. 17

    // Scalar × vector c: the scalar broadcast into `width` multipliers
    // (kept as 16 packed lanes to bound the netlist size).
    let mut packed = Vec::new();
    for lane in 0..16 {
        let c_lane = l.repack(c_word, f);
        let _ = lane;
        packed.push(l.mul(dot_reg, c_lane));
    }
    let mut level = packed;
    while level.len() > 1 {
        let mut next = Vec::with_capacity(level.len().div_ceil(2));
        for pair in level.chunks(2) {
            if pair.len() == 2 {
                next.push(l.add(pair[0], pair[1]));
            } else {
                next.push(pair[0]);
            }
        }
        level = next;
    }
    let word = l.repack(level[0], DataType::Bits(512));
    l.fifo_write(r_out, word);
    l.finish();
    top.finish();
    b.finish().expect("vector product design is valid IR")
}

/// The single-loop `(a · b) c` pipeline of Fig. 17: `width` float lanes
/// multiplied and reduced to one scalar (the waist), then scaled into the
/// output vector. Used by the Fig. 17 regenerator to extract the
/// inter-stage width profile for the min-area skid-buffer DP.
pub fn dot_scale_pipeline(width: usize) -> Design {
    let f = DataType::Float32;
    let mut b = DesignBuilder::new("dot_scale");
    let a_in = b.fifo("a_in", DataType::Bits(512), 4);
    let c_in = b.fifo("c_in", DataType::Bits(512), 4);
    let r_out = b.fifo("r_out", DataType::Bits(512), 4);

    let mut k = b.kernel("dot_scale");
    let mut l = k.pipelined_loop("main", 1 << 12, 1);
    // Stream interfaces (flow control endpoints); operand lanes arrive at
    // their MAC stage from per-stage memory ports, so only the running
    // partial sum travels between stages — exactly the paper's Fig. 17
    // observation that stages 1..waist pass a single number.
    let _ = l.fifo_read(a_in, DataType::Bits(512));
    let _ = l.fifo_read(c_in, DataType::Bits(512));

    // MAC chain: acc += a_i * b_i, one lane per chain step.
    let mut acc: Option<InstId> = None;
    for lane in 0..width {
        let a = l.varying_input(&format!("a{lane}"), f);
        let bb = l.varying_input(&format!("b{lane}"), f);
        let prod = l.mul(a, bb);
        acc = Some(match acc {
            Some(s) => l.add(s, prod),
            None => prod,
        });
    }
    let dot = l.reg(acc.expect("width >= 1")); // the scalar waist

    // The scaled output *vector* stays wide to the end of the pipeline
    // (Fig. 17's spindle: narrow chain -> scalar waist -> wide vector).
    let mut packed_out: Option<InstId> = None;
    for lane in 0..width {
        let c_lane = l.varying_input(&format!("c{lane}"), f);
        let scaled = l.mul(dot, c_lane);
        let o = l.output(&format!("r{lane}"), scaled);
        packed_out = Some(o);
    }
    if let Some(o) = packed_out {
        let word = l.repack(o, DataType::Bits(512));
        l.fifo_write(r_out, word);
    }
    l.finish();
    k.finish();
    b.finish().expect("dot-scale design is valid IR")
}

/// The Table-1/Table-2 configuration: 512 lanes in 4 PEs, AWS F1.
pub fn benchmark() -> Benchmark {
    Benchmark {
        name: "Vector Arithmetic",
        broadcast_type: "Pipe. Ctrl. & Sync.",
        design: design(512, 4),
        device: Device::ultrascale_plus_vu9p(),
        clock_mhz: 333.0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pe_partition_is_exact() {
        let d = design(128, 4);
        assert_eq!(d.kernels.len(), 5); // 4 PEs + top
                                        // Each PE has 32 lanes -> 32 fmuls.
        let muls = d.kernels[0].loops[0]
            .body
            .iter()
            .filter(|(_, i)| matches!(i.kind, hlsb_ir::OpKind::Mul))
            .count();
        assert_eq!(muls, 32);
    }

    #[test]
    fn static_latency_reflects_tree_depth() {
        let d = design(128, 4);
        // chunk = 32: 3 + 4*5 = 23 cycles.
        assert_eq!(d.kernels[0].static_latency, Some(23));
    }

    #[test]
    #[should_panic(expected = "width must divide")]
    fn rejects_indivisible_width() {
        let _ = design(100, 3);
    }
}
