//! Rosetta face detection (paper \[10\]), Viola-Jones style cascade.
//!
//! A sliding image window is broadcast to many parallel weak classifiers;
//! each classifier sums a handful of window pixels and thresholds the sum.
//! The *window registers* are the broadcast sources: every pixel is read
//! by several classifiers in the same cycle (data broadcast on ZC706).

use crate::Benchmark;
use hlsb_fabric::Device;
use hlsb_ir::builder::DesignBuilder;
use hlsb_ir::{CmpPred, DataType, Design, InstId};

/// Builds the cascade stage.
///
/// * `window` — window side (the broadcast register file is `window²`
///   pixels);
/// * `classifiers` — number of parallel weak classifiers.
pub fn design(window: usize, classifiers: usize) -> Design {
    let ty = DataType::Int(16);
    let mut b = DesignBuilder::new("face_detect");
    let fin = b.fifo("pixels_in", DataType::Bits(128), 2);
    let fout = b.fifo("hits_out", DataType::Bool, 2);

    let mut k = b.kernel("cascade");
    let mut l = k.pipelined_loop("scan", 320 * 240, 1);

    let _ = l.fifo_read(fin, DataType::Bits(128));
    // The integral-image window: loop-invariant within the unrolled
    // classifier evaluation (updated once per slide).
    let pixels: Vec<InstId> = (0..window * window)
        .map(|i| l.invariant_input(&format!("win{i}"), ty))
        .collect();

    let mut votes = Vec::with_capacity(classifiers);
    for c in 0..classifiers {
        // Each weak classifier reads a deterministic pattern of 6 pixels
        // (two Haar rectangles).
        let p = |j: usize| pixels[(c * 7 + j * 5) % pixels.len()];
        let a1 = l.add(p(0), p(1));
        let a2 = l.add(a1, p(2));
        let b1 = l.add(p(3), p(4));
        let b2 = l.add(b1, p(5));
        let feat = l.sub(a2, b2);
        let thr = l.constant(&format!("thr{c}"), ty);
        votes.push(l.cmp(CmpPred::Gt, feat, thr));
    }

    // Vote count threshold (AND-reduce here: strong classifier).
    let mut level = votes;
    while level.len() > 1 {
        let mut next = Vec::with_capacity(level.len().div_ceil(2));
        for pair in level.chunks(2) {
            if pair.len() == 2 {
                next.push(l.and(pair[0], pair[1]));
            } else {
                next.push(pair[0]);
            }
        }
        level = next;
    }
    l.fifo_write(fout, level[0]);
    l.finish();
    k.finish();
    b.finish().expect("face detection design is valid IR")
}

/// The Table-1 configuration: 5x5 window, 48 classifiers, ZC706.
pub fn benchmark() -> Benchmark {
    Benchmark {
        name: "Face Detection",
        broadcast_type: "Data",
        design: design(5, 48),
        device: Device::zynq_zc706(),
        clock_mhz: 250.0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pixels_are_multiply_read() {
        let d = design(5, 48);
        let body = &d.kernels[0].loops[0].body;
        // 48 classifiers * 6 reads over 25 pixels ≈ 11 readers each.
        let max_fanout = body
            .iter()
            .filter(|(_, i)| matches!(i.kind, hlsb_ir::OpKind::Input { invariant: true }))
            .map(|(id, _)| body.fanout(id))
            .max()
            .unwrap();
        assert!(max_fanout >= 8, "window pixel fanout {max_fanout}");
    }

    #[test]
    fn classifier_count_scales() {
        assert!(design(5, 16).inst_count() < design(5, 64).inst_count());
    }
}
