//! HBM-based Jacobi stencil (paper \[2, 12\], §5.3), Alveo U50.
//!
//! The SODA compiler "uses 28 independent memory ports of the HBM. The
//! 512-bit data from each HBM port is scattered into 8 64-bit FIFOs ...
//! However, the SODA compiler expresses the 28 independent flows together
//! in a single loop, forming a sync broadcast pattern" — all ports and all
//! destination FIFOs synchronize every iteration. Synchronization pruning
//! (§4.2) splits the loop per flow, raising Fmax from 191 to 324 MHz.

use crate::Benchmark;
use hlsb_fabric::Device;
use hlsb_ir::builder::DesignBuilder;
use hlsb_ir::{DataType, Design};

/// Builds the scatter stage with the given number of HBM ports (the paper
/// uses 28) and 64-bit sub-channels per port (the paper uses 8).
pub fn design(ports: usize, subchannels: usize) -> Design {
    let wide = DataType::Bits(512);
    let narrow = DataType::Int(64);
    let mut b = DesignBuilder::new("hbm_stencil_scatter");
    b.dataflow();

    let mut hbm_in = Vec::with_capacity(ports);
    let mut outs = Vec::with_capacity(ports);
    for p in 0..ports {
        hbm_in.push(b.fifo(format!("hbm{p}"), wide, 4));
        let per_port: Vec<_> = (0..subchannels)
            .map(|s| b.fifo(format!("ch{p}_{s}"), narrow, 8))
            .collect();
        outs.push(per_port);
    }

    // The SODA-style single loop containing every independent flow.
    let mut k = b.kernel("scatter_all_ports");
    let mut l = k.pipelined_loop("all_flows", 1 << 20, 1);
    let half = l.constant("half", narrow);
    for p in 0..ports {
        let word = l.fifo_read(hbm_in[p], wide);
        for out in &outs[p] {
            // Per-channel stencil arithmetic (the downstream kernel's
            // first stage), so the flow has a real datapath.
            let part = l.repack(word, narrow);
            let shifted = l.shr(part, half);
            let r1 = l.reg(shifted);
            let summed = l.add(r1, part);
            let r2 = l.reg(summed);
            l.fifo_write(*out, r2);
        }
    }
    l.finish();
    k.finish();
    b.finish().expect("hbm stencil design is valid IR")
}

/// The Table-1 configuration: 28 HBM ports x 8 sub-channels on Alveo U50.
pub fn benchmark() -> Benchmark {
    Benchmark {
        name: "HBM-Based Stencil",
        broadcast_type: "Pipe. Ctrl. & Sync.",
        design: design(28, 8),
        device: Device::alveo_u50(),
        clock_mhz: 333.0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hlsb_sync::split_dataflow_design;

    #[test]
    fn single_loop_contains_all_flows() {
        let d = design(28, 8);
        assert_eq!(d.kernels.len(), 1);
        assert_eq!(d.fifos.len(), 28 * 9);
    }

    #[test]
    fn pruning_splits_into_28_kernels() {
        let d = design(28, 8);
        let (split, report) = split_dataflow_design(&d);
        assert_eq!(report.kernels_out, 28);
        assert_eq!(split.kernels.len(), 28);
    }
}
