//! Pattern matching (paper \[4\], §5.5, Table 3), Virtex-7.
//!
//! A text window is matched against many patterns by parallel comparator
//! PEs: the window characters broadcast to every PE (data broadcast), and
//! the controller synchronizes all PE `done`s before combining the match
//! flags (sync broadcast, Fig. 6b). Table 3 shows both optimizations are
//! needed: 187 → 208 MHz with the data fix alone, 278 MHz with both.

use crate::Benchmark;
use hlsb_fabric::Device;
use hlsb_ir::builder::DesignBuilder;
use hlsb_ir::{CmpPred, DataType, Design, InstId, KernelId};

/// Builds the matcher with `pes` pattern PEs over a `window`-character
/// comparison window.
pub fn design(pes: usize, window: usize) -> Design {
    let ch = DataType::Int(8);
    let mut b = DesignBuilder::new("pattern_match");

    // One comparator PE per pattern, fixed latency.
    let mut pe_ids: Vec<KernelId> = Vec::with_capacity(pes);
    for p in 0..pes {
        let mut pe = b.kernel(format!("match_pe{p}"));
        pe.set_static_latency(2 + window as u64 / 4);
        let mut l = pe.pipelined_loop("cmp", 1 << 16, 1);
        let mut flags: Vec<InstId> = Vec::with_capacity(window);
        for c in 0..window {
            let t = l.varying_input(&format!("t{c}"), ch);
            let pat = l.constant(&format!("pat{p}_{c}"), ch);
            flags.push(l.cmp(CmpPred::Eq, t, pat));
        }
        let mut level = flags;
        while level.len() > 1 {
            let mut next = Vec::with_capacity(level.len().div_ceil(2));
            for pair in level.chunks(2) {
                if pair.len() == 2 {
                    next.push(l.and(pair[0], pair[1]));
                } else {
                    next.push(pair[0]);
                }
            }
            level = next;
        }
        l.output("hit", level[0]);
        l.finish();
        pe_ids.push(pe.finish());
    }

    // Top: the text window registers broadcast into every PE; each PE's
    // match flag leaves through its own FIFO (as the accelerator's result
    // memory ports do), so no artificial combine network exists.
    let fin = b.fifo("text_in", DataType::Bits(64), 4);
    let fouts: Vec<_> = (0..pes)
        .map(|p| b.fifo(format!("match_out{p}"), DataType::Bool, 2))
        .collect();
    let mut top = b.kernel("top");
    let mut l = top.pipelined_loop("scan", 1 << 16, 1);
    let word = l.fifo_read(fin, DataType::Bits(64));
    // Window characters: loop-invariant shift-register taps, each read by
    // every PE in the same cycle.
    let taps: Vec<InstId> = (0..window)
        .map(|c| l.invariant_input(&format!("win{c}"), ch))
        .collect();
    let _ = word;
    for (i, &pid) in pe_ids.iter().enumerate() {
        let hit = l.call(pid, taps.clone(), DataType::Bool);
        l.fifo_write(fouts[i], hit);
    }
    l.finish();
    top.finish();
    b.finish().expect("pattern matching design is valid IR")
}

/// The Table-1/Table-3 configuration: 32 PEs, 16-char window, Virtex-7.
pub fn benchmark() -> Benchmark {
    Benchmark {
        name: "Pattern Matching",
        broadcast_type: "Data & Sync.",
        design: design(32, 16),
        device: Device::virtex7(),
        clock_mhz: 300.0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn window_taps_broadcast_to_all_pes() {
        let d = design(32, 16);
        let top = &d.kernels[32].loops[0].body;
        let tap_fanout = top
            .iter()
            .filter(|(_, i)| matches!(i.kind, hlsb_ir::OpKind::Input { invariant: true }))
            .map(|(id, _)| top.fanout(id))
            .max()
            .unwrap();
        assert_eq!(tap_fanout, 32);
    }

    #[test]
    fn pes_have_static_latency() {
        let d = design(8, 16);
        for p in 0..8 {
            assert_eq!(d.kernels[p].static_latency, Some(6));
        }
    }
}
