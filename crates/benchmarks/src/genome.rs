//! Genome sequencing chaining kernel (paper \[1\], Fig. 13).
//!
//! The minimap2-style chaining score loop: for each current anchor, the
//! scores against the previous `BACK_SEARCH_COUNT` anchors are computed in
//! one fully unrolled, pipelined iteration. Every field of the *current*
//! anchor (`curr.x`, `curr.y`, `curr.tag`, plus scalar parameters
//! `avg_qspan`, `max_dist_x`, `max_dist_y`, `bw`) is loop-invariant and
//! fans out to all unrolled copies — the paper's flagship data broadcast
//! (0.78 ns sub measured at 2.08 ns, Fig. 14/15).

use crate::Benchmark;
use hlsb_fabric::Device;
use hlsb_ir::builder::DesignBuilder;
use hlsb_ir::{CmpPred, DataType, Design};

/// Builds the chaining kernel with the given unroll factor
/// (`BACK_SEARCH_COUNT` in the original source).
pub fn design(unroll: u32) -> Design {
    let ty = DataType::Int(32);
    let mut b = DesignBuilder::new("genome_chaining");
    let fin = b.fifo("anchors_in", DataType::Bits(128), 2);
    let fout = b.fifo("scores_out", ty, 2);

    let mut k = b.kernel("chain");
    let mut l = k.pipelined_loop("back_search", 1 << 16, 1);
    l.set_unroll(unroll);

    // Broadcast sources (blue in the paper's Fig. 13).
    let curr_x = l.invariant_input("curr_x", ty);
    let curr_y = l.invariant_input("curr_y", ty);
    let curr_tag = l.invariant_input("curr_tag", ty);
    let avg_qspan = l.invariant_input("avg_qspan", ty);
    let max_dist_x = l.invariant_input("max_dist_x", ty);
    let max_dist_y = l.invariant_input("max_dist_y", ty);
    let bw = l.invariant_input("bw", ty);
    let neg_inf = l.constant("NEG_INF_SCORE", ty);
    let zero = l.constant("zero", ty);
    let one = l.constant("one", ty);

    // Per-copy anchor fields (prev[j]).
    let word = l.fifo_read(fin, DataType::Bits(128));
    let prev_x = l.repack(word, ty);
    let prev_y = l.repack(word, ty);
    let prev_w = l.repack(word, ty);
    let prev_tag = l.repack(word, ty);

    // dist_x = prev[j].x - curr.x; dist_y = prev[j].y - curr.y;
    let dist_x = l.sub(prev_x, curr_x);
    let dist_y = l.sub(prev_y, curr_y);

    // dd = |dist_x - dist_y|; min_d = min(dist_y, dist_x);
    let diff = l.sub(dist_x, dist_y);
    let dd = l.abs(diff);
    let min_d = l.min(dist_y, dist_x);

    // log_dd = log2(dd); temp = min(min_d, prev[j].w);
    let log_dd = l.log2(dd);
    let temp = l.min(min_d, prev_w);

    // dp_score[j] = temp - dd*avg_qspan - (log_dd >> 1)
    let penalty = l.mul(dd, avg_qspan);
    let half_log = l.shr(log_dd, one);
    let s1 = l.sub(temp, penalty);
    let dp_score = l.sub(s1, half_log);

    // The disqualification predicate.
    let c1 = l.cmp(CmpPred::Eq, dist_x, zero);
    let c2 = l.cmp(CmpPred::Gt, dist_x, max_dist_x);
    let c3 = l.cmp(CmpPred::Gt, dist_y, max_dist_y);
    let c4 = l.cmp(CmpPred::Le, dist_y, zero);
    let c5 = l.cmp(CmpPred::Gt, dd, bw);
    let c6 = l.cmp(CmpPred::Ne, curr_tag, prev_tag);
    let o1 = l.or(c1, c2);
    let o2 = l.or(c3, c4);
    let o3 = l.or(c5, c6);
    let o4 = l.or(o1, o2);
    let cond = l.or(o4, o3);

    let score = l.select(cond, neg_inf, dp_score);
    l.fifo_write(fout, score);
    l.finish();
    k.finish();
    b.finish().expect("genome design is valid IR")
}

/// The Table-1 configuration: `BACK_SEARCH_COUNT = 64` on AWS F1.
pub fn benchmark() -> Benchmark {
    Benchmark {
        name: "Genome Sequencing",
        broadcast_type: "Data",
        design: design(64),
        device: Device::ultrascale_plus_vu9p(),
        clock_mhz: 333.0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hlsb_ir::unroll::unroll_loop;

    #[test]
    fn unrolled_broadcast_factor_matches_unroll() {
        let d = design(64);
        let u = unroll_loop(&d.kernels[0].loops[0]);
        // curr_x is instruction 0; its unrolled fanout is the unroll factor.
        let curr_x = u.copies[0][0];
        assert_eq!(u.looop.body.fanout(curr_x), 64);
    }

    #[test]
    fn scales_with_parameter() {
        // The pragma defers replication to the unroll transform.
        let small = unroll_loop(&design(8).kernels[0].loops[0]).looop.body.len();
        let large = unroll_loop(&design(64).kernels[0].loops[0])
            .looop
            .body
            .len();
        assert!(small < large);
    }
}
