//! Stream buffer (the paper's Fig. 18 / §5.5 example).
//!
//! "Consists of two loops, which first write to a very large buffer and
//! then read from the buffer." Both broadcast categories appear at once:
//! the source data register fans out to every BRAM unit of the buffer
//! (data broadcast), and the enable back-pressure fans out to all units
//! and pipeline registers (control broadcast). The §5.5 sweep (Fig. 19)
//! varies the buffer size.

use crate::Benchmark;
use hlsb_fabric::Device;
use hlsb_ir::builder::DesignBuilder;
use hlsb_ir::{DataType, Design, Partition};

/// Builds the stream buffer with the given capacity in 32-bit words.
pub fn design(words: usize) -> Design {
    let ty = DataType::Int(32);
    let mut b = DesignBuilder::new("stream_buffer");
    let arr = b.array("buffer", ty, words, Partition::None);
    let fin = b.fifo("in_fifo", ty, 2);
    let fout = b.fifo("out_fifo", ty, 2);

    let mut k = b.kernel("top");
    {
        // loop1: data into buffer.
        let mut l = k.pipelined_loop("fill", words as u64, 1);
        let i = l.indvar("i");
        let v = l.fifo_read(fin, ty);
        l.store(arr, i, v);
        l.finish();
    }
    {
        // loop2: data out of buffer.
        let mut l = k.pipelined_loop("drain", words as u64, 1);
        let i = l.indvar("i");
        let v = l.load(arr, i, ty);
        l.fifo_write(fout, v);
        l.finish();
    }
    k.finish();
    b.finish().expect("stream buffer design is valid IR")
}

/// The Table-1 configuration: 95% of the VU9P's BRAM (≈ 2M words).
pub fn benchmark() -> Benchmark {
    Benchmark {
        name: "Stream Buffer",
        broadcast_type: "Pipe. Ctrl. & Data",
        // 2052 * 36Kb units ≈ 95% of 2160.
        design: design(2_306_048),
        device: Device::ultrascale_plus_vu9p(),
        clock_mhz: 333.0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buffer_spans_many_bram_units() {
        let d = design(737_280);
        assert_eq!(d.arrays[0].bram_units(), 640);
    }

    #[test]
    fn two_loops_fill_then_drain() {
        let d = design(4096);
        assert_eq!(d.kernels[0].loops.len(), 2);
        assert_eq!(d.kernels[0].loops[0].name, "fill");
        assert_eq!(d.kernels[0].loops[1].name, "drain");
    }

    #[test]
    fn table1_config_fits_95_percent_bram() {
        let b = benchmark();
        let units = b.design.arrays[0].bram_units() as f64;
        let pct = 100.0 * units / b.device.resources.brams as f64;
        assert!((90.0..=99.0).contains(&pct), "BRAM {pct:.0}%");
    }
}
