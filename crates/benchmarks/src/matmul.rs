//! Matrix multiply (paper \[4\]), parallelism increased to "expose the
//! problem" (§5.1).
//!
//! Blocked GEMM inner loop: one `A` element is broadcast to `pes` integer
//! MAC units against a row of `B`, deep-pipelined behind FIFO interfaces.
//! Exhibits both the data broadcast (the `A` element) and the pipeline
//! control broadcast (the stall net over the long MAC pipeline).

use crate::Benchmark;
use hlsb_fabric::Device;
use hlsb_ir::builder::DesignBuilder;
use hlsb_ir::{DataType, Design};

/// Builds the GEMM kernel with `pes` MAC lanes and `acc_depth` extra
/// accumulation stages (pipeline deepening).
pub fn design(pes: usize, acc_depth: usize) -> Design {
    let ty = DataType::Int(32);
    let mut b = DesignBuilder::new("matmul");
    let a_in = b.fifo("a_in", ty, 4);
    let b_in = b.fifo("b_in", DataType::Bits(512), 4);
    let c_out = b.fifo("c_out", DataType::Bits(512), 4);

    let mut k = b.kernel("gemm");
    let mut l = k.pipelined_loop("inner", 1 << 14, 1);

    // The broadcast source: one element of A per iteration burst.
    let a_elem = l.invariant_input("a_elem", ty);
    let _a_stream = l.fifo_read(a_in, ty);
    let b_word = l.fifo_read(b_in, DataType::Bits(512));

    let mut outs = Vec::with_capacity(pes);
    for pe in 0..pes {
        let b_elem = l.repack(b_word, ty);
        let prod = l.mul(a_elem, b_elem); // a_elem broadcast to all MACs
                                          // Accumulation pipeline (partial-sum chain deepened per the
                                          // "increase the parallelism ... to expose the problem" setup).
        let mut acc = prod;
        for _ in 0..acc_depth {
            let c = l.constant(&format!("psum{pe}"), ty);
            let s = l.add(acc, c);
            acc = l.reg(s);
        }
        outs.push(acc);
    }
    // Pack results back into a wide word (balanced combine tree; real
    // concatenation is wiring, the tree models the output mux network).
    let mut level = outs;
    while level.len() > 1 {
        let mut next = Vec::with_capacity(level.len().div_ceil(2));
        for pair in level.chunks(2) {
            if pair.len() == 2 {
                next.push(l.xor(pair[0], pair[1]));
            } else {
                next.push(pair[0]);
            }
        }
        level = next;
    }
    let word = l.repack(level[0], DataType::Bits(512));
    l.fifo_write(c_out, word);
    l.finish();
    k.finish();
    b.finish().expect("matmul design is valid IR")
}

/// The Table-1 configuration: 64 MACs, 8 accumulation stages, AWS F1.
pub fn benchmark() -> Benchmark {
    Benchmark {
        name: "Matrix Multiply",
        broadcast_type: "Pipe. Ctrl. & Data",
        design: design(64, 8),
        device: Device::ultrascale_plus_vu9p(),
        clock_mhz: 333.0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn a_element_broadcasts_to_all_pes() {
        let d = design(64, 4);
        let body = &d.kernels[0].loops[0].body;
        assert_eq!(body.fanout(hlsb_ir::InstId(0)), 64);
    }

    #[test]
    fn accumulation_regs_deepen_pipeline() {
        let shallow = design(8, 2);
        let deep = design(8, 12);
        let regs = |d: &Design| {
            d.kernels[0].loops[0]
                .body
                .iter()
                .filter(|(_, i)| matches!(i.kind, hlsb_ir::OpKind::Reg))
                .count()
        };
        assert!(regs(&deep) > regs(&shallow));
    }
}
