//! CLINK LSTM inference kernel (paper \[9\]), floating-point, N = 256.
//!
//! One LSTM gate evaluation: the current input activation `x_t` (and the
//! recurrent activation `h_t`) broadcast to `lanes` parallel
//! floating-point multipliers against per-node weights, followed by an
//! adder tree. The activation broadcast is the data-broadcast bottleneck;
//! the conservative HLS prediction for `fmul` (Fig. 9c) interacts with it.

use crate::Benchmark;
use hlsb_fabric::Device;
use hlsb_ir::builder::DesignBuilder;
use hlsb_ir::{DataType, Design, InstId};

/// Builds the gate kernel with the given number of parallel lanes
/// (the `HLS_N-Node` unroll; the paper adapts N = 256, banked into lanes).
pub fn design(lanes: usize) -> Design {
    let f = DataType::Float32;
    let mut b = DesignBuilder::new("lstm_gate");
    let w_in = b.fifo("weights_in", DataType::Bits(512), 4);
    let out = b.fifo("gate_out", f, 2);

    let mut k = b.kernel("gate");
    let mut l = k.pipelined_loop("nodes", 256, 1);

    // Broadcast activations.
    let x_t = l.invariant_input("x_t", f);
    let h_t = l.invariant_input("h_t", f);

    // Per-lane weights streamed in (16 f32 per 512-bit word).
    let mut products: Vec<InstId> = Vec::with_capacity(lanes * 2);
    for lane in 0..lanes {
        if lane % 16 == 0 {
            let _ = l.fifo_read(w_in, DataType::Bits(512));
        }
        let wx = l.varying_input(&format!("wx{lane}"), f);
        let wh = l.varying_input(&format!("wh{lane}"), f);
        products.push(l.mul(x_t, wx)); // x_t broadcast to all lanes
        products.push(l.mul(h_t, wh)); // h_t broadcast to all lanes
    }

    // Adder reduction tree.
    let mut level = products;
    while level.len() > 1 {
        let mut next = Vec::with_capacity(level.len().div_ceil(2));
        for pair in level.chunks(2) {
            if pair.len() == 2 {
                next.push(l.add(pair[0], pair[1]));
            } else {
                next.push(pair[0]);
            }
        }
        level = next;
    }
    let bias = l.constant("bias", f);
    let act = l.add(level[0], bias);
    l.fifo_write(out, act);
    l.finish();
    k.finish();
    b.finish().expect("lstm design is valid IR")
}

/// The Table-1 configuration: 32 lanes (N = 256 banked 8-way) on AWS F1.
pub fn benchmark() -> Benchmark {
    Benchmark {
        name: "LSTM Network",
        broadcast_type: "Data",
        design: design(32),
        device: Device::ultrascale_plus_vu9p(),
        clock_mhz: 333.0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn activation_broadcast_scales_with_lanes() {
        let d = design(32);
        let body = &d.kernels[0].loops[0].body;
        // x_t is instruction 0; it feeds one fmul per lane.
        assert_eq!(body.fanout(hlsb_ir::InstId(0)), 32);
    }

    #[test]
    fn reduction_tree_is_complete() {
        let d = design(8);
        // 8 lanes * 2 products = 16 leaves -> 15 adders + bias add.
        let adds = d.kernels[0].loops[0]
            .body
            .iter()
            .filter(|(_, i)| matches!(i.kind, hlsb_ir::OpKind::Add))
            .count();
        assert_eq!(adds, 16);
    }
}
