//! # hlsb-benchmarks — the paper's nine evaluation designs
//!
//! Parameterized reconstructions of the benchmarks in Table 1 of the DAC'20
//! paper, built from their published structure (source papers, code
//! snippets and §5 descriptions):
//!
//! | module | application | broadcast type | target |
//! |---|---|---|---|
//! | [`genome`] | genome sequencing chaining \[1\] | data | AWS F1 |
//! | [`lstm`] | CLINK LSTM inference \[9\] | data | AWS F1 |
//! | [`face_detect`] | Rosetta face detection \[10\] | data | ZC706 |
//! | [`matmul`] | matrix multiply \[4\] | pipe ctrl + data | AWS F1 |
//! | [`stream_buffer`] | large stream buffer (Fig. 18) | pipe ctrl + data | AWS F1 |
//! | [`stencil`] | SODA Jacobi pipeline \[2\] | pipe ctrl | AWS F1 |
//! | [`vector_arith`] | 512-wide vector product (Table 2) | pipe ctrl + sync | AWS F1 |
//! | [`hbm_stencil`] | HBM Jacobi, 28 ports \[2, 12\] | pipe ctrl + sync | Alveo U50 |
//! | [`pattern_match`] | pattern matching \[4\] | data + sync | Virtex-7 |
//!
//! Each module exposes a `design(params)` constructor and a `benchmark()`
//! preset with the paper's parameters and target device.

pub mod face_detect;
pub mod genome;
pub mod hbm_stencil;
pub mod lstm;
pub mod matmul;
pub mod pattern_match;
pub mod stencil;
pub mod stream_buffer;
pub mod vector_arith;

use hlsb_fabric::Device;
use hlsb_ir::Design;

/// A benchmark: a design plus its paper-mandated target device and clock.
#[derive(Debug, Clone)]
pub struct Benchmark {
    /// Display name (Table 1 row).
    pub name: &'static str,
    /// Broadcast classification from Table 1.
    pub broadcast_type: &'static str,
    /// The design.
    pub design: Design,
    /// Target FPGA.
    pub device: Device,
    /// HLS clock target, MHz.
    pub clock_mhz: f64,
}

/// All nine Table-1 benchmarks with the paper's parameters.
pub fn all_benchmarks() -> Vec<Benchmark> {
    vec![
        genome::benchmark(),
        lstm::benchmark(),
        face_detect::benchmark(),
        matmul::benchmark(),
        stream_buffer::benchmark(),
        stencil::benchmark(),
        vector_arith::benchmark(),
        hbm_stencil::benchmark(),
        pattern_match::benchmark(),
    ]
}

/// Synthetic designs the diagnostic tools (`explain`, `trace`, sweeps)
/// and the compile-farm server can address by name alongside the
/// Table-1 set — parameterized structures the paper analyzes but does
/// not benchmark as a whole application.
pub fn synthetic_benchmarks() -> Vec<Benchmark> {
    vec![Benchmark {
        name: "dot-scale 512",
        broadcast_type: "Pipe. Ctrl.",
        design: vector_arith::dot_scale_pipeline(512),
        device: Device::ultrascale_plus_vu9p(),
        clock_mhz: 333.0,
    }]
}

/// Resolves a benchmark by case-insensitive substring over the Table-1
/// set plus [`synthetic_benchmarks`]. Non-alphanumerics are ignored on
/// both sides, so `dotscale` matches "dot-scale 512" and `vector`
/// matches "Vector Product". Both the display name and the design name
/// are searched.
pub fn find_benchmark(pattern: &str) -> Option<Benchmark> {
    fn norm(s: &str) -> String {
        s.chars()
            .filter(char::is_ascii_alphanumeric)
            .map(|c| c.to_ascii_lowercase())
            .collect()
    }
    let needle = norm(pattern);
    all_benchmarks()
        .into_iter()
        .chain(synthetic_benchmarks())
        .find(|b| norm(b.name).contains(&needle) || norm(&b.design.name).contains(&needle))
}

#[cfg(test)]
mod tests {
    use super::*;
    use hlsb_ir::verify::verify_design;

    #[test]
    fn all_nine_build_and_verify() {
        let benches = all_benchmarks();
        assert_eq!(benches.len(), 9);
        for b in &benches {
            verify_design(&b.design).unwrap_or_else(|e| panic!("{}: {e}", b.name));
            assert!(b.clock_mhz > 100.0);
            assert!(b.design.inst_count() > 0, "{} is empty", b.name);
        }
    }

    #[test]
    fn names_match_table1() {
        let names: Vec<&str> = all_benchmarks().iter().map(|b| b.name).collect();
        assert!(names.contains(&"Genome Sequencing"));
        assert!(names.contains(&"HBM-Based Stencil"));
        assert!(names.contains(&"Pattern Matching"));
    }
}
