//! SODA 2D Jacobi stencil super-pipeline (paper \[2\], §5.4).
//!
//! "We concatenate different iterations of the kernel to change the size
//! of the pipeline. ... For the super pipeline of eight Jacobi iterations,
//! it has 370 datapath stages and produces 512-bit results." Each
//! iteration is a line-buffered 5-point stencil working on a 512-bit
//! vector of sixteen 32-bit points. The only broadcast here is the
//! *pipeline control* one: the stall signal spans every stage (Fig. 16).

use crate::Benchmark;
use hlsb_fabric::Device;
use hlsb_ir::builder::DesignBuilder;
use hlsb_ir::{DataType, Design, InstId, Partition};

/// Datapath stages per Jacobi iteration (≈ 370 / 8 from §5.4).
pub const STAGES_PER_ITERATION: usize = 46;

/// Builds the super-pipeline with the given number of concatenated Jacobi
/// iterations (1..=8 in Fig. 16).
pub fn design(iterations: usize) -> Design {
    let vec_ty = DataType::Int(512); // 16 packed 32-bit points
    let mut b = DesignBuilder::new("jacobi_pipeline");
    let fin = b.fifo("in_stream", vec_ty, 4);
    let fout = b.fifo("out_stream", vec_ty, 4);
    // One line buffer per iteration (two image rows of 2048 points).
    let line_buffers: Vec<_> = (0..iterations)
        .map(|i| b.array(format!("line_buf{i}"), vec_ty, 256, Partition::None))
        .collect();

    let mut k = b.kernel("jacobi");
    let mut l = k.pipelined_loop("stream", 1 << 20, 1);
    let mut v = l.fifo_read(fin, vec_ty);
    let quarter = l.constant("quarter", DataType::Int(32));

    for (it, &lb) in line_buffers.iter().enumerate() {
        // Line-buffer window formation: store the incoming row, read the
        // delayed rows.
        let i = l.indvar(&format!("col{it}"));
        l.store(lb, i, v);
        let north = l.load(lb, i, vec_ty);

        // 5-point stencil arithmetic: three parallel 512-bit lanes per
        // stage (window taps), registers forcing the SODA-like deep
        // pipeline. Each iteration costs ≈ 5% of the device's LUTs, as the
        // paper reports, so the super-pipeline physically spans the die.
        let first = l.add(v, north);
        let mut lane_a = l.reg(first);
        let mut lane_b = l.reg(north);
        let mut lane_c = l.reg(v);
        for s in 0..STAGES_PER_ITERATION - 3 {
            let _ = s;
            let na = l.add(lane_a, lane_b);
            let nb = l.shr(lane_b, quarter);
            let nc = l.xor(lane_c, lane_a);
            lane_a = l.reg(na);
            lane_b = l.reg(nb);
            lane_c = l.reg(nc);
        }
        let mixed1 = l.add(lane_a, lane_c);
        let mixed2 = l.add(mixed1, lane_b);
        let acc: InstId = l.reg(mixed2);
        v = acc;
    }
    l.fifo_write(fout, v);
    l.finish();
    k.finish();
    b.finish().expect("stencil design is valid IR")
}

/// The Table-1 configuration: the full 8-iteration super-pipeline.
pub fn benchmark() -> Benchmark {
    Benchmark {
        name: "Stencil",
        broadcast_type: "Pipe. Ctrl.",
        design: design(8),
        device: Device::ultrascale_plus_vu9p(),
        clock_mhz: 333.0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eight_iterations_approach_370_stages() {
        // §5.4: the 8-iteration super-pipeline has ≈ 370 datapath stages.
        let d = design(8);
        let sched = hlsb_sched::schedule_loop(
            &d.kernels[0].loops[0],
            &d,
            &hlsb_delay::HlsPredictedModel::new(),
            3.0,
        );
        assert!(
            (330..=420).contains(&sched.depth),
            "expected ≈ 370 stages, got {}",
            sched.depth
        );
    }

    #[test]
    fn pipeline_length_scales_linearly() {
        let d1 = design(1).inst_count();
        let d4 = design(4).inst_count();
        assert!(d4 > 3 * d1 && d4 < 5 * d1);
    }
}
