//! The collected trace tree and its normalized (timestamp-stripped,
//! order-canonical) view used for determinism checks.

use crate::metrics::MetricsRegistry;
use crate::span::{DecisionEvent, SpanNode};
use crate::value::Value;

/// A finished trace: the span forest (creation order, parent links by id)
/// plus the metrics recorded alongside it.
///
/// Full `PartialEq` includes timestamps — use [`TraceTree::normalized`]
/// when comparing runs for decision equivalence.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TraceTree {
    /// All spans, ordered by creation (`spans[i].id == i`).
    pub spans: Vec<SpanNode>,
    /// Counters and histograms recorded during the run.
    pub metrics: MetricsRegistry,
}

impl TraceTree {
    /// The first root span (no parent), if any.
    pub fn root(&self) -> Option<&SpanNode> {
        self.spans.iter().find(|s| s.parent.is_none())
    }

    /// Children of the given span, in creation order.
    pub fn children(&self, id: u32) -> impl Iterator<Item = &SpanNode> {
        self.spans.iter().filter(move |s| s.parent == Some(id))
    }

    /// Slash-joined name path from the root to this span, e.g.
    /// `flow/schedule`.
    pub fn path(&self, id: u32) -> String {
        let mut parts = Vec::new();
        let mut cur = Some(id);
        while let Some(i) = cur {
            let span = &self.spans[i as usize];
            parts.push(span.name.as_str());
            cur = span.parent;
        }
        parts.reverse();
        parts.join("/")
    }

    /// The first span with the given name, if any.
    pub fn find(&self, name: &str) -> Option<&SpanNode> {
        self.spans.iter().find(|s| s.name == name)
    }

    /// All decision events across all spans whose name matches, in span
    /// creation order.
    pub fn events_named(&self, name: &str) -> Vec<&DecisionEvent> {
        self.spans
            .iter()
            .flat_map(|s| s.events.iter())
            .filter(|e| e.name == name)
            .collect()
    }

    /// The timestamp-stripped, volatile-stripped, path-sorted view of this
    /// tree. Two runs that made the same decisions — regardless of wall
    /// time, caching, or thread interleaving — produce equal normalized
    /// traces.
    pub fn normalized(&self) -> NormalizedTrace {
        let mut spans: Vec<NormalizedSpan> = self
            .spans
            .iter()
            .map(|s| NormalizedSpan {
                path: self.path(s.id),
                attrs: s
                    .attrs
                    .iter()
                    .filter(|a| !a.volatile)
                    .map(|a| (a.key.clone(), a.value.clone()))
                    .collect(),
                events: s
                    .events
                    .iter()
                    .map(|e| (e.name.clone(), e.attrs.clone()))
                    .collect(),
            })
            .collect();
        // Stable: same-path spans keep their relative (creation) order,
        // which is deterministic for the flow's per-stage sub-spans.
        spans.sort_by(|a, b| a.path.cmp(&b.path));
        NormalizedTrace {
            spans,
            metrics: self.metrics.clone(),
        }
    }

    /// Indented plain-text provenance tree: one line per span (name +
    /// non-volatile attrs), decision events as `-` bullet lines beneath.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let roots: Vec<u32> = self
            .spans
            .iter()
            .filter(|s| s.parent.is_none())
            .map(|s| s.id)
            .collect();
        for root in roots {
            self.render_span(root, 0, &mut out);
        }
        out
    }

    fn render_span(&self, id: u32, depth: usize, out: &mut String) {
        let span = &self.spans[id as usize];
        let indent = "  ".repeat(depth);
        out.push_str(&format!("{indent}{}", span.name));
        if !span.attrs.is_empty() {
            let attrs: Vec<String> = span
                .attrs
                .iter()
                .map(|a| format!("{}={}", a.key, a.value))
                .collect();
            out.push_str(&format!(" [{}]", attrs.join(" ")));
        }
        if span.dur_us > 0.0 {
            out.push_str(&format!(" ({:.2} ms)", span.dur_us / 1000.0));
        }
        out.push('\n');
        for event in &span.events {
            let attrs: Vec<String> = event
                .attrs
                .iter()
                .map(|(k, v)| format!("{k}={v}"))
                .collect();
            out.push_str(&format!("{indent}  - {} {}\n", event.name, attrs.join(" ")));
        }
        let children: Vec<u32> = self.children(id).map(|s| s.id).collect();
        for child in children {
            self.render_span(child, depth + 1, out);
        }
    }
}

/// One span in a [`NormalizedTrace`]: its root-relative path, its
/// non-volatile attributes, and its decision events (names + payloads,
/// timestamps dropped).
#[derive(Debug, Clone, PartialEq)]
pub struct NormalizedSpan {
    /// Slash-joined name path from the root.
    pub path: String,
    /// Non-volatile attributes in insertion order.
    pub attrs: Vec<(String, Value)>,
    /// Decision events (name, payload) in insertion order.
    pub events: Vec<(String, Vec<(String, Value)>)>,
}

/// The determinism-comparable projection of a [`TraceTree`]: spans sorted
/// by path with timestamps, track ids, ids, and volatile attributes
/// removed. Equal for any two runs that made the same decisions.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct NormalizedTrace {
    /// Path-sorted normalized spans.
    pub spans: Vec<NormalizedSpan>,
    /// The metrics registry (already deterministic).
    pub metrics: MetricsRegistry,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::span::Tracer;

    fn sample(volatile_hits: u64, with_delay: bool) -> TraceTree {
        let tracer = Tracer::enabled();
        let root = tracer.root("flow");
        root.attr("design", "genome");
        root.attr_volatile("cache-hits", volatile_hits);
        {
            let sched = root.child("schedule");
            sched.event("schedule.split", vec![("cut", Value::U64(5))]);
            if with_delay {
                std::thread::sleep(std::time::Duration::from_millis(1));
            }
            sched.finish();
        }
        tracer.count("decisions.schedule.split", 1);
        root.finish();
        tracer.take_tree()
    }

    #[test]
    fn paths_and_lookup() {
        let tree = sample(0, false);
        assert_eq!(tree.path(1), "flow/schedule");
        assert_eq!(tree.root().unwrap().name, "flow");
        assert_eq!(tree.find("schedule").unwrap().id, 1);
        assert_eq!(tree.events_named("schedule.split").len(), 1);
    }

    #[test]
    fn normalized_ignores_time_and_volatile_attrs() {
        let a = sample(0, false);
        let b = sample(7, true);
        // Full equality fails on timestamps and the volatile attr...
        assert_ne!(a, b);
        // ...normalized equality holds.
        assert_eq!(a.normalized(), b.normalized());
    }

    #[test]
    fn normalized_distinguishes_different_decisions() {
        let a = sample(0, false);
        let tracer = Tracer::enabled();
        let root = tracer.root("flow");
        root.attr("design", "genome");
        {
            let sched = root.child("schedule");
            sched.event("schedule.split", vec![("cut", Value::U64(6))]);
        }
        tracer.count("decisions.schedule.split", 1);
        root.finish();
        let b = tracer.take_tree();
        assert_ne!(a.normalized(), b.normalized());
    }

    #[test]
    fn render_indents_and_lists_events() {
        let tree = sample(0, false);
        let text = tree.render();
        assert!(text.starts_with("flow [design=genome cache-hits=0]"));
        assert!(text.contains("\n  schedule"));
        assert!(text.contains("\n    - schedule.split cut=5\n"));
    }
}
