//! Metrics registry: monotonic counters and fixed-bucket histograms.

use std::collections::BTreeMap;

use crate::value::fmt_f64;

/// A fixed-bucket histogram. `bounds` are the upper edges of the first
/// `bounds.len()` buckets; one overflow bucket follows, so
/// `counts.len() == bounds.len() + 1`.
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    /// Upper bucket edges (inclusive), ascending.
    pub bounds: Vec<f64>,
    /// Per-bucket observation counts; the last entry is the overflow
    /// bucket.
    pub counts: Vec<u64>,
    /// Total number of observations.
    pub total: u64,
    /// Sum of all observed values.
    pub sum: f64,
}

impl Histogram {
    fn new(bounds: &[f64]) -> Self {
        Histogram {
            bounds: bounds.to_vec(),
            counts: vec![0; bounds.len() + 1],
            total: 0,
            sum: 0.0,
        }
    }

    fn observe(&mut self, value: f64) {
        let idx = self.bounds.partition_point(|b| *b < value);
        self.counts[idx] += 1;
        self.total += 1;
        self.sum += value;
    }

    /// Mean of the observed values (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.sum / self.total as f64
        }
    }

    fn merge(&mut self, other: &Histogram) {
        if self.bounds == other.bounds {
            for (c, o) in self.counts.iter_mut().zip(&other.counts) {
                *c += o;
            }
            self.total += other.total;
            self.sum += other.sum;
        } else {
            // Mismatched layouts: keep the totals honest, drop the shape.
            self.counts.iter_mut().for_each(|c| *c = 0);
            *self.counts.last_mut().unwrap() = self.total + other.total;
            self.total += other.total;
            self.sum += other.sum;
        }
    }
}

/// Named monotonic counters plus named fixed-bucket histograms. BTreeMaps
/// keep iteration (and therefore rendering and equality) deterministic.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricsRegistry {
    /// Monotonic counters by name.
    pub counters: BTreeMap<String, u64>,
    /// Histograms by name.
    pub histograms: BTreeMap<String, Histogram>,
}

impl MetricsRegistry {
    /// Adds `delta` to the named counter.
    pub fn count(&mut self, name: &str, delta: u64) {
        *self.counters.entry(name.to_string()).or_insert(0) += delta;
    }

    /// Records `value` into the named histogram. The first observation
    /// fixes the bucket layout; later calls reuse it (the `bounds`
    /// argument is ignored once the histogram exists).
    pub fn observe(&mut self, name: &str, bounds: &[f64], value: f64) {
        self.histograms
            .entry(name.to_string())
            .or_insert_with(|| Histogram::new(bounds))
            .observe(value);
    }

    /// Current value of a counter (0 if never bumped).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// The named histogram, if any observations were recorded.
    pub fn histogram(&self, name: &str) -> Option<&Histogram> {
        self.histograms.get(name)
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.histograms.is_empty()
    }

    /// Accumulates another registry into this one (counters add;
    /// same-layout histograms add bucket-wise).
    pub fn merge(&mut self, other: &MetricsRegistry) {
        for (name, v) in &other.counters {
            *self.counters.entry(name.clone()).or_insert(0) += v;
        }
        for (name, h) in &other.histograms {
            match self.histograms.get_mut(name) {
                Some(mine) => mine.merge(h),
                None => {
                    self.histograms.insert(name.clone(), h.clone());
                }
            }
        }
    }

    /// Plain-text rendering: one line per counter, then one block per
    /// histogram with per-bucket counts.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for (name, v) in &self.counters {
            out.push_str(&format!("{name} = {v}\n"));
        }
        for (name, h) in &self.histograms {
            out.push_str(&format!(
                "{name}: n={} mean={}\n",
                h.total,
                fmt_f64((h.mean() * 1000.0).round() / 1000.0)
            ));
            let mut lo = f64::NEG_INFINITY;
            for (i, count) in h.counts.iter().enumerate() {
                let hi = h.bounds.get(i).copied();
                let label = match (lo.is_finite(), hi) {
                    (_, Some(hi)) if !lo.is_finite() => format!("<= {}", fmt_f64(hi)),
                    (true, Some(hi)) => format!("({}, {}]", fmt_f64(lo), fmt_f64(hi)),
                    _ => format!("> {}", fmt_f64(lo)),
                };
                if *count > 0 {
                    out.push_str(&format!("  {label}: {count}\n"));
                }
                if let Some(hi) = hi {
                    lo = hi;
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let mut m = MetricsRegistry::default();
        m.count("a", 2);
        m.count("a", 3);
        assert_eq!(m.counter("a"), 5);
        assert_eq!(m.counter("missing"), 0);
    }

    #[test]
    fn histogram_buckets_by_upper_edge() {
        let mut m = MetricsRegistry::default();
        let bounds = [1.0, 2.0, 4.0];
        m.observe("h", &bounds, 0.5); // <= 1.0
        m.observe("h", &bounds, 1.0); // <= 1.0 (inclusive edge)
        m.observe("h", &bounds, 3.0); // (2.0, 4.0]
        m.observe("h", &bounds, 9.0); // overflow
        let h = m.histogram("h").unwrap();
        assert_eq!(h.counts, vec![2, 0, 1, 1]);
        assert_eq!(h.total, 4);
        assert!((h.mean() - 3.375).abs() < 1e-12);
    }

    #[test]
    fn merge_adds_counters_and_buckets() {
        let mut a = MetricsRegistry::default();
        a.count("c", 1);
        a.observe("h", &[1.0], 0.5);
        let mut b = MetricsRegistry::default();
        b.count("c", 2);
        b.count("d", 7);
        b.observe("h", &[1.0], 2.0);
        a.merge(&b);
        assert_eq!(a.counter("c"), 3);
        assert_eq!(a.counter("d"), 7);
        let h = a.histogram("h").unwrap();
        assert_eq!(h.counts, vec![1, 1]);
        assert_eq!(h.total, 2);
    }

    #[test]
    fn render_is_deterministic_and_complete() {
        let mut m = MetricsRegistry::default();
        m.count("z", 1);
        m.count("a", 2);
        m.observe("h", &[1.0], 0.5);
        let text = m.render();
        // BTreeMap order: "a" before "z".
        assert!(text.find("a = 2").unwrap() < text.find("z = 1").unwrap());
        assert!(text.contains("h: n=1"));
        assert!(text.contains("<= 1.0: 1"));
    }
}
