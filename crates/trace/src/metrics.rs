//! Metrics registry: monotonic counters and fixed-bucket histograms.

use std::collections::BTreeMap;

use crate::value::fmt_f64;

/// A fixed-bucket histogram. `bounds` are the upper edges of the first
/// `bounds.len()` buckets; one overflow bucket follows, so
/// `counts.len() == bounds.len() + 1`.
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    /// Upper bucket edges (inclusive), ascending.
    pub bounds: Vec<f64>,
    /// Per-bucket observation counts; the last entry is the overflow
    /// bucket.
    pub counts: Vec<u64>,
    /// Total number of observations.
    pub total: u64,
    /// Sum of all observed values.
    pub sum: f64,
    /// Smallest observed value (`f64::INFINITY` while empty).
    pub min: f64,
    /// Largest observed value (`f64::NEG_INFINITY` while empty).
    pub max: f64,
}

impl Histogram {
    fn new(bounds: &[f64]) -> Self {
        Histogram {
            bounds: bounds.to_vec(),
            counts: vec![0; bounds.len() + 1],
            total: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    fn observe(&mut self, value: f64) {
        let idx = self.bounds.partition_point(|b| *b < value);
        self.counts[idx] += 1;
        self.total += 1;
        self.sum += value;
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Mean of the observed values (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.sum / self.total as f64
        }
    }

    /// The `q`-quantile (`q` clamped to `[0, 1]`) estimated by linear
    /// interpolation inside the containing bucket, with the bucket's
    /// edges tightened to the tracked `min`/`max` so `quantile(0.0)`
    /// is exactly the minimum and `quantile(1.0)` exactly the maximum.
    /// Returns 0 while empty.
    pub fn quantile(&self, q: f64) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        let rank = q.clamp(0.0, 1.0) * self.total as f64;
        let mut cum = 0u64;
        for (i, &count) in self.counts.iter().enumerate() {
            if count == 0 {
                continue;
            }
            if (cum + count) as f64 >= rank {
                let lo = if i == 0 {
                    self.min
                } else {
                    self.bounds[i - 1].max(self.min)
                };
                let hi = if i < self.bounds.len() {
                    self.bounds[i].min(self.max)
                } else {
                    self.max
                };
                let hi = hi.max(lo);
                let frac = ((rank - cum as f64) / count as f64).clamp(0.0, 1.0);
                return lo + (hi - lo) * frac;
            }
            cum += count;
        }
        self.max
    }

    /// Accumulates `other` into `self`. Returns `true` when the bucket
    /// layouts disagreed and the shape had to be dropped (totals, sum
    /// and min/max stay honest; every observation lands in the overflow
    /// bucket).
    fn merge(&mut self, other: &Histogram) -> bool {
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
        if self.bounds == other.bounds {
            for (c, o) in self.counts.iter_mut().zip(&other.counts) {
                *c += o;
            }
            self.total += other.total;
            false
        } else {
            // Mismatched layouts: keep the totals honest, drop the shape.
            self.total += other.total;
            self.counts.iter_mut().for_each(|c| *c = 0);
            *self.counts.last_mut().unwrap() = self.total;
            true
        }
    }
}

/// Named monotonic counters plus named fixed-bucket histograms. BTreeMaps
/// keep iteration (and therefore rendering and equality) deterministic.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricsRegistry {
    /// Monotonic counters by name.
    pub counters: BTreeMap<String, u64>,
    /// Histograms by name.
    pub histograms: BTreeMap<String, Histogram>,
}

impl MetricsRegistry {
    /// Adds `delta` to the named counter.
    pub fn count(&mut self, name: &str, delta: u64) {
        *self.counters.entry(name.to_string()).or_insert(0) += delta;
    }

    /// Records `value` into the named histogram. The first observation
    /// fixes the bucket layout; later calls reuse it (the `bounds`
    /// argument is ignored once the histogram exists).
    pub fn observe(&mut self, name: &str, bounds: &[f64], value: f64) {
        self.histograms
            .entry(name.to_string())
            .or_insert_with(|| Histogram::new(bounds))
            .observe(value);
    }

    /// Current value of a counter (0 if never bumped).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// The named histogram, if any observations were recorded.
    pub fn histogram(&self, name: &str) -> Option<&Histogram> {
        self.histograms.get(name)
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.histograms.is_empty()
    }

    /// Accumulates another registry into this one (counters add;
    /// same-layout histograms add bucket-wise). Mismatched histogram
    /// layouts keep totals honest but lose their bucket shape; every
    /// such loss bumps the `metrics.merge-shape-drops` counter so it is
    /// visible instead of silent.
    pub fn merge(&mut self, other: &MetricsRegistry) {
        for (name, v) in &other.counters {
            *self.counters.entry(name.clone()).or_insert(0) += v;
        }
        let mut shape_drops = 0;
        for (name, h) in &other.histograms {
            match self.histograms.get_mut(name) {
                Some(mine) => {
                    if mine.merge(h) {
                        shape_drops += 1;
                    }
                }
                None => {
                    self.histograms.insert(name.clone(), h.clone());
                }
            }
        }
        if shape_drops > 0 {
            self.count("metrics.merge-shape-drops", shape_drops);
        }
    }

    /// Plain-text rendering: one line per counter, then one block per
    /// histogram with per-bucket counts.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for (name, v) in &self.counters {
            out.push_str(&format!("{name} = {v}\n"));
        }
        for (name, h) in &self.histograms {
            let round3 = |v: f64| fmt_f64((v * 1000.0).round() / 1000.0);
            out.push_str(&format!(
                "{name}: n={} mean={} min={} max={} p50={} p95={}\n",
                h.total,
                round3(h.mean()),
                round3(if h.total == 0 { 0.0 } else { h.min }),
                round3(if h.total == 0 { 0.0 } else { h.max }),
                round3(h.quantile(0.5)),
                round3(h.quantile(0.95)),
            ));
            let mut lo = f64::NEG_INFINITY;
            for (i, count) in h.counts.iter().enumerate() {
                let hi = h.bounds.get(i).copied();
                let label = match (lo.is_finite(), hi) {
                    (_, Some(hi)) if !lo.is_finite() => format!("<= {}", fmt_f64(hi)),
                    (true, Some(hi)) => format!("({}, {}]", fmt_f64(lo), fmt_f64(hi)),
                    _ => format!("> {}", fmt_f64(lo)),
                };
                if *count > 0 {
                    out.push_str(&format!("  {label}: {count}\n"));
                }
                if let Some(hi) = hi {
                    lo = hi;
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let mut m = MetricsRegistry::default();
        m.count("a", 2);
        m.count("a", 3);
        assert_eq!(m.counter("a"), 5);
        assert_eq!(m.counter("missing"), 0);
    }

    #[test]
    fn histogram_buckets_by_upper_edge() {
        let mut m = MetricsRegistry::default();
        let bounds = [1.0, 2.0, 4.0];
        m.observe("h", &bounds, 0.5); // <= 1.0
        m.observe("h", &bounds, 1.0); // <= 1.0 (inclusive edge)
        m.observe("h", &bounds, 3.0); // (2.0, 4.0]
        m.observe("h", &bounds, 9.0); // overflow
        let h = m.histogram("h").unwrap();
        assert_eq!(h.counts, vec![2, 0, 1, 1]);
        assert_eq!(h.total, 4);
        assert!((h.mean() - 3.375).abs() < 1e-12);
    }

    #[test]
    fn merge_adds_counters_and_buckets() {
        let mut a = MetricsRegistry::default();
        a.count("c", 1);
        a.observe("h", &[1.0], 0.5);
        let mut b = MetricsRegistry::default();
        b.count("c", 2);
        b.count("d", 7);
        b.observe("h", &[1.0], 2.0);
        a.merge(&b);
        assert_eq!(a.counter("c"), 3);
        assert_eq!(a.counter("d"), 7);
        let h = a.histogram("h").unwrap();
        assert_eq!(h.counts, vec![1, 1]);
        assert_eq!(h.total, 2);
        assert_eq!(h.min, 0.5);
        assert_eq!(h.max, 2.0);
        assert_eq!(a.counter("metrics.merge-shape-drops"), 0);
    }

    #[test]
    fn mismatched_bounds_merge_drops_shape_but_not_totals() {
        let mut a = MetricsRegistry::default();
        a.observe("h", &[1.0, 2.0], 0.5);
        a.observe("h", &[1.0, 2.0], 1.5);
        let mut b = MetricsRegistry::default();
        b.observe("h", &[10.0], 7.0);
        a.merge(&b);
        let h = a.histogram("h").unwrap();
        assert_eq!(h.total, 3, "totals stay honest");
        assert!((h.sum - 9.0).abs() < 1e-12);
        assert_eq!(h.min, 0.5, "min survives the shape drop");
        assert_eq!(h.max, 7.0, "max survives the shape drop");
        assert_eq!(h.counts, vec![0, 0, 3], "all mass in the overflow bucket");
        assert_eq!(
            a.counter("metrics.merge-shape-drops"),
            1,
            "the loss is recorded, not silent"
        );
        // A second mismatched merge keeps counting.
        a.merge(&b);
        assert_eq!(a.counter("metrics.merge-shape-drops"), 2);
    }

    #[test]
    fn min_max_track_observations() {
        let mut m = MetricsRegistry::default();
        m.observe("h", &[10.0], 3.0);
        m.observe("h", &[10.0], -2.0);
        m.observe("h", &[10.0], 25.0);
        let h = m.histogram("h").unwrap();
        assert_eq!(h.min, -2.0);
        assert_eq!(h.max, 25.0);
    }

    #[test]
    fn quantiles_interpolate_within_buckets() {
        let mut m = MetricsRegistry::default();
        let bounds = [10.0, 20.0, 30.0];
        // 10 values uniformly in (10, 20]: 11, 12, ..., 20.
        for i in 1..=10 {
            m.observe("h", &bounds, 10.0 + i as f64);
        }
        let h = m.histogram("h").unwrap();
        assert_eq!(h.quantile(0.0), 11.0, "q=0 is the tracked minimum");
        assert_eq!(h.quantile(1.0), 20.0, "q=1 is the tracked maximum");
        // All mass sits in one bucket whose edges tighten to [11, 20]:
        // the median interpolates to the middle of that range.
        let p50 = h.quantile(0.5);
        assert!((p50 - 15.5).abs() < 1e-9, "p50 = {p50}");
        let p95 = h.quantile(0.95);
        assert!((19.0..=20.0).contains(&p95), "p95 = {p95}");
        // Spread across buckets: ranks land in the right bucket.
        let mut m = MetricsRegistry::default();
        m.observe("s", &[1.0, 2.0], 0.5);
        m.observe("s", &[1.0, 2.0], 1.5);
        m.observe("s", &[1.0, 2.0], 9.0);
        let s = m.histogram("s").unwrap();
        assert!(s.quantile(0.2) <= 1.0, "first third in the first bucket");
        let p50 = s.quantile(0.5);
        assert!((1.0..=2.0).contains(&p50), "median in the middle bucket");
        assert_eq!(s.quantile(1.0), 9.0);
        // Empty histograms answer 0 rather than NaN.
        let empty = Histogram::new(&[1.0]);
        assert_eq!(empty.quantile(0.5), 0.0);
    }

    #[test]
    fn render_is_deterministic_and_complete() {
        let mut m = MetricsRegistry::default();
        m.count("z", 1);
        m.count("a", 2);
        m.observe("h", &[1.0], 0.5);
        let text = m.render();
        // BTreeMap order: "a" before "z".
        assert!(text.find("a = 2").unwrap() < text.find("z = 1").unwrap());
        assert!(text.contains("h: n=1"));
        assert!(text.contains("<= 1.0: 1"));
    }
}
