//! The span collector: [`Tracer`], [`SpanGuard`] and the recorded node
//! types.

use std::cell::Cell;
use std::sync::{Arc, Mutex};
use std::time::Instant;

use crate::metrics::MetricsRegistry;
use crate::tree::TraceTree;
use crate::value::Value;

/// One key–value attribute on a span.
///
/// `volatile` marks attributes whose value legitimately varies between
/// equivalent runs — cache hit counts, thread counts, anything derived
/// from *how* the work was executed rather than *what* was decided. They
/// are stripped by [`TraceTree::normalized`], so trace equality quantifies
/// over decisions only.
#[derive(Debug, Clone, PartialEq)]
pub struct Attr {
    /// Attribute key.
    pub key: String,
    /// Attribute value.
    pub value: Value,
    /// Excluded from normalized trace equality when set.
    pub volatile: bool,
}

/// A structured decision event: a named point-in-time record of one
/// choice the pipeline made (a chain split, a pruned done-signal, a skid
/// buffer placed), with deterministic attributes.
#[derive(Debug, Clone, PartialEq)]
pub struct DecisionEvent {
    /// Event name, dot-namespaced by stage (`schedule.split`,
    /// `sync.prune`, `skid.buffer`, …).
    pub name: String,
    /// Microseconds since the tracer's epoch. Excluded from normalized
    /// equality.
    pub ts_us: f64,
    /// Deterministic event payload.
    pub attrs: Vec<(String, Value)>,
}

/// One recorded span.
#[derive(Debug, Clone, PartialEq)]
pub struct SpanNode {
    /// Creation-ordered id within the tree.
    pub id: u32,
    /// Parent span id; `None` for the root.
    pub parent: Option<u32>,
    /// Span name (`flow`, `front-end`, `trial-0`, …).
    pub name: String,
    /// Display track (Chrome `tid`): 0 for the main flow lane, `idx + 1`
    /// for placement trials. Excluded from normalized equality.
    pub track: u32,
    /// Start, microseconds since the tracer's epoch. Excluded from
    /// normalized equality.
    pub start_us: f64,
    /// Duration in microseconds (0 while open). Excluded from normalized
    /// equality.
    pub dur_us: f64,
    /// Attributes, in insertion order.
    pub attrs: Vec<Attr>,
    /// Decision events, in insertion order.
    pub events: Vec<DecisionEvent>,
}

#[derive(Default)]
struct State {
    spans: Vec<SpanNode>,
    metrics: MetricsRegistry,
}

struct Inner {
    epoch: Instant,
    state: Mutex<State>,
}

/// The span collector handle. Cheap to clone; all clones write to the
/// same tree. A disabled tracer ([`Tracer::disabled`]) carries nothing —
/// every operation on it (and on its guards) is a branch and a return.
#[derive(Clone, Default)]
pub struct Tracer {
    inner: Option<Arc<Inner>>,
}

impl Tracer {
    /// A collecting tracer; the epoch is now.
    pub fn enabled() -> Self {
        Tracer {
            inner: Some(Arc::new(Inner {
                epoch: Instant::now(),
                state: Mutex::new(State::default()),
            })),
        }
    }

    /// The zero-cost no-op tracer.
    pub fn disabled() -> Self {
        Tracer { inner: None }
    }

    /// Whether this tracer records anything.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Microseconds since the epoch (0 when disabled — no clock is read).
    pub fn now_us(&self) -> f64 {
        match &self.inner {
            Some(inner) => inner.epoch.elapsed().as_secs_f64() * 1e6,
            None => 0.0,
        }
    }

    /// Opens a root span (no parent).
    pub fn root(&self, name: &str) -> SpanGuard {
        self.open(name, None)
    }

    /// Bumps a metrics counter (no-op when disabled).
    pub fn count(&self, name: &str, delta: u64) {
        if let Some(inner) = &self.inner {
            inner.state.lock().unwrap().metrics.count(name, delta);
        }
    }

    /// Records `value` into the named fixed-bucket histogram (no-op when
    /// disabled). See [`MetricsRegistry::observe`].
    pub fn observe(&self, name: &str, bounds: &[f64], value: f64) {
        if let Some(inner) = &self.inner {
            inner
                .state
                .lock()
                .unwrap()
                .metrics
                .observe(name, bounds, value);
        }
    }

    /// Moves the collected tree out of the tracer, leaving it empty.
    /// Call after the root guard has finished.
    pub fn take_tree(&self) -> TraceTree {
        match &self.inner {
            Some(inner) => {
                let mut state = inner.state.lock().unwrap();
                TraceTree {
                    spans: std::mem::take(&mut state.spans),
                    metrics: std::mem::take(&mut state.metrics),
                }
            }
            None => TraceTree::default(),
        }
    }

    fn open(&self, name: &str, parent: Option<u32>) -> SpanGuard {
        let id = match &self.inner {
            Some(inner) => {
                let start_us = inner.epoch.elapsed().as_secs_f64() * 1e6;
                let mut state = inner.state.lock().unwrap();
                let id = state.spans.len() as u32;
                state.spans.push(SpanNode {
                    id,
                    parent,
                    name: name.to_string(),
                    track: 0,
                    start_us,
                    dur_us: 0.0,
                    attrs: Vec::new(),
                    events: Vec::new(),
                });
                Some(id)
            }
            None => None,
        };
        SpanGuard {
            tracer: self.clone(),
            id,
            closed: Cell::new(false),
        }
    }

    fn with_span(&self, id: u32, f: impl FnOnce(&mut SpanNode)) {
        if let Some(inner) = &self.inner {
            let mut state = inner.state.lock().unwrap();
            f(&mut state.spans[id as usize]);
        }
    }
}

impl std::fmt::Debug for Tracer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Tracer")
            .field("enabled", &self.is_enabled())
            .finish()
    }
}

/// An open span. Dropping (or [`finish`](SpanGuard::finish)ing) the guard
/// stamps the duration. All operations are no-ops on a disabled tracer.
pub struct SpanGuard {
    tracer: Tracer,
    id: Option<u32>,
    closed: Cell<bool>,
}

impl SpanGuard {
    /// Whether this guard records anything — gate expensive payload
    /// construction on it (the [`crate::event!`] macro does).
    pub fn is_enabled(&self) -> bool {
        self.id.is_some()
    }

    /// Opens a child span.
    pub fn child(&self, name: &str) -> SpanGuard {
        self.tracer.open(name, self.id)
    }

    /// Sets a deterministic attribute.
    pub fn attr(&self, key: &str, value: impl Into<Value>) {
        self.put_attr(key, value.into(), false);
    }

    /// Sets a volatile attribute (excluded from normalized equality).
    pub fn attr_volatile(&self, key: &str, value: impl Into<Value>) {
        self.put_attr(key, value.into(), true);
    }

    /// Records a decision event on this span.
    pub fn event(&self, name: &str, attrs: Vec<(&str, Value)>) {
        if let Some(id) = self.id {
            let ts_us = self.tracer.now_us();
            self.tracer.with_span(id, |s| {
                s.events.push(DecisionEvent {
                    name: name.to_string(),
                    ts_us,
                    attrs: attrs.into_iter().map(|(k, v)| (k.to_string(), v)).collect(),
                });
            });
        }
    }

    /// Assigns the span to a display track (Chrome `tid`). The main lane
    /// is 0; placement trials use `idx + 1`.
    pub fn set_track(&self, track: u32) {
        if let Some(id) = self.id {
            self.tracer.with_span(id, |s| s.track = track);
        }
    }

    /// Overrides the span's time window (for work measured elsewhere,
    /// e.g. placement trials timed inside their worker threads and
    /// emitted post-hoc in deterministic order). Marks the span finished.
    pub fn set_window(&self, start_us: f64, dur_us: f64) {
        if let Some(id) = self.id {
            self.tracer.with_span(id, |s| {
                s.start_us = start_us;
                s.dur_us = dur_us;
            });
        }
        self.closed.set(true);
    }

    /// Bumps a metrics counter on the underlying tracer.
    pub fn count(&self, name: &str, delta: u64) {
        if self.id.is_some() {
            self.tracer.count(name, delta);
        }
    }

    /// Records into a fixed-bucket histogram on the underlying tracer.
    pub fn observe(&self, name: &str, bounds: &[f64], value: f64) {
        if self.id.is_some() {
            self.tracer.observe(name, bounds, value);
        }
    }

    /// Closes the span, stamping its duration.
    pub fn finish(self) {
        self.close();
    }

    fn put_attr(&self, key: &str, value: Value, volatile: bool) {
        if let Some(id) = self.id {
            self.tracer.with_span(id, |s| {
                s.attrs.push(Attr {
                    key: key.to_string(),
                    value,
                    volatile,
                });
            });
        }
    }

    fn close(&self) {
        if self.closed.replace(true) {
            return;
        }
        if let Some(id) = self.id {
            let now = self.tracer.now_us();
            self.tracer.with_span(id, |s| s.dur_us = now - s.start_us);
        }
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        self.close();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spans_nest_and_record_in_creation_order() {
        let tracer = Tracer::enabled();
        let root = tracer.root("flow");
        let a = root.child("a");
        a.attr("k", 1u64);
        a.attr_volatile("hits", 2u64);
        a.event("a.decided", vec![("x", Value::U64(9))]);
        a.finish();
        let b = root.child("b");
        b.set_track(3);
        b.set_window(10.0, 5.0);
        root.finish();

        let tree = tracer.take_tree();
        assert_eq!(tree.spans.len(), 3);
        assert_eq!(tree.spans[0].name, "flow");
        assert_eq!(tree.spans[1].parent, Some(0));
        assert_eq!(tree.spans[1].attrs.len(), 2);
        assert!(tree.spans[1].attrs[1].volatile);
        assert_eq!(
            tree.spans[1].events[0].attrs[0],
            ("x".into(), Value::U64(9))
        );
        assert_eq!(tree.spans[2].track, 3);
        assert_eq!(tree.spans[2].start_us, 10.0);
        assert_eq!(tree.spans[2].dur_us, 5.0);
        assert!(tree.spans[0].dur_us >= 0.0);
    }

    #[test]
    fn disabled_tracer_records_nothing_and_reads_no_clock() {
        let tracer = Tracer::disabled();
        assert_eq!(tracer.now_us(), 0.0);
        let root = tracer.root("flow");
        root.attr("k", 1u64);
        root.event("e", vec![]);
        root.count("c", 1);
        root.observe("h", &[1.0], 0.5);
        root.finish();
        let tree = tracer.take_tree();
        assert!(tree.spans.is_empty());
        assert!(tree.metrics.is_empty());
    }

    #[test]
    fn tracer_is_shareable_across_threads() {
        let tracer = Tracer::enabled();
        let root = tracer.root("flow");
        std::thread::scope(|s| {
            for _ in 0..4 {
                let t = tracer.clone();
                s.spawn(move || {
                    t.count("n", 1);
                    let _ = t.now_us();
                });
            }
        });
        root.finish();
        let tree = tracer.take_tree();
        assert_eq!(tree.metrics.counter("n"), 4);
    }

    #[test]
    fn drop_closes_open_spans_once() {
        let tracer = Tracer::enabled();
        {
            let root = tracer.root("flow");
            let _child = root.child("inner");
        } // both dropped here
        let tree = tracer.take_tree();
        assert!(tree.spans.iter().all(|s| s.dur_us >= 0.0));
    }
}
