//! Exporters: Chrome trace-event JSON and line-delimited JSONL, plus the
//! hand-rolled JSON reader that backs [`TraceTree::from_jsonl`].
//!
//! The workspace builds offline, so there is no serde: serialization is
//! string concatenation with a fixed key order, and parsing is a small
//! recursive-descent reader. Floats are printed with Rust's `{:?}`
//! (shortest round-trip), which makes `export → parse → re-export`
//! byte-identical.

use crate::span::{Attr, DecisionEvent, SpanNode};
use crate::tree::TraceTree;
use crate::value::{fmt_f64, json_escape, Value};

// ---------------------------------------------------------------------------
// Chrome trace-event JSON
// ---------------------------------------------------------------------------

/// Renders one or more labelled runs as a Chrome trace-event JSON object
/// (`{"displayTimeUnit":"ms","traceEvents":[...]}`), loadable in Perfetto
/// or `chrome://tracing`.
///
/// Each `(label, tree)` pair becomes one process (`pid` = index) named
/// after the label. Spans are complete (`ph:"X"`) events; decision events
/// are thread-scoped instants (`ph:"i"`). Track 0 is the main flow lane;
/// placement trials sit on tracks `idx + 1` and are named `trial-idx`.
pub fn chrome_trace(runs: &[(&str, &TraceTree)]) -> String {
    let mut events: Vec<String> = Vec::new();
    for (pid, (label, tree)) in runs.iter().enumerate() {
        events.push(format!(
            "{{\"ph\":\"M\",\"pid\":{pid},\"tid\":0,\"name\":\"process_name\",\
             \"args\":{{\"name\":\"{}\"}}}}",
            json_escape(label)
        ));
        let mut tracks: Vec<u32> = tree.spans.iter().map(|s| s.track).collect();
        tracks.sort_unstable();
        tracks.dedup();
        for track in tracks {
            let name = if track == 0 {
                "flow".to_string()
            } else {
                format!("trial-{}", track - 1)
            };
            events.push(format!(
                "{{\"ph\":\"M\",\"pid\":{pid},\"tid\":{track},\
                 \"name\":\"thread_name\",\"args\":{{\"name\":\"{name}\"}}}}"
            ));
        }
        for span in &tree.spans {
            let args: Vec<String> = span
                .attrs
                .iter()
                .map(|a| format!("\"{}\":{}", json_escape(&a.key), a.value.to_json()))
                .collect();
            events.push(format!(
                "{{\"ph\":\"X\",\"pid\":{pid},\"tid\":{},\"ts\":{},\"dur\":{},\
                 \"name\":\"{}\",\"args\":{{{}}}}}",
                span.track,
                fmt_f64(span.start_us),
                fmt_f64(span.dur_us),
                json_escape(&span.name),
                args.join(",")
            ));
            for event in &span.events {
                let args: Vec<String> = event
                    .attrs
                    .iter()
                    .map(|(k, v)| format!("\"{}\":{}", json_escape(k), v.to_json()))
                    .collect();
                events.push(format!(
                    "{{\"ph\":\"i\",\"s\":\"t\",\"pid\":{pid},\"tid\":{},\"ts\":{},\
                     \"name\":\"{}\",\"args\":{{{}}}}}",
                    span.track,
                    fmt_f64(event.ts_us),
                    json_escape(&event.name),
                    args.join(",")
                ));
            }
        }
    }
    format!(
        "{{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n{}\n]}}\n",
        events.join(",\n")
    )
}

// ---------------------------------------------------------------------------
// JSONL
// ---------------------------------------------------------------------------

fn value_json(v: &Value) -> String {
    v.to_json()
}

fn attr_json(a: &Attr) -> String {
    format!(
        "[\"{}\",{},{}]",
        json_escape(&a.key),
        value_json(&a.value),
        a.volatile
    )
}

fn event_json(e: &DecisionEvent) -> String {
    let attrs: Vec<String> = e
        .attrs
        .iter()
        .map(|(k, v)| format!("[\"{}\",{}]", json_escape(k), value_json(v)))
        .collect();
    format!(
        "{{\"name\":\"{}\",\"ts_us\":{},\"attrs\":[{}]}}",
        json_escape(&e.name),
        fmt_f64(e.ts_us),
        attrs.join(",")
    )
}

impl TraceTree {
    /// Serializes the tree as line-delimited JSON: one `span` record per
    /// span (creation order), then one `counter` record per counter and
    /// one `histogram` record per histogram (name order). The encoding
    /// round-trips losslessly: `from_jsonl(to_jsonl())` reproduces the
    /// tree exactly, and re-exporting yields byte-identical output.
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        for span in &self.spans {
            let attrs: Vec<String> = span.attrs.iter().map(attr_json).collect();
            let events: Vec<String> = span.events.iter().map(event_json).collect();
            let parent = match span.parent {
                Some(p) => p.to_string(),
                None => "null".to_string(),
            };
            out.push_str(&format!(
                "{{\"type\":\"span\",\"id\":{},\"parent\":{parent},\
                 \"name\":\"{}\",\"track\":{},\"start_us\":{},\"dur_us\":{},\
                 \"attrs\":[{}],\"events\":[{}]}}\n",
                span.id,
                json_escape(&span.name),
                span.track,
                fmt_f64(span.start_us),
                fmt_f64(span.dur_us),
                attrs.join(","),
                events.join(",")
            ));
        }
        for (name, v) in &self.metrics.counters {
            out.push_str(&format!(
                "{{\"type\":\"counter\",\"name\":\"{}\",\"value\":{v}}}\n",
                json_escape(name)
            ));
        }
        for (name, h) in &self.metrics.histograms {
            let bounds: Vec<String> = h.bounds.iter().map(|b| fmt_f64(*b)).collect();
            let counts: Vec<String> = h.counts.iter().map(|c| c.to_string()).collect();
            // min/max only exist once something was observed; empty
            // histograms omit them (and the parser restores the empty
            // sentinels), keeping the round trip byte-identical.
            let extremes = if h.total > 0 {
                format!(",\"min\":{},\"max\":{}", fmt_f64(h.min), fmt_f64(h.max))
            } else {
                String::new()
            };
            out.push_str(&format!(
                "{{\"type\":\"histogram\",\"name\":\"{}\",\"bounds\":[{}],\
                 \"counts\":[{}],\"total\":{},\"sum\":{}{}}}\n",
                json_escape(name),
                bounds.join(","),
                counts.join(","),
                h.total,
                fmt_f64(h.sum),
                extremes
            ));
        }
        out
    }

    /// Parses a tree previously written by [`TraceTree::to_jsonl`].
    pub fn from_jsonl(text: &str) -> Result<TraceTree, String> {
        let mut tree = TraceTree::default();
        for (lineno, line) in text.lines().enumerate() {
            let line = line.trim();
            if line.is_empty() {
                continue;
            }
            let json = parse_json(line).map_err(|e| format!("line {}: {e}", lineno + 1))?;
            let obj = json
                .as_obj()
                .ok_or_else(|| format!("line {}: expected an object", lineno + 1))?;
            let kind = get_str(obj, "type")
                .ok_or_else(|| format!("line {}: missing \"type\"", lineno + 1))?;
            let res = match kind {
                "span" => parse_span(obj).map(|s| tree.spans.push(s)),
                "counter" => parse_counter(obj).map(|(name, v)| {
                    tree.metrics.counters.insert(name, v);
                }),
                "histogram" => parse_histogram(obj).map(|(name, h)| {
                    tree.metrics.histograms.insert(name, h);
                }),
                other => Err(format!("unknown record type {other:?}")),
            };
            res.map_err(|e| format!("line {}: {e}", lineno + 1))?;
        }
        for (i, span) in tree.spans.iter().enumerate() {
            if span.id as usize != i {
                return Err(format!(
                    "span records out of order: id {} at position {i}",
                    span.id
                ));
            }
        }
        Ok(tree)
    }
}

fn parse_span(obj: &[(String, Json)]) -> Result<SpanNode, String> {
    Ok(SpanNode {
        id: get_u64(obj, "id")? as u32,
        parent: match get(obj, "parent") {
            Some(Json::Null) | None => None,
            Some(Json::U64(v)) => Some(*v as u32),
            Some(_) => return Err("\"parent\" must be an id or null".into()),
        },
        name: get_str(obj, "name").ok_or("missing \"name\"")?.to_string(),
        track: get_u64(obj, "track")? as u32,
        start_us: get_f64(obj, "start_us")?,
        dur_us: get_f64(obj, "dur_us")?,
        attrs: get_arr(obj, "attrs")?
            .iter()
            .map(parse_attr)
            .collect::<Result<_, _>>()?,
        events: get_arr(obj, "events")?
            .iter()
            .map(parse_event)
            .collect::<Result<_, _>>()?,
    })
}

fn parse_attr(json: &Json) -> Result<Attr, String> {
    let arr = json.as_arr().ok_or("attr must be an array")?;
    if arr.len() != 3 {
        return Err("attr must be [key, value, volatile]".into());
    }
    Ok(Attr {
        key: arr[0]
            .as_str()
            .ok_or("attr key must be a string")?
            .to_string(),
        value: to_value(&arr[1])?,
        volatile: match &arr[2] {
            Json::Bool(b) => *b,
            _ => return Err("attr volatile flag must be a bool".into()),
        },
    })
}

fn parse_event(json: &Json) -> Result<DecisionEvent, String> {
    let obj = json.as_obj().ok_or("event must be an object")?;
    Ok(DecisionEvent {
        name: get_str(obj, "name")
            .ok_or("missing event \"name\"")?
            .to_string(),
        ts_us: get_f64(obj, "ts_us")?,
        attrs: get_arr(obj, "attrs")?
            .iter()
            .map(|pair| {
                let arr = pair.as_arr().ok_or("event attr must be an array")?;
                if arr.len() != 2 {
                    return Err("event attr must be [key, value]".to_string());
                }
                Ok((
                    arr[0]
                        .as_str()
                        .ok_or("event attr key must be a string")?
                        .to_string(),
                    to_value(&arr[1])?,
                ))
            })
            .collect::<Result<_, _>>()?,
    })
}

fn parse_counter(obj: &[(String, Json)]) -> Result<(String, u64), String> {
    Ok((
        get_str(obj, "name").ok_or("missing \"name\"")?.to_string(),
        get_u64(obj, "value")?,
    ))
}

fn parse_histogram(obj: &[(String, Json)]) -> Result<(String, crate::Histogram), String> {
    let bounds = get_arr(obj, "bounds")?
        .iter()
        .map(|j| {
            j.as_f64()
                .ok_or_else(|| "bound must be a number".to_string())
        })
        .collect::<Result<Vec<f64>, _>>()?;
    let counts = get_arr(obj, "counts")?
        .iter()
        .map(|j| match j {
            Json::U64(v) => Ok(*v),
            _ => Err("count must be an unsigned integer".to_string()),
        })
        .collect::<Result<Vec<u64>, _>>()?;
    // min/max are absent for empty histograms (and in trees written
    // before they were tracked): fall back to the empty sentinels.
    let min = match get(obj, "min") {
        Some(j) => j.as_f64().ok_or("min must be a number")?,
        None => f64::INFINITY,
    };
    let max = match get(obj, "max") {
        Some(j) => j.as_f64().ok_or("max must be a number")?,
        None => f64::NEG_INFINITY,
    };
    Ok((
        get_str(obj, "name").ok_or("missing \"name\"")?.to_string(),
        crate::Histogram {
            bounds,
            counts,
            total: get_u64(obj, "total")?,
            sum: get_f64(obj, "sum")?,
            min,
            max,
        },
    ))
}

fn to_value(json: &Json) -> Result<Value, String> {
    match json {
        Json::Str(s) => Ok(Value::Str(s.clone())),
        Json::U64(v) => Ok(Value::U64(*v)),
        Json::F64(v) => Ok(Value::F64(*v)),
        Json::Bool(b) => Ok(Value::Bool(*b)),
        _ => Err("attribute values must be scalar".into()),
    }
}

// ---------------------------------------------------------------------------
// Minimal JSON reader
// ---------------------------------------------------------------------------

/// A parsed JSON document. Numbers keep the `U64`/`F64` distinction the
/// writer guarantees: a token with `.`, `e`, or `E` (or a sign) parses as
/// `F64`, anything else as `U64`.
#[derive(Debug, Clone, PartialEq)]
enum Json {
    Null,
    Bool(bool),
    U64(u64),
    F64(f64),
    Str(String),
    Arr(Vec<Json>),
    Obj(Vec<(String, Json)>),
}

impl Json {
    fn as_obj(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Obj(fields) => Some(fields),
            _ => None,
        }
    }

    fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    fn as_f64(&self) -> Option<f64> {
        match self {
            Json::U64(v) => Some(*v as f64),
            Json::F64(v) => Some(*v),
            _ => None,
        }
    }
}

fn get<'a>(obj: &'a [(String, Json)], key: &str) -> Option<&'a Json> {
    obj.iter().find(|(k, _)| k == key).map(|(_, v)| v)
}

fn get_str<'a>(obj: &'a [(String, Json)], key: &str) -> Option<&'a str> {
    get(obj, key).and_then(Json::as_str)
}

fn get_u64(obj: &[(String, Json)], key: &str) -> Result<u64, String> {
    match get(obj, key) {
        Some(Json::U64(v)) => Ok(*v),
        _ => Err(format!("missing or non-integer \"{key}\"")),
    }
}

fn get_f64(obj: &[(String, Json)], key: &str) -> Result<f64, String> {
    get(obj, key)
        .and_then(Json::as_f64)
        .ok_or_else(|| format!("missing or non-numeric \"{key}\""))
}

fn get_arr<'a>(obj: &'a [(String, Json)], key: &str) -> Result<&'a [Json], String> {
    get(obj, key)
        .and_then(Json::as_arr)
        .ok_or_else(|| format!("missing or non-array \"{key}\""))
}

struct Reader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

fn parse_json(text: &str) -> Result<Json, String> {
    let mut reader = Reader {
        bytes: text.as_bytes(),
        pos: 0,
    };
    let value = reader.value()?;
    reader.skip_ws();
    if reader.pos != reader.bytes.len() {
        return Err(format!("trailing data at byte {}", reader.pos));
    }
    Ok(value)
}

impl<'a> Reader<'a> {
    fn skip_ws(&mut self) {
        while self.pos < self.bytes.len()
            && matches!(self.bytes[self.pos], b' ' | b'\t' | b'\n' | b'\r')
        {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, byte: u8) -> Result<(), String> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected {:?} at byte {}", byte as char, self.pos))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        self.skip_ws();
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(format!("unexpected input at byte {}", self.pos)),
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            fields.push((key, self.value()?));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            while self.pos < self.bytes.len()
                && self.bytes[self.pos] != b'"'
                && self.bytes[self.pos] != b'\\'
            {
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| "invalid UTF-8 in string".to_string())?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self
                        .peek()
                        .ok_or_else(|| "unterminated escape".to_string())?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            if self.pos + 4 > self.bytes.len() {
                                return Err("truncated \\u escape".into());
                            }
                            let hex = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
                                .map_err(|_| "invalid \\u escape".to_string())?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| "invalid \\u escape".to_string())?;
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| "invalid \\u code point".to_string())?,
                            );
                            self.pos += 4;
                        }
                        other => return Err(format!("unknown escape \\{}", other as char)),
                    }
                }
                _ => return Err("unterminated string".into()),
            }
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(c) = self.peek() {
            match c {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let token = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| "invalid number".to_string())?;
        if is_float || token.starts_with('-') {
            token
                .parse::<f64>()
                .map(Json::F64)
                .map_err(|_| format!("invalid number {token:?}"))
        } else {
            token
                .parse::<u64>()
                .map(Json::U64)
                .map_err(|_| format!("invalid number {token:?}"))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::span::Tracer;

    fn sample() -> TraceTree {
        let tracer = Tracer::enabled();
        let root = tracer.root("flow");
        root.attr("design", "genome \"g\"");
        root.attr_volatile("cache-hits", 2u64);
        {
            let sched = root.child("schedule");
            sched.attr("clock-ns", 3.0030030030030037);
            sched.event(
                "schedule.split",
                vec![("cut", Value::U64(5)), ("excess-ns", Value::F64(0.125))],
            );
        }
        {
            let trial = root.child("trial-0");
            trial.set_track(1);
            trial.set_window(100.5, 42.25);
        }
        tracer.count("decisions.schedule.split", 1);
        tracer.observe("slack-ns", &[0.0, 0.5, 1.0], 0.25);
        root.finish();
        tracer.take_tree()
    }

    #[test]
    fn jsonl_round_trips_exactly() {
        let tree = sample();
        let text = tree.to_jsonl();
        let parsed = TraceTree::from_jsonl(&text).unwrap();
        // Full equality — timestamps and volatile flags included.
        assert_eq!(parsed, tree);
        // Re-export is byte-identical.
        assert_eq!(parsed.to_jsonl(), text);
    }

    #[test]
    fn jsonl_rejects_malformed_input() {
        assert!(TraceTree::from_jsonl("{\"type\":\"span\"").is_err());
        assert!(TraceTree::from_jsonl("{\"type\":\"mystery\"}").is_err());
        assert!(TraceTree::from_jsonl(
            "{\"type\":\"span\",\"id\":4,\"parent\":null,\"name\":\"x\",\
             \"track\":0,\"start_us\":0.0,\"dur_us\":0.0,\"attrs\":[],\"events\":[]}"
        )
        .is_err());
    }

    #[test]
    fn chrome_trace_is_valid_json_with_expected_shapes() {
        let tree = sample();
        let text = chrome_trace(&[("genome+all", &tree)]);
        let json = parse_json(&text).unwrap();
        let obj = json.as_obj().unwrap();
        assert_eq!(get_str(obj, "displayTimeUnit"), Some("ms"));
        let events = get_arr(obj, "traceEvents").unwrap();
        let ph = |e: &Json| get_str(e.as_obj().unwrap(), "ph").unwrap().to_string();
        assert!(events.iter().any(|e| ph(e) == "M"));
        assert_eq!(events.iter().filter(|e| ph(e) == "X").count(), 3);
        assert_eq!(events.iter().filter(|e| ph(e) == "i").count(), 1);
        // The trial span sits on its own track.
        let trial = events
            .iter()
            .find(|e| get_str(e.as_obj().unwrap(), "name") == Some("trial-0") && ph(e) == "X")
            .unwrap();
        assert_eq!(get_u64(trial.as_obj().unwrap(), "tid").unwrap(), 1);
    }

    #[test]
    fn parser_handles_escapes_and_numbers() {
        let json = parse_json("{\"s\":\"a\\n\\u0041\",\"n\":-1.5,\"u\":7}").unwrap();
        let obj = json.as_obj().unwrap();
        assert_eq!(get_str(obj, "s"), Some("a\nA"));
        assert_eq!(get(obj, "n"), Some(&Json::F64(-1.5)));
        assert_eq!(get(obj, "u"), Some(&Json::U64(7)));
        assert!(parse_json("{\"a\":1}extra").is_err());
    }
}
