//! Typed attribute values.

use std::fmt;

/// A typed span/event attribute value.
///
/// The variants are chosen so the JSON encoding is unambiguous: a number
/// with a `.` or exponent is an [`Value::F64`], any other number a
/// [`Value::U64`] (floats always render with a fractional marker — Rust's
/// shortest-round-trip `{:?}` formatting — so the two never collide).
/// Signed quantities (slack, excess delay) are therefore carried as
/// `F64`.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// A string.
    Str(String),
    /// An unsigned integer (counters, ids, factors).
    U64(u64),
    /// A float (delays in ns, frequencies in MHz). Non-finite inputs are
    /// clamped to `0.0` so the JSON encoding stays valid.
    F64(f64),
    /// A boolean flag.
    Bool(bool),
}

impl Value {
    /// The value as a `u64`, if it is one.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::U64(v) => Some(*v),
            _ => None,
        }
    }

    /// The value as a string slice, if it is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Renders the value as a JSON token.
    pub fn to_json(&self) -> String {
        match self {
            Value::Str(s) => format!("\"{}\"", json_escape(s)),
            Value::U64(v) => v.to_string(),
            Value::F64(v) => fmt_f64(*v),
            Value::Bool(b) => b.to_string(),
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Str(s) => write!(f, "{s}"),
            Value::U64(v) => write!(f, "{v}"),
            Value::F64(v) => write!(f, "{v:.3}"),
            Value::Bool(b) => write!(f, "{b}"),
        }
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Str(v.to_string())
    }
}

impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Str(v)
    }
}

impl From<u64> for Value {
    fn from(v: u64) -> Self {
        Value::U64(v)
    }
}

impl From<u32> for Value {
    fn from(v: u32) -> Self {
        Value::U64(u64::from(v))
    }
}

impl From<usize> for Value {
    fn from(v: usize) -> Self {
        Value::U64(v as u64)
    }
}

impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::F64(if v.is_finite() { v } else { 0.0 })
    }
}

impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}

/// Formats a float as a JSON number that always carries a float marker
/// (`.` or exponent): Rust's `{:?}` is the shortest representation that
/// parses back to the identical bits, and never prints a bare integer for
/// an `f64` — so the JSONL round trip is byte-identical *and* preserves
/// the `U64`/`F64` distinction.
pub(crate) fn fmt_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v:?}")
    } else {
        "0.0".to_string()
    }
}

/// Escapes a string for embedding in a JSON string literal.
pub(crate) fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_tokens_are_type_distinguishable() {
        assert_eq!(Value::U64(3).to_json(), "3");
        assert_eq!(Value::F64(3.0).to_json(), "3.0");
        assert_eq!(Value::F64(0.1).to_json(), "0.1");
        assert_eq!(Value::Bool(true).to_json(), "true");
        assert_eq!(Value::Str("a\"b".into()).to_json(), "\"a\\\"b\"");
        // Non-finite floats must not leak invalid JSON.
        assert_eq!(Value::from(f64::NAN).to_json(), "0.0");
    }

    #[test]
    fn conversions() {
        assert_eq!(Value::from(7u32), Value::U64(7));
        assert_eq!(Value::from(7usize), Value::U64(7));
        assert_eq!(Value::from("x"), Value::Str("x".into()));
        assert_eq!(Value::from(true), Value::Bool(true));
        assert_eq!(Value::U64(5).as_u64(), Some(5));
        assert_eq!(Value::Str("s".into()).as_str(), Some("s"));
        assert_eq!(Value::Bool(false).as_u64(), None);
    }

    #[test]
    fn escape_handles_control_chars() {
        assert_eq!(json_escape("a\nb\t\u{1}"), "a\\nb\\t\\u0001");
    }
}
