//! # hlsb-trace — hierarchical span tracing with decision provenance
//!
//! The flow's structured observability layer: a thread-safe span
//! collector ([`Tracer`] / [`SpanGuard`]) recording a tree of timed spans
//! (pass / sub-pass / per-trial unit of work) with typed key–value
//! attributes, plus **decision events** — the per-net choices the paper's
//! optimizations make (chain splits, done-signal pruning, skid-buffer
//! placement) that otherwise only show up as an aggregate Fmax number —
//! and a [`MetricsRegistry`] of monotonic counters and fixed-bucket
//! histograms.
//!
//! Three properties drive the design:
//!
//! * **Zero cost when disabled.** [`Tracer::disabled`] carries no
//!   allocation and no clock; every span/event/metric call is a branch on
//!   a `None`. The [`span!`] and [`event!`] macros additionally skip
//!   argument construction when the guard is disabled.
//! * **Deterministic payloads.** Event and attribute *values* are pure
//!   functions of the pipeline inputs; wall-clock data (start/duration,
//!   timestamps, track ids) and explicitly *volatile* attributes (cache
//!   hit counts, thread counts) are excluded from
//!   [`TraceTree::normalized`] equality — mirroring how `PassRecord`
//!   equality ignores wall time — so the flow's determinism guarantees
//!   (cached ≡ cold, parallel ≡ sequential) extend to traces.
//! * **Standard exports.** [`chrome_trace`] renders runs as Chrome
//!   trace-event JSON (loadable in Perfetto / `chrome://tracing`, with
//!   placement trials on separate track ids);
//!   [`TraceTree::to_jsonl`]/[`TraceTree::from_jsonl`] round-trip the
//!   tree losslessly through line-delimited JSON.
//!
//! Everything is hand-rolled on `std` only — the workspace builds with no
//! network access, so no serde/tracing dependencies.
//!
//! ```
//! use hlsb_trace::Tracer;
//!
//! let tracer = Tracer::enabled();
//! let root = tracer.root("flow");
//! root.attr("design", "genome");
//! {
//!     let sched = hlsb_trace::span!(root, "schedule");
//!     hlsb_trace::event!(sched, "schedule.split", "cut" => 5u64);
//!     sched.count("decisions.schedule.split", 1);
//! }
//! root.finish();
//! let tree = tracer.take_tree();
//! assert_eq!(tree.spans.len(), 2);
//! assert_eq!(tree.metrics.counter("decisions.schedule.split"), 1);
//! ```

pub mod export;
pub mod metrics;
pub mod span;
pub mod tree;
pub mod value;

pub use export::chrome_trace;
pub use metrics::{Histogram, MetricsRegistry};
pub use span::{Attr, DecisionEvent, SpanGuard, SpanNode, Tracer};
pub use tree::{NormalizedSpan, NormalizedTrace, TraceTree};
pub use value::Value;

/// Opens a child span under `$parent` (a [`SpanGuard`]), optionally with
/// attributes. Attribute expressions are not evaluated when the parent is
/// disabled.
#[macro_export]
macro_rules! span {
    ($parent:expr, $name:expr) => {
        $parent.child($name)
    };
    ($parent:expr, $name:expr $(, $k:expr => $v:expr)+ $(,)?) => {{
        let guard = $parent.child($name);
        if guard.is_enabled() {
            $(guard.attr($k, $v);)+
        }
        guard
    }};
}

/// Records a decision event on `$span` (a [`SpanGuard`]). A no-op — the
/// attribute expressions are never evaluated — when the span is disabled.
#[macro_export]
macro_rules! event {
    ($span:expr, $name:expr $(, $k:expr => $v:expr)* $(,)?) => {
        if $span.is_enabled() {
            $span.event($name, vec![$(($k, $crate::Value::from($v))),*]);
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn macros_are_no_ops_when_disabled() {
        let tracer = Tracer::disabled();
        let root = tracer.root("flow");
        // The attribute expression must not run on the disabled path.
        let mut evaluated = false;
        event!(root, "x", "k" => {
            evaluated = true;
            1u64
        });
        assert!(!evaluated, "event! must skip payload construction");
        let child = span!(root, "child");
        assert!(!child.is_enabled());
        root.finish();
        assert!(tracer.take_tree().spans.is_empty());
    }

    #[test]
    fn macros_record_when_enabled() {
        let tracer = Tracer::enabled();
        let root = tracer.root("flow");
        let child = span!(root, "stage", "n" => 3u64);
        event!(child, "stage.decision", "why" => "because");
        child.finish();
        root.finish();
        let tree = tracer.take_tree();
        assert_eq!(tree.spans.len(), 2);
        assert_eq!(tree.spans[1].attrs[0].key, "n");
        assert_eq!(tree.spans[1].events[0].name, "stage.decision");
    }
}
