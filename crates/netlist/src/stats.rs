//! Resource statistics.

use std::fmt;
use std::ops::{Add, AddAssign};

/// Resource totals for a netlist (absolute counts).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash)]
pub struct Stats {
    /// LUTs.
    pub luts: u64,
    /// Flip-flops.
    pub ffs: u64,
    /// 36 Kb BRAM units.
    pub brams: u64,
    /// DSP slices.
    pub dsps: u64,
}

impl Stats {
    /// Utilization percentages against device capacities. Order:
    /// `(lut %, ff %, bram %, dsp %)`.
    pub fn utilization(
        &self,
        luts_cap: u64,
        ffs_cap: u64,
        brams_cap: u64,
        dsps_cap: u64,
    ) -> (f64, f64, f64, f64) {
        let pct = |v: u64, cap: u64| {
            if cap == 0 {
                0.0
            } else {
                100.0 * v as f64 / cap as f64
            }
        };
        (
            pct(self.luts, luts_cap),
            pct(self.ffs, ffs_cap),
            pct(self.brams, brams_cap),
            pct(self.dsps, dsps_cap),
        )
    }
}

impl Add for Stats {
    type Output = Stats;

    fn add(self, rhs: Stats) -> Stats {
        Stats {
            luts: self.luts + rhs.luts,
            ffs: self.ffs + rhs.ffs,
            brams: self.brams + rhs.brams,
            dsps: self.dsps + rhs.dsps,
        }
    }
}

impl AddAssign for Stats {
    fn add_assign(&mut self, rhs: Stats) {
        *self = *self + rhs;
    }
}

impl fmt::Display for Stats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "LUT={} FF={} BRAM={} DSP={}",
            self.luts, self.ffs, self.brams, self.dsps
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn addition_accumulates() {
        let a = Stats {
            luts: 1,
            ffs: 2,
            brams: 3,
            dsps: 4,
        };
        let mut b = a;
        b += a;
        assert_eq!(b, a + a);
        assert_eq!(b.luts, 2);
        assert_eq!(b.dsps, 8);
    }

    #[test]
    fn utilization_percentages() {
        let s = Stats {
            luts: 50,
            ffs: 25,
            brams: 10,
            dsps: 0,
        };
        let (l, f, b, d) = s.utilization(100, 100, 100, 100);
        assert_eq!((l, f, b, d), (50.0, 25.0, 10.0, 0.0));
        // Zero capacity does not divide by zero.
        let (_, _, _, d0) = s.utilization(100, 100, 100, 0);
        assert_eq!(d0, 0.0);
    }

    #[test]
    fn display_is_compact() {
        let s = Stats {
            luts: 5,
            ffs: 6,
            brams: 7,
            dsps: 8,
        };
        assert_eq!(s.to_string(), "LUT=5 FF=6 BRAM=7 DSP=8");
    }
}
