//! Netlist cells.

use std::fmt;

/// Identifier of a [`Cell`] within a [`Netlist`](crate::graph::Netlist).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct CellId(pub u32);

impl CellId {
    /// The raw index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for CellId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "c{}", self.0)
    }
}

/// What a cell is, for timing and resource purposes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CellKind {
    /// Word-wide register. Sequential: breaks timing paths.
    Ff,
    /// Word-wide combinational logic (LUT fabric).
    Comb,
    /// DSP-slice operation (multiplier). Combinational unless the
    /// surrounding pipeline registers it.
    Dsp,
    /// Block RAM. Sequential: address is captured at the clock edge and the
    /// read data appears after the clock-to-out delay.
    Bram,
    /// Top-level input port (timing start point).
    Input,
    /// Top-level output port (timing end point).
    Output,
    /// Constant driver (no timing contribution).
    Const,
}

impl CellKind {
    /// Whether the cell starts/ends timing paths at a clock edge.
    pub fn is_sequential(self) -> bool {
        matches!(self, CellKind::Ff | CellKind::Bram)
    }

    /// Whether the cell propagates combinationally from inputs to output.
    pub fn is_combinational(self) -> bool {
        matches!(self, CellKind::Comb | CellKind::Dsp)
    }
}

impl fmt::Display for CellKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            CellKind::Ff => "FF",
            CellKind::Comb => "COMB",
            CellKind::Dsp => "DSP",
            CellKind::Bram => "BRAM",
            CellKind::Input => "IN",
            CellKind::Output => "OUT",
            CellKind::Const => "CONST",
        };
        f.write_str(s)
    }
}

/// One word-level cell with its intrinsic delay and resource cost.
#[derive(Debug, Clone, PartialEq)]
pub struct Cell {
    /// Name for reports.
    pub name: String,
    /// Cell kind.
    pub kind: CellKind,
    /// Word width in bits.
    pub width: u32,
    /// Intrinsic delay in ns: input-to-output for combinational cells,
    /// clock-to-out for sequential cells.
    pub delay_ns: f64,
    /// LUTs consumed.
    pub luts: u32,
    /// Flip-flops consumed.
    pub ffs: u32,
    /// 36 Kb BRAM units consumed.
    pub brams: u32,
    /// DSP slices consumed.
    pub dsps: u32,
}

impl Cell {
    /// A word-wide register (one FF per bit; clock-to-out ≈ 0.1 ns).
    pub fn ff(name: impl Into<String>, width: u32) -> Self {
        Cell {
            name: name.into(),
            kind: CellKind::Ff,
            width,
            delay_ns: 0.10,
            luts: 0,
            ffs: width,
            brams: 0,
            dsps: 0,
        }
    }

    /// Combinational logic with explicit delay and LUT cost.
    pub fn comb(name: impl Into<String>, width: u32, delay_ns: f64, luts: u32) -> Self {
        Cell {
            name: name.into(),
            kind: CellKind::Comb,
            width,
            delay_ns,
            luts,
            ffs: 0,
            brams: 0,
            dsps: 0,
        }
    }

    /// A DSP-slice operation (e.g. a multiplier) costing `dsps` slices.
    pub fn dsp(name: impl Into<String>, width: u32, delay_ns: f64, dsps: u32) -> Self {
        Cell {
            name: name.into(),
            kind: CellKind::Dsp,
            width,
            delay_ns,
            luts: 0,
            ffs: 0,
            brams: 0,
            dsps,
        }
    }

    /// A block RAM bank of `units` 36 Kb units (clock-to-out ≈ 0.9 ns for
    /// the read data path).
    pub fn bram(name: impl Into<String>, width: u32, units: u32) -> Self {
        Cell {
            name: name.into(),
            kind: CellKind::Bram,
            width,
            delay_ns: 0.90,
            luts: 0,
            ffs: 0,
            brams: units,
            dsps: 0,
        }
    }

    /// A top-level input port.
    pub fn input(name: impl Into<String>, width: u32) -> Self {
        Cell {
            name: name.into(),
            kind: CellKind::Input,
            width,
            delay_ns: 0.0,
            luts: 0,
            ffs: 0,
            brams: 0,
            dsps: 0,
        }
    }

    /// A top-level output port.
    pub fn output(name: impl Into<String>, width: u32) -> Self {
        Cell {
            name: name.into(),
            kind: CellKind::Output,
            width,
            delay_ns: 0.0,
            luts: 0,
            ffs: 0,
            brams: 0,
            dsps: 0,
        }
    }

    /// A constant driver.
    pub fn constant(name: impl Into<String>, width: u32) -> Self {
        Cell {
            name: name.into(),
            kind: CellKind::Const,
            width,
            delay_ns: 0.0,
            luts: 0,
            ffs: 0,
            brams: 0,
            dsps: 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_set_costs() {
        let r = Cell::ff("r", 32);
        assert_eq!(r.ffs, 32);
        assert!(r.kind.is_sequential());

        let a = Cell::comb("a", 16, 0.6, 16);
        assert_eq!(a.luts, 16);
        assert!(a.kind.is_combinational());

        let m = Cell::dsp("m", 32, 2.5, 3);
        assert_eq!(m.dsps, 3);

        let b = Cell::bram("b", 64, 10);
        assert_eq!(b.brams, 10);
        assert!(b.kind.is_sequential());
    }

    #[test]
    fn ports_cost_nothing() {
        for c in [
            Cell::input("i", 8),
            Cell::output("o", 8),
            Cell::constant("c", 8),
        ] {
            assert_eq!(c.luts + c.ffs + c.brams + c.dsps, 0, "{}", c.name);
        }
    }

    #[test]
    fn kind_display() {
        assert_eq!(CellKind::Ff.to_string(), "FF");
        assert_eq!(CellKind::Bram.to_string(), "BRAM");
    }
}
