//! The netlist graph: cells connected by single-driver nets.

use crate::cell::{Cell, CellId, CellKind};
use crate::stats::Stats;
use std::error::Error;
use std::fmt;

/// Identifier of a [`Net`] within a [`Netlist`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NetId(pub u32);

impl NetId {
    /// The raw index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for NetId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// A net: one driver cell, any number of sink cells.
#[derive(Debug, Clone, PartialEq)]
pub struct Net {
    /// The cell whose output drives this net.
    pub driver: CellId,
    /// Cells reading the net.
    pub sinks: Vec<CellId>,
}

impl Net {
    /// Number of sinks — the broadcast factor of this net.
    pub fn fanout(&self) -> usize {
        self.sinks.len()
    }
}

/// A netlist-structure violation reported by [`Netlist::validate`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NetlistError {
    /// A cell drives more than one net.
    MultipleDrivers {
        /// The offending cell.
        cell: CellId,
    },
    /// A net has no sinks (dangling driver).
    DanglingNet {
        /// The offending net.
        net: NetId,
    },
    /// An `Output`-kind cell drives a net (outputs are end points).
    OutputDrives {
        /// The offending cell.
        cell: CellId,
    },
    /// A combinational cycle exists (a loop with no sequential cell).
    CombinationalCycle {
        /// A cell on the cycle.
        cell: CellId,
    },
}

impl fmt::Display for NetlistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetlistError::MultipleDrivers { cell } => {
                write!(f, "cell {cell} drives more than one net")
            }
            NetlistError::DanglingNet { net } => write!(f, "net {net} has no sinks"),
            NetlistError::OutputDrives { cell } => {
                write!(f, "output cell {cell} drives a net")
            }
            NetlistError::CombinationalCycle { cell } => {
                write!(f, "combinational cycle through cell {cell}")
            }
        }
    }
}

impl Error for NetlistError {}

/// A subgraph extracted by [`Netlist::subgraph`]: a self-contained
/// netlist over a subset of the parent's cells, plus the mapping back.
/// Island-partitioned placement extracts one per island, places each
/// independently, and reassembles the parent placement through
/// [`Subgraph::to_global`].
#[derive(Debug, Clone, PartialEq)]
pub struct Subgraph {
    /// The induced netlist (local cell ids).
    pub netlist: Netlist,
    /// `global_of[local.index()]` is the cell's id in the parent netlist.
    pub global_of: Vec<CellId>,
}

impl Subgraph {
    /// Maps a local cell id back to the parent netlist.
    ///
    /// # Panics
    ///
    /// Panics if `local` is out of bounds.
    pub fn to_global(&self, local: CellId) -> CellId {
        self.global_of[local.index()]
    }
}

/// A word-level netlist.
///
/// Built incrementally with [`Netlist::add_cell`] and [`Netlist::connect`];
/// the structure maintains per-cell driver/load indices for traversal.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Netlist {
    /// Name for reports.
    pub name: String,
    cells: Vec<Cell>,
    nets: Vec<Net>,
    /// Net driven by each cell, if any.
    out_net: Vec<Option<NetId>>,
    /// Nets each cell reads (its input nets, insertion order).
    in_nets: Vec<Vec<NetId>>,
}

impl Netlist {
    /// Creates an empty netlist.
    pub fn new(name: impl Into<String>) -> Self {
        Netlist {
            name: name.into(),
            ..Netlist::default()
        }
    }

    /// Number of cells.
    pub fn cell_count(&self) -> usize {
        self.cells.len()
    }

    /// Number of nets.
    pub fn net_count(&self) -> usize {
        self.nets.len()
    }

    /// Adds a cell, returning its id.
    pub fn add_cell(&mut self, cell: Cell) -> CellId {
        let id = CellId(self.cells.len() as u32);
        self.cells.push(cell);
        self.out_net.push(None);
        self.in_nets.push(Vec::new());
        id
    }

    /// Connects `driver`'s output to every cell in `sinks`, creating a new
    /// net. If the driver already drives a net, the sinks are appended to
    /// that net instead (a cell has exactly one output value).
    ///
    /// # Panics
    ///
    /// Panics if any id is out of bounds.
    pub fn connect(&mut self, driver: CellId, sinks: &[CellId]) -> NetId {
        assert!(driver.index() < self.cells.len(), "driver out of bounds");
        let net_id = match self.out_net[driver.index()] {
            Some(existing) => existing,
            None => {
                let id = NetId(self.nets.len() as u32);
                self.nets.push(Net {
                    driver,
                    sinks: Vec::new(),
                });
                self.out_net[driver.index()] = Some(id);
                id
            }
        };
        for &s in sinks {
            assert!(s.index() < self.cells.len(), "sink out of bounds");
            self.nets[net_id.index()].sinks.push(s);
            self.in_nets[s.index()].push(net_id);
        }
        net_id
    }

    /// The cell with the given id.
    ///
    /// # Panics
    ///
    /// Panics if out of bounds.
    pub fn cell(&self, id: CellId) -> &Cell {
        &self.cells[id.index()]
    }

    /// Mutable access to a cell.
    ///
    /// # Panics
    ///
    /// Panics if out of bounds.
    pub fn cell_mut(&mut self, id: CellId) -> &mut Cell {
        &mut self.cells[id.index()]
    }

    /// The net with the given id.
    ///
    /// # Panics
    ///
    /// Panics if out of bounds.
    pub fn net(&self, id: NetId) -> &Net {
        &self.nets[id.index()]
    }

    /// The net driven by `cell`, if any.
    pub fn output_net(&self, cell: CellId) -> Option<NetId> {
        self.out_net[cell.index()]
    }

    /// The nets read by `cell`.
    pub fn input_nets(&self, cell: CellId) -> &[NetId] {
        &self.in_nets[cell.index()]
    }

    /// Iterates over `(id, cell)` pairs.
    pub fn cells(&self) -> impl Iterator<Item = (CellId, &Cell)> {
        self.cells
            .iter()
            .enumerate()
            .map(|(i, c)| (CellId(i as u32), c))
    }

    /// Iterates over `(id, net)` pairs.
    pub fn nets(&self) -> impl Iterator<Item = (NetId, &Net)> {
        self.nets
            .iter()
            .enumerate()
            .map(|(i, n)| (NetId(i as u32), n))
    }

    /// Moves the sinks in `moved` from the net driven by `old_driver` to a
    /// net driven by `new_driver` (used by fanout optimization to split
    /// high-fanout nets across duplicated registers).
    ///
    /// # Panics
    ///
    /// Panics if `old_driver` drives no net or a sink in `moved` is not on
    /// that net.
    pub fn move_sinks(&mut self, old_driver: CellId, new_driver: CellId, moved: &[CellId]) {
        let old_net = self.out_net[old_driver.index()].expect("old driver has a net");
        for &s in moved {
            let sinks = &mut self.nets[old_net.index()].sinks;
            let pos = sinks
                .iter()
                .position(|&x| x == s)
                .expect("sink present on old net");
            sinks.remove(pos);
            let ins = &mut self.in_nets[s.index()];
            let ipos = ins
                .iter()
                .position(|&n| n == old_net)
                .expect("input net recorded");
            ins.remove(ipos);
        }
        self.connect(new_driver, moved);
    }

    /// Removes one occurrence of `sink` from the net, keeping indices
    /// consistent.
    ///
    /// # Panics
    ///
    /// Panics if `sink` is not on the net.
    pub fn detach_sink(&mut self, net: NetId, sink: CellId) {
        let sinks = &mut self.nets[net.index()].sinks;
        let pos = sinks
            .iter()
            .position(|&x| x == sink)
            .expect("sink present on net");
        sinks.remove(pos);
        let ins = &mut self.in_nets[sink.index()];
        let ipos = ins
            .iter()
            .position(|&n| n == net)
            .expect("input net recorded");
        ins.remove(ipos);
    }

    /// Adds `sink` to an existing net.
    ///
    /// # Panics
    ///
    /// Panics if either id is out of bounds.
    pub fn attach_sink(&mut self, net: NetId, sink: CellId) {
        assert!(sink.index() < self.cells.len(), "sink out of bounds");
        self.nets[net.index()].sinks.push(sink);
        self.in_nets[sink.index()].push(net);
    }

    /// Extracts the induced subgraph over `cells` (strictly increasing
    /// global ids). Local cell ids follow the order of `cells`, so the
    /// mapping is stable: local `CellId(i)` is global `cells[i]`, for any
    /// thread count and extraction order. A net survives when its driver
    /// is in the set; only its in-set sinks are kept (cross-boundary arcs
    /// are dropped — island partitioning registers them separately).
    ///
    /// # Panics
    ///
    /// Panics if `cells` is not strictly increasing or an id is out of
    /// bounds.
    pub fn subgraph(&self, cells: &[CellId]) -> Subgraph {
        assert!(
            cells.windows(2).all(|w| w[0] < w[1]),
            "subgraph cells must be strictly increasing"
        );
        let mut local_of = vec![u32::MAX; self.cells.len()];
        let mut nl = Netlist::new(self.name.clone());
        for (local, &g) in cells.iter().enumerate() {
            local_of[g.index()] = local as u32;
            nl.add_cell(self.cells[g.index()].clone());
        }
        for net in &self.nets {
            let d = local_of[net.driver.index()];
            if d == u32::MAX {
                continue;
            }
            let sinks: Vec<CellId> = net
                .sinks
                .iter()
                .filter_map(|s| {
                    let l = local_of[s.index()];
                    (l != u32::MAX).then_some(CellId(l))
                })
                .collect();
            if !sinks.is_empty() {
                nl.connect(CellId(d), &sinks);
            }
        }
        Subgraph {
            netlist: nl,
            global_of: cells.to_vec(),
        }
    }

    /// Resource totals.
    pub fn stats(&self) -> Stats {
        let mut s = Stats::default();
        for c in &self.cells {
            s.luts += u64::from(c.luts);
            s.ffs += u64::from(c.ffs);
            s.brams += u64::from(c.brams);
            s.dsps += u64::from(c.dsps);
        }
        s
    }

    /// Cells in topological order over combinational arcs (sequential cells
    /// and sources first). Returns `None` if a combinational cycle exists.
    pub fn comb_topo_order(&self) -> Option<Vec<CellId>> {
        // Combinational arc: driver(comb-propagating) -> sink, where the
        // sink's arrival depends on the driver's arrival only if the DRIVER
        // is combinational. Sequential/source cells have fixed launch times.
        let n = self.cells.len();
        let mut indeg = vec![0u32; n];
        for net in &self.nets {
            if self.cells[net.driver.index()].kind.is_combinational() {
                for &s in &net.sinks {
                    indeg[s.index()] += 1;
                }
            }
        }
        let mut stack: Vec<CellId> = (0..n)
            .filter(|&i| indeg[i] == 0)
            .map(|i| CellId(i as u32))
            .collect();
        let mut order = Vec::with_capacity(n);
        while let Some(c) = stack.pop() {
            order.push(c);
            if !self.cells[c.index()].kind.is_combinational() {
                continue;
            }
            if let Some(net) = self.out_net[c.index()] {
                for &s in &self.nets[net.index()].sinks {
                    indeg[s.index()] -= 1;
                    if indeg[s.index()] == 0 {
                        stack.push(s);
                    }
                }
            }
        }
        (order.len() == n).then_some(order)
    }

    /// Checks structural invariants.
    ///
    /// # Errors
    ///
    /// Returns the first violation found: dangling nets, output cells that
    /// drive nets, or combinational cycles.
    pub fn validate(&self) -> Result<(), NetlistError> {
        for (id, net) in self.nets() {
            if net.sinks.is_empty() {
                return Err(NetlistError::DanglingNet { net: id });
            }
            if self.cells[net.driver.index()].kind == CellKind::Output {
                return Err(NetlistError::OutputDrives { cell: net.driver });
            }
        }
        if self.comb_topo_order().is_none() {
            // Find some cell on a cycle for the report: any combinational
            // cell with unresolved in-degree works; reuse the topo machinery.
            let cell = self
                .cells()
                .find(|(_, c)| c.kind.is_combinational())
                .map(|(id, _)| id)
                .unwrap_or(CellId(0));
            return Err(NetlistError::CombinationalCycle { cell });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> (Netlist, CellId, CellId, CellId) {
        let mut nl = Netlist::new("t");
        let src = nl.add_cell(Cell::ff("src", 8));
        let mid = nl.add_cell(Cell::comb("mid", 8, 0.5, 8));
        let dst = nl.add_cell(Cell::ff("dst", 8));
        nl.connect(src, &[mid]);
        nl.connect(mid, &[dst]);
        (nl, src, mid, dst)
    }

    #[test]
    fn connect_builds_indices() {
        let (nl, src, mid, dst) = tiny();
        let n0 = nl.output_net(src).expect("src drives");
        assert_eq!(nl.net(n0).sinks, vec![mid]);
        assert_eq!(nl.input_nets(mid), &[n0]);
        assert_eq!(nl.input_nets(dst).len(), 1);
        nl.validate().expect("valid");
    }

    #[test]
    fn connect_twice_extends_same_net() {
        let mut nl = Netlist::new("t");
        let a = nl.add_cell(Cell::ff("a", 4));
        let b = nl.add_cell(Cell::ff("b", 4));
        let c = nl.add_cell(Cell::ff("c", 4));
        let n1 = nl.connect(a, &[b]);
        let n2 = nl.connect(a, &[c]);
        assert_eq!(n1, n2);
        assert_eq!(nl.net(n1).fanout(), 2);
    }

    #[test]
    fn move_sinks_splits_fanout() {
        let mut nl = Netlist::new("t");
        let a = nl.add_cell(Cell::ff("a", 4));
        let sinks: Vec<CellId> = (0..4)
            .map(|i| nl.add_cell(Cell::comb(format!("s{i}"), 4, 0.3, 4)))
            .collect();
        nl.connect(a, &sinks);
        let dup = nl.add_cell(Cell::ff("a_dup", 4));
        nl.move_sinks(a, dup, &sinks[2..]);
        assert_eq!(nl.net(nl.output_net(a).unwrap()).fanout(), 2);
        assert_eq!(nl.net(nl.output_net(dup).unwrap()).fanout(), 2);
        assert_eq!(nl.input_nets(sinks[3]), &[nl.output_net(dup).unwrap()]);
    }

    #[test]
    fn stats_sum_costs() {
        let (nl, ..) = tiny();
        let s = nl.stats();
        assert_eq!(s.ffs, 16);
        assert_eq!(s.luts, 8);
        assert_eq!(s.brams, 0);
    }

    #[test]
    fn detects_dangling_net() {
        let mut nl = Netlist::new("t");
        let a = nl.add_cell(Cell::ff("a", 1));
        nl.connect(a, &[]);
        assert!(matches!(
            nl.validate(),
            Err(NetlistError::DanglingNet { .. })
        ));
    }

    #[test]
    fn detects_combinational_cycle() {
        let mut nl = Netlist::new("t");
        let a = nl.add_cell(Cell::comb("a", 1, 0.1, 1));
        let b = nl.add_cell(Cell::comb("b", 1, 0.1, 1));
        nl.connect(a, &[b]);
        nl.connect(b, &[a]);
        assert!(matches!(
            nl.validate(),
            Err(NetlistError::CombinationalCycle { .. })
        ));
    }

    #[test]
    fn sequential_loop_is_fine() {
        let mut nl = Netlist::new("t");
        let a = nl.add_cell(Cell::ff("a", 1));
        let b = nl.add_cell(Cell::comb("b", 1, 0.1, 1));
        nl.connect(a, &[b]);
        nl.connect(b, &[a]); // feedback through a register: legal
        nl.validate().expect("sequential loop is valid");
    }

    #[test]
    fn subgraph_keeps_internal_arcs_and_mapping() {
        let (nl, src, mid, dst) = tiny();
        let sub = nl.subgraph(&[src, mid]);
        assert_eq!(sub.netlist.cell_count(), 2);
        assert_eq!(sub.to_global(CellId(0)), src);
        assert_eq!(sub.to_global(CellId(1)), mid);
        // src -> mid survives; mid -> dst is a cross-boundary arc and is
        // dropped (mid keeps no net).
        let n = sub.netlist.output_net(CellId(0)).expect("src drives");
        assert_eq!(sub.netlist.net(n).sinks, vec![CellId(1)]);
        assert!(sub.netlist.output_net(CellId(1)).is_none());
        assert_eq!(sub.netlist.cell(CellId(1)).name, nl.cell(mid).name);
        let _ = dst;
    }

    #[test]
    fn subgraph_preserves_sink_order_and_duplicates() {
        let mut nl = Netlist::new("t");
        let a = nl.add_cell(Cell::ff("a", 4));
        let b = nl.add_cell(Cell::comb("b", 4, 0.3, 4));
        let c = nl.add_cell(Cell::comb("c", 4, 0.3, 4));
        // b reads the net twice (both operands).
        nl.connect(a, &[c, b, b]);
        let sub = nl.subgraph(&[a, b]);
        let n = sub.netlist.output_net(CellId(0)).unwrap();
        assert_eq!(sub.netlist.net(n).sinks, vec![CellId(1), CellId(1)]);
        assert_eq!(sub.netlist.input_nets(CellId(1)).len(), 2);
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn subgraph_rejects_unsorted_ids() {
        let (nl, src, mid, ..) = tiny();
        let _ = nl.subgraph(&[mid, src]);
    }

    #[test]
    fn topo_order_is_complete_and_respects_arcs() {
        let (nl, src, mid, dst) = tiny();
        let order = nl.comb_topo_order().expect("acyclic");
        assert_eq!(order.len(), 3);
        let pos = |c: CellId| order.iter().position(|&x| x == c).unwrap();
        // mid depends combinationally on nothing (its driver src is a FF),
        // but dst's arrival depends on mid (comb driver).
        assert!(pos(mid) < pos(dst));
        let _ = pos(src);
    }
}
