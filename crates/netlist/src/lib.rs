//! # hlsb-netlist — word-level RTL netlists
//!
//! A netlist of word-level cells connected by single-driver nets. This is
//! the representation shared by RTL generation (`hlsb-rtlgen`), placement
//! (`hlsb-place`) and static timing analysis (`hlsb-timing`).
//!
//! Cells are *word-level*: one [`Cell`] of width 32 stands for a 32-bit
//! adder, register, etc., and records its own resource cost (LUT/FF/BRAM/
//! DSP). This keeps netlists small enough to place with simulated annealing
//! while preserving the fanout *structure* — which is what determines the
//! broadcast timing behaviour the paper studies.
//!
//! # Example
//!
//! ```
//! use hlsb_netlist::{Cell, Netlist};
//!
//! let mut nl = Netlist::new("demo");
//! let src = nl.add_cell(Cell::ff("src", 32));
//! let a = nl.add_cell(Cell::comb("add_a", 32, 0.6, 32));
//! let b = nl.add_cell(Cell::comb("add_b", 32, 0.6, 32));
//! let net = nl.connect(src, &[a, b]);
//! assert_eq!(nl.net(net).fanout(), 2);
//! assert_eq!(nl.stats().ffs, 32);
//! nl.validate().unwrap();
//! ```

pub mod cell;
pub mod graph;
pub mod stats;
pub mod verilog;

pub use cell::{Cell, CellId, CellKind};
pub use graph::{Net, NetId, Netlist, NetlistError, Subgraph};
pub use stats::Stats;
pub use verilog::to_verilog;
