//! Job specifications: one JSONL line per requested compile.
//!
//! A job names a design plus the flow knobs to compile it with. Designs
//! are addressed three ways:
//!
//! * a Table-1 benchmark (or synthetic) by case-insensitive substring,
//!   resolved through [`hlsb_benchmarks::find_benchmark`] — the job
//!   inherits the benchmark's device and paper clock target unless the
//!   job overrides the clock;
//! * `fuzz:<seed>` — a seeded random valid design from
//!   [`hlsb_sim::fuzz::random_design`], the compile-farm load-generator
//!   workload;
//! * `dirty:<seed>` — a seeded design with one planted network defect
//!   ([`hlsb_sim::fuzz::random_dirty_design`]), for exercising the
//!   verify pre-gate.
//!
//! Every knob that participates in [`Flow::config_key`] is settable, so
//! two jobs are duplicates exactly when their resolved flows share a
//! config key. The JSON is hand-rolled ([`hlsb_store::json`]) like every
//! other persistent format in the workspace.

use hlsb::{Flow, OptimizationOptions, Partitioning, PlaceEffort, RegisterInjection};
use hlsb_store::json::{json_escape, raw_field, string_field};

/// One requested compile, as parsed from a JSONL job line.
#[derive(Debug, Clone, PartialEq)]
pub struct JobSpec {
    /// Client-chosen tag, echoed on the outcome line. Defaults to
    /// `job-<index>` (assigned by the server from the input position).
    pub id: String,
    /// Design reference: benchmark substring, `fuzz:<seed>` or
    /// `dirty:<seed>`.
    pub design: String,
    /// Clock target override, MHz. `None` uses the benchmark's paper
    /// clock (300 MHz for fuzzed designs).
    pub clock_mhz: Option<f64>,
    /// Optimization mask.
    pub options: OptimizationOptions,
    /// Flow seed.
    pub seed: u64,
    /// Placement seeds tried (best timing wins).
    pub place_seeds: u32,
    /// Placement effort.
    pub effort: PlaceEffort,
    /// Island partitioning.
    pub partitions: Partitioning,
    /// Forced register injection.
    pub inject: RegisterInjection,
}

impl Default for JobSpec {
    /// Server defaults: throughput-oriented (fast placement, one seed),
    /// no optimizations, seed 1 — every field overridable per job.
    fn default() -> Self {
        JobSpec {
            id: String::new(),
            design: String::new(),
            clock_mhz: None,
            options: OptimizationOptions::none(),
            seed: 1,
            place_seeds: 1,
            effort: PlaceEffort::Fast,
            partitions: Partitioning::Off,
            inject: RegisterInjection::Off,
        }
    }
}

/// Renders an optimization mask as a compact flag string: `none`, or a
/// subset of `bskm` (broadcast_aware, sync_pruning, skid_buffer,
/// min_area_skid) in that fixed order — `bskm` is
/// [`OptimizationOptions::all`].
pub fn options_mask(o: &OptimizationOptions) -> String {
    let mut s = String::new();
    for (on, c) in [
        (o.broadcast_aware, 'b'),
        (o.sync_pruning, 's'),
        (o.skid_buffer, 'k'),
        (o.min_area_skid, 'm'),
    ] {
        if on {
            s.push(c);
        }
    }
    if s.is_empty() {
        "none".to_string()
    } else {
        s
    }
}

/// Parses an optimization mask: `none`, `all`, or any combination of
/// the `bskm` flag letters (order-insensitive). Returns `None` for
/// unknown characters.
pub fn parse_options(s: &str) -> Option<OptimizationOptions> {
    match s {
        "none" => return Some(OptimizationOptions::none()),
        "all" => return Some(OptimizationOptions::all()),
        _ => {}
    }
    let mut o = OptimizationOptions::none();
    for c in s.chars() {
        match c {
            'b' => o.broadcast_aware = true,
            's' => o.sync_pruning = true,
            'k' => o.skid_buffer = true,
            'm' => o.min_area_skid = true,
            _ => return None,
        }
    }
    Some(o)
}

fn partitions_label(p: Partitioning) -> String {
    match p {
        Partitioning::Off => "off".to_string(),
        Partitioning::Auto => "auto".to_string(),
        Partitioning::Fixed(k) => k.to_string(),
    }
}

fn parse_partitions(s: &str) -> Option<Partitioning> {
    match s {
        "off" => Some(Partitioning::Off),
        "auto" => Some(Partitioning::Auto),
        n => n.parse().ok().map(Partitioning::Fixed),
    }
}

/// Parses a [`RegisterInjection::label`] string: `off` or `r1.3`
/// (boundaries joined by `.`).
fn parse_inject(s: &str) -> Option<RegisterInjection> {
    if s == "off" {
        return Some(RegisterInjection::Off);
    }
    let body = s.strip_prefix('r')?;
    let mut boundaries = Vec::new();
    for part in body.split('.') {
        boundaries.push(part.parse().ok()?);
    }
    Some(RegisterInjection::at(boundaries))
}

impl JobSpec {
    /// Renders the job as one canonical JSON line (no trailing newline).
    /// Optional fields at their defaults are still written, so the line
    /// is self-describing.
    pub fn to_json(&self) -> String {
        let clock = match self.clock_mhz {
            Some(mhz) => format!("{mhz:?}"),
            None => "null".to_string(),
        };
        format!(
            "{{\"id\":\"{}\",\"design\":\"{}\",\"clock_mhz\":{},\"options\":\"{}\",\
             \"seed\":{},\"place_seeds\":{},\"effort\":\"{}\",\"partitions\":\"{}\",\
             \"inject\":\"{}\"}}",
            json_escape(&self.id),
            json_escape(&self.design),
            clock,
            options_mask(&self.options),
            self.seed,
            self.place_seeds,
            match self.effort {
                PlaceEffort::Fast => "fast",
                PlaceEffort::Normal => "normal",
            },
            partitions_label(self.partitions),
            self.inject.label(),
        )
    }

    /// Parses one job line. Only `design` is required; every other field
    /// falls back to [`JobSpec::default`]. The error string names the
    /// offending field (deterministically, for stable outcome streams).
    pub fn from_json(line: &str) -> Result<JobSpec, String> {
        let line = line.trim();
        if !(line.starts_with('{') && line.ends_with('}')) {
            return Err("job line is not a JSON object".to_string());
        }
        let mut job = JobSpec {
            design: string_field(line, "design")
                .filter(|d| !d.is_empty())
                .ok_or("job is missing the required `design` field")?,
            ..JobSpec::default()
        };
        if let Some(id) = string_field(line, "id") {
            job.id = id;
        }
        match raw_field(line, "clock_mhz") {
            None | Some("null") => {}
            Some(raw) => {
                let mhz: f64 = raw
                    .parse()
                    .map_err(|_| format!("bad `clock_mhz` value {raw}"))?;
                if !(mhz.is_finite() && mhz > 0.0) {
                    return Err(format!("bad `clock_mhz` value {raw}"));
                }
                job.clock_mhz = Some(mhz);
            }
        }
        if let Some(mask) = string_field(line, "options") {
            job.options =
                parse_options(&mask).ok_or_else(|| format!("bad `options` mask `{mask}`"))?;
        }
        if let Some(raw) = raw_field(line, "seed") {
            job.seed = raw.parse().map_err(|_| format!("bad `seed` value {raw}"))?;
        }
        if let Some(raw) = raw_field(line, "place_seeds") {
            job.place_seeds = raw
                .parse()
                .map_err(|_| format!("bad `place_seeds` value {raw}"))?;
        }
        if let Some(s) = string_field(line, "effort") {
            job.effort = match s.as_str() {
                "fast" => PlaceEffort::Fast,
                "normal" => PlaceEffort::Normal,
                other => return Err(format!("bad `effort` value `{other}`")),
            };
        }
        if let Some(s) = string_field(line, "partitions") {
            job.partitions =
                parse_partitions(&s).ok_or_else(|| format!("bad `partitions` value `{s}`"))?;
        }
        if let Some(s) = string_field(line, "inject") {
            job.inject = parse_inject(&s).ok_or_else(|| format!("bad `inject` value `{s}`"))?;
        }
        Ok(job)
    }

    /// Resolves the job to a runnable [`Flow`] plus its human-readable
    /// configuration label (stored in the result record; the config key
    /// stays authoritative). Fails with a deterministic message for an
    /// unknown design reference.
    pub fn resolve(&self) -> Result<(Flow, String), String> {
        let (design, default_clock) = if let Some(seed) = self.design.strip_prefix("fuzz:") {
            let seed: u64 = seed
                .parse()
                .map_err(|_| format!("bad fuzz seed in `{}`", self.design))?;
            (hlsb_sim::fuzz::random_design(seed), 300.0)
        } else if let Some(seed) = self.design.strip_prefix("dirty:") {
            let seed: u64 = seed
                .parse()
                .map_err(|_| format!("bad dirty seed in `{}`", self.design))?;
            (hlsb_sim::fuzz::random_dirty_design(seed).0, 300.0)
        } else {
            let bench = hlsb_benchmarks::find_benchmark(&self.design)
                .ok_or_else(|| format!("no benchmark matches `{}`", self.design))?;
            let clock = bench.clock_mhz;
            let flow = Flow::new(bench.design)
                .device(bench.device)
                .clock_mhz(self.clock_mhz.unwrap_or(clock))
                .options(self.options)
                .seed(self.seed)
                .place_seeds(self.place_seeds)
                .place_effort(self.effort)
                .partitions(self.partitions)
                .inject(self.inject.clone());
            return Ok((flow, self.label(self.clock_mhz.unwrap_or(clock))));
        };
        let clock = self.clock_mhz.unwrap_or(default_clock);
        let flow = Flow::new(design)
            .clock_mhz(clock)
            .options(self.options)
            .seed(self.seed)
            .place_seeds(self.place_seeds)
            .place_effort(self.effort)
            .partitions(self.partitions)
            .inject(self.inject.clone());
        Ok((flow, self.label(clock)))
    }

    /// The job's configuration label: design reference plus every knob,
    /// `design @clock mask xseeds effort pN inject`.
    fn label(&self, clock_mhz: f64) -> String {
        format!(
            "{} @{:?}MHz {} s{} x{} {} p{} {}",
            self.design,
            clock_mhz,
            options_mask(&self.options),
            self.seed,
            self.place_seeds,
            match self.effort {
                PlaceEffort::Fast => "fast",
                PlaceEffort::Normal => "normal",
            },
            partitions_label(self.partitions),
            self.inject.label(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn job_json_round_trips() {
        let job = JobSpec {
            id: "j \"1\"".to_string(),
            design: "fuzz:42".to_string(),
            clock_mhz: Some(312.75),
            options: parse_options("bk").unwrap(),
            seed: 7,
            place_seeds: 2,
            effort: PlaceEffort::Normal,
            partitions: Partitioning::Fixed(3),
            inject: RegisterInjection::at(vec![1, 3]),
        };
        let line = job.to_json();
        assert_eq!(JobSpec::from_json(&line), Ok(job));
    }

    #[test]
    fn minimal_job_uses_defaults() {
        let job = JobSpec::from_json("{\"design\":\"genome\"}").expect("parses");
        assert_eq!(
            job,
            JobSpec {
                design: "genome".to_string(),
                ..JobSpec::default()
            }
        );
        assert_eq!(job.clock_mhz, None);
        assert_eq!(job.place_seeds, 1);
    }

    #[test]
    fn bad_jobs_fail_with_named_field() {
        assert!(JobSpec::from_json("not json").unwrap_err().contains("JSON"));
        assert!(JobSpec::from_json("{\"id\":\"x\"}")
            .unwrap_err()
            .contains("design"));
        for (line, field) in [
            ("{\"design\":\"g\",\"clock_mhz\":-3.0}", "clock_mhz"),
            ("{\"design\":\"g\",\"options\":\"xyz\"}", "options"),
            ("{\"design\":\"g\",\"seed\":-1}", "seed"),
            ("{\"design\":\"g\",\"effort\":\"slow\"}", "effort"),
            ("{\"design\":\"g\",\"partitions\":\"many\"}", "partitions"),
            ("{\"design\":\"g\",\"inject\":\"q9\"}", "inject"),
        ] {
            let err = JobSpec::from_json(line).unwrap_err();
            assert!(err.contains(field), "{line} -> {err}");
        }
    }

    #[test]
    fn masks_round_trip() {
        for mask in ["none", "b", "sk", "bskm"] {
            let o = parse_options(mask).unwrap();
            assert_eq!(options_mask(&o), mask);
        }
        assert_eq!(parse_options("all").unwrap(), OptimizationOptions::all());
        assert_eq!(options_mask(&OptimizationOptions::all()), "bskm");
        assert!(parse_options("bz").is_none());
    }

    #[test]
    fn resolution_covers_benchmarks_fuzz_and_dirty() {
        let bench = JobSpec {
            design: "genome".to_string(),
            ..JobSpec::default()
        };
        let (flow, label) = bench.resolve().expect("genome resolves");
        // Paper clock inherited from the benchmark preset.
        assert!(label.contains("genome @"), "{label}");
        assert_eq!(flow.config_key(), bench.resolve().unwrap().0.config_key());

        let fuzz = JobSpec {
            design: "fuzz:5".to_string(),
            ..JobSpec::default()
        };
        let (flow, label) = fuzz.resolve().expect("fuzz resolves");
        assert!(label.starts_with("fuzz:5 @300.0MHz"), "{label}");
        // Deterministic: same spec, same key.
        assert_eq!(flow.config_key(), fuzz.resolve().unwrap().0.config_key());

        let dirty = JobSpec {
            design: "dirty:0".to_string(),
            ..JobSpec::default()
        };
        dirty.resolve().expect("dirty resolves");

        for bad in ["fuzz:x", "dirty:", "no-such-bench"] {
            let job = JobSpec {
                design: bad.to_string(),
                ..JobSpec::default()
            };
            assert!(job.resolve().is_err(), "{bad} must not resolve");
        }
    }
}
