//! # hlsb-serve — the compile-farm batch job server
//!
//! The serving layer of the compile farm (DESIGN.md §3g): a long-lived
//! [`JobServer`] that accepts a stream of design jobs as JSONL (stdin or
//! a job file), canonicalizes and dedupes them by
//! [`Flow::config_key`](hlsb::Flow::config_key), answers repeated
//! configurations from the persistent [`hlsb_store::ArtifactStore`]
//! with **zero** place-and-route work, pre-gates fresh evaluations with
//! `hlsb-verify`, and shards the remainder across the work-stealing
//! worker pool ([`FlowSession::run_many`](hlsb::FlowSession::run_many)).
//!
//! Results stream back as one JSONL [`JobOutcome`] line per job, in
//! input order, with volatile fields (wall time, hit provenance) kept
//! out of the stream — so a cold run and a warm re-run of the same jobs
//! are byte-identical, and all accounting lives in the [`ServeSummary`]
//! and the `serve.*` metrics ([`JobServer::metrics`]).
//!
//! ```
//! use hlsb_serve::{JobServer, ServeConfig};
//!
//! let mut server = JobServer::new(ServeConfig { workers: 1, ..ServeConfig::default() });
//! let jobs = vec!["{\"design\":\"fuzz:1\"}".to_string()];
//! let mut lines = Vec::new();
//! let summary = server.process(jobs, |outcome| lines.push(outcome.to_json()));
//! assert_eq!(summary.evaluated, 1);
//! assert!(lines[0].contains("\"status\":\"done\""));
//! ```

pub mod job;
pub mod server;

pub use job::{options_mask, parse_options, JobSpec};
pub use server::{JobOutcome, JobServer, JobStatus, ServeConfig, ServeSummary};
