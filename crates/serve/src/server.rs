//! The batch job server: wave-based execution with config-key dedup,
//! store short-circuiting and a verify pre-gate.
//!
//! Jobs stream in as JSONL lines and are processed in *waves* (bounded
//! batches). Within a wave the server:
//!
//! 1. parses and resolves every job (malformed lines become `failed`
//!    outcomes — one bad job never poisons the batch);
//! 2. canonicalizes by [`Flow::config_key`](hlsb::Flow::config_key) and
//!    dedupes — a key answered earlier in this serve run (or twice in
//!    one wave) is served from memory;
//! 3. short-circuits through the persistent [`ArtifactStore`]: a key
//!    whose [`ResultRecord`] is on disk is answered with **zero**
//!    place-and-route work;
//! 4. runs the remaining flows through
//!    [`FlowSession::run_many`](hlsb::FlowSession::run_many) — the
//!    work-stealing worker pool — with the verify pre-gate enabled, and
//!    publishes fresh results back to the store.
//!
//! Outcome lines are emitted in input order and contain no volatile
//! fields (no wall times, no hit/miss provenance), so a cold run and a
//! warm re-run of the same job stream produce byte-identical streams —
//! the CI serve smoke test relies on this. Wall-clock cost and
//! hit/dedup accounting live in the [`ServeSummary`] and the `serve.*`
//! metrics instead.

use std::collections::HashMap;
use std::sync::{Arc, Mutex};
use std::time::Instant;

use hlsb::{FlowError, FlowSession};
use hlsb_findings::Severity;
use hlsb_store::json::json_escape;
use hlsb_store::{ArtifactStore, ResultRecord};
use hlsb_telemetry::{RunLedger, RunRecord};
use hlsb_trace::{MetricsRegistry, TraceTree, Tracer};

use crate::job::JobSpec;

/// Bucket edges for the `serve.queue-depth` histogram (jobs per wave).
const QUEUE_DEPTH_BOUNDS: [f64; 8] = [1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0];
/// Bucket edges for the `serve.wave-ms` histogram.
const WAVE_MS_BOUNDS: [f64; 6] = [1.0, 10.0, 100.0, 1000.0, 10_000.0, 100_000.0];
/// Bucket edges for the `serve.worker-utilization` histogram (fraction
/// of the worker pool a wave's fresh evaluations could keep busy).
const UTILIZATION_BOUNDS: [f64; 4] = [0.25, 0.5, 0.75, 1.0];

/// Server configuration.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Worker-pool width. 0 means the session default (`HLSB_THREADS`,
    /// else available parallelism).
    pub workers: usize,
    /// Jobs per wave (clamped to ≥ 1). Larger waves expose more
    /// parallelism to the pool; smaller waves stream results sooner.
    pub wave: usize,
    /// Pre-gate every fresh evaluation with `hlsb-verify` (on by
    /// default; `Error`-severity findings reject the job before any
    /// pipeline stage runs).
    pub verify: bool,
    /// Record `serve.*` spans for export ([`JobServer::take_trace`]).
    /// Counters and histograms are always collected.
    pub trace: bool,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            workers: 0,
            wave: 32,
            verify: true,
            trace: false,
        }
    }
}

/// How a job ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobStatus {
    /// Implemented (or answered from the store / an earlier duplicate).
    Done,
    /// Rejected by the verify pre-gate; see
    /// [`JobOutcome::findings`].
    Rejected,
    /// The job could not be parsed, resolved or implemented; see
    /// [`JobOutcome::error`].
    Failed,
}

impl JobStatus {
    fn name(self) -> &'static str {
        match self {
            JobStatus::Done => "done",
            JobStatus::Rejected => "rejected",
            JobStatus::Failed => "failed",
        }
    }
}

/// One job's result, emitted as a JSONL line in input order.
#[derive(Debug, Clone, PartialEq)]
pub struct JobOutcome {
    /// The job's id (client-chosen or `job-<index>`).
    pub id: String,
    /// Position in the input stream (0-based).
    pub index: usize,
    /// The resolved config key (absent when the job never resolved).
    pub key: Option<u64>,
    /// The job's design reference.
    pub design: String,
    /// Terminal status.
    pub status: JobStatus,
    /// The implementation digest for `done` jobs.
    pub record: Option<ResultRecord>,
    /// Rule ids of `Error`-severity verify findings (sorted, deduped)
    /// for `rejected` jobs.
    pub findings: Vec<String>,
    /// Deterministic failure message for `failed` jobs.
    pub error: Option<String>,
    /// Whether the persistent store answered the job (volatile across
    /// cold/warm runs — excluded from [`to_json`](JobOutcome::to_json),
    /// counted in the summary).
    pub from_store: bool,
    /// Whether an earlier job of this serve run answered the job.
    pub deduped: bool,
}

impl JobOutcome {
    /// Renders the outcome as one deterministic JSON line: identical for
    /// a cold evaluation, a store hit and an in-run duplicate of the
    /// same configuration (volatile fields — wall time, provenance —
    /// are deliberately absent).
    pub fn to_json(&self) -> String {
        let mut out = format!(
            "{{\"id\":\"{}\",\"status\":\"{}\",\"design\":\"{}\"",
            json_escape(&self.id),
            self.status.name(),
            json_escape(&self.design),
        );
        if let Some(key) = self.key {
            out.push_str(&format!(",\"key\":{key}"));
        }
        if let Some(rec) = &self.record {
            out.push_str(&format!(
                ",\"label\":\"{}\",\"fmax_mhz\":{:?},\"period_ns\":{:?},\
                 \"latency_cycles\":{},\"luts\":{},\"ffs\":{},\"brams\":{},\"dsps\":{},\
                 \"inserted_regs\":{},\"duplicated_regs\":{},\"retime_moves\":{}",
                json_escape(&rec.label),
                rec.fmax_mhz,
                rec.period_ns,
                rec.latency_cycles,
                rec.luts,
                rec.ffs,
                rec.brams,
                rec.dsps,
                rec.inserted_regs,
                rec.duplicated_regs,
                rec.retime_moves,
            ));
        }
        if !self.findings.is_empty() {
            let rules: Vec<String> = self
                .findings
                .iter()
                .map(|r| format!("\"{}\"", json_escape(r)))
                .collect();
            out.push_str(&format!(",\"findings\":[{}]", rules.join(",")));
        }
        if let Some(err) = &self.error {
            out.push_str(&format!(",\"error\":\"{}\"", json_escape(err)));
        }
        out.push('}');
        out
    }
}

/// Aggregate accounting for one [`JobServer::process`] call. All fields
/// here are allowed to vary between cold and warm runs — the outcome
/// stream is not.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ServeSummary {
    /// Jobs taken from the input stream.
    pub jobs: usize,
    /// Fresh full-flow evaluations actually performed.
    pub evaluated: usize,
    /// Jobs answered by the persistent store (zero place-and-route).
    pub store_hits: usize,
    /// Jobs answered by an earlier job of this serve run.
    pub dedup_hits: usize,
    /// Jobs rejected by the verify pre-gate.
    pub rejected: usize,
    /// Jobs that failed to parse, resolve or implement.
    pub failed: usize,
    /// Store appends that failed with an I/O error (results still
    /// served from memory).
    pub store_put_errors: usize,
    /// Wall-clock time of the whole `process` call, milliseconds.
    pub wall_ms: f64,
}

impl ServeSummary {
    /// Jobs answered per second of wall time (0 for an empty run).
    pub fn jobs_per_sec(&self) -> f64 {
        if self.wall_ms <= 0.0 {
            0.0
        } else {
            self.jobs as f64 / (self.wall_ms / 1e3)
        }
    }

    /// One-line human rendering.
    pub fn render(&self) -> String {
        format!(
            "served {} jobs in {:.0} ms ({:.1}/s): {} evaluated, {} store hits, \
             {} dedup hits, {} rejected, {} failed{}",
            self.jobs,
            self.wall_ms,
            self.jobs_per_sec(),
            self.evaluated,
            self.store_hits,
            self.dedup_hits,
            self.rejected,
            self.failed,
            if self.store_put_errors > 0 {
                format!(" ({} store put errors)", self.store_put_errors)
            } else {
                String::new()
            },
        )
    }
}

/// The batch compile server. One server owns one [`FlowSession`] (the
/// worker pool and stage-artifact cache) and optionally one shared
/// persistent [`ArtifactStore`]; [`process`](JobServer::process) may be
/// called repeatedly — later calls keep benefiting from the session
/// cache and the in-run answer table.
pub struct JobServer {
    cfg: ServeConfig,
    session: FlowSession,
    store: Option<Arc<ArtifactStore>>,
    /// Config keys answered in this serve run → their records.
    answered: HashMap<u64, ResultRecord>,
    /// Shared so a live scrape endpoint ([`metrics_handle`]
    /// (JobServer::metrics_handle)) can snapshot mid-run.
    metrics: Arc<Mutex<MetricsRegistry>>,
    /// Optional run ledger: one `serve-wave` record per executed wave
    /// (the session also appends one `flow` record per evaluation).
    ledger: Option<Arc<RunLedger>>,
    tracer: Tracer,
    jobs_seen: usize,
}

impl JobServer {
    /// A server without a persistent store (in-run dedup only).
    pub fn new(cfg: ServeConfig) -> Self {
        JobServer::build(cfg, None)
    }

    /// A server sharing the given persistent store: results are answered
    /// from it and fresh results published to it, and the session's
    /// stage cache audits its artifact fingerprints against it.
    pub fn with_store(cfg: ServeConfig, store: Arc<ArtifactStore>) -> Self {
        JobServer::build(cfg, Some(store))
    }

    fn build(cfg: ServeConfig, store: Option<Arc<ArtifactStore>>) -> Self {
        let mut session = if cfg.workers == 0 {
            FlowSession::new()
        } else {
            FlowSession::with_threads(cfg.workers)
        };
        if let Some(store) = &store {
            session = session.with_backend(store.clone() as Arc<dyn hlsb_store::ArtifactBackend>);
        }
        let tracer = if cfg.trace {
            Tracer::enabled()
        } else {
            Tracer::disabled()
        };
        JobServer {
            cfg,
            session,
            store,
            answered: HashMap::new(),
            metrics: Arc::new(Mutex::new(MetricsRegistry::default())),
            ledger: None,
            tracer,
            jobs_seen: 0,
        }
    }

    /// Attaches a persistent run ledger: the server appends one
    /// `serve-wave` record per executed wave, and the underlying
    /// session appends one `flow` record per fresh evaluation.
    pub fn with_ledger(mut self, ledger: Arc<RunLedger>) -> Self {
        self.session.set_ledger(ledger.clone());
        self.ledger = Some(ledger);
        self
    }

    /// The server's flow session (for cache statistics).
    pub fn session(&self) -> &FlowSession {
        &self.session
    }

    /// A snapshot of the `serve.*` counters and histograms collected so
    /// far.
    pub fn metrics(&self) -> MetricsRegistry {
        self.metrics.lock().unwrap().clone()
    }

    /// The live metrics registry, for a scrape endpoint that snapshots
    /// mid-run (`hlsb-serve --listen`).
    pub fn metrics_handle(&self) -> Arc<Mutex<MetricsRegistry>> {
        self.metrics.clone()
    }

    /// Moves the collected span tree out of the server (empty unless
    /// [`ServeConfig::trace`] was set). A snapshot of the server's
    /// metrics registry is attached to the tree.
    pub fn take_trace(&mut self) -> TraceTree {
        let mut tree = self.tracer.take_tree();
        tree.metrics = self.metrics();
        tree
    }

    /// Processes a stream of job lines, emitting one [`JobOutcome`] per
    /// job in input order. Blank lines and `#` comment lines are
    /// skipped. Returns the run's summary.
    pub fn process(
        &mut self,
        lines: impl IntoIterator<Item = String>,
        mut emit: impl FnMut(&JobOutcome),
    ) -> ServeSummary {
        let start = Instant::now();
        let root = self.tracer.root("serve");
        let mut summary = ServeSummary::default();
        let wave_len = self.cfg.wave.max(1);
        let mut wave: Vec<(usize, String)> = Vec::with_capacity(wave_len);
        let mut wave_index = 0usize;
        for line in lines {
            let trimmed = line.trim();
            if trimmed.is_empty() || trimmed.starts_with('#') {
                continue;
            }
            let index = self.jobs_seen;
            self.jobs_seen += 1;
            wave.push((index, line));
            if wave.len() == wave_len {
                self.run_wave(wave_index, &wave, &root, &mut summary, &mut emit);
                wave.clear();
                wave_index += 1;
            }
        }
        if !wave.is_empty() {
            self.run_wave(wave_index, &wave, &root, &mut summary, &mut emit);
        }
        root.finish();
        summary.wall_ms = start.elapsed().as_secs_f64() * 1e3;
        summary
    }

    /// Executes one wave: parse → resolve → dedup → store lookup →
    /// `run_many` the rest → publish → emit in input order.
    fn run_wave(
        &mut self,
        wave_index: usize,
        wave: &[(usize, String)],
        root: &hlsb_trace::SpanGuard,
        summary: &mut ServeSummary,
        emit: &mut impl FnMut(&JobOutcome),
    ) {
        let wave_start = Instant::now();
        let span = root.child("serve.wave");
        if span.is_enabled() {
            span.attr("wave", wave_index as u64);
            span.attr_volatile("jobs", wave.len() as u64);
        }
        summary.jobs += wave.len();
        {
            let mut metrics = self.metrics.lock().unwrap();
            metrics.count("serve.jobs", wave.len() as u64);
            metrics.observe("serve.queue-depth", &QUEUE_DEPTH_BOUNDS, wave.len() as f64);
        }

        // Parse + resolve. `slots` holds the finished outcomes; pending
        // evaluations remember which slot they fill.
        let mut slots: Vec<JobOutcome> = Vec::with_capacity(wave.len());
        let mut pending: Vec<(usize, hlsb::Flow, String)> = Vec::new();
        // Keys being evaluated in this wave → slot of the primary job,
        // and the duplicates waiting on them (dup slot → primary slot).
        let mut in_flight: HashMap<u64, usize> = HashMap::new();
        let mut dups: Vec<(usize, usize)> = Vec::new();
        for (slot, (index, line)) in wave.iter().enumerate() {
            let index = *index;
            let mut outcome = JobOutcome {
                id: format!("job-{index}"),
                index,
                key: None,
                design: String::new(),
                status: JobStatus::Failed,
                record: None,
                findings: Vec::new(),
                error: None,
                from_store: false,
                deduped: false,
            };
            let job = match JobSpec::from_json(line) {
                Ok(job) => job,
                Err(e) => {
                    outcome.error = Some(e);
                    slots.push(outcome);
                    continue;
                }
            };
            if !job.id.is_empty() {
                outcome.id = job.id.clone();
            }
            outcome.design = job.design.clone();
            let (flow, label) = match job.resolve() {
                Ok(resolved) => resolved,
                Err(e) => {
                    outcome.error = Some(e);
                    slots.push(outcome);
                    continue;
                }
            };
            let key = flow.config_key();
            outcome.key = Some(key);
            if let Some(rec) = self.answered.get(&key) {
                outcome.status = JobStatus::Done;
                outcome.record = Some(rec.clone());
                outcome.deduped = true;
                slots.push(outcome);
                continue;
            }
            if let Some(primary) = in_flight.get(&key) {
                // Duplicate of a job still evaluating in this wave: fill
                // in after the batch runs.
                outcome.deduped = true;
                dups.push((slot, *primary));
                slots.push(outcome);
                continue;
            }
            if let Some(rec) = self.store.as_ref().and_then(|s| s.get_result(key)) {
                outcome.status = JobStatus::Done;
                outcome.record = Some(rec.clone());
                outcome.from_store = true;
                self.answered.insert(key, rec);
                slots.push(outcome);
                continue;
            }
            in_flight.insert(key, slot);
            pending.push((slot, flow.verify(self.cfg.verify), label));
            slots.push(outcome);
        }

        // Evaluate the fresh configurations on the worker pool.
        let eval_start = Instant::now();
        let flows: Vec<hlsb::Flow> = pending.iter().map(|(_, f, _)| f.clone()).collect();
        let results = if flows.is_empty() {
            Vec::new()
        } else {
            self.session.run_many(&flows)
        };
        let eval_ms = eval_start.elapsed().as_secs_f64() * 1e3;
        let per_flow_ms = if flows.is_empty() {
            0.0
        } else {
            eval_ms / flows.len() as f64
        };
        for ((slot, flow, label), result) in pending.into_iter().zip(results) {
            let outcome = &mut slots[slot];
            match result {
                Ok(result) => {
                    let rec = flow.store_record(&label, &result, per_flow_ms);
                    if let Some(store) = &self.store {
                        if store.put_result(rec.clone()).is_err() {
                            summary.store_put_errors += 1;
                        }
                    }
                    self.answered.insert(rec.key, rec.clone());
                    outcome.status = JobStatus::Done;
                    outcome.record = Some(rec);
                    summary.evaluated += 1;
                }
                Err(FlowError::VerifyRejected { report }) => {
                    let mut rules: Vec<String> = report
                        .diagnostics
                        .iter()
                        .filter(|d| d.severity >= Severity::Error)
                        .map(|d| d.rule.to_string())
                        .collect();
                    rules.sort();
                    rules.dedup();
                    outcome.status = JobStatus::Rejected;
                    outcome.findings = rules;
                    summary.rejected += 1;
                }
                Err(other) => {
                    outcome.status = JobStatus::Failed;
                    outcome.error = Some(other.to_string());
                    summary.failed += 1;
                }
            }
        }

        // Resolve in-wave duplicates against their primaries, tally and
        // emit in input order.
        for (slot, primary) in dups {
            let (status, record, findings, error) = {
                let p = &slots[primary];
                (
                    p.status,
                    p.record.clone(),
                    p.findings.clone(),
                    p.error.clone(),
                )
            };
            let dup = &mut slots[slot];
            dup.status = status;
            dup.record = record;
            dup.findings = findings;
            dup.error = error;
        }
        let mut wave_tally = ServeSummary::default();
        for outcome in &slots {
            if outcome.deduped {
                summary.dedup_hits += 1;
                wave_tally.dedup_hits += 1;
            }
            if outcome.from_store {
                summary.store_hits += 1;
                wave_tally.store_hits += 1;
            }
            match outcome.status {
                JobStatus::Done => {}
                JobStatus::Rejected => wave_tally.rejected += 1,
                JobStatus::Failed => {
                    if !outcome.deduped {
                        // Parse/resolve failures were never tallied above.
                        if outcome.key.is_none() {
                            summary.failed += 1;
                        }
                        wave_tally.failed += 1;
                    }
                }
            }
            emit(outcome);
        }

        let wave_ms = wave_start.elapsed().as_secs_f64() * 1e3;
        {
            let mut metrics = self.metrics.lock().unwrap();
            // Zero tallies don't create counters: a clean run's registry
            // holds no `serve.rejected`/`serve.failed` entry, as before.
            for (name, tally) in [
                ("serve.dedup-hits", wave_tally.dedup_hits),
                ("serve.store-hits", wave_tally.store_hits),
                ("serve.rejected", wave_tally.rejected),
                ("serve.failed", wave_tally.failed),
            ] {
                if tally > 0 {
                    metrics.count(name, tally as u64);
                }
            }
            metrics.count("serve.evaluated", flows.len() as u64);
            metrics.observe("serve.wave-ms", &WAVE_MS_BOUNDS, wave_ms);
            let workers = self.session.threads().max(1) as f64;
            metrics.observe(
                "serve.worker-utilization",
                &UTILIZATION_BOUNDS,
                (flows.len() as f64 / workers).min(1.0),
            );
        }
        if let Some(ledger) = &self.ledger {
            let mut rec = RunRecord::new(
                "serve-wave",
                &format!("wave-{wave_index}"),
                0,
                "ok",
                wave_ms,
            );
            rec.add_stage("wave", wave_ms);
            rec.add_count("jobs", wave.len() as u64);
            rec.add_count("evaluated", flows.len() as u64);
            rec.add_count("store-hits", wave_tally.store_hits as u64);
            rec.add_count("dedup-hits", wave_tally.dedup_hits as u64);
            rec.add_count("rejected", wave_tally.rejected as u64);
            rec.add_count("failed", wave_tally.failed as u64);
            // Observational only: a full disk loses the record, never
            // the wave.
            let _ = ledger.append(rec);
        }
        if span.is_enabled() {
            span.attr_volatile("evaluated", flows.len() as u64);
            span.attr_volatile("wave-ms", wave_ms);
        }
        span.finish();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fuzz_job(seed: u64) -> String {
        format!("{{\"design\":\"fuzz:{seed}\"}}")
    }

    fn collect(server: &mut JobServer, lines: Vec<String>) -> (Vec<JobOutcome>, ServeSummary) {
        let mut out = Vec::new();
        let summary = server.process(lines, |o| out.push(o.clone()));
        (out, summary)
    }

    #[test]
    fn batch_dedups_and_keeps_input_order() {
        let cfg = ServeConfig {
            workers: 2,
            wave: 3, // force the duplicate pair into one wave and across waves
            ..ServeConfig::default()
        };
        let mut server = JobServer::new(cfg);
        let lines = vec![
            fuzz_job(1),
            fuzz_job(2),
            fuzz_job(1), // in-wave duplicate of job 0
            fuzz_job(2), // cross-wave duplicate of job 1
            fuzz_job(3),
        ];
        let (out, summary) = collect(&mut server, lines);
        assert_eq!(out.len(), 5);
        assert_eq!(
            out.iter().map(|o| o.index).collect::<Vec<_>>(),
            vec![0, 1, 2, 3, 4]
        );
        assert_eq!(summary.jobs, 5);
        assert_eq!(summary.evaluated, 3, "three unique configurations");
        assert_eq!(summary.dedup_hits, 2);
        assert_eq!(summary.store_hits, 0);
        for o in &out {
            assert_eq!(o.status, JobStatus::Done, "{:?}", o);
            assert!(o.record.is_some());
        }
        // Duplicates answer with the primary's record and identical
        // outcome JSON (ids aside).
        assert_eq!(out[0].record, out[2].record);
        assert_eq!(out[1].record, out[3].record);
        assert_eq!(server.metrics().counter("serve.jobs"), 5);
        assert_eq!(server.metrics().counter("serve.dedup-hits"), 2);
    }

    #[test]
    fn warm_store_answers_without_evaluation() {
        let store = Arc::new(ArtifactStore::in_memory());
        let cfg = ServeConfig {
            workers: 1,
            ..ServeConfig::default()
        };
        let lines = vec![fuzz_job(10), fuzz_job(11)];

        let mut cold = JobServer::with_store(cfg.clone(), store.clone());
        let (cold_out, cold_summary) = collect(&mut cold, lines.clone());
        assert_eq!(cold_summary.evaluated, 2);
        assert_eq!(cold_summary.store_hits, 0);
        assert_eq!(store.result_count(), 2);

        // A fresh server over the same store: all hits, zero work.
        let mut warm = JobServer::with_store(cfg, store.clone());
        let (warm_out, warm_summary) = collect(&mut warm, lines);
        assert_eq!(warm_summary.evaluated, 0, "warm store: zero P&R");
        assert_eq!(warm_summary.store_hits, 2);

        // The deterministic outcome stream is byte-identical.
        let cold_lines: Vec<String> = cold_out.iter().map(JobOutcome::to_json).collect();
        let warm_lines: Vec<String> = warm_out.iter().map(JobOutcome::to_json).collect();
        assert_eq!(cold_lines, warm_lines);
    }

    #[test]
    fn dirty_designs_are_rejected_with_findings() {
        let mut server = JobServer::new(ServeConfig {
            workers: 1,
            ..ServeConfig::default()
        });
        // dirty:0 plants a double-written channel (VN01).
        let (out, summary) = collect(
            &mut server,
            vec!["{\"design\":\"dirty:0\"}".to_string(), fuzz_job(1)],
        );
        assert_eq!(summary.rejected, 1);
        assert_eq!(out[0].status, JobStatus::Rejected);
        assert_eq!(out[0].findings, vec!["VN01".to_string()]);
        assert!(out[0].to_json().contains("\"findings\":[\"VN01\"]"));
        assert_eq!(out[1].status, JobStatus::Done);
        // Rejections are never published to a store; with no store at
        // all, nothing was answered persistently.
        assert_eq!(summary.store_hits, 0);
    }

    #[test]
    fn bad_lines_fail_without_poisoning_the_batch() {
        let mut server = JobServer::new(ServeConfig {
            workers: 1,
            ..ServeConfig::default()
        });
        let (out, summary) = collect(
            &mut server,
            vec![
                "garbage".to_string(),
                "{\"design\":\"no-such-design\"}".to_string(),
                String::new(), // blank: skipped entirely
                "# comment".to_string(),
                fuzz_job(4),
            ],
        );
        assert_eq!(out.len(), 3, "blank and comment lines are not jobs");
        assert_eq!(summary.jobs, 3);
        assert_eq!(summary.failed, 2);
        assert_eq!(out[0].status, JobStatus::Failed);
        assert!(out[0].to_json().contains("\"error\""));
        assert_eq!(out[1].status, JobStatus::Failed);
        assert!(out[1].error.as_deref().unwrap().contains("no-such-design"));
        assert_eq!(out[2].status, JobStatus::Done);
        // Failed jobs still get stable default ids from input position.
        assert_eq!(out[0].id, "job-0");
        assert_eq!(out[2].id, "job-2");
    }

    #[test]
    fn trace_records_serve_spans_and_wave_metrics() {
        let mut server = JobServer::new(ServeConfig {
            workers: 1,
            wave: 2,
            trace: true,
            ..ServeConfig::default()
        });
        let (_, _) = collect(&mut server, vec![fuzz_job(1), fuzz_job(2), fuzz_job(3)]);
        let tree = server.take_trace();
        let root = tree.root().expect("serve root span");
        assert_eq!(root.name, "serve");
        let waves: Vec<_> = tree
            .spans
            .iter()
            .filter(|s| s.name == "serve.wave")
            .collect();
        assert_eq!(waves.len(), 2, "3 jobs / wave=2 -> 2 waves");
        assert_eq!(tree.metrics.counter("serve.jobs"), 3);
        assert_eq!(tree.metrics.counter("serve.evaluated"), 3);
        let depth = tree.metrics.histogram("serve.queue-depth").expect("depth");
        assert_eq!(depth.total, 2);
        assert!(tree.metrics.histogram("serve.wave-ms").is_some());
        assert!(tree.metrics.histogram("serve.worker-utilization").is_some());
    }
}
