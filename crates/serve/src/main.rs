//! `hlsb-serve` — compile-farm batch job server CLI.
//!
//! ```text
//! hlsb-serve [--jobs <file>] [--store <dir>] [--workers <n>] [--wave <n>]
//!            [--no-verify] [--trace-out <file>] [--summary-out <file>]
//!            [--ledger <file>] [--metrics-out <file>] [--listen <addr>]
//! ```
//!
//! Reads one JSONL job per line from `--jobs` (or stdin), writes one
//! JSONL outcome per job to stdout in input order, and the volatile run
//! summary (throughput, hit/dedup accounting, `serve.*` metrics) to
//! stderr — and, with `--summary-out`, to a file. With `--store`, the
//! persistent artifact store at that directory answers repeated
//! configurations across invocations and processes.
//!
//! Telemetry: `--ledger` appends one run-ledger record per wave (plus
//! one per fresh flow evaluation) to a JSONL file shared safely across
//! processes; `--metrics-out` writes the final metrics snapshot in the
//! Prometheus text format; `--listen <addr>` (e.g. `127.0.0.1:9184`)
//! serves live snapshots of the wave metrics over HTTP for the whole
//! run — bind port 0 for an ephemeral port, printed on stderr.
//!
//! Exit code: 0 when every job was answered (`done` or `rejected`), 1
//! when any job `failed`, 2 for usage errors.

use std::io::{BufRead, Write};
use std::process::ExitCode;
use std::sync::Arc;

use hlsb_serve::{JobServer, JobStatus, ServeConfig};
use hlsb_store::ArtifactStore;
use hlsb_telemetry::{render_prometheus, MetricsServer, RunLedger};

struct Args {
    jobs: Option<String>,
    store: Option<String>,
    workers: usize,
    wave: usize,
    verify: bool,
    trace_out: Option<String>,
    summary_out: Option<String>,
    ledger: Option<String>,
    metrics_out: Option<String>,
    listen: Option<String>,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        jobs: None,
        store: None,
        workers: 0,
        wave: 32,
        verify: true,
        trace_out: None,
        summary_out: None,
        ledger: None,
        metrics_out: None,
        listen: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--jobs" => args.jobs = Some(it.next().ok_or("--jobs needs a value")?),
            "--store" => args.store = Some(it.next().ok_or("--store needs a value")?),
            "--workers" => {
                let v = it.next().ok_or("--workers needs a value")?;
                args.workers = v.parse().map_err(|_| format!("bad --workers {v}"))?;
            }
            "--wave" => {
                let v = it.next().ok_or("--wave needs a value")?;
                args.wave = v.parse().map_err(|_| format!("bad --wave {v}"))?;
            }
            "--no-verify" => args.verify = false,
            "--trace-out" => args.trace_out = Some(it.next().ok_or("--trace-out needs a value")?),
            "--summary-out" => {
                args.summary_out = Some(it.next().ok_or("--summary-out needs a value")?);
            }
            "--ledger" => args.ledger = Some(it.next().ok_or("--ledger needs a value")?),
            "--metrics-out" => {
                args.metrics_out = Some(it.next().ok_or("--metrics-out needs a value")?);
            }
            "--listen" => args.listen = Some(it.next().ok_or("--listen needs a value")?),
            "--help" | "-h" => {
                return Err("usage: hlsb-serve [--jobs <file>] [--store <dir>] \
                            [--workers <n>] [--wave <n>] [--no-verify] \
                            [--trace-out <file>] [--summary-out <file>] \
                            [--ledger <file>] [--metrics-out <file>] [--listen <addr>]"
                    .to_string());
            }
            other => return Err(format!("unknown argument `{other}` (try --help)")),
        }
    }
    Ok(args)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(args) => args,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::from(2);
        }
    };

    let cfg = ServeConfig {
        workers: args.workers,
        wave: args.wave.max(1),
        verify: args.verify,
        trace: args.trace_out.is_some(),
    };
    let mut server = match &args.store {
        Some(dir) => match ArtifactStore::open(dir) {
            Ok(store) => JobServer::with_store(cfg, Arc::new(store)),
            Err(e) => {
                eprintln!("hlsb-serve: cannot open store {dir}: {e}");
                return ExitCode::from(2);
            }
        },
        None => JobServer::new(cfg),
    };

    if let Some(path) = &args.ledger {
        match RunLedger::open(path) {
            Ok(ledger) => server = server.with_ledger(Arc::new(ledger)),
            Err(e) => {
                eprintln!("hlsb-serve: cannot open ledger {path}: {e}");
                return ExitCode::from(2);
            }
        }
    }

    let mut metrics_server = None;
    if let Some(addr) = &args.listen {
        let handle = server.metrics_handle();
        match MetricsServer::start(addr, move || {
            render_prometheus(&handle.lock().unwrap(), &[("tool", "serve")])
        }) {
            Ok(srv) => {
                eprintln!(
                    "hlsb-serve: metrics listening on http://{}/metrics",
                    srv.addr()
                );
                metrics_server = Some(srv);
            }
            Err(e) => {
                eprintln!("hlsb-serve: cannot listen on {addr}: {e}");
                return ExitCode::from(2);
            }
        }
    }

    let lines: Box<dyn Iterator<Item = String>> = match &args.jobs {
        Some(path) => match std::fs::read_to_string(path) {
            Ok(text) => Box::new(
                text.lines()
                    .map(str::to_string)
                    .collect::<Vec<_>>()
                    .into_iter(),
            ),
            Err(e) => {
                eprintln!("hlsb-serve: cannot read {path}: {e}");
                return ExitCode::from(2);
            }
        },
        None => Box::new(std::io::stdin().lock().lines().map_while(Result::ok)),
    };

    let stdout = std::io::stdout();
    let mut out = std::io::BufWriter::new(stdout.lock());
    let mut any_failed = false;
    let summary = server.process(lines, |outcome| {
        any_failed |= outcome.status == JobStatus::Failed;
        let _ = writeln!(out, "{}", outcome.to_json());
    });
    let _ = out.flush();

    let rendered = format!("{}\n{}", summary.render(), server.metrics().render());
    eprintln!("{rendered}");
    if let Some(path) = &args.summary_out {
        if let Err(e) = std::fs::write(path, format!("{rendered}\n")) {
            eprintln!("hlsb-serve: cannot write {path}: {e}");
            return ExitCode::FAILURE;
        }
    }
    if let Some(path) = &args.metrics_out {
        let text = render_prometheus(&server.metrics(), &[("tool", "serve")]);
        if let Err(e) = std::fs::write(path, text) {
            eprintln!("hlsb-serve: cannot write {path}: {e}");
            return ExitCode::FAILURE;
        }
    }
    if let Some(path) = &args.trace_out {
        let tree = server.take_trace();
        if let Err(e) = std::fs::write(path, tree.to_jsonl()) {
            eprintln!("hlsb-serve: cannot write {path}: {e}");
            return ExitCode::FAILURE;
        }
    }
    drop(metrics_server);
    if any_failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
