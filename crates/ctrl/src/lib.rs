//! # hlsb-ctrl — pipeline flow control: stall vs skid buffer
//!
//! The paper's §4.3 replaces the HLS-standard *stall broadcast* (empty/full
//! back-pressure fanned out to every pipeline stage) with *skid-buffer-based
//! control*: the pipeline always flows, each datum carries a valid bit, and
//! a bounded bypass FIFO at the end absorbs in-flight data when the
//! downstream blocks. This crate provides:
//!
//! * [`skid`] — sizing rules (depth ≥ N+1) and area formulas;
//! * [`distribute`] — the dynamic-programming **min-area multi-level split**
//!   that places buffers at narrow "waist" stages (Fig. 12/17, Table 2);
//! * [`sim`] — a cycle-accurate simulator of both control styles used to
//!   verify the paper's claims: identical output streams, identical
//!   long-run throughput, and no overflow at depth N+1.
//!
//! # Example
//!
//! ```
//! use hlsb_ctrl::{distribute, skid};
//!
//! // The paper's Fig. 17 example: stages 1..=56 pass 32 bits, the last
//! // 5 stages pass 1024 bits.
//! let mut widths = vec![32u64; 56];
//! widths.extend([1024; 5]);
//! let plan = distribute::min_area_split(&widths);
//! assert_eq!(plan.total_bits, (56 + 1) * 32 + (5 + 1) * 1024); // 7968
//! assert_eq!(skid::naive_area_bits(61, 1024), 63_488);
//! ```

pub mod distribute;
pub mod sim;
pub mod skid;

pub use distribute::{brute_force_split, min_area_split, SplitPlan};
pub use sim::{simulate_skid, simulate_stall, SimResult};
pub use skid::{naive_area_bits, required_depth, required_depth_with_slack};
