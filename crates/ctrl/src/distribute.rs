//! Min-area multi-level skid buffer placement (paper §4.3, Fig. 12).
//!
//! Instead of one `(N+1)`-deep buffer of the output width at the end of the
//! pipeline, buffers can be placed at intermediate stages: a buffer after
//! stage `M` must hold the data of all stages up to `M` (depth `M - prev`
//! +1) at the width passing through stage `M`. Splitting at narrow "waist"
//! stages (e.g. the scalar between a reduction tree and a vector broadcast,
//! Fig. 17) shrinks total bits dramatically. The optimal cut set is found
//! by dynamic programming over prefixes.

/// An optimal buffer placement.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SplitPlan {
    /// Stages (1-based) after which a buffer is placed. Always ends with
    /// the final stage.
    pub cuts: Vec<usize>,
    /// Total buffer bits of this plan.
    pub total_bits: u64,
    /// Bits of the naive single end buffer, for comparison.
    pub naive_bits: u64,
}

impl SplitPlan {
    /// Depth of the buffer placed at `cuts[i]` (segment length + 1).
    pub fn depth_at(&self, i: usize) -> usize {
        let start = if i == 0 { 0 } else { self.cuts[i - 1] };
        self.cuts[i] - start + 1
    }

    /// Area saving versus the naive plan, as a fraction in `[0, 1]`.
    pub fn saving(&self) -> f64 {
        if self.naive_bits == 0 {
            0.0
        } else {
            1.0 - self.total_bits as f64 / self.naive_bits as f64
        }
    }
}

/// Computes the min-area buffer split for a pipeline whose stage `i`
/// (1-based) passes `widths[i-1]` bits to stage `i+1` (the last entry is
/// the pipeline output width).
///
/// Cost model (from the paper): a segment of stages `j+1 ..= i` buffered
/// after stage `i` costs `(i - j + 1) * widths[i-1]` bits. DP over `i` with
/// `best[i] = min over j < i of best[j] + (i - j + 1) * w[i]`.
///
/// Returns the empty plan for an empty pipeline.
pub fn min_area_split(widths: &[u64]) -> SplitPlan {
    let n = widths.len();
    if n == 0 {
        return SplitPlan {
            cuts: vec![],
            total_bits: 0,
            naive_bits: 0,
        };
    }
    // best[i] = min bits to buffer stages 1..=i with a cut at stage i.
    let mut best = vec![u64::MAX; n + 1];
    let mut prev = vec![0usize; n + 1];
    best[0] = 0;
    for i in 1..=n {
        let w = widths[i - 1];
        for j in 0..i {
            let cost = best[j].saturating_add((i - j + 1) as u64 * w);
            if cost < best[i] {
                best[i] = cost;
                prev[i] = j;
            }
        }
    }
    let mut cuts = Vec::new();
    let mut cur = n;
    while cur > 0 {
        cuts.push(cur);
        cur = prev[cur];
    }
    cuts.reverse();
    SplitPlan {
        cuts,
        total_bits: best[n],
        naive_bits: (n as u64 + 1) * widths[n - 1],
    }
}

/// Exhaustive reference implementation for small `n` (testing only).
pub fn brute_force_split(widths: &[u64]) -> u64 {
    let n = widths.len();
    if n == 0 {
        return 0;
    }
    // Enumerate all subsets of interior cut positions {1..n-1}; the final
    // stage is always a cut.
    let mut best = u64::MAX;
    let interior = n - 1;
    for mask in 0u32..(1 << interior) {
        let mut cuts: Vec<usize> = (1..n).filter(|&i| mask & (1 << (i - 1)) != 0).collect();
        cuts.push(n);
        let mut total = 0u64;
        let mut start = 0usize;
        for &c in &cuts {
            total += (c - start + 1) as u64 * widths[c - 1];
            start = c;
        }
        best = best.min(total);
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use hlsb_rng::Rng;

    #[test]
    fn paper_fig17_example() {
        // 56 stages of 32-bit scalar chain, then 5 stages of 1024-bit
        // vector: optimal = (56+1)*32 + (5+1)*1024 = 7968 bits.
        let mut widths = vec![32u64; 56];
        widths.extend([1024u64; 5]);
        let plan = min_area_split(&widths);
        assert_eq!(plan.total_bits, 7_968);
        assert_eq!(plan.cuts, vec![56, 61]);
        assert_eq!(plan.naive_bits, 63_488);
        assert!(plan.saving() > 0.87);
        assert_eq!(plan.depth_at(0), 57);
        assert_eq!(plan.depth_at(1), 6);
    }

    #[test]
    fn uniform_width_prefers_single_buffer() {
        // With constant width, any extra cut adds a +1 depth overhead.
        let widths = vec![64u64; 10];
        let plan = min_area_split(&widths);
        assert_eq!(plan.cuts, vec![10]);
        assert_eq!(plan.total_bits, plan.naive_bits);
    }

    #[test]
    fn spindle_shape_keeps_end_buffer() {
        // Narrow -> wide ("spindle", like the paper's 8-iteration Jacobi):
        // best strategy is the whole buffer at the end only if no interior
        // waist is narrower than the output.
        let widths = vec![512u64, 512, 512, 512];
        let plan = min_area_split(&widths);
        assert_eq!(plan.cuts, vec![4]);
    }

    #[test]
    fn empty_pipeline() {
        let plan = min_area_split(&[]);
        assert_eq!(plan.total_bits, 0);
        assert!(plan.cuts.is_empty());
    }

    #[test]
    fn single_stage() {
        let plan = min_area_split(&[128]);
        assert_eq!(plan.cuts, vec![1]);
        assert_eq!(plan.total_bits, 2 * 128);
    }

    #[test]
    fn matches_brute_force_on_fixed_cases() {
        for widths in [
            vec![8u64, 8, 1, 64, 64],
            vec![100, 1, 100, 1, 100],
            vec![3, 9, 27, 81],
            vec![32; 7],
        ] {
            assert_eq!(
                min_area_split(&widths).total_bits,
                brute_force_split(&widths),
                "widths {widths:?}"
            );
        }
    }

    fn random_widths(rng: &mut Rng, max_w: u64, max_len: usize) -> Vec<u64> {
        let len = rng.gen_index(max_len) + 1;
        (0..len).map(|_| rng.gen_u64(1, max_w)).collect()
    }

    #[test]
    fn dp_is_optimal() {
        let mut rng = Rng::seed_from_u64(0xD15_7001);
        for _ in 0..256 {
            let widths = random_widths(&mut rng, 1999, 9);
            let dp = min_area_split(&widths);
            let bf = brute_force_split(&widths);
            assert_eq!(dp.total_bits, bf, "widths {widths:?}");
        }
    }

    #[test]
    fn dp_never_worse_than_naive() {
        let mut rng = Rng::seed_from_u64(0xD15_7002);
        for _ in 0..256 {
            let widths = random_widths(&mut rng, 4999, 39);
            let dp = min_area_split(&widths);
            assert!(dp.total_bits <= dp.naive_bits, "widths {widths:?}");
            // Cuts are strictly increasing and end at n.
            assert_eq!(*dp.cuts.last().unwrap(), widths.len());
            for w in dp.cuts.windows(2) {
                assert!(w[0] < w[1]);
            }
        }
    }
}
