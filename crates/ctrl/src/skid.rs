//! Skid-buffer sizing.

/// Minimum safe depth of a skid buffer appended after a pipeline of
/// `n_stages` stages.
///
/// "Assuming the length of the pipeline is N, as long as the depth of the
/// buffer is no smaller than N+1 (+1 since the empty signal will be
/// deasserted one cycle after the first element is in), no overflow will
/// happen." (§4.3). [`crate::sim`] verifies both that this bound is safe
/// and that it is tight (depth N overflows under adversarial
/// back-pressure).
pub fn required_depth(n_stages: usize) -> usize {
    n_stages + 1
}

/// Area in bits of the naive single end-of-pipeline skid buffer:
/// `(N + 1) * w` for a pipeline of `N` stages with output width `w`
/// (the paper's `BufferArea` formula).
pub fn naive_area_bits(n_stages: usize, out_width_bits: u64) -> u64 {
    required_depth(n_stages) as u64 * out_width_bits
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn depth_is_n_plus_one() {
        assert_eq!(required_depth(0), 1);
        assert_eq!(required_depth(370), 371);
    }

    #[test]
    fn paper_fig17_naive_area() {
        // "Directly adding a buffer at the end results in
        //  (61+1) x 1024 = 63488 bits".
        assert_eq!(naive_area_bits(61, 1024), 63_488);
    }
}
