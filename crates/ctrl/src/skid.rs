//! Skid-buffer sizing.

/// Minimum safe depth of a skid buffer appended after a pipeline of
/// `n_stages` stages.
///
/// "Assuming the length of the pipeline is N, as long as the depth of the
/// buffer is no smaller than N+1 (+1 since the empty signal will be
/// deasserted one cycle after the first element is in), no overflow will
/// happen." (§4.3). [`crate::sim`] verifies both that this bound is safe
/// and that it is tight (depth N overflows under adversarial
/// back-pressure).
pub fn required_depth(n_stages: usize) -> usize {
    n_stages + 1
}

/// Minimum safe depth when the path from the pipeline into the buffer
/// carries extra registered hops — e.g. the inter-island crossing
/// registers of partitioned placement. Each slack slot is one more cycle
/// during which elements keep arriving after back-pressure asserts, so
/// the buffer needs one more entry per slot: `N + 1 + slack_slots`.
pub fn required_depth_with_slack(n_stages: usize, slack_slots: usize) -> usize {
    required_depth(n_stages) + slack_slots
}

/// Area in bits of the naive single end-of-pipeline skid buffer:
/// `(N + 1) * w` for a pipeline of `N` stages with output width `w`
/// (the paper's `BufferArea` formula).
pub fn naive_area_bits(n_stages: usize, out_width_bits: u64) -> u64 {
    required_depth(n_stages) as u64 * out_width_bits
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn depth_is_n_plus_one() {
        assert_eq!(required_depth(0), 1);
        assert_eq!(required_depth(370), 371);
    }

    #[test]
    fn slack_slots_deepen_the_buffer() {
        assert_eq!(required_depth_with_slack(5, 0), required_depth(5));
        assert_eq!(required_depth_with_slack(5, 1), 7);
        assert_eq!(required_depth_with_slack(0, 3), 4);
    }

    #[test]
    fn paper_fig17_naive_area() {
        // "Directly adding a buffer at the end results in
        //  (61+1) x 1024 = 63488 bits".
        assert_eq!(naive_area_bits(61, 1024), 63_488);
    }
}
