//! Cycle-accurate simulation of the two pipeline-control styles.
//!
//! Both models push the same input stream through an `N`-stage pipeline in
//! front of a back-pressuring consumer. The stall-based model freezes the
//! whole pipeline when its output FIFO is full (one global enable — the
//! broadcast under study). The skid-based model always shifts, tags data
//! with valid bits, and gates only the *first* stage.
//!
//! Two gating policies are provided for the skid model:
//!
//! * [`GatePolicy::RegisteredEmpty`] — the paper's literal description:
//!   "the buffer will become non-empty, and the pipeline will stop reading
//!   from the upstream", with the empty flag registered (the source of the
//!   `+1` in the depth bound). Safe at depth `N+1`, but it starves the
//!   pipeline after every short back-pressure burst (the bubble train
//!   must drain before reading resumes).
//! * [`GatePolicy::Credit`] — the engineering-standard realization that
//!   actually delivers the paper's "exact same throughput" claim: the
//!   source keeps a counter of outstanding data (in flight + buffered,
//!   with the consumer's pop signal fed back through one register) and
//!   reads while it is below the buffer capacity. Full rate requires
//!   capacity ≥ `N+1` — the same bound, reached from the throughput side.
//!
//! Both policies deliver identical output streams and never overflow at
//! depth `N+1`; the property tests below pin all of these claims down.

use std::collections::VecDeque;

/// How the skid pipeline decides whether to accept new input.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum GatePolicy {
    /// Stop reading while the buffer's registered empty flag is deasserted
    /// (paper-literal).
    RegisteredEmpty,
    /// Credit-based: read while outstanding (in-flight + buffered) data is
    /// below capacity; pop feedback is registered (1 cycle).
    #[default]
    Credit,
}

/// Outcome of a simulation run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SimResult {
    /// Values delivered to the consumer, in order.
    pub outputs: Vec<u64>,
    /// Cycles until every input was delivered (or `max_cycles`).
    pub cycles: u64,
    /// Peak occupancy of the output FIFO / skid buffer.
    pub peak_occupancy: usize,
    /// Whether the buffer ever overflowed (data lost).
    pub overflow: bool,
}

/// Simulates the conventional stall-based pipeline.
///
/// * `n_stages` — pipeline depth N;
/// * `out_fifo_depth` — capacity of the output FIFO whose `full` signal is
///   broadcast as the stall;
/// * `inputs` — the data stream (always available at the source);
/// * `ready` — per-cycle consumer readiness;
/// * `max_cycles` — safety bound.
pub fn simulate_stall(
    n_stages: usize,
    out_fifo_depth: usize,
    inputs: &[u64],
    mut ready: impl FnMut(u64) -> bool,
    max_cycles: u64,
) -> SimResult {
    let n = n_stages.max(1);
    let mut stages: Vec<Option<u64>> = vec![None; n];
    let mut fifo: VecDeque<u64> = VecDeque::new();
    let mut next_in = 0usize;
    let mut outputs = Vec::with_capacity(inputs.len());
    let mut peak = 0usize;

    for cycle in 0..max_cycles {
        if outputs.len() == inputs.len() {
            return SimResult {
                outputs,
                cycles: cycle,
                peak_occupancy: peak,
                overflow: false,
            };
        }
        // Consumer pops first (frees a slot within the same cycle).
        if ready(cycle) {
            if let Some(v) = fifo.pop_front() {
                outputs.push(v);
            }
        }
        // Global stall: nothing moves while the FIFO is full.
        if fifo.len() < out_fifo_depth {
            if let Some(v) = stages[n - 1].take() {
                fifo.push_back(v);
            }
            for i in (1..n).rev() {
                stages[i] = stages[i - 1].take();
            }
            stages[0] = if next_in < inputs.len() {
                let v = inputs[next_in];
                next_in += 1;
                Some(v)
            } else {
                None
            };
        }
        peak = peak.max(fifo.len());
    }
    SimResult {
        outputs,
        cycles: max_cycles,
        peak_occupancy: peak,
        overflow: false,
    }
}

/// Simulates the skid-buffer-based pipeline under the given gating policy.
///
/// The pipeline always shifts; data exiting the last stage is pushed into
/// the skid buffer (capacity `skid_depth`). Overflow drops the datum and
/// sets the `overflow` flag — this only happens with an undersized buffer.
pub fn simulate_skid_with(
    n_stages: usize,
    skid_depth: usize,
    policy: GatePolicy,
    inputs: &[u64],
    mut ready: impl FnMut(u64) -> bool,
    max_cycles: u64,
) -> SimResult {
    let n = n_stages.max(1);
    let mut stages: Vec<Option<u64>> = vec![None; n];
    let mut buffer: VecDeque<u64> = VecDeque::new();
    let mut next_in = 0usize;
    let mut outputs = Vec::with_capacity(inputs.len());
    let mut peak = 0usize;
    let mut overflow = false;
    // RegisteredEmpty state: buffer emptiness at the last clock edge.
    let mut empty_reg = true;
    // Credit state: outstanding count and the registered pop feedback.
    let mut outstanding = 0usize;
    let mut pop_last_cycle = false;

    for cycle in 0..max_cycles {
        if outputs.len() == inputs.len() && !overflow {
            return SimResult {
                outputs,
                cycles: cycle,
                peak_occupancy: peak,
                overflow,
            };
        }
        // The registered pop signal arrives at the source.
        if pop_last_cycle {
            outstanding = outstanding.saturating_sub(1);
        }
        let gate_open = match policy {
            GatePolicy::RegisteredEmpty => empty_reg,
            GatePolicy::Credit => outstanding < skid_depth,
        };

        // The pipeline always shifts.
        if let Some(v) = stages[n - 1].take() {
            if buffer.len() < skid_depth {
                buffer.push_back(v);
            } else {
                overflow = true; // datum lost
            }
        }
        for i in (1..n).rev() {
            stages[i] = stages[i - 1].take();
        }
        stages[0] = if gate_open && next_in < inputs.len() {
            let v = inputs[next_in];
            next_in += 1;
            outstanding += 1;
            Some(v)
        } else {
            None
        };
        peak = peak.max(buffer.len());

        // Consumer pops from the skid buffer.
        let mut popped = false;
        if ready(cycle) {
            if let Some(v) = buffer.pop_front() {
                outputs.push(v);
                popped = true;
            }
        }
        pop_last_cycle = popped;
        empty_reg = buffer.is_empty();
    }
    SimResult {
        outputs,
        cycles: max_cycles,
        peak_occupancy: peak,
        overflow,
    }
}

/// Simulates the skid pipeline with the default (credit) policy.
pub fn simulate_skid(
    n_stages: usize,
    skid_depth: usize,
    inputs: &[u64],
    ready: impl FnMut(u64) -> bool,
    max_cycles: u64,
) -> SimResult {
    simulate_skid_with(
        n_stages,
        skid_depth,
        GatePolicy::Credit,
        inputs,
        ready,
        max_cycles,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::skid::required_depth;
    use hlsb_rng::Rng;

    const MAX: u64 = 1_000_000;

    fn data(n: usize) -> Vec<u64> {
        (0..n as u64).collect()
    }

    #[test]
    fn both_deliver_in_order_with_free_downstream() {
        let inputs = data(100);
        let stall = simulate_stall(8, 2, &inputs, |_| true, MAX);
        for policy in [GatePolicy::RegisteredEmpty, GatePolicy::Credit] {
            let skid = simulate_skid_with(8, required_depth(8), policy, &inputs, |_| true, MAX);
            assert_eq!(skid.outputs, inputs, "{policy:?}");
            assert!(!skid.overflow);
            assert!(skid.cycles <= 100 + 8 + 4, "{policy:?}: {}", skid.cycles);
        }
        assert_eq!(stall.outputs, inputs);
        assert!(stall.cycles <= 100 + 8 + 3, "{}", stall.cycles);
    }

    #[test]
    fn empty_policy_depth_bound_is_tight() {
        // Adversarial: consumer blocks forever once the pipe is full.
        let inputs = data(50);
        let n = 12;
        let ok = simulate_skid_with(
            n,
            required_depth(n),
            GatePolicy::RegisteredEmpty,
            &inputs,
            |c| c < 5,
            4_000,
        );
        assert!(!ok.overflow);
        assert_eq!(ok.peak_occupancy, n + 1, "the bound should be reached");

        // The +1 matters: a buffer of depth N loses data.
        let bad = simulate_skid_with(n, n, GatePolicy::RegisteredEmpty, &inputs, |c| c < 5, 4_000);
        assert!(bad.overflow, "depth N must overflow under the empty policy");
    }

    #[test]
    fn credit_policy_never_overflows_even_undersized() {
        // Credits cap outstanding data at the capacity, whatever it is.
        let inputs = data(80);
        let n = 10;
        for depth in [1, 3, n, n + 1] {
            let r = simulate_skid_with(n, depth, GatePolicy::Credit, &inputs, |c| c % 7 != 0, MAX);
            assert!(!r.overflow, "depth {depth}");
            assert_eq!(r.outputs, inputs, "depth {depth}");
        }
    }

    #[test]
    fn credit_policy_needs_n_plus_one_for_full_rate() {
        // With a free-flowing consumer, capacity N+1 sustains one datum per
        // cycle; capacity N cannot (the pop feedback register eats a slot).
        let inputs = data(1_000);
        let n = 16;
        let full = simulate_skid_with(n, n + 1, GatePolicy::Credit, &inputs, |_| true, MAX);
        let throttled = simulate_skid_with(n, n, GatePolicy::Credit, &inputs, |_| true, MAX);
        assert!(full.cycles <= 1_000 + n as u64 + 4, "{}", full.cycles);
        assert!(
            throttled.cycles > full.cycles + 30,
            "depth N should throttle: {} vs {}",
            throttled.cycles,
            full.cycles
        );
    }

    #[test]
    fn same_outputs_under_random_backpressure() {
        let inputs = data(200);
        let mut rng = Rng::seed_from_u64(7);
        let pattern: Vec<bool> = (0..8192).map(|_| rng.gen_bool(0.6)).collect();
        let n = 9;
        let stall = simulate_stall(n, 2, &inputs, |c| pattern[c as usize % pattern.len()], MAX);
        for policy in [GatePolicy::RegisteredEmpty, GatePolicy::Credit] {
            let skid = simulate_skid_with(
                n,
                required_depth(n),
                policy,
                &inputs,
                |c| pattern[c as usize % pattern.len()],
                MAX,
            );
            assert_eq!(stall.outputs, skid.outputs, "{policy:?}");
            assert!(!skid.overflow);
        }
    }

    #[test]
    fn credit_throughput_matches_stall() {
        // "this approach has the exact same throughput as the original
        // stall-based back-pressure control" — completion times must agree
        // up to a pipeline-drain constant under the credit realization.
        let inputs = data(2_000);
        let mut rng = Rng::seed_from_u64(42);
        let pattern: Vec<bool> = (0..1 << 14).map(|_| rng.gen_bool(0.5)).collect();
        let n = 20;
        let stall = simulate_stall(n, 2, &inputs, |c| pattern[c as usize % pattern.len()], MAX);
        let skid = simulate_skid(
            n,
            required_depth(n),
            &inputs,
            |c| pattern[c as usize % pattern.len()],
            MAX,
        );
        let diff = stall.cycles.abs_diff(skid.cycles);
        assert!(
            diff <= 2 * n as u64 + 8,
            "stall {} vs skid {} cycles",
            stall.cycles,
            skid.cycles
        );
    }

    #[test]
    fn empty_policy_starves_after_bursts() {
        // Documents why the literal empty-gating cannot deliver equal
        // throughput under intermittent back-pressure: each short burst
        // injects a bubble train of up to N cycles.
        let inputs = data(2_000);
        let n = 20;
        let pattern = |c: u64| !c.is_multiple_of(4); // 25% stall, in short bursts
        let stall = simulate_stall(n, 2, &inputs, pattern, MAX);
        let skid = simulate_skid_with(
            n,
            required_depth(n),
            GatePolicy::RegisteredEmpty,
            &inputs,
            pattern,
            MAX,
        );
        assert!(
            skid.cycles > stall.cycles + 200,
            "expected starvation: {} vs {}",
            skid.cycles,
            stall.cycles
        );
    }

    #[test]
    fn single_stage_pipeline_works() {
        let inputs = data(10);
        let skid = simulate_skid(1, required_depth(1), &inputs, |c| c % 2 == 0, MAX);
        assert_eq!(skid.outputs, inputs);
        assert!(!skid.overflow);
    }

    #[test]
    fn skid_never_overflows_and_preserves_stream() {
        let mut rng = Rng::seed_from_u64(0x5C1D_0001);
        for case in 0..64 {
            let n = rng.gen_index(31) + 1;
            let len = rng.gen_index(149) + 1;
            let p = 0.05 + rng.gen_f64() * 0.95;
            let use_credit = rng.gen_bool(0.5);
            let inputs = data(len);
            let pattern: Vec<bool> = (0..1 << 13).map(|_| rng.gen_bool(p)).collect();
            let policy = if use_credit {
                GatePolicy::Credit
            } else {
                GatePolicy::RegisteredEmpty
            };
            let skid = simulate_skid_with(
                n,
                required_depth(n),
                policy,
                &inputs,
                |c| pattern[c as usize % pattern.len()],
                MAX,
            );
            assert!(!skid.overflow, "case {case}: n={n} len={len} p={p:.2}");
            assert_eq!(skid.outputs, inputs, "case {case}: n={n} len={len}");
            assert!(skid.peak_occupancy <= required_depth(n));
        }
    }

    #[test]
    fn stall_and_credit_skid_agree() {
        let mut rng = Rng::seed_from_u64(0x5C1D_0002);
        for case in 0..64 {
            let n = rng.gen_index(23) + 1;
            let len = rng.gen_index(119) + 1;
            let inputs = data(len);
            let pattern: Vec<bool> = (0..1 << 13).map(|_| rng.gen_bool(0.5)).collect();
            let stall = simulate_stall(n, 2, &inputs, |c| pattern[c as usize % pattern.len()], MAX);
            let skid = simulate_skid(
                n,
                required_depth(n),
                &inputs,
                |c| pattern[c as usize % pattern.len()],
                MAX,
            );
            assert_eq!(stall.outputs, skid.outputs, "case {case}: n={n} len={len}");
            // Long-run throughput equivalence.
            assert!(stall.cycles.abs_diff(skid.cycles) <= 2 * n as u64 + 8);
        }
    }
}
