//! The persistent run ledger: one append-only [`RunRecord`] per
//! top-level run, durable across processes.
//!
//! Where the artifact store ([`hlsb_store::ArtifactStore`]) persists
//! *results* keyed by configuration, the ledger persists *history*: every
//! flow evaluation, serve wave, DSE campaign and explorer search appends
//! one flat JSONL line with its wall time per stage, cache-hit split and
//! counter digest. The file is the raw material for the regression
//! sentinel ([`crate::sentinel`]) — medians over the most recent window
//! of records, compared against a committed baseline.
//!
//! Durability reuses the [`JsonlTable`] discipline (append + flush per
//! record, partial-trailing-line tolerance, heal-before-append) and the
//! store's advisory file lock for the multi-process case: several
//! `hlsb-serve` or DSE invocations may share one ledger file. Unlike the
//! artifact store, the ledger is a *log*, not a map — every record gets
//! a unique key so nothing ever dedups away.

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use hlsb_store::json::{json_escape, raw_field, string_field};
use hlsb_store::{JsonlRecord, JsonlTable, StoreLock};

/// One top-level run: a flow evaluation, a serve wave, a DSE campaign or
/// an explorer search.
#[derive(Debug, Clone, PartialEq)]
pub struct RunRecord {
    /// Unique record key (assigned by [`RunLedger::append`]; the ledger
    /// is a log, so keys never collide and nothing dedups away).
    pub key: u64,
    /// Which tool produced the run: `flow`, `serve-wave`, `dse` or
    /// `explore`.
    pub tool: String,
    /// Design name (or a tool-specific scope label such as `wave-3`).
    pub design: String,
    /// `Flow::config_key` when the run is one configuration, else 0.
    pub config_key: u64,
    /// Terminal status: `ok`, `rejected` or `failed`.
    pub status: String,
    /// Wall-clock time of the whole run, milliseconds.
    pub wall_ms: f64,
    /// Per-stage wall times, milliseconds, in execution order.
    pub stages: Vec<(String, f64)>,
    /// Run counters (cache-hit splits, evaluation counts), sorted by
    /// name before encoding.
    pub counters: Vec<(String, u64)>,
    /// FNV digest over the counters — a cheap equality check across
    /// runs without decoding the counter map.
    pub digest: u64,
}

impl RunRecord {
    /// A record with no stages or counters yet; key and digest are
    /// assigned by [`RunLedger::append`].
    pub fn new(tool: &str, design: &str, config_key: u64, status: &str, wall_ms: f64) -> Self {
        RunRecord {
            key: 0,
            tool: tool.to_string(),
            design: design.to_string(),
            config_key,
            status: status.to_string(),
            wall_ms,
            stages: Vec::new(),
            counters: Vec::new(),
            digest: 0,
        }
    }

    /// Adds `ms` to the named stage (appending it if new). Stage and
    /// counter names must not contain `,`, `;`, `=` or `"` — true of
    /// every pass and metric name in this workspace — because records
    /// encode the maps as `name=value;...` inside one flat JSON string.
    pub fn add_stage(&mut self, name: &str, ms: f64) {
        match self.stages.iter_mut().find(|(n, _)| n == name) {
            Some((_, v)) => *v += ms,
            None => self.stages.push((name.to_string(), ms)),
        }
    }

    /// Adds `delta` to the named counter. Counters are kept
    /// name-sorted — the canonical order the codec writes — so a record
    /// equals its own round trip.
    pub fn add_count(&mut self, name: &str, delta: u64) {
        match self.counters.iter_mut().find(|(n, _)| n == name) {
            Some((_, v)) => *v += delta,
            None => {
                let at = self.counters.partition_point(|(n, _)| n.as_str() < name);
                self.counters.insert(at, (name.to_string(), delta));
            }
        }
    }

    /// The named stage's wall time, if recorded.
    pub fn stage_ms(&self, name: &str) -> Option<f64> {
        self.stages.iter().find(|(n, _)| n == name).map(|(_, v)| *v)
    }

    /// The named counter's value (0 if never recorded).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters
            .iter()
            .find(|(n, _)| n == name)
            .map_or(0, |(_, v)| *v)
    }

    /// The FNV-1a digest of the (sorted) counters.
    pub fn compute_digest(&self) -> u64 {
        let mut sorted: Vec<&(String, u64)> = self.counters.iter().collect();
        sorted.sort();
        let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
        let mut eat = |bytes: &[u8]| {
            for b in bytes {
                hash ^= u64::from(*b);
                hash = hash.wrapping_mul(0x100_0000_01b3);
            }
        };
        for (name, v) in sorted {
            eat(name.as_bytes());
            eat(&v.to_le_bytes());
        }
        hash
    }

    fn encode_stages(&self) -> String {
        self.stages
            .iter()
            .map(|(n, v)| format!("{n}={v:?}"))
            .collect::<Vec<_>>()
            .join(";")
    }

    fn encode_counters(&self) -> String {
        let mut sorted: Vec<&(String, u64)> = self.counters.iter().collect();
        sorted.sort();
        sorted
            .iter()
            .map(|(n, v)| format!("{n}={v}"))
            .collect::<Vec<_>>()
            .join(";")
    }
}

fn decode_stages(s: &str) -> Option<Vec<(String, f64)>> {
    if s.is_empty() {
        return Some(Vec::new());
    }
    s.split(';')
        .map(|tok| {
            let (n, v) = tok.split_once('=')?;
            Some((n.to_string(), v.parse().ok()?))
        })
        .collect()
}

fn decode_counters(s: &str) -> Option<Vec<(String, u64)>> {
    if s.is_empty() {
        return Some(Vec::new());
    }
    s.split(';')
        .map(|tok| {
            let (n, v) = tok.split_once('=')?;
            Some((n.to_string(), v.parse().ok()?))
        })
        .collect()
}

impl JsonlRecord for RunRecord {
    fn key(&self) -> u64 {
        self.key
    }

    fn to_json(&self) -> String {
        format!(
            "{{\"key\":{},\"tool\":\"{}\",\"design\":\"{}\",\"config_key\":{},\
             \"status\":\"{}\",\"wall_ms\":{:?},\"stages\":\"{}\",\
             \"counters\":\"{}\",\"digest\":{}}}",
            self.key,
            json_escape(&self.tool),
            json_escape(&self.design),
            self.config_key,
            json_escape(&self.status),
            self.wall_ms,
            self.encode_stages(),
            self.encode_counters(),
            self.digest,
        )
    }

    fn from_json(line: &str) -> Option<RunRecord> {
        let line = line.trim();
        if !(line.starts_with('{') && line.ends_with('}')) {
            return None;
        }
        Some(RunRecord {
            key: raw_field(line, "key")?.parse().ok()?,
            tool: string_field(line, "tool")?,
            design: string_field(line, "design")?,
            config_key: raw_field(line, "config_key")?.parse().ok()?,
            status: string_field(line, "status")?,
            wall_ms: raw_field(line, "wall_ms")?.parse().ok()?,
            stages: decode_stages(&string_field(line, "stages")?)?,
            counters: decode_counters(&string_field(line, "counters")?)?,
            digest: raw_field(line, "digest")?.parse().ok()?,
        })
    }
}

/// The append-only run ledger: a [`JsonlTable`] of [`RunRecord`]s plus a
/// sibling advisory lock file, shared through `Arc` and safe to append
/// from session worker threads and concurrent processes alike.
#[derive(Debug)]
pub struct RunLedger {
    table: Mutex<JsonlTable<RunRecord>>,
    lock_path: Option<PathBuf>,
    /// Per-process key salt: process id and open-time nanoseconds keep
    /// concurrent writers apart; the sequence keeps one process's
    /// records apart.
    salt: u64,
    seq: AtomicU64,
}

impl RunLedger {
    /// Opens (or creates) a file-backed ledger. A sibling `<file>.lock`
    /// advisory lock serializes concurrent-process appends.
    ///
    /// # Errors
    ///
    /// I/O errors opening or reading the file.
    pub fn open(path: impl AsRef<Path>) -> std::io::Result<RunLedger> {
        let path = path.as_ref();
        let mut lock_name = path.file_name().unwrap_or_default().to_os_string();
        lock_name.push(".lock");
        let lock_path = path.with_file_name(lock_name);
        Ok(RunLedger {
            table: Mutex::new(JsonlTable::open(path)?),
            lock_path: Some(lock_path),
            salt: Self::process_salt(),
            seq: AtomicU64::new(0),
        })
    }

    /// An unbacked ledger (tests, or telemetry disabled but observed).
    pub fn in_memory() -> RunLedger {
        RunLedger {
            table: Mutex::new(JsonlTable::in_memory()),
            lock_path: None,
            salt: Self::process_salt(),
            seq: AtomicU64::new(0),
        }
    }

    fn process_salt() -> u64 {
        // Distinct per process (pid + open time) and per handle within
        // one process (monotone open counter), so two ledgers over one
        // file never mint colliding keys.
        static OPENS: AtomicU64 = AtomicU64::new(0);
        let nanos = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map_or(0, |d| d.subsec_nanos() as u64 ^ d.as_secs());
        hlsb_store::combine(&[
            u64::from(std::process::id()),
            nanos,
            OPENS.fetch_add(1, Ordering::Relaxed),
        ])
    }

    /// Appends one record, assigning it a unique key and its counter
    /// digest. The append takes the cross-process lock, heals the tail
    /// and flushes — a kill loses at most this one line.
    ///
    /// # Errors
    ///
    /// I/O errors locking or appending.
    pub fn append(&self, mut rec: RunRecord) -> std::io::Result<()> {
        if rec.key == 0 {
            let seq = self.seq.fetch_add(1, Ordering::Relaxed);
            rec.key = hlsb_store::combine(&[self.salt, seq, rec.config_key]);
        }
        rec.digest = rec.compute_digest();
        let _lock = match &self.lock_path {
            Some(p) => Some(StoreLock::acquire(p)?),
            None => None,
        };
        self.table.lock().unwrap().insert(rec)
    }

    /// All records in file order, merging in anything other processes
    /// appended since the last read.
    pub fn records(&self) -> Vec<RunRecord> {
        let mut table = self.table.lock().unwrap();
        let _ = table.reload();
        table.records().cloned().collect()
    }

    /// Number of records in the ledger.
    pub fn len(&self) -> usize {
        self.records().len()
    }

    /// Whether the ledger holds no records.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Reads every record from a ledger file without holding it open.
    ///
    /// # Errors
    ///
    /// I/O errors opening or reading the file.
    pub fn load(path: impl AsRef<Path>) -> std::io::Result<Vec<RunRecord>> {
        let table: JsonlTable<RunRecord> = JsonlTable::open(path)?;
        Ok(table.records().cloned().collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(tool: &str, design: &str) -> RunRecord {
        let mut rec = RunRecord::new(tool, design, 0xBEEF, "ok", 12.5);
        rec.add_stage("front-end", 1.25);
        rec.add_stage("implement", 9.75);
        rec.add_stage("front-end", 0.25); // accumulates
        rec.add_count("executions", 2);
        rec.add_count("cache-hits", 1);
        rec
    }

    fn scratch(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join("hlsb_telemetry_ledger_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(format!("{name}_{}.jsonl", std::process::id()));
        let _ = std::fs::remove_file(&path);
        path
    }

    #[test]
    fn record_round_trip_is_exact() {
        let mut rec = record("flow", "lstm_gate");
        rec.key = 42;
        rec.digest = rec.compute_digest();
        let line = rec.to_json();
        let back = RunRecord::from_json(&line).expect("parses");
        assert_eq!(back, rec, "round trip must be exact:\n{line}");
        assert_eq!(back.stage_ms("front-end"), Some(1.5));
        assert_eq!(back.counter("executions"), 2);
        assert_eq!(back.counter("missing"), 0);
        // Truncations never half-parse.
        for cut in (0..line.len()).filter(|&c| line.is_char_boundary(c)) {
            assert!(RunRecord::from_json(&line[..cut]).is_none());
        }
    }

    #[test]
    fn empty_maps_round_trip() {
        let mut rec = RunRecord::new("serve-wave", "wave-0", 0, "ok", 3.0);
        rec.key = 7;
        let back = RunRecord::from_json(&rec.to_json()).expect("parses");
        assert!(back.stages.is_empty());
        assert!(back.counters.is_empty());
    }

    #[test]
    fn digest_tracks_counters_not_times() {
        let a = record("flow", "d");
        let mut b = record("flow", "d");
        b.stages.clear();
        assert_eq!(a.compute_digest(), b.compute_digest(), "times don't digest");
        b.add_count("executions", 1);
        assert_ne!(a.compute_digest(), b.compute_digest());
        // Order-insensitive: the digest sorts.
        let mut c = RunRecord::new("flow", "d", 0, "ok", 0.0);
        c.add_count("cache-hits", 1);
        c.add_count("executions", 2);
        assert_eq!(a.compute_digest(), c.compute_digest());
    }

    #[test]
    fn ledger_appends_never_dedup_and_survive_reopen() {
        let path = scratch("appends");
        let ledger = RunLedger::open(&path).unwrap();
        for _ in 0..3 {
            ledger.append(record("flow", "same-design")).unwrap();
        }
        assert_eq!(ledger.len(), 3, "identical records never collapse");

        // A second handle (another process, in spirit) sees all three
        // and appends a fourth.
        let other = RunLedger::open(&path).unwrap();
        assert_eq!(other.len(), 3);
        other.append(record("serve-wave", "wave-0")).unwrap();
        assert_eq!(ledger.len(), 4, "reload picks up the other writer");

        // Reopening loads everything back, in order.
        drop((ledger, other));
        let records = RunLedger::load(&path).unwrap();
        assert_eq!(records.len(), 4);
        assert!(records[..3].iter().all(|r| r.tool == "flow"));
        assert_eq!(records[3].tool, "serve-wave");
        assert!(records.iter().all(|r| r.digest == r.compute_digest()));
        std::fs::remove_file(&path).unwrap();
        let _ = std::fs::remove_file(path.with_file_name(format!(
            "{}.lock",
            path.file_name().unwrap().to_string_lossy()
        )));
    }

    #[test]
    fn partial_trailing_line_is_skipped() {
        use std::io::Write;
        let path = scratch("partial");
        let ledger = RunLedger::open(&path).unwrap();
        ledger.append(record("flow", "a")).unwrap();
        drop(ledger);
        {
            let mut f = std::fs::OpenOptions::new()
                .append(true)
                .open(&path)
                .unwrap();
            write!(f, "{{\"key\":9,\"tool\":\"fl").unwrap();
        }
        let resumed = RunLedger::open(&path).unwrap();
        assert_eq!(resumed.len(), 1, "half-written line skipped");
        // The next append heals the tail first.
        resumed.append(record("flow", "b")).unwrap();
        assert_eq!(RunLedger::load(&path).unwrap().len(), 2);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn concurrent_appends_from_threads_all_land() {
        let path = scratch("threads");
        let ledger = std::sync::Arc::new(RunLedger::open(&path).unwrap());
        std::thread::scope(|s| {
            for t in 0..4 {
                let ledger = ledger.clone();
                s.spawn(move || {
                    for i in 0..8 {
                        ledger.append(record("flow", &format!("t{t}-{i}"))).unwrap();
                    }
                });
            }
        });
        assert_eq!(ledger.len(), 32, "every append from every thread lands");
        let keys: std::collections::HashSet<u64> = ledger.records().iter().map(|r| r.key).collect();
        assert_eq!(keys.len(), 32, "keys are unique");
        std::fs::remove_file(&path).unwrap();
    }
}
