//! Persistent farm telemetry for the hlsb workspace.
//!
//! Every other observability layer in this workspace dies with its
//! process: `serve.*` metrics live in a [`MetricsRegistry`]
//! snapshot, span trees are one `--trace-out` file, and nothing compares
//! a run against history. This crate is the durable layer on top:
//!
//! * [`ledger`] — the append-only **run ledger**: one flat JSONL
//!   [`RunRecord`] per top-level run (flow evaluation, serve wave, DSE
//!   campaign, explorer search) with per-stage wall times, cache-hit
//!   splits and a counter digest, built on the store's
//!   [`JsonlTable`](hlsb_store::JsonlTable) durability discipline and
//!   advisory lock so concurrent processes can share one file.
//! * [`prometheus`] — **Prometheus text exposition** of any
//!   [`MetricsRegistry`] (counters → `_total`, histograms → cumulative
//!   `_bucket`/`_sum`/`_count`), plus a dependency-free TCP scrape
//!   endpoint ([`MetricsServer`]) for live wave metrics.
//! * [`profile`] — **self-time profiles** over
//!   [`TraceTree`](hlsb_trace::TraceTree) span trees: per-path
//!   self/total wall-time tables and collapsed-stack (flamegraph)
//!   output.
//! * [`sentinel`] — the **noise-aware regression sentinel**: median-of-N
//!   stage latencies and counter hit rates from the ledger, checked
//!   against a committed [`Baseline`] with relative thresholds, for CI
//!   gating.
//!
//! The crate deliberately depends only on `hlsb-store` and `hlsb-trace`,
//! so `hlsb` (core), `hlsb-serve` and the bench harness can all layer it
//! in without cycles.
//!
//! [`MetricsRegistry`]: hlsb_trace::MetricsRegistry

pub mod ledger;
pub mod profile;
pub mod prometheus;
pub mod sentinel;

pub use ledger::{RunLedger, RunRecord};
pub use profile::{collapsed_stacks, render_table, self_time, ProfileRow};
pub use prometheus::{render_prometheus, scrape, MetricsServer, CONTENT_TYPE};
pub use sentinel::{check, Baseline, CheckOutcome, RateRule, SentinelReport, StageRule};
