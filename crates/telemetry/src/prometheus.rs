//! Prometheus text-format (exposition format v0.0.4) rendering of a
//! [`MetricsRegistry`], plus a dependency-free TCP scrape endpoint.
//!
//! Counters become `<name>_total` gauges-of-truth; histograms become the
//! canonical cumulative `_bucket{le="..."}` series with `+Inf`, `_sum`
//! and `_count`. Metric names are sanitized (`serve.wave-ms` →
//! `hlsb_serve_wave_ms`) and label values escaped per the spec
//! (backslash, double quote, newline). Rendering iterates the
//! registry's BTreeMaps, so output is deterministic for a given
//! snapshot — the golden-text tests rely on that.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use hlsb_trace::MetricsRegistry;

/// The Content-Type a Prometheus scraper expects.
pub const CONTENT_TYPE: &str = "text/plain; version=0.0.4; charset=utf-8";

/// Sanitizes a registry metric name into a Prometheus metric name:
/// every character outside `[a-zA-Z0-9_:]` becomes `_`, and the
/// workspace prefix `hlsb_` is prepended (`serve.wave-ms` →
/// `hlsb_serve_wave_ms`).
pub fn metric_name(name: &str) -> String {
    let mut out = String::with_capacity(name.len() + 5);
    out.push_str("hlsb_");
    for c in name.chars() {
        if c.is_ascii_alphanumeric() || c == '_' || c == ':' {
            out.push(c);
        } else {
            out.push('_');
        }
    }
    out
}

/// Escapes a label value per the exposition format: backslash, double
/// quote and newline.
pub fn escape_label_value(value: &str) -> String {
    let mut out = String::with_capacity(value.len());
    for c in value.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            other => out.push(other),
        }
    }
    out
}

/// Formats a float the way Prometheus expects: integral values without
/// a fraction (`le="10"`), everything else in Rust's shortest
/// round-trip notation.
fn fmt_num(v: f64) -> String {
    if !v.is_finite() {
        return if v.is_nan() {
            "NaN".to_string()
        } else if v > 0.0 {
            "+Inf".to_string()
        } else {
            "-Inf".to_string()
        };
    }
    if v == v.trunc() && v.abs() < 1e15 {
        format!("{}", v as i64)
    } else {
        format!("{v:?}")
    }
}

fn label_block(labels: &[(&str, &str)], extra: Option<(&str, &str)>) -> String {
    let mut parts: Vec<String> = labels
        .iter()
        .map(|(k, v)| format!("{k}=\"{}\"", escape_label_value(v)))
        .collect();
    if let Some((k, v)) = extra {
        parts.push(format!("{k}=\"{}\"", escape_label_value(v)));
    }
    if parts.is_empty() {
        String::new()
    } else {
        format!("{{{}}}", parts.join(","))
    }
}

/// Renders the registry in the Prometheus text exposition format.
/// `labels` are attached to every sample (e.g. `[("tool", "serve")]`).
pub fn render_prometheus(metrics: &MetricsRegistry, labels: &[(&str, &str)]) -> String {
    let mut out = String::new();
    for (name, value) in &metrics.counters {
        let pname = format!("{}_total", metric_name(name));
        out.push_str(&format!("# TYPE {pname} counter\n"));
        out.push_str(&format!("{pname}{} {value}\n", label_block(labels, None)));
    }
    for (name, h) in &metrics.histograms {
        let pname = metric_name(name);
        out.push_str(&format!("# TYPE {pname} histogram\n"));
        let mut cumulative = 0u64;
        for (i, count) in h.counts.iter().enumerate() {
            cumulative += count;
            let le = match h.bounds.get(i) {
                Some(b) => fmt_num(*b),
                None => "+Inf".to_string(),
            };
            out.push_str(&format!(
                "{pname}_bucket{} {cumulative}\n",
                label_block(labels, Some(("le", &le)))
            ));
        }
        out.push_str(&format!(
            "{pname}_sum{} {}\n",
            label_block(labels, None),
            fmt_num(h.sum)
        ));
        out.push_str(&format!(
            "{pname}_count{} {}\n",
            label_block(labels, None),
            h.total
        ));
    }
    out
}

/// A minimal std-only scrape endpoint: answers every HTTP GET on the
/// bound address with a fresh snapshot from the `render` closure.
/// Bind to port 0 for an ephemeral port; [`addr`](MetricsServer::addr)
/// reports what was bound. The listener thread stops when the server is
/// shut down (or dropped).
pub struct MetricsServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    handle: Option<JoinHandle<()>>,
}

impl MetricsServer {
    /// Binds `addr` (e.g. `127.0.0.1:9184`) and serves snapshots from
    /// `render` on a background thread.
    ///
    /// # Errors
    ///
    /// I/O errors binding the listener.
    pub fn start(
        addr: impl ToSocketAddrs,
        render: impl Fn() -> String + Send + Sync + 'static,
    ) -> std::io::Result<MetricsServer> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let stop_flag = stop.clone();
        let handle = std::thread::spawn(move || {
            for conn in listener.incoming() {
                if stop_flag.load(Ordering::SeqCst) {
                    break;
                }
                if let Ok(stream) = conn {
                    let _ = answer(stream, &render);
                }
            }
        });
        Ok(MetricsServer {
            addr,
            stop,
            handle: Some(handle),
        })
    }

    /// The bound address (resolves port 0 to the actual port).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops the listener thread and joins it.
    pub fn shutdown(mut self) {
        self.stop_and_join();
    }

    fn stop_and_join(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        // Unblock the accept loop with one throwaway connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for MetricsServer {
    fn drop(&mut self) {
        if self.handle.is_some() {
            self.stop_and_join();
        }
    }
}

/// Reads the request head (best effort, bounded) and writes one
/// `200 OK` text response with the current snapshot.
fn answer(mut stream: TcpStream, render: &impl Fn() -> String) -> std::io::Result<()> {
    let _ = stream.set_read_timeout(Some(Duration::from_millis(500)));
    let mut head = [0u8; 1024];
    let mut seen = 0usize;
    // Read until the blank line ending the request head (or the buffer
    // fills / times out — any GET is answered the same way).
    while seen < head.len() {
        match stream.read(&mut head[seen..]) {
            Ok(0) => break,
            Ok(n) => {
                seen += n;
                if head[..seen].windows(4).any(|w| w == b"\r\n\r\n") {
                    break;
                }
            }
            Err(_) => break,
        }
    }
    let body = render();
    let response = format!(
        "HTTP/1.1 200 OK\r\nContent-Type: {CONTENT_TYPE}\r\n\
         Content-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    );
    stream.write_all(response.as_bytes())?;
    stream.flush()
}

/// Scrapes `addr` once over plain TCP and returns the response body
/// (used by tests and the serve CLI's self-check; a real deployment
/// points Prometheus at the endpoint instead).
///
/// # Errors
///
/// Connection or read errors, or a malformed HTTP response.
pub fn scrape(addr: impl ToSocketAddrs) -> std::io::Result<String> {
    let mut stream = TcpStream::connect(addr)?;
    stream.write_all(b"GET /metrics HTTP/1.1\r\nHost: hlsb\r\nConnection: close\r\n\r\n")?;
    let mut response = String::new();
    stream.read_to_string(&mut response)?;
    match response.split_once("\r\n\r\n") {
        Some((_, body)) => Ok(body.to_string()),
        None => Err(std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            "no HTTP header/body separator in scrape response",
        )),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn registry() -> MetricsRegistry {
        let mut m = MetricsRegistry::default();
        m.count("serve.jobs", 7);
        m.count("serve.store-hits", 3);
        m.observe("serve.wave-ms", &[1.0, 10.0, 100.0], 0.5);
        m.observe("serve.wave-ms", &[1.0, 10.0, 100.0], 42.0);
        m.observe("serve.wave-ms", &[1.0, 10.0, 100.0], 950.0);
        m
    }

    #[test]
    fn golden_text_round_trip() {
        let text = render_prometheus(&registry(), &[]);
        let expected = "\
# TYPE hlsb_serve_jobs_total counter
hlsb_serve_jobs_total 7
# TYPE hlsb_serve_store_hits_total counter
hlsb_serve_store_hits_total 3
# TYPE hlsb_serve_wave_ms histogram
hlsb_serve_wave_ms_bucket{le=\"1\"} 1
hlsb_serve_wave_ms_bucket{le=\"10\"} 1
hlsb_serve_wave_ms_bucket{le=\"100\"} 2
hlsb_serve_wave_ms_bucket{le=\"+Inf\"} 3
hlsb_serve_wave_ms_sum 992.5
hlsb_serve_wave_ms_count 3
";
        assert_eq!(text, expected);
    }

    #[test]
    fn labels_attach_to_every_sample_and_escape() {
        let mut m = MetricsRegistry::default();
        m.count("c", 1);
        m.observe("h", &[1.0], 2.0);
        let nasty = "a\\b \"q\"\nnl";
        let text = render_prometheus(&m, &[("design", nasty)]);
        let escaped = "a\\\\b \\\"q\\\"\\nnl";
        assert!(text.contains(&format!("hlsb_c_total{{design=\"{escaped}\"}} 1")));
        assert!(text.contains(&format!("hlsb_h_bucket{{design=\"{escaped}\",le=\"1\"}} 0")));
        assert!(text.contains(&format!(
            "hlsb_h_bucket{{design=\"{escaped}\",le=\"+Inf\"}} 1"
        )));
        assert!(text.contains(&format!("hlsb_h_sum{{design=\"{escaped}\"}} 2")));
        assert!(text.contains(&format!("hlsb_h_count{{design=\"{escaped}\"}} 1")));
    }

    #[test]
    fn buckets_are_cumulative_and_end_at_inf_with_count() {
        let text = render_prometheus(&registry(), &[]);
        let mut last = 0u64;
        let mut inf = None;
        for line in text.lines() {
            if let Some(rest) = line.strip_prefix("hlsb_serve_wave_ms_bucket") {
                let v: u64 = rest.split_whitespace().last().unwrap().parse().unwrap();
                assert!(v >= last, "buckets must be cumulative: {line}");
                last = v;
                if rest.contains("+Inf") {
                    inf = Some(v);
                }
            }
        }
        assert_eq!(inf, Some(3), "+Inf bucket equals the observation count");
        assert!(text.contains("hlsb_serve_wave_ms_count 3"));
    }

    #[test]
    fn fractional_bounds_keep_their_fraction() {
        let mut m = MetricsRegistry::default();
        m.observe("u", &[0.25, 0.5], 0.3);
        let text = render_prometheus(&m, &[]);
        assert!(text.contains("hlsb_u_bucket{le=\"0.25\"} 0"));
        assert!(text.contains("hlsb_u_bucket{le=\"0.5\"} 1"));
    }

    #[test]
    fn endpoint_serves_live_snapshots() {
        use std::sync::Mutex;
        let shared = Arc::new(Mutex::new(MetricsRegistry::default()));
        let handle = shared.clone();
        let server = MetricsServer::start("127.0.0.1:0", move || {
            render_prometheus(&handle.lock().unwrap(), &[])
        })
        .expect("bind ephemeral port");
        let addr = server.addr();

        shared.lock().unwrap().count("live", 1);
        let body = scrape(addr).expect("first scrape");
        assert!(body.contains("hlsb_live_total 1"), "{body}");

        // The endpoint snapshots at scrape time, not at start time.
        shared.lock().unwrap().count("live", 4);
        let body = scrape(addr).expect("second scrape");
        assert!(body.contains("hlsb_live_total 5"), "{body}");
        server.shutdown();
    }
}
