//! Self-time profiling over [`TraceTree`] span trees.
//!
//! A span's *total* time is its own duration; its *self* time is that
//! duration minus the duration of its children — the time genuinely
//! spent at that level rather than delegated. Aggregating by span path
//! (`flow/implement/trial-0`) across one or many trees turns raw traces
//! into the classic profiler questions: where does the wall clock go,
//! and which stage actually burns it.
//!
//! Two renderings: a sorted self-time table, and the collapsed-stack
//! format (`path;sub;sub value`) that flamegraph tooling ingests
//! directly.

use std::collections::BTreeMap;

use hlsb_trace::TraceTree;

/// Aggregated timing for one span path.
#[derive(Debug, Clone, PartialEq)]
pub struct ProfileRow {
    /// Slash-joined span path from the root (e.g. `flow/implement`).
    pub path: String,
    /// Number of spans aggregated into this row.
    pub count: u64,
    /// Total wall time of those spans, milliseconds.
    pub total_ms: f64,
    /// Self wall time (total minus child time, clamped at 0),
    /// milliseconds.
    pub self_ms: f64,
}

/// Aggregates one or more span trees by span path. Rows are sorted by
/// descending self time (ties broken by path, so output is stable).
pub fn self_time(trees: &[&TraceTree]) -> Vec<ProfileRow> {
    let mut by_path: BTreeMap<String, ProfileRow> = BTreeMap::new();
    for tree in trees {
        for span in &tree.spans {
            let child_us: f64 = tree.children(span.id).map(|c| c.dur_us).sum();
            let self_us = (span.dur_us - child_us).max(0.0);
            let path = tree.path(span.id);
            let row = by_path.entry(path.clone()).or_insert(ProfileRow {
                path,
                count: 0,
                total_ms: 0.0,
                self_ms: 0.0,
            });
            row.count += 1;
            row.total_ms += span.dur_us / 1000.0;
            row.self_ms += self_us / 1000.0;
        }
    }
    let mut rows: Vec<ProfileRow> = by_path.into_values().collect();
    rows.sort_by(|a, b| {
        b.self_ms
            .total_cmp(&a.self_ms)
            .then_with(|| a.path.cmp(&b.path))
    });
    rows
}

/// Renders profile rows as an aligned table (self-time descending, with
/// a totals line).
pub fn render_table(rows: &[ProfileRow]) -> String {
    let width = rows
        .iter()
        .map(|r| r.path.len())
        .max()
        .unwrap_or(4)
        .max("path".len());
    let mut out = format!(
        "{:<width$} {:>7} {:>12} {:>12} {:>6}\n",
        "path", "count", "self (ms)", "total (ms)", "self%"
    );
    let self_sum: f64 = rows.iter().map(|r| r.self_ms).sum();
    for r in rows {
        let pct = if self_sum > 0.0 {
            100.0 * r.self_ms / self_sum
        } else {
            0.0
        };
        out.push_str(&format!(
            "{:<width$} {:>7} {:>12.3} {:>12.3} {:>5.1}%\n",
            r.path, r.count, r.self_ms, r.total_ms, pct
        ));
    }
    out.push_str(&format!(
        "{:<width$} {:>7} {:>12.3}\n",
        "total",
        rows.iter().map(|r| r.count).sum::<u64>(),
        self_sum
    ));
    out
}

/// Renders the aggregate as collapsed stacks — one `path;sub;sub value`
/// line per path with non-zero self time, value in integer microseconds
/// — the input format of flamegraph generators. Lines are path-sorted
/// (deterministic), and the path separator is `;` as the format
/// requires.
pub fn collapsed_stacks(trees: &[&TraceTree]) -> String {
    let mut rows = self_time(trees);
    rows.sort_by(|a, b| a.path.cmp(&b.path));
    let mut out = String::new();
    for r in &rows {
        let us = (r.self_ms * 1000.0).round() as u64;
        if us == 0 {
            continue;
        }
        out.push_str(&format!("{} {us}\n", r.path.replace('/', ";")));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use hlsb_trace::Tracer;

    /// A tree with known nesting: root(flow) -> implement -> trial-0/1.
    fn tree() -> TraceTree {
        let tracer = Tracer::enabled();
        let root = tracer.root("flow");
        {
            let imp = root.child("implement");
            {
                let t0 = imp.child("trial-0");
                t0.set_window(0.0, 400.0);
            }
            {
                let t1 = imp.child("trial-1");
                t1.set_window(400.0, 500.0);
            }
            imp.set_window(0.0, 1000.0);
        }
        root.set_window(0.0, 1200.0);
        root.finish();
        tracer.take_tree()
    }

    #[test]
    fn self_time_subtracts_children_and_clamps() {
        let t = tree();
        let rows = self_time(&[&t]);
        let by_path = |p: &str| rows.iter().find(|r| r.path == p).unwrap();
        // flow: 1200 total, 1000 in implement -> 200us self.
        assert!((by_path("flow").self_ms - 0.2).abs() < 1e-9);
        assert!((by_path("flow").total_ms - 1.2).abs() < 1e-9);
        // implement: 1000 total, 900 in trials -> 100us self.
        assert!((by_path("flow/implement").self_ms - 0.1).abs() < 1e-9);
        // Leaves: self == total.
        assert!((by_path("flow/implement/trial-0").self_ms - 0.4).abs() < 1e-9);
        assert!((by_path("flow/implement/trial-1").self_ms - 0.5).abs() < 1e-9);
        // Sorted by self time descending.
        assert_eq!(rows[0].path, "flow/implement/trial-1");
    }

    #[test]
    fn aggregation_spans_multiple_trees() {
        let a = tree();
        let b = tree();
        let rows = self_time(&[&a, &b]);
        let imp = rows.iter().find(|r| r.path == "flow/implement").unwrap();
        assert_eq!(imp.count, 2);
        assert!((imp.total_ms - 2.0).abs() < 1e-9);
        assert!((imp.self_ms - 0.2).abs() < 1e-9);
    }

    #[test]
    fn collapsed_stacks_use_semicolons_and_integer_us() {
        let t = tree();
        let text = collapsed_stacks(&[&t]);
        let lines: Vec<&str> = text.lines().collect();
        assert!(lines.contains(&"flow 200"));
        assert!(lines.contains(&"flow;implement 100"));
        assert!(lines.contains(&"flow;implement;trial-0 400"));
        assert!(lines.contains(&"flow;implement;trial-1 500"));
        // Path-sorted and deterministic.
        let mut sorted = lines.clone();
        sorted.sort();
        assert_eq!(lines, sorted);
    }

    #[test]
    fn table_renders_every_row_and_totals() {
        let t = tree();
        let rows = self_time(&[&t]);
        let text = render_table(&rows);
        assert!(text.contains("flow/implement/trial-1"));
        assert!(text.lines().last().unwrap().starts_with("total"));
        // Overlapping children beyond the parent clamp at zero, never
        // negative.
        let tracer = Tracer::enabled();
        let root = tracer.root("r");
        {
            let c = root.child("c");
            c.set_window(0.0, 500.0);
        }
        root.set_window(0.0, 100.0); // parent shorter than child
        root.finish();
        let shallow = tracer.take_tree();
        let rows = self_time(&[&shallow]);
        assert!(rows.iter().all(|r| r.self_ms >= 0.0));
    }
}
