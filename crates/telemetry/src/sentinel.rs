//! The noise-aware performance-regression sentinel.
//!
//! Compares the most recent window of ledger records against a committed
//! baseline (`results/baseline.json`). Two rule kinds:
//!
//! * **stage latency** — the median stage wall time over the window must
//!   stay under `median_ms * max_ratio`. Median-of-N absorbs one-off
//!   hiccups; the relative threshold absorbs machine differences (a CI
//!   runner is slower than a dev box, but not 50x slower).
//! * **hit rate** — a ratio of two counters summed over the window
//!   (e.g. `store-hits+dedup-hits` over `jobs`) must stay at or above a
//!   floor. Counter sums are machine-independent, so these floors can
//!   be tight.
//!
//! The baseline file is JSONL, one rule per line, written either by
//! hand or by [`Baseline::from_records`] (`hlsb-bench report
//! --write-baseline`). `design` may be `*` to match every design of the
//! rule's tool.

use hlsb_store::json::{json_escape, raw_field, string_field};

use crate::ledger::RunRecord;

/// A stage-latency rule: the median of `stage`'s wall time over the
/// window must stay under `median_ms * max_ratio`.
#[derive(Debug, Clone, PartialEq)]
pub struct StageRule {
    /// Tool whose records the rule matches (`flow`, `serve-wave`, ...).
    pub tool: String,
    /// Design name, or `*` for any design of the tool.
    pub design: String,
    /// Stage name inside the record.
    pub stage: String,
    /// Baseline median wall time, milliseconds.
    pub median_ms: f64,
    /// Allowed ratio of current median over baseline median.
    pub max_ratio: f64,
}

/// A hit-rate rule: `sum(hits) / sum(total)` over the window must be at
/// least `min_rate`. `hits` may sum several counters with `+`
/// (`store-hits+dedup-hits`).
#[derive(Debug, Clone, PartialEq)]
pub struct RateRule {
    /// Tool whose records the rule matches.
    pub tool: String,
    /// Design name, or `*` for any design of the tool.
    pub design: String,
    /// `+`-joined counter names whose sum is the numerator.
    pub hits: String,
    /// Counter name whose sum is the denominator.
    pub total: String,
    /// Minimum acceptable rate in `[0, 1]`.
    pub min_rate: f64,
}

/// A parsed baseline: every rule the sentinel checks.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Baseline {
    /// Stage-latency rules.
    pub stages: Vec<StageRule>,
    /// Hit-rate rules.
    pub rates: Vec<RateRule>,
}

impl Baseline {
    /// Parses a baseline file: one JSON rule per line, `kind` selecting
    /// `stage` or `rate`. Blank lines and `#` comments are skipped.
    ///
    /// # Errors
    ///
    /// A description of the first malformed line.
    pub fn parse(text: &str) -> Result<Baseline, String> {
        let mut baseline = Baseline::default();
        for (lineno, line) in text.lines().enumerate() {
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let bad = |what: &str| format!("line {}: {what}: {line}", lineno + 1);
            if !(line.starts_with('{') && line.ends_with('}')) {
                return Err(bad("expected a JSON object"));
            }
            match string_field(line, "kind").as_deref() {
                Some("stage") => baseline.stages.push(StageRule {
                    tool: string_field(line, "tool").ok_or_else(|| bad("missing tool"))?,
                    design: string_field(line, "design").ok_or_else(|| bad("missing design"))?,
                    stage: string_field(line, "stage").ok_or_else(|| bad("missing stage"))?,
                    median_ms: raw_field(line, "median_ms")
                        .and_then(|v| v.parse().ok())
                        .ok_or_else(|| bad("missing median_ms"))?,
                    max_ratio: raw_field(line, "max_ratio")
                        .and_then(|v| v.parse().ok())
                        .ok_or_else(|| bad("missing max_ratio"))?,
                }),
                Some("rate") => baseline.rates.push(RateRule {
                    tool: string_field(line, "tool").ok_or_else(|| bad("missing tool"))?,
                    design: string_field(line, "design").ok_or_else(|| bad("missing design"))?,
                    hits: string_field(line, "hits").ok_or_else(|| bad("missing hits"))?,
                    total: string_field(line, "total").ok_or_else(|| bad("missing total"))?,
                    min_rate: raw_field(line, "min_rate")
                        .and_then(|v| v.parse().ok())
                        .ok_or_else(|| bad("missing min_rate"))?,
                }),
                _ => return Err(bad("unknown or missing kind")),
            }
        }
        Ok(baseline)
    }

    /// Renders the baseline back to its JSONL form.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for r in &self.stages {
            out.push_str(&format!(
                "{{\"kind\":\"stage\",\"tool\":\"{}\",\"design\":\"{}\",\
                 \"stage\":\"{}\",\"median_ms\":{:?},\"max_ratio\":{:?}}}\n",
                json_escape(&r.tool),
                json_escape(&r.design),
                json_escape(&r.stage),
                r.median_ms,
                r.max_ratio,
            ));
        }
        for r in &self.rates {
            out.push_str(&format!(
                "{{\"kind\":\"rate\",\"tool\":\"{}\",\"design\":\"{}\",\
                 \"hits\":\"{}\",\"total\":\"{}\",\"min_rate\":{:?}}}\n",
                json_escape(&r.tool),
                json_escape(&r.design),
                json_escape(&r.hits),
                json_escape(&r.total),
                r.min_rate,
            ));
        }
        out
    }

    /// Derives a baseline from ledger records: one stage rule per
    /// `(tool, design, stage)` seen in successful records (median over
    /// the last `window` matches, threshold `max_ratio`), plus one
    /// `store-hits+dedup-hits / jobs` rate rule per serving tool at
    /// half the observed rate (floored generously — counter rates are
    /// exact, but job mixes drift).
    pub fn from_records(records: &[RunRecord], window: usize, max_ratio: f64) -> Baseline {
        let mut baseline = Baseline::default();
        let mut groups: Vec<(String, String, String)> = Vec::new();
        for rec in records.iter().filter(|r| r.status == "ok") {
            for (stage, _) in &rec.stages {
                let key = (rec.tool.clone(), rec.design.clone(), stage.clone());
                if !groups.contains(&key) {
                    groups.push(key);
                }
            }
        }
        for (tool, design, stage) in groups {
            let samples = stage_samples(records, &tool, &design, &stage, window);
            if let Some(med) = median(&samples) {
                baseline.stages.push(StageRule {
                    tool,
                    design,
                    stage,
                    median_ms: med,
                    max_ratio,
                });
            }
        }
        let mut tools: Vec<&str> = records.iter().map(|r| r.tool.as_str()).collect();
        tools.sort_unstable();
        tools.dedup();
        for tool in tools {
            let rule = RateRule {
                tool: tool.to_string(),
                design: "*".to_string(),
                hits: "store-hits+dedup-hits".to_string(),
                total: "jobs".to_string(),
                min_rate: 0.0,
            };
            let (hits, total) = rate_sums(records, &rule, window);
            if total > 0 {
                baseline.rates.push(RateRule {
                    min_rate: hits as f64 / total as f64 * 0.5,
                    ..rule
                });
            }
        }
        baseline
    }
}

/// One rule's verdict.
#[derive(Debug, Clone, PartialEq)]
pub struct CheckOutcome {
    /// Human description of what was checked.
    pub what: String,
    /// Measured value (median ms, or rate).
    pub current: f64,
    /// The limit it was held against.
    pub limit: f64,
    /// Number of ledger records the measurement came from.
    pub samples: usize,
    /// Whether the rule passed.
    pub ok: bool,
}

/// A full sentinel run: every rule's outcome.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SentinelReport {
    /// One outcome per baseline rule, stage rules first.
    pub checks: Vec<CheckOutcome>,
}

impl SentinelReport {
    /// Number of failed rules.
    pub fn regressions(&self) -> usize {
        self.checks.iter().filter(|c| !c.ok).count()
    }

    /// Aligned human rendering, one line per rule.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for c in &self.checks {
            out.push_str(&format!(
                "{} {} (current {:.3}, limit {:.3}, n={})\n",
                if c.ok { "ok  " } else { "FAIL" },
                c.what,
                c.current,
                c.limit,
                c.samples,
            ));
        }
        out.push_str(&format!(
            "{} rules, {} regressions\n",
            self.checks.len(),
            self.regressions()
        ));
        out
    }
}

fn matches(rec: &RunRecord, tool: &str, design: &str) -> bool {
    rec.tool == tool && (design == "*" || rec.design == design)
}

/// The last `window` wall-time samples of `stage` over matching
/// successful records (file order — the window is the most recent N).
fn stage_samples(
    records: &[RunRecord],
    tool: &str,
    design: &str,
    stage: &str,
    window: usize,
) -> Vec<f64> {
    let mut samples: Vec<f64> = records
        .iter()
        .filter(|r| r.status == "ok" && matches(r, tool, design))
        .filter_map(|r| r.stage_ms(stage))
        .collect();
    let keep = window.max(1).min(samples.len());
    samples.split_off(samples.len() - keep)
}

/// Hit/total counter sums over the rule's window.
fn rate_sums(records: &[RunRecord], rule: &RateRule, window: usize) -> (u64, u64) {
    let matching: Vec<&RunRecord> = records
        .iter()
        .filter(|r| matches(r, &rule.tool, &rule.design))
        .collect();
    let keep = window.max(1).min(matching.len());
    let recent = &matching[matching.len() - keep..];
    let hits = recent
        .iter()
        .map(|r| rule.hits.split('+').map(|c| r.counter(c)).sum::<u64>())
        .sum();
    let total = recent.iter().map(|r| r.counter(&rule.total)).sum();
    (hits, total)
}

fn median(samples: &[f64]) -> Option<f64> {
    if samples.is_empty() {
        return None;
    }
    let mut sorted = samples.to_vec();
    sorted.sort_by(f64::total_cmp);
    let mid = sorted.len() / 2;
    Some(if sorted.len() % 2 == 1 {
        sorted[mid]
    } else {
        (sorted[mid - 1] + sorted[mid]) / 2.0
    })
}

/// Checks every baseline rule against the most recent `window` matching
/// records. A rule with no matching records **fails** — a silent gap in
/// the ledger is itself a regression of the telemetry.
pub fn check(records: &[RunRecord], baseline: &Baseline, window: usize) -> SentinelReport {
    let mut report = SentinelReport::default();
    for rule in &baseline.stages {
        let samples = stage_samples(records, &rule.tool, &rule.design, &rule.stage, window);
        let limit = rule.median_ms * rule.max_ratio;
        let what = format!(
            "stage {}/{}/{} median ms",
            rule.tool, rule.design, rule.stage
        );
        match median(&samples) {
            Some(current) => report.checks.push(CheckOutcome {
                what,
                current,
                limit,
                samples: samples.len(),
                ok: current <= limit,
            }),
            None => report.checks.push(CheckOutcome {
                what: format!("{what} (no ledger records)"),
                current: f64::NAN,
                limit,
                samples: 0,
                ok: false,
            }),
        }
    }
    for rule in &baseline.rates {
        let (hits, total) = rate_sums(records, rule, window);
        let what = format!(
            "rate {}/{} {} over {}",
            rule.tool, rule.design, rule.hits, rule.total
        );
        if total == 0 {
            report.checks.push(CheckOutcome {
                what: format!("{what} (no ledger records)"),
                current: f64::NAN,
                limit: rule.min_rate,
                samples: 0,
                ok: false,
            });
        } else {
            let current = hits as f64 / total as f64;
            report.checks.push(CheckOutcome {
                what,
                current,
                limit: rule.min_rate,
                samples: total as usize,
                ok: current >= rule.min_rate,
            });
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    fn flow_record(design: &str, schedule_ms: f64, implement_ms: f64) -> RunRecord {
        let mut rec = RunRecord::new("flow", design, 1, "ok", schedule_ms + implement_ms);
        rec.add_stage("schedule", schedule_ms);
        rec.add_stage("implement", implement_ms);
        rec.add_count("executions", 1);
        rec
    }

    fn wave_record(jobs: u64, store: u64, dedup: u64) -> RunRecord {
        let mut rec = RunRecord::new("serve-wave", "wave-0", 0, "ok", 5.0);
        rec.add_count("jobs", jobs);
        rec.add_count("store-hits", store);
        rec.add_count("dedup-hits", dedup);
        rec
    }

    #[test]
    fn baseline_round_trips_and_skips_comments() {
        let baseline = Baseline {
            stages: vec![StageRule {
                tool: "flow".into(),
                design: "lstm_gate".into(),
                stage: "implement".into(),
                median_ms: 12.5,
                max_ratio: 4.0,
            }],
            rates: vec![RateRule {
                tool: "serve-wave".into(),
                design: "*".into(),
                hits: "store-hits+dedup-hits".into(),
                total: "jobs".into(),
                min_rate: 0.45,
            }],
        };
        let text = format!("# committed baseline\n\n{}", baseline.render());
        let back = Baseline::parse(&text).expect("parses");
        assert_eq!(back, baseline);
        assert!(Baseline::parse("{\"kind\":\"nope\"}").is_err());
        assert!(Baseline::parse("not json").is_err());
    }

    #[test]
    fn planted_2x_regression_is_detected_and_clean_run_passes() {
        // Five reference runs with schedule ~1ms, implement ~10ms.
        let reference: Vec<RunRecord> = (0..5)
            .map(|i| flow_record("d", 1.0 + 0.01 * i as f64, 10.0 + 0.1 * i as f64))
            .collect();
        let baseline = Baseline::from_records(&reference, 5, 1.5);
        assert_eq!(baseline.stages.len(), 2, "schedule + implement rules");

        // Unmodified run: passes.
        let clean = check(&reference, &baseline, 5);
        assert_eq!(clean.regressions(), 0, "{}", clean.render());

        // Plant a 2x schedule regression; implement stays put.
        let doctored: Vec<RunRecord> = reference
            .iter()
            .map(|r| {
                let mut d = r.clone();
                for (name, ms) in &mut d.stages {
                    if name == "schedule" {
                        *ms *= 2.0;
                    }
                }
                d
            })
            .collect();
        let report = check(&doctored, &baseline, 5);
        assert_eq!(report.regressions(), 1, "{}", report.render());
        let failed = report.checks.iter().find(|c| !c.ok).unwrap();
        assert!(failed.what.contains("schedule"), "{}", failed.what);
    }

    #[test]
    fn median_of_n_absorbs_one_hiccup() {
        let baseline = Baseline::from_records(
            &(0..5)
                .map(|_| flow_record("d", 1.0, 10.0))
                .collect::<Vec<_>>(),
            5,
            1.5,
        );
        // One 10x outlier among five runs: the median barely moves.
        let mut noisy: Vec<RunRecord> = (0..4).map(|_| flow_record("d", 1.0, 10.0)).collect();
        noisy.push(flow_record("d", 10.0, 10.0));
        let report = check(&noisy, &baseline, 5);
        assert_eq!(report.regressions(), 0, "{}", report.render());
    }

    #[test]
    fn window_uses_only_recent_records() {
        let baseline = Baseline::from_records(
            &(0..3)
                .map(|_| flow_record("d", 1.0, 10.0))
                .collect::<Vec<_>>(),
            5,
            1.5,
        );
        // Old records are slow, the recent window is fine.
        let mut history: Vec<RunRecord> = (0..10).map(|_| flow_record("d", 50.0, 10.0)).collect();
        history.extend((0..5).map(|_| flow_record("d", 1.0, 10.0)));
        assert_eq!(check(&history, &baseline, 5).regressions(), 0);
        // And the reverse regresses.
        let mut history: Vec<RunRecord> = (0..10).map(|_| flow_record("d", 1.0, 10.0)).collect();
        history.extend((0..5).map(|_| flow_record("d", 50.0, 10.0)));
        assert!(check(&history, &baseline, 5).regressions() > 0);
    }

    #[test]
    fn hit_rate_floor_and_missing_data_fail() {
        let baseline = Baseline {
            stages: Vec::new(),
            rates: vec![RateRule {
                tool: "serve-wave".into(),
                design: "*".into(),
                hits: "store-hits+dedup-hits".into(),
                total: "jobs".into(),
                min_rate: 0.4,
            }],
        };
        // 10 jobs, 3 store + 2 dedup = 0.5 >= 0.4: ok.
        let good = vec![wave_record(6, 3, 0), wave_record(4, 0, 2)];
        assert_eq!(check(&good, &baseline, 5).regressions(), 0);
        // 10 jobs, 2 hits = 0.2 < 0.4: regression.
        let bad = vec![wave_record(10, 2, 0)];
        assert_eq!(check(&bad, &baseline, 5).regressions(), 1);
        // No serve-wave records at all: the gap itself fails.
        let empty = check(&[], &baseline, 5);
        assert_eq!(empty.regressions(), 1);
        assert!(empty.render().contains("no ledger records"));
    }

    #[test]
    fn rejected_and_failed_runs_never_skew_latency_medians() {
        let mut reference: Vec<RunRecord> = (0..5).map(|_| flow_record("d", 1.0, 10.0)).collect();
        let baseline = Baseline::from_records(&reference, 5, 1.5);
        // A failed run with a pathological stage time is ignored.
        let mut broken = flow_record("d", 500.0, 500.0);
        broken.status = "failed".into();
        reference.push(broken);
        assert_eq!(check(&reference, &baseline, 5).regressions(), 0);
    }
}
