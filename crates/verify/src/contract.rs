//! Schedule-contract checking: do the flow's cached artifacts honor the
//! invariants the paper's optimizations promise?
//!
//! These checks are *auditors*, not re-implementations: they read the
//! same `Schedule`, `SplitDecision`, `SkidDecision` and `SyncDecision`
//! records the flow caches, and re-derive each contract from first
//! principles — the clock budget from `CLOCK_MARGIN`, the skid bound
//! from segment length + 1 + `GATE_PIPELINE`, the prune cover from the
//! waited set — so a stale cache entry, a bad merge or a hand-edited
//! artifact is caught before sign-off.

use crate::finding;
use hlsb_findings::{Diagnostic, Location, Severity};
use hlsb_ir::{Loop, OpKind};
use hlsb_rtlgen::{LowerInfo, GATE_PIPELINE};
use hlsb_sched::{Schedule, SplitDecision, CLOCK_MARGIN};

/// Float slack for delay comparisons, ns — well below any real delay
/// increment, well above f64 accumulation error.
const EPS_NS: f64 = 1e-6;

/// One scheduled loop as seen by the contract checker — a borrow view so
/// any flow layer (core session, bench CLI, tests) can hand over its own
/// artifact representation without conversion.
#[derive(Debug, Clone, Copy)]
pub struct LoopContract<'a> {
    /// Kernel name, for locations.
    pub kernel: &'a str,
    /// The (effective, post-unroll) loop that was scheduled.
    pub looop: &'a Loop,
    /// Its final schedule.
    pub schedule: &'a Schedule,
    /// The broadcast-aware chain-cut decisions made for this loop
    /// (empty for the baseline scheduler).
    pub splits: &'a [SplitDecision],
}

fn loop_location(lc: &LoopContract<'_>) -> Location {
    Location {
        kernel: Some(lc.kernel.to_string()),
        looop: Some(lc.looop.name.to_string()),
        pragma: None,
    }
}

/// VC01 — every scheduled chain must land below the device-calibrated
/// delay threshold (`clock_ns * CLOCK_MARGIN`), §4.1. The only legal
/// exceptions are the schedule's own `violations`: single operations
/// whose delay exceeds the budget even at a fresh cycle boundary, which
/// the flow explicitly hands to physical optimization. Every `Reg`
/// module — broadcast-aware chain cut or forced injection — must carry
/// its one cycle of latency: a register recorded with latency 0 would
/// chain combinationally and the split it paid for never happened. Also
/// audits each recorded [`SplitDecision`]: a cut must dominate its
/// violator, cite a positive excess and a broadcast factor of at
/// least 1.
pub fn check_schedule(loops: &[LoopContract<'_>], out: &mut Vec<Diagnostic>) {
    for lc in loops {
        let sched = lc.schedule;
        let budget = sched.clock_ns * CLOCK_MARGIN;
        for (id, inst) in lc.looop.body.iter() {
            let op = sched.op(id);
            if inst.kind == OpKind::Reg && op.latency == 0 {
                out.push(finding(
                    "VC01",
                    Severity::Error,
                    format!("inst {id} (reg)"),
                    format!(
                        "register module {id} is scheduled with latency 0 in cycle {}: \
                         the inserted register chains combinationally instead of cutting \
                         the chain it was inserted for (stale or tampered schedule \
                         artifact)",
                        op.cycle,
                    ),
                    loop_location(lc),
                    sched.same_cycle_readers(&lc.looop.body, id).max(1),
                    0.0,
                ));
            }
            if op.offset_ns <= budget + EPS_NS || sched.violations.contains(&id) {
                continue;
            }
            out.push(finding(
                "VC01",
                Severity::Error,
                format!("inst {id} ({})", inst.kind),
                format!(
                    "chain ending at {id} ({}) finishes {:.3} ns into a {:.3} ns budget \
                     (clock {:.3} ns x margin {CLOCK_MARGIN}) without a violation record; \
                     the broadcast-aware cut did not land below the threshold",
                    inst.kind, op.offset_ns, budget, sched.clock_ns,
                ),
                loop_location(lc),
                sched.operand_broadcast_factor(&lc.looop.body, id),
                op.offset_ns - budget,
            ));
        }
        for s in lc.splits {
            let mut problems = Vec::new();
            if s.excess_ns <= 0.0 {
                problems.push(format!(
                    "cites a non-positive excess of {:.3} ns",
                    s.excess_ns
                ));
            }
            if s.cut.index() >= s.violator.index() {
                problems.push(format!(
                    "cut point {} does not dominate the violator {}",
                    s.cut, s.violator
                ));
            }
            if s.broadcast_factor < 1 {
                problems.push("records a broadcast factor of 0".to_string());
            }
            if !problems.is_empty() {
                out.push(finding(
                    "VC01",
                    Severity::Error,
                    format!("split at {} for {}", s.cut, s.violator),
                    format!(
                        "round-{} chain-cut record is inconsistent: {}",
                        s.round,
                        problems.join("; "),
                    ),
                    loop_location(lc),
                    s.broadcast_factor.max(1),
                    s.excess_ns.max(0.0),
                ));
            }
        }
    }
}

/// VC02/VC03 — audits the lowering metadata: skid-buffer depths against
/// the paper's `N+1` bound (§4.3) and sync-prune decisions against the
/// waited set's latency cover (§4.2).
pub fn check_lower(info: &LowerInfo, out: &mut Vec<Diagnostic>) {
    check_skid_depths(info, out);
    check_sync_prunes(info, out);
}

/// A skid buffer covering a pipeline segment of `N` stages needs `N + 1`
/// slots to absorb the in-flight iterations plus the one entering as the
/// stall asserts — and this lowering registers the gate feedback, adding
/// [`GATE_PIPELINE`] cycles of slack per buffer. Buffers are grouped per
/// lowered loop instance; segment length is the distance to the previous
/// cut (cuts are recorded in lowering order, but sorted here to be safe).
fn check_skid_depths(info: &LowerInfo, out: &mut Vec<Diagnostic>) {
    let mut loops: Vec<&str> = Vec::new();
    for d in &info.skid_decisions {
        if !loops.contains(&d.looop.as_str()) {
            loops.push(&d.looop);
        }
    }
    for name in loops {
        let mut cuts: Vec<_> = info
            .skid_decisions
            .iter()
            .filter(|d| d.looop == name)
            .collect();
        cuts.sort_by_key(|d| d.cut_stage);
        let mut prev = 0usize;
        for d in cuts {
            let seg_len = d.cut_stage.saturating_sub(prev) as u64;
            // The decision's own crossing provisioning is part of the
            // bound: a buffer that *declares* crossing slack (registered
            // inter-island hops) must actually hold those slots too.
            let bound = seg_len + 1 + GATE_PIPELINE + d.crossing_slots;
            if d.depth_slots < bound {
                out.push(finding(
                    "VC02",
                    Severity::Error,
                    format!("skid at stage {} of {}", d.cut_stage, d.looop),
                    format!(
                        "skid buffer holds {} slot(s) but covers a {}-stage segment: the \
                         N+1 bound with {} cycle(s) of registered-gate slack and {} \
                         crossing slot(s) requires {}; an in-flight iteration is dropped \
                         when the gate closes",
                        d.depth_slots, seg_len, GATE_PIPELINE, d.crossing_slots, bound,
                    ),
                    Location {
                        kernel: Some(d.looop.clone()),
                        looop: None,
                        pragma: None,
                    },
                    seg_len as usize,
                    0.0,
                ));
            }
            prev = d.cut_stage;
        }
    }
}

/// A pruned done-signal is legal only if the module's latency is
/// statically known and some waited module provably outlasts it.
fn check_sync_prunes(info: &LowerInfo, out: &mut Vec<Diagnostic>) {
    let mut loops: Vec<&str> = Vec::new();
    for d in &info.sync_decisions {
        if !loops.contains(&d.looop.as_str()) {
            loops.push(&d.looop);
        }
    }
    for name in loops {
        let group: Vec<_> = info
            .sync_decisions
            .iter()
            .filter(|d| d.looop == name)
            .collect();
        let cover = group
            .iter()
            .filter(|d| d.waited)
            .filter_map(|d| d.latency)
            .max();
        for d in &group {
            if d.waited {
                continue;
            }
            let location = Location {
                kernel: Some(d.looop.clone()),
                looop: None,
                pragma: None,
            };
            let subject = format!("module {} of {}", d.module, d.looop);
            let Some(lat) = d.latency else {
                out.push(finding(
                    "VC03",
                    Severity::Error,
                    subject,
                    format!(
                        "done-signal of {} was pruned although its latency is dynamic; no \
                         waited module can guarantee it has finished",
                        d.module,
                    ),
                    location,
                    group.len(),
                    0.0,
                ));
                continue;
            };
            match cover {
                Some(c) if c >= lat => {
                    // Legal prune — but the recorded evidence must agree
                    // with the actual waited set.
                    if d.cover_latency != Some(c) {
                        out.push(finding(
                            "VC03",
                            Severity::Error,
                            subject,
                            format!(
                                "prune of {} records cover latency {:?} but the waited set's \
                                 longest static latency is {c}; the decision evidence is stale",
                                d.module, d.cover_latency,
                            ),
                            location,
                            group.len(),
                            0.0,
                        ));
                    }
                }
                _ => {
                    out.push(finding(
                        "VC03",
                        Severity::Error,
                        subject,
                        format!(
                            "done-signal of {} (latency {lat}) was pruned but the waited set \
                             covers only {} cycle(s); the FSM can advance before the module \
                             finishes",
                            d.module,
                            cover.map_or(0, |c| c),
                        ),
                        location,
                        group.len(),
                        0.0,
                    ));
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hlsb_delay::HlsPredictedModel;
    use hlsb_ir::builder::DesignBuilder;
    use hlsb_ir::types::DataType;
    use hlsb_rtlgen::{SkidDecision, SkidStorage, SyncDecision};
    use hlsb_sched::schedule_loop;

    fn scheduled_design() -> (hlsb_ir::Design, Schedule) {
        let mut b = DesignBuilder::new("c");
        let fin = b.fifo("in", DataType::Int(32), 2);
        let fout = b.fifo("out", DataType::Int(32), 2);
        let mut k = b.kernel("top");
        let mut l = k.pipelined_loop("mac", 64, 1);
        let c = l.invariant_input("c", DataType::Int(32));
        let x = l.fifo_read(fin, DataType::Int(32));
        let m = l.mul(c, x);
        let s = l.add(m, x);
        l.fifo_write(fout, s);
        l.finish();
        k.finish();
        let d = b.finish().expect("valid design");
        let sched = schedule_loop(&d.kernels[0].loops[0], &d, &HlsPredictedModel::new(), 3.33);
        (d, sched)
    }

    fn contracts(d: &hlsb_ir::Design, sched: &Schedule) -> Vec<Diagnostic> {
        let lc = LoopContract {
            kernel: &d.kernels[0].name,
            looop: &d.kernels[0].loops[0],
            schedule: sched,
            splits: &[],
        };
        let mut out = Vec::new();
        check_schedule(&[lc], &mut out);
        out
    }

    #[test]
    fn honest_schedule_is_clean() {
        let (d, sched) = scheduled_design();
        assert!(contracts(&d, &sched).is_empty());
    }

    #[test]
    fn tampered_offset_fires_vc01() {
        let (d, mut sched) = scheduled_design();
        // Push one op's chain end past the budget without recording a
        // violation — exactly what a stale or corrupted cache would show.
        let victim = sched.ops.len() - 2;
        sched.ops[victim].offset_ns = sched.clock_ns * CLOCK_MARGIN + 0.5;
        let out = contracts(&d, &sched);
        assert_eq!(out.len(), 1, "{out:?}");
        assert_eq!(out[0].rule, "VC01");
        assert!(out[0].est_penalty_ns > 0.4);
        assert_eq!(out[0].location.looop.as_deref(), Some("mac"));
    }

    #[test]
    fn injected_reg_with_zero_latency_fires_vc01() {
        // Force-inject a register at a real stage boundary, then tamper
        // its recorded latency down to 0 — the artifact now claims the
        // register chains combinationally.
        let (d, _) = scheduled_design();
        let out = hlsb_sched::inject_registers(
            &d.kernels[0].loops[0],
            &d,
            &HlsPredictedModel::new(),
            3.33,
            &[1],
        );
        assert!(out.inserted_regs > 0, "boundary 1 should cut the mac chain");
        let reg = out
            .looop
            .body
            .iter()
            .find(|(_, inst)| inst.kind == OpKind::Reg)
            .map(|(id, _)| id)
            .expect("injected register present");

        let lc = LoopContract {
            kernel: &d.kernels[0].name,
            looop: &out.looop,
            schedule: &out.schedule,
            splits: &[],
        };
        let mut clean = Vec::new();
        check_schedule(&[lc], &mut clean);
        assert!(clean.is_empty(), "{clean:?}");

        let mut sched = out.schedule.clone();
        sched.ops[reg.index()].latency = 0;
        let lc = LoopContract {
            kernel: &d.kernels[0].name,
            looop: &out.looop,
            schedule: &sched,
            splits: &[],
        };
        let mut fired = Vec::new();
        check_schedule(&[lc], &mut fired);
        assert_eq!(fired.len(), 1, "{fired:?}");
        assert_eq!(fired[0].rule, "VC01");
        assert!(fired[0].subject.contains(&format!("{reg}")), "{fired:?}");
        assert!(fired[0].message.contains("latency 0"));
        assert_eq!(fired[0].location.looop.as_deref(), Some("mac"));
    }

    #[test]
    fn recorded_violation_is_a_legal_exception() {
        let (d, mut sched) = scheduled_design();
        let victim = sched.ops.len() - 2;
        sched.ops[victim].offset_ns = sched.clock_ns * CLOCK_MARGIN + 0.5;
        sched.violations.push(hlsb_ir::InstId(victim as u32));
        assert!(contracts(&d, &sched).is_empty());
    }

    #[test]
    fn inconsistent_split_record_fires_vc01() {
        let (d, sched) = scheduled_design();
        let bad = SplitDecision {
            round: 1,
            violator: hlsb_ir::InstId(1),
            op: hlsb_ir::OpKind::Add,
            cut: hlsb_ir::InstId(3), // does not dominate the violator
            broadcast_factor: 0,
            excess_ns: -0.2,
            calibrated_ns: 1.0,
            predicted_ns: 0.5,
        };
        let lc = LoopContract {
            kernel: &d.kernels[0].name,
            looop: &d.kernels[0].loops[0],
            schedule: &sched,
            splits: std::slice::from_ref(&bad),
        };
        let mut out = Vec::new();
        check_schedule(&[lc], &mut out);
        assert_eq!(out.len(), 1, "{out:?}");
        assert_eq!(out[0].rule, "VC01");
        assert!(out[0].message.contains("does not dominate"));
        assert!(out[0].message.contains("non-positive excess"));
    }

    fn skid(looop: &str, cut_stage: usize, depth_slots: u64) -> SkidDecision {
        SkidDecision {
            looop: looop.into(),
            cut_stage,
            depth_slots,
            crossing_slots: 0,
            width_bits: 32,
            bits: depth_slots * 32,
            storage: SkidStorage::Ff,
            min_area: true,
        }
    }

    #[test]
    fn skid_bound_holds_per_segment() {
        let mut info = LowerInfo::default();
        // Cuts at stages 3 and 8: segments of 3 and 5 stages.
        info.skid_decisions
            .push(skid("top_0", 3, 3 + 1 + GATE_PIPELINE));
        info.skid_decisions
            .push(skid("top_0", 8, 5 + 1 + GATE_PIPELINE));
        let mut out = Vec::new();
        check_lower(&info, &mut out);
        assert!(out.is_empty(), "{out:?}");

        // Shrink the second buffer below the bound.
        info.skid_decisions[1].depth_slots -= 1;
        let mut out = Vec::new();
        check_lower(&info, &mut out);
        assert_eq!(out.len(), 1, "{out:?}");
        assert_eq!(out[0].rule, "VC02");
        assert!(out[0].message.contains("5-stage segment"));
        assert_eq!(out[0].location.kernel.as_deref(), Some("top_0"));
    }

    #[test]
    fn skid_bound_audits_crossing_provisioning() {
        // A buffer that declares one crossing slot must hold it: the base
        // N+1+GATE_PIPELINE depth alone is now one short.
        let mut info = LowerInfo::default();
        let mut d = skid("top_0", 3, 3 + 1 + GATE_PIPELINE);
        d.crossing_slots = 1;
        info.skid_decisions.push(d);
        let mut out = Vec::new();
        check_lower(&info, &mut out);
        assert_eq!(out.len(), 1, "{out:?}");
        assert_eq!(out[0].rule, "VC02");
        assert!(out[0].message.contains("1 crossing slot(s)"), "{out:?}");

        // Provisioning the slot satisfies the audited bound.
        info.skid_decisions[0].depth_slots += 1;
        let mut out = Vec::new();
        check_lower(&info, &mut out);
        assert!(out.is_empty(), "{out:?}");
    }

    fn sync(module: &str, latency: Option<u64>, waited: bool, cover: Option<u64>) -> SyncDecision {
        SyncDecision {
            looop: "top_0".into(),
            module: module.into(),
            latency,
            waited,
            cover_latency: cover,
        }
    }

    #[test]
    fn legal_prune_is_clean() {
        let mut info = LowerInfo::default();
        info.sync_decisions
            .push(sync("pe0", Some(20), true, Some(20)));
        info.sync_decisions
            .push(sync("pe1", Some(5), false, Some(20)));
        info.sync_decisions.push(sync("pe2", None, true, Some(20)));
        let mut out = Vec::new();
        check_lower(&info, &mut out);
        assert!(out.is_empty(), "{out:?}");
    }

    #[test]
    fn uncovered_prune_fires_vc03() {
        let mut info = LowerInfo::default();
        // The pruned module outlasts everything the FSM still waits on.
        info.sync_decisions
            .push(sync("pe0", Some(10), true, Some(10)));
        info.sync_decisions
            .push(sync("pe1", Some(25), false, Some(10)));
        let mut out = Vec::new();
        check_lower(&info, &mut out);
        assert_eq!(out.len(), 1, "{out:?}");
        assert_eq!(out[0].rule, "VC03");
        assert!(out[0].message.contains("covers only 10"));
    }

    #[test]
    fn pruned_dynamic_module_fires_vc03() {
        let mut info = LowerInfo::default();
        info.sync_decisions
            .push(sync("pe0", Some(30), true, Some(30)));
        info.sync_decisions.push(sync("pe1", None, false, Some(30)));
        let mut out = Vec::new();
        check_lower(&info, &mut out);
        assert_eq!(out.len(), 1, "{out:?}");
        assert_eq!(out[0].rule, "VC03");
        assert!(out[0].message.contains("dynamic"));
    }

    #[test]
    fn stale_cover_evidence_fires_vc03() {
        let mut info = LowerInfo::default();
        info.sync_decisions
            .push(sync("pe0", Some(20), true, Some(20)));
        info.sync_decisions
            .push(sync("pe1", Some(5), false, Some(7)));
        let mut out = Vec::new();
        check_lower(&info, &mut out);
        assert_eq!(out.len(), 1, "{out:?}");
        assert_eq!(out[0].rule, "VC03");
        assert!(out[0].message.contains("stale"));
    }
}
