//! Dataflow network analysis: the kernel↔FIFO channel graph.
//!
//! Works on the *input* [`Design`], before unrolling — unrolling
//! multiplies a loop's per-iteration channel accesses and divides its
//! trip count, so every token bound computed here is unroll-invariant.
//!
//! Endpoint granularity is the **loop**: HLS streaming discipline allows
//! one loop to read or write a channel many times per iteration (that is
//! a wider stream, not a conflict), but two different loops driving one
//! channel — whether in one kernel or across kernels — make the token
//! order depend on scheduling and break the single-writer/single-reader
//! contract the FIFO lowering assumes.

use crate::finding;
use hlsb_findings::{Diagnostic, Location, Severity};
use hlsb_ir::{Concurrency, Design, OpKind};

/// One loop's use of a channel: where it is and how many accesses each
/// iteration performs.
#[derive(Debug, Clone, Copy)]
struct Endpoint {
    kernel: usize,
    looop: usize,
    /// Static access count in the loop body (per iteration, pre-unroll).
    per_iter: usize,
}

impl Endpoint {
    /// Total tokens this endpoint moves over the loop's full execution.
    fn total_tokens(&self, design: &Design) -> u64 {
        self.per_iter as u64 * design.kernels[self.kernel].loops[self.looop].trip_count
    }

    /// Execution-order key: kernels run in order under a sequential top
    /// level, loops run in order within a kernel.
    fn order(&self) -> (usize, usize) {
        (self.kernel, self.looop)
    }
}

fn location(design: &Design, e: Endpoint) -> Location {
    Location {
        kernel: Some(design.kernels[e.kernel].name.clone()),
        looop: Some(design.kernels[e.kernel].loops[e.looop].name.clone()),
        pragma: None,
    }
}

fn endpoint_list(design: &Design, endpoints: &[Endpoint]) -> String {
    endpoints
        .iter()
        .map(|e| {
            format!(
                "{}/{}",
                design.kernels[e.kernel].name, design.kernels[e.kernel].loops[e.looop].name
            )
        })
        .collect::<Vec<_>>()
        .join(", ")
}

/// Per-channel endpoint sets, in kernel-loop order.
struct ChannelUse {
    writers: Vec<Endpoint>,
    readers: Vec<Endpoint>,
}

fn collect_channels(design: &Design) -> Vec<ChannelUse> {
    let mut uses: Vec<ChannelUse> = design
        .fifos
        .iter()
        .map(|_| ChannelUse {
            writers: Vec::new(),
            readers: Vec::new(),
        })
        .collect();
    for (ki, kernel) in design.kernels.iter().enumerate() {
        for (li, lp) in kernel.loops.iter().enumerate() {
            let mut writes = vec![0usize; design.fifos.len()];
            let mut reads = vec![0usize; design.fifos.len()];
            for (_, inst) in lp.body.iter() {
                match inst.kind {
                    OpKind::FifoWrite(f) => writes[f.index()] += 1,
                    OpKind::FifoRead(f) => reads[f.index()] += 1,
                    _ => {}
                }
            }
            for (fi, &n) in writes.iter().enumerate() {
                if n > 0 {
                    uses[fi].writers.push(Endpoint {
                        kernel: ki,
                        looop: li,
                        per_iter: n,
                    });
                }
            }
            for (fi, &n) in reads.iter().enumerate() {
                if n > 0 {
                    uses[fi].readers.push(Endpoint {
                        kernel: ki,
                        looop: li,
                        per_iter: n,
                    });
                }
            }
        }
    }
    uses
}

/// VN01/VN02: single-writer / single-reader discipline per channel.
fn check_endpoints(design: &Design, uses: &[ChannelUse], out: &mut Vec<Diagnostic>) {
    for (fi, u) in uses.iter().enumerate() {
        let fifo = &design.fifos[fi];
        if u.writers.len() > 1 {
            out.push(finding(
                "VN01",
                Severity::Error,
                format!("fifo \"{}\"", fifo.name),
                format!(
                    "channel \"{}\" is written from {} loops ({}); FIFO lowering assumes a \
                     single producer, so the token order depends on scheduling",
                    fifo.name,
                    u.writers.len(),
                    endpoint_list(design, &u.writers),
                ),
                location(design, u.writers[1]),
                u.writers.len(),
                0.0,
            ));
        }
        if u.readers.len() > 1 {
            out.push(finding(
                "VN02",
                Severity::Error,
                format!("fifo \"{}\"", fifo.name),
                format!(
                    "channel \"{}\" is read from {} loops ({}); FIFO lowering assumes a \
                     single consumer, so each loop sees a scheduling-dependent subsequence",
                    fifo.name,
                    u.readers.len(),
                    endpoint_list(design, &u.readers),
                ),
                location(design, u.readers[1]),
                u.readers.len(),
                0.0,
            ));
        }
    }
}

/// VN03: an array written while several concurrent dataflow kernels
/// access it — an unsynchronized shared-pool race. Sequential designs
/// are exempt (one FSM orders every access).
fn check_array_races(design: &Design, out: &mut Vec<Diagnostic>) {
    if design.concurrency != Concurrency::Dataflow {
        return;
    }
    for (ai, array) in design.arrays.iter().enumerate() {
        let mut touching: Vec<usize> = Vec::new();
        let mut writer: Option<Endpoint> = None;
        for (ki, kernel) in design.kernels.iter().enumerate() {
            for (li, lp) in kernel.loops.iter().enumerate() {
                for (_, inst) in lp.body.iter() {
                    let (is_access, is_write) = match inst.kind {
                        OpKind::Load(a) if a.index() == ai => (true, false),
                        OpKind::Store(a) if a.index() == ai => (true, true),
                        _ => (false, false),
                    };
                    if is_access && !touching.contains(&ki) {
                        touching.push(ki);
                    }
                    if is_write && writer.is_none() {
                        writer = Some(Endpoint {
                            kernel: ki,
                            looop: li,
                            per_iter: 1,
                        });
                    }
                }
            }
        }
        if touching.len() > 1 {
            if let Some(w) = writer {
                let names: Vec<&str> = touching
                    .iter()
                    .map(|&k| design.kernels[k].name.as_str())
                    .collect();
                out.push(finding(
                    "VN03",
                    Severity::Error,
                    format!("array \"{}\"", array.name),
                    format!(
                        "array \"{}\" is written by kernel \"{}\" while {} concurrent \
                         dataflow kernels access it ({}); accesses are unsynchronized",
                        array.name,
                        design.kernels[w.kernel].name,
                        touching.len(),
                        names.join(", "),
                    ),
                    location(design, w),
                    touching.len(),
                    0.0,
                ));
            }
        }
    }
}

/// VN04, part 1 — channel cycles between concurrent kernels.
///
/// The lowered dataflow network starts with empty FIFOs (no initial
/// tokens), so *any* directed channel cycle between concurrently running
/// kernels deadlocks: every kernel on the cycle blocks reading before it
/// can write. The finding cites the cycle's total FIFO capacity as
/// evidence that no skid/FIFO sizing can cover the in-flight bound.
fn check_channel_cycles(design: &Design, uses: &[ChannelUse], out: &mut Vec<Diagnostic>) {
    if design.concurrency != Concurrency::Dataflow {
        return;
    }
    let n = design.kernels.len();
    // Cross-kernel edges: writer kernel -> reader kernel, tagged with the
    // channel index.
    let mut edges: Vec<(usize, usize, usize)> = Vec::new();
    for (fi, u) in uses.iter().enumerate() {
        for w in &u.writers {
            for r in &u.readers {
                if w.kernel != r.kernel {
                    edges.push((w.kernel, r.kernel, fi));
                }
            }
        }
    }
    let mut adj = vec![Vec::new(); n];
    let mut radj = vec![Vec::new(); n];
    for &(a, b, _) in &edges {
        adj[a].push(b);
        radj[b].push(a);
    }

    // Kosaraju: forward finish order, then reverse-graph sweeps.
    let mut order = Vec::with_capacity(n);
    let mut seen = vec![false; n];
    for start in 0..n {
        if seen[start] {
            continue;
        }
        // Iterative DFS with an explicit post-visit marker.
        let mut stack = vec![(start, false)];
        while let Some((v, post)) = stack.pop() {
            if post {
                order.push(v);
                continue;
            }
            if seen[v] {
                continue;
            }
            seen[v] = true;
            stack.push((v, true));
            for &w in &adj[v] {
                if !seen[w] {
                    stack.push((w, false));
                }
            }
        }
    }
    let mut comp = vec![usize::MAX; n];
    let mut ncomp = 0usize;
    for &start in order.iter().rev() {
        if comp[start] != usize::MAX {
            continue;
        }
        let mut stack = vec![start];
        while let Some(v) = stack.pop() {
            if comp[v] != usize::MAX {
                continue;
            }
            comp[v] = ncomp;
            for &w in &radj[v] {
                if comp[w] == usize::MAX {
                    stack.push(w);
                }
            }
        }
        ncomp += 1;
    }

    for c in 0..ncomp {
        let members: Vec<usize> = (0..n).filter(|&k| comp[k] == c).collect();
        if members.len() < 2 {
            continue;
        }
        let cycle_fifos: Vec<usize> = {
            let mut v: Vec<usize> = edges
                .iter()
                .filter(|&&(a, b, _)| comp[a] == c && comp[b] == c)
                .map(|&(_, _, f)| f)
                .collect();
            v.sort_unstable();
            v.dedup();
            v
        };
        let capacity: u64 = cycle_fifos
            .iter()
            .map(|&f| design.fifos[f].depth as u64)
            .sum();
        let kernel_names: Vec<&str> = members
            .iter()
            .map(|&k| design.kernels[k].name.as_str())
            .collect();
        let fifo_names: Vec<&str> = cycle_fifos
            .iter()
            .map(|&f| design.fifos[f].name.as_str())
            .collect();
        out.push(finding(
            "VN04",
            Severity::Error,
            format!("cycle {{{}}}", kernel_names.join(" -> ")),
            format!(
                "kernels {} form a channel cycle through {{{}}}; the network starts with no \
                 initial tokens, so every kernel blocks on its read before producing — the \
                 cycle's total capacity of {capacity} slot(s) can never cover the in-flight \
                 token bound",
                kernel_names.join(", "),
                fifo_names.join(", "),
            ),
            Location {
                kernel: Some(design.kernels[members[0]].name.clone()),
                looop: None,
                pragma: None,
            },
            members.len(),
            0.0,
        ));
    }
}

/// VN04, part 2 — sequenced endpoints whose order or capacity cannot
/// clear. Applies wherever two endpoints of one channel execute under a
/// single FSM: loops of one kernel (always sequential), and any two
/// endpoints of a sequential-concurrency design.
fn check_sequenced_capacity(design: &Design, uses: &[ChannelUse], out: &mut Vec<Diagnostic>) {
    let sequential_top = design.concurrency == Concurrency::Sequential;
    for (fi, u) in uses.iter().enumerate() {
        if u.writers.is_empty() || u.readers.is_empty() {
            continue; // external channel (pure input or output stream)
        }
        let fifo = &design.fifos[fi];
        // Only endpoints in one sequential domain are comparable.
        let comparable = |a: &Endpoint, b: &Endpoint| sequential_top || a.kernel == b.kernel;
        let first_reader = u
            .readers
            .iter()
            .filter(|r| u.writers.iter().any(|w| comparable(w, r)))
            .min_by_key(|r| r.order());
        let Some(r) = first_reader else { continue };
        // Same-loop read/write interleaves per iteration — the scheduler
        // orders it within the II; not a sequencing hazard.
        let before: Vec<&Endpoint> = u
            .writers
            .iter()
            .filter(|w| comparable(w, r) && w.order() < r.order())
            .collect();
        let any_same_loop = u
            .writers
            .iter()
            .any(|w| w.kernel == r.kernel && w.looop == r.looop);
        if before.is_empty() {
            if any_same_loop {
                continue;
            }
            // Every comparable writer runs after the first reader: the
            // read blocks on an empty FIFO and the FSM never reaches the
            // writer.
            out.push(finding(
                "VN04",
                Severity::Error,
                format!("fifo \"{}\"", fifo.name),
                format!(
                    "loop {}/{} reads \"{}\" before any sequenced writer has run; the \
                     blocking read starves and the controlling FSM never reaches the producer",
                    design.kernels[r.kernel].name,
                    design.kernels[r.kernel].loops[r.looop].name,
                    fifo.name,
                ),
                location(design, *r),
                u.writers.len(),
                0.0,
            ));
            continue;
        }
        let tokens: u64 = before.iter().map(|w| w.total_tokens(design)).sum();
        if tokens > fifo.depth as u64 {
            out.push(finding(
                "VN04",
                Severity::Error,
                format!("fifo \"{}\"", fifo.name),
                format!(
                    "{} token(s) are written to \"{}\" (depth {}) before the first sequenced \
                     read in loop {}/{}; the producer blocks on the full FIFO and the FSM \
                     never reaches the consumer",
                    tokens,
                    fifo.name,
                    fifo.depth,
                    design.kernels[r.kernel].name,
                    design.kernels[r.kernel].loops[r.looop].name,
                ),
                location(design, *before[0]),
                tokens.min(usize::MAX as u64) as usize,
                0.0,
            ));
        }
    }
}

/// VN05/VN06: dead channels and unobservable kernels.
fn check_dead(design: &Design, uses: &[ChannelUse], out: &mut Vec<Diagnostic>) {
    for (fi, u) in uses.iter().enumerate() {
        if u.writers.is_empty() && u.readers.is_empty() {
            let fifo = &design.fifos[fi];
            out.push(finding(
                "VN05",
                Severity::Warning,
                format!("fifo \"{}\"", fifo.name),
                format!(
                    "channel \"{}\" (depth {}) is neither read nor written by any kernel",
                    fifo.name, fifo.depth,
                ),
                Location::default(),
                0,
                0.0,
            ));
        }
    }

    let mut called = vec![false; design.kernels.len()];
    for kernel in &design.kernels {
        for lp in &kernel.loops {
            for (_, inst) in lp.body.iter() {
                if let OpKind::Call(k) = inst.kind {
                    if k.index() < called.len() {
                        called[k.index()] = true;
                    }
                }
            }
        }
    }
    for (ki, kernel) in design.kernels.iter().enumerate() {
        if called[ki] {
            continue; // a PE's results flow through its caller
        }
        let observable = kernel.loops.iter().any(|lp| {
            lp.body.iter().any(|(_, inst)| {
                matches!(
                    inst.kind,
                    OpKind::FifoWrite(_) | OpKind::Store(_) | OpKind::Output | OpKind::Call(_)
                )
            })
        });
        if !observable {
            out.push(finding(
                "VN06",
                Severity::Warning,
                format!("kernel \"{}\"", kernel.name),
                format!(
                    "kernel \"{}\" writes no channel, array or output and is never called; \
                     its computation is unobservable",
                    kernel.name,
                ),
                Location {
                    kernel: Some(kernel.name.clone()),
                    looop: None,
                    pragma: None,
                },
                0,
                0.0,
            ));
        }
    }
}

/// Runs every network rule over `design`, appending findings to `out`.
pub fn check_network(design: &Design, out: &mut Vec<Diagnostic>) {
    let uses = collect_channels(design);
    check_endpoints(design, &uses, out);
    check_array_races(design, out);
    check_channel_cycles(design, &uses, out);
    check_sequenced_capacity(design, &uses, out);
    check_dead(design, &uses, out);
}

#[cfg(test)]
mod tests {
    use super::*;
    use hlsb_ir::builder::DesignBuilder;
    use hlsb_ir::types::DataType;

    fn i32t() -> DataType {
        DataType::Int(32)
    }

    fn run(design: &hlsb_ir::Design) -> Vec<Diagnostic> {
        let mut out = Vec::new();
        check_network(design, &mut out);
        out
    }

    /// producer -> mid -> consumer over two internal channels.
    fn clean_pipeline() -> hlsb_ir::Design {
        let mut b = DesignBuilder::new("clean");
        let fin = b.fifo("in", i32t(), 2);
        let c1 = b.fifo("c1", i32t(), 2);
        let c2 = b.fifo("c2", i32t(), 2);
        let fout = b.fifo("out", i32t(), 2);
        b.dataflow();
        let mut k = b.kernel("producer");
        let mut l = k.pipelined_loop("p", 16, 1);
        let v = l.fifo_read(fin, i32t());
        l.fifo_write(c1, v);
        l.finish();
        k.finish();
        let mut k = b.kernel("mid");
        let mut l = k.pipelined_loop("m", 16, 1);
        let v = l.fifo_read(c1, i32t());
        let w = l.add(v, v);
        l.fifo_write(c2, w);
        l.finish();
        k.finish();
        let mut k = b.kernel("consumer");
        let mut l = k.pipelined_loop("c", 16, 1);
        let v = l.fifo_read(c2, i32t());
        l.fifo_write(fout, v);
        l.finish();
        k.finish();
        b.finish().expect("valid design")
    }

    #[test]
    fn clean_dataflow_pipeline_has_no_findings() {
        assert!(run(&clean_pipeline()).is_empty());
    }

    #[test]
    fn double_writer_fires_vn01_at_second_endpoint() {
        let mut d = clean_pipeline();
        // The producer's loop also writes c2 (index 2), racing mid's
        // writes. Downstream-directed, so no channel cycle is created.
        let fid = hlsb_ir::FifoId(2);
        let body = &mut d.kernels[0].loops[0].body;
        let v = body.push(OpKind::IndVar, i32t(), vec![]);
        body.push(OpKind::FifoWrite(fid), i32t(), vec![v]);
        let out = run(&d);
        assert_eq!(out.len(), 1, "{out:?}");
        assert_eq!(out[0].rule, "VN01");
        assert_eq!(out[0].severity, Severity::Error);
        // Endpoints are recorded in kernel order; the second one is mid's.
        assert_eq!(out[0].location.kernel.as_deref(), Some("mid"));
        assert_eq!(out[0].broadcast_factor, 2);
    }

    #[test]
    fn double_reader_fires_vn02() {
        let mut d = clean_pipeline();
        let fid = hlsb_ir::FifoId(1);
        let body = &mut d.kernels[2].loops[0].body;
        body.push(OpKind::FifoRead(fid), i32t(), vec![]);
        let out = run(&d);
        assert_eq!(out.len(), 1, "{out:?}");
        assert_eq!(out[0].rule, "VN02");
        assert_eq!(out[0].location.kernel.as_deref(), Some("consumer"));
    }

    #[test]
    fn repeated_access_within_one_loop_is_legal() {
        // A loop reading its input channel twice per iteration is a wider
        // stream, not a discipline violation.
        let mut b = DesignBuilder::new("wide");
        let fin = b.fifo("in", i32t(), 2);
        let fout = b.fifo("out", i32t(), 2);
        let mut k = b.kernel("top");
        let mut l = k.pipelined_loop("l", 16, 1);
        let a = l.fifo_read(fin, i32t());
        let c = l.fifo_read(fin, i32t());
        let s = l.add(a, c);
        l.fifo_write(fout, s);
        l.fifo_write(fout, a);
        l.finish();
        k.finish();
        let d = b.finish().expect("valid design");
        assert!(run(&d).is_empty());
    }

    #[test]
    fn concurrent_array_write_fires_vn03() {
        let mut b = DesignBuilder::new("race");
        let a = b.array("pool", i32t(), 64, hlsb_ir::Partition::None);
        let fin = b.fifo("in", i32t(), 2);
        let fout = b.fifo("out", i32t(), 2);
        b.dataflow();
        let mut k = b.kernel("writer");
        let mut l = k.pipelined_loop("w", 16, 1);
        let i = l.indvar("i");
        let v = l.fifo_read(fin, i32t());
        l.store(a, i, v);
        l.finish();
        k.finish();
        let mut k = b.kernel("reader");
        let mut l = k.pipelined_loop("r", 16, 1);
        let i = l.indvar("i");
        let v = l.load(a, i, i32t());
        l.fifo_write(fout, v);
        l.finish();
        k.finish();
        let d = b.finish().expect("valid design");
        let out = run(&d);
        assert_eq!(out.len(), 1, "{out:?}");
        assert_eq!(out[0].rule, "VN03");
        assert_eq!(out[0].location.kernel.as_deref(), Some("writer"));
    }

    #[test]
    fn sequential_array_sharing_is_legal() {
        let mut b = DesignBuilder::new("seq_share");
        let a = b.array("pool", i32t(), 64, hlsb_ir::Partition::None);
        let fin = b.fifo("in", i32t(), 2);
        let fout = b.fifo("out", i32t(), 2);
        let mut k = b.kernel("writer");
        let mut l = k.pipelined_loop("w", 16, 1);
        let i = l.indvar("i");
        let v = l.fifo_read(fin, i32t());
        l.store(a, i, v);
        l.finish();
        k.finish();
        let mut k = b.kernel("reader");
        let mut l = k.pipelined_loop("r", 16, 1);
        let i = l.indvar("i");
        let v = l.load(a, i, i32t());
        l.fifo_write(fout, v);
        l.finish();
        k.finish();
        let d = b.finish().expect("valid design");
        assert!(run(&d).is_empty());
    }

    #[test]
    fn channel_cycle_fires_vn04() {
        let mut b = DesignBuilder::new("cycle");
        let fin = b.fifo("in", i32t(), 2);
        let fwd = b.fifo("fwd", i32t(), 4);
        let back = b.fifo("back", i32t(), 4);
        let fout = b.fifo("out", i32t(), 2);
        b.dataflow();
        let mut k = b.kernel("a");
        let mut l = k.pipelined_loop("la", 16, 1);
        let x = l.fifo_read(fin, i32t());
        let y = l.fifo_read(back, i32t());
        let s = l.add(x, y);
        l.fifo_write(fwd, s);
        l.finish();
        k.finish();
        let mut k = b.kernel("bk");
        let mut l = k.pipelined_loop("lb", 16, 1);
        let v = l.fifo_read(fwd, i32t());
        l.fifo_write(back, v);
        l.fifo_write(fout, v);
        l.finish();
        k.finish();
        let d = b.finish().expect("valid design");
        let out = run(&d);
        assert_eq!(out.len(), 1, "{out:?}");
        assert_eq!(out[0].rule, "VN04");
        assert_eq!(out[0].broadcast_factor, 2);
        assert!(out[0].message.contains("8 slot(s)"), "{}", out[0].message);
    }

    #[test]
    fn read_before_sequenced_write_fires_vn04() {
        let mut b = DesignBuilder::new("order");
        let mid = b.fifo("mid", i32t(), 64);
        let fout = b.fifo("out", i32t(), 2);
        let mut k = b.kernel("top");
        let mut l = k.pipelined_loop("reads", 16, 1);
        let v = l.fifo_read(mid, i32t());
        l.fifo_write(fout, v);
        l.finish();
        let mut l = k.pipelined_loop("writes", 16, 1);
        let i = l.indvar("i");
        l.fifo_write(mid, i);
        l.finish();
        k.finish();
        let d = b.finish().expect("valid design");
        let out = run(&d);
        assert_eq!(out.len(), 1, "{out:?}");
        assert_eq!(out[0].rule, "VN04");
        assert_eq!(out[0].location.looop.as_deref(), Some("reads"));
    }

    #[test]
    fn sequenced_capacity_bound_is_checked() {
        let build = |depth: usize| {
            let mut b = DesignBuilder::new("cap");
            let mid = b.fifo("mid", i32t(), depth);
            let fout = b.fifo("out", i32t(), 2);
            let mut k = b.kernel("top");
            let mut l = k.pipelined_loop("writes", 16, 1);
            let i = l.indvar("i");
            l.fifo_write(mid, i);
            l.finish();
            let mut l = k.pipelined_loop("reads", 16, 1);
            let v = l.fifo_read(mid, i32t());
            l.fifo_write(fout, v);
            l.finish();
            k.finish();
            b.finish().expect("valid design")
        };
        // 16 tokens buffered before the reader starts: depth 16 clears,
        // depth 15 wedges the writer.
        assert!(run(&build(16)).is_empty());
        let out = run(&build(15));
        assert_eq!(out.len(), 1, "{out:?}");
        assert_eq!(out[0].rule, "VN04");
        assert!(out[0].message.contains("16 token(s)"), "{}", out[0].message);
        assert_eq!(out[0].location.looop.as_deref(), Some("writes"));
    }

    #[test]
    fn dead_channel_fires_vn05() {
        let mut d = clean_pipeline();
        d.fifos.push(hlsb_ir::Fifo {
            name: "orphan".into(),
            elem: i32t(),
            depth: 4,
        });
        let out = run(&d);
        assert_eq!(out.len(), 1, "{out:?}");
        assert_eq!(out[0].rule, "VN05");
        assert_eq!(out[0].severity, Severity::Warning);
    }

    #[test]
    fn unobservable_kernel_fires_vn06() {
        let mut b = DesignBuilder::new("deadk");
        let fin = b.fifo("in", i32t(), 2);
        let fout = b.fifo("out", i32t(), 2);
        let mut k = b.kernel("top");
        let mut l = k.pipelined_loop("l", 16, 1);
        let v = l.fifo_read(fin, i32t());
        l.fifo_write(fout, v);
        l.finish();
        k.finish();
        let mut k = b.kernel("idle");
        let mut l = k.pipelined_loop("spin", 16, 1);
        let i = l.indvar("i");
        let _ = l.add(i, i);
        l.finish();
        k.finish();
        let d = b.finish().expect("valid design");
        let out = run(&d);
        assert_eq!(out.len(), 1, "{out:?}");
        assert_eq!(out[0].rule, "VN06");
        assert_eq!(out[0].location.kernel.as_deref(), Some("idle"));
    }

    #[test]
    fn called_pe_without_sinks_is_not_dead() {
        let mut b = DesignBuilder::new("pe");
        let fin = b.fifo("in", i32t(), 2);
        let fout = b.fifo("out", i32t(), 2);
        let pe_id = b.next_kernel_id();
        let mut k = b.kernel("pe");
        k.set_static_latency(3);
        let mut l = k.pipelined_loop("body", 1, 1);
        let x = l.varying_input("x", i32t());
        let y = l.add(x, x);
        l.output("y", y);
        l.finish();
        k.finish();
        let mut k = b.kernel("top");
        let mut l = k.pipelined_loop("main", 16, 1);
        let v = l.fifo_read(fin, i32t());
        let r = l.call(pe_id, vec![v], i32t());
        l.fifo_write(fout, r);
        l.finish();
        k.finish();
        let d = b.finish().expect("valid design");
        assert!(run(&d).is_empty());
    }
}
