//! # hlsb-verify — static dataflow and schedule-contract verifier
//!
//! The correctness gate in front of the optimizing flow: where
//! `hlsb-lint` estimates how much frequency the paper's implicit
//! broadcasts will cost, this crate checks whether the surrounding
//! design and the decisions the flow made are *sound* at all. Two pass
//! families:
//!
//! 1. **Dataflow network analysis** ([`check_network`]) on the input
//!    [`hlsb_ir::Design`]: builds the kernel↔FIFO channel graph and
//!    statically detects single-writer/single-reader violations, shared
//!    arrays written by concurrent dataflow kernels (race), channel
//!    cycles and sequenced channels whose capacity cannot cover the
//!    in-flight token bound (deadlock), and dead channels / unobservable
//!    kernels. Runs in microseconds — cheap enough to pre-gate every
//!    candidate of a design-space exploration.
//!
//! 2. **Schedule-contract checking** ([`check_schedule`] /
//!    [`check_lower`]) on the flow's cached schedule and lowering
//!    artifacts: every broadcast-aware chain cut must land below the
//!    device-calibrated delay threshold (§4.1), every skid depth must
//!    satisfy the paper's `N+1` bound plus the registered-gate slack
//!    (§4.3), and every sync-prune decision must be covered by a waited
//!    module's static latency (§4.2).
//!
//! | rule | name | detects |
//! |---|---|---|
//! | `VN01` | fifo-multi-writer | a FIFO written from more than one loop |
//! | `VN02` | fifo-multi-reader | a FIFO read from more than one loop |
//! | `VN03` | array-race | an array written while concurrent kernels access it |
//! | `VN04` | channel-deadlock | a channel cycle, or capacity/order that cannot clear |
//! | `VN05` | dead-channel | a FIFO neither read nor written by any kernel |
//! | `VN06` | dead-kernel | a kernel with no observable effect that is never called |
//! | `VC01` | cut-threshold | a scheduled chain past the clock budget without a violation record |
//! | `VC02` | skid-depth | a skid buffer below the `N+1` + gate-slack bound |
//! | `VC03` | illegal-prune | a pruned done-signal not covered by the waited set |
//!
//! Findings use the shared [`hlsb_findings`] machinery, so verify and
//! lint reports render through the same table/JSONL/SARIF paths and
//! merge into one SARIF log with distinct rule IDs.
//!
//! # Example
//!
//! ```
//! use hlsb_ir::builder::DesignBuilder;
//! use hlsb_ir::types::DataType;
//!
//! # fn main() -> Result<(), hlsb_ir::IrError> {
//! let mut b = DesignBuilder::new("two_writers");
//! let f = b.fifo("ch", DataType::Int(32), 2);
//! let sink = b.fifo("out", DataType::Int(32), 2);
//! b.dataflow();
//! let mut k1 = b.kernel("producer_a");
//! let mut l = k1.pipelined_loop("w", 16, 1);
//! let v = l.indvar("i");
//! l.fifo_write(f, v);
//! l.finish();
//! k1.finish();
//! let mut k2 = b.kernel("producer_b");
//! let mut l = k2.pipelined_loop("w", 16, 1);
//! let v = l.indvar("i");
//! l.fifo_write(f, v);
//! l.finish();
//! k2.finish();
//! let mut k3 = b.kernel("consumer");
//! let mut l = k3.pipelined_loop("r", 32, 1);
//! let v = l.fifo_read(f, DataType::Int(32));
//! l.fifo_write(sink, v);
//! l.finish();
//! k3.finish();
//! let design = b.finish()?;
//!
//! let report = hlsb_verify::verify_network(&design, "VU9P", 300.0);
//! assert!(report.has_rule("VN01")); // two producers write `ch`
//! # Ok(())
//! # }
//! ```

pub mod contract;
pub mod network;

pub use contract::{check_lower, check_schedule, LoopContract};
pub use network::check_network;

use hlsb_findings::{Diagnostic, Location, Report, RuleMeta, Severity};
use hlsb_ir::Design;

/// SARIF driver name of this tool.
pub const TOOL: &str = "hlsb-verify";

/// The full rule registry, in id order.
pub const RULES: [RuleMeta; 9] = [
    RuleMeta {
        id: "VN01",
        name: "fifo-multi-writer",
        section: "§3.2",
        summary: "A FIFO channel is written from more than one loop",
        remedy: "dedicate one producer loop per channel (split the stream or add a merge kernel)",
    },
    RuleMeta {
        id: "VN02",
        name: "fifo-multi-reader",
        section: "§3.2",
        summary: "A FIFO channel is read from more than one loop",
        remedy: "dedicate one consumer loop per channel (duplicate the stream with a tee kernel)",
    },
    RuleMeta {
        id: "VN03",
        name: "array-race",
        section: "§3.2",
        summary: "An array is written while multiple concurrent dataflow kernels access it",
        remedy: "privatize the array per kernel or stream the data through a FIFO channel",
    },
    RuleMeta {
        id: "VN04",
        name: "channel-deadlock",
        section: "§3.2/§4.3",
        summary: "A channel cycle or write/read order whose FIFO capacity cannot clear",
        remedy: "break the channel cycle, reorder the loops, or deepen the FIFO to the token bound",
    },
    RuleMeta {
        id: "VN05",
        name: "dead-channel",
        section: "§3.2",
        summary: "A FIFO channel is neither read nor written by any kernel",
        remedy: "remove the unused channel declaration",
    },
    RuleMeta {
        id: "VN06",
        name: "dead-kernel",
        section: "§3.2",
        summary: "A kernel with no observable effect that no other kernel calls",
        remedy: "remove the kernel or connect its results to an output, store or channel",
    },
    RuleMeta {
        id: "VC01",
        name: "cut-threshold",
        section: "§4.1",
        summary: "A scheduled chain exceeds the clock budget without a recorded violation",
        remedy:
            "re-run broadcast-aware scheduling; the chain cut must land below clock_ns * margin",
    },
    RuleMeta {
        id: "VC02",
        name: "skid-depth",
        section: "§4.3",
        summary: "A skid buffer is shallower than the N+1 bound plus the registered-gate slack",
        remedy: "size each buffer to segment length + 1 + GATE_PIPELINE slots",
    },
    RuleMeta {
        id: "VC03",
        name: "illegal-prune",
        section: "§4.2",
        summary: "A pruned done-signal is not covered by a waited module's static latency",
        remedy: "only prune fixed-latency modules dominated by the waited set's longest latency",
    },
];

/// Metadata of all rules, in id order — the registry every verify
/// [`Report`] carries for SARIF rendering.
pub fn rule_metas() -> Vec<RuleMeta> {
    RULES.to_vec()
}

/// An empty verify report for the given analysis context.
pub fn report(design: &str, device: &str, clock_mhz: f64) -> Report {
    Report {
        tool: TOOL,
        design: design.to_string(),
        device: device.to_string(),
        clock_mhz,
        rules: rule_metas(),
        diagnostics: Vec::new(),
    }
}

/// Runs the full dataflow network analysis over `design` and returns the
/// findings as a sorted report. `device` and `clock_mhz` only label the
/// report — the network rules are structural and device-independent.
pub fn verify_network(design: &Design, device: &str, clock_mhz: f64) -> Report {
    let mut rep = report(&design.name, device, clock_mhz);
    network::check_network(design, &mut rep.diagnostics);
    rep.sort_worst_first();
    rep
}

/// Builds one finding of rule `id`, filling the rule metadata from the
/// registry.
///
/// # Panics
///
/// Panics if `id` is not a registered rule.
pub(crate) fn finding(
    id: &str,
    severity: Severity,
    subject: String,
    message: String,
    location: Location,
    factor: usize,
    est_penalty_ns: f64,
) -> Diagnostic {
    let meta = RULES
        .iter()
        .find(|r| r.id == id)
        .unwrap_or_else(|| panic!("unregistered verify rule {id}"));
    Diagnostic {
        rule: meta.id,
        rule_name: meta.name,
        severity,
        section: meta.section,
        subject,
        message,
        location,
        broadcast_factor: factor,
        est_penalty_ns,
        remedy: meta.remedy,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_is_complete_and_unique() {
        let ids: Vec<_> = RULES.iter().map(|r| r.id).collect();
        assert_eq!(
            ids,
            ["VN01", "VN02", "VN03", "VN04", "VN05", "VN06", "VC01", "VC02", "VC03"]
        );
        for r in &RULES {
            assert!(!r.name.is_empty());
            assert!(r.section.contains('§'), "{} cites no section", r.id);
            assert!(!r.summary.is_empty());
            assert!(!r.remedy.is_empty());
        }
    }

    #[test]
    fn report_carries_tool_and_registry() {
        let r = report("d", "dev", 300.0);
        assert_eq!(r.tool, "hlsb-verify");
        assert_eq!(r.rules.len(), RULES.len());
        assert!(r.is_clean());
        let sarif = r.to_sarif();
        assert!(sarif.contains("\"name\":\"hlsb-verify\""));
        assert!(sarif.contains("\"id\":\"VC03\""));
    }
}
