//! Session-level performance: what artifact reuse and parallel execution
//! buy on a Table-1-shaped sweep (several benchmarks × two option sets).
//!
//! Three configurations over the same flow list:
//!
//! * **cold** — a fresh single-threaded session per iteration (every
//!   artifact built from scratch; the pre-session behaviour);
//! * **warm** — a single-threaded session whose cache was pre-populated
//!   by one untimed sweep (front-end + schedule artifacts all hit);
//! * **parallel** — a fresh session per iteration with the host's full
//!   thread budget (set `HLSB_THREADS` to pin it).
//!
//! Numbers land in `EXPERIMENTS.md`. On a single-core host the parallel
//! row matches cold (the scoped-thread pool degenerates to one worker);
//! results are bit-identical across all three by construction.

use hlsb::{Flow, FlowSession, OptimizationOptions, PlaceEffort};
use hlsb_bench::{benchmark_flow, time_it};
use hlsb_benchmarks::all_benchmarks;

/// Table-1-shaped flow list, sized for bench iteration: the small/medium
/// benchmarks, orig + opt each, fast effort, one placement seed.
fn sweep_flows() -> Vec<Flow> {
    let mut flows = Vec::new();
    for bench in all_benchmarks() {
        // The two giant designs (500k+ LUTs) would dominate the timing
        // without changing the comparison.
        if bench.name.contains("Stencil") || bench.name.contains("Matrix") {
            continue;
        }
        for options in [OptimizationOptions::none(), OptimizationOptions::all()] {
            flows.push(
                benchmark_flow(&bench, options)
                    .place_effort(PlaceEffort::Fast)
                    .place_seeds(1),
            );
        }
    }
    flows
}

fn main() {
    println!("session");
    let flows = sweep_flows();
    println!(
        "sweep: {} flows, host threads {}",
        flows.len(),
        FlowSession::new().threads()
    );

    time_it("sweep_cold_1thread", 5, || {
        FlowSession::with_threads(1).run_many(&flows)
    });

    let warm = FlowSession::with_threads(1);
    warm.run_many(&flows);
    time_it("sweep_warm_cache_1thread", 5, || warm.run_many(&flows));
    let stats = warm.cache_stats();
    println!(
        "warm-cache session: {} hits / {} misses",
        stats.hits, stats.misses
    );

    time_it("sweep_cold_parallel", 5, || {
        FlowSession::new().run_many(&flows)
    });
}
