//! Scheduler performance: plain list scheduling vs the broadcast-aware
//! fix-point on the unrolled genome kernel.

use hlsb_bench::time_it;
use hlsb_delay::{CalibratedModel, HlsPredictedModel};
use hlsb_fabric::Device;
use hlsb_ir::unroll::unroll_loop;
use hlsb_sched::{broadcast_aware, schedule_loop};

fn main() {
    println!("scheduler");
    let design = hlsb_benchmarks::genome::design(64);
    let unrolled = unroll_loop(&design.kernels[0].loops[0]).looop;
    let predicted = HlsPredictedModel::new();
    let calibrated = CalibratedModel::characterize_analytic(&Device::ultrascale_plus_vu9p(), 1);

    time_it("list_schedule_genome64", 50, || {
        schedule_loop(&unrolled, &design, &predicted, 3.0)
    });
    time_it("broadcast_aware_genome64", 20, || {
        broadcast_aware(&unrolled, &design, &predicted, &calibrated, 3.0)
    });
    time_it("unroll_64x", 50, || {
        unroll_loop(&design.kernels[0].loops[0])
    });
}
