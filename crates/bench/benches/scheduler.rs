//! Scheduler performance: plain list scheduling vs the broadcast-aware
//! fix-point on the unrolled genome kernel.

use criterion::{criterion_group, criterion_main, Criterion};
use hlsb_delay::{CalibratedModel, HlsPredictedModel};
use hlsb_fabric::Device;
use hlsb_ir::unroll::unroll_loop;
use hlsb_sched::{broadcast_aware, schedule_loop};

fn bench_scheduler(c: &mut Criterion) {
    let design = hlsb_benchmarks::genome::design(64);
    let unrolled = unroll_loop(&design.kernels[0].loops[0]).looop;
    let predicted = HlsPredictedModel::new();
    let calibrated = CalibratedModel::characterize_analytic(&Device::ultrascale_plus_vu9p(), 1);

    let mut group = c.benchmark_group("scheduler");
    group.bench_function("list_schedule_genome64", |b| {
        b.iter(|| schedule_loop(&unrolled, &design, &predicted, 3.0))
    });
    group.bench_function("broadcast_aware_genome64", |b| {
        b.iter(|| broadcast_aware(&unrolled, &design, &predicted, &calibrated, 3.0))
    });
    group.bench_function("unroll_64x", |b| {
        b.iter(|| unroll_loop(&design.kernels[0].loops[0]))
    });
    group.finish();
}

criterion_group!(benches, bench_scheduler);
criterion_main!(benches);
