//! Physical-flow performance: placement, STA and the optimization passes
//! on a mid-size lowered netlist.

use hlsb_bench::time_it;
use hlsb_delay::HlsPredictedModel;
use hlsb_fabric::{Device, WireModel};
use hlsb_ir::unroll::unroll_loop;
use hlsb_place::{place_with, AnnealConfig};
use hlsb_rtlgen::{lower_design, RtlOptions, ScheduledDesign, ScheduledLoop};
use hlsb_sched::schedule_loop;
use hlsb_timing::{optimize_fanout, sta, FanoutOptions};

fn lowered_stencil() -> hlsb_netlist::Netlist {
    let design = hlsb_benchmarks::stencil::design(2);
    let model = HlsPredictedModel::new();
    let loops: Vec<Vec<ScheduledLoop>> = design
        .kernels
        .iter()
        .map(|k| {
            k.loops
                .iter()
                .map(|lp| {
                    let u = unroll_loop(lp).looop;
                    let schedule = schedule_loop(&u, &design, &model, 3.0);
                    ScheduledLoop {
                        looop: u,
                        schedule,
                        mem_plan: Default::default(),
                    }
                })
                .collect()
        })
        .collect();
    lower_design(
        &ScheduledDesign {
            design: &design,
            loops: &loops,
        },
        &RtlOptions::baseline(),
        &model,
    )
    .netlist
}

fn main() {
    println!("physical");
    let netlist = lowered_stencil();
    let device = Device::ultrascale_plus_vu9p();
    let wire = WireModel::for_device(&device);
    let fast = AnnealConfig {
        moves_per_cell: 12,
        min_moves: 3_000,
        max_moves: 60_000,
        cooling: 0.8,
        batches: 25,
    };

    time_it("place_stencil2_fast", 10, || {
        place_with(&netlist, &device, 7, fast)
    });

    let placement = place_with(&netlist, &device, 7, fast);
    time_it("sta_stencil2", 10, || sta(&netlist, &placement, &wire));
    time_it("fanout_opt_stencil2", 10, || {
        let mut nl = netlist.clone();
        let mut p = placement.clone();
        optimize_fanout(&mut nl, &mut p, FanoutOptions::default())
    });
}
