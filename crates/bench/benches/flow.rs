//! End-to-end flow performance: how long one implementation run takes,
//! baseline vs fully optimized.

use hlsb::{Flow, OptimizationOptions, PlaceEffort};
use hlsb_bench::time_it;
use hlsb_benchmarks::{genome, stream_buffer};
use hlsb_fabric::Device;

fn run(design: hlsb_ir::Design, options: OptimizationOptions) {
    Flow::new(design)
        .device(Device::ultrascale_plus_vu9p())
        .clock_mhz(300.0)
        .options(options)
        .place_effort(PlaceEffort::Fast)
        .place_seeds(1)
        .run()
        .unwrap();
}

fn main() {
    println!("flow");
    let genome_design = genome::design(32);
    time_it("genome32_baseline", 10, || {
        run(genome_design.clone(), OptimizationOptions::none())
    });
    time_it("genome32_optimized", 10, || {
        run(genome_design.clone(), OptimizationOptions::all())
    });
    let sb = stream_buffer::design(1 << 18);
    time_it("stream_buffer_256k_optimized", 10, || {
        run(sb.clone(), OptimizationOptions::all())
    });
}
