//! End-to-end flow performance: how long one implementation run takes,
//! baseline vs fully optimized.

use criterion::{criterion_group, criterion_main, Criterion};
use hlsb::{Flow, OptimizationOptions, PlaceEffort};
use hlsb_benchmarks::{genome, stream_buffer};
use hlsb_fabric::Device;

fn bench_flow(c: &mut Criterion) {
    let mut group = c.benchmark_group("flow");
    group.sample_size(10);

    let genome_design = genome::design(32);
    group.bench_function("genome32_baseline", |b| {
        b.iter(|| {
            Flow::new(genome_design.clone())
                .device(Device::ultrascale_plus_vu9p())
                .clock_mhz(300.0)
                .options(OptimizationOptions::none())
                .place_effort(PlaceEffort::Fast)
                .place_seeds(1)
                .run()
                .unwrap()
        })
    });
    group.bench_function("genome32_optimized", |b| {
        b.iter(|| {
            Flow::new(genome_design.clone())
                .device(Device::ultrascale_plus_vu9p())
                .clock_mhz(300.0)
                .options(OptimizationOptions::all())
                .place_effort(PlaceEffort::Fast)
                .place_seeds(1)
                .run()
                .unwrap()
        })
    });

    let sb = stream_buffer::design(1 << 18);
    group.bench_function("stream_buffer_256k_optimized", |b| {
        b.iter(|| {
            Flow::new(sb.clone())
                .device(Device::ultrascale_plus_vu9p())
                .clock_mhz(300.0)
                .options(OptimizationOptions::all())
                .place_effort(PlaceEffort::Fast)
                .place_seeds(1)
                .run()
                .unwrap()
        })
    });
    group.finish();
}

criterion_group!(benches, bench_flow);
criterion_main!(benches);
