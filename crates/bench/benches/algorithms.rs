//! Core algorithm micro-benchmarks: the min-area DP, the flow-control
//! simulators and the delay characterization.

use hlsb_bench::time_it;
use hlsb_ctrl::{min_area_split, required_depth, simulate_skid, simulate_stall};
use hlsb_delay::{characterize, CharacterizeConfig};
use hlsb_fabric::Device;

fn main() {
    println!("algorithms");

    // Min-area DP on a 500-stage spindle profile.
    let widths: Vec<u64> = (0..500)
        .map(|i| {
            if i % 61 == 56 {
                32
            } else {
                512 + (i % 7) as u64 * 64
            }
        })
        .collect();
    time_it("min_area_split_500", 50, || min_area_split(&widths));

    // Cycle-accurate control simulation, 10k items through 30 stages.
    let inputs: Vec<u64> = (0..10_000).collect();
    time_it("simulate_stall_10k", 50, || {
        simulate_stall(30, 2, &inputs, |c| c % 3 != 0, u64::MAX)
    });
    time_it("simulate_skid_10k", 50, || {
        simulate_skid(30, required_depth(30), &inputs, |c| c % 3 != 0, u64::MAX)
    });

    // Analytic skeleton characterization (3 classes x 11 factors).
    let dev = Device::ultrascale_plus_vu9p();
    time_it("characterize_analytic", 50, || {
        characterize(&dev, &CharacterizeConfig::default())
    });
}
