//! Core algorithm micro-benchmarks: the min-area DP, the flow-control
//! simulators and the delay characterization.

use criterion::{criterion_group, criterion_main, Criterion};
use hlsb_ctrl::{min_area_split, required_depth, simulate_skid, simulate_stall};
use hlsb_delay::{characterize, CharacterizeConfig};
use hlsb_fabric::Device;

fn bench_algorithms(c: &mut Criterion) {
    let mut group = c.benchmark_group("algorithms");

    // Min-area DP on a 500-stage spindle profile.
    let widths: Vec<u64> = (0..500)
        .map(|i| if i % 61 == 56 { 32 } else { 512 + (i % 7) as u64 * 64 })
        .collect();
    group.bench_function("min_area_split_500", |b| b.iter(|| min_area_split(&widths)));

    // Cycle-accurate control simulation, 10k items through 30 stages.
    let inputs: Vec<u64> = (0..10_000).collect();
    group.bench_function("simulate_stall_10k", |b| {
        b.iter(|| simulate_stall(30, 2, &inputs, |c| c % 3 != 0, u64::MAX))
    });
    group.bench_function("simulate_skid_10k", |b| {
        b.iter(|| simulate_skid(30, required_depth(30), &inputs, |c| c % 3 != 0, u64::MAX))
    });

    // Analytic skeleton characterization (3 classes x 11 factors).
    let dev = Device::ultrascale_plus_vu9p();
    group.bench_function("characterize_analytic", |b| {
        b.iter(|| characterize(&dev, &CharacterizeConfig::default()))
    });
    group.finish();
}

criterion_group!(benches, bench_algorithms);
criterion_main!(benches);
