//! Exports a benchmark's implemented netlist as structural Verilog.
//!
//! ```text
//! export <benchmark-name-substring> [none|data|skid|all] [output.v]
//! ```

use hlsb::{Flow, OptimizationOptions};
use hlsb_bench::SEED;
use hlsb_benchmarks::all_benchmarks;
use hlsb_netlist::to_verilog;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let name = args.get(1).map(String::as_str).unwrap_or("genome");
    let level = args.get(2).map(String::as_str).unwrap_or("all");
    let options = match level {
        "all" => OptimizationOptions::all(),
        "data" => OptimizationOptions::data_only(),
        "skid" => OptimizationOptions::skid_plain(),
        _ => OptimizationOptions::none(),
    };
    let bench = all_benchmarks()
        .into_iter()
        .find(|b| b.name.to_lowercase().contains(&name.to_lowercase()))
        .unwrap_or_else(|| panic!("no benchmark matching '{name}'"));

    let (result, netlist, _) = Flow::new(bench.design.clone())
        .device(bench.device.clone())
        .clock_mhz(bench.clock_mhz)
        .options(options)
        .seed(SEED)
        .run_detailed()
        .expect("flow");

    let verilog = to_verilog(&netlist);
    match args.get(3) {
        Some(path) => {
            std::fs::write(path, &verilog).expect("write verilog");
            eprintln!(
                "wrote {} ({} cells, Fmax {:.0} MHz) to {path}",
                bench.name,
                netlist.cell_count(),
                result.fmax_mhz
            );
        }
        None => print!("{verilog}"),
    }
}
