//! `report` — noise-aware perf-regression sentinel over the run ledger.
//!
//! ```text
//! report --ledger <path> [--baseline <path>] [--window <n>]
//!        [--max-ratio <r>] [--write-baseline <path>]
//! ```
//!
//! Reads the run ledger (as written by `hlsb-serve --ledger`,
//! `dse --ledger`, `explore --ledger`, or any `FlowSession` with a
//! ledger attached) and checks the most recent `--window` records
//! (default 5) against a committed baseline. Stage rules compare the
//! *median* stage latency of the window against `median_ms × max_ratio`
//! — a single noisy sample cannot trip the gate, a sustained slowdown
//! does. Rate rules put a floor under cache effectiveness (e.g.
//! store-hit rate per job). Missing data fails closed: a rule with no
//! matching ledger records is a regression, not a skip.
//!
//! `--write-baseline` derives a fresh baseline from the ledger instead
//! of checking one: per-(tool, design, stage) medians with headroom
//! `--max-ratio` (default 4), plus hit-rate floors at half the observed
//! rate. Review and commit the file; `--baseline` then gates CI.
//!
//! Exit status is 2 on usage errors, 1 when any check regresses,
//! 0 when all checks pass.

use hlsb_telemetry::{check, Baseline, RunLedger};
use std::process::ExitCode;

struct Args {
    ledger: String,
    baseline: Option<String>,
    window: usize,
    max_ratio: f64,
    write_baseline: Option<String>,
}

fn usage() {
    eprintln!(
        "usage: report --ledger <path> [--baseline <path>] [--window <n>]\n\
         \x20             [--max-ratio <r>] [--write-baseline <path>]"
    );
}

fn parse_args() -> Result<Args, String> {
    let mut ledger = None;
    let mut args = Args {
        ledger: String::new(),
        baseline: None,
        window: 5,
        max_ratio: 4.0,
        write_baseline: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--ledger" => ledger = Some(it.next().ok_or("--ledger needs a path")?),
            "--baseline" => args.baseline = Some(it.next().ok_or("--baseline needs a path")?),
            "--window" => {
                let w = it.next().ok_or("--window needs a value")?;
                args.window = w.parse().map_err(|_| format!("bad window `{w}`"))?;
                if args.window == 0 {
                    return Err("window must be at least 1".into());
                }
            }
            "--max-ratio" => {
                let r = it.next().ok_or("--max-ratio needs a value")?;
                args.max_ratio = r.parse().map_err(|_| format!("bad max-ratio `{r}`"))?;
                if !(args.max_ratio.is_finite() && args.max_ratio >= 1.0) {
                    return Err(format!("bad max-ratio `{r}` (want >= 1)"));
                }
            }
            "--write-baseline" => {
                args.write_baseline = Some(it.next().ok_or("--write-baseline needs a path")?);
            }
            "--help" | "-h" => return Err(String::new()),
            f => return Err(format!("unknown flag `{f}`")),
        }
    }
    args.ledger = ledger.ok_or("--ledger is required")?;
    if args.baseline.is_none() && args.write_baseline.is_none() {
        return Err("need --baseline to check or --write-baseline to derive one".into());
    }
    Ok(args)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            if !e.is_empty() {
                eprintln!("report: {e}");
            }
            usage();
            return ExitCode::from(2);
        }
    };

    let records = match RunLedger::load(&args.ledger) {
        Ok(records) => records,
        Err(e) => {
            eprintln!("report: cannot read ledger {}: {e}", args.ledger);
            return ExitCode::from(2);
        }
    };

    if let Some(path) = &args.write_baseline {
        let baseline = Baseline::from_records(&records, args.window, args.max_ratio);
        if baseline.stages.is_empty() && baseline.rates.is_empty() {
            eprintln!("report: ledger {} yields an empty baseline", args.ledger);
            return ExitCode::from(2);
        }
        if let Err(e) = std::fs::write(path, baseline.render()) {
            eprintln!("report: cannot write {path}: {e}");
            return ExitCode::FAILURE;
        }
        println!(
            "wrote baseline with {} stage rule(s) and {} rate rule(s) to {path}",
            baseline.stages.len(),
            baseline.rates.len()
        );
        if args.baseline.is_none() {
            return ExitCode::SUCCESS;
        }
    }

    let path = args.baseline.as_deref().expect("checked in parse_args");
    let text = match std::fs::read_to_string(path) {
        Ok(text) => text,
        Err(e) => {
            eprintln!("report: cannot read baseline {path}: {e}");
            return ExitCode::from(2);
        }
    };
    let baseline = match Baseline::parse(&text) {
        Ok(baseline) => baseline,
        Err(e) => {
            eprintln!("report: cannot parse baseline {path}: {e}");
            return ExitCode::from(2);
        }
    };

    let report = check(&records, &baseline, args.window);
    print!("{}", report.render());
    if report.regressions() > 0 {
        eprintln!("report: {} check(s) regressed", report.regressions());
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
