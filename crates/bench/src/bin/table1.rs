//! Regenerates Table 1: timing improvements and post-implementation
//! resources on all nine benchmarks, original vs fully optimized.

use hlsb::OptimizationOptions;
use hlsb_bench::{run_benchmark, table1_row};
use hlsb_benchmarks::all_benchmarks;

fn main() {
    println!("Table 1: timing improvements and post-implementation resources");
    println!(
        "{:<20} {:<20} {:<24} {:>7} {:>7} {:>7} {:>7} {:>4} {:>4} {:>6}",
        "Application",
        "Broadcast type",
        "Target FPGA",
        "LUT%",
        "FF%",
        "BRAM%",
        "DSP%",
        "Orig",
        "Opt",
        "Diff"
    );
    println!("{:-<134}", "");

    let mut gains = Vec::new();
    for bench in all_benchmarks() {
        let orig = run_benchmark(&bench, OptimizationOptions::none());
        let opt = run_benchmark(&bench, OptimizationOptions::all());
        println!(
            "{}",
            table1_row(
                bench.name,
                bench.broadcast_type,
                &bench.device.name,
                &orig,
                &opt
            )
        );
        gains.push(opt.gain_over(&orig));
    }
    let avg = gains.iter().sum::<f64>() / gains.len() as f64;
    println!("{:-<134}", "");
    println!("average frequency gain: {avg:+.0}%  (paper: +53%)");
}
