//! Regenerates Table 1: timing improvements and post-implementation
//! resources on all nine benchmarks, original vs fully optimized.
//!
//! The 18 flows (9 benchmarks × {orig, opt}) run through one
//! [`hlsb::FlowSession`], which executes them in parallel up to the
//! thread budget (`HLSB_THREADS` to override) and shares front-end
//! artifacts between the variants of each benchmark.

use hlsb::{FlowSession, OptimizationOptions};
use hlsb_bench::{benchmark_flow, expect_all, pass_summary, table1_row};
use hlsb_benchmarks::all_benchmarks;

fn main() {
    println!("Table 1: timing improvements and post-implementation resources");
    println!(
        "{:<20} {:<20} {:<24} {:>7} {:>7} {:>7} {:>7} {:>4} {:>4} {:>6}",
        "Application",
        "Broadcast type",
        "Target FPGA",
        "LUT%",
        "FF%",
        "BRAM%",
        "DSP%",
        "Orig",
        "Opt",
        "Diff"
    );
    println!("{:-<134}", "");

    let benches = all_benchmarks();
    let mut flows = Vec::new();
    let mut labels = Vec::new();
    for bench in &benches {
        for (tag, options) in [
            ("orig", OptimizationOptions::none()),
            ("opt", OptimizationOptions::all()),
        ] {
            flows.push(benchmark_flow(bench, options));
            labels.push(format!("{} ({tag})", bench.name));
        }
    }

    let t0 = std::time::Instant::now();
    let session = FlowSession::new();
    let results = expect_all(&labels, session.run_many(&flows));
    let wall = t0.elapsed().as_secs_f64();

    let mut gains = Vec::new();
    for (bench, pair) in benches.iter().zip(results.chunks(2)) {
        let (orig, opt) = (&pair[0], &pair[1]);
        println!(
            "{}",
            table1_row(
                bench.name,
                bench.broadcast_type,
                &bench.device.name,
                orig,
                opt
            )
        );
        gains.push(opt.gain_over(orig));
    }
    let avg = gains.iter().sum::<f64>() / gains.len() as f64;
    println!("{:-<134}", "");
    println!("average frequency gain: {avg:+.0}%  (paper: +53%)");
    println!();
    println!("{}", pass_summary(&results, &session));
    println!("wall time: {wall:.1} s");
}
