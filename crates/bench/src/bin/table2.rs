//! Regenerates Table 2: the 512-wide vector product under the three
//! pipeline-control implementations (Stall / Skid Buffer / Min-Area Skid).

use hlsb::OptimizationOptions;
use hlsb_bench::run_benchmark;
use hlsb_benchmarks::{vector_arith, Benchmark};
use hlsb_fabric::Device;

fn main() {
    // Table 2 studies the pipeline-control styles on the plain 512-wide
    // vector product (the sync-oriented PE version is the Table 1 row).
    let bench = Benchmark {
        name: "512-wide vector product",
        broadcast_type: "Pipe. Ctrl.",
        design: vector_arith::dot_scale_pipeline(512),
        device: Device::ultrascale_plus_vu9p(),
        clock_mhz: 333.0,
    };
    println!("Table 2: experiment results on 512-wide vector product");
    println!(
        "{:<22} {:>10} {:>6} {:>6} {:>7} {:>6} {:>12}",
        "Implementation", "Frequency", "LUT", "FF", "BRAM", "DSP", "skid bits"
    );
    println!("{:-<75}", "");

    let rows: [(&str, OptimizationOptions); 3] = [
        ("Stall", OptimizationOptions::none()),
        ("Skid Buffer", OptimizationOptions::skid_plain()),
        (
            "Min-Area Skid Buf.",
            OptimizationOptions {
                skid_buffer: true,
                min_area_skid: true,
                ..OptimizationOptions::default()
            },
        ),
    ];
    for (name, options) in rows {
        let r = run_benchmark(&bench, options);
        println!(
            "{:<22} {:>7.0} MHz {:>5.0}% {:>5.0}% {:>6.2}% {:>5.0}% {:>12}",
            name,
            r.fmax_mhz,
            r.utilization.lut_pct,
            r.utilization.ff_pct,
            r.utilization.bram_pct,
            r.utilization.dsp_pct,
            r.lower_info.skid_buffer_bits,
        );
    }
    println!("{:-<75}", "");
    println!("paper: Stall 195 MHz / Skid 299 MHz (12% BRAM) / Min-Area 301 MHz (0.02% BRAM)");
}
