//! Regenerates Fig. 9: Vivado-HLS-estimated delay, our calibrated delay
//! and the raw experimental delay for three operator classes across
//! broadcast factors.
//!
//! Pass `--placed` to use the slow placed back-end (real placement + STA
//! per skeleton) instead of the analytic model.

use hlsb::delay::{
    characterize, classify, CalibratedModel, CharacterizeConfig, DelayModel, HlsPredictedModel,
    OpClass,
};
use hlsb::fabric::Device;
use hlsb::ir::{ArrayId, DataType, OpKind};

fn main() {
    let placed = std::env::args().any(|a| a == "--placed");
    let device = Device::ultrascale_plus_vu9p();
    let config = CharacterizeConfig {
        placed,
        ..CharacterizeConfig::default()
    };
    let ch = characterize(&device, &config);
    let calibrated = CalibratedModel::from_characterization(&ch);
    let predicted = HlsPredictedModel::new();

    let cases: [(&str, OpKind, DataType, OpClass); 3] = [
        ("int add", OpKind::Add, DataType::Int(32), OpClass::IntAlu),
        (
            "buffer access",
            OpKind::Store(ArrayId(0)),
            DataType::Int(32),
            OpClass::Mem,
        ),
        (
            "float mul",
            OpKind::Mul,
            DataType::Float32,
            OpClass::FloatMul,
        ),
    ];

    println!(
        "Fig. 9: delay vs broadcast factor ({} back-end)",
        if placed { "placed" } else { "analytic" }
    );
    for (name, op, ty, class) in cases {
        println!("\n-- {name} ({}) --", classify(op, ty));
        println!(
            "{:>6} {:>14} {:>16} {:>12}",
            "bf", "HLS est (ns)", "calibrated (ns)", "raw (ns)"
        );
        let curve = ch.curve(class).expect("characterized");
        for point in curve {
            println!(
                "{:>6} {:>14.2} {:>16.2} {:>12.2}",
                point.bf,
                predicted.delay_ns(op, ty, point.bf),
                calibrated.delay_ns(op, ty, point.bf),
                point.raw_ns,
            );
        }
    }
    println!(
        "\nexpected shape: add/buffer calibrated ≫ flat prediction at large bf;\n\
         float-mul prediction is conservative (above raw) until very large bf."
    );
}
