//! `serve` — compile-farm load generator and throughput harness.
//!
//! ```text
//! serve [--load <n>] [--designs <name,...>|all] [--dirty-every <k>]
//!       [--options <mask>] [--repeat <r>] [--passes <p>]
//!       [--workers <n>] [--wave <n>] [--store <dir>]
//!       [--timing-out <file>] [--emit] [--quiet]
//! ```
//!
//! Generates a deterministic job stream — `--load n` fuzzer-generated
//! designs (`fuzz:0..n`), and/or the named benchmarks — and drives it
//! through the [`hlsb_serve::JobServer`], measuring throughput. With
//! `--passes p` the same stream is served `p` times, each pass by a
//! *fresh* server over the same store, so pass 1 is the cold-store cost
//! and later passes the warm-store cost (the EXPERIMENTS.md throughput
//! curve: cold vs warm × worker count). `--repeat r` duplicates the
//! stream in-pass to measure in-run dedup instead. With `--emit` the
//! generated job lines are printed instead of served (pipe them to
//! `hlsb-serve`). `--timing-out` appends one JSONL row per pass — the
//! tracked throughput artifact.

use std::io::Write;
use std::process::ExitCode;
use std::sync::Arc;

use hlsb_serve::{JobServer, JobStatus, ServeConfig};
use hlsb_store::ArtifactStore;

struct Args {
    load: usize,
    designs: Vec<String>,
    dirty_every: usize,
    options: String,
    repeat: usize,
    passes: usize,
    workers: usize,
    wave: usize,
    store: Option<String>,
    timing_out: Option<String>,
    emit: bool,
    quiet: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        load: 0,
        designs: Vec::new(),
        dirty_every: 0,
        options: "none".to_string(),
        repeat: 1,
        passes: 1,
        workers: 0,
        wave: 32,
        store: None,
        timing_out: None,
        emit: false,
        quiet: false,
    };
    let usage = "usage: serve [--load <n>] [--designs <name,...>|all] [--dirty-every <k>]\n\
                 \x20            [--options <mask>] [--repeat <r>] [--passes <p>]\n\
                 \x20            [--workers <n>] [--wave <n>] [--store <dir>]\n\
                 \x20            [--timing-out <file>] [--emit] [--quiet]";
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        let num = |name: &str, it: &mut dyn Iterator<Item = String>| -> Result<usize, String> {
            let v = it.next().ok_or(format!("{name} needs a value"))?;
            v.parse().map_err(|_| format!("bad {name} value {v}"))
        };
        match arg.as_str() {
            "--load" => args.load = num("--load", &mut it)?,
            "--designs" => {
                let v = it.next().ok_or("--designs needs a value")?;
                if v == "all" {
                    args.designs = hlsb_benchmarks::all_benchmarks()
                        .iter()
                        .map(|b| b.design.name.clone())
                        .collect();
                } else {
                    args.designs = v.split(',').map(str::to_string).collect();
                }
            }
            "--dirty-every" => args.dirty_every = num("--dirty-every", &mut it)?,
            "--options" => args.options = it.next().ok_or("--options needs a value")?,
            "--repeat" => args.repeat = num("--repeat", &mut it)?.max(1),
            "--passes" => args.passes = num("--passes", &mut it)?.max(1),
            "--workers" => args.workers = num("--workers", &mut it)?,
            "--wave" => args.wave = num("--wave", &mut it)?.max(1),
            "--store" => args.store = Some(it.next().ok_or("--store needs a value")?),
            "--timing-out" => {
                args.timing_out = Some(it.next().ok_or("--timing-out needs a value")?);
            }
            "--emit" => args.emit = true,
            "--quiet" => args.quiet = true,
            "--help" | "-h" => return Err(usage.to_string()),
            other => return Err(format!("unknown argument `{other}` (try --help)")),
        }
    }
    if args.load == 0 && args.designs.is_empty() {
        return Err(format!(
            "nothing to serve: give --load and/or --designs\n{usage}"
        ));
    }
    if hlsb_serve::parse_options(&args.options).is_none() {
        return Err(format!("bad --options mask `{}`", args.options));
    }
    Ok(args)
}

/// The deterministic job stream for one pass: named benchmarks first,
/// then the fuzz load, the whole stream duplicated `repeat` times.
fn job_lines(args: &Args) -> Vec<String> {
    let mut base = Vec::new();
    for design in &args.designs {
        base.push(format!(
            "{{\"design\":\"{}\",\"options\":\"{}\"}}",
            design, args.options
        ));
    }
    for i in 0..args.load {
        let design = if args.dirty_every > 0 && (i + 1) % args.dirty_every == 0 {
            format!("dirty:{i}")
        } else {
            format!("fuzz:{i}")
        };
        base.push(format!(
            "{{\"design\":\"{design}\",\"options\":\"{}\"}}",
            args.options
        ));
    }
    let mut lines = Vec::with_capacity(base.len() * args.repeat);
    for _ in 0..args.repeat {
        lines.extend(base.iter().cloned());
    }
    lines
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(args) => args,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::from(2);
        }
    };
    let lines = job_lines(&args);
    if args.emit {
        let stdout = std::io::stdout();
        let mut out = std::io::BufWriter::new(stdout.lock());
        for line in &lines {
            let _ = writeln!(out, "{line}");
        }
        return ExitCode::SUCCESS;
    }

    let store = match &args.store {
        Some(dir) => match ArtifactStore::open(dir) {
            Ok(store) => Some(Arc::new(store)),
            Err(e) => {
                eprintln!("serve: cannot open store {dir}: {e}");
                return ExitCode::from(2);
            }
        },
        None => None,
    };
    let cfg = ServeConfig {
        workers: args.workers,
        wave: args.wave,
        verify: true,
        trace: false,
    };

    let mut timing_rows = Vec::new();
    let mut any_failed = false;
    let mut first_pass_lines: Vec<String> = Vec::new();
    for pass in 0..args.passes {
        // A fresh server per pass: pass 0 measures the cold-store cost,
        // later passes the warm-store cost (in-run dedup reset).
        let mut server = match &store {
            Some(store) => JobServer::with_store(cfg.clone(), store.clone()),
            None => JobServer::new(cfg.clone()),
        };
        let stdout = std::io::stdout();
        let mut out = std::io::BufWriter::new(stdout.lock());
        let mut pass_lines = Vec::new();
        let summary = server.process(lines.iter().cloned(), |outcome| {
            any_failed |= outcome.status == JobStatus::Failed;
            let line = outcome.to_json();
            if !args.quiet {
                let _ = writeln!(out, "{line}");
            }
            pass_lines.push(line);
        });
        let _ = out.flush();
        if pass == 0 {
            first_pass_lines = pass_lines;
        } else if pass_lines != first_pass_lines {
            eprintln!("serve: pass {pass} outcome stream DIVERGED from pass 0");
            any_failed = true;
        }
        let phase = if pass == 0 { "cold" } else { "warm" };
        eprintln!("pass {pass} ({phase}): {}", summary.render());
        // Self-explaining throughput rows: the hit-rate and wave-latency
        // quantiles make results/serve.txt readable without cross-
        // referencing the summary stream. `verify_rejected` is named for
        // what it counts — jobs turned away by the sign-off contract,
        // not scheduler drops.
        let store_hit_rate = if summary.jobs > 0 {
            summary.store_hits as f64 / summary.jobs as f64
        } else {
            0.0
        };
        let metrics = server.metrics();
        let wave_ms = metrics.histogram("serve.wave-ms");
        let (wave_p50_ms, wave_p95_ms) = match wave_ms {
            Some(h) => (h.quantile(0.5), h.quantile(0.95)),
            None => (0.0, 0.0),
        };
        timing_rows.push(format!(
            "{{\"pass\":{pass},\"phase\":\"{phase}\",\"workers\":{},\"jobs\":{},\
             \"wall_ms\":{:.1},\"jobs_per_s\":{:.2},\"evaluated\":{},\"store_hits\":{},\
             \"dedup_hits\":{},\"verify_rejected\":{},\"failed\":{},\
             \"store_hit_rate\":{:.3},\"wave_p50_ms\":{:.1},\"wave_p95_ms\":{:.1}}}",
            server.session().threads(),
            summary.jobs,
            summary.wall_ms,
            summary.jobs_per_sec(),
            summary.evaluated,
            summary.store_hits,
            summary.dedup_hits,
            summary.rejected,
            summary.failed,
            store_hit_rate,
            wave_p50_ms,
            wave_p95_ms,
        ));
    }

    if let Some(path) = &args.timing_out {
        let mut file = match std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(path)
        {
            Ok(f) => f,
            Err(e) => {
                eprintln!("serve: cannot open {path}: {e}");
                return ExitCode::FAILURE;
            }
        };
        for row in &timing_rows {
            if writeln!(file, "{row}").is_err() {
                eprintln!("serve: cannot write {path}");
                return ExitCode::FAILURE;
            }
        }
        eprintln!("appended {} timing rows to {path}", timing_rows.len());
    }
    if any_failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
