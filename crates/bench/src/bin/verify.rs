//! `verify` — run the static dataflow/contract verifier on the paper's
//! benchmarks (or any subset), plus an optional fuzz corpus, without
//! placing or timing anything.
//!
//! ```text
//! verify [--design <name>|all] [--target vu9p|zc706|u50|virtex7]
//!        [--clock <mhz>] [--format table|jsonl|sarif]
//!        [--deny <severity>] [--fuzz <n>] [--with-lint] [--list]
//! ```
//!
//! Each benchmark goes through the network analysis *and* the schedule
//! contracts: the flow's own probe stage runs with [`Flow::verify`]
//! enabled, so the contract findings audit exactly the cached schedule
//! artifacts an implementation run would use. `--fuzz <n>` additionally
//! network-checks the first `n` generated fuzz designs (the clean
//! generator — any finding there is an analyzer or generator bug).
//! `--with-lint` also lints every selected benchmark; with
//! `--format sarif` both tools land in one SARIF document as separate
//! runs with distinct rule IDs.
//!
//! Exit status is 2 on usage errors, 1 if any finding is at or above the
//! `--deny` severity (default `error`), 0 otherwise.

use hlsb::error::FlowError;
use hlsb::{Flow, FlowSession, OptimizationOptions};
use hlsb_benchmarks::{all_benchmarks, Benchmark};
use hlsb_fabric::Device;
use hlsb_findings::{render_sarif, Report, Severity};
use std::process::ExitCode;

struct Args {
    design: String,
    target: Option<Device>,
    clock_mhz: Option<f64>,
    format: Format,
    deny: Severity,
    fuzz: usize,
    with_lint: bool,
    list: bool,
}

#[derive(PartialEq, Clone, Copy)]
enum Format {
    Table,
    Jsonl,
    Sarif,
}

fn device_by_name(s: &str) -> Option<Device> {
    match s {
        "vu9p" => Some(Device::ultrascale_plus_vu9p()),
        "zc706" => Some(Device::zynq_zc706()),
        "u50" => Some(Device::alveo_u50()),
        "virtex7" => Some(Device::virtex7()),
        _ => None,
    }
}

fn usage() {
    eprintln!(
        "usage: verify [--design <name>|all] [--target vu9p|zc706|u50|virtex7]\n\
         \x20             [--clock <mhz>] [--format table|jsonl|sarif]\n\
         \x20             [--deny info|warning|error] [--fuzz <n>] [--with-lint] [--list]"
    );
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        design: "all".into(),
        target: None,
        clock_mhz: None,
        format: Format::Table,
        deny: Severity::Error,
        fuzz: 0,
        with_lint: false,
        list: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--design" => {
                args.design = it.next().ok_or("--design needs a value")?;
            }
            "--target" => {
                let t = it.next().ok_or("--target needs a value")?;
                args.target = Some(device_by_name(&t).ok_or(format!("unknown target `{t}`"))?);
            }
            "--clock" => {
                let c = it.next().ok_or("--clock needs a value")?;
                let mhz: f64 = c.parse().map_err(|_| format!("bad clock `{c}`"))?;
                if !(mhz.is_finite() && mhz > 0.0) {
                    return Err(format!("bad clock `{c}`"));
                }
                args.clock_mhz = Some(mhz);
            }
            "--format" => {
                args.format = match it.next().ok_or("--format needs a value")?.as_str() {
                    "table" => Format::Table,
                    "jsonl" => Format::Jsonl,
                    "sarif" => Format::Sarif,
                    f => return Err(format!("unknown format `{f}`")),
                };
            }
            "--deny" => {
                let s = it.next().ok_or("--deny needs a value")?;
                args.deny = Severity::parse(&s).ok_or(format!("unknown severity `{s}`"))?;
            }
            "--fuzz" => {
                let n = it.next().ok_or("--fuzz needs a value")?;
                args.fuzz = n.parse().map_err(|_| format!("bad fuzz count `{n}`"))?;
            }
            "--with-lint" => args.with_lint = true,
            "--list" => args.list = true,
            "--help" | "-h" => return Err(String::new()),
            f => return Err(format!("unknown flag `{f}`")),
        }
    }
    Ok(args)
}

/// Network analysis plus the schedule contracts, via the flow's own
/// probe stage — a rejected probe yields the report from the error, so
/// dirty designs still render all their findings.
fn verify_benchmark(session: &FlowSession, bench: &Benchmark, args: &Args) -> Report {
    let device = args.target.clone().unwrap_or_else(|| bench.device.clone());
    let flow = Flow::new(bench.design.clone())
        .device(device.clone())
        .clock_mhz(args.clock_mhz.unwrap_or(bench.clock_mhz))
        .options(OptimizationOptions::all())
        .verify(true);
    match session.probe(&flow) {
        Ok(probe) => probe.verify.expect("probe ran with Flow::verify on"),
        Err(FlowError::VerifyRejected { report }) => *report,
        Err(e) => {
            // A structurally broken benchmark cannot be probed at all;
            // surface the failure as an empty report plus a stderr note.
            eprintln!("verify: probe of `{}` failed: {e}", bench.design.name);
            hlsb_verify::report(
                &bench.design.name,
                &device.name,
                args.clock_mhz.unwrap_or(bench.clock_mhz),
            )
        }
    }
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            if !e.is_empty() {
                eprintln!("verify: {e}");
            }
            usage();
            return ExitCode::from(2);
        }
    };

    let benches = all_benchmarks();
    if args.list {
        for b in &benches {
            println!(
                "{:<16} {:<22} {}",
                b.design.name, b.broadcast_type, b.device.name
            );
        }
        return ExitCode::SUCCESS;
    }

    let selected: Vec<Benchmark> = if args.design == "all" {
        benches
    } else {
        match hlsb_bench::find_benchmark(&args.design) {
            Some(b) => vec![b],
            None => {
                eprintln!(
                    "verify: no benchmark matching `{}` (try --list; one of: {})",
                    args.design,
                    benches
                        .iter()
                        .map(|b| b.design.name.as_str())
                        .collect::<Vec<_>>()
                        .join(", ")
                );
                return ExitCode::from(2);
            }
        }
    };

    let session = FlowSession::new();
    let mut reports: Vec<Report> = selected
        .iter()
        .map(|b| verify_benchmark(&session, b, &args))
        .collect();
    for seed in 0..args.fuzz as u64 {
        let d = hlsb_sim::random_design(seed);
        reports.push(hlsb_verify::verify_network(&d, "fuzz", 300.0));
    }
    if args.with_lint {
        for b in &selected {
            let device = args.target.clone().unwrap_or_else(|| b.device.clone());
            let config = hlsb_lint::LintConfig {
                clock_mhz: args.clock_mhz.unwrap_or(b.clock_mhz),
                ..hlsb_lint::LintConfig::default()
            };
            reports.push(hlsb_lint::lint_with(&b.design, &device, config));
        }
    }

    match args.format {
        Format::Table => {
            for r in &reports {
                print!("{}", r.to_table());
                println!();
            }
        }
        Format::Jsonl => {
            for r in &reports {
                print!("{}", r.to_jsonl());
            }
        }
        // One SARIF document; verify and lint reports group into
        // separate runs keyed by tool.
        Format::Sarif => println!("{}", render_sarif(&reports)),
    }

    if reports.iter().any(|r| r.count_at_least(args.deny) > 0) {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
