//! Regenerates Fig. 19: achieved frequency of the stream-buffer design
//! across buffer sizes, for the original design, the data-broadcast-only
//! optimization, and the full data + control optimization.

use hlsb::{Flow, OptimizationOptions};
use hlsb_bench::SEED;
use hlsb_benchmarks::stream_buffer;

fn main() {
    let device = hlsb::fabric::Device::ultrascale_plus_vu9p();
    println!("Fig. 19: stream buffer Fmax vs buffer size");
    println!(
        "{:>12} {:>7} {:>12} {:>12} {:>16}",
        "words", "BRAMs", "orig (MHz)", "data (MHz)", "data+ctrl (MHz)"
    );

    for words in [1 << 14, 1 << 16, 1 << 18, 1 << 20, 2_306_048] {
        let design = stream_buffer::design(words);
        let brams = design.arrays[0].bram_units();
        let run = |opts| {
            Flow::new(design.clone())
                .device(device.clone())
                .clock_mhz(333.0)
                .options(opts)
                .seed(SEED)
                .run()
                .expect("flow")
        };
        let orig = run(OptimizationOptions::none());
        let data = run(OptimizationOptions::data_only());
        let all = run(OptimizationOptions::all());
        println!(
            "{words:>12} {brams:>7} {:>12.0} {:>12.0} {:>16.0}",
            orig.fmax_mhz, data.fmax_mhz, all.fmax_mhz
        );
    }
    println!(
        "\nexpected shape: the original decays fastest with size; data-only\n\
         optimization helps but saturates; data + control stays high\n\
         (paper: both needed for scalable performance, §5.5)."
    );
}
