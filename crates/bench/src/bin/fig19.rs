//! Regenerates Fig. 19: achieved frequency of the stream-buffer design
//! across buffer sizes, for the original design, the data-broadcast-only
//! optimization, and the full data + control optimization. The fifteen
//! flows run through one [`hlsb::FlowSession`] (parallel up to the
//! thread budget; each size's three variants share cached front-end and
//! schedule artifacts).

use hlsb::{Flow, FlowSession, OptimizationOptions};
use hlsb_bench::{expect_all, pass_summary, SEED};
use hlsb_benchmarks::stream_buffer;

const SIZES: [usize; 5] = [1 << 14, 1 << 16, 1 << 18, 1 << 20, 2_306_048];

fn main() {
    let device = hlsb::fabric::Device::ultrascale_plus_vu9p();
    println!("Fig. 19: stream buffer Fmax vs buffer size");
    println!(
        "{:>12} {:>7} {:>12} {:>12} {:>16}",
        "words", "BRAMs", "orig (MHz)", "data (MHz)", "data+ctrl (MHz)"
    );

    let mut flows = Vec::new();
    let mut labels = Vec::new();
    let mut brams = Vec::new();
    for words in SIZES {
        let design = stream_buffer::design(words);
        brams.push(design.arrays[0].bram_units());
        for (tag, opts) in [
            ("orig", OptimizationOptions::none()),
            ("data", OptimizationOptions::data_only()),
            ("all", OptimizationOptions::all()),
        ] {
            flows.push(
                Flow::new(design.clone())
                    .device(device.clone())
                    .clock_mhz(333.0)
                    .options(opts)
                    .seed(SEED),
            );
            labels.push(format!("stream buffer {words}w ({tag})"));
        }
    }
    let session = FlowSession::new();
    let results = expect_all(&labels, session.run_many(&flows));

    for ((words, brams), triple) in SIZES.iter().zip(brams).zip(results.chunks(3)) {
        println!(
            "{words:>12} {brams:>7} {:>12.0} {:>12.0} {:>16.0}",
            triple[0].fmax_mhz, triple[1].fmax_mhz, triple[2].fmax_mhz
        );
    }
    println!(
        "\nexpected shape: the original decays fastest with size; data-only\n\
         optimization helps but saturates; data + control stays high\n\
         (paper: both needed for scalable performance, §5.5)."
    );
    println!();
    println!("{}", pass_summary(&results, &session));
}
