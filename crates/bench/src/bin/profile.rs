//! `profile` — self-time profile of the flow's span tree.
//!
//! ```text
//! profile [<benchmark>|all] [none|data|skid|all]
//!         [--partitions <n>|auto|off] [--trace-in <path>]
//!         [--collapsed-out <path>]
//! ```
//!
//! Runs the selected benchmark(s) with span tracing enabled and folds
//! the resulting trees into a per-stage profile: for every span path,
//! the call count, total (inclusive) time, and self time — total minus
//! the time spent in child spans — sorted by self time so the rows
//! answer "where does the wall clock actually go?" rather than "which
//! stage contains the others?". `--trace-in` profiles an existing JSONL
//! span tree (as written by `trace --jsonl-out` or
//! `hlsb-serve --trace-out`) instead of running anything.
//! `--collapsed-out` writes the same aggregation in collapsed-stack
//! format (`path;sub value`, one line per stack, values in integer
//! microseconds of self time) — feed it to any flamegraph renderer.
//!
//! Exit status is 2 on usage errors, 0 otherwise.

use hlsb::{FlowSession, OptimizationOptions, Partitioning, TraceTree};
use hlsb_bench::{benchmark_flow, expect_all, find_benchmark, parse_partitions};
use hlsb_benchmarks::all_benchmarks;
use hlsb_telemetry::{collapsed_stacks, render_table, self_time};
use std::process::ExitCode;

fn usage() {
    eprintln!(
        "usage: profile [<benchmark>|all] [none|data|skid|all]\n\
         \x20              [--partitions <n>|auto|off] [--trace-in <path>]\n\
         \x20              [--collapsed-out <path>]"
    );
}

fn main() -> ExitCode {
    let mut positional: Vec<String> = Vec::new();
    let mut trace_in: Option<String> = None;
    let mut collapsed_out: Option<String> = None;
    let mut partitions = Partitioning::Off;
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--partitions" => match it.next().as_deref().and_then(parse_partitions) {
                Some(p) => partitions = p,
                None => {
                    eprintln!("profile: --partitions needs <n>|auto|off");
                    return ExitCode::from(2);
                }
            },
            "--trace-in" => match it.next() {
                Some(p) => trace_in = Some(p),
                None => {
                    eprintln!("profile: --trace-in needs a path");
                    return ExitCode::from(2);
                }
            },
            "--collapsed-out" => match it.next() {
                Some(p) => collapsed_out = Some(p),
                None => {
                    eprintln!("profile: --collapsed-out needs a path");
                    return ExitCode::from(2);
                }
            },
            "--help" | "-h" => {
                usage();
                return ExitCode::SUCCESS;
            }
            _ => positional.push(arg),
        }
    }
    if positional.len() > 2 || (trace_in.is_some() && !positional.is_empty()) {
        usage();
        return ExitCode::from(2);
    }

    let owned_trees: Vec<TraceTree> = match &trace_in {
        Some(path) => {
            let text = match std::fs::read_to_string(path) {
                Ok(text) => text,
                Err(e) => {
                    eprintln!("profile: cannot read {path}: {e}");
                    return ExitCode::from(2);
                }
            };
            match TraceTree::from_jsonl(&text) {
                Ok(tree) => vec![tree],
                Err(e) => {
                    eprintln!("profile: cannot parse {path}: {e}");
                    return ExitCode::from(2);
                }
            }
        }
        None => {
            let name = positional.first().map(String::as_str).unwrap_or("genome");
            let level = positional.get(1).map(String::as_str).unwrap_or("all");
            let options = match level {
                "all" => OptimizationOptions::all(),
                "data" => OptimizationOptions::data_only(),
                "skid" => OptimizationOptions::skid_plain(),
                "none" => OptimizationOptions::none(),
                other => {
                    eprintln!("profile: unknown optimization level `{other}`");
                    usage();
                    return ExitCode::from(2);
                }
            };
            let benches = if name == "all" {
                all_benchmarks()
            } else {
                match find_benchmark(name) {
                    Some(b) => vec![b],
                    None => {
                        eprintln!("profile: no benchmark matching `{name}`");
                        return ExitCode::from(2);
                    }
                }
            };
            let flows: Vec<_> = benches
                .iter()
                .map(|b| {
                    benchmark_flow(b, options)
                        .partitions(partitions)
                        .trace(true)
                })
                .collect();
            let labels: Vec<String> = benches
                .iter()
                .map(|b| format!("{} ({level})", b.name))
                .collect();
            let session = FlowSession::new();
            let results = expect_all(&labels, session.run_many(&flows));
            results
                .into_iter()
                .map(|r| {
                    r.trace_tree()
                        .expect("flow ran with tracing enabled")
                        .clone()
                })
                .collect()
        }
    };

    let trees: Vec<&TraceTree> = owned_trees.iter().collect();
    print!("{}", render_table(&self_time(&trees)));

    if let Some(path) = &collapsed_out {
        if let Err(e) = std::fs::write(path, collapsed_stacks(&trees)) {
            eprintln!("profile: cannot write {path}: {e}");
            return ExitCode::FAILURE;
        }
        println!("wrote collapsed stacks to {path}");
    }
    ExitCode::SUCCESS
}
