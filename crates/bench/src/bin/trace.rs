//! `trace` — run the flow with span tracing enabled and export the
//! decision provenance.
//!
//! ```text
//! trace [<benchmark>|all] [none|data|skid|all]
//!       [--partitions <n>|auto|off] [--trace-out <path>] [--jsonl-out <path>]
//! ```
//!
//! Runs the selected benchmark(s) at the given optimization level with
//! hierarchical span tracing on, prints each run's span tree (stage
//! timings plus every decision event: chain splits, pruned done-signals,
//! skid insertions, capacity choices) and the metrics registry merged
//! over all runs. `--trace-out` writes the batch as Chrome trace-event
//! JSON — load it in Perfetto (<https://ui.perfetto.dev>) or
//! `chrome://tracing`; each run is a separate process, placement trials
//! ride on their own tracks. `--jsonl-out` writes the lossless JSONL
//! encoding ([`hlsb::TraceTree::from_jsonl`] round-trips it); with
//! several runs, each tree goes to `<stem>.<idx>.<ext>`.

use hlsb::{
    chrome_trace, FlowSession, MetricsRegistry, OptimizationOptions, Partitioning, TraceTree,
};
use hlsb_bench::{benchmark_flow, expect_all, find_benchmark, parse_partitions};
use hlsb_benchmarks::all_benchmarks;
use std::process::ExitCode;

fn usage() {
    eprintln!(
        "usage: trace [<benchmark>|all] [none|data|skid|all]\n\
         \x20            [--partitions <n>|auto|off]\n\
         \x20            [--trace-out <path>] [--jsonl-out <path>]"
    );
}

/// Per-run output path: the base path as-is for a single run, otherwise
/// the run index is spliced in before the extension.
fn indexed_path(base: &str, idx: usize, runs: usize) -> String {
    if runs == 1 {
        return base.to_string();
    }
    match base.rsplit_once('.') {
        Some((stem, ext)) => format!("{stem}.{idx}.{ext}"),
        None => format!("{base}.{idx}"),
    }
}

fn main() -> ExitCode {
    let mut positional: Vec<String> = Vec::new();
    let mut trace_out: Option<String> = None;
    let mut jsonl_out: Option<String> = None;
    let mut partitions = Partitioning::Off;
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--partitions" => match it.next().as_deref().and_then(parse_partitions) {
                Some(p) => partitions = p,
                None => {
                    eprintln!("trace: --partitions needs <n>|auto|off");
                    return ExitCode::from(2);
                }
            },
            "--trace-out" => match it.next() {
                Some(p) => trace_out = Some(p),
                None => {
                    eprintln!("trace: --trace-out needs a path");
                    return ExitCode::from(2);
                }
            },
            "--jsonl-out" => match it.next() {
                Some(p) => jsonl_out = Some(p),
                None => {
                    eprintln!("trace: --jsonl-out needs a path");
                    return ExitCode::from(2);
                }
            },
            "--help" | "-h" => {
                usage();
                return ExitCode::SUCCESS;
            }
            _ => positional.push(arg),
        }
    }
    if positional.len() > 2 {
        usage();
        return ExitCode::from(2);
    }
    let name = positional.first().map(String::as_str).unwrap_or("genome");
    let level = positional.get(1).map(String::as_str).unwrap_or("all");
    let options = match level {
        "all" => OptimizationOptions::all(),
        "data" => OptimizationOptions::data_only(),
        "skid" => OptimizationOptions::skid_plain(),
        "none" => OptimizationOptions::none(),
        other => {
            eprintln!("trace: unknown optimization level `{other}`");
            usage();
            return ExitCode::from(2);
        }
    };

    let benches = if name == "all" {
        all_benchmarks()
    } else {
        match find_benchmark(name) {
            Some(b) => vec![b],
            None => {
                eprintln!("trace: no benchmark matching `{name}`");
                return ExitCode::from(2);
            }
        }
    };

    let flows: Vec<_> = benches
        .iter()
        .map(|b| {
            benchmark_flow(b, options)
                .partitions(partitions)
                .trace(true)
        })
        .collect();
    let labels: Vec<String> = benches
        .iter()
        .map(|b| format!("{} ({level})", b.name))
        .collect();
    let session = FlowSession::new();
    let results = expect_all(&labels, session.run_many(&flows));

    let mut metrics = MetricsRegistry::default();
    let trees: Vec<(&str, &TraceTree)> = labels
        .iter()
        .zip(&results)
        .map(|(label, r)| {
            let tree = r.trace_tree().expect("flow ran with tracing enabled");
            (label.as_str(), tree)
        })
        .collect();
    for (label, tree) in &trees {
        println!("== {label} ==");
        print!("{}", tree.render());
        metrics.merge(&tree.metrics);
        println!();
    }
    if !metrics.is_empty() {
        println!("metrics over {} run(s):", trees.len());
        print!("{}", metrics.render());
    }

    if let Some(path) = &trace_out {
        if let Err(e) = std::fs::write(path, chrome_trace(&trees)) {
            eprintln!("trace: cannot write {path}: {e}");
            return ExitCode::FAILURE;
        }
        println!("wrote Chrome trace for {} runs to {path}", trees.len());
    }
    if let Some(base) = &jsonl_out {
        for (idx, (_, tree)) in trees.iter().enumerate() {
            let path = indexed_path(base, idx, trees.len());
            if let Err(e) = std::fs::write(&path, tree.to_jsonl()) {
                eprintln!("trace: cannot write {path}: {e}");
                return ExitCode::FAILURE;
            }
            println!("wrote JSONL trace to {path}");
        }
    }
    ExitCode::SUCCESS
}
