//! Regenerates Fig. 17: the bitwidth of the data passed between pipeline
//! stages of the `(a · b) c` kernel, and the min-area skid-buffer split it
//! implies.

use hlsb::ctrl::{min_area_split, naive_area_bits};
use hlsb::delay::HlsPredictedModel;
use hlsb::rtlgen::stage_widths;
use hlsb::sched::schedule_loop;
use hlsb_benchmarks::vector_arith::dot_scale_pipeline;

fn main() {
    let width = 32; // the paper's Fig. 17 example size
    let design = dot_scale_pipeline(width);
    let lp = &design.kernels[0].loops[0];
    let schedule = schedule_loop(lp, &design, &HlsPredictedModel::new(), 3.0);
    let widths = stage_widths(lp, &schedule);

    println!("Fig. 17: inter-stage bitwidth of the (a.b)c pipeline ({width}-wide float)");
    println!("{:>6} {:>12}", "stage", "bits");
    for (i, w) in widths.iter().enumerate() {
        println!("{:>6} {:>12}", i + 1, w);
    }

    let n = widths.len();
    let plan = min_area_split(&widths);
    let naive = naive_area_bits(n, *widths.last().unwrap());
    println!("\npipeline stages: {n}");
    println!(
        "waist: stage {} ({} bits)",
        widths
            .iter()
            .enumerate()
            .min_by_key(|(_, &w)| w)
            .map(|(i, _)| i + 1)
            .unwrap(),
        widths.iter().min().unwrap()
    );
    println!("naive end buffer:      {naive} bits");
    println!(
        "min-area split {:?}:  {} bits  ({:.0}% saved)",
        plan.cuts,
        plan.total_bits,
        100.0 * plan.saving()
    );
    println!("\npaper anchor (61-stage version): 63488 -> 7968 bits (87% saved)");
}
