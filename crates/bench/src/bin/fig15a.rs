//! Regenerates Fig. 15a: delay estimations of HLS and our tool versus the
//! actual critical-path delay of the original genome design, per unroll
//! factor.
//!
//! The HLS estimate is the longest in-cycle chain under the broadcast-blind
//! predicted model; our tool's estimate is the same chain re-evaluated with
//! the calibrated model and RAW-derived broadcast factors; the actual value
//! is the post-implementation critical path of the unoptimized design.

use hlsb::delay::{CalibratedModel, DelayModel, HlsPredictedModel};
use hlsb::ir::unroll::unroll_loop;
use hlsb::sched::{schedule_loop, CLOCK_MARGIN};
use hlsb::{Flow, OptimizationOptions};
use hlsb_bench::SEED;
use hlsb_benchmarks::genome;

fn main() {
    let device = hlsb::fabric::Device::ultrascale_plus_vu9p();
    let clock_mhz = 333.0;
    let clock_ns = 1000.0 / clock_mhz;
    let predicted = HlsPredictedModel::new();
    let calibrated = CalibratedModel::characterize_analytic(&device, SEED);

    println!("Fig. 15a: op-chain delay estimations vs actual (genome, orig schedule)");
    println!(
        "{:>8} {:>14} {:>14} {:>12}  (clock target {:.2} ns, chain budget {:.2} ns)",
        "unroll",
        "HLS est (ns)",
        "our est (ns)",
        "actual (ns)",
        clock_ns,
        clock_ns * CLOCK_MARGIN
    );

    for unroll in [8u32, 16, 32, 48, 64] {
        let design = genome::design(unroll);
        let unrolled = unroll_loop(&design.kernels[0].loops[0]).looop;
        let schedule = schedule_loop(&unrolled, &design, &predicted, clock_ns);

        // Longest in-cycle chain under each model.
        let mut hls_worst = 0.0f64;
        let mut ours_worst = 0.0f64;
        let mut arr_hls = vec![0.0f64; unrolled.body.len()];
        let mut arr_ours = vec![0.0f64; unrolled.body.len()];
        for (id, inst) in unrolled.body.iter() {
            let op = schedule.op(id);
            if op.latency != 0 {
                continue;
            }
            let chain_in = |arr: &[f64]| {
                inst.operands
                    .iter()
                    .filter(|&&d| schedule.op(d).done_cycle() == op.cycle)
                    .map(|&d| arr[d.index()])
                    .fold(0.0f64, f64::max)
            };
            let bf = schedule.operand_broadcast_factor(&unrolled.body, id);
            let h = chain_in(&arr_hls) + predicted.delay_ns(inst.kind, inst.ty, 1);
            let o = chain_in(&arr_ours) + calibrated.delay_ns(inst.kind, inst.ty, bf);
            arr_hls[id.index()] = h;
            arr_ours[id.index()] = o;
            hls_worst = hls_worst.max(h);
            ours_worst = ours_worst.max(o);
        }

        let actual = Flow::new(design)
            .device(device.clone())
            .clock_mhz(clock_mhz)
            .options(OptimizationOptions::none())
            .seed(SEED)
            .run()
            .expect("flow")
            .period_ns;

        println!("{unroll:>8} {hls_worst:>14.2} {ours_worst:>14.2} {actual:>12.2}");
    }
    println!(
        "\nexpected shape: the HLS estimate is invariant to the unroll factor;\n\
         our estimate grows with it and tracks the actual far more closely."
    );
}
