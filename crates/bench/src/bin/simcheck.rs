//! Differential simulation check over the Table-1 benchmarks.
//!
//! ```text
//! simcheck [--json] [--design <name-substring>] [--trace-out <path>]
//! ```
//!
//! For every benchmark and every point of the optimization cube
//! (broadcast-aware × sync-pruning × skid-buffer), runs the untimed
//! golden evaluator against the cycle-accurate simulator of the
//! scheduled design and verifies trace equality plus latency consistency
//! (`hlsb::sim::check_latency`). This is the fast semantics gate: it
//! exercises the whole front-end + scheduler without placement, so all
//! 72 variant runs finish in seconds.
//!
//! `--json` emits one JSON line per variant (and a final `summary` line)
//! instead of the table, for machine consumption in CI. `--design`
//! restricts the sweep to one benchmark (substring match, same resolver
//! as `explain`/`sweep`). `--trace-out` records a span trace per variant
//! and writes the batch as Chrome trace-event JSON. In all modes the
//! exit status is 1 when any variant fails its check, 0 otherwise.

use hlsb::lint::render::json_escape;
use hlsb::sim::Stimulus;
use hlsb::{chrome_trace, Flow, FlowSession, OptimizationOptions, TraceTree};
use hlsb_benchmarks::all_benchmarks;
use std::process::ExitCode;

/// Iterations simulated per loop (trip counts are capped to this).
const ITERS_CAP: u64 = 48;

fn combos() -> Vec<(String, OptimizationOptions)> {
    let mut out = Vec::new();
    for bits in 0u8..8 {
        let opts = OptimizationOptions {
            broadcast_aware: bits & 1 != 0,
            sync_pruning: bits & 2 != 0,
            skid_buffer: bits & 4 != 0,
            min_area_skid: false,
        };
        let name = format!(
            "{}{}{}",
            if opts.broadcast_aware { "B" } else { "-" },
            if opts.sync_pruning { "S" } else { "-" },
            if opts.skid_buffer { "K" } else { "-" },
        );
        out.push((name, opts));
    }
    out
}

fn main() -> ExitCode {
    let mut json = false;
    let mut design: Option<String> = None;
    let mut trace_out: Option<String> = None;
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--json" => json = true,
            "--design" => match it.next() {
                Some(d) => design = Some(d),
                None => {
                    eprintln!("simcheck: --design needs a value");
                    return ExitCode::from(2);
                }
            },
            "--trace-out" => match it.next() {
                Some(p) => trace_out = Some(p),
                None => {
                    eprintln!("simcheck: --trace-out needs a path");
                    return ExitCode::from(2);
                }
            },
            _ => {
                eprintln!("usage: simcheck [--json] [--design <name>] [--trace-out <path>]");
                return ExitCode::from(2);
            }
        }
    }
    let benches = match &design {
        Some(name) => match hlsb_bench::find_benchmark(name) {
            Some(b) => vec![b],
            None => {
                eprintln!("simcheck: no benchmark matching `{name}`");
                return ExitCode::from(2);
            }
        },
        None => all_benchmarks(),
    };

    let session = FlowSession::new();
    if !json {
        println!("simcheck: golden vs cycle-accurate over the optimization cube");
        println!(
            "{:<28} {:>5} {:>8} {:>8} {:>8} {:>7}  verdict",
            "benchmark / combo", "vals", "cycles", "stalls", "gated", "match"
        );
        println!("{:-<80}", "");
    }
    let mut failures = 0usize;
    let mut variants = 0usize;
    let mut traces: Vec<(String, TraceTree)> = Vec::new();
    for bench in benches {
        let stim = Stimulus::seeded(&bench.design, 1, ITERS_CAP as usize);
        for (name, opts) in combos() {
            let flow = Flow::new(bench.design.clone())
                .device(bench.device.clone())
                .clock_mhz(bench.clock_mhz)
                .options(opts)
                .trace(trace_out.is_some());
            let mut sim = session
                .simulate(&flow, &stim, ITERS_CAP)
                .expect("benchmark designs are valid");
            if let Some(tree) = sim.span_tree.take() {
                traces.push((format!("{} [{name}]", bench.name), tree));
            }
            let verdict = sim.check();
            let stalls: u64 = sim.timed.per_loop.iter().map(|r| r.stall_cycles).sum();
            let gated: u64 = sim.timed.per_loop.iter().map(|r| r.gated_cycles).sum();
            let trace_match = sim.timed.trace.diff(&sim.golden).is_none();
            if json {
                println!(
                    "{{\"benchmark\":\"{}\",\"combo\":\"{name}\",\"values\":{},\
                     \"cycles\":{},\"stalls\":{stalls},\"gated\":{gated},\
                     \"trace_match\":{trace_match},\"ok\":{},\"verdict\":\"{}\"}}",
                    json_escape(bench.name),
                    sim.golden.len(),
                    sim.timed.cycles,
                    verdict.is_ok(),
                    json_escape(&verdict.as_ref().err().cloned().unwrap_or_default()),
                );
            } else {
                println!(
                    "{:<28} {:>5} {:>8} {:>8} {:>8} {:>7}  {}",
                    format!("{} [{}]", bench.name, name),
                    sim.golden.len(),
                    sim.timed.cycles,
                    stalls,
                    gated,
                    if trace_match { "yes" } else { "NO" },
                    match &verdict {
                        Ok(()) => "ok".to_string(),
                        Err(e) => format!("FAIL: {e}"),
                    }
                );
            }
            variants += 1;
            if verdict.is_err() {
                failures += 1;
            }
        }
    }
    let stats = session.cache_stats_by_stage();
    if json {
        println!(
            "{{\"summary\":true,\"variants\":{variants},\"failures\":{failures},\
             \"front_end_cache_hits\":{},\"front_end_cache_misses\":{},\
             \"schedule_cache_hits\":{},\"schedule_cache_misses\":{}}}",
            stats.front_end.hits,
            stats.front_end.misses,
            stats.schedule.hits,
            stats.schedule.misses,
        );
    } else {
        println!("{:-<80}", "");
        println!(
            "cache: front-end {} hits / {} misses, schedule {} hits / {} misses \
             (variants share front-end + baseline schedules)",
            stats.front_end.hits,
            stats.front_end.misses,
            stats.schedule.hits,
            stats.schedule.misses,
        );
    }
    if let Some(path) = trace_out {
        let runs: Vec<(&str, &TraceTree)> = traces
            .iter()
            .map(|(label, t)| (label.as_str(), t))
            .collect();
        if let Err(e) = std::fs::write(&path, chrome_trace(&runs)) {
            eprintln!("simcheck: cannot write {path}: {e}");
            return ExitCode::FAILURE;
        }
        println!("wrote Chrome trace for {} variants to {path}", runs.len());
    }
    if failures > 0 {
        eprintln!("simcheck: {failures} variant(s) FAILED");
        return ExitCode::FAILURE;
    }
    if !json {
        println!("simcheck: all variants semantics-preserving");
    }
    ExitCode::SUCCESS
}
